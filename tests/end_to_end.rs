//! End-to-end pipeline integration: models -> candidates -> substrates
//! -> validation -> metrics, across crate boundaries.

use pcgbench::core::{ExecutionModel, ProblemId, ProblemType, TaskId};
use pcgbench::harness::{eval, report, EvalConfig, SharedRunner};
use pcgbench::models::SyntheticModel;

fn mini_tasks() -> Vec<TaskId> {
    // Three problems of very different character, all 7 execution models.
    let problems = [
        ProblemId::new(ProblemType::Transform, 0),
        ProblemId::new(ProblemType::Scan, 1),
        ProblemId::new(ProblemType::SparseLinearAlgebra, 0),
    ];
    problems
        .into_iter()
        .flat_map(|p| ExecutionModel::ALL.into_iter().map(move |m| p.task(m)))
        .collect()
}

#[test]
fn pipeline_produces_consistent_records() {
    let cfg = EvalConfig::smoke();
    let models = [
        SyntheticModel::by_name("GPT-3.5").unwrap(),
        SyntheticModel::by_name("CodeLlama-7B").unwrap(),
    ];
    let tasks = mini_tasks();
    let record = eval::evaluate(&cfg, &models, Some(&tasks));

    assert_eq!(record.models.len(), 2);
    for model in &record.models {
        assert_eq!(model.tasks.len(), tasks.len());
        for t in &model.tasks {
            assert_eq!(t.low.len(), cfg.samples_low);
            // Correct implies built.
            for (c, b) in t.low.correct.iter().zip(&t.low.built) {
                assert!(!c || *b, "correct sample that did not build");
            }
            // Ratios are zero exactly for incorrect samples.
            for (c, r) in t.low.correct.iter().zip(&t.low.ratio) {
                if !c {
                    assert_eq!(*r, 0.0);
                } else {
                    assert!(*r > 0.0, "correct sample with nonpositive ratio");
                }
            }
        }
    }
}

#[test]
fn stronger_model_beats_weaker_model() {
    let cfg = EvalConfig::smoke();
    let models =
        [SyntheticModel::by_name("GPT-3.5").unwrap(), SyntheticModel::by_name("CodeLlama-7B").unwrap()];
    // Use many problems so the comparison is statistically stable.
    let tasks: Vec<TaskId> = pcgbench::core::task::all_tasks()
        .filter(|t| t.problem.variant == 0 && !t.model.is_gpu())
        .collect();
    let record = eval::evaluate(&cfg, &models, Some(&tasks));
    let gpt = report::mean_pass_at_k(record.model("GPT-3.5").unwrap(), |_| true, 1, false);
    let cl7 = report::mean_pass_at_k(record.model("CodeLlama-7B").unwrap(), |_| true, 1, false);
    assert!(
        gpt > cl7,
        "GPT-3.5 ({gpt:.3}) must outperform CodeLlama-7B ({cl7:.3}) overall"
    );
}

#[test]
fn serial_beats_parallel_for_every_model() {
    let cfg = EvalConfig::smoke();
    let model = SyntheticModel::by_name("Phind-CodeLlama-V2").unwrap();
    let tasks: Vec<TaskId> = pcgbench::core::task::all_tasks()
        .filter(|t| t.problem.variant == 0)
        .collect();
    let record = eval::evaluate(&cfg, &[model], Some(&tasks));
    let m = &record.models[0];
    let serial = report::mean_pass_at_k(m, |t| !t.model.is_parallel(), 1, false);
    let parallel = report::mean_pass_at_k(m, |t| t.model.is_parallel(), 1, false);
    assert!(
        serial > parallel,
        "the paper's headline: serial ({serial:.3}) > parallel ({parallel:.3})"
    );
}

#[test]
fn records_roundtrip_via_json() {
    let cfg = EvalConfig::smoke();
    let model = SyntheticModel::by_name("StarCoderBase").unwrap();
    let tasks = &mini_tasks()[..7];
    let record = eval::evaluate(&cfg, &[model], Some(tasks));
    let json = serde_json::to_string(&record).unwrap();
    let back: pcgbench::harness::EvalRecord = serde_json::from_str(&json).unwrap();
    assert_eq!(back.models[0].model, "StarCoderBase");
    assert_eq!(back.models[0].tasks.len(), 7);
    for (a, b) in record.models[0].tasks.iter().zip(&back.models[0].tasks) {
        assert_eq!(a.low.correct, b.low.correct);
        // JSON float serialization may differ in the last ULP.
        for (x, y) in a.low.ratio.iter().zip(&b.low.ratio) {
            assert!((x - y).abs() <= x.abs() * 1e-12, "{x} vs {y}");
        }
    }
}

#[test]
fn evaluation_is_deterministic_in_correctness() {
    let cfg = EvalConfig::smoke();
    let model = || SyntheticModel::by_name("CodeLlama-13B").unwrap();
    let tasks = &mini_tasks()[..7];
    let a = eval::evaluate(&cfg, &[model()], Some(tasks));
    let b = eval::evaluate(&cfg, &[model()], Some(tasks));
    for (ta, tb) in a.models[0].tasks.iter().zip(&b.models[0].tasks) {
        assert_eq!(ta.low.correct, tb.low.correct, "{}", ta.task);
        assert_eq!(ta.low.built, tb.low.built, "{}", ta.task);
    }
}

#[test]
fn parallel_evaluation_is_byte_identical_to_serial() {
    // The scheduler's central guarantee: the same grid at --jobs 1 and
    // --jobs 8 serializes to byte-identical records. One SharedRunner
    // backs both runs so candidate timings come from the same cached
    // executions (timing is hardware noise; everything else — sample
    // streams, outcome kinds, record ordering — must be scheduling-
    // independent by construction).
    let cfg = EvalConfig::smoke();
    let models = [
        SyntheticModel::by_name("CodeLlama-13B").unwrap(),
        SyntheticModel::by_name("GPT-4").unwrap(),
    ];
    let tasks = mini_tasks();
    let runner = SharedRunner::new(cfg.clone());
    let (serial, _) = eval::evaluate_with(&cfg, &models, Some(&tasks), 1, &runner);
    let (parallel, stats) = eval::evaluate_with(&cfg, &models, Some(&tasks), 8, &runner);
    assert_eq!(stats.jobs, 8);
    assert_eq!(
        serde_json::to_string(&serial).unwrap(),
        serde_json::to_string(&parallel).unwrap(),
        "records must not depend on the worker count"
    );
}

#[test]
fn worker_count_does_not_change_correctness_fields() {
    // Fresh runners (no shared cache): wall-clock fields may differ,
    // but every scheduling-independent field must match exactly.
    let cfg = EvalConfig::smoke();
    let model = || SyntheticModel::by_name("Phind-CodeLlama-V2").unwrap();
    let tasks = &mini_tasks()[..14];
    let a = eval::evaluate_jobs(&cfg, &[model()], Some(tasks), 1);
    let b = eval::evaluate_jobs(&cfg, &[model()], Some(tasks), 8);
    for (ta, tb) in a.models[0].tasks.iter().zip(&b.models[0].tasks) {
        assert_eq!(ta.task, tb.task, "task order must be canonical");
        assert_eq!(ta.low.correct, tb.low.correct, "{}", ta.task);
        assert_eq!(ta.low.built, tb.low.built, "{}", ta.task);
        assert_eq!(
            ta.high.as_ref().map(|h| &h.correct),
            tb.high.as_ref().map(|h| &h.correct),
            "{}",
            ta.task
        );
        assert_eq!(
            ta.sweep.keys().collect::<Vec<_>>(),
            tb.sweep.keys().collect::<Vec<_>>(),
            "{}",
            ta.task
        );
    }
}

#[test]
fn figure_renderers_cover_real_records() {
    let cfg = EvalConfig::smoke();
    let models = [
        SyntheticModel::by_name("CodeLlama-7B").unwrap(),
        SyntheticModel::by_name("GPT-4").unwrap(),
    ];
    let tasks = mini_tasks();
    let record = eval::evaluate(&cfg, &models, Some(&tasks));
    for text in [
        report::figure1(&record),
        report::figure2(&record),
        report::figure3(&record),
        report::figure4(&record),
        report::figure6(&record),
        report::figure7(&record),
        report::experiments_summary(&record),
    ] {
        assert!(text.contains("CodeLlama-7B") || text.contains("model"), "{text}");
    }
}
