//! Crash-safety integration: a run killed mid-grid and restarted with
//! its write-ahead journal must produce a record byte-identical to an
//! uninterrupted run.
//!
//! Byte-identity is the *shared-measurement* guarantee (the same
//! contract `parallel_evaluation_is_byte_identical_to_serial` tests for
//! worker counts): records embed candidate timings, so the comparison
//! holds when both runs draw from one [`SharedRunner`]'s execution
//! cache. Everything else — sample streams, outcome kinds, record
//! ordering — is scheduling- and crash-independent by construction.

use pcgbench::core::plan::ShardSpec;
use pcgbench::core::{ExecutionModel, ProblemId, ProblemType, TaskId};
use pcgbench::harness::journal::{self, Journal, Replay};
use pcgbench::harness::{eval, EvalConfig, SharedRunner};
use pcgbench::models::SyntheticModel;
use std::path::PathBuf;

fn mini_tasks() -> Vec<TaskId> {
    let problems = [
        ProblemId::new(ProblemType::Transform, 0),
        ProblemId::new(ProblemType::Scan, 1),
        ProblemId::new(ProblemType::SparseLinearAlgebra, 0),
    ];
    problems
        .into_iter()
        .flat_map(|p| ExecutionModel::ALL.into_iter().map(move |m| p.task(m)))
        .collect()
}

fn tmp_journal(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("pcgbench-crash-resume-tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{name}-{}.journal", std::process::id()))
}

/// Chop a journal down to its header plus the first `keep` entry
/// frames, then leave a torn frame — the on-disk state a SIGKILL
/// mid-append leaves behind. Cuts at exact v3 frame boundaries via
/// `journal::entry_offsets`, keeping 10 bytes of the next frame (less
/// than the 16-byte frame header, so replay sees a torn tail).
fn simulate_crash(path: &PathBuf, keep: usize) {
    let offsets = journal::entry_offsets(path);
    assert!(keep + 1 < offsets.len(), "must cut strictly inside the journal");
    let bytes = std::fs::read(path).unwrap();
    std::fs::write(path, &bytes[..offsets[keep] as usize + 10]).unwrap();
}

#[test]
fn resumed_run_is_byte_identical_to_uninterrupted() {
    let cfg = EvalConfig::smoke();
    let models = [
        SyntheticModel::by_name("CodeLlama-13B").unwrap(),
        SyntheticModel::by_name("GPT-4").unwrap(),
    ];
    let tasks = mini_tasks();
    let runner = SharedRunner::new(cfg.clone());

    // The uninterrupted reference run.
    let (reference, _) = eval::evaluate_with(&cfg, &models, Some(&tasks), 8, &runner);
    let reference_json = serde_json::to_string(&reference).unwrap();

    // A journaled run at --jobs 8 (journal order = completion order,
    // deliberately not grid order), then a simulated SIGKILL that tears
    // the journal mid-append.
    let path = tmp_journal("kill");
    let wal = Journal::create(&path, &cfg, ShardSpec::WHOLE).unwrap();
    let (journaled, _) = eval::evaluate_resumable(
        &cfg,
        &models,
        Some(&tasks),
        8,
        &runner,
        &Replay::new(),
        |cell, model, rec| wal.append(cell, model, rec).unwrap(),
    );
    drop(wal);
    assert_eq!(
        serde_json::to_string(&journaled).unwrap(),
        reference_json,
        "journaling must not perturb the record"
    );
    let keep = 9;
    simulate_crash(&path, keep);

    // Resume at a different worker count: keyed replay must not care.
    let replay = journal::load(&path, &cfg, ShardSpec::WHOLE);
    assert_eq!(replay.len(), keep, "replay survives up to the torn frame");
    let (resumed, stats) = eval::evaluate_resumable(
        &cfg,
        &models,
        Some(&tasks),
        1,
        &runner,
        &replay,
        |_, _, _| {},
    );
    assert_eq!(stats.resumed_cells, keep);
    assert_eq!(stats.cells, models.len() * tasks.len());
    assert_eq!(
        serde_json::to_string(&resumed).unwrap(),
        reference_json,
        "kill + --resume must reproduce the uninterrupted record exactly"
    );
    journal::remove(&path);
}

#[test]
fn journal_from_a_different_config_is_not_replayed() {
    let cfg = EvalConfig::smoke();
    let models = [SyntheticModel::by_name("StarCoderBase").unwrap()];
    let tasks = &mini_tasks()[..7];
    let runner = SharedRunner::new(cfg.clone());

    let path = tmp_journal("mismatch");
    let wal = Journal::create(&path, &cfg, ShardSpec::WHOLE).unwrap();
    let (_, _) = eval::evaluate_resumable(
        &cfg,
        &models,
        Some(tasks),
        2,
        &runner,
        &Replay::new(),
        |cell, model, rec| wal.append(cell, model, rec).unwrap(),
    );
    drop(wal);

    // The journal holds every cell for `cfg` — but a changed config
    // (here: a different seed, i.e. different sample streams) must not
    // replay any of them.
    let mut other = cfg.clone();
    other.seed += 1;
    assert!(journal::load(&path, &other, ShardSpec::WHOLE).is_empty());
    assert_eq!(journal::load(&path, &cfg, ShardSpec::WHOLE).len(), tasks.len());
    journal::remove(&path);
}
