//! Property-based cross-substrate conformance: for randomized seeds,
//! sizes, and resource counts, every execution model's reference
//! implementation must reproduce the sequential oracle — the invariant
//! the whole benchmark rests on.

use pcgbench::core::{CandidateKind, ExecutionModel, PcgError, ProblemId, ProblemType, Quality};
use pcgbench::harness::{EvalConfig, SharedRunner};
use pcgbench::problems::registry;
use proptest::prelude::*;
use std::time::Duration;

fn check(ptype: ProblemType, variant: usize, model: ExecutionModel, n: u32, seed: u64, size: usize) {
    let problem = registry::problem(ProblemId::new(ptype, variant));
    let base = problem.run_baseline(seed, size);
    let run = problem
        .run_candidate(model, CandidateKind::Correct(Quality::Efficient), n, seed, size)
        .unwrap_or_else(|e| panic!("{ptype:?}#{variant} on {model}: {e}"));
    assert!(
        run.output.approx_eq(&base.output),
        "{ptype:?}#{variant} on {model} n={n} seed={seed} size={size}: {} vs {}",
        run.output.summary(),
        base.output.summary()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn transform_conforms_over_random_shapes(
        seed in 0u64..1000,
        size in 64usize..1500,
        variant in 0usize..5,
        n in 1u32..9,
    ) {
        for model in [ExecutionModel::OpenMp, ExecutionModel::Mpi, ExecutionModel::Cuda] {
            check(ProblemType::Transform, variant, model, n, seed, size);
        }
    }

    #[test]
    fn scan_conforms_over_random_shapes(
        seed in 0u64..1000,
        size in 64usize..1200,
        variant in 0usize..5,
        n in 1u32..7,
    ) {
        for model in [ExecutionModel::Kokkos, ExecutionModel::Mpi, ExecutionModel::Hip] {
            check(ProblemType::Scan, variant, model, n, seed, size);
        }
    }

    #[test]
    fn stencil_conforms_with_halo_exchange(
        seed in 0u64..1000,
        size in 128usize..1200,
        variant in 0usize..5,
        n in 1u32..7,
    ) {
        // MPI is the interesting one: block distribution + halo exchange.
        check(ProblemType::Stencil, variant, ExecutionModel::Mpi, n, seed, size);
        check(ProblemType::Stencil, variant, ExecutionModel::MpiOpenMp, n.min(4), seed, size);
    }

    #[test]
    fn sort_conforms_across_rank_counts(
        seed in 0u64..1000,
        size in 64usize..1000,
        variant in 0usize..5,
        n in 1u32..10,
    ) {
        check(ProblemType::Sort, variant, ExecutionModel::Mpi, n, seed, size);
        check(ProblemType::Sort, variant, ExecutionModel::OpenMp, n, seed, size);
    }

    #[test]
    fn reductions_conform_on_gpu(
        seed in 0u64..1000,
        size in 64usize..2000,
        variant in 0usize..5,
    ) {
        check(ProblemType::Reduce, variant, ExecutionModel::Cuda, 0, seed, size);
        check(ProblemType::Reduce, variant, ExecutionModel::Hip, 0, seed, size);
    }

    #[test]
    fn sparse_and_graph_conform(
        seed in 0u64..1000,
        size in 128usize..800,
        variant in 0usize..5,
        n in 1u32..6,
    ) {
        check(ProblemType::SparseLinearAlgebra, variant, ExecutionModel::Mpi, n, seed, size);
        check(ProblemType::Graph, variant, ExecutionModel::OpenMp, n, seed, size);
    }
}

#[test]
fn every_problem_conforms_at_odd_rank_counts() {
    // Non-power-of-two rank counts exercise the collective fallbacks
    // (reduce+bcast allreduce, remainder-carrying block distribution).
    for ptype in ProblemType::ALL {
        let problem = registry::problem(ProblemId::new(ptype, 0));
        let base = problem.run_baseline(7, 300);
        for n in [3u32, 5, 7] {
            let run = problem
                .run_candidate(
                    ExecutionModel::Mpi,
                    CandidateKind::Correct(Quality::Efficient),
                    n,
                    7,
                    300,
                )
                .unwrap_or_else(|e| panic!("{ptype:?} mpi n={n}: {e}"));
            assert!(
                run.output.approx_eq(&base.output),
                "{ptype:?} at {n} ranks: {} vs {}",
                run.output.summary(),
                base.output.summary()
            );
        }
    }
}

/// A labeled hostile candidate body for the isolation tests.
type HostileCandidate = (&'static str, Box<dyn FnOnce() -> Result<(), PcgError> + Send>);

/// A runner with a short kill limit (and an equally short grace period,
/// so non-cooperative hangs are abandoned quickly), for
/// hostile-candidate tests.
fn hostile_runner() -> SharedRunner {
    let mut cfg = EvalConfig::smoke();
    cfg.timeout = Duration::from_millis(100);
    cfg.grace = Duration::from_millis(100);
    SharedRunner::new(cfg)
}

/// After surviving a hostile candidate, the runner must still evaluate
/// a normal one — no wedged worker, no poisoned state.
fn assert_still_serviceable(runner: &SharedRunner) {
    let task = ProblemId::new(ProblemType::Transform, 0).task(ExecutionModel::OpenMp);
    let out = runner.outcome(task, CandidateKind::Correct(Quality::Efficient), 4);
    assert!(out.correct, "runner wedged by a hostile candidate: {out:?}");
}

/// A panic inside a candidate body — on any substrate — must surface as
/// a captured per-candidate failure, never as a harness panic or a hung
/// worker. Substrates that run bodies on their own threads (MPI, hybrid)
/// convert rank panics to runtime errors before the harness sees them,
/// so both codes are conforming.
#[test]
fn candidate_panics_are_captured_on_every_substrate() {
    let panicky: Vec<HostileCandidate> = vec![
        ("shmem", Box::new(|| {
            pcgbench::shmem::Pool::new(4).parallel(|ctx| {
                if ctx.tid() == 2 {
                    panic!("candidate bug on thread 2");
                }
            });
            Ok(())
        })),
        ("kokkos", Box::new(|| {
            pcgbench::patterns::ExecSpace::new(4).parallel_for(64, |i| {
                if i == 17 {
                    panic!("candidate bug at i=17");
                }
            });
            Ok(())
        })),
        ("mpisim", Box::new(|| {
            pcgbench::mpisim::World::new(4)
                .run(|comm| {
                    if comm.rank() == 1 {
                        panic!("candidate bug on rank 1");
                    }
                })
                .map(|_| ())
        })),
        ("hybrid", Box::new(|| {
            pcgbench::hybrid::HybridWorld::new(2, 2)
                .run(|ctx| {
                    if ctx.comm().rank() == 1 {
                        panic!("candidate bug on hybrid rank 1");
                    }
                })
                .map(|_| ())
        })),
        ("cuda", Box::new(|| {
            let buf = pcgbench::gpusim::GpuBuffer::<f64>::zeroed(64);
            pcgbench::gpusim::cuda::device().launch_each(
                pcgbench::gpusim::Launch::over(64, 32),
                |t, ctx| {
                    if t.global_id() == 5 {
                        panic!("candidate bug in kernel thread 5");
                    }
                    ctx.write(&buf, t.global_id(), 1.0);
                },
            );
            Ok(())
        })),
        ("hip", Box::new(|| {
            let buf = pcgbench::gpusim::GpuBuffer::<f64>::zeroed(64);
            pcgbench::gpusim::hip::device().launch_each(
                pcgbench::gpusim::Launch::over(64, 32),
                |t, ctx| {
                    if t.block_idx == 1 {
                        panic!("candidate bug in block 1");
                    }
                    ctx.write(&buf, t.global_id(), 1.0);
                },
            );
            Ok(())
        })),
    ];
    let runner = hostile_runner();
    for (substrate, candidate) in panicky {
        let out = runner.run_isolated(candidate);
        assert!(!out.correct, "{substrate}: panicking candidate marked correct");
        let code = out.error.as_deref().unwrap_or("<none>");
        assert!(
            code == "panic" || code == "runtime",
            "{substrate}: expected a captured panic, got error {code:?}"
        );
    }
    assert_still_serviceable(&runner);
}

/// A candidate that hangs — on any substrate — must be abandoned at the
/// configured time limit with `error: Some("timeout")`, leaving the
/// worker free for the next candidate (the paper's 3-minute kill).
#[test]
fn hanging_candidates_time_out_on_every_substrate() {
    // Long enough to outlive the 100 ms limit by far, short enough that
    // the abandoned threads drain before the test process exits.
    let hang = || std::thread::sleep(Duration::from_secs(2));
    let hangs: Vec<HostileCandidate> = vec![
        ("shmem", Box::new(move || {
            pcgbench::shmem::Pool::new(2).parallel(|ctx| {
                if ctx.tid() == 1 {
                    hang();
                }
            });
            Ok(())
        })),
        ("kokkos", Box::new(move || {
            pcgbench::patterns::ExecSpace::new(2).parallel_for(2, |i| {
                if i == 1 {
                    hang();
                }
            });
            Ok(())
        })),
        ("mpisim", Box::new(move || {
            pcgbench::mpisim::World::new(2)
                .run(|comm| {
                    if comm.rank() == 0 {
                        hang();
                    }
                })
                .map(|_| ())
        })),
        ("hybrid", Box::new(move || {
            pcgbench::hybrid::HybridWorld::new(2, 1)
                .run(|ctx| {
                    if ctx.comm().rank() == 1 {
                        hang();
                    }
                })
                .map(|_| ())
        })),
        ("cuda", Box::new(move || {
            pcgbench::gpusim::cuda::device().launch_each(
                pcgbench::gpusim::Launch::new(1, 1),
                |_, _| hang(),
            );
            Ok(())
        })),
        ("hip", Box::new(move || {
            pcgbench::gpusim::hip::device().launch_each(
                pcgbench::gpusim::Launch::new(1, 1),
                |_, _| hang(),
            );
            Ok(())
        })),
    ];
    let runner = hostile_runner();
    for (substrate, candidate) in hangs {
        let out = runner.run_isolated(candidate);
        assert!(!out.correct, "{substrate}: hung candidate marked correct");
        assert_eq!(
            out.error.as_deref(),
            Some("timeout"),
            "{substrate}: hang must be abandoned at the limit"
        );
    }
    assert_eq!(runner.timeouts(), 6);
    // A raw `sleep` never observes the cancel token, so every one of
    // these hangs exhausts the grace period and is abandoned.
    assert_eq!(runner.abandoned(), 6);
    assert_eq!(runner.cancelled(), 0);
    assert_still_serviceable(&runner);
}

/// Cancellation conformance: a candidate stuck at a *substrate blocking
/// point* — a work-sharing loop, an MPI receive that can never be
/// matched, a kernel relaunch loop — must unwind cooperatively within
/// the grace period once its token fires. The abandonment counter
/// staying at zero is the proof that every substrate checks the token
/// where it blocks; only token-blind code (like the raw sleeps above)
/// should ever be abandoned.
#[test]
fn cancellation_unwinds_cooperatively_on_every_substrate() {
    let cooperative: Vec<HostileCandidate> = vec![
        ("shmem", Box::new(|| {
            // An effectively infinite work-sharing loop; the pool checks
            // the token at every chunk boundary.
            pcgbench::shmem::Pool::new(2).parallel_for(
                0..usize::MAX,
                pcgbench::shmem::Schedule::Dynamic { chunk: 1 },
                |_| {},
            );
            Ok(())
        })),
        ("mpisim", Box::new(|| {
            // Rank 0 posts a receive no rank will ever match: a classic
            // deadlocked candidate. The mailbox wait checks the token.
            pcgbench::mpisim::World::new(2)
                .run(|comm| {
                    if comm.rank() == 0 {
                        let _: Vec<f64> = comm.recv(Some(1), 7);
                    }
                })
                .map(|_| ())
        })),
        ("gpusim", Box::new(|| {
            // A candidate relaunching kernels forever; launch entry
            // checks the token.
            let buf = pcgbench::gpusim::GpuBuffer::<f64>::zeroed(64);
            loop {
                pcgbench::gpusim::cuda::device().launch_each(
                    pcgbench::gpusim::Launch::over(64, 32),
                    |t, ctx| {
                        if t.global_id() < 64 {
                            ctx.write(&buf, t.global_id(), 1.0);
                        }
                    },
                );
            }
        })),
    ];
    let mut cfg = EvalConfig::smoke();
    cfg.timeout = Duration::from_millis(100);
    // A generous grace period: cooperative unwinding must not depend on
    // a lenient abandonment deadline to pass.
    cfg.grace = Duration::from_secs(10);
    let runner = SharedRunner::new(cfg);
    for (i, (substrate, candidate)) in cooperative.into_iter().enumerate() {
        let out = runner.run_isolated(candidate);
        assert_eq!(
            out.error.as_deref(),
            Some("timeout"),
            "{substrate}: stuck candidate must time out"
        );
        assert_eq!(
            runner.cancelled(),
            (i + 1) as u64,
            "{substrate}: must unwind via the cancel token"
        );
        assert_eq!(runner.abandoned(), 0, "{substrate}: cooperative path must not leak");
    }
    assert_eq!(runner.leaked_workers(), 0);
    assert_still_serviceable(&runner);
}

/// The usage check must attribute API calls to the candidate that made
/// them even while other candidates run concurrently on the scheduler.
/// With process-global snapshot deltas (the pre-parallel design), the
/// noisy neighbor's `Pool::parallel` calls would leak into the fallback
/// candidate's delta and flip its verdict to correct.
#[test]
fn sequential_fallback_is_flagged_despite_concurrent_parallel_candidates() {
    use std::sync::atomic::{AtomicBool, Ordering};
    let runner = SharedRunner::new(EvalConfig::smoke());
    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        s.spawn(|| {
            while !stop.load(Ordering::Relaxed) {
                pcgbench::shmem::Pool::new(2).parallel(|_| {});
            }
        });
        let task = ProblemId::new(ProblemType::Transform, 0).task(ExecutionModel::OpenMp);
        let out = runner.outcome(task, CandidateKind::SequentialFallback, 4);
        stop.store(true, Ordering::Relaxed);
        assert!(!out.correct, "fallback must not inherit the neighbor's API calls");
        assert_eq!(out.error.as_deref(), Some("sequential"));
    });
}

#[test]
fn rank_counts_beyond_physical_cores_stay_correct() {
    // 96 simulated ranks on a small host: the virtual-time design must
    // not affect answers.
    for (ptype, variant) in
        [(ProblemType::Transform, 2), (ProblemType::Reduce, 0), (ProblemType::Histogram, 0)]
    {
        let problem = registry::problem(ProblemId::new(ptype, variant));
        let base = problem.run_baseline(11, 512);
        let run = problem
            .run_candidate(
                ExecutionModel::Mpi,
                CandidateKind::Correct(Quality::Efficient),
                96,
                11,
                512,
            )
            .unwrap();
        assert!(run.output.approx_eq(&base.output), "{ptype:?}#{variant}");
        assert!(run.seconds > 0.0);
    }
}
