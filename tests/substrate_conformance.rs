//! Property-based cross-substrate conformance: for randomized seeds,
//! sizes, and resource counts, every execution model's reference
//! implementation must reproduce the sequential oracle — the invariant
//! the whole benchmark rests on.

use pcgbench::core::{CandidateKind, ExecutionModel, ProblemId, ProblemType, Quality};
use pcgbench::problems::registry;
use proptest::prelude::*;

fn check(ptype: ProblemType, variant: usize, model: ExecutionModel, n: u32, seed: u64, size: usize) {
    let problem = registry::problem(ProblemId::new(ptype, variant));
    let base = problem.run_baseline(seed, size);
    let run = problem
        .run_candidate(model, CandidateKind::Correct(Quality::Efficient), n, seed, size)
        .unwrap_or_else(|e| panic!("{ptype:?}#{variant} on {model}: {e}"));
    assert!(
        run.output.approx_eq(&base.output),
        "{ptype:?}#{variant} on {model} n={n} seed={seed} size={size}: {} vs {}",
        run.output.summary(),
        base.output.summary()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn transform_conforms_over_random_shapes(
        seed in 0u64..1000,
        size in 64usize..1500,
        variant in 0usize..5,
        n in 1u32..9,
    ) {
        for model in [ExecutionModel::OpenMp, ExecutionModel::Mpi, ExecutionModel::Cuda] {
            check(ProblemType::Transform, variant, model, n, seed, size);
        }
    }

    #[test]
    fn scan_conforms_over_random_shapes(
        seed in 0u64..1000,
        size in 64usize..1200,
        variant in 0usize..5,
        n in 1u32..7,
    ) {
        for model in [ExecutionModel::Kokkos, ExecutionModel::Mpi, ExecutionModel::Hip] {
            check(ProblemType::Scan, variant, model, n, seed, size);
        }
    }

    #[test]
    fn stencil_conforms_with_halo_exchange(
        seed in 0u64..1000,
        size in 128usize..1200,
        variant in 0usize..5,
        n in 1u32..7,
    ) {
        // MPI is the interesting one: block distribution + halo exchange.
        check(ProblemType::Stencil, variant, ExecutionModel::Mpi, n, seed, size);
        check(ProblemType::Stencil, variant, ExecutionModel::MpiOpenMp, n.min(4), seed, size);
    }

    #[test]
    fn sort_conforms_across_rank_counts(
        seed in 0u64..1000,
        size in 64usize..1000,
        variant in 0usize..5,
        n in 1u32..10,
    ) {
        check(ProblemType::Sort, variant, ExecutionModel::Mpi, n, seed, size);
        check(ProblemType::Sort, variant, ExecutionModel::OpenMp, n, seed, size);
    }

    #[test]
    fn reductions_conform_on_gpu(
        seed in 0u64..1000,
        size in 64usize..2000,
        variant in 0usize..5,
    ) {
        check(ProblemType::Reduce, variant, ExecutionModel::Cuda, 0, seed, size);
        check(ProblemType::Reduce, variant, ExecutionModel::Hip, 0, seed, size);
    }

    #[test]
    fn sparse_and_graph_conform(
        seed in 0u64..1000,
        size in 128usize..800,
        variant in 0usize..5,
        n in 1u32..6,
    ) {
        check(ProblemType::SparseLinearAlgebra, variant, ExecutionModel::Mpi, n, seed, size);
        check(ProblemType::Graph, variant, ExecutionModel::OpenMp, n, seed, size);
    }
}

#[test]
fn every_problem_conforms_at_odd_rank_counts() {
    // Non-power-of-two rank counts exercise the collective fallbacks
    // (reduce+bcast allreduce, remainder-carrying block distribution).
    for ptype in ProblemType::ALL {
        let problem = registry::problem(ProblemId::new(ptype, 0));
        let base = problem.run_baseline(7, 300);
        for n in [3u32, 5, 7] {
            let run = problem
                .run_candidate(
                    ExecutionModel::Mpi,
                    CandidateKind::Correct(Quality::Efficient),
                    n,
                    7,
                    300,
                )
                .unwrap_or_else(|e| panic!("{ptype:?} mpi n={n}: {e}"));
            assert!(
                run.output.approx_eq(&base.output),
                "{ptype:?} at {n} ranks: {} vs {}",
                run.output.summary(),
                base.output.summary()
            );
        }
    }
}

#[test]
fn rank_counts_beyond_physical_cores_stay_correct() {
    // 96 simulated ranks on a small host: the virtual-time design must
    // not affect answers.
    for (ptype, variant) in
        [(ProblemType::Transform, 2), (ProblemType::Reduce, 0), (ProblemType::Histogram, 0)]
    {
        let problem = registry::problem(ProblemId::new(ptype, variant));
        let base = problem.run_baseline(11, 512);
        let run = problem
            .run_candidate(
                ExecutionModel::Mpi,
                CandidateKind::Correct(Quality::Efficient),
                96,
                11,
                512,
            )
            .unwrap();
        assert!(run.output.approx_eq(&base.output), "{ptype:?}#{variant}");
        assert!(run.seconds > 0.0);
    }
}
