//! Integration checks on the virtual-time models: the performance
//! *shapes* the paper reports must emerge from the substrates.

use pcgbench::core::{CandidateKind, ExecutionModel, ProblemId, ProblemType, Quality};
use pcgbench::harness::{runner::Runner, EvalConfig};

fn cfg() -> EvalConfig {
    let mut cfg = EvalConfig::quick();
    cfg.reps = 3;
    cfg.size_divisor = 4;
    cfg
}

#[test]
fn openmp_speedup_grows_then_saturates() {
    // A compute-heavy map: modeled OpenMP time should improve with
    // threads at low counts; efficiency must decline monotonically-ish.
    let mut runner = Runner::new(cfg());
    let task = ProblemId::new(ProblemType::Transform, 4).task(ExecutionModel::OpenMp);
    let kind = CandidateKind::Correct(Quality::Efficient);
    let r1 = runner.ratio(task, kind, 1);
    let r8 = runner.ratio(task, kind, 8);
    let r32 = runner.ratio(task, kind, 32);
    assert!(r1 > 0.0 && r8 > 0.0 && r32 > 0.0);
    assert!(r8 > r1, "8 threads should beat 1 (r1={r1:.2}, r8={r8:.2})");
    // Efficiency declines with thread count (fixed problem size).
    assert!(r8 / 8.0 < r1 / 1.0 * 1.1, "efficiency must not grow with threads");
    assert!(r32 / 32.0 < r8 / 8.0 * 1.1);
}

#[test]
fn mpi_efficiency_declines_with_ranks() {
    let mut runner = Runner::new(cfg());
    let task = ProblemId::new(ProblemType::Reduce, 0).task(ExecutionModel::Mpi);
    let kind = CandidateKind::Correct(Quality::Efficient);
    let e = |n: u32, r: &mut Runner| r.ratio(task, kind, n) / f64::from(n);
    let e2 = e(2, &mut runner);
    let e32 = e(32, &mut runner);
    let e256 = e(256, &mut runner);
    assert!(e2 > e32, "e2={e2:.4} e32={e32:.4}");
    assert!(e32 > e256, "e32={e32:.4} e256={e256:.4}");
}

#[test]
fn inefficient_candidates_never_scale() {
    // The lopsided/root-computes fallbacks must show ~no speedup growth
    // from more resources.
    let mut runner = Runner::new(cfg());
    let task = ProblemId::new(ProblemType::Reduce, 3).task(ExecutionModel::OpenMp);
    let kind = CandidateKind::Correct(Quality::Inefficient);
    let r1 = runner.ratio(task, kind, 1);
    let r16 = runner.ratio(task, kind, 16);
    assert!(r1 > 0.0 && r16 > 0.0);
    assert!(
        r16 < r1 * 2.0,
        "one-thread-does-everything cannot speed up 16x (r1={r1:.2}, r16={r16:.2})"
    );
}

#[test]
fn gpu_models_give_large_speedups_on_big_maps() {
    // At (near) full size, the A100-like device model should beat the
    // single-core CPU baseline clearly on a bandwidth-bound map.
    let mut cfg = EvalConfig::quick();
    cfg.size_divisor = 1;
    cfg.reps = 3;
    let mut runner = Runner::new(cfg);
    let task = ProblemId::new(ProblemType::Transform, 0).task(ExecutionModel::Cuda);
    let r = runner.ratio(task, CandidateKind::Correct(Quality::Efficient), 0);
    assert!(r > 2.0, "GPU speedup too small: {r:.2}");
    // HIP (MI50-like) is slower than CUDA (A100-like) for the same task.
    let task_hip = ProblemId::new(ProblemType::Transform, 0).task(ExecutionModel::Hip);
    let rh = runner.ratio(task_hip, CandidateKind::Correct(Quality::Efficient), 0);
    assert!(rh > 0.0 && rh < r * 1.5, "cuda={r:.2} hip={rh:.2}");
}

#[test]
fn failure_kinds_have_infinite_effective_runtime() {
    let mut runner = Runner::new(cfg());
    let task = ProblemId::new(ProblemType::Histogram, 0).task(ExecutionModel::OpenMp);
    for kind in [
        CandidateKind::BuildFailure,
        CandidateKind::RuntimeCrash,
        CandidateKind::Timeout,
    ] {
        assert_eq!(runner.ratio(task, kind, 8), 0.0, "{kind:?}");
    }
}
