//! Property tests for the core vocabulary: id round-trips, tolerant
//! comparison laws, and prompt-rendering invariants.

use pcg_core::prompt::{render, PromptSpec};
use pcg_core::{ExecutionModel, Output, TaskId};
use proptest::prelude::*;

proptest! {
    #[test]
    fn task_index_bijection(i in 0usize..pcg_core::NUM_TASKS) {
        let t = TaskId::from_index(i).unwrap();
        prop_assert_eq!(t.index(), i);
    }

    #[test]
    fn approx_eq_is_reflexive_and_symmetric(
        v in proptest::collection::vec(-1e6f64..1e6, 0..32),
        w in proptest::collection::vec(-1e6f64..1e6, 0..32),
    ) {
        let a = Output::F64s(v);
        let b = Output::F64s(w);
        prop_assert!(a.approx_eq(&a));
        prop_assert_eq!(a.approx_eq(&b), b.approx_eq(&a));
    }

    #[test]
    fn approx_eq_tolerates_relative_noise(
        v in proptest::collection::vec(-1e6f64..1e6, 1..32),
        scale in -1e-7f64..1e-7,
    ) {
        let noisy: Vec<f64> = v.iter().map(|x| x * (1.0 + scale)).collect();
        prop_assert!(Output::F64s(v).approx_eq(&Output::F64s(noisy)));
    }

    #[test]
    fn rendered_prompts_contain_all_parts(
        fn_name in "[a-zA-Z][a-zA-Z0-9]{0,20}",
        description in "[ -~]{1,120}",
    ) {
        let spec = PromptSpec {
            fn_name: fn_name.clone(),
            description: description.clone(),
            examples: vec![("[1]".into(), "[2]".into())],
            signature: "x: &mut [f64]".into(),
        };
        for model in ExecutionModel::ALL {
            let p = render(&spec, model);
            prop_assert!(p.contains(&fn_name));
            prop_assert!(p.contains(&description));
            prop_assert!(p.contains(pcg_core::prompt::model_instruction(model)));
            let opens_body = p.ends_with("{\n");
            prop_assert!(opens_body);
        }
    }

    #[test]
    fn weighted_sharding_partitions_under_any_priors(
        seed in 0u64..10_000,
        n_models in 1usize..5,
        n_tasks in 1usize..24,
        costs in proptest::collection::vec(0.001f64..100.0, 1..32),
        count in 1u32..9,
    ) {
        use pcg_core::plan::{ShardSpec, WorkPlan};
        use pcg_core::CostPriors;

        let models: Vec<String> = (0..n_models).map(|m| format!("model-{m}")).collect();
        let tasks: Vec<TaskId> =
            (0..n_tasks).map(|i| TaskId::from_index(i).unwrap()).collect();
        let plan = WorkPlan::new(seed, models.clone(), tasks.clone());

        // An arbitrary priors table: every (model, task) pair gets an
        // arbitrary cost, with degenerate values (NaN, infinity,
        // negative, zero) salted in — none of them may lose a cell.
        let entries = plan.cells().enumerate().map(|(i, c)| {
            let cost = match i % 7 {
                0 => f64::NAN,
                1 => f64::INFINITY,
                2 => -1.0,
                3 => 0.0,
                _ => costs[i % costs.len()],
            };
            (models[c.model].clone(), c.task.index() as u32, cost)
        });
        let priors = CostPriors::from_entries("prop", entries);

        // Disjoint and exhaustive: each cell lands on exactly one shard.
        let spec = |k| ShardSpec::new(k, count);
        let shards: Vec<Vec<_>> =
            (0..count).map(|k| plan.shard_with(spec(k), Some(&priors))).collect();
        let mut seen = std::collections::HashSet::new();
        for shard in &shards {
            for cell in shard {
                prop_assert!(seen.insert(cell.id), "cell owned by two shards");
            }
        }
        prop_assert_eq!(seen.len(), plan.len(), "every cell owned by some shard");

        // Deterministic: the partition is a pure function of its inputs.
        for k in 0..count {
            let again = plan.shard_with(spec(k), Some(&priors));
            prop_assert_eq!(shards[k as usize].len(), again.len());
            prop_assert!(
                shards[k as usize].iter().zip(&again).all(|(a, b)| a.id == b.id),
                "re-partitioning must reproduce the same shard"
            );
        }
    }

    #[test]
    fn seeds_are_stable_and_distinct_across_samples(
        seed in 0u64..10_000,
        i in 0usize..pcg_core::NUM_TASKS,
        samples in 1u64..20,
    ) {
        use pcg_core::rng::{derive_seed, Purpose};
        let task = TaskId::from_index(i).unwrap();
        let a = derive_seed(seed, task, Purpose::Input, 0);
        prop_assert_eq!(a, derive_seed(seed, task, Purpose::Input, 0));
        prop_assert_ne!(a, derive_seed(seed, task, Purpose::Input, samples));
    }
}
