//! Property tests for the core vocabulary: id round-trips, tolerant
//! comparison laws, and prompt-rendering invariants.

use pcg_core::prompt::{render, PromptSpec};
use pcg_core::{ExecutionModel, Output, TaskId};
use proptest::prelude::*;

proptest! {
    #[test]
    fn task_index_bijection(i in 0usize..pcg_core::NUM_TASKS) {
        let t = TaskId::from_index(i).unwrap();
        prop_assert_eq!(t.index(), i);
    }

    #[test]
    fn approx_eq_is_reflexive_and_symmetric(
        v in proptest::collection::vec(-1e6f64..1e6, 0..32),
        w in proptest::collection::vec(-1e6f64..1e6, 0..32),
    ) {
        let a = Output::F64s(v);
        let b = Output::F64s(w);
        prop_assert!(a.approx_eq(&a));
        prop_assert_eq!(a.approx_eq(&b), b.approx_eq(&a));
    }

    #[test]
    fn approx_eq_tolerates_relative_noise(
        v in proptest::collection::vec(-1e6f64..1e6, 1..32),
        scale in -1e-7f64..1e-7,
    ) {
        let noisy: Vec<f64> = v.iter().map(|x| x * (1.0 + scale)).collect();
        prop_assert!(Output::F64s(v).approx_eq(&Output::F64s(noisy)));
    }

    #[test]
    fn rendered_prompts_contain_all_parts(
        fn_name in "[a-zA-Z][a-zA-Z0-9]{0,20}",
        description in "[ -~]{1,120}",
    ) {
        let spec = PromptSpec {
            fn_name: fn_name.clone(),
            description: description.clone(),
            examples: vec![("[1]".into(), "[2]".into())],
            signature: "x: &mut [f64]".into(),
        };
        for model in ExecutionModel::ALL {
            let p = render(&spec, model);
            prop_assert!(p.contains(&fn_name));
            prop_assert!(p.contains(&description));
            prop_assert!(p.contains(pcg_core::prompt::model_instruction(model)));
            let opens_body = p.ends_with("{\n");
            prop_assert!(opens_body);
        }
    }

    #[test]
    fn seeds_are_stable_and_distinct_across_samples(
        seed in 0u64..10_000,
        i in 0usize..pcg_core::NUM_TASKS,
        samples in 1u64..20,
    ) {
        use pcg_core::rng::{derive_seed, Purpose};
        let task = TaskId::from_index(i).unwrap();
        let a = derive_seed(seed, task, Purpose::Input, 0);
        prop_assert_eq!(a, derive_seed(seed, task, Purpose::Input, 0));
        prop_assert_ne!(a, derive_seed(seed, task, Purpose::Input, samples));
    }
}
