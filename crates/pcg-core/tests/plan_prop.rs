//! Property tests for the shard partition and steal-order laws.
//!
//! `shard_weighted` is the only coordination between shard workers:
//! every process derives the partition independently and trusts the
//! others derived the same one. So the laws below must hold for *any*
//! cost function and *any* geometry, including the degenerate corners
//! (more bins than cells, a single-cell plan, a zero-signal table)
//! that a hand-picked unit grid never exercises:
//!
//! 1. Disjoint + exhaustive: every cell is owned by exactly one shard.
//! 2. Plan-ordered: each shard's slice preserves plan order.
//! 3. Deterministic: re-deriving from the same inputs is identical.
//! 4. Zero-signal fallback: a table that clamps to zero everywhere
//!    yields exactly the unweighted `id % count` partition.
//! 5. Steal order is a permutation of the owned slice (a thief can
//!    never enumerate a cell the victim does not own).

use pcg_core::plan::{CellId, PlanCell, ShardSpec, WorkPlan};
use proptest::prelude::*;

fn arb_plan(models: usize, tasks: usize) -> WorkPlan {
    let names: Vec<String> = (0..models).map(|m| format!("model-{m}")).collect();
    WorkPlan::new(0x5eed, names, pcg_core::task::all_tasks().take(tasks).collect())
}

/// A deterministic pseudo-random cost keyed on the cell id and a seed,
/// mixing in zero / negative / non-finite values so the clamp path is
/// exercised alongside real weights.
fn cost(seed: u64, id: CellId) -> f64 {
    let h = seed ^ id.0.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    match h % 16 {
        0 => 0.0,
        1 => -1.0,
        2 => f64::NAN,
        3 => f64::INFINITY,
        _ => ((h >> 4) % 1000) as f64 / 10.0 + 0.1,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn weighted_partition_laws(
        models in 1usize..4,
        tasks in 1usize..16,
        count in 1u32..10,
        seed in 0u64..=u64::MAX,
    ) {
        let plan = arb_plan(models, tasks);
        let mut seen: Vec<CellId> = Vec::new();
        for k in 0..count {
            let spec = ShardSpec::new(k, count);
            let owned = plan.shard_weighted(spec, |c| cost(seed, c.id));
            // Law 2: plan order within the slice.
            let pos: Vec<usize> =
                owned.iter().map(|c| c.model * plan.tasks().len() + c.task_idx).collect();
            prop_assert!(pos.windows(2).all(|w| w[0] < w[1]), "slice must stay plan-ordered");
            // Law 3: deterministic re-derivation.
            let again = arb_plan(models, tasks).shard_weighted(spec, |c| cost(seed, c.id));
            prop_assert_eq!(&owned, &again);
            seen.extend(owned.iter().map(|c| c.id));
        }
        // Law 1: disjoint + exhaustive.
        let mut want: Vec<CellId> = plan.cells().map(|c| c.id).collect();
        seen.sort();
        want.sort();
        prop_assert_eq!(seen, want, "every cell owned exactly once");
    }

    #[test]
    fn zero_signal_tables_fall_back_to_unweighted(
        models in 1usize..4,
        tasks in 1usize..16,
        count in 1u32..10,
        mix in 0u64..=u64::MAX,
    ) {
        let degenerate = [0.0f64, -5.0, f64::NAN, f64::NEG_INFINITY];
        let plan = arb_plan(models, tasks);
        for k in 0..count {
            let spec = ShardSpec::new(k, count);
            let pick = |c: &PlanCell| degenerate[((c.id.0 ^ mix) % 4) as usize];
            prop_assert_eq!(
                plan.shard_weighted(spec, pick),
                plan.shard(spec),
                "zero-signal costs must match the unweighted fallback"
            );
        }
    }

    #[test]
    fn steal_order_is_a_permutation_of_the_owned_slice(
        models in 1usize..4,
        tasks in 1usize..16,
        count in 2u32..8,
    ) {
        let plan = arb_plan(models, tasks);
        let priors = pcg_core::CostPriors::default_profile();
        for withp in [None, Some(&priors)] {
            for k in 0..count {
                let spec = ShardSpec::new(k, count);
                let mut owned: Vec<CellId> =
                    plan.shard_with(spec, withp).iter().map(|c| c.id).collect();
                let mut steal: Vec<CellId> =
                    plan.steal_order(spec, withp).iter().map(|c| c.id).collect();
                owned.sort();
                steal.sort();
                prop_assert_eq!(owned, steal);
            }
        }
    }
}
