//! Property-based laws for the v3 journal frame codec.
//!
//! The journal's durability story reduces to three laws about
//! [`pcg_core::frame`]:
//!
//! 1. **Round trip**: any sequence of (cell, payload) frames encodes
//!    and decodes to exactly itself, ending in a clean EOF.
//! 2. **Mutation rejection**: flipping any single bit of an encoded
//!    frame makes decoding fail — never a silently different frame,
//!    never a clean EOF.
//! 3. **Truncation classification**: cutting an encoded stream at any
//!    byte yields a strict prefix of the original frames followed by a
//!    clean EOF (cut exactly on a boundary) or a torn-tail error —
//!    never a corrupted frame, never a CRC mismatch blamed on intact
//!    bytes.
//!
//! Plus the byte-codec law: every primitive written by `ByteWriter` is
//! read back bit-exactly by `ByteReader`.

use pcg_core::frame::{
    decode_frame, encode_frame, encode_frame_into, ByteReader, ByteWriter, Frame, FrameError,
};
use proptest::collection::vec;
use proptest::prelude::*;

/// Decode every frame in `buf`, stopping at EOF or the first error.
fn decode_all(buf: &[u8]) -> (Vec<(u64, Vec<u8>)>, Option<FrameError>) {
    let mut frames = Vec::new();
    let mut offset = 0;
    loop {
        match decode_frame(buf, offset) {
            None => return (frames, None),
            Some(Ok(Frame { cell, payload, end })) => {
                frames.push((cell, payload.to_vec()));
                offset = end;
            }
            Some(Err(e)) => return (frames, Some(e)),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn law1_frame_sequences_roundtrip(
        cells in vec(0u64..=u64::MAX, 1..6),
        seed in vec(0u8..=255, 0..400),
    ) {
        // One frame per generated cell; payloads are distinct slices of
        // the seed bytes so lengths and contents vary independently.
        let originals: Vec<(u64, Vec<u8>)> = cells
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                let lo = (i * 37) % (seed.len() + 1);
                let hi = (lo + (i * 53) % 97).min(seed.len());
                (c, seed[lo..hi].to_vec())
            })
            .collect();
        let mut buf = Vec::new();
        for (cell, payload) in &originals {
            encode_frame_into(&mut buf, *cell, payload);
        }
        let (decoded, err) = decode_all(&buf);
        prop_assert!(err.is_none(), "clean stream must decode cleanly: {err:?}");
        prop_assert_eq!(decoded, originals);
    }

    #[test]
    fn law2_single_bit_flips_never_decode(
        cell in 0u64..=u64::MAX,
        payload in vec(0u8..=255, 0..200),
        flip in 0usize..100_000,
    ) {
        let buf = encode_frame(cell, &payload);
        let bit = flip % (buf.len() * 8);
        let mut corrupt = buf.clone();
        corrupt[bit / 8] ^= 1 << (bit % 8);
        match decode_frame(&corrupt, 0) {
            Some(Err(_)) => {}
            None => prop_assert!(false, "bit {bit}: corruption read as clean EOF"),
            Some(Ok(f)) => prop_assert!(
                false,
                "bit {bit}: corrupt frame decoded as cell {} with {} payload bytes",
                f.cell,
                f.payload.len(),
            ),
        }
    }

    #[test]
    fn law3_truncation_yields_a_clean_prefix(
        cells in vec(0u64..=u64::MAX, 1..5),
        seed in vec(0u8..=255, 0..300),
        cut_seed in 0usize..100_000,
    ) {
        let originals: Vec<(u64, Vec<u8>)> = cells
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                let lo = (i * 29) % (seed.len() + 1);
                let hi = (lo + (i * 41) % 83).min(seed.len());
                (c, seed[lo..hi].to_vec())
            })
            .collect();
        let mut buf = Vec::new();
        for (cell, payload) in &originals {
            encode_frame_into(&mut buf, *cell, payload);
        }
        let cut = cut_seed % (buf.len() + 1);
        let (decoded, err) = decode_all(&buf[..cut]);
        prop_assert!(decoded.len() <= originals.len());
        prop_assert_eq!(
            decoded.as_slice(),
            &originals[..decoded.len()],
            "decoded frames must be a strict prefix of the originals"
        );
        match err {
            None => {}
            Some(FrameError::TornTail { .. }) => {}
            Some(e @ FrameError::BadCrc { .. }) => {
                prop_assert!(false, "truncation at {cut} misclassified as corruption: {e}")
            }
        }
    }

    #[test]
    fn byte_codec_roundtrips_primitives(
        words in vec(0u64..=u64::MAX, 0..20),
        flags in vec(0u8..2, 0..20),
        text in "[ -~]{0,60}",
    ) {
        let mut w = ByteWriter::new();
        w.put_len(words.len());
        for &x in &words {
            w.put_u64(x);
            w.put_f64(f64::from_bits(x)); // includes NaNs and infinities
            w.put_u32(x as u32);
        }
        w.put_len(flags.len());
        for &f in &flags {
            w.put_bool(f == 1);
        }
        w.put_str(&text);
        let bytes = w.into_bytes();

        let mut r = ByteReader::new(&bytes);
        let n = r.len(16).unwrap();
        prop_assert_eq!(n, words.len());
        for &x in &words {
            prop_assert_eq!(r.u64().unwrap(), x);
            prop_assert_eq!(r.f64().unwrap().to_bits(), f64::from_bits(x).to_bits());
            prop_assert_eq!(r.u32().unwrap(), x as u32);
        }
        let n = r.len(1).unwrap();
        prop_assert_eq!(n, flags.len());
        for &f in &flags {
            prop_assert_eq!(r.bool().unwrap(), f == 1);
        }
        prop_assert_eq!(r.str().unwrap(), text.as_str());
        prop_assert!(r.is_exhausted());
    }
}
