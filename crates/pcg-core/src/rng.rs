//! Deterministic random streams.
//!
//! Every workload instance and every synthetic-model sample must be
//! reproducible: the harness derives one independent stream per
//! (task, purpose, sample-index) triple by hashing the coordinates into a
//! 64-bit seed with SplitMix64, then feeding a counter-seeded `StdRng`.

use crate::TaskId;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// What the derived stream is used for; keeps input-generation and
/// model-sampling streams independent even for the same task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Purpose {
    /// Workload input generation.
    Input,
    /// Synthetic LLM candidate sampling.
    ModelSample,
    /// Miscellaneous auxiliary draws (e.g. defect parameters).
    Aux,
}

impl Purpose {
    fn tag(self) -> u64 {
        match self {
            Purpose::Input => 0x1,
            Purpose::ModelSample => 0x2,
            Purpose::Aux => 0x3,
        }
    }
}

/// SplitMix64 finalizer: a high-quality 64-bit mixing function.
#[inline]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derive a 64-bit seed from benchmark coordinates.
pub fn derive_seed(global_seed: u64, task: TaskId, purpose: Purpose, sample: u64) -> u64 {
    let mut s = splitmix64(global_seed);
    s = splitmix64(s ^ (task.index() as u64).wrapping_mul(0xA24B_AED4_963E_E407));
    s = splitmix64(s ^ purpose.tag().wrapping_mul(0x9FB2_1C65_1E98_DF25));
    splitmix64(s ^ sample.wrapping_mul(0xD6E8_FEB8_6659_FD93))
}

/// A deterministic `StdRng` for the given coordinates.
pub fn rng_for(global_seed: u64, task: TaskId, purpose: Purpose, sample: u64) -> StdRng {
    StdRng::seed_from_u64(derive_seed(global_seed, task, purpose, sample))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ExecutionModel, ProblemId, ProblemType};
    use rand::Rng;

    fn task() -> TaskId {
        ProblemId::new(ProblemType::Scan, 1).task(ExecutionModel::Kokkos)
    }

    #[test]
    fn deterministic() {
        let mut a = rng_for(42, task(), Purpose::Input, 0);
        let mut b = rng_for(42, task(), Purpose::Input, 0);
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn coordinates_decorrelate() {
        let base = derive_seed(42, task(), Purpose::Input, 0);
        assert_ne!(base, derive_seed(43, task(), Purpose::Input, 0));
        assert_ne!(base, derive_seed(42, task(), Purpose::ModelSample, 0));
        assert_ne!(base, derive_seed(42, task(), Purpose::Input, 1));
        let other = ProblemId::new(ProblemType::Scan, 2).task(ExecutionModel::Kokkos);
        assert_ne!(base, derive_seed(42, other, Purpose::Input, 0));
    }

    #[test]
    fn splitmix_known_vector() {
        // Reference value from the SplitMix64 paper's test vector chain.
        assert_eq!(splitmix64(0), 0xE220_A839_7B1D_CDAF);
    }
}
