//! Cost priors for adaptive scheduling: a per-cell expected-cost table
//! that turns a previous run's measured wall seconds into dispatch and
//! partitioning decisions.
//!
//! The evaluation grid is wildly heterogeneous — an MPI-512 timeout
//! cell costs orders of magnitude more than a serial build-failure
//! cell — so slot-order dispatch and `id % count` sharding both let a
//! single unlucky straggler gate the whole run. A [`CostPriors`] table
//! supplies `cost(model, task)` estimates that the scheduler uses for
//! longest-processing-time (LPT) dispatch and [`crate::plan::WorkPlan`]
//! uses for cost-weighted shard partitioning.
//!
//! Two sources, in preference order:
//!
//! 1. **Measured**: the per-cell wall-seconds column of a prior run's
//!    columnar stats sidecar (the harness's `.cols` file), keyed by
//!    `(model name, task dense index)`.
//! 2. **Default profile**: a committed analytic table keyed by
//!    execution model × rank/thread count × problem kind, used when no
//!    sidecar exists (and as the per-cell fallback for cells the
//!    sidecar has no positive measurement for).
//!
//! Every table is **hash-stamped** ([`CostPriors::hash`], FNV-1a over
//! the canonical entry encoding): shard workers record the stamp in
//! their journal headers and the merge step rejects a worker that
//! scheduled from different priors, so a weighted partition is provably
//! derived from identical inputs in every process. Priors affect
//! *scheduling only* — execution order and shard membership — never
//! cell identity, sample streams, or record bytes.

use crate::plan::{fnv1a_extend, fnv1a_start};
use crate::task::TaskId;
use crate::ExecutionModel;
use std::collections::BTreeMap;

/// Version tag folded into every priors hash; bump on any change to
/// the encoding or to the default profile's analytic weights.
const PRIORS_VERSION: &[u8] = b"pcg-cost-priors-v1";

/// A hash-stamped expected-cost table for grid cells.
#[derive(Debug, Clone, PartialEq)]
pub struct CostPriors {
    /// Measured costs in seconds, keyed by `(model name, task dense
    /// index)`. Empty for the default profile.
    entries: BTreeMap<(String, u32), f64>,
    /// Where the table came from, for logs ("default-profile" or a
    /// sidecar path).
    label: String,
    /// FNV-1a stamp over the canonical entry encoding.
    hash: u64,
}

impl CostPriors {
    /// Build a table from measured `(model, task index, seconds)`
    /// entries. Non-finite or non-positive costs are dropped: a zero
    /// wall column means "never measured" (e.g. a cell replayed from a
    /// journal), and those cells fall back to the default profile.
    pub fn from_entries(
        label: &str,
        entries: impl IntoIterator<Item = (String, u32, f64)>,
    ) -> CostPriors {
        let entries: BTreeMap<(String, u32), f64> = entries
            .into_iter()
            .filter(|&(_, _, c)| c.is_finite() && c > 0.0)
            .map(|(m, t, c)| ((m, t), c))
            .collect();
        let mut h = fnv1a_extend(fnv1a_start(), PRIORS_VERSION);
        for ((model, task), cost) in &entries {
            h = fnv1a_extend(h, model.as_bytes());
            h = fnv1a_extend(h, &[0xff]);
            h = fnv1a_extend(h, &task.to_le_bytes());
            h = fnv1a_extend(h, &cost.to_bits().to_le_bytes());
        }
        CostPriors { entries, label: label.to_string(), hash: h }
    }

    /// The committed default profile: no measured entries, every lookup
    /// answered by [`CostPriors::default_cost`]. Identical (and
    /// identically stamped) in every process and on every host.
    pub fn default_profile() -> CostPriors {
        CostPriors {
            entries: BTreeMap::new(),
            label: "default-profile".to_string(),
            hash: fnv1a_extend(fnv1a_start(), PRIORS_VERSION),
        }
    }

    /// The table's provenance label, for logs.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The FNV-1a stamp over the canonical entry encoding. Two
    /// processes holding tables with equal stamps hold entry-for-entry
    /// identical tables (and therefore derive identical partitions).
    pub fn hash(&self) -> u64 {
        self.hash
    }

    /// Number of measured entries (zero for the default profile).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table carries no measured entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Expected cost of cell `(model, task)` in (relative) seconds:
    /// the measured entry when one exists, else the analytic default.
    /// Always finite and positive.
    ///
    /// `model` is a model-*row* label: on multi-variant grids it carries
    /// a `@variant` suffix, and the analytic fallback scales by the
    /// variant's cost factor so weighted sharding still sees a per-row
    /// signal instead of collapsing every variant of a task into one
    /// uniform bin. Bare labels (every single-variant grid) hit factor
    /// 1.0 and cost exactly what they always did.
    pub fn cost(&self, model: &str, task: TaskId) -> f64 {
        // BTreeMap<(String, u32)> cannot be probed with (&str, u32)
        // without allocating; a range over the owned key is still
        // allocation-per-call, so just allocate the probe key — cost()
        // is called once per cell per run, not in an inner loop.
        self.entries
            .get(&(model.to_string(), task.index() as u32))
            .copied()
            .unwrap_or_else(|| {
                let (_, variant) = crate::prompt::split_label(model);
                Self::default_cost(task) * variant.cost_factor()
            })
    }

    /// The committed analytic cost profile, keyed by execution model ×
    /// headline rank/thread count × problem kind. The absolute scale is
    /// arbitrary (only ratios matter to LPT); the shape encodes what
    /// the substrates actually cost: distributed worlds dominate
    /// (hundreds of ranks per candidate, plus resource sweeps),
    /// threaded models carry sweeps too, GPU emulation and serial are
    /// cheap.
    pub fn default_cost(task: TaskId) -> f64 {
        let n = f64::from(task.model.headline_n().max(1));
        let base = match task.model {
            ExecutionModel::Serial => 1.0,
            ExecutionModel::OpenMp | ExecutionModel::Kokkos => 1.5 + 0.3 * n.log2(),
            ExecutionModel::Mpi => 2.0 + 0.6 * n.log2(),
            ExecutionModel::MpiOpenMp => 2.0 + 0.5 * n.log2(),
            ExecutionModel::Cuda | ExecutionModel::Hip => 1.2,
        };
        // Problem kinds differ by a smaller factor than substrates do;
        // a mild deterministic spread keeps LPT from seeing spurious
        // ties without pretending we know per-kind constants.
        let kind = 1.0 + 0.05 * task.problem.ptype.index() as f64;
        base * kind
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::all_tasks;
    use crate::{ProblemId, ProblemType};

    #[test]
    fn default_profile_is_stable_and_positive() {
        let a = CostPriors::default_profile();
        let b = CostPriors::default_profile();
        assert_eq!(a.hash(), b.hash(), "default profile must stamp identically");
        assert!(a.is_empty());
        for t in all_tasks() {
            let c = a.cost("GPT-4", t);
            assert!(c.is_finite() && c > 0.0, "cost of {t} must be positive, got {c}");
        }
        // The profile orders substrates the way the harness costs do.
        let p = ProblemId::new(ProblemType::Sort, 0);
        let serial = a.cost("m", p.task(ExecutionModel::Serial));
        let omp = a.cost("m", p.task(ExecutionModel::OpenMp));
        let mpi = a.cost("m", p.task(ExecutionModel::Mpi));
        assert!(serial < omp && omp < mpi, "{serial} {omp} {mpi}");
    }

    #[test]
    fn measured_entries_override_the_profile_and_stamp_the_hash() {
        let t = ProblemId::new(ProblemType::Reduce, 1).task(ExecutionModel::Serial);
        let entries = vec![("GPT-4".to_string(), t.index() as u32, 42.5f64)];
        let p = CostPriors::from_entries("sidecar", entries.clone());
        assert_eq!(p.len(), 1);
        assert_eq!(p.cost("GPT-4", t), 42.5);
        // Unmeasured cells fall back to the analytic default.
        let other = ProblemId::new(ProblemType::Reduce, 2).task(ExecutionModel::Serial);
        assert_eq!(p.cost("GPT-4", other), CostPriors::default_cost(other));
        assert_eq!(p.cost("CodeLlama-7B", t), CostPriors::default_cost(t));
        // The stamp covers the entries: same entries, same hash;
        // different cost, different hash; and measured != default.
        assert_eq!(p.hash(), CostPriors::from_entries("elsewhere", entries).hash());
        let p2 = CostPriors::from_entries(
            "sidecar",
            vec![("GPT-4".to_string(), t.index() as u32, 43.0f64)],
        );
        assert_ne!(p.hash(), p2.hash());
        assert_ne!(p.hash(), CostPriors::default_profile().hash());
    }

    #[test]
    fn variant_rows_scale_the_analytic_fallback() {
        use crate::prompt::PromptVariant;
        let p = CostPriors::default_profile();
        let t = ProblemId::new(ProblemType::Stencil, 0).task(ExecutionModel::Mpi);
        let bare = p.cost("GPT-4", t);
        assert_eq!(bare, CostPriors::default_cost(t), "bare labels are unchanged");
        // Each variant row gets a distinct, positive default cost.
        let mut costs = vec![bare];
        for v in [PromptVariant::Naive, PromptVariant::Student, PromptVariant::RagAugmented] {
            let c = p.cost(&crate::prompt::row_label("GPT-4", v), t);
            assert!(c.is_finite() && c > 0.0);
            assert_eq!(c, CostPriors::default_cost(t) * v.cost_factor());
            costs.push(c);
        }
        costs.sort_by(f64::total_cmp);
        costs.dedup();
        assert_eq!(costs.len(), 4, "variant rows must not collapse to uniform bins");
        // Measured entries keyed by the full row label still win.
        let row = crate::prompt::row_label("GPT-4", PromptVariant::Naive);
        let m = CostPriors::from_entries(
            "sidecar",
            vec![(row.clone(), t.index() as u32, 9.75f64)],
        );
        assert_eq!(m.cost(&row, t), 9.75);
    }

    #[test]
    fn unmeasurable_entries_are_dropped() {
        let p = CostPriors::from_entries(
            "sidecar",
            vec![
                ("m".to_string(), 0, 0.0),
                ("m".to_string(), 1, -1.0),
                ("m".to_string(), 2, f64::NAN),
                ("m".to_string(), 3, f64::INFINITY),
            ],
        );
        assert!(p.is_empty(), "zero/negative/non-finite walls mean 'never measured'");
        assert_eq!(p.hash(), CostPriors::default_profile().hash());
    }
}
