//! Process-wide warm-path switch.
//!
//! The warm execution engine (substrate leasing, input memoization,
//! supervisor reuse) is on by default: it is a pure throughput
//! optimisation whose records are required to match the cold path
//! byte-for-byte. The switch exists for A/B comparison — the
//! `grid_sweep` bench and the warm-path determinism test drive both
//! sides — and as an escape hatch (`PCG_COLD=1`) if a platform ever
//! misbehaves under thread reuse.
//!
//! The flag is read at every lease checkout / supervisor dispatch, so
//! toggling mid-process takes effect on the next candidate execution.
//! Tests that toggle it must serialise with each other (the integration
//! suites keep all toggling inside a single `#[test]`).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

static WARM: OnceLock<AtomicBool> = OnceLock::new();

fn flag() -> &'static AtomicBool {
    WARM.get_or_init(|| AtomicBool::new(std::env::var_os("PCG_COLD").is_none()))
}

/// Whether the warm path (leasing, memoization, supervisor reuse) is
/// active. Defaults to `true`; set `PCG_COLD=1` in the environment to
/// start cold.
#[inline]
pub fn enabled() -> bool {
    flag().load(Ordering::Relaxed)
}

/// Flip the warm path on or off for subsequent executions.
pub fn set_enabled(on: bool) {
    flag().store(on, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn toggle_round_trips() {
        let was = enabled();
        set_enabled(false);
        assert!(!enabled());
        set_enabled(true);
        assert!(enabled());
        set_enabled(was);
    }
}
