//! Typed task outputs and tolerant validation.
//!
//! Each PCGBench test driver compares a candidate's output against the
//! handwritten sequential baseline. Floating-point outputs use a relative
//! tolerance so that legitimate parallel reassociation (e.g. tree
//! reductions) is not marked incorrect, matching the paper's drivers.

use serde::{Deserialize, Serialize};

/// Default relative tolerance for floating-point comparisons.
pub const DEFAULT_REL_TOL: f64 = 1e-5;
/// Default absolute tolerance floor for values near zero.
pub const DEFAULT_ABS_TOL: f64 = 1e-7;

/// The result a task driver extracts from a candidate run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Output {
    /// A vector of floats (e.g. a scanned or transformed array).
    F64s(Vec<f64>),
    /// A vector of integers (e.g. histogram counts, sorted keys).
    I64s(Vec<i64>),
    /// A scalar float (e.g. a reduction result).
    F64(f64),
    /// A scalar integer (e.g. a count or an index).
    I64(i64),
    /// A boolean property (e.g. existence search).
    Bool(bool),
}

impl Output {
    /// Approximate equality: exact for integers/booleans, tolerance-based
    /// for floats (relative with an absolute floor).
    pub fn approx_eq(&self, other: &Output) -> bool {
        self.approx_eq_tol(other, DEFAULT_REL_TOL, DEFAULT_ABS_TOL)
    }

    /// Approximate equality with explicit tolerances.
    pub fn approx_eq_tol(&self, other: &Output, rel: f64, abs: f64) -> bool {
        match (self, other) {
            (Output::F64s(a), Output::F64s(b)) => {
                a.len() == b.len()
                    && a.iter().zip(b).all(|(&x, &y)| float_close(x, y, rel, abs))
            }
            (Output::I64s(a), Output::I64s(b)) => a == b,
            (Output::F64(a), Output::F64(b)) => float_close(*a, *b, rel, abs),
            (Output::I64(a), Output::I64(b)) => a == b,
            (Output::Bool(a), Output::Bool(b)) => a == b,
            _ => false,
        }
    }

    /// Number of scalar elements (1 for scalars).
    pub fn len(&self) -> usize {
        match self {
            Output::F64s(v) => v.len(),
            Output::I64s(v) => v.len(),
            _ => 1,
        }
    }

    /// True when a vector output has no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A human-readable summary used in failure reports.
    pub fn summary(&self) -> String {
        match self {
            Output::F64s(v) => format!("f64[{}]", v.len()),
            Output::I64s(v) => format!("i64[{}]", v.len()),
            Output::F64(x) => format!("f64({x})"),
            Output::I64(x) => format!("i64({x})"),
            Output::Bool(b) => format!("bool({b})"),
        }
    }
}

fn float_close(x: f64, y: f64, rel: f64, abs: f64) -> bool {
    if x == y {
        return true; // covers infinities of equal sign and exact zeros
    }
    if x.is_nan() || y.is_nan() {
        return false;
    }
    let diff = (x - y).abs();
    diff <= abs || diff <= rel * x.abs().max(y.abs())
}

impl From<Vec<f64>> for Output {
    fn from(v: Vec<f64>) -> Output {
        Output::F64s(v)
    }
}
impl From<Vec<f32>> for Output {
    fn from(v: Vec<f32>) -> Output {
        Output::F64s(v.into_iter().map(f64::from).collect())
    }
}
impl From<Vec<i64>> for Output {
    fn from(v: Vec<i64>) -> Output {
        Output::I64s(v)
    }
}
impl From<Vec<u32>> for Output {
    fn from(v: Vec<u32>) -> Output {
        Output::I64s(v.into_iter().map(i64::from).collect())
    }
}
impl From<Vec<usize>> for Output {
    fn from(v: Vec<usize>) -> Output {
        Output::I64s(v.into_iter().map(|x| x as i64).collect())
    }
}
impl From<f64> for Output {
    fn from(x: f64) -> Output {
        Output::F64(x)
    }
}
impl From<i64> for Output {
    fn from(x: i64) -> Output {
        Output::I64(x)
    }
}
impl From<usize> for Output {
    fn from(x: usize) -> Output {
        Output::I64(x as i64)
    }
}
impl From<bool> for Output {
    fn from(b: bool) -> Output {
        Output::Bool(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_integer_equality() {
        assert!(Output::I64s(vec![1, 2, 3]).approx_eq(&Output::I64s(vec![1, 2, 3])));
        assert!(!Output::I64s(vec![1, 2, 3]).approx_eq(&Output::I64s(vec![1, 2, 4])));
        assert!(!Output::I64s(vec![1, 2]).approx_eq(&Output::I64s(vec![1, 2, 3])));
    }

    #[test]
    fn float_tolerance() {
        let a = Output::F64(1.0);
        let b = Output::F64(1.0 + 5e-6);
        assert!(a.approx_eq(&b));
        let c = Output::F64(1.0 + 5e-4);
        assert!(!a.approx_eq(&c));
    }

    #[test]
    fn near_zero_uses_abs_floor() {
        assert!(Output::F64(0.0).approx_eq(&Output::F64(5e-8)));
        assert!(!Output::F64(0.0).approx_eq(&Output::F64(1e-3)));
    }

    #[test]
    fn nan_never_equal() {
        assert!(!Output::F64(f64::NAN).approx_eq(&Output::F64(f64::NAN)));
        assert!(!Output::F64(1.0).approx_eq(&Output::F64(f64::NAN)));
    }

    #[test]
    fn type_mismatch_unequal() {
        assert!(!Output::F64(1.0).approx_eq(&Output::I64(1)));
        assert!(!Output::Bool(true).approx_eq(&Output::I64(1)));
    }

    #[test]
    fn vector_tolerance() {
        let a = Output::F64s(vec![1.0, 2.0, 3.0]);
        let b = Output::F64s(vec![1.0 + 1e-6, 2.0 - 1e-6, 3.0]);
        assert!(a.approx_eq(&b));
    }

    #[test]
    fn conversions() {
        assert_eq!(Output::from(vec![1u32, 2]), Output::I64s(vec![1, 2]));
        assert_eq!(Output::from(3usize), Output::I64(3));
        assert_eq!(Output::from(vec![1.5f32]), Output::F64s(vec![1.5]));
        assert!(Output::from(true).approx_eq(&Output::Bool(true)));
    }

    #[test]
    fn len_and_summary() {
        assert_eq!(Output::F64s(vec![0.0; 4]).len(), 4);
        assert_eq!(Output::I64(7).len(), 1);
        assert!(Output::F64s(vec![]).is_empty());
        assert_eq!(Output::F64s(vec![0.0; 4]).summary(), "f64[4]");
    }
}
