//! # pcg-core
//!
//! Core vocabulary for **PCGBench-rs**, a Rust reproduction of the PCGBench
//! benchmark from *"Can Large Language Models Write Parallel Code?"*
//! (Nichols et al., HPDC 2024).
//!
//! This crate defines the benchmark's data model:
//!
//! * [`ProblemType`] — the twelve computational problem categories (Table 1),
//! * [`ExecutionModel`] — the seven execution models (Serial, OpenMP, Kokkos,
//!   MPI, MPI+OpenMP, CUDA, HIP),
//! * [`ProblemId`] / [`TaskId`] — the 60 problems and 420 tasks,
//! * [`Output`] — a tolerant, typed value for validating candidate results,
//! * [`usage`] — substrate API instrumentation used by the harness to detect
//!   sequential fallbacks (the paper's "does it actually use the parallel
//!   programming model" check),
//! * [`cancel`] — cooperative cancellation tokens the harness uses to stop
//!   runaway candidates at the time limit,
//! * [`warm`] — the process-wide switch for the warm execution path
//!   (substrate leasing, input memoization, supervisor reuse),
//! * [`plan`] — the cell-addressed work model: globally stable
//!   [`CellId`]s for every (config, model, task) cell and deterministic
//!   [`WorkPlan`]s that the harness shards across processes,
//! * [`priors`] — hash-stamped per-cell cost tables ([`CostPriors`])
//!   that drive LPT dispatch and cost-weighted shard partitioning,
//! * [`frame`] — the CRC-checked binary frame codec underlying the
//!   harness's v3 write-ahead journal,
//! * [`rng`] — deterministic per-task random streams,
//! * [`PcgError`] — the failure taxonomy shared by substrates and harness.
//!
//! Downstream crates build the substrates (`pcg-shmem`, `pcg-patterns`,
//! `pcg-mpisim`, `pcg-hybrid`, `pcg-gpusim`), the problem suite
//! (`pcg-problems`), the synthetic model zoo (`pcg-models`), the metric
//! estimators (`pcg-metrics`) and the evaluation pipeline (`pcg-harness`).

pub mod cancel;
pub mod candidate;
pub mod error;
pub mod exec;
pub mod frame;
pub mod output;
pub mod plan;
pub mod priors;
pub mod problem_type;
pub mod prompt;
pub mod rng;
pub mod stage;
pub mod task;
pub mod usage;
pub mod warm;

pub use cancel::CancelToken;
pub use candidate::{CandidateKind, Corruption, Quality};
pub use error::PcgError;
pub use exec::ExecutionModel;
pub use output::Output;
pub use plan::{CellId, PlanCell, ShardSpec, WorkPlan};
pub use priors::CostPriors;
pub use problem_type::ProblemType;
pub use prompt::PromptVariant;
pub use stage::Stage;
pub use task::{ProblemId, TaskId};

/// Number of problem types in the benchmark (Table 1).
pub const NUM_PROBLEM_TYPES: usize = 12;
/// Number of problems per problem type.
pub const PROBLEMS_PER_TYPE: usize = 5;
/// Number of execution models.
pub const NUM_EXECUTION_MODELS: usize = 7;
/// Total number of tasks: 12 types x 5 problems x 7 execution models = 420.
pub const NUM_TASKS: usize = NUM_PROBLEM_TYPES * PROBLEMS_PER_TYPE * NUM_EXECUTION_MODELS;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn task_count_matches_paper() {
        assert_eq!(NUM_TASKS, 420);
        assert_eq!(task::all_tasks().count(), 420);
    }
}
