//! The cell-addressed work model: global cell identities and
//! deterministic work plans.
//!
//! An evaluation grid is the cross product (model × task). Every cell
//! of that grid has a **globally stable address** — a [`CellId`], the
//! FNV-1a hash of `(config hash, model name, task)` — that is identical
//! in every process that enumerates the same configuration. The
//! write-ahead journal keys its entries by cell id (making each line
//! self-checking), resume matches journaled cells by id, and the
//! multi-process sharder partitions the grid by `id % shard_count`, so
//! one process can own an arbitrary slice of the grid and a later
//! `merge` can stitch the slices back together without any coordination
//! beyond the shared configuration.
//!
//! A [`WorkPlan`] is the deterministic enumeration of one grid:
//! model-major over a fixed model list and task list, each cell tagged
//! with its id. Plans are never persisted — any process derives the
//! identical plan from the configuration, which is what makes sharded
//! execution coordination-free.

use crate::task::TaskId;
use serde::{Deserialize, Serialize};

/// FNV-1a offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Fold `bytes` into an FNV-1a accumulator. Start from
/// [`fnv1a_start`] and chain freely; the hash of a concatenation is
/// the chained hash of its parts.
pub fn fnv1a_extend(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// The FNV-1a offset basis (the hash of the empty string).
pub fn fnv1a_start() -> u64 {
    FNV_OFFSET
}

/// FNV-1a of one byte slice.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    fnv1a_extend(fnv1a_start(), bytes)
}

/// Globally stable address of one evaluation cell.
///
/// Two processes that agree on the configuration hash, the model name,
/// and the task compute the same `CellId` — across hosts, worker
/// counts, and runs. The id is used as the journal key, the shard
/// partition key, and a per-line integrity check (a journal entry
/// whose recomputed id mismatches its stored id is treated as corrupt).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CellId(pub u64);

impl CellId {
    /// Address the cell `(model, task)` under the configuration
    /// identified by `config_hash`.
    ///
    /// The encoding hashes the config hash (little-endian), the model
    /// name, a `0xff` separator (model names are UTF-8 and can never
    /// contain `0xff`, so the framing is unambiguous), and the task's
    /// dense index.
    pub fn new(config_hash: u64, model: &str, task: TaskId) -> CellId {
        let mut h = fnv1a_extend(fnv1a_start(), &config_hash.to_le_bytes());
        h = fnv1a_extend(h, model.as_bytes());
        h = fnv1a_extend(h, &[0xff]);
        h = fnv1a_extend(h, &(task.index() as u64).to_le_bytes());
        CellId(h)
    }
}

impl std::fmt::Display for CellId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// Which deterministic slice of a plan a process owns: shard `index`
/// of `count`. The whole grid is shard `0/1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardSpec {
    /// This process's shard, `0..count`.
    pub index: u32,
    /// Total number of shards the plan is split into.
    pub count: u32,
}

impl ShardSpec {
    /// The trivial single-shard spec: every cell belongs to it.
    pub const WHOLE: ShardSpec = ShardSpec { index: 0, count: 1 };

    /// Construct, panicking on `index >= count` or `count == 0`.
    pub fn new(index: u32, count: u32) -> ShardSpec {
        assert!(count >= 1, "shard count must be >= 1");
        assert!(index < count, "shard index {index} out of range for {count} shards");
        ShardSpec { index, count }
    }

    /// Parse a `k/N` spec (`"0/3"`), rejecting malformed or
    /// out-of-range values.
    pub fn parse(s: &str) -> Result<ShardSpec, String> {
        let (k, n) = s.split_once('/').ok_or_else(|| format!("expected k/N, got {s:?}"))?;
        let index: u32 =
            k.trim().parse().map_err(|_| format!("bad shard index in {s:?}"))?;
        let count: u32 =
            n.trim().parse().map_err(|_| format!("bad shard count in {s:?}"))?;
        if count == 0 {
            return Err(format!("shard count must be >= 1 in {s:?}"));
        }
        if index >= count {
            return Err(format!("shard index {index} out of range for {count} shards"));
        }
        Ok(ShardSpec { index, count })
    }

    /// Whether `id` belongs to this shard. Partitioning is by
    /// `id % count`, so the shards of a plan are disjoint, exhaustive,
    /// and statistically balanced regardless of grid shape.
    pub fn contains(self, id: CellId) -> bool {
        id.0 % u64::from(self.count) == u64::from(self.index)
    }

    /// Whether this spec is the whole grid.
    pub fn is_whole(self) -> bool {
        self.count == 1
    }
}

impl std::fmt::Display for ShardSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.index, self.count)
    }
}

/// One enumerated cell of a [`WorkPlan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanCell {
    /// Index into the plan's model list.
    pub model: usize,
    /// Index into the plan's task list.
    pub task_idx: usize,
    /// The task itself.
    pub task: TaskId,
    /// The cell's global address.
    pub id: CellId,
}

/// The deterministic enumeration of one evaluation grid.
///
/// Cells are ordered model-major (all tasks of model 0, then model 1,
/// …) — the canonical record order — and every cell carries its
/// [`CellId`]. Any process holding the same `(config_hash, models,
/// tasks)` derives an identical plan.
#[derive(Debug, Clone)]
pub struct WorkPlan {
    config_hash: u64,
    models: Vec<String>,
    tasks: Vec<TaskId>,
}

impl WorkPlan {
    /// Build the plan for `models` × `tasks` under `config_hash`.
    pub fn new(config_hash: u64, models: Vec<String>, tasks: Vec<TaskId>) -> WorkPlan {
        WorkPlan { config_hash, models, tasks }
    }

    /// The configuration hash the plan (and every cell id) is pinned to.
    pub fn config_hash(&self) -> u64 {
        self.config_hash
    }

    /// Model names, record order.
    pub fn models(&self) -> &[String] {
        &self.models
    }

    /// Tasks, canonical order.
    pub fn tasks(&self) -> &[TaskId] {
        &self.tasks
    }

    /// Total number of cells in the grid.
    pub fn len(&self) -> usize {
        self.models.len() * self.tasks.len()
    }

    /// Whether the grid is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The address of cell `(model index, task index)`.
    pub fn id_of(&self, model: usize, task_idx: usize) -> CellId {
        CellId::new(self.config_hash, &self.models[model], self.tasks[task_idx])
    }

    /// Enumerate every cell, model-major.
    pub fn cells(&self) -> impl Iterator<Item = PlanCell> + '_ {
        self.models.iter().enumerate().flat_map(move |(mi, name)| {
            self.tasks.iter().enumerate().map(move |(ti, &task)| PlanCell {
                model: mi,
                task_idx: ti,
                task,
                id: CellId::new(self.config_hash, name, task),
            })
        })
    }

    /// The cells belonging to `shard`, in plan order.
    pub fn shard(&self, shard: ShardSpec) -> Vec<PlanCell> {
        self.cells().filter(|c| shard.contains(c.id)).collect()
    }

    /// The cells belonging to `shard` under a cost-weighted partition:
    /// greedy LPT bin-packing of the whole grid into `shard.count`
    /// bins, returning this shard's bin in plan order.
    ///
    /// Cells are considered in descending `cost_fn` order (ties broken
    /// by ascending cell id, so the packing is total-order
    /// deterministic) and each is assigned to the currently
    /// least-loaded bin (ties to the lowest bin index). Every process
    /// that derives the same plan and the same cost function derives
    /// the identical partition — the partition is still disjoint,
    /// exhaustive, and coordination-free, just balanced by expected
    /// cost instead of by hash residue. Non-finite or negative costs
    /// are clamped to zero rather than poisoning the sort; a table
    /// that clamps to zero *everywhere* carries no balance signal and
    /// falls back to the unweighted `id % count` partition (greedy
    /// packing of all-equal loads would dump the entire grid into
    /// bin 0 and starve every other worker).
    pub fn shard_weighted(
        &self,
        shard: ShardSpec,
        mut cost_fn: impl FnMut(&PlanCell) -> f64,
    ) -> Vec<PlanCell> {
        let cells: Vec<PlanCell> = self.cells().collect();
        if shard.count <= 1 {
            return cells;
        }
        let weights: Vec<f64> = cells
            .iter()
            .map(|c| {
                let w = cost_fn(c);
                if w.is_finite() && w > 0.0 {
                    w
                } else {
                    0.0
                }
            })
            .collect();
        if weights.iter().all(|&w| w == 0.0) {
            return cells.into_iter().filter(|c| shard.contains(c.id)).collect();
        }
        let mut order: Vec<usize> = (0..cells.len()).collect();
        order.sort_by(|&a, &b| {
            weights[b].total_cmp(&weights[a]).then(cells[a].id.cmp(&cells[b].id))
        });
        let mut load = vec![0.0f64; shard.count as usize];
        let mut owner = vec![0u32; cells.len()];
        for &i in &order {
            let bin = (0..load.len())
                .min_by(|&a, &b| load[a].total_cmp(&load[b]))
                .expect("shard.count >= 1");
            owner[i] = bin as u32;
            load[bin] += weights[i];
        }
        cells
            .into_iter()
            .enumerate()
            .filter(|(i, _)| owner[*i] == shard.index)
            .map(|(_, c)| c)
            .collect()
    }

    /// The cells belonging to `shard`, weighted by `priors` when a
    /// table is supplied, else by the `id % count` fallback. This is
    /// the single partition entry point the harness uses: passing the
    /// same `Option<&CostPriors>` (validated by hash stamp) in every
    /// process guarantees identical slices.
    pub fn shard_with(
        &self,
        shard: ShardSpec,
        priors: Option<&crate::priors::CostPriors>,
    ) -> Vec<PlanCell> {
        match priors {
            Some(p) => self.shard_weighted(shard, |c| p.cost(&self.models[c.model], c.task)),
            None => self.shard(shard),
        }
    }

    /// The order a thief should try to steal `shard`'s cells: the
    /// exact **reverse** of the victim's own dispatch order, so the
    /// thief starts from the cells the victim would reach *last* and
    /// the victim keeps its in-flight (heaviest-first under LPT) work.
    ///
    /// With priors the victim dispatches descending cost with ties on
    /// ascending cell id, so thieves enumerate ascending cost with
    /// ties on descending id — "cheapest-last cells first". Without
    /// priors the victim walks its slice in plan order, so thieves
    /// walk it reversed. Costs are clamped exactly like
    /// [`WorkPlan::shard_weighted`] so both sides rank identically.
    pub fn steal_order(
        &self,
        shard: ShardSpec,
        priors: Option<&crate::priors::CostPriors>,
    ) -> Vec<PlanCell> {
        let mut owned = self.shard_with(shard, priors);
        match priors {
            Some(p) => {
                let weight = |c: &PlanCell| {
                    let w = p.cost(&self.models[c.model], c.task);
                    if w.is_finite() && w > 0.0 {
                        w
                    } else {
                        0.0
                    }
                };
                owned.sort_by(|a, b| weight(a).total_cmp(&weight(b)).then(b.id.cmp(&a.id)));
            }
            None => owned.reverse(),
        }
        owned
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::all_tasks;

    fn plan() -> WorkPlan {
        WorkPlan::new(
            0xdead_beef,
            vec!["GPT-4".into(), "CodeLlama-7B".into(), "StarCoderBase".into()],
            all_tasks().take(40).collect(),
        )
    }

    #[test]
    fn cell_ids_are_stable_and_distinct() {
        let p = plan();
        let ids: Vec<CellId> = p.cells().map(|c| c.id).collect();
        assert_eq!(ids.len(), p.len());
        let mut uniq = ids.clone();
        uniq.sort();
        uniq.dedup();
        assert_eq!(uniq.len(), ids.len(), "cell ids must be collision-free on a grid");
        // Re-derived plans address identically.
        let again: Vec<CellId> = plan().cells().map(|c| c.id).collect();
        assert_eq!(ids, again);
        // And ids depend on every coordinate.
        let c0 = p.cells().next().unwrap();
        assert_ne!(CellId::new(1, "GPT-4", c0.task), c0.id);
        assert_ne!(CellId::new(0xdead_beef, "GPT-3.5", c0.task), c0.id);
    }

    #[test]
    fn shards_partition_the_grid() {
        let p = plan();
        let all: Vec<CellId> = p.cells().map(|c| c.id).collect();
        let mut seen = Vec::new();
        for k in 0..3 {
            let shard = p.shard(ShardSpec::new(k, 3));
            for c in &shard {
                assert!(ShardSpec::new(k, 3).contains(c.id));
            }
            seen.extend(shard.iter().map(|c| c.id));
        }
        seen.sort();
        let mut want = all.clone();
        want.sort();
        assert_eq!(seen, want, "3 shards must cover every cell exactly once");
        // No shard is pathologically empty on a 120-cell grid.
        for k in 0..3 {
            assert!(p.shard(ShardSpec::new(k, 3)).len() > 10);
        }
        // The whole-grid spec is the identity.
        assert_eq!(p.shard(ShardSpec::WHOLE).len(), p.len());
    }

    #[test]
    fn plan_order_is_model_major() {
        let p = plan();
        let cells: Vec<PlanCell> = p.cells().collect();
        for (i, c) in cells.iter().enumerate() {
            assert_eq!(c.model, i / p.tasks().len());
            assert_eq!(c.task_idx, i % p.tasks().len());
            assert_eq!(c.task, p.tasks()[c.task_idx]);
            assert_eq!(c.id, p.id_of(c.model, c.task_idx));
        }
    }

    #[test]
    fn shard_spec_parses() {
        assert_eq!(ShardSpec::parse("0/3"), Ok(ShardSpec::new(0, 3)));
        assert_eq!(ShardSpec::parse("2/3"), Ok(ShardSpec::new(2, 3)));
        assert_eq!(ShardSpec::parse("0/1"), Ok(ShardSpec::WHOLE));
        assert!(ShardSpec::parse("3/3").is_err(), "index must be < count");
        assert!(ShardSpec::parse("0/0").is_err());
        assert!(ShardSpec::parse("1").is_err());
        assert!(ShardSpec::parse("a/b").is_err());
        assert!(ShardSpec::parse("-1/3").is_err());
        assert_eq!(ShardSpec::new(1, 4).to_string(), "1/4");
        assert!(ShardSpec::WHOLE.is_whole());
        assert!(!ShardSpec::new(0, 2).is_whole());
    }

    #[test]
    fn weighted_shards_partition_the_grid() {
        let p = plan();
        let all: Vec<CellId> = p.cells().map(|c| c.id).collect();
        // A skewed cost function: a handful of cells are 50× the rest.
        let cost = |c: &PlanCell| if c.id.0.is_multiple_of(7) { 50.0 } else { 1.0 };
        let mut seen = Vec::new();
        for k in 0..3 {
            let shard = p.shard_weighted(ShardSpec::new(k, 3), cost);
            // Plan order is preserved within the slice.
            let ids: Vec<CellId> = shard.iter().map(|c| c.id).collect();
            let order: Vec<usize> =
                shard.iter().map(|c| c.model * p.tasks().len() + c.task_idx).collect();
            assert!(order.windows(2).all(|w| w[0] < w[1]), "slice must stay plan-ordered");
            // Deterministic across re-derivation.
            assert_eq!(
                ids,
                plan()
                    .shard_weighted(ShardSpec::new(k, 3), cost)
                    .iter()
                    .map(|c| c.id)
                    .collect::<Vec<_>>()
            );
            seen.extend(ids);
        }
        seen.sort();
        let mut want = all.clone();
        want.sort();
        assert_eq!(seen, want, "weighted shards must cover every cell exactly once");
        // LPT balance bound: max load - min load <= max single cost.
        let loads: Vec<f64> = (0..3)
            .map(|k| p.shard_weighted(ShardSpec::new(k, 3), cost).iter().map(cost).sum())
            .collect();
        let max = loads.iter().cloned().fold(f64::MIN, f64::max);
        let min = loads.iter().cloned().fold(f64::MAX, f64::min);
        assert!(max - min <= 50.0, "LPT spread {max}-{min} exceeds the largest cell");
        // Degenerate cost functions (everything clamps to zero) fall
        // back to the unweighted partition — no worker is starved.
        for degenerate in [f64::NAN, 0.0, -3.0, f64::INFINITY] {
            for k in 0..3 {
                let spec = ShardSpec::new(k, 3);
                assert_eq!(
                    p.shard_weighted(spec, |_| degenerate),
                    p.shard(spec),
                    "all-{degenerate} costs must fall back to id % count"
                );
            }
        }
        // count == 1 is the identity.
        assert_eq!(p.shard_weighted(ShardSpec::WHOLE, cost).len(), p.len());
    }

    #[test]
    fn weighted_shards_survive_degenerate_plans() {
        // More bins than cells: every cell lands somewhere, the extra
        // bins are empty, and nothing panics.
        let tiny = WorkPlan::new(7, vec!["GPT-4".into()], all_tasks().take(2).collect());
        let cost = |c: &PlanCell| (c.id.0 % 5) as f64 + 1.0;
        let mut seen = Vec::new();
        let mut empty = 0;
        for k in 0..8 {
            let owned = tiny.shard_weighted(ShardSpec::new(k, 8), cost);
            if owned.is_empty() {
                empty += 1;
            }
            seen.extend(owned.iter().map(|c| c.id));
        }
        assert_eq!(seen.len(), tiny.len(), "count > cells must not drop or duplicate cells");
        assert_eq!(empty, 8 - tiny.len() as i32, "exactly count - cells bins stay empty");

        // A single-cell plan: the cell goes to exactly one bin,
        // deterministically.
        let one = WorkPlan::new(7, vec!["GPT-4".into()], all_tasks().take(1).collect());
        let owners: Vec<u32> = (0..3)
            .filter(|&k| !one.shard_weighted(ShardSpec::new(k, 3), cost).is_empty())
            .collect();
        assert_eq!(owners.len(), 1, "a single cell has a single owner");
        let again: Vec<u32> = (0..3)
            .filter(|&k| !one.shard_weighted(ShardSpec::new(k, 3), cost).is_empty())
            .collect();
        assert_eq!(owners, again);
        // And the zero-signal single-cell case matches the unweighted
        // fallback exactly.
        for k in 0..3 {
            let spec = ShardSpec::new(k, 3);
            assert_eq!(one.shard_weighted(spec, |_| 0.0), one.shard(spec));
        }
    }

    #[test]
    fn steal_order_reverses_the_victims_dispatch() {
        let p = plan();
        // Without priors the victim runs its slice in plan order, so
        // the steal order is that slice reversed.
        for k in 0..3 {
            let spec = ShardSpec::new(k, 3);
            let mut expect = p.shard(spec);
            expect.reverse();
            assert_eq!(p.steal_order(spec, None), expect);
        }
        // With priors: same cell set as the weighted slice, sorted
        // ascending cost with ties on descending id — the reverse of
        // LPT dispatch (descending cost, ties ascending id).
        let priors = crate::priors::CostPriors::default_profile();
        for k in 0..3 {
            let spec = ShardSpec::new(k, 3);
            let order = p.steal_order(spec, Some(&priors));
            let mut want: Vec<CellId> =
                p.shard_with(spec, Some(&priors)).iter().map(|c| c.id).collect();
            want.sort();
            let mut got: Vec<CellId> = order.iter().map(|c| c.id).collect();
            got.sort();
            assert_eq!(got, want, "steal order must be a permutation of the owned slice");
            let cost = |c: &PlanCell| {
                let w = priors.cost(&p.models()[c.model], c.task);
                if w.is_finite() && w > 0.0 {
                    w
                } else {
                    0.0
                }
            };
            assert!(
                order.windows(2).all(|w| {
                    cost(&w[0]) < cost(&w[1])
                        || (cost(&w[0]) == cost(&w[1]) && w[0].id > w[1].id)
                }),
                "steal order must be ascending cost, ties descending id"
            );
        }
    }

    #[test]
    fn shard_with_dispatches_on_priors() {
        let p = plan();
        for k in 0..3 {
            let spec = ShardSpec::new(k, 3);
            assert_eq!(p.shard_with(spec, None), p.shard(spec));
        }
        let priors = crate::priors::CostPriors::default_profile();
        let mut seen: Vec<CellId> = (0..3)
            .flat_map(|k| p.shard_with(ShardSpec::new(k, 3), Some(&priors)))
            .map(|c| c.id)
            .collect();
        seen.sort();
        let mut want: Vec<CellId> = p.cells().map(|c| c.id).collect();
        want.sort();
        assert_eq!(seen, want);
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Classic FNV-1a test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
        // Chaining is concatenation.
        assert_eq!(fnv1a_extend(fnv1a(b"foo"), b"bar"), fnv1a(b"foobar"));
    }
}
