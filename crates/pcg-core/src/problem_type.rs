//! The twelve computational problem types of PCGBench (paper Table 1).

use serde::{Deserialize, Serialize};

/// A category of computational problems. Each type has five problems, and
/// each problem has a prompt for all seven execution models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ProblemType {
    /// Sort an array or sub-array of values; in-place and out-of-place.
    Sort,
    /// Scan operations, such as prefix sum, over an array of values.
    Scan,
    /// Dense matrix algebra functions from all 3 levels of BLAS.
    DenseLinearAlgebra,
    /// Sparse matrix algebra functions from all 3 levels of BLAS.
    SparseLinearAlgebra,
    /// Search for an element or property in an array of values.
    Search,
    /// Reduction over an array dimension, such as computing a sum.
    Reduce,
    /// Binning values based on a property of the data.
    Histogram,
    /// One iteration of 1D and 2D stencil problems, such as Jacobi.
    Stencil,
    /// Graph algorithms, such as component counting.
    Graph,
    /// Geometric properties, such as convex hull.
    Geometry,
    /// Standard and inverse Fourier transforms.
    FourierTransform,
    /// Map a constant function to each element of an array.
    Transform,
}

impl ProblemType {
    /// All twelve problem types, in Table 1 order.
    pub const ALL: [ProblemType; 12] = [
        ProblemType::Sort,
        ProblemType::Scan,
        ProblemType::DenseLinearAlgebra,
        ProblemType::SparseLinearAlgebra,
        ProblemType::Search,
        ProblemType::Reduce,
        ProblemType::Histogram,
        ProblemType::Stencil,
        ProblemType::Graph,
        ProblemType::Geometry,
        ProblemType::FourierTransform,
        ProblemType::Transform,
    ];

    /// Short figure label (matches the paper's Figure 3 axis labels).
    pub fn label(self) -> &'static str {
        match self {
            ProblemType::Sort => "sort",
            ProblemType::Scan => "scan",
            ProblemType::DenseLinearAlgebra => "dense_la",
            ProblemType::SparseLinearAlgebra => "sparse_la",
            ProblemType::Search => "search",
            ProblemType::Reduce => "reduce",
            ProblemType::Histogram => "histogram",
            ProblemType::Stencil => "stencil",
            ProblemType::Graph => "graph",
            ProblemType::Geometry => "geometry",
            ProblemType::FourierTransform => "fft",
            ProblemType::Transform => "transform",
        }
    }

    /// Table 1 description text.
    pub fn description(self) -> &'static str {
        match self {
            ProblemType::Sort => "Sort an array or sub-array of values; in-place and out-of-place.",
            ProblemType::Scan => "Scan operations, such as prefix sum, over an array of values.",
            ProblemType::DenseLinearAlgebra => {
                "Dense matrix algebra functions from all 3 levels of BLAS."
            }
            ProblemType::SparseLinearAlgebra => {
                "Sparse matrix algebra functions from all 3 levels of BLAS."
            }
            ProblemType::Search => "Search for an element or property in an array of values.",
            ProblemType::Reduce => {
                "Reduction operation over an array dimension, such as computing a sum."
            }
            ProblemType::Histogram => "Binning values based on a property of the data.",
            ProblemType::Stencil => {
                "1 iteration of 1D and 2D stencil problems, such as Jacobi stencil."
            }
            ProblemType::Graph => "Graph algorithms, such as component counting.",
            ProblemType::Geometry => "Compute geometric properties, such as convex hull.",
            ProblemType::FourierTransform => "Compute standard and inverse Fourier transforms.",
            ProblemType::Transform => "Map a constant function to each element of an array.",
        }
    }

    /// Stable index (Table 1 order).
    pub fn index(self) -> usize {
        ProblemType::ALL.iter().position(|t| *t == self).unwrap()
    }

    /// Inverse of [`ProblemType::index`].
    pub fn from_index(i: usize) -> Option<ProblemType> {
        ProblemType::ALL.get(i).copied()
    }

    /// Parse a figure label.
    pub fn parse(s: &str) -> Option<ProblemType> {
        ProblemType::ALL.into_iter().find(|t| t.label() == s)
    }

    /// Whether the problem type is structured/dense (the paper observes
    /// LLMs do best on these) as opposed to sparse/unstructured.
    pub fn is_structured(self) -> bool {
        !matches!(
            self,
            ProblemType::SparseLinearAlgebra
                | ProblemType::Graph
                | ProblemType::Geometry
                | ProblemType::FourierTransform
        )
    }
}

impl std::fmt::Display for ProblemType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twelve_types() {
        assert_eq!(ProblemType::ALL.len(), 12);
    }

    #[test]
    fn index_roundtrip() {
        for (i, t) in ProblemType::ALL.into_iter().enumerate() {
            assert_eq!(t.index(), i);
            assert_eq!(ProblemType::from_index(i), Some(t));
            assert_eq!(ProblemType::parse(t.label()), Some(t));
        }
    }

    #[test]
    fn labels_unique() {
        let mut labels: Vec<_> = ProblemType::ALL.iter().map(|t| t.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 12);
    }

    #[test]
    fn descriptions_nonempty() {
        for t in ProblemType::ALL {
            assert!(!t.description().is_empty());
        }
    }
}
