//! The seven execution models tested by PCGBench (paper §4).
//!
//! The Rust reproduction maps each C++ programming model to an in-repo
//! substrate with equivalent observable semantics:
//!
//! | Paper model  | Substrate crate | Parallel resource |
//! |--------------|-----------------|-------------------|
//! | Serial       | plain Rust      | 1 core            |
//! | OpenMP       | `pcg-shmem`     | threads (1..=32)  |
//! | Kokkos       | `pcg-patterns`  | threads (1..=32)  |
//! | MPI          | `pcg-mpisim`    | ranks (1..=512)   |
//! | MPI+OpenMP   | `pcg-hybrid`    | ranks x threads   |
//! | CUDA         | `pcg-gpusim`    | kernel threads    |
//! | HIP          | `pcg-gpusim`    | kernel threads    |

use serde::{Deserialize, Serialize};

/// One of the seven execution models a PCGBench prompt targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ExecutionModel {
    /// Sequential C++ in the paper; plain single-threaded Rust here.
    Serial,
    /// OpenMP work-sharing; the `pcg-shmem` thread-pool substrate here.
    OpenMp,
    /// Kokkos parallel patterns; the `pcg-patterns` substrate here.
    Kokkos,
    /// MPI message passing; the `pcg-mpisim` virtual-time simulator here.
    Mpi,
    /// Hybrid MPI+OpenMP; `pcg-hybrid` (ranks whose compute is threaded).
    MpiOpenMp,
    /// CUDA kernels; the `pcg-gpusim` emulator with an A100-like profile.
    Cuda,
    /// HIP kernels; the `pcg-gpusim` emulator with an MI50-like profile.
    Hip,
}

impl ExecutionModel {
    /// All seven models, in the paper's canonical order.
    pub const ALL: [ExecutionModel; 7] = [
        ExecutionModel::Serial,
        ExecutionModel::OpenMp,
        ExecutionModel::Kokkos,
        ExecutionModel::Mpi,
        ExecutionModel::MpiOpenMp,
        ExecutionModel::Cuda,
        ExecutionModel::Hip,
    ];

    /// The six parallel models (everything but `Serial`).
    pub const PARALLEL: [ExecutionModel; 6] = [
        ExecutionModel::OpenMp,
        ExecutionModel::Kokkos,
        ExecutionModel::Mpi,
        ExecutionModel::MpiOpenMp,
        ExecutionModel::Cuda,
        ExecutionModel::Hip,
    ];

    /// Whether this model is expected to use parallel resources.
    pub fn is_parallel(self) -> bool {
        !matches!(self, ExecutionModel::Serial)
    }

    /// Whether this model runs on the (simulated) GPU.
    pub fn is_gpu(self) -> bool {
        matches!(self, ExecutionModel::Cuda | ExecutionModel::Hip)
    }

    /// Whether this model involves distributed-memory ranks.
    pub fn is_distributed(self) -> bool {
        matches!(self, ExecutionModel::Mpi | ExecutionModel::MpiOpenMp)
    }

    /// Display label matching the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            ExecutionModel::Serial => "serial",
            ExecutionModel::OpenMp => "omp",
            ExecutionModel::Kokkos => "kokkos",
            ExecutionModel::Mpi => "mpi",
            ExecutionModel::MpiOpenMp => "mpi+omp",
            ExecutionModel::Cuda => "cuda",
            ExecutionModel::Hip => "hip",
        }
    }

    /// Stable small integer index (order of [`ExecutionModel::ALL`]).
    pub fn index(self) -> usize {
        match self {
            ExecutionModel::Serial => 0,
            ExecutionModel::OpenMp => 1,
            ExecutionModel::Kokkos => 2,
            ExecutionModel::Mpi => 3,
            ExecutionModel::MpiOpenMp => 4,
            ExecutionModel::Cuda => 5,
            ExecutionModel::Hip => 6,
        }
    }

    /// Inverse of [`ExecutionModel::index`].
    pub fn from_index(i: usize) -> Option<ExecutionModel> {
        ExecutionModel::ALL.get(i).copied()
    }

    /// Parse a figure label (as produced by [`ExecutionModel::label`]).
    pub fn parse(s: &str) -> Option<ExecutionModel> {
        ExecutionModel::ALL.into_iter().find(|m| m.label() == s)
    }

    /// The resource counts `n` the paper sweeps for this model (§7.2):
    /// threads 1..=32 for OpenMP/Kokkos, ranks 1..=512 for MPI, node x thread
    /// products for hybrid, and a nominal kernel-thread count for GPU models
    /// (per-prompt in the paper; we report a single canonical point).
    pub fn resource_sweep(self) -> Vec<u32> {
        match self {
            ExecutionModel::Serial => vec![1],
            ExecutionModel::OpenMp | ExecutionModel::Kokkos => vec![1, 2, 4, 8, 16, 32],
            ExecutionModel::Mpi => vec![1, 2, 4, 8, 16, 32, 64, 128, 256, 512],
            // 1..=4 nodes x 1,2,4,...,64 threads; reported as total cores.
            ExecutionModel::MpiOpenMp => vec![1, 2, 4, 8, 16, 32, 64, 128, 192, 256],
            // Kernel-thread count varies per prompt; the sweep is nominal.
            ExecutionModel::Cuda | ExecutionModel::Hip => vec![0],
        }
    }

    /// The largest resource count, used for the headline `speedup_n@k` /
    /// `efficiency_n@k` comparisons (Figures 6 and 7): n=32 threads for
    /// OpenMP and Kokkos, n=512 ranks for MPI, n=4x64 for MPI+OpenMP.
    /// For CUDA/HIP the paper sets n to the kernel thread count, which
    /// varies per prompt; 0 is a sentinel meaning "per-prompt".
    pub fn headline_n(self) -> u32 {
        match self {
            ExecutionModel::Serial => 1,
            ExecutionModel::OpenMp | ExecutionModel::Kokkos => 32,
            ExecutionModel::Mpi => 512,
            ExecutionModel::MpiOpenMp => 256,
            ExecutionModel::Cuda | ExecutionModel::Hip => 0,
        }
    }
}

impl std::fmt::Display for ExecutionModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_roundtrip() {
        for m in ExecutionModel::ALL {
            assert_eq!(ExecutionModel::from_index(m.index()), Some(m));
            assert_eq!(ExecutionModel::parse(m.label()), Some(m));
        }
        assert_eq!(ExecutionModel::from_index(7), None);
        assert_eq!(ExecutionModel::parse("nope"), None);
    }

    #[test]
    fn parallel_partition() {
        assert!(!ExecutionModel::Serial.is_parallel());
        for m in ExecutionModel::PARALLEL {
            assert!(m.is_parallel());
        }
        assert_eq!(ExecutionModel::ALL.len(), ExecutionModel::PARALLEL.len() + 1);
    }

    #[test]
    fn gpu_and_distributed_flags() {
        assert!(ExecutionModel::Cuda.is_gpu());
        assert!(ExecutionModel::Hip.is_gpu());
        assert!(!ExecutionModel::Kokkos.is_gpu());
        assert!(ExecutionModel::Mpi.is_distributed());
        assert!(ExecutionModel::MpiOpenMp.is_distributed());
        assert!(!ExecutionModel::OpenMp.is_distributed());
    }

    #[test]
    fn headline_matches_sweep_max() {
        for m in [ExecutionModel::OpenMp, ExecutionModel::Kokkos, ExecutionModel::Mpi] {
            assert_eq!(m.headline_n(), *m.resource_sweep().last().unwrap());
        }
    }
}
