//! Evaluation pipeline stages, for per-stage timing/observability.
//!
//! The harness attributes every second of an evaluation to one of these
//! stages; the scheduler aggregates them into an `EvalStats` record so a
//! grid sweep can report where the wall-clock went (queue wait vs.
//! baseline measurement vs. candidate runs vs. validation).

use serde::{Deserialize, Serialize};

/// One stage of evaluating a candidate cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Stage {
    /// Time a grid cell spent enqueued before a worker picked it up.
    Queue,
    /// Measuring (or re-measuring) the sequential baseline.
    Baseline,
    /// Building + running the candidate (including timing repetitions).
    Run,
    /// Output comparison against the oracle and the API-usage check.
    Validate,
}

impl Stage {
    /// All stages, reporting order.
    pub const ALL: [Stage; 4] = [Stage::Queue, Stage::Baseline, Stage::Run, Stage::Validate];

    /// Short stable label used in stats tables.
    pub fn label(self) -> &'static str {
        match self {
            Stage::Queue => "queue",
            Stage::Baseline => "baseline",
            Stage::Run => "run",
            Stage::Validate => "validate",
        }
    }
}

impl std::fmt::Display for Stage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_unique_and_ordered() {
        let labels: Vec<_> = Stage::ALL.iter().map(|s| s.label()).collect();
        let mut dedup = labels.clone();
        dedup.dedup();
        assert_eq!(labels, dedup);
        assert!(Stage::Queue < Stage::Run);
    }

    #[test]
    fn stage_serializes_as_variant_name() {
        let json = serde_json::to_string(&Stage::Validate).unwrap();
        assert_eq!(json, "\"Validate\"");
        assert_eq!(serde_json::from_str::<Stage>(&json).unwrap(), Stage::Validate);
    }
}
