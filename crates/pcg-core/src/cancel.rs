//! Cooperative cancellation for runaway candidates.
//!
//! The harness kills a candidate at the paper's time limit, but a killed
//! candidate is not a stopped candidate: without cooperation the worker
//! thread (and any substrate threads it spawned) keeps burning CPU for
//! the rest of the run. This module gives the substrates a way to notice
//! the kill. The runner creates a [`CancelToken`] per candidate and
//! installs it thread-locally (mirroring [`crate::usage`]'s sink
//! plumbing); substrates capture it with [`current_token`] at region
//! entry, re-install it on their own worker threads, and poll it at
//! natural progress points — shmem chunk boundaries and barrier spins,
//! mpisim blocking waits, gpusim kernel launches.
//!
//! A cancelled substrate unwinds by panicking with the [`Cancelled`]
//! marker payload via [`panic_any`]. The unwind rides the substrates'
//! existing panic-capture machinery (pool join propagation, rank abort
//! cascades, `catch_unwind` in the runner), so cancellation needs no new
//! control-flow paths — it is "a panic the harness asked for", and
//! [`is_cancel_payload`] lets panic reporters label it as such.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Shared cancellation flag between the harness and one candidate's
/// threads. Cheap to clone; all clones observe the same flag.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Signal cancellation. Idempotent; visible to all clones.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested.
    #[inline]
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }

    /// Unwind with the [`Cancelled`] marker if cancellation has been
    /// requested. Substrates call this at progress points.
    #[inline]
    pub fn check(&self) {
        if self.is_cancelled() {
            panic_cancelled();
        }
    }
}

/// Panic payload marking a cooperative-cancellation unwind, so panic
/// reporters can distinguish "the harness stopped this candidate" from
/// "the candidate crashed".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cancelled;

/// Unwind the current thread with the [`Cancelled`] marker.
pub fn panic_cancelled() -> ! {
    std::panic::panic_any(Cancelled);
}

/// Whether a caught panic payload is the [`Cancelled`] marker.
pub fn is_cancel_payload(payload: &(dyn std::any::Any + Send)) -> bool {
    payload.is::<Cancelled>()
}

thread_local! {
    static CURRENT: RefCell<Option<CancelToken>> = const { RefCell::new(None) };
}

/// The token installed on this thread, if any — capture it before
/// spawning substrate worker threads and re-install it on each of them
/// so every thread working for the candidate observes the same kill.
pub fn current_token() -> Option<CancelToken> {
    CURRENT.with(|c| c.borrow().clone())
}

/// Install `token` on this thread until the returned guard drops (the
/// previous token, if any, is restored).
pub fn install_token(token: Option<CancelToken>) -> TokenGuard {
    let prev = CURRENT.with(|c| c.replace(token));
    TokenGuard { prev }
}

/// Replace this thread's token with no restoring guard. For long-lived
/// substrate worker threads that are retargeted between candidates when
/// a warm pool is leased out again; transient threads should prefer
/// [`install_token`], whose guard restores the previous token.
pub fn set_token(token: Option<CancelToken>) {
    CURRENT.with(|c| *c.borrow_mut() = token);
}

/// Restores the previously installed token on drop.
pub struct TokenGuard {
    prev: Option<CancelToken>,
}

impl Drop for TokenGuard {
    fn drop(&mut self) {
        let prev = self.prev.take();
        CURRENT.with(|c| *c.borrow_mut() = prev);
    }
}

/// Convenience: poll the thread's installed token, unwinding with
/// [`Cancelled`] if it has been signalled. A no-op when no token is
/// installed, so substrate hot paths stay free outside the harness.
#[inline]
pub fn check_current() {
    CURRENT.with(|c| {
        if let Some(tok) = c.borrow().as_ref() {
            if tok.is_cancelled() {
                panic_cancelled();
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_the_flag() {
        let t = CancelToken::new();
        let c = t.clone();
        assert!(!c.is_cancelled());
        t.cancel();
        assert!(c.is_cancelled());
    }

    #[test]
    fn check_unwinds_with_marker_after_cancel() {
        let t = CancelToken::new();
        t.check(); // not cancelled: no-op
        t.cancel();
        let err = std::panic::catch_unwind(|| t.check()).unwrap_err();
        assert!(is_cancel_payload(err.as_ref()));
    }

    #[test]
    fn install_restores_previous_on_drop() {
        let outer = CancelToken::new();
        let _g = install_token(Some(outer.clone()));
        {
            let inner = CancelToken::new();
            let _g2 = install_token(Some(inner.clone()));
            inner.cancel();
            assert!(current_token().unwrap().is_cancelled());
        }
        assert!(!current_token().unwrap().is_cancelled());
    }

    #[test]
    fn check_current_is_noop_without_token() {
        check_current(); // must not panic
    }

    #[test]
    fn check_current_fires_installed_token() {
        let t = CancelToken::new();
        t.cancel();
        let g = install_token(Some(t));
        let err = std::panic::catch_unwind(check_current).unwrap_err();
        drop(g);
        assert!(is_cancel_payload(err.as_ref()));
    }

    #[test]
    fn token_propagates_to_spawned_workers() {
        let t = CancelToken::new();
        let _g = install_token(Some(t.clone()));
        let captured = current_token();
        std::thread::scope(|s| {
            s.spawn(move || {
                let _g = install_token(captured);
                assert!(!current_token().unwrap().is_cancelled());
            });
        });
    }
}
