//! The candidate-defect taxonomy.
//!
//! A synthetic model "generates code" by emitting a [`CandidateKind`]:
//! which executable artifact the harness should build and run for a task.
//! The taxonomy mirrors the failure modes the paper observes in real LLM
//! output: code that does not compile, code that crashes, code that runs
//! but computes the wrong thing, code that silently ignores the requested
//! programming model (sequential fallback), code that never terminates
//! within the limit, and correct code of varying parallel quality.

use serde::{Deserialize, Serialize};

/// Parallel quality of a correct candidate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Quality {
    /// The reference parallel implementation (good decomposition).
    Efficient,
    /// Correct but poorly parallelized (e.g. one thread/rank does all
    /// the work — a failure mode the paper's efficiency metrics expose).
    Inefficient,
}

/// How a wrong-output candidate corrupts its (otherwise computed) result.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Corruption {
    /// One element perturbed (classic boundary/race symptom).
    PerturbElement,
    /// Output shifted by one position (off-by-one decomposition).
    OffByOneShift,
    /// Output truncated (lost remainder in the block distribution).
    Truncate,
    /// Result scaled wrongly (double-counted overlap).
    WrongScale,
}

impl Corruption {
    /// All corruption modes.
    pub const ALL: [Corruption; 4] = [
        Corruption::PerturbElement,
        Corruption::OffByOneShift,
        Corruption::Truncate,
        Corruption::WrongScale,
    ];
}

/// The artifact a synthetic model emitted for one sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CandidateKind {
    /// Compiles, runs, validates; quality affects performance only.
    Correct(Quality),
    /// Correct output but never touches the required parallel API
    /// (detected by the harness usage check; counted incorrect for
    /// parallel tasks, exactly as the paper's string-match check does).
    SequentialFallback,
    /// Runs the parallel code path but produces a corrupted result.
    WrongOutput(Corruption),
    /// Does not compile.
    BuildFailure,
    /// Crashes at runtime.
    RuntimeCrash,
    /// Exceeds the harness time limit.
    Timeout,
    /// Transient fault: crashes on its first invocation, runs correctly
    /// (efficiently parallel) when retried. Models the intermittent
    /// races real LLM parallel code exhibits; only scored as correct
    /// when the harness retries hard failures (`retry_flaky`).
    Flaky,
    /// Circular-wait defect: every rank blocks on a message (or lock
    /// analog) no peer will ever send. Caught fail-fast by the
    /// containment scheduler's wait-for-graph detector instead of
    /// burning the wall-clock timeout.
    Deadlock,
    /// Unbounded-recursion defect: the candidate consumes its entire
    /// execution stack. Caught by the fiber guard page and converted
    /// into an immediate stack-overflow verdict.
    StackHog,
}

impl CandidateKind {
    /// Whether the sample also counts as a successful *build* (the
    /// paper's `build@k` numerator).
    pub fn builds(self) -> bool {
        !matches!(self, CandidateKind::BuildFailure)
    }

    /// Short stable code for run records.
    pub fn code(self) -> &'static str {
        match self {
            CandidateKind::Correct(Quality::Efficient) => "correct",
            CandidateKind::Correct(Quality::Inefficient) => "correct-slow",
            CandidateKind::SequentialFallback => "sequential",
            CandidateKind::WrongOutput(_) => "wrong",
            CandidateKind::BuildFailure => "nobuild",
            CandidateKind::RuntimeCrash => "crash",
            CandidateKind::Timeout => "timeout",
            CandidateKind::Flaky => "flaky",
            CandidateKind::Deadlock => "deadlock",
            CandidateKind::StackHog => "stackhog",
        }
    }

    /// Every candidate kind, including each corruption mode.
    pub const ALL: [CandidateKind; 13] = [
        CandidateKind::Correct(Quality::Efficient),
        CandidateKind::Correct(Quality::Inefficient),
        CandidateKind::SequentialFallback,
        CandidateKind::WrongOutput(Corruption::PerturbElement),
        CandidateKind::WrongOutput(Corruption::OffByOneShift),
        CandidateKind::WrongOutput(Corruption::Truncate),
        CandidateKind::WrongOutput(Corruption::WrongScale),
        CandidateKind::BuildFailure,
        CandidateKind::RuntimeCrash,
        CandidateKind::Timeout,
        CandidateKind::Flaky,
        CandidateKind::Deadlock,
        CandidateKind::StackHog,
    ];

    /// Lossless stable tag, one per kind. Unlike [`CandidateKind::code`]
    /// (which folds every corruption mode into `wrong` for run records),
    /// `tag`/[`CandidateKind::from_tag`] round-trip exactly — this is
    /// the interchange encoding for dumped candidate pools, where losing
    /// the corruption mode would change re-scored verdict details.
    pub fn tag(self) -> &'static str {
        match self {
            CandidateKind::WrongOutput(Corruption::PerturbElement) => "wrong-perturb",
            CandidateKind::WrongOutput(Corruption::OffByOneShift) => "wrong-shift",
            CandidateKind::WrongOutput(Corruption::Truncate) => "wrong-truncate",
            CandidateKind::WrongOutput(Corruption::WrongScale) => "wrong-scale",
            other => other.code(),
        }
    }

    /// Parse a [`CandidateKind::tag`] back into the kind.
    pub fn from_tag(tag: &str) -> Option<CandidateKind> {
        CandidateKind::ALL.iter().copied().find(|k| k.tag() == tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_flag() {
        assert!(CandidateKind::Correct(Quality::Efficient).builds());
        assert!(CandidateKind::WrongOutput(Corruption::Truncate).builds());
        assert!(!CandidateKind::BuildFailure.builds());
    }

    #[test]
    fn tags_round_trip_losslessly() {
        for k in CandidateKind::ALL {
            assert_eq!(CandidateKind::from_tag(k.tag()), Some(k), "{}", k.tag());
        }
        let mut tags: Vec<_> = CandidateKind::ALL.iter().map(|k| k.tag()).collect();
        tags.sort_unstable();
        tags.dedup();
        assert_eq!(tags.len(), CandidateKind::ALL.len());
        // code() deliberately collapses corruption modes; tag() must not.
        assert_eq!(CandidateKind::WrongOutput(Corruption::Truncate).code(), "wrong");
        assert_eq!(
            CandidateKind::WrongOutput(Corruption::Truncate).tag(),
            "wrong-truncate"
        );
        assert_eq!(CandidateKind::from_tag("bogus"), None);
    }

    #[test]
    fn codes_distinct() {
        let kinds = [
            CandidateKind::Correct(Quality::Efficient),
            CandidateKind::Correct(Quality::Inefficient),
            CandidateKind::SequentialFallback,
            CandidateKind::WrongOutput(Corruption::OffByOneShift),
            CandidateKind::BuildFailure,
            CandidateKind::RuntimeCrash,
            CandidateKind::Timeout,
            CandidateKind::Flaky,
            CandidateKind::Deadlock,
            CandidateKind::StackHog,
        ];
        let mut codes: Vec<_> = kinds.iter().map(|k| k.code()).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), kinds.len());
    }
}
