//! Parallel-API usage instrumentation.
//!
//! The paper marks a generated sample incorrect if it does not use its
//! required parallel programming model, detected there by string matching
//! on the source. This reproduction uses a stronger dynamic check: every
//! substrate increments a global counter on each API entry (e.g. each
//! `parallel_for`, each `MPI_Send`, each kernel launch). The harness
//! snapshots the counters around a candidate run; a parallel task whose
//! counters did not move is a sequential fallback.
//!
//! Counters are global atomics so substrate worker threads can record
//! without coordination; the harness serializes candidate runs, so
//! snapshot deltas attribute cleanly to one candidate.

use crate::ExecutionModel;
use std::sync::atomic::{AtomicU64, Ordering};

static COUNTERS: [AtomicU64; 7] = [
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
];

/// Record one use of a substrate API belonging to `model`.
#[inline]
pub fn record(model: ExecutionModel) {
    COUNTERS[model.index()].fetch_add(1, Ordering::Relaxed);
}

/// Record `n` uses at once (e.g. a collective performed by every rank).
#[inline]
pub fn record_n(model: ExecutionModel, n: u64) {
    COUNTERS[model.index()].fetch_add(n, Ordering::Relaxed);
}

/// A point-in-time view of all usage counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Snapshot {
    counts: [u64; 7],
}

impl Snapshot {
    /// Capture the current counter values.
    pub fn capture() -> Snapshot {
        let mut counts = [0u64; 7];
        for (i, c) in COUNTERS.iter().enumerate() {
            counts[i] = c.load(Ordering::Relaxed);
        }
        Snapshot { counts }
    }

    /// Counter increments since `earlier`, per execution model.
    pub fn delta_since(&self, earlier: &Snapshot) -> UsageDelta {
        let mut d = [0u64; 7];
        for (slot, (now, before)) in d.iter_mut().zip(self.counts.iter().zip(&earlier.counts)) {
            *slot = now.wrapping_sub(*before);
        }
        UsageDelta { counts: d }
    }
}

/// Counter increments observed across a candidate run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UsageDelta {
    counts: [u64; 7],
}

impl UsageDelta {
    /// API calls recorded for `model`.
    pub fn calls(&self, model: ExecutionModel) -> u64 {
        self.counts[model.index()]
    }

    /// Whether the candidate exercised the parallel API required by
    /// `model`. Hybrid tasks must touch the MPI layer; the threaded inner
    /// level alone does not count, mirroring the paper's check that an
    /// MPI+OpenMP prompt actually distributes work across ranks.
    pub fn used_required_api(&self, model: ExecutionModel) -> bool {
        match model {
            ExecutionModel::Serial => true,
            ExecutionModel::MpiOpenMp => {
                self.calls(ExecutionModel::Mpi) > 0 || self.calls(ExecutionModel::MpiOpenMp) > 0
            }
            m => self.calls(m) > 0,
        }
    }
}

/// RAII-style scope: capture at construction, diff at [`UsageScope::finish`].
pub struct UsageScope {
    start: Snapshot,
}

impl UsageScope {
    /// Begin observing usage.
    pub fn begin() -> UsageScope {
        UsageScope { start: Snapshot::capture() }
    }

    /// Stop observing and return the per-model API call deltas.
    pub fn finish(self) -> UsageDelta {
        Snapshot::capture().delta_since(&self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Note: counters are process-global, so tests only assert on deltas of
    // models they themselves touch, and tolerate concurrent increments by
    // using models unlikely to be exercised by other core tests.

    #[test]
    fn delta_reflects_records() {
        let scope = UsageScope::begin();
        record(ExecutionModel::Kokkos);
        record_n(ExecutionModel::Kokkos, 4);
        let d = scope.finish();
        assert!(d.calls(ExecutionModel::Kokkos) >= 5);
        assert!(d.used_required_api(ExecutionModel::Kokkos));
    }

    #[test]
    fn serial_always_counts_as_used() {
        let d = UsageScope::begin().finish();
        assert!(d.used_required_api(ExecutionModel::Serial));
    }

    #[test]
    fn hybrid_requires_mpi_layer() {
        let scope = UsageScope::begin();
        record(ExecutionModel::OpenMp);
        let d = scope.finish();
        // Only the threaded layer moved: the hybrid requirement is unmet
        // unless some other test concurrently recorded MPI usage.
        if d.calls(ExecutionModel::Mpi) == 0 && d.calls(ExecutionModel::MpiOpenMp) == 0 {
            assert!(!d.used_required_api(ExecutionModel::MpiOpenMp));
        }
        let scope = UsageScope::begin();
        record(ExecutionModel::Mpi);
        let d = scope.finish();
        assert!(d.used_required_api(ExecutionModel::MpiOpenMp));
    }
}
