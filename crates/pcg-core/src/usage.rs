//! Parallel-API usage instrumentation.
//!
//! The paper marks a generated sample incorrect if it does not use its
//! required parallel programming model, detected there by string matching
//! on the source. This reproduction uses a stronger dynamic check: every
//! substrate increments a global counter on each API entry (e.g. each
//! `parallel_for`, each `MPI_Send`, each kernel launch). The harness
//! snapshots the counters around a candidate run; a parallel task whose
//! counters did not move is a sequential fallback.
//!
//! Attribution is per candidate even when the harness runs candidates
//! concurrently: [`UsageScope::begin`] installs a thread-local [`Sink`]
//! that [`record`] feeds in addition to the process-global counters, and
//! substrates that spawn their own threads (MPI rank threads, shmem pool
//! workers) re-install the creator's sink on those threads via
//! [`current_sink`]/[`install_sink`]. The global counters remain for
//! whole-process views ([`Snapshot`]).

use crate::ExecutionModel;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

static COUNTERS: [AtomicU64; 7] = [
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
];

/// A per-candidate usage counter block, shared between the candidate's
/// thread and any substrate worker threads it spawns.
#[derive(Debug, Default)]
pub struct Sink {
    counts: [AtomicU64; 7],
}

thread_local! {
    static CURRENT: RefCell<Option<Arc<Sink>>> = const { RefCell::new(None) };
}

/// The sink installed on this thread, if any — capture it before
/// spawning substrate worker threads and re-install it on each of them
/// so their API calls attribute to the candidate that spawned them.
pub fn current_sink() -> Option<Arc<Sink>> {
    CURRENT.with(|c| c.borrow().clone())
}

/// Install `sink` on this thread until the returned guard drops (the
/// previous sink, if any, is restored).
pub fn install_sink(sink: Option<Arc<Sink>>) -> SinkGuard {
    let prev = CURRENT.with(|c| c.replace(sink));
    SinkGuard { prev }
}

/// Replace this thread's sink with no restoring guard. For long-lived
/// substrate worker threads that are retargeted between candidates when
/// a warm pool is leased out again; transient threads should prefer
/// [`install_sink`], whose guard restores the previous sink.
pub fn set_sink(sink: Option<Arc<Sink>>) {
    CURRENT.with(|c| *c.borrow_mut() = sink);
}

/// Restores the previously installed sink on drop.
pub struct SinkGuard {
    prev: Option<Arc<Sink>>,
}

impl Drop for SinkGuard {
    fn drop(&mut self) {
        let prev = self.prev.take();
        CURRENT.with(|c| *c.borrow_mut() = prev);
    }
}

fn add(model: ExecutionModel, n: u64) {
    let i = model.index();
    COUNTERS[i].fetch_add(n, Ordering::Relaxed);
    CURRENT.with(|c| {
        if let Some(sink) = c.borrow().as_ref() {
            sink.counts[i].fetch_add(n, Ordering::Relaxed);
        }
    });
}

/// Record one use of a substrate API belonging to `model`.
#[inline]
pub fn record(model: ExecutionModel) {
    add(model, 1);
}

/// Record `n` uses at once (e.g. a collective performed by every rank).
#[inline]
pub fn record_n(model: ExecutionModel, n: u64) {
    add(model, n);
}

/// A point-in-time view of all usage counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Snapshot {
    counts: [u64; 7],
}

impl Snapshot {
    /// Capture the current counter values.
    pub fn capture() -> Snapshot {
        let mut counts = [0u64; 7];
        for (i, c) in COUNTERS.iter().enumerate() {
            counts[i] = c.load(Ordering::Relaxed);
        }
        Snapshot { counts }
    }

    /// Counter increments since `earlier`, per execution model.
    pub fn delta_since(&self, earlier: &Snapshot) -> UsageDelta {
        let mut d = [0u64; 7];
        for (slot, (now, before)) in d.iter_mut().zip(self.counts.iter().zip(&earlier.counts)) {
            *slot = now.wrapping_sub(*before);
        }
        UsageDelta { counts: d }
    }
}

/// Counter increments observed across a candidate run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UsageDelta {
    counts: [u64; 7],
}

impl UsageDelta {
    /// API calls recorded for `model`.
    pub fn calls(&self, model: ExecutionModel) -> u64 {
        self.counts[model.index()]
    }

    /// Whether the candidate exercised the parallel API required by
    /// `model`. Hybrid tasks must touch the MPI layer; the threaded inner
    /// level alone does not count, mirroring the paper's check that an
    /// MPI+OpenMP prompt actually distributes work across ranks.
    pub fn used_required_api(&self, model: ExecutionModel) -> bool {
        match model {
            ExecutionModel::Serial => true,
            ExecutionModel::MpiOpenMp => {
                self.calls(ExecutionModel::Mpi) > 0 || self.calls(ExecutionModel::MpiOpenMp) > 0
            }
            m => self.calls(m) > 0,
        }
    }
}

/// RAII-style scope: installs a fresh [`Sink`] on the current thread at
/// construction; [`UsageScope::finish`] reads it back. Only API calls
/// made by this thread (and by substrate worker threads it spawned, via
/// sink propagation) are counted — concurrent candidates on other
/// threads cannot pollute the delta.
pub struct UsageScope {
    sink: Arc<Sink>,
    _guard: SinkGuard,
}

impl UsageScope {
    /// Begin observing usage on the current thread.
    pub fn begin() -> UsageScope {
        let sink = Arc::new(Sink::default());
        let guard = install_sink(Some(Arc::clone(&sink)));
        UsageScope { sink, _guard: guard }
    }

    /// Stop observing and return the per-model API call deltas.
    pub fn finish(self) -> UsageDelta {
        let mut counts = [0u64; 7];
        for (slot, c) in counts.iter_mut().zip(&self.sink.counts) {
            *slot = c.load(Ordering::Relaxed);
        }
        UsageDelta { counts }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_reflects_records() {
        let scope = UsageScope::begin();
        record(ExecutionModel::Kokkos);
        record_n(ExecutionModel::Kokkos, 4);
        let d = scope.finish();
        assert_eq!(d.calls(ExecutionModel::Kokkos), 5);
        assert!(d.used_required_api(ExecutionModel::Kokkos));
    }

    #[test]
    fn concurrent_scopes_do_not_cross_pollute() {
        // Two candidates on different threads: a noisy one hammering an
        // API and a quiet sequential fallback. The quiet scope must read
        // zero even while the noisy one records — the regression that
        // flipped `sequential` verdicts under the parallel scheduler.
        let barrier = std::sync::Barrier::new(2);
        std::thread::scope(|s| {
            let noisy = s.spawn(|| {
                let scope = UsageScope::begin();
                barrier.wait();
                for _ in 0..1000 {
                    record(ExecutionModel::Cuda);
                }
                barrier.wait();
                scope.finish()
            });
            let quiet = s.spawn(|| {
                let scope = UsageScope::begin();
                barrier.wait(); // noisy is now recording
                barrier.wait();
                scope.finish()
            });
            let nd = noisy.join().unwrap();
            let qd = quiet.join().unwrap();
            assert_eq!(nd.calls(ExecutionModel::Cuda), 1000);
            assert_eq!(qd.calls(ExecutionModel::Cuda), 0);
            assert!(!qd.used_required_api(ExecutionModel::Cuda));
        });
    }

    #[test]
    fn sink_propagates_to_spawned_workers() {
        let scope = UsageScope::begin();
        let sink = current_sink();
        std::thread::scope(|s| {
            s.spawn(|| {
                let _g = install_sink(sink.clone());
                record(ExecutionModel::Mpi);
            });
        });
        let d = scope.finish();
        assert_eq!(d.calls(ExecutionModel::Mpi), 1);
    }

    #[test]
    fn serial_always_counts_as_used() {
        let d = UsageScope::begin().finish();
        assert!(d.used_required_api(ExecutionModel::Serial));
    }

    #[test]
    fn hybrid_requires_mpi_layer() {
        let scope = UsageScope::begin();
        record(ExecutionModel::OpenMp);
        let d = scope.finish();
        // Only the threaded layer moved: the hybrid requirement is unmet.
        assert!(!d.used_required_api(ExecutionModel::MpiOpenMp));

        let scope = UsageScope::begin();
        record(ExecutionModel::Mpi);
        let d = scope.finish();
        assert!(d.used_required_api(ExecutionModel::MpiOpenMp));
    }
}
