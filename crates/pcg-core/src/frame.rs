//! Length-prefixed, CRC-checked binary frames — the journal v3 codec.
//!
//! The write-ahead journal's v1/v2 formats were JSONL: one
//! `serde_json` line per completed cell. At service scale (millions of
//! cells, every submission journaled) parsing JSON per line dominates
//! replay, merge, and compaction. v3 frames carry an opaque binary
//! payload behind a fixed 16-byte header, so a reader can skip, verify,
//! and slice entries without touching a JSON parser.
//!
//! ## Frame layout (all integers little-endian)
//!
//! ```text
//! offset  size  field
//! 0       4     len   — payload length in bytes (u32)
//! 4       8     cell  — cell address tag (u64; 0 for the header frame)
//! 12      4     crc   — CRC-32 (IEEE) over cell bytes ++ payload
//! 16      len   payload
//! ```
//!
//! The CRC covers the cell tag *and* the payload, so a bit flip in
//! either is caught directly; a flip in `len` or `crc` desynchronizes
//! the check itself and is caught the same way (the probability of a
//! random corruption passing is 2⁻³²). A flip in `len` that points the
//! reader past the end of the buffer is reported as a torn tail — the
//! same classification a crash mid-append produces — because the two
//! are indistinguishable from the bytes alone and both truncate replay.
//!
//! Decoding never allocates: a [`Frame`] borrows its payload from the
//! input buffer, which the journal reads in one buffered `fs::read`.
//!
//! This module lives in `pcg-core` next to `plan.rs`'s FNV-1a for the
//! same reason cell addressing does: every process that touches a
//! journal (workers, merge, benches, fuzzers) must agree on the exact
//! byte contract.

/// File magic for a v3 journal. A file that does not start with these
/// 8 bytes is not a v3 journal (the harness falls back to the v2 JSONL
/// reader for migration).
pub const JOURNAL_MAGIC: [u8; 8] = *b"PCGJRNL3";

/// Fixed bytes before each frame's payload: `len (4) + cell (8) + crc (4)`.
pub const FRAME_OVERHEAD: usize = 16;

/// Payload magic for a **claim frame** — the second frame kind, used by
/// live work stealing between shard workers. A thief appends a claim
/// frame (cell tag = the claimed cell, payload = this magic + its own
/// shard index) to its *own* journal **before** evaluating a stolen
/// cell, so a crash after the claim loses at most duplicated work,
/// never the cell: merge gap-fill re-evaluates anything claimed but
/// never journaled.
///
/// The discriminator is the payload prefix rather than a new header
/// field so the frame layout above is unchanged and old readers fail
/// safe: an entry payload starts with a `u32` model-name length, and
/// these eight bytes read as a length of ~1.1 billion, which the
/// bounded entry decoder rejects — a claim can never be mistaken for a
/// result.
pub const CLAIM_MAGIC: [u8; 8] = *b"PCGCLAIM";

/// Encode a claim-frame payload: [`CLAIM_MAGIC`] followed by the
/// thief's shard index (little-endian `u32`). The claimed cell rides
/// in the frame's cell tag, covered by the frame CRC.
pub fn encode_claim_payload(thief_index: u32) -> Vec<u8> {
    let mut out = Vec::with_capacity(12);
    out.extend_from_slice(&CLAIM_MAGIC);
    out.extend_from_slice(&thief_index.to_le_bytes());
    out
}

/// Decode a claim-frame payload, returning the thief's shard index.
/// `None` means the payload is not a claim (no magic prefix) or is
/// malformed (wrong length / trailing bytes) — callers treat malformed
/// claims like any other undecodable payload.
pub fn decode_claim_payload(payload: &[u8]) -> Option<u32> {
    if payload.len() != CLAIM_MAGIC.len() + 4 || payload[..8] != CLAIM_MAGIC {
        return None;
    }
    Some(u32::from_le_bytes(payload[8..12].try_into().unwrap()))
}

/// Whether a verified frame payload is a claim frame. The cheap
/// prefix test readers use to branch before attempting entry decode.
pub fn is_claim_payload(payload: &[u8]) -> bool {
    payload.len() >= CLAIM_MAGIC.len() && payload[..CLAIM_MAGIC.len()] == CLAIM_MAGIC
}

/// CRC-32 (IEEE 802.3, polynomial `0xEDB88320` reflected) lookup table,
/// built at first use.
fn crc_table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            }
            *slot = c;
        }
        table
    })
}

/// Fold `bytes` into a running CRC-32 accumulator (start from
/// [`crc32_start`], finish with [`crc32_finish`]). Chaining is
/// concatenation, like [`crate::plan::fnv1a_extend`].
pub fn crc32_extend(mut crc: u32, bytes: &[u8]) -> u32 {
    let table = crc_table();
    for &b in bytes {
        crc = table[((crc ^ u32::from(b)) & 0xFF) as usize] ^ (crc >> 8);
    }
    crc
}

/// The CRC-32 pre-inversion seed.
pub fn crc32_start() -> u32 {
    0xFFFF_FFFF
}

/// Finalize a CRC-32 accumulator.
pub fn crc32_finish(crc: u32) -> u32 {
    !crc
}

/// CRC-32 (IEEE) of one byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    crc32_finish(crc32_extend(crc32_start(), bytes))
}

/// One decoded frame, borrowing its payload from the input buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Frame<'a> {
    /// The cell address tag (0 for the header frame).
    pub cell: u64,
    /// The verified payload bytes.
    pub payload: &'a [u8],
    /// Byte offset one past this frame (where the next frame starts).
    pub end: usize,
}

/// Why a frame failed to decode. Both variants truncate replay at the
/// frame's start offset; the distinction is diagnostic (a torn tail is
/// the expected state after a crash mid-append, a CRC mismatch means
/// the bytes were altered in place).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The buffer ends before the frame's declared extent: either a
    /// crash mid-append or a corrupted length prefix pointing past the
    /// end — indistinguishable, and both handled by truncation.
    TornTail {
        /// Byte offset of the frame's start.
        offset: usize,
        /// Bytes available from `offset`.
        have: usize,
        /// Bytes the header (or its length field) demanded.
        need: usize,
    },
    /// The stored CRC disagrees with the CRC computed over the cell
    /// tag and payload.
    BadCrc {
        /// Byte offset of the frame's start.
        offset: usize,
        /// The cell tag as stored (untrusted).
        cell: u64,
        /// The CRC as stored.
        stored: u32,
        /// The CRC computed from the bytes.
        computed: u32,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::TornTail { offset, have, need } => write!(
                f,
                "torn tail at byte offset {offset}: frame needs {need} bytes, {have} remain"
            ),
            FrameError::BadCrc { offset, cell, stored, computed } => write!(
                f,
                "CRC mismatch at byte offset {offset} (cell {cell:016x}): stored {stored:08x}, computed {computed:08x}"
            ),
        }
    }
}

/// Append one encoded frame for `(cell, payload)` to `out`.
pub fn encode_frame_into(out: &mut Vec<u8>, cell: u64, payload: &[u8]) {
    let len = u32::try_from(payload.len()).expect("frame payload must fit in u32");
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(&cell.to_le_bytes());
    let crc = crc32_finish(crc32_extend(
        crc32_extend(crc32_start(), &cell.to_le_bytes()),
        payload,
    ));
    out.extend_from_slice(&crc.to_le_bytes());
    out.extend_from_slice(payload);
}

/// Encode one frame for `(cell, payload)`.
pub fn encode_frame(cell: u64, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_OVERHEAD + payload.len());
    encode_frame_into(&mut out, cell, payload);
    out
}

/// Decode the frame starting at `offset` in `buf`.
///
/// Returns `None` on a clean end of input (`offset == buf.len()`),
/// `Some(Ok)` for a verified frame, `Some(Err)` for a torn or corrupt
/// one. Trailing bytes that cannot hold a header are a torn tail, not
/// a clean end — a crashed writer can stop mid-header.
pub fn decode_frame(buf: &[u8], offset: usize) -> Option<Result<Frame<'_>, FrameError>> {
    let remaining = buf.len().checked_sub(offset)?;
    if remaining == 0 {
        return None;
    }
    if remaining < FRAME_OVERHEAD {
        return Some(Err(FrameError::TornTail { offset, have: remaining, need: FRAME_OVERHEAD }));
    }
    let len = u32::from_le_bytes(buf[offset..offset + 4].try_into().unwrap()) as usize;
    let cell = u64::from_le_bytes(buf[offset + 4..offset + 12].try_into().unwrap());
    let stored = u32::from_le_bytes(buf[offset + 12..offset + 16].try_into().unwrap());
    let need = FRAME_OVERHEAD
        .checked_add(len)
        .ok_or(())
        .unwrap_or(usize::MAX);
    if remaining < need {
        return Some(Err(FrameError::TornTail { offset, have: remaining, need }));
    }
    let payload = &buf[offset + FRAME_OVERHEAD..offset + FRAME_OVERHEAD + len];
    let computed = crc32_finish(crc32_extend(
        crc32_extend(crc32_start(), &cell.to_le_bytes()),
        payload,
    ));
    if computed != stored {
        return Some(Err(FrameError::BadCrc { offset, cell, stored, computed }));
    }
    Some(Ok(Frame { cell, payload, end: offset + FRAME_OVERHEAD + len }))
}

// ---------------------------------------------------------------------
// Payload byte codec helpers
// ---------------------------------------------------------------------

/// Little-endian byte writer for frame payloads. Fixed-width integers,
/// `f64` as raw IEEE-754 bits (exact round trip — the byte journal
/// preserves every float bit-for-bit, so a JSON export after a binary
/// round trip prints the identical shortest-roundtrip string), strings
/// and sequences length-prefixed with `u32`.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Fresh empty writer.
    pub fn new() -> ByteWriter {
        ByteWriter::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Append one `u8`.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append one bool as a byte (`0`/`1`).
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    /// Append one `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append one `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append one `f64` as its raw bits, little-endian.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Append a length (`u32`) for a prefixed sequence.
    pub fn put_len(&mut self, n: usize) {
        self.put_u32(u32::try_from(n).expect("sequence length must fit in u32"));
    }

    /// Append a `u32`-length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_len(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }
}

/// Payload decoding failure: what was expected, at which payload byte.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError {
    /// Byte offset within the payload where decoding failed.
    pub at: usize,
    /// What the decoder was trying to read.
    pub what: &'static str,
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "payload truncated or malformed at byte {}: expected {}", self.at, self.what)
    }
}

/// Little-endian byte reader matching [`ByteWriter`]. Every read is
/// bounds-checked and returns a [`CodecError`] instead of panicking —
/// a CRC-valid frame whose payload does not decode is still corruption
/// (it can only happen across an incompatible codec change) and must be
/// rejected loudly, never trusted.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Read from `buf`, starting at byte 0.
    pub fn new(buf: &'a [u8]) -> ByteReader<'a> {
        ByteReader { buf, pos: 0 }
    }

    /// Whether every byte has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], CodecError> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.buf.len());
        match end {
            Some(end) => {
                let s = &self.buf[self.pos..end];
                self.pos = end;
                Ok(s)
            }
            None => Err(CodecError { at: self.pos, what }),
        }
    }

    /// Read one `u8`.
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1, "u8")?[0])
    }

    /// Read one bool (any nonzero byte is an error — a flipped flag
    /// byte must not decode as `true`).
    pub fn bool(&mut self) -> Result<bool, CodecError> {
        match self.take(1, "bool")?[0] {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(CodecError { at: self.pos - 1, what: "bool (0 or 1)" }),
        }
    }

    /// Read one `u32`, little-endian.
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4, "u32")?.try_into().unwrap()))
    }

    /// Read one `u64`, little-endian.
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8, "u64")?.try_into().unwrap()))
    }

    /// Read one `f64` from its raw bits.
    pub fn f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Read a sequence length, bounded by the bytes that could actually
    /// follow (`min_elem_bytes` per element) so a corrupt length cannot
    /// drive a huge allocation.
    pub fn len(&mut self, min_elem_bytes: usize) -> Result<usize, CodecError> {
        let n = self.u32()? as usize;
        let remaining = self.buf.len() - self.pos;
        if n.saturating_mul(min_elem_bytes.max(1)) > remaining {
            return Err(CodecError { at: self.pos - 4, what: "plausible sequence length" });
        }
        Ok(n)
    }

    /// Read a `u32`-length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<&'a str, CodecError> {
        let n = self.len(1)?;
        let at = self.pos;
        std::str::from_utf8(self.take(n, "string bytes")?)
            .map_err(|_| CodecError { at, what: "UTF-8 string" })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_reference_vectors() {
        // The canonical IEEE CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        // Chaining is concatenation.
        let chained =
            crc32_finish(crc32_extend(crc32_extend(crc32_start(), b"1234"), b"56789"));
        assert_eq!(chained, 0xCBF4_3926);
    }

    #[test]
    fn frame_roundtrips() {
        let mut buf = Vec::new();
        encode_frame_into(&mut buf, 7, b"hello");
        encode_frame_into(&mut buf, u64::MAX, b"");
        encode_frame_into(&mut buf, 0, &[0xFF; 300]);

        let f1 = decode_frame(&buf, 0).unwrap().unwrap();
        assert_eq!((f1.cell, f1.payload), (7, &b"hello"[..]));
        let f2 = decode_frame(&buf, f1.end).unwrap().unwrap();
        assert_eq!((f2.cell, f2.payload.len()), (u64::MAX, 0));
        let f3 = decode_frame(&buf, f2.end).unwrap().unwrap();
        assert_eq!((f3.cell, f3.payload), (0, &[0xFF; 300][..]));
        assert!(decode_frame(&buf, f3.end).is_none(), "clean EOF");
    }

    #[test]
    fn torn_tails_are_classified_not_misread() {
        let buf = encode_frame(42, b"payload bytes");
        // Every proper prefix of a frame is a torn tail.
        for cut in 1..buf.len() {
            match decode_frame(&buf[..cut], 0) {
                Some(Err(FrameError::TornTail { offset: 0, .. })) => {}
                other => panic!("prefix of {cut} bytes decoded as {other:?}"),
            }
        }
    }

    #[test]
    fn bit_flips_are_caught() {
        let buf = encode_frame(42, b"some payload worth protecting");
        for byte in 0..buf.len() {
            for bit in 0..8 {
                let mut corrupt = buf.clone();
                corrupt[byte] ^= 1 << bit;
                match decode_frame(&corrupt, 0) {
                    Some(Err(_)) => {}
                    Some(Ok(f)) => panic!(
                        "flip at byte {byte} bit {bit} decoded as cell {} payload {:?}",
                        f.cell, f.payload
                    ),
                    None => panic!("flip at byte {byte} bit {bit} read as clean EOF"),
                }
            }
        }
    }

    #[test]
    fn oversized_length_is_a_torn_tail() {
        let mut buf = encode_frame(1, b"x");
        // Claim a payload far past the end of the buffer.
        buf[0..4].copy_from_slice(&u32::MAX.to_le_bytes());
        match decode_frame(&buf, 0) {
            Some(Err(FrameError::TornTail { .. })) => {}
            other => panic!("oversized length decoded as {other:?}"),
        }
    }

    #[test]
    fn claim_payloads_roundtrip_and_discriminate() {
        let p = encode_claim_payload(2);
        assert!(is_claim_payload(&p));
        assert_eq!(decode_claim_payload(&p), Some(2));
        assert_eq!(decode_claim_payload(&encode_claim_payload(u32::MAX)), Some(u32::MAX));

        // A claim frame survives the frame codec like any other frame.
        let framed = encode_frame(0xDEAD_BEEF, &p);
        let f = decode_frame(&framed, 0).unwrap().unwrap();
        assert_eq!(f.cell, 0xDEAD_BEEF);
        assert_eq!(decode_claim_payload(f.payload), Some(2));

        // Not claims: empty, truncated, trailing junk, wrong magic.
        assert_eq!(decode_claim_payload(b""), None);
        assert_eq!(decode_claim_payload(&p[..11]), None);
        let mut long = p.clone();
        long.push(0);
        assert_eq!(decode_claim_payload(&long), None);
        let mut wrong = p.clone();
        wrong[0] ^= 1;
        assert_eq!(decode_claim_payload(&wrong), None);
        assert!(!is_claim_payload(&wrong));

        // An entry-shaped payload (u32 length prefix of a short name)
        // never looks like a claim: the magic's first byte is 'P', so
        // a name length would have to be >= 0x50 Pa... — byte-compare
        // is exact, not heuristic.
        let mut w = ByteWriter::new();
        w.put_str("gpt-4");
        assert!(!is_claim_payload(&w.into_bytes()));
    }

    #[test]
    fn byte_codec_roundtrips() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_bool(true);
        w.put_bool(false);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 1);
        w.put_f64(-0.1);
        w.put_f64(f64::NEG_INFINITY);
        w.put_str("modèle");
        let bytes = w.into_bytes();

        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert!(r.bool().unwrap());
        assert!(!r.bool().unwrap());
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.f64().unwrap().to_bits(), (-0.1f64).to_bits());
        assert_eq!(r.f64().unwrap(), f64::NEG_INFINITY);
        assert_eq!(r.str().unwrap(), "modèle");
        assert!(r.is_exhausted());
    }

    #[test]
    fn byte_reader_rejects_truncation_and_junk() {
        let mut w = ByteWriter::new();
        w.put_str("abc");
        let bytes = w.into_bytes();
        // Truncated string body.
        let mut r = ByteReader::new(&bytes[..5]);
        assert!(r.str().is_err());
        // Non-0/1 bool byte.
        let mut r = ByteReader::new(&[2]);
        assert!(r.bool().is_err());
        // Implausible sequence length cannot demand a huge allocation.
        let mut w = ByteWriter::new();
        w.put_u32(u32::MAX);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(r.len(8).is_err());
    }
}
