//! Prompt rendering (paper §4, Listing 1).
//!
//! Each PCGBench prompt is a doc comment describing the computation, two
//! example input/output pairs, an execution-model-specific instruction
//! ("Use Kokkos to compute in parallel. Assume Kokkos has already been
//! initialized."), the necessary include/use header, and the opening of a
//! standalone function the model must complete.
//!
//! The per-problem content (description, signature, examples) lives in
//! `pcg-problems`; this module owns the model-specific framing so all 420
//! rendered prompts stay structurally identical across execution models,
//! as the paper requires.

use crate::ExecutionModel;
use serde::{Deserialize, Serialize};

/// Problem-specific prompt content supplied by the problem suite.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PromptSpec {
    /// Short function name, e.g. `partialMinimums`.
    pub fn_name: String,
    /// Natural-language description of the computation.
    pub description: String,
    /// Example input/output pairs, rendered verbatim.
    pub examples: Vec<(String, String)>,
    /// The function parameter list, in the substrate's idiom.
    pub signature: String,
}

/// The model-specific instruction sentence, mirroring the paper's prompts.
pub fn model_instruction(model: ExecutionModel) -> &'static str {
    match model {
        ExecutionModel::Serial => "Implement sequentially.",
        ExecutionModel::OpenMp => "Use the shmem work-sharing pool to compute in parallel.",
        ExecutionModel::Kokkos => {
            "Use parallel patterns to compute in parallel. Assume the execution space has already been initialized."
        }
        ExecutionModel::Mpi => {
            "Use message passing to compute in parallel. Assume the runtime has already been initialized and every rank calls this function. The result should be stored on rank 0."
        }
        ExecutionModel::MpiOpenMp => {
            "Use message passing and the shmem pool to compute in parallel. Assume the runtime has already been initialized and every rank calls this function. The result should be stored on rank 0."
        }
        ExecutionModel::Cuda => {
            "Use the CUDA-like kernel API to compute in parallel. The kernel is launched with at least as many threads as elements."
        }
        ExecutionModel::Hip => {
            "Use the HIP-like kernel API to compute in parallel. The kernel is launched with at least as many threads as elements."
        }
    }
}

/// The header line (include/use analog) prepended per execution model;
/// the paper found this improves use of the correct programming model.
pub fn model_header(model: ExecutionModel) -> &'static str {
    match model {
        ExecutionModel::Serial => "",
        ExecutionModel::OpenMp => "use pcg_shmem::prelude::*;",
        ExecutionModel::Kokkos => "use pcg_patterns::prelude::*;",
        ExecutionModel::Mpi => "use pcg_mpisim::prelude::*;",
        ExecutionModel::MpiOpenMp => "use pcg_mpisim::prelude::*;\nuse pcg_shmem::prelude::*;",
        ExecutionModel::Cuda => "use pcg_gpusim::cuda::*;",
        ExecutionModel::Hip => "use pcg_gpusim::hip::*;",
    }
}

/// Render the full prompt text for one task.
pub fn render(spec: &PromptSpec, model: ExecutionModel) -> String {
    let mut s = String::with_capacity(512);
    s.push_str("/* ");
    s.push_str(&spec.description);
    s.push('\n');
    s.push_str("   ");
    s.push_str(model_instruction(model));
    s.push_str("\n   Examples:\n");
    for (input, output) in &spec.examples {
        s.push_str("   input: ");
        s.push_str(input);
        s.push_str("\n   output: ");
        s.push_str(output);
        s.push('\n');
    }
    s.push_str("*/\n");
    let header = model_header(model);
    if !header.is_empty() {
        s.push_str(header);
        s.push('\n');
    }
    s.push_str("fn ");
    s.push_str(&spec.fn_name);
    s.push('(');
    s.push_str(&spec.signature);
    s.push_str(") {\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> PromptSpec {
        PromptSpec {
            fn_name: "partialMinimums".into(),
            description: "Replace the i-th element of the array x with the minimum value from indices 0 through i.".into(),
            examples: vec![(
                "[8, 6, -1, 7, 3, 4, 4]".into(),
                "[8, 6, -1, -1, -1, -1, -1]".into(),
            )],
            signature: "x: &mut [f32]".into(),
        }
    }

    #[test]
    fn renders_all_parts() {
        let p = render(&spec(), ExecutionModel::Kokkos);
        assert!(p.contains("partialMinimums"));
        assert!(p.contains("minimum value from indices"));
        assert!(p.contains("parallel patterns"));
        assert!(p.contains("pcg_patterns::prelude"));
        assert!(p.contains("input: [8, 6"));
        assert!(p.ends_with("{\n"));
    }

    #[test]
    fn serial_has_no_header() {
        let p = render(&spec(), ExecutionModel::Serial);
        assert!(!p.contains("use pcg_"));
        assert!(p.contains("Implement sequentially."));
    }

    #[test]
    fn prompts_differ_only_by_framing() {
        let a = render(&spec(), ExecutionModel::Cuda);
        let b = render(&spec(), ExecutionModel::Hip);
        assert_ne!(a, b);
        // Shared body text is identical across models.
        assert!(a.contains("minimum value from indices"));
        assert!(b.contains("minimum value from indices"));
    }

    #[test]
    fn instructions_distinct_per_model() {
        let mut seen: Vec<&str> = ExecutionModel::ALL.iter().map(|m| model_instruction(*m)).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), ExecutionModel::ALL.len());
    }
}
