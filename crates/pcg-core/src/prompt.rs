//! Prompt rendering (paper §4, Listing 1).
//!
//! Each PCGBench prompt is a doc comment describing the computation, two
//! example input/output pairs, an execution-model-specific instruction
//! ("Use Kokkos to compute in parallel. Assume Kokkos has already been
//! initialized."), the necessary include/use header, and the opening of a
//! standalone function the model must complete.
//!
//! The per-problem content (description, signature, examples) lives in
//! `pcg-problems`; this module owns the model-specific framing so all 420
//! rendered prompts stay structurally identical across execution models,
//! as the paper requires.

use crate::ExecutionModel;
use serde::{Deserialize, Serialize};

/// The prompt-engineering tier a candidate pool was sampled under.
///
/// The paper's prompts are a single carefully engineered style; related
/// work (Parallel-Computing-with-LLMs, "From Prompts to Performance")
/// shows prompt tier is a first-class experimental axis. Each variant
/// renders a structurally different prompt ([`render_variant`]) and
/// carries a distinct correctness-rate profile in `pcg-models`.
///
/// [`PromptVariant::Expert`] is the **default** variant: it renders
/// exactly the paper-faithful prompt every prior run used, and a
/// default-variant grid keeps bare model-row labels so cell ids, config
/// hashes, and record bytes are unchanged from single-variant runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum PromptVariant {
    /// Bare ask: description and examples only — no programming-model
    /// instruction, no header. What a user pastes into a chat box.
    Naive,
    /// Adds the execution-model instruction sentence but omits the
    /// include/use header the paper found load-bearing.
    Student,
    /// The paper's engineered prompt: instruction plus header. This is
    /// the default and renders byte-identically to [`render`].
    Expert,
    /// Expert prompt augmented with a retrieved reference block
    /// (RAG-style), mirroring the four-tier related-work setup.
    RagAugmented,
}

impl PromptVariant {
    /// All variants, in fixed grid-enumeration order.
    pub const ALL: [PromptVariant; 4] = [
        PromptVariant::Naive,
        PromptVariant::Student,
        PromptVariant::Expert,
        PromptVariant::RagAugmented,
    ];

    /// The default variant (the paper's engineered prompt).
    pub const DEFAULT: PromptVariant = PromptVariant::Expert;

    /// Short stable label used in CLI lists, row labels, and pool
    /// manifests.
    pub fn label(self) -> &'static str {
        match self {
            PromptVariant::Naive => "naive",
            PromptVariant::Student => "student",
            PromptVariant::Expert => "expert",
            PromptVariant::RagAugmented => "rag",
        }
    }

    /// Parse a CLI/env label (accepts the long RAG spelling too).
    pub fn parse(s: &str) -> Option<PromptVariant> {
        match s.trim().to_ascii_lowercase().as_str() {
            "naive" => Some(PromptVariant::Naive),
            "student" => Some(PromptVariant::Student),
            "expert" => Some(PromptVariant::Expert),
            "rag" | "rag-augmented" | "ragaugmented" => Some(PromptVariant::RagAugmented),
            _ => None,
        }
    }

    /// Relative evaluation-cost factor for the analytic priors profile.
    /// Richer prompts produce more code that actually runs (fewer cheap
    /// build-failure cells), so expected cell cost rises with tier; the
    /// default tier is exactly 1.0 so bare-label costs are unchanged.
    pub fn cost_factor(self) -> f64 {
        match self {
            PromptVariant::Naive => 0.85,
            PromptVariant::Student => 0.95,
            PromptVariant::Expert => 1.0,
            PromptVariant::RagAugmented => 1.15,
        }
    }
}

/// Compose a model-row label from a model name and variant: bare name
/// for the default variant, `name@variant` otherwise. Row labels key
/// cell ids, priors lookups, records, and figure bins, so the default
/// variant **must** stay bare for byte-compatibility with prior runs.
pub fn row_label(model: &str, variant: PromptVariant) -> String {
    if variant == PromptVariant::DEFAULT {
        model.to_string()
    } else {
        format!("{model}@{}", variant.label())
    }
}

/// Split a model-row label back into `(model name, variant)`. Labels
/// without a recognized `@variant` suffix are whole model names under
/// the default variant (model names may legally contain `@`).
pub fn split_label(label: &str) -> (&str, PromptVariant) {
    if let Some((name, suffix)) = label.rsplit_once('@') {
        if let Some(v) = PromptVariant::parse(suffix) {
            return (name, v);
        }
    }
    (label, PromptVariant::DEFAULT)
}

/// Problem-specific prompt content supplied by the problem suite.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PromptSpec {
    /// Short function name, e.g. `partialMinimums`.
    pub fn_name: String,
    /// Natural-language description of the computation.
    pub description: String,
    /// Example input/output pairs, rendered verbatim.
    pub examples: Vec<(String, String)>,
    /// The function parameter list, in the substrate's idiom.
    pub signature: String,
}

/// The model-specific instruction sentence, mirroring the paper's prompts.
pub fn model_instruction(model: ExecutionModel) -> &'static str {
    match model {
        ExecutionModel::Serial => "Implement sequentially.",
        ExecutionModel::OpenMp => "Use the shmem work-sharing pool to compute in parallel.",
        ExecutionModel::Kokkos => {
            "Use parallel patterns to compute in parallel. Assume the execution space has already been initialized."
        }
        ExecutionModel::Mpi => {
            "Use message passing to compute in parallel. Assume the runtime has already been initialized and every rank calls this function. The result should be stored on rank 0."
        }
        ExecutionModel::MpiOpenMp => {
            "Use message passing and the shmem pool to compute in parallel. Assume the runtime has already been initialized and every rank calls this function. The result should be stored on rank 0."
        }
        ExecutionModel::Cuda => {
            "Use the CUDA-like kernel API to compute in parallel. The kernel is launched with at least as many threads as elements."
        }
        ExecutionModel::Hip => {
            "Use the HIP-like kernel API to compute in parallel. The kernel is launched with at least as many threads as elements."
        }
    }
}

/// The header line (include/use analog) prepended per execution model;
/// the paper found this improves use of the correct programming model.
pub fn model_header(model: ExecutionModel) -> &'static str {
    match model {
        ExecutionModel::Serial => "",
        ExecutionModel::OpenMp => "use pcg_shmem::prelude::*;",
        ExecutionModel::Kokkos => "use pcg_patterns::prelude::*;",
        ExecutionModel::Mpi => "use pcg_mpisim::prelude::*;",
        ExecutionModel::MpiOpenMp => "use pcg_mpisim::prelude::*;\nuse pcg_shmem::prelude::*;",
        ExecutionModel::Cuda => "use pcg_gpusim::cuda::*;",
        ExecutionModel::Hip => "use pcg_gpusim::hip::*;",
    }
}

/// Render the full prompt text for one task (the default
/// [`PromptVariant::Expert`] framing — byte-identical to every prompt
/// this harness rendered before the variant axis existed).
pub fn render(spec: &PromptSpec, model: ExecutionModel) -> String {
    render_variant(spec, model, PromptVariant::DEFAULT)
}

/// Render the prompt for one task under a specific prompt tier.
///
/// All variants share the description, examples, and function opening;
/// they differ only in the framing the related-work tiers differ in:
/// Naive drops both the programming-model instruction and the header,
/// Student keeps the instruction but drops the header, Expert is the
/// paper prompt, and RagAugmented appends a retrieved-reference block
/// before the function opening.
pub fn render_variant(spec: &PromptSpec, model: ExecutionModel, variant: PromptVariant) -> String {
    let mut s = String::with_capacity(512);
    s.push_str("/* ");
    s.push_str(&spec.description);
    s.push('\n');
    if variant != PromptVariant::Naive {
        s.push_str("   ");
        s.push_str(model_instruction(model));
        s.push('\n');
    }
    s.push_str("   Examples:\n");
    for (input, output) in &spec.examples {
        s.push_str("   input: ");
        s.push_str(input);
        s.push_str("\n   output: ");
        s.push_str(output);
        s.push('\n');
    }
    if variant == PromptVariant::RagAugmented {
        s.push_str("   Reference (retrieved):\n   // idiomatic ");
        s.push_str(model.label());
        s.push_str(" exemplar for a related kernel\n");
        let header = model_header(model);
        if !header.is_empty() {
            for line in header.lines() {
                s.push_str("   // ");
                s.push_str(line);
                s.push('\n');
            }
        }
    }
    s.push_str("*/\n");
    let header = model_header(model);
    let wants_header =
        matches!(variant, PromptVariant::Expert | PromptVariant::RagAugmented);
    if wants_header && !header.is_empty() {
        s.push_str(header);
        s.push('\n');
    }
    s.push_str("fn ");
    s.push_str(&spec.fn_name);
    s.push('(');
    s.push_str(&spec.signature);
    s.push_str(") {\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> PromptSpec {
        PromptSpec {
            fn_name: "partialMinimums".into(),
            description: "Replace the i-th element of the array x with the minimum value from indices 0 through i.".into(),
            examples: vec![(
                "[8, 6, -1, 7, 3, 4, 4]".into(),
                "[8, 6, -1, -1, -1, -1, -1]".into(),
            )],
            signature: "x: &mut [f32]".into(),
        }
    }

    #[test]
    fn renders_all_parts() {
        let p = render(&spec(), ExecutionModel::Kokkos);
        assert!(p.contains("partialMinimums"));
        assert!(p.contains("minimum value from indices"));
        assert!(p.contains("parallel patterns"));
        assert!(p.contains("pcg_patterns::prelude"));
        assert!(p.contains("input: [8, 6"));
        assert!(p.ends_with("{\n"));
    }

    #[test]
    fn serial_has_no_header() {
        let p = render(&spec(), ExecutionModel::Serial);
        assert!(!p.contains("use pcg_"));
        assert!(p.contains("Implement sequentially."));
    }

    #[test]
    fn prompts_differ_only_by_framing() {
        let a = render(&spec(), ExecutionModel::Cuda);
        let b = render(&spec(), ExecutionModel::Hip);
        assert_ne!(a, b);
        // Shared body text is identical across models.
        assert!(a.contains("minimum value from indices"));
        assert!(b.contains("minimum value from indices"));
    }

    #[test]
    fn expert_variant_is_the_legacy_prompt() {
        for m in ExecutionModel::ALL {
            assert_eq!(
                render(&spec(), m),
                render_variant(&spec(), m, PromptVariant::Expert),
                "default-variant rendering must stay byte-identical"
            );
        }
    }

    #[test]
    fn variants_render_distinctly_and_share_the_body() {
        let texts: Vec<String> = PromptVariant::ALL
            .iter()
            .map(|&v| render_variant(&spec(), ExecutionModel::Kokkos, v))
            .collect();
        let mut uniq = texts.clone();
        uniq.sort();
        uniq.dedup();
        assert_eq!(uniq.len(), PromptVariant::ALL.len());
        for t in &texts {
            assert!(t.contains("minimum value from indices"));
            assert!(t.ends_with("{\n"));
        }
        let naive = render_variant(&spec(), ExecutionModel::Kokkos, PromptVariant::Naive);
        assert!(!naive.contains("parallel patterns"), "naive drops the instruction");
        assert!(!naive.contains("use pcg_"), "naive drops the header");
        let student = render_variant(&spec(), ExecutionModel::Kokkos, PromptVariant::Student);
        assert!(student.contains("parallel patterns"));
        assert!(!student.contains("use pcg_"), "student drops the header");
        let rag =
            render_variant(&spec(), ExecutionModel::Kokkos, PromptVariant::RagAugmented);
        assert!(rag.contains("Reference (retrieved)"));
        assert!(rag.contains("use pcg_patterns::prelude::*;"));
    }

    #[test]
    fn labels_round_trip_and_default_stays_bare() {
        for v in PromptVariant::ALL {
            assert_eq!(PromptVariant::parse(v.label()), Some(v));
            let l = row_label("GPT-4", v);
            assert_eq!(split_label(&l), ("GPT-4", v));
        }
        assert_eq!(row_label("GPT-4", PromptVariant::Expert), "GPT-4");
        assert_eq!(row_label("GPT-4", PromptVariant::Naive), "GPT-4@naive");
        // Unrecognized suffixes stay part of the model name.
        assert_eq!(
            split_label("team@org-model"),
            ("team@org-model", PromptVariant::DEFAULT)
        );
        assert_eq!(PromptVariant::parse("RAG-Augmented"), Some(PromptVariant::RagAugmented));
        assert_eq!(PromptVariant::parse("bogus"), None);
    }

    #[test]
    fn default_cost_factor_is_identity() {
        assert_eq!(PromptVariant::DEFAULT.cost_factor(), 1.0);
        let mut factors: Vec<f64> =
            PromptVariant::ALL.iter().map(|v| v.cost_factor()).collect();
        factors.sort_by(f64::total_cmp);
        factors.dedup();
        assert_eq!(factors.len(), 4, "variants must carry distinct cost signal");
    }

    #[test]
    fn instructions_distinct_per_model() {
        let mut seen: Vec<&str> = ExecutionModel::ALL.iter().map(|m| model_instruction(*m)).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), ExecutionModel::ALL.len());
    }
}
