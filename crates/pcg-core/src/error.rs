//! The failure taxonomy shared by substrates, problems, and the harness.
//!
//! Mirrors the outcomes the paper's test harness records for a generated
//! sample: failure to compile, runtime failure, exceeding the time limit,
//! producing a wrong answer, or not using the required parallel model.

use serde::{Deserialize, Serialize};

/// An error surfaced while building or running a candidate.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum PcgError {
    /// The candidate artifact does not build (compile-error analog).
    BuildFailure(String),
    /// The candidate panicked or violated a substrate invariant at runtime.
    Runtime(String),
    /// The run exceeded the harness time limit (paper: 3 minutes).
    Timeout,
    /// The output did not match the sequential baseline.
    WrongAnswer(String),
    /// The candidate never invoked its required parallel programming model
    /// (the paper's string-matching check; here detected by substrate
    /// instrumentation counters).
    SequentialFallback,
    /// Invalid configuration (bad rank/thread count, malformed input, ...).
    Config(String),
    /// The containment scheduler proved every live rank blocked with no
    /// runnable sender (wait-for-graph quiescence) and failed the
    /// candidate immediately instead of burning the wall-clock timeout.
    /// The payload carries per-rank blocked-state diagnostics.
    Deadlock(String),
    /// A fiber overran its stack into the PROT_NONE guard page; the
    /// SIGSEGV classifier converted the fault into this verdict before
    /// any adjacent memory was corrupted.
    StackOverflow(String),
}

impl PcgError {
    /// Short stable code used in run records and reports.
    pub fn code(&self) -> &'static str {
        match self {
            PcgError::BuildFailure(_) => "build",
            PcgError::Runtime(_) => "runtime",
            PcgError::Timeout => "timeout",
            PcgError::WrongAnswer(_) => "wrong",
            PcgError::SequentialFallback => "sequential",
            PcgError::Config(_) => "config",
            PcgError::Deadlock(_) => "deadlock",
            PcgError::StackOverflow(_) => "stackoverflow",
        }
    }
}

impl std::fmt::Display for PcgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PcgError::BuildFailure(m) => write!(f, "build failure: {m}"),
            PcgError::Runtime(m) => write!(f, "runtime error: {m}"),
            PcgError::Timeout => write!(f, "timed out"),
            PcgError::WrongAnswer(m) => write!(f, "wrong answer: {m}"),
            PcgError::SequentialFallback => {
                write!(f, "did not use the required parallel programming model")
            }
            PcgError::Config(m) => write!(f, "configuration error: {m}"),
            PcgError::Deadlock(m) => write!(f, "deadlock: {m}"),
            PcgError::StackOverflow(m) => write!(f, "stack overflow: {m}"),
        }
    }
}

impl std::error::Error for PcgError {}

/// Convenience alias used across the workspace.
pub type Result<T> = std::result::Result<T, PcgError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_unique() {
        let errs = [
            PcgError::BuildFailure(String::new()),
            PcgError::Runtime(String::new()),
            PcgError::Timeout,
            PcgError::WrongAnswer(String::new()),
            PcgError::SequentialFallback,
            PcgError::Config(String::new()),
            PcgError::Deadlock(String::new()),
            PcgError::StackOverflow(String::new()),
        ];
        let mut codes: Vec<_> = errs.iter().map(|e| e.code()).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), errs.len());
    }

    #[test]
    fn display_mentions_cause() {
        let e = PcgError::WrongAnswer("len mismatch".into());
        assert!(e.to_string().contains("len mismatch"));
    }
}
