//! Problem and task identifiers.
//!
//! PCGBench contains 12 problem types x 5 problems = 60 [`ProblemId`]s; each
//! problem crossed with the 7 execution models yields 420 [`TaskId`]s
//! (individual prompts).

use crate::{ExecutionModel, ProblemType, NUM_TASKS, PROBLEMS_PER_TYPE};
use serde::{Deserialize, Serialize};

/// One of the 60 computational problems (a problem type plus a variant
/// index in `0..5`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ProblemId {
    /// The Table 1 category.
    pub ptype: ProblemType,
    /// Variant within the category, `0..PROBLEMS_PER_TYPE`.
    pub variant: usize,
}

impl ProblemId {
    /// Construct, panicking on an out-of-range variant.
    pub fn new(ptype: ProblemType, variant: usize) -> ProblemId {
        assert!(variant < PROBLEMS_PER_TYPE, "variant {variant} out of range");
        ProblemId { ptype, variant }
    }

    /// Dense index in `0..60`.
    pub fn index(self) -> usize {
        self.ptype.index() * PROBLEMS_PER_TYPE + self.variant
    }

    /// Inverse of [`ProblemId::index`].
    pub fn from_index(i: usize) -> Option<ProblemId> {
        let ptype = ProblemType::from_index(i / PROBLEMS_PER_TYPE)?;
        Some(ProblemId { ptype, variant: i % PROBLEMS_PER_TYPE })
    }

    /// The task for this problem under a given execution model.
    pub fn task(self, model: ExecutionModel) -> TaskId {
        TaskId { problem: self, model }
    }
}

impl std::fmt::Display for ProblemId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}#{}", self.ptype, self.variant)
    }
}

/// One of the 420 prompts: a problem plus an execution model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TaskId {
    /// The computational problem.
    pub problem: ProblemId,
    /// The execution model the prompt targets.
    pub model: ExecutionModel,
}

impl TaskId {
    /// Dense index in `0..420`. Tasks are ordered problem-major, then by
    /// execution model in [`ExecutionModel::ALL`] order.
    pub fn index(self) -> usize {
        self.problem.index() * ExecutionModel::ALL.len() + self.model.index()
    }

    /// Inverse of [`TaskId::index`].
    pub fn from_index(i: usize) -> Option<TaskId> {
        if i >= NUM_TASKS {
            return None;
        }
        let nm = ExecutionModel::ALL.len();
        Some(TaskId {
            problem: ProblemId::from_index(i / nm)?,
            model: ExecutionModel::from_index(i % nm)?,
        })
    }
}

impl std::fmt::Display for TaskId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.problem, self.model)
    }
}

/// Iterate over all 60 problems in canonical order.
pub fn all_problems() -> impl Iterator<Item = ProblemId> {
    (0..ProblemType::ALL.len() * PROBLEMS_PER_TYPE).map(|i| ProblemId::from_index(i).unwrap())
}

/// Iterate over all 420 tasks in canonical order.
pub fn all_tasks() -> impl Iterator<Item = TaskId> {
    (0..NUM_TASKS).map(|i| TaskId::from_index(i).unwrap())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn problem_index_roundtrip() {
        for (i, p) in all_problems().enumerate() {
            assert_eq!(p.index(), i);
            assert_eq!(ProblemId::from_index(i), Some(p));
        }
        assert_eq!(all_problems().count(), 60);
    }

    #[test]
    fn task_index_roundtrip() {
        for (i, t) in all_tasks().enumerate() {
            assert_eq!(t.index(), i);
            assert_eq!(TaskId::from_index(i), Some(t));
        }
        assert_eq!(TaskId::from_index(NUM_TASKS), None);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn variant_bounds_checked() {
        let _ = ProblemId::new(ProblemType::Sort, 5);
    }

    #[test]
    fn display_is_compact() {
        let t = ProblemId::new(ProblemType::Scan, 1).task(ExecutionModel::Kokkos);
        assert_eq!(t.to_string(), "scan#1/kokkos");
    }
}
