//! Determinism and footprint invariants over the whole problem suite.

use pcg_core::{CandidateKind, ExecutionModel, Quality};
use pcg_problems::registry;

#[test]
fn baselines_are_deterministic_in_seed() {
    for p in registry::all_problems() {
        let a = p.run_baseline(99, 256);
        let b = p.run_baseline(99, 256);
        assert!(a.output.approx_eq(&b.output), "{} baseline not deterministic", p.id());
        let c = p.run_baseline(100, 256);
        // Different seeds *usually* give different outputs; at minimum
        // they must be well-formed.
        let _ = c;
    }
}

#[test]
fn candidates_are_deterministic_given_seed_and_kind() {
    for p in registry::all_problems().iter().step_by(7) {
        let run = |_: ()| {
            p.run_candidate(
                ExecutionModel::Kokkos,
                CandidateKind::Correct(Quality::Efficient),
                3,
                7,
                200,
            )
            .unwrap()
            .output
        };
        assert!(run(()).approx_eq(&run(())), "{}", p.id());
    }
}

#[test]
fn every_problem_reports_positive_default_size() {
    for p in registry::all_problems() {
        assert!(p.default_size() >= 64, "{}", p.id());
    }
}

#[test]
fn wrong_output_candidates_always_fail_validation() {
    // Over the whole suite: a corrupted output must never validate.
    for p in registry::all_problems() {
        let base = p.run_baseline(5, 200);
        for mode in pcg_core::Corruption::ALL {
            let run = p
                .run_candidate(
                    ExecutionModel::OpenMp,
                    CandidateKind::WrongOutput(mode),
                    2,
                    5,
                    200,
                )
                .unwrap();
            assert!(
                !run.output.approx_eq(&base.output),
                "{} corruption {mode:?} validated",
                p.id()
            );
        }
    }
}
