//! The problem abstraction and the candidate runner.

use crate::lease::{self, LeaseKey};
use crate::{corrupt, fallback, input_cache};
use pcg_core::prompt::PromptSpec;
use pcg_core::{warm, CandidateKind, ExecutionModel, Output, PcgError, ProblemId, Quality};
use pcg_gpusim::Gpu;
use pcg_hybrid::{HybridCtx, HybridTeam, HybridWorld};
use pcg_mpisim::{Comm, CostModel, RankTeam, SimOutcome, World};
use pcg_patterns::ExecSpace;
use pcg_shmem::{Pool, ThreadCostModel};
use std::sync::Arc;
use std::time::Instant;

/// Resource configuration derived from an execution model and the
/// paper's `n` axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Resources {
    /// Threads for OpenMP/Kokkos substrates.
    pub threads: usize,
    /// Ranks for the MPI substrate.
    pub ranks: usize,
    /// (ranks, threads-per-rank) for the hybrid substrate.
    pub hybrid_ranks: usize,
    /// Threads per rank for the hybrid substrate.
    pub hybrid_threads: usize,
    /// Threads per block for GPU launches.
    pub gpu_block: u32,
}

impl Resources {
    /// Map the paper's `n` onto substrate dimensions: threads for
    /// OpenMP/Kokkos, ranks for MPI, and the paper's node x thread
    /// decomposition (1 rank/node, up to 4 nodes, up to 64 threads) for
    /// MPI+OpenMP. GPU launches use a fixed 256-thread block.
    pub fn for_model(model: ExecutionModel, n: u32) -> Resources {
        let n = n.max(1) as usize;
        let (hybrid_ranks, hybrid_threads) = match model {
            ExecutionModel::MpiOpenMp => {
                let ranks = n.div_ceil(64).clamp(1, 4);
                (ranks, n.div_ceil(ranks).max(1))
            }
            _ => (1, 1),
        };
        Resources {
            threads: n,
            ranks: n,
            hybrid_ranks,
            hybrid_threads,
            gpu_block: 256,
        }
    }
}

/// A completed run: the produced output and the (measured or simulated)
/// runtime in seconds.
#[derive(Debug, Clone)]
pub struct TimedRun {
    /// The candidate's result.
    pub output: Output,
    /// Runtime in seconds (wall-clock for serial, virtual for parallel
    /// substrates — see DESIGN.md's timing-model table).
    pub seconds: f64,
}

/// One PCGBench problem: generator, baseline, and the seven reference
/// parallel implementations. Implemented by each of the 60 problems.
pub trait Spec: Send + Sync {
    /// The problem's input instance type. (`'static` so instances can
    /// be memoized in the type-erased [`input_cache`].)
    type Input: Send + Sync + 'static;

    /// Which of the 60 problems this is.
    fn id(&self) -> ProblemId;
    /// Prompt content (description, signature, examples).
    fn prompt(&self) -> PromptSpec;
    /// Default workload size (chosen so the serial baseline runs in
    /// roughly a millisecond).
    fn default_size(&self) -> usize;
    /// Generate a deterministic input instance.
    fn generate(&self, seed: u64, size: usize) -> Self::Input;
    /// Approximate input footprint in bytes (drives fallback cost
    /// modeling).
    fn input_bytes(&self, input: &Self::Input) -> usize;
    /// Handwritten optimal sequential implementation: the baseline
    /// `T*` and the correctness oracle.
    fn serial(&self, input: &Self::Input) -> Output;

    /// Reference OpenMP-analog implementation.
    fn solve_shmem(&self, input: &Self::Input, pool: &Pool) -> Output;
    /// Reference Kokkos-analog implementation.
    fn solve_patterns(&self, input: &Self::Input, space: &ExecSpace) -> Output;
    /// Reference MPI-analog rank program; called once per rank. The
    /// result must be produced on rank 0 (`None` elsewhere).
    fn solve_mpi(&self, input: &Self::Input, comm: &Comm<'_>) -> Option<Output>;
    /// Reference hybrid rank program; result on rank 0.
    fn solve_hybrid(&self, input: &Self::Input, ctx: &HybridCtx<'_>) -> Option<Output>;
    /// Reference GPU implementation (shared by the CUDA and HIP
    /// frontends, as in the paper the two differ only in toolchain).
    fn solve_gpu(&self, input: &Self::Input, gpu: &Gpu) -> Output;
}

/// Object-safe view of a problem, as consumed by the harness.
pub trait Problem: Send + Sync {
    /// Which of the 60 problems this is.
    fn id(&self) -> ProblemId;
    /// Prompt content.
    fn prompt(&self) -> PromptSpec;
    /// Default workload size.
    fn default_size(&self) -> usize;
    /// Run the handwritten sequential baseline (measured wall time).
    fn run_baseline(&self, seed: u64, size: usize) -> TimedRun;
    /// Build and run one candidate artifact.
    fn run_candidate(
        &self,
        model: ExecutionModel,
        kind: CandidateKind,
        n: u32,
        seed: u64,
        size: usize,
    ) -> Result<TimedRun, PcgError>;
}

impl<S: Spec> Problem for S {
    fn id(&self) -> ProblemId {
        Spec::id(self)
    }

    fn prompt(&self) -> PromptSpec {
        Spec::prompt(self)
    }

    fn default_size(&self) -> usize {
        Spec::default_size(self)
    }

    fn run_baseline(&self, seed: u64, size: usize) -> TimedRun {
        let input = cached_input(self, seed, size);
        let t0 = Instant::now();
        let output = self.serial(&input);
        TimedRun { output, seconds: t0.elapsed().as_secs_f64() }
    }

    fn run_candidate(
        &self,
        model: ExecutionModel,
        kind: CandidateKind,
        n: u32,
        seed: u64,
        size: usize,
    ) -> Result<TimedRun, PcgError> {
        match kind {
            CandidateKind::BuildFailure => {
                Err(PcgError::BuildFailure("candidate does not compile".into()))
            }
            CandidateKind::Timeout => Err(PcgError::Timeout),
            CandidateKind::RuntimeCrash => {
                Err(PcgError::Runtime("candidate crashed at runtime".into()))
            }
            CandidateKind::WrongOutput(mode) => {
                // Run the real parallel code path, then corrupt the
                // result the way a decomposition bug would.
                let run = self.run_candidate(
                    model,
                    CandidateKind::Correct(Quality::Efficient),
                    n,
                    seed,
                    size,
                )?;
                Ok(TimedRun {
                    output: corrupt::corrupt(run.output, mode, seed),
                    seconds: run.seconds,
                })
            }
            CandidateKind::SequentialFallback => {
                // Correct output, zero parallel-API usage: the harness's
                // instrumentation check flags this for parallel tasks.
                let input = cached_input(self, seed, size);
                let t0 = Instant::now();
                let output = self.serial(&input);
                Ok(TimedRun { output, seconds: t0.elapsed().as_secs_f64() })
            }
            CandidateKind::Flaky => {
                // A transient runtime fault: the first invocation at
                // each execution coordinate panics mid-run; retries run
                // the efficient parallel path. The panic (not an `Err`)
                // is deliberate — it exercises the harness's
                // hard-failure capture and retry machinery.
                if flaky_state::first_invocation(self.id(), model, n, seed, size) {
                    panic!("flaky candidate: transient fault on first invocation");
                }
                self.run_candidate(
                    model,
                    CandidateKind::Correct(Quality::Efficient),
                    n,
                    seed,
                    size,
                )
            }
            CandidateKind::Deadlock => Err(containment::deadlock(model)),
            CandidateKind::StackHog => Err(containment::stack_hog()),
            CandidateKind::Correct(quality) => {
                let input = cached_input(self, seed, size);
                let res = Resources::for_model(model, n);
                run_correct(self, model, quality, &input, &res)
            }
        }
    }
}

/// Reference containment defects. Each kind runs a small deterministic
/// *hostile* world — independent of the host problem, since the defect
/// replaces the candidate's logic entirely — on the forced-multiplexed
/// fiber scheduler, where the wait-for-graph detector and the guard-paged
/// stacks live. On targets without fiber support the defect degrades to a
/// static verdict, exactly like the virtual `Timeout` kind.
mod containment {
    use pcg_core::{ExecutionModel, PcgError};
    use pcg_hybrid::HybridWorld;
    use pcg_mpisim::{sched, CostModel, World};

    /// Tag no containment world ever sends: every recv on it blocks
    /// forever, forming the circular wait.
    const NEVER_SENT: u32 = 0x00C0_FFEE;

    /// Circular-wait defect: two ranks each receive a message the other
    /// will never send. The fiber scheduler's quiescence check converts
    /// this into an immediate `deadlock` verdict.
    pub fn deadlock(model: ExecutionModel) -> PcgError {
        if !sched::supported() {
            return PcgError::Deadlock(
                "all ranks blocked on peer receives (static verdict: no fiber scheduler on this target)"
                    .into(),
            );
        }
        let run = if model == ExecutionModel::MpiOpenMp {
            // Hybrid flavor: a threaded section first, so the rank passes
            // through the compute-admission gate before parking on the
            // cross-recv — the detector must see past gate traffic.
            HybridWorld::new(2, 2)
                .multiplexed()
                .run(|ctx| {
                    ctx.par_for(0..16, |i| {
                        std::hint::black_box(i);
                    });
                    let comm = ctx.comm();
                    let partner = comm.rank() ^ 1;
                    let _: Vec<f64> = comm.recv(Some(partner), NEVER_SENT);
                })
                .map(|_| ())
        } else {
            // Deterministic cost model: the verdict's park-time clocks
            // are then a pure function of the message graph.
            World::new(2)
                .with_cost_model(CostModel::deterministic())
                .multiplexed()
                .run(|comm| {
                    let partner = comm.rank() ^ 1;
                    let _: Vec<f64> = comm.recv(Some(partner), NEVER_SENT);
                })
                .map(|_| ())
        };
        match run {
            Err(e) => e,
            Ok(()) => PcgError::Runtime(
                "containment deadlock world terminated without a verdict".into(),
            ),
        }
    }

    /// Frame size of the hog's recursion: large enough to overflow the
    /// 2 MiB fiber stack in ~500 calls, far smaller than the guard
    /// region so a frame can never leap the guard page.
    const HOG_FRAME: usize = 4096;

    // Unconditional recursion is the entire point of this defect.
    #[allow(unconditional_recursion)]
    #[inline(never)]
    fn burn(depth: u64) -> u64 {
        let mut buf = [0u8; HOG_FRAME];
        buf[0] = depth as u8;
        std::hint::black_box(&mut buf);
        // Post-recursion use of the buffer defeats tail-call conversion,
        // so every level holds a live frame.
        burn(depth + 1) ^ u64::from(std::hint::black_box(buf[HOG_FRAME - 1]))
    }

    /// Unbounded-recursion defect: one rank consumes its entire fiber
    /// stack. The guard page converts the fault into an immediate
    /// `stack_overflow` verdict before adjacent memory is touched.
    pub fn stack_hog() -> PcgError {
        if !sched::supported() {
            return PcgError::StackOverflow(
                "candidate exhausted its execution stack (static verdict: no fiber scheduler on this target)"
                    .into(),
            );
        }
        let run = World::new(1).multiplexed().run(|comm| {
            if comm.rank() == 0 {
                std::hint::black_box(burn(0));
            }
        });
        match run {
            Err(e) => e,
            Ok(_) => PcgError::Runtime(
                "containment stack-hog world terminated without a verdict".into(),
            ),
        }
    }
}

/// Process-wide memory of which flaky-candidate coordinates have fired
/// their one transient fault. Keyed by the full execution coordinate so
/// distinct cache keys fail independently, which keeps evaluation
/// records deterministic at any worker count: the first *execution* per
/// coordinate always faults, wherever it is scheduled.
mod flaky_state {
    use pcg_core::{ExecutionModel, ProblemId};
    use std::collections::HashSet;
    use std::sync::{Mutex, OnceLock};

    type Coord = (ProblemId, ExecutionModel, u32, u64, usize);

    static FIRED: OnceLock<Mutex<HashSet<Coord>>> = OnceLock::new();

    /// `true` exactly once per coordinate per process.
    pub fn first_invocation(
        problem: ProblemId,
        model: ExecutionModel,
        n: u32,
        seed: u64,
        size: usize,
    ) -> bool {
        let set = FIRED.get_or_init(|| Mutex::new(HashSet::new()));
        let mut set = set.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        set.insert((problem, model, n, seed, size))
    }
}

/// Fetch (or generate and memoize) the input instance for a coordinate.
/// Identical to calling `spec.generate` directly — generators are
/// seeded and pure — but repeated coordinates share one allocation.
fn cached_input<S: Spec>(spec: &S, seed: u64, size: usize) -> Arc<S::Input> {
    input_cache::get_or_generate(
        Spec::id(spec),
        seed,
        size,
        |input| spec.input_bytes(input),
        || spec.generate(seed, size),
    )
}

/// Run an MPI rank program on a warm team when one is leased, else on
/// fresh per-run rank threads (identical semantics; see `World::run_on`).
fn run_world<R, F>(world: &World, team: Option<&RankTeam>, f: F) -> Result<SimOutcome<R>, PcgError>
where
    R: Send,
    F: Fn(&Comm<'_>) -> R + Sync,
{
    match team {
        Some(team) => world.run_on(team, f),
        None => world.run(f),
    }
}

/// Hybrid analog of [`run_world`].
fn run_hybrid<R, F>(
    world: &HybridWorld,
    team: Option<&HybridTeam>,
    f: F,
) -> Result<SimOutcome<R>, PcgError>
where
    R: Send,
    F: Fn(&HybridCtx<'_>) -> R + Sync,
{
    match team {
        Some(team) => world.run_on(team, f),
        None => world.run(f),
    }
}

fn run_correct<S: Spec>(
    spec: &S,
    model: ExecutionModel,
    quality: Quality,
    input: &S::Input,
    res: &Resources,
) -> Result<TimedRun, PcgError> {
    // On the warm path each arm leases its substrate instead of building
    // one; the `Lease` drop at the end of the arm returns it to the
    // cache — or poisons it if the candidate unwinds (panic or
    // cooperative cancellation), so a dirty substrate is never reused.
    match model {
        ExecutionModel::Serial => {
            let t0 = Instant::now();
            let output = spec.serial(input);
            Ok(TimedRun { output, seconds: t0.elapsed().as_secs_f64() })
        }
        ExecutionModel::OpenMp => {
            let lease;
            let fresh;
            let pool: &Pool = if warm::enabled() {
                lease = lease::checkout(LeaseKey::Shmem { threads: res.threads });
                lease.pool()
            } else {
                fresh = Pool::new_timed(res.threads, ThreadCostModel::default());
                &fresh
            };
            let output = match quality {
                Quality::Efficient => spec.solve_shmem(input, pool),
                Quality::Inefficient => fallback::lopsided_shmem(pool, || spec.serial(input)),
            };
            Ok(TimedRun { output, seconds: pool.virtual_elapsed() })
        }
        ExecutionModel::Kokkos => {
            let lease;
            let fresh;
            let space: &ExecSpace = if warm::enabled() {
                lease = lease::checkout(LeaseKey::Patterns { threads: res.threads });
                lease.space()
            } else {
                fresh = ExecSpace::new_timed(res.threads);
                &fresh
            };
            let output = match quality {
                Quality::Efficient => spec.solve_patterns(input, space),
                Quality::Inefficient => fallback::lopsided_patterns(space, || spec.serial(input)),
            };
            Ok(TimedRun { output, seconds: space.virtual_elapsed() })
        }
        ExecutionModel::Mpi => {
            let world = World::new(res.ranks).with_cost_model(CostModel::cluster());
            // Oversized teams are never cached (see lease::parkable), and
            // a fresh team per run costs more than the cold inline spawn,
            // so only parkable shapes go through the lease at all. With
            // rank multiplexing the paper-scale worlds (MPI-256/512)
            // account at the fiber-worker count and are parkable too.
            let key = LeaseKey::MpiTeam { ranks: res.ranks };
            let lease;
            let team: Option<&RankTeam> = if warm::enabled() && lease::parkable(key) {
                lease = lease::checkout(key);
                Some(lease.mpi_team())
            } else {
                None
            };
            let outcome = match quality {
                Quality::Efficient => run_world(&world, team, |comm| spec.solve_mpi(input, comm))?,
                Quality::Inefficient => run_world(&world, team, |comm| {
                    fallback::root_computes_mpi(comm, spec.input_bytes(input), || {
                        spec.serial(input)
                    })
                })?,
            };
            let output = outcome
                .per_rank
                .into_iter()
                .next()
                .flatten()
                .ok_or_else(|| PcgError::Runtime("MPI candidate produced no root output".into()))?;
            Ok(TimedRun { output, seconds: outcome.elapsed })
        }
        ExecutionModel::MpiOpenMp => {
            let world = HybridWorld::new(res.hybrid_ranks, res.hybrid_threads);
            let key = LeaseKey::HybridTeam {
                ranks: res.hybrid_ranks,
                threads: res.hybrid_threads,
            };
            let lease;
            let team: Option<&HybridTeam> = if warm::enabled() && lease::parkable(key) {
                lease = lease::checkout(key);
                Some(lease.hybrid_team())
            } else {
                None
            };
            let outcome = match quality {
                Quality::Efficient => run_hybrid(&world, team, |ctx| spec.solve_hybrid(input, ctx))?,
                Quality::Inefficient => run_hybrid(&world, team, |ctx| {
                    fallback::root_computes_hybrid(ctx, spec.input_bytes(input), || {
                        spec.serial(input)
                    })
                })?,
            };
            let output = outcome.per_rank.into_iter().next().flatten().ok_or_else(|| {
                PcgError::Runtime("hybrid candidate produced no root output".into())
            })?;
            Ok(TimedRun { output, seconds: outcome.elapsed })
        }
        ExecutionModel::Cuda | ExecutionModel::Hip => {
            let lease;
            let fresh;
            let gpu: &Gpu = if warm::enabled() {
                lease = lease::checkout(LeaseKey::Gpu { model });
                lease.gpu()
            } else {
                fresh = if model == ExecutionModel::Cuda {
                    pcg_gpusim::cuda::device()
                } else {
                    pcg_gpusim::hip::device()
                };
                &fresh
            };
            gpu.reset_clock();
            let output = match quality {
                Quality::Efficient => spec.solve_gpu(input, gpu),
                Quality::Inefficient => {
                    fallback::single_thread_gpu(gpu, spec.input_bytes(input), || {
                        spec.serial(input)
                    })
                }
            };
            Ok(TimedRun { output, seconds: gpu.elapsed() })
        }
    }
}

/// Cross-model conformance checking shared by the per-type test modules.
#[cfg(test)]
pub mod tests_support {
    use super::*;
    use pcg_core::{Corruption, Quality};

    /// Assert that every execution model's reference implementation,
    /// plus the inefficient variant, reproduces the serial baseline —
    /// and that a wrong-output candidate does not.
    pub fn check_problem_all_models(p: &dyn Problem, seed: u64, size: usize) {
        let base = p.run_baseline(seed, size);
        for model in ExecutionModel::ALL {
            let n = match model {
                ExecutionModel::Serial => 1,
                ExecutionModel::Cuda | ExecutionModel::Hip => 0,
                _ => 4,
            };
            let run = p
                .run_candidate(model, CandidateKind::Correct(Quality::Efficient), n, seed, size)
                .unwrap_or_else(|e| panic!("{} on {model}: {e}", p.id()));
            assert!(
                run.output.approx_eq(&base.output),
                "{} on {model}: got {} want {}",
                p.id(),
                run.output.summary(),
                base.output.summary()
            );
            assert!(run.seconds >= 0.0);
        }
        for model in [ExecutionModel::OpenMp, ExecutionModel::Mpi] {
            let run = p
                .run_candidate(model, CandidateKind::Correct(Quality::Inefficient), 4, seed, size)
                .unwrap_or_else(|e| panic!("{} inefficient on {model}: {e}", p.id()));
            assert!(
                run.output.approx_eq(&base.output),
                "{} inefficient on {model} wrong",
                p.id()
            );
        }
        let wrong = p
            .run_candidate(
                ExecutionModel::OpenMp,
                CandidateKind::WrongOutput(Corruption::PerturbElement),
                4,
                seed,
                size,
            )
            .unwrap();
        assert!(!wrong.output.approx_eq(&base.output), "{}: corruption ineffective", p.id());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resources_hybrid_decomposition() {
        let r = Resources::for_model(ExecutionModel::MpiOpenMp, 256);
        assert_eq!((r.hybrid_ranks, r.hybrid_threads), (4, 64));
        let r = Resources::for_model(ExecutionModel::MpiOpenMp, 64);
        assert_eq!((r.hybrid_ranks, r.hybrid_threads), (1, 64));
        let r = Resources::for_model(ExecutionModel::MpiOpenMp, 1);
        assert_eq!((r.hybrid_ranks, r.hybrid_threads), (1, 1));
        let r = Resources::for_model(ExecutionModel::MpiOpenMp, 128);
        assert_eq!((r.hybrid_ranks, r.hybrid_threads), (2, 64));
    }

    #[test]
    fn resources_thread_and_rank_axes() {
        let r = Resources::for_model(ExecutionModel::OpenMp, 32);
        assert_eq!(r.threads, 32);
        let r = Resources::for_model(ExecutionModel::Mpi, 512);
        assert_eq!(r.ranks, 512);
        let r = Resources::for_model(ExecutionModel::Cuda, 0);
        assert_eq!(r.gpu_block, 256);
    }
}
