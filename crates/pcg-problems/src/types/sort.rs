//! Sort problems (Table 1 "Sort"): in-place and out-of-place sorting of
//! bounded integer keys, sub-array sorting, selection, and a custom
//! order.
//!
//! Keys are bounded (`0..KEYS`), so the parallel reference strategy is
//! the distribution (counting) sort: parallel histogram over key ranks,
//! an exclusive scan of bucket counts, and a parallel emit of each
//! bucket's run — the same structure on every substrate, including a
//! two-kernel GPU pipeline. A per-variant rank bijection encodes the
//! ordering twist (descending, evens-before-odds).

use crate::framework::{Problem, Spec};
use crate::util;
use pcg_core::prompt::PromptSpec;
use pcg_core::{Output, ProblemId, ProblemType};
use pcg_gpusim::{Gpu, GpuBuffer, Launch};
use pcg_hybrid::HybridCtx;
use pcg_mpisim::{block_range, Comm, ReduceOp};
use pcg_patterns::{ExecSpace, ScatterView};
use pcg_shmem::{Pool, Schedule, UnsafeSlice};

/// Bounded key space.
const KEYS: u32 = 4096;

/// What part of the array gets sorted.
#[derive(Clone, Copy, PartialEq)]
enum Scope {
    /// Sort the whole array.
    Full,
    /// Sort only the middle half `[n/4, 3n/4)`.
    MiddleHalf,
}

/// What the task returns.
#[derive(Clone, Copy, PartialEq)]
enum Answer {
    /// The (partially) sorted array.
    Array,
    /// The k-th smallest element with `k = n/3`.
    KthSmallest,
}

struct SortProblem {
    variant: usize,
    fn_name: &'static str,
    description: &'static str,
    example_in: &'static str,
    example_out: &'static str,
    scope: Scope,
    answer: Answer,
    /// Bijection from key to sort rank (identity for ascending).
    rank: fn(u32) -> u32,
    /// Inverse of `rank`.
    unrank: fn(u32) -> u32,
}

impl SortProblem {
    fn sub_range(&self, n: usize) -> std::ops::Range<usize> {
        match self.scope {
            Scope::Full => 0..n,
            Scope::MiddleHalf => n / 4..(3 * n) / 4,
        }
    }

    fn hist_of(&self, keys: &[u32]) -> Vec<i64> {
        let mut hist = vec![0i64; KEYS as usize];
        for &k in keys {
            hist[(self.rank)(k) as usize] += 1;
        }
        hist
    }

    fn kth_from_hist(&self, hist: &[i64], k: usize) -> u32 {
        let mut seen = 0usize;
        for (rank, &cnt) in hist.iter().enumerate() {
            seen += cnt as usize;
            if seen > k {
                return (self.unrank)(rank as u32);
            }
        }
        (self.unrank)(KEYS - 1)
    }

    fn sorted_sub(&self, hist: &[i64]) -> Vec<u32> {
        let mut out = Vec::with_capacity(hist.iter().sum::<i64>() as usize);
        for (rank, &cnt) in hist.iter().enumerate() {
            let key = (self.unrank)(rank as u32);
            out.extend(std::iter::repeat_n(key, cnt as usize));
        }
        out
    }

    fn finish(&self, input: &[u32], sorted_sub: Vec<u32>) -> Output {
        match self.answer {
            Answer::KthSmallest => unreachable!("kth handled separately"),
            Answer::Array => {
                let rg = self.sub_range(input.len());
                let mut out: Vec<u32> = input.to_vec();
                out[rg].copy_from_slice(&sorted_sub);
                Output::I64s(out.into_iter().map(i64::from).collect())
            }
        }
    }
}

impl Spec for SortProblem {
    type Input = Vec<u32>;

    fn id(&self) -> ProblemId {
        ProblemId::new(ProblemType::Sort, self.variant)
    }

    fn prompt(&self) -> PromptSpec {
        PromptSpec {
            fn_name: self.fn_name.into(),
            description: self.description.into(),
            examples: vec![(self.example_in.into(), self.example_out.into())],
            signature: "x: &mut [u32]".into(),
        }
    }

    fn default_size(&self) -> usize {
        1 << 15
    }

    fn generate(&self, seed: u64, size: usize) -> Vec<u32> {
        let mut r = util::rng(seed, Spec::id(self).index() as u64);
        util::rand_i64s(&mut r, size.max(8), 0, KEYS as i64)
            .into_iter()
            .map(|x| x as u32)
            .collect()
    }

    fn input_bytes(&self, input: &Vec<u32>) -> usize {
        input.len() * 4
    }

    fn serial(&self, input: &Vec<u32>) -> Output {
        let rg = self.sub_range(input.len());
        match self.answer {
            Answer::KthSmallest => {
                let hist = self.hist_of(&input[rg]);
                Output::I64(i64::from(self.kth_from_hist(&hist, input.len() / 3)))
            }
            Answer::Array => {
                let hist = self.hist_of(&input[rg]);
                let sorted = self.sorted_sub(&hist);
                self.finish(input, sorted)
            }
        }
    }

    fn solve_shmem(&self, input: &Vec<u32>, pool: &Pool) -> Output {
        let rg = self.sub_range(input.len());
        let sub = &input[rg];
        // Parallel histogram with privatized buckets merged under a lock.
        let merged = parking_lot::Mutex::new(vec![0i64; KEYS as usize]);
        pool.parallel_for_chunks(0..sub.len(), Schedule::Static { chunk: 0 }, |chunk| {
            let local = self.hist_of(&sub[chunk]);
            let mut guard = merged.lock();
            for (m, l) in guard.iter_mut().zip(local) {
                *m += l;
            }
        });
        let hist = merged.into_inner();
        if self.answer == Answer::KthSmallest {
            return Output::I64(i64::from(self.kth_from_hist(&hist, input.len() / 3)));
        }
        // Exclusive scan of bucket counts, then parallel emit.
        let mut offsets = vec![0usize; KEYS as usize + 1];
        for r in 0..KEYS as usize {
            offsets[r + 1] = offsets[r] + hist[r] as usize;
        }
        let mut sorted = vec![0u32; sub.len()];
        {
            let slice = UnsafeSlice::new(&mut sorted);
            let unrank = self.unrank;
            pool.parallel_for(0..KEYS as usize, Schedule::Dynamic { chunk: 64 }, |r| {
                let key = unrank(r as u32);
                for pos in offsets[r]..offsets[r + 1] {
                    unsafe { slice.write(pos, key) };
                }
            });
        }
        self.finish(input, sorted)
    }

    fn solve_patterns(&self, input: &Vec<u32>, space: &ExecSpace) -> Output {
        let rg = self.sub_range(input.len());
        let sub = &input[rg];
        let scatter: ScatterView<i64> = ScatterView::new(KEYS as usize, space.concurrency());
        let teams = 4 * space.concurrency();
        let rank = self.rank;
        space.parallel_for_teams(teams, |team| {
            let part = block_range(sub.len(), team.league_size(), team.league_rank());
            let mut acc = scatter.access();
            for i in part {
                acc.add(rank(sub[i]) as usize, 1);
            }
        });
        let mut hist = vec![0i64; KEYS as usize];
        scatter.contribute(&mut hist);
        if self.answer == Answer::KthSmallest {
            return Output::I64(i64::from(self.kth_from_hist(&hist, input.len() / 3)));
        }
        let mut offsets = vec![0usize; KEYS as usize + 1];
        for r in 0..KEYS as usize {
            offsets[r + 1] = offsets[r] + hist[r] as usize;
        }
        let sorted_view = pcg_patterns::View::<u32>::new("sorted", sub.len());
        let sv = sorted_view.clone();
        let unrank = self.unrank;
        space.parallel_for(KEYS as usize, |r| {
            let key = unrank(r as u32);
            for pos in offsets[r]..offsets[r + 1] {
                unsafe { sv.set(pos, key) };
            }
        });
        self.finish(input, sorted_view.to_vec())
    }

    fn solve_mpi(&self, input: &Vec<u32>, comm: &Comm<'_>) -> Option<Output> {
        let rg = self.sub_range(input.len());
        let sub_len = rg.len();
        let local =
            comm.scatter_blocks(0, (comm.rank() == 0).then_some(&input[rg]), sub_len);
        let local_hist = self.hist_of(&local);
        // Every rank learns the global histogram, emits its block of the
        // sorted output locally, and the root gathers the blocks.
        let hist = comm.allreduce(&local_hist, ReduceOp::Sum);
        if self.answer == Answer::KthSmallest {
            let k = self.kth_from_hist(&hist, input.len() / 3);
            return if comm.rank() == 0 { Some(Output::I64(i64::from(k))) } else { None };
        }
        let out_rg = block_range(sub_len, comm.size(), comm.rank());
        let mut offsets = vec![0usize; KEYS as usize + 1];
        for r in 0..KEYS as usize {
            offsets[r + 1] = offsets[r] + hist[r] as usize;
        }
        let mut block = Vec::with_capacity(out_rg.len());
        for r in 0..KEYS as usize {
            let lo = offsets[r].max(out_rg.start);
            let hi = offsets[r + 1].min(out_rg.end);
            if lo < hi {
                block.extend(std::iter::repeat_n((self.unrank)(r as u32), hi - lo));
            }
        }
        comm.gather(0, &block).map(|sorted| self.finish(input, sorted))
    }

    fn solve_hybrid(&self, input: &Vec<u32>, ctx: &HybridCtx<'_>) -> Option<Output> {
        let comm = ctx.comm();
        let rg = self.sub_range(input.len());
        let sub = &input[rg];
        let my_items = block_range(sub.len(), comm.size(), comm.rank());
        let rank = self.rank;
        let local_hist = ctx.par_reduce(
            my_items,
            vec![0i64; KEYS as usize],
            move |mut h, i| {
                h[rank(sub[i]) as usize] += 1;
                h
            },
            |mut a, b| {
                for (x, y) in a.iter_mut().zip(b) {
                    *x += y;
                }
                a
            },
        );
        let hist = comm.allreduce(&local_hist, ReduceOp::Sum);
        if self.answer == Answer::KthSmallest {
            let k = self.kth_from_hist(&hist, input.len() / 3);
            return if comm.rank() == 0 { Some(Output::I64(i64::from(k))) } else { None };
        }
        let out_rg = block_range(sub.len(), comm.size(), comm.rank());
        let mut offsets = vec![0usize; KEYS as usize + 1];
        for r in 0..KEYS as usize {
            offsets[r + 1] = offsets[r] + hist[r] as usize;
        }
        let mut block = Vec::with_capacity(out_rg.len());
        for r in 0..KEYS as usize {
            let lo = offsets[r].max(out_rg.start);
            let hi = offsets[r + 1].min(out_rg.end);
            if lo < hi {
                block.extend(std::iter::repeat_n((self.unrank)(r as u32), hi - lo));
            }
        }
        comm.gather(0, &block).map(|sorted| self.finish(input, sorted))
    }

    fn solve_gpu(&self, input: &Vec<u32>, gpu: &Gpu) -> Output {
        let rg = self.sub_range(input.len());
        let sub = &input[rg];
        let keys = GpuBuffer::from_slice(sub);
        let hist = GpuBuffer::<u32>::zeroed(KEYS as usize);
        let rank = self.rank;
        // Kernel 1: histogram with global atomics.
        gpu.launch_each(Launch::over(sub.len(), 256), |t, ctx| {
            let i = t.global_id();
            if i < keys.len() {
                let k = ctx.read(&keys, i);
                ctx.atomic_add(&hist, rank(k) as usize, 1);
            }
        });
        let h: Vec<i64> = hist.to_vec().into_iter().map(i64::from).collect();
        if self.answer == Answer::KthSmallest {
            return Output::I64(i64::from(self.kth_from_hist(&h, input.len() / 3)));
        }
        // Host scan (small), then kernel 2: one thread per bucket emits
        // its run.
        let mut offsets = vec![0u32; KEYS as usize + 1];
        for r in 0..KEYS as usize {
            offsets[r + 1] = offsets[r] + h[r] as u32;
        }
        let offs = GpuBuffer::from_slice(&offsets);
        let sorted = GpuBuffer::<u32>::zeroed(sub.len());
        let unrank = self.unrank;
        gpu.launch_each(Launch::over(KEYS as usize, 256), |t, ctx| {
            let r = t.global_id();
            if r < KEYS as usize {
                let lo = ctx.read(&offs, r);
                let hi = ctx.read(&offs, r + 1);
                let key = unrank(r as u32);
                for pos in lo..hi {
                    ctx.write(&sorted, pos as usize, key);
                }
            }
        });
        self.finish(input, sorted.to_vec())
    }
}

/// The five sort problems.
pub fn problems() -> Vec<Box<dyn Problem>> {
    vec![
        Box::new(SortProblem {
            variant: 0,
            fn_name: "sortAscending",
            description: "Sort the array x of integer keys (0 <= x[i] < 4096) in ascending order.",
            example_in: "[3, 1, 2]",
            example_out: "[1, 2, 3]",
            scope: Scope::Full,
            answer: Answer::Array,
            rank: |k| k,
            unrank: |r| r,
        }),
        Box::new(SortProblem {
            variant: 1,
            fn_name: "sortDescending",
            description: "Sort the array x of integer keys (0 <= x[i] < 4096) in descending order.",
            example_in: "[3, 1, 2]",
            example_out: "[3, 2, 1]",
            scope: Scope::Full,
            answer: Answer::Array,
            rank: |k| KEYS - 1 - k,
            unrank: |r| KEYS - 1 - r,
        }),
        Box::new(SortProblem {
            variant: 2,
            fn_name: "sortMiddleHalf",
            description: "Sort only the middle half of x (indices n/4 .. 3n/4) ascending, leaving the rest unchanged.",
            example_in: "[9, 9, 4, 2, 7, 1, 9, 9]",
            example_out: "[9, 9, 1, 2, 4, 7, 9, 9]",
            scope: Scope::MiddleHalf,
            answer: Answer::Array,
            rank: |k| k,
            unrank: |r| r,
        }),
        Box::new(SortProblem {
            variant: 3,
            fn_name: "kthSmallest",
            description: "Return the element that would be at index n/3 if the array x were sorted ascending (the (n/3)-th smallest).",
            example_in: "[5, 1, 4, 2, 3, 0]",
            example_out: "2",
            scope: Scope::Full,
            answer: Answer::KthSmallest,
            rank: |k| k,
            unrank: |r| r,
        }),
        Box::new(SortProblem {
            variant: 4,
            fn_name: "evenOddSort",
            description: "Reorder x so all even keys come first in ascending order, followed by all odd keys in ascending order.",
            example_in: "[5, 2, 1, 4]",
            example_out: "[2, 4, 1, 5]",
            scope: Scope::Full,
            answer: Answer::Array,
            // Evens map to ranks 0..KEYS/2, odds to KEYS/2..KEYS.
            rank: |k| {
                if k % 2 == 0 {
                    k / 2
                } else {
                    KEYS / 2 + k / 2
                }
            },
            unrank: |r| {
                if r < KEYS / 2 {
                    2 * r
                } else {
                    2 * (r - KEYS / 2) + 1
                }
            },
        }),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::tests_support::check_problem_all_models;

    #[test]
    fn sort_problems_agree_across_models() {
        for p in problems() {
            check_problem_all_models(&*p, 616, 800);
        }
    }

    #[test]
    fn serial_sorts_match_std_sort() {
        let ps = problems();
        let asc = &ps[0];
        let input: Vec<u32> = vec![3, 1, 4, 1, 5, 9, 2, 6];
        let mut want = input.clone();
        want.sort_unstable();
        // Drive through the Spec-level serial path by regenerating: use
        // a small generated input instead for the end-to-end check.
        let base = asc.run_baseline(1, 64);
        if let Output::I64s(v) = &base.output {
            let mut sorted = v.clone();
            sorted.sort_unstable();
            assert_eq!(v, &sorted, "ascending output must be sorted");
        }
        let _ = want;
    }

    #[test]
    fn even_odd_rank_bijection() {
        let p = problems();
        let _ = &p[4];
        let rank = |k: u32| if k.is_multiple_of(2) { k / 2 } else { KEYS / 2 + k / 2 };
        let unrank = |r: u32| if r < KEYS / 2 { 2 * r } else { 2 * (r - KEYS / 2) + 1 };
        for k in 0..KEYS {
            assert_eq!(unrank(rank(k)), k);
        }
    }

    #[test]
    fn descending_output_is_sorted_desc() {
        let p = &problems()[1];
        let base = p.run_baseline(2, 100);
        if let Output::I64s(v) = &base.output {
            assert!(v.windows(2).all(|w| w[0] >= w[1]));
        }
    }
}
