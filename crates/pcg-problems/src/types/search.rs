//! Search problems: locate elements or properties (Table 1 "Search").
//!
//! Note that the paper excludes Search from the performance metrics due
//! to super-linear speedups; correctness is still evaluated.

use crate::framework::{Problem, Spec};
use crate::util;
use pcg_core::prompt::PromptSpec;
use pcg_core::{Output, ProblemId, ProblemType};
use pcg_gpusim::{Gpu, GpuBuffer, Launch};
use pcg_hybrid::HybridCtx;
use pcg_mpisim::{block_range, Comm, ReduceOp};
use pcg_patterns::{ExecSpace, View};
use pcg_shmem::Pool;

const NONE_IDX: i64 = i64::MAX;

/// Variants 0-3 share the "index-reduce" shape: fold every index into a
/// scalar with a min-like combiner. Variant semantics are encoded as a
/// per-index score: the final answer is the minimum score (mapped back
/// to an index or count by `finish`).
struct IndexSearchProblem {
    variant: usize,
    fn_name: &'static str,
    description: &'static str,
    example_in: &'static str,
    example_out: &'static str,
    /// Needs the full slice so predicates can look at neighbors.
    score: fn(&[f64], usize) -> i64,
    /// Combine two scores (must be associative + commutative).
    combine: fn(i64, i64) -> i64,
    identity: i64,
    finish: fn(i64) -> Output,
}

impl IndexSearchProblem {
    fn fold_range(&self, xs: &[f64], lo: usize, hi: usize) -> i64 {
        let mut acc = self.identity;
        for i in lo..hi {
            acc = (self.combine)(acc, (self.score)(xs, i));
        }
        acc
    }
}

impl Spec for IndexSearchProblem {
    type Input = Vec<f64>;

    fn id(&self) -> ProblemId {
        ProblemId::new(ProblemType::Search, self.variant)
    }

    fn prompt(&self) -> PromptSpec {
        PromptSpec {
            fn_name: self.fn_name.into(),
            description: self.description.into(),
            examples: vec![(self.example_in.into(), self.example_out.into())],
            signature: "x: &[f64] -> i64".into(),
        }
    }

    fn default_size(&self) -> usize {
        1 << 16
    }

    fn generate(&self, seed: u64, size: usize) -> Vec<f64> {
        let mut r = util::rng(seed, Spec::id(self).index() as u64);
        // Quantized values make duplicates and threshold crossings
        // plausible for the predicates.
        util::rand_f64s(&mut r, size, -100.0, 100.0)
            .into_iter()
            .map(|x| (x * 4.0).round() / 4.0)
            .collect()
    }

    fn input_bytes(&self, input: &Vec<f64>) -> usize {
        input.len() * 8
    }

    fn serial(&self, input: &Vec<f64>) -> Output {
        (self.finish)(self.fold_range(input, 0, input.len()))
    }

    fn solve_shmem(&self, input: &Vec<f64>, pool: &Pool) -> Output {
        let acc = pool.parallel_for_reduce(
            0..input.len(),
            self.identity,
            |acc, i| (self.combine)(acc, (self.score)(input, i)),
            |a, b| (self.combine)(a, b),
        );
        (self.finish)(acc)
    }

    fn solve_patterns(&self, input: &Vec<f64>, space: &ExecSpace) -> Output {
        // Views carry plain f64s; predicates need slices, so keep the
        // host slice and dispatch indices (a realistic Kokkos pattern
        // with host-pinned data).
        let x = View::from_slice("x", input);
        let _ = x.len();
        let acc = space.parallel_reduce(
            input.len(),
            self.identity,
            |i| (self.score)(input, i),
            |a, b| (self.combine)(a, b),
        );
        (self.finish)(acc)
    }

    fn solve_mpi(&self, input: &Vec<f64>, comm: &Comm<'_>) -> Option<Output> {
        // Broadcast then fold the owned block: predicates may peek at
        // neighbors, so every rank keeps the full array (searches are
        // read-only and small).
        let mut data = if comm.rank() == 0 { input.clone() } else { Vec::new() };
        comm.bcast(0, &mut data);
        let range = block_range(data.len(), comm.size(), comm.rank());
        let local = self.fold_range(&data, range.start, range.end);
        let op = if self.identity == 0 { ReduceOp::Sum } else { ReduceOp::Min };
        comm.reduce_one(0, local, op).map(self.finish)
    }

    fn solve_hybrid(&self, input: &Vec<f64>, ctx: &HybridCtx<'_>) -> Option<Output> {
        let comm = ctx.comm();
        let range = block_range(input.len(), comm.size(), comm.rank());
        let score = self.score;
        let combine = self.combine;
        let local = ctx.par_reduce(
            range,
            self.identity,
            move |acc, i| combine(acc, score(input, i)),
            combine,
        );
        let op = if self.identity == 0 { ReduceOp::Sum } else { ReduceOp::Min };
        comm.reduce_one(0, local, op).map(self.finish)
    }

    fn solve_gpu(&self, input: &Vec<f64>, gpu: &Gpu) -> Output {
        let x = GpuBuffer::from_slice(input);
        // Scores need neighbor access: read through the metered ctx and
        // reconstruct the tiny window each score needs via a device-side
        // closure over the buffer.
        let score = self.score;
        let combine = self.combine;
        let identity = self.identity;
        let use_sum = identity == 0;
        // Min-reductions ride atomicMax on `i64::MAX - value`; the
        // matching accumulator seed for identity i64::MAX is 0.
        let acc = GpuBuffer::from_slice(&[0i64]);
        let host = input.clone();
        gpu.launch_each(Launch::over(input.len().min(1 << 14), 256), |t, ctx| {
            let mut a = identity;
            let mut i = t.global_id();
            while i < x.len() {
                // Meter the element read; the predicate itself runs on
                // the mirrored host slice (window reads).
                let _ = ctx.read(&x, i);
                a = combine(a, score(&host, i));
                i += t.grid_threads();
            }
            if use_sum {
                if a != 0 {
                    ctx.atomic_add(&acc, 0, a);
                }
            } else {
                // atomicMin via complemented atomicMax (scores here are
                // non-negative, so the transform is monotone and exact).
                ctx.atomic_max(&acc, 0, i64::MAX - a);
            }
        });
        let raw = if use_sum { acc.load(0) } else { i64::MAX - acc.load(0) };
        (self.finish)(raw)
    }
}

/// Variant 4: first row of a matrix whose sum exceeds a threshold.
struct RowSumSearch;

/// Input: (rows, cols, data, threshold).
pub struct RowSumInput {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
    threshold: f64,
}

impl RowSumInput {
    fn row_sum(&self, r: usize) -> f64 {
        self.data[r * self.cols..(r + 1) * self.cols].iter().sum()
    }
}

impl Spec for RowSumSearch {
    type Input = RowSumInput;

    fn id(&self) -> ProblemId {
        ProblemId::new(ProblemType::Search, 4)
    }

    fn prompt(&self) -> PromptSpec {
        PromptSpec {
            fn_name: "firstRowWithLargeSum".into(),
            description: "Given a rows x cols matrix stored row-major in data, return the smallest row index whose row sum is strictly greater than t, or -1 if none.".into(),
            examples: vec![(
                "rows=2, cols=2, data=[1, 1, 5, 5], t=6".into(),
                "1".into(),
            )],
            signature: "rows: usize, cols: usize, data: &[f64], t: f64 -> i64".into(),
        }
    }

    fn default_size(&self) -> usize {
        1 << 16
    }

    fn generate(&self, seed: u64, size: usize) -> RowSumInput {
        let mut r = util::rng(seed, Spec::id(self).index() as u64);
        let cols = size.clamp(8, 64);
        let rows = (size / cols).max(1);
        let data = util::rand_f64s(&mut r, rows * cols, -1.0, 1.0);
        // A threshold a bit above zero keeps the hit row away from 0.
        RowSumInput { rows, cols, data, threshold: 2.0 }
    }

    fn input_bytes(&self, input: &RowSumInput) -> usize {
        input.data.len() * 8
    }

    fn serial(&self, input: &RowSumInput) -> Output {
        for r in 0..input.rows {
            if input.row_sum(r) > input.threshold {
                return Output::I64(r as i64);
            }
        }
        Output::I64(-1)
    }

    fn solve_shmem(&self, input: &RowSumInput, pool: &Pool) -> Output {
        let best = pool.parallel_for_reduce(
            0..input.rows,
            NONE_IDX,
            |acc, r| {
                if input.row_sum(r) > input.threshold {
                    acc.min(r as i64)
                } else {
                    acc
                }
            },
            i64::min,
        );
        Output::I64(if best == NONE_IDX { -1 } else { best })
    }

    fn solve_patterns(&self, input: &RowSumInput, space: &ExecSpace) -> Output {
        let best = space.parallel_reduce(
            input.rows,
            NONE_IDX,
            |r| {
                if input.row_sum(r) > input.threshold {
                    r as i64
                } else {
                    NONE_IDX
                }
            },
            i64::min,
        );
        Output::I64(if best == NONE_IDX { -1 } else { best })
    }

    fn solve_mpi(&self, input: &RowSumInput, comm: &Comm<'_>) -> Option<Output> {
        // Broadcast the matrix, scan a row-aligned block per rank, and
        // min-reduce the first hit's global row index.
        let mut rows_data = if comm.rank() == 0 {
            input.data.clone()
        } else {
            Vec::new()
        };
        comm.bcast(0, &mut rows_data);
        let rows_range = block_range(input.rows, comm.size(), comm.rank());
        let mut best = NONE_IDX;
        for r in rows_range {
            let sum: f64 = rows_data[r * input.cols..(r + 1) * input.cols].iter().sum();
            if sum > input.threshold {
                best = r as i64;
                break;
            }
        }
        comm.reduce_one(0, best, ReduceOp::Min)
            .map(|b| Output::I64(if b == NONE_IDX { -1 } else { b }))
    }

    fn solve_hybrid(&self, input: &RowSumInput, ctx: &HybridCtx<'_>) -> Option<Output> {
        let comm = ctx.comm();
        let rows_range = block_range(input.rows, comm.size(), comm.rank());
        let best = ctx.par_reduce(
            rows_range,
            NONE_IDX,
            |acc, r| {
                if input.row_sum(r) > input.threshold {
                    acc.min(r as i64)
                } else {
                    acc
                }
            },
            i64::min,
        );
        comm.reduce_one(0, best, ReduceOp::Min)
            .map(|b| Output::I64(if b == NONE_IDX { -1 } else { b }))
    }

    fn solve_gpu(&self, input: &RowSumInput, gpu: &Gpu) -> Output {
        let data = GpuBuffer::from_slice(&input.data);
        let best = GpuBuffer::from_slice(&[i64::MIN]);
        let cols = input.cols;
        let threshold = input.threshold;
        gpu.launch_each(Launch::over(input.rows, 128), |t, ctx| {
            let r = t.global_id();
            if r < data.len() / cols {
                let mut sum = 0.0;
                for c in 0..cols {
                    sum += ctx.read(&data, r * cols + c);
                }
                if sum > threshold {
                    // atomicMin via negated atomicMax.
                    ctx.atomic_max(&best, 0, -(r as i64));
                }
            }
        });
        let raw = best.load(0);
        Output::I64(if raw == i64::MIN { -1 } else { -raw })
    }
}

/// The five search problems.
pub fn problems() -> Vec<Box<dyn Problem>> {
    vec![
        Box::new(IndexSearchProblem {
            variant: 0,
            fn_name: "firstIndexBelowNegativeNinety",
            description: "Return the smallest index i such that x[i] < -90, or -1 if no such element exists.",
            example_in: "[5.0, -95.0, -99.0]",
            example_out: "1",
            score: |xs, i| if xs[i] < -90.0 { i as i64 } else { NONE_IDX },
            combine: i64::min,
            identity: NONE_IDX,
            finish: |v| Output::I64(if v == NONE_IDX { -1 } else { v }),
        }),
        Box::new(IndexSearchProblem {
            variant: 1,
            fn_name: "countAdjacentRisingPairs",
            description: "Count the number of indices i such that x[i] < x[i+1].",
            example_in: "[1.0, 3.0, 2.0, 4.0]",
            example_out: "2",
            score: |xs, i| i64::from(i + 1 < xs.len() && xs[i] < xs[i + 1]),
            combine: |a, b| a + b,
            identity: 0,
            finish: Output::I64,
        }),
        Box::new(IndexSearchProblem {
            variant: 2,
            fn_name: "argminDistanceToPi",
            description: "Return the smallest index i minimizing |x[i] - 3.25|.",
            example_in: "[0.0, 3.0, 3.5, 10.0]",
            example_out: "1",
            // Encode (quantized distance, index) in one i64 so a plain
            // min-reduce is an argmin: distances are multiples of 0.25
            // (inputs are quantized), so the packing is exact.
            score: |xs, i| {
                let q = ((xs[i] - 3.25).abs() * 4.0).round() as i64;
                q * (1 << 32) + i as i64
            },
            combine: i64::min,
            identity: i64::MAX,
            finish: |v| Output::I64(v & ((1 << 32) - 1)),
        }),
        Box::new(IndexSearchProblem {
            variant: 3,
            fn_name: "hasAdjacentDuplicate",
            description: "Return 1 if any two adjacent elements of x are exactly equal, else 0.",
            example_in: "[1.0, 2.0, 2.0, 3.0]",
            example_out: "1",
            score: |xs, i| i64::from(i + 1 < xs.len() && xs[i] == xs[i + 1]),
            combine: |a, b| a + b,
            identity: 0,
            finish: |v| Output::I64(i64::from(v > 0)),
        }),
        Box::new(RowSumSearch),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::tests_support::check_problem_all_models;

    #[test]
    fn search_problems_agree_across_models() {
        for p in problems() {
            check_problem_all_models(&*p, 555, 900);
        }
    }

    #[test]
    fn first_index_below_miss_returns_minus_one() {
        let p = &problems()[0];
        // All-positive input has no hit.
        let out = p
            .run_candidate(
                pcg_core::ExecutionModel::Serial,
                pcg_core::CandidateKind::Correct(pcg_core::Quality::Efficient),
                1,
                9,
                4,
            )
            .unwrap();
        // Tiny input likely has no value below -90; either way the
        // serial and parallel answers must agree (covered above). Here
        // just sanity-check the output type.
        assert!(matches!(out.output, Output::I64(_)));
    }

    #[test]
    fn argmin_packing_is_exact() {
        let xs = vec![3.0, 3.25, 3.5];
        let p = IndexSearchProblem {
            variant: 2,
            fn_name: "",
            description: "",
            example_in: "",
            example_out: "",
            score: |xs, i| {
                let q = ((xs[i] - 3.25).abs() * 4.0).round() as i64;
                q * (1 << 32) + i as i64
            },
            combine: i64::min,
            identity: i64::MAX,
            finish: |v| Output::I64(v & ((1 << 32) - 1)),
        };
        assert!(Spec::serial(&p, &xs).approx_eq(&Output::I64(1)));
    }
}
