//! Sparse matrix algebra problems covering the three BLAS levels on CSR
//! data (Table 1 "Sparse Matrix Algebra"): SpMV, transposed SpMV
//! (scatter-adds), sparse vector axpy, row norms, and SpMM against a
//! dense block.
//!
//! The paper finds sparse problems the hardest for LLMs to parallelize;
//! the reference implementations here exhibit why: transposed products
//! and sparse updates need atomics/`ScatterView`/reductions rather than
//! plain loop splitting.

use crate::framework::{Problem, Spec};
use crate::util::{self, Csr};
use pcg_core::prompt::PromptSpec;
use pcg_core::{Output, ProblemId, ProblemType};
use pcg_gpusim::{Gpu, GpuBuffer, Launch};
use pcg_hybrid::HybridCtx;
use pcg_mpisim::{block_range, Comm, ReduceOp};
use pcg_patterns::{ExecSpace, ScatterView};
use pcg_shmem::{AtomicF64, Pool, Schedule};

/// Scatter a CSR matrix by row blocks: every rank receives its rows
/// with a rebased `row_ptr`. The canonical 1-D SpMV distribution.
fn scatter_csr(comm: &Comm<'_>, m: &Csr) -> Csr {
    let rows = comm.bcast_one(0, m.rows as i64) as usize;
    let cols = comm.bcast_one(0, m.cols as i64) as usize;
    let build = |extract: &dyn Fn(std::ops::Range<usize>) -> Vec<f64>| {
        let chunks: Option<Vec<Vec<f64>>> = (comm.rank() == 0).then(|| {
            (0..comm.size())
                .map(|p| {
                    let rg = block_range(rows, comm.size(), p);
                    extract(m.row_ptr[rg.start]..m.row_ptr[rg.end])
                })
                .collect()
        });
        comm.scatter(0, chunks)
    };
    let vals = build(&|nz| m.vals[nz].to_vec());
    let cols_f = build(&|nz| m.col_idx[nz.start..nz.end].iter().map(|&c| c as f64).collect());
    // Per-row counts for the local block.
    let count_chunks: Option<Vec<Vec<f64>>> = (comm.rank() == 0).then(|| {
        (0..comm.size())
            .map(|p| {
                let rg = block_range(rows, comm.size(), p);
                rg.map(|r| (m.row_ptr[r + 1] - m.row_ptr[r]) as f64).collect()
            })
            .collect()
    });
    let counts = comm.scatter(0, count_chunks);
    let mut row_ptr = Vec::with_capacity(counts.len() + 1);
    row_ptr.push(0usize);
    for c in &counts {
        row_ptr.push(row_ptr.last().unwrap() + *c as usize);
    }
    Csr {
        rows: counts.len(),
        cols,
        row_ptr,
        col_idx: cols_f.into_iter().map(|c| c as u32).collect(),
        vals,
    }
}

/// Input bundle shared by the five sparse problems.
pub struct SparseInput {
    m: Csr,
    x: Vec<f64>,
    /// Dense B operand for SpMM, row-major `m.cols x k`.
    bk: Vec<f64>,
    k: usize,
    /// Sparse vector 1: sorted unique indices + values.
    sx: (Vec<u32>, Vec<f64>),
    /// Sparse vector 2.
    sy: (Vec<u32>, Vec<f64>),
    /// Dense length for the sparse-axpy output.
    n: usize,
}

fn gen_input(variant: usize, seed: u64, size: usize) -> SparseInput {
    use rand::Rng;
    let mut r = util::rng(seed, 900 + variant as u64);
    let rows = (size / 8).max(4);
    let m = Csr::random(&mut r, rows, rows, 6);
    let x = util::rand_f64s(&mut r, rows, -1.0, 1.0);
    let k = 8;
    let bk = util::rand_f64s(&mut r, rows * k, -1.0, 1.0);
    let n = size.max(8);
    let mut sparse_vec = |density: f64| {
        let mut idx: Vec<u32> =
            (0..n as u32).filter(|_| r.gen_bool(density)).collect();
        if idx.is_empty() {
            idx.push(0);
        }
        let vals = util::rand_f64s(&mut r, idx.len(), -1.0, 1.0);
        (idx, vals)
    };
    let sx = sparse_vec(0.1);
    let sy = sparse_vec(0.1);
    SparseInput { m, x, bk, k, sx, sy, n }
}

fn input_bytes(input: &SparseInput) -> usize {
    input.m.bytes() + (input.x.len() + input.bk.len()) * 8 + input.sx.0.len() * 12 + input.sy.0.len() * 12
}

/// Shared prompt scaffolding.
fn mk_prompt(fn_name: &str, description: &str, ex_in: &str, ex_out: &str, sig: &str) -> PromptSpec {
    PromptSpec {
        fn_name: fn_name.into(),
        description: description.into(),
        examples: vec![(ex_in.into(), ex_out.into())],
        signature: sig.into(),
    }
}

// ----------------------------------------------------------------------
// Variant 0: SpMV
// ----------------------------------------------------------------------

struct SpMv;

impl Spec for SpMv {
    type Input = SparseInput;

    fn id(&self) -> ProblemId {
        ProblemId::new(ProblemType::SparseLinearAlgebra, 0)
    }

    fn prompt(&self) -> PromptSpec {
        mk_prompt(
            "csrSpMV",
            "Compute y = A*x for a CSR matrix A (row_ptr, col_idx, vals) and dense vector x.",
            "A=[[2,0],[0,3]], x=[1,1]",
            "[2.0, 3.0]",
            "row_ptr: &[usize], col_idx: &[u32], vals: &[f64], x: &[f64], y: &mut [f64]",
        )
    }

    fn default_size(&self) -> usize {
        1 << 16
    }

    fn generate(&self, seed: u64, size: usize) -> SparseInput {
        gen_input(0, seed, size)
    }

    fn input_bytes(&self, input: &SparseInput) -> usize {
        input_bytes(input)
    }

    fn serial(&self, input: &SparseInput) -> Output {
        Output::F64s(input.m.spmv(&input.x))
    }

    fn solve_shmem(&self, input: &SparseInput, pool: &Pool) -> Output {
        let m = &input.m;
        let mut y = vec![0.0; m.rows];
        {
            let slice = pcg_shmem::UnsafeSlice::new(&mut y);
            // Dynamic schedule: CSR rows have irregular cost.
            pool.parallel_for(0..m.rows, Schedule::Dynamic { chunk: 64 }, |i| {
                let v: f64 =
                    m.row(i).map(|nz| m.vals[nz] * input.x[m.col_idx[nz] as usize]).sum();
                unsafe { slice.write(i, v) };
            });
        }
        Output::F64s(y)
    }

    fn solve_patterns(&self, input: &SparseInput, space: &ExecSpace) -> Output {
        let m = &input.m;
        let y = pcg_patterns::View::<f64>::new("y", m.rows);
        let y2 = y.clone();
        // One team per row chunk, vector lanes over the row's nonzeros.
        space.parallel_for_teams(m.rows, |team| {
            let i = team.league_rank();
            let nz = m.row(i);
            let base = nz.start;
            let v = team.team_reduce(nz.len(), 0.0, |acc, lane| {
                acc + m.vals[base + lane] * input.x[m.col_idx[base + lane] as usize]
            });
            unsafe { y2.set(i, v) };
        });
        Output::F64s(y.to_vec())
    }

    fn solve_mpi(&self, input: &SparseInput, comm: &Comm<'_>) -> Option<Output> {
        let local = scatter_csr(comm, &input.m);
        let mut x = if comm.rank() == 0 { input.x.clone() } else { Vec::new() };
        comm.bcast(0, &mut x);
        let y = local.spmv(&x);
        comm.gather(0, &y).map(Output::F64s)
    }

    fn solve_hybrid(&self, input: &SparseInput, ctx: &HybridCtx<'_>) -> Option<Output> {
        let comm = ctx.comm();
        let m = &input.m;
        let rg = block_range(m.rows, comm.size(), comm.rank());
        let mut y = vec![0.0; rg.len()];
        let lo = rg.start;
        {
            let slice = pcg_shmem::UnsafeSlice::new(&mut y);
            ctx.par_for(0..rg.len(), |j| {
                let i = lo + j;
                let v: f64 =
                    m.row(i).map(|nz| m.vals[nz] * input.x[m.col_idx[nz] as usize]).sum();
                unsafe { slice.write(j, v) };
            });
        }
        comm.gather(0, &y).map(Output::F64s)
    }

    fn solve_gpu(&self, input: &SparseInput, gpu: &Gpu) -> Output {
        let m = &input.m;
        let vals = GpuBuffer::from_slice(&m.vals);
        let cols = GpuBuffer::from_slice(&m.col_idx);
        let x = GpuBuffer::from_slice(&input.x);
        let y = GpuBuffer::<f64>::zeroed(m.rows);
        let row_ptr = m.row_ptr.clone();
        gpu.launch_each(Launch::over(m.rows, 128), |t, ctx| {
            let i = t.global_id();
            if i < y.len() {
                let mut acc = 0.0;
                for nz in row_ptr[i]..row_ptr[i + 1] {
                    let c = ctx.read(&cols, nz) as usize;
                    acc += ctx.read(&vals, nz) * ctx.read(&x, c);
                }
                ctx.write(&y, i, acc);
            }
        });
        Output::F64s(y.to_vec())
    }
}

// ----------------------------------------------------------------------
// Variant 1: transposed SpMV (scatter adds)
// ----------------------------------------------------------------------

struct SpMvT;

impl SpMvT {
    fn serial_vec(input: &SparseInput) -> Vec<f64> {
        let m = &input.m;
        let mut y = vec![0.0; m.cols];
        for i in 0..m.rows {
            for nz in m.row(i) {
                y[m.col_idx[nz] as usize] += m.vals[nz] * input.x[i];
            }
        }
        y
    }
}

impl Spec for SpMvT {
    type Input = SparseInput;

    fn id(&self) -> ProblemId {
        ProblemId::new(ProblemType::SparseLinearAlgebra, 1)
    }

    fn prompt(&self) -> PromptSpec {
        mk_prompt(
            "csrSpMVTranspose",
            "Compute y = A^T*x for a CSR matrix A and dense vector x (scatter the contribution of each nonzero).",
            "A=[[2,0],[4,3]], x=[1,1]",
            "[6.0, 3.0]",
            "row_ptr: &[usize], col_idx: &[u32], vals: &[f64], x: &[f64], y: &mut [f64]",
        )
    }

    fn default_size(&self) -> usize {
        1 << 16
    }

    fn generate(&self, seed: u64, size: usize) -> SparseInput {
        gen_input(1, seed, size)
    }

    fn input_bytes(&self, input: &SparseInput) -> usize {
        input_bytes(input)
    }

    fn serial(&self, input: &SparseInput) -> Output {
        Output::F64s(Self::serial_vec(input))
    }

    fn solve_shmem(&self, input: &SparseInput, pool: &Pool) -> Output {
        let m = &input.m;
        let y: Vec<AtomicF64> = (0..m.cols).map(|_| AtomicF64::new(0.0)).collect();
        pool.parallel_for(0..m.rows, Schedule::Dynamic { chunk: 64 }, |i| {
            for nz in m.row(i) {
                y[m.col_idx[nz] as usize].fetch_add(m.vals[nz] * input.x[i]);
            }
        });
        Output::F64s(y.iter().map(AtomicF64::load).collect())
    }

    fn solve_patterns(&self, input: &SparseInput, space: &ExecSpace) -> Output {
        let m = &input.m;
        let scatter: ScatterView<f64> = ScatterView::new(m.cols, space.concurrency());
        let teams = 4 * space.concurrency();
        space.parallel_for_teams(teams, |team| {
            let rg = block_range(m.rows, team.league_size(), team.league_rank());
            let mut acc = scatter.access();
            for i in rg {
                for nz in m.row(i) {
                    acc.add(m.col_idx[nz] as usize, m.vals[nz] * input.x[i]);
                }
            }
        });
        let mut y = vec![0.0; m.cols];
        scatter.contribute(&mut y);
        Output::F64s(y)
    }

    fn solve_mpi(&self, input: &SparseInput, comm: &Comm<'_>) -> Option<Output> {
        let local = scatter_csr(comm, &input.m);
        let rg = block_range(input.m.rows, comm.size(), comm.rank());
        let x_local =
            comm.scatter_blocks(0, (comm.rank() == 0).then_some(&input.x[..]), input.x.len());
        let mut y = vec![0.0; local.cols];
        for (j, i) in rg.clone().enumerate() {
            let _ = i;
            for nz in local.row(j) {
                y[local.col_idx[nz] as usize] += local.vals[nz] * x_local[j];
            }
        }
        comm.reduce(0, &y, ReduceOp::Sum).map(Output::F64s)
    }

    fn solve_hybrid(&self, input: &SparseInput, ctx: &HybridCtx<'_>) -> Option<Output> {
        let comm = ctx.comm();
        let m = &input.m;
        let rg = block_range(m.rows, comm.size(), comm.rank());
        let y: Vec<AtomicF64> = (0..m.cols).map(|_| AtomicF64::new(0.0)).collect();
        let lo = rg.start;
        ctx.par_for(0..rg.len(), |j| {
            let i = lo + j;
            for nz in m.row(i) {
                y[m.col_idx[nz] as usize].fetch_add(m.vals[nz] * input.x[i]);
            }
        });
        let dense: Vec<f64> = y.iter().map(AtomicF64::load).collect();
        comm.reduce(0, &dense, ReduceOp::Sum).map(Output::F64s)
    }

    fn solve_gpu(&self, input: &SparseInput, gpu: &Gpu) -> Output {
        let m = &input.m;
        let vals = GpuBuffer::from_slice(&m.vals);
        let cols = GpuBuffer::from_slice(&m.col_idx);
        let x = GpuBuffer::from_slice(&input.x);
        let y = GpuBuffer::<f64>::zeroed(m.cols);
        let row_ptr = m.row_ptr.clone();
        let rows = m.rows;
        gpu.launch_each(Launch::over(rows, 128), |t, ctx| {
            let i = t.global_id();
            if i < rows {
                let xi = ctx.read(&x, i);
                for nz in row_ptr[i]..row_ptr[i + 1] {
                    let c = ctx.read(&cols, nz) as usize;
                    ctx.atomic_add(&y, c, ctx.read(&vals, nz) * xi);
                }
            }
        });
        Output::F64s(y.to_vec())
    }
}

// ----------------------------------------------------------------------
// Variant 2: sparse axpy
// ----------------------------------------------------------------------

struct SparseAxpy;

impl SparseAxpy {
    fn serial_vec(input: &SparseInput) -> Vec<f64> {
        let mut out = vec![0.0; input.n];
        for (i, &ix) in input.sx.0.iter().enumerate() {
            out[ix as usize] += input.sx.1[i];
        }
        for (j, &iy) in input.sy.0.iter().enumerate() {
            out[iy as usize] += 2.0 * input.sy.1[j];
        }
        out
    }
}

impl Spec for SparseAxpy {
    type Input = SparseInput;

    fn id(&self) -> ProblemId {
        ProblemId::new(ProblemType::SparseLinearAlgebra, 2)
    }

    fn prompt(&self) -> PromptSpec {
        mk_prompt(
            "sparseAxpy",
            "Compute the dense vector out = x + 2*y where x and y are sparse vectors given as (indices, values) pairs with sorted unique indices.",
            "x=({0}, {1.0}), y=({0,2}, {3.0, 1.0}), n=3",
            "[7.0, 0.0, 2.0]",
            "xi: &[u32], xv: &[f64], yi: &[u32], yv: &[f64], out: &mut [f64]",
        )
    }

    fn default_size(&self) -> usize {
        1 << 16
    }

    fn generate(&self, seed: u64, size: usize) -> SparseInput {
        gen_input(2, seed, size)
    }

    fn input_bytes(&self, input: &SparseInput) -> usize {
        input_bytes(input)
    }

    fn serial(&self, input: &SparseInput) -> Output {
        Output::F64s(Self::serial_vec(input))
    }

    fn solve_shmem(&self, input: &SparseInput, pool: &Pool) -> Output {
        let out: Vec<AtomicF64> = (0..input.n).map(|_| AtomicF64::new(0.0)).collect();
        let nx = input.sx.0.len();
        pool.parallel_for(0..nx + input.sy.0.len(), Schedule::Static { chunk: 0 }, |k| {
            if k < nx {
                out[input.sx.0[k] as usize].fetch_add(input.sx.1[k]);
            } else {
                let j = k - nx;
                out[input.sy.0[j] as usize].fetch_add(2.0 * input.sy.1[j]);
            }
        });
        Output::F64s(out.iter().map(AtomicF64::load).collect())
    }

    fn solve_patterns(&self, input: &SparseInput, space: &ExecSpace) -> Output {
        let scatter: ScatterView<f64> = ScatterView::new(input.n, space.concurrency());
        let nx = input.sx.0.len();
        let total = nx + input.sy.0.len();
        let teams = 4 * space.concurrency();
        space.parallel_for_teams(teams, |team| {
            let rg = block_range(total, team.league_size(), team.league_rank());
            let mut acc = scatter.access();
            for k in rg {
                if k < nx {
                    acc.add(input.sx.0[k] as usize, input.sx.1[k]);
                } else {
                    let j = k - nx;
                    acc.add(input.sy.0[j] as usize, 2.0 * input.sy.1[j]);
                }
            }
        });
        let mut out = vec![0.0; input.n];
        scatter.contribute(&mut out);
        Output::F64s(out)
    }

    fn solve_mpi(&self, input: &SparseInput, comm: &Comm<'_>) -> Option<Output> {
        // Scatter both sparse vectors' entries; each rank builds a dense
        // partial; sum-reduce to the root.
        let xi = comm.scatter_blocks(
            0,
            (comm.rank() == 0).then_some(&input.sx.0[..]),
            input.sx.0.len(),
        );
        let xv = comm.scatter_blocks(
            0,
            (comm.rank() == 0).then_some(&input.sx.1[..]),
            input.sx.1.len(),
        );
        let yi = comm.scatter_blocks(
            0,
            (comm.rank() == 0).then_some(&input.sy.0[..]),
            input.sy.0.len(),
        );
        let yv = comm.scatter_blocks(
            0,
            (comm.rank() == 0).then_some(&input.sy.1[..]),
            input.sy.1.len(),
        );
        let n = comm.bcast_one(0, input.n as i64) as usize;
        let mut out = vec![0.0; n];
        for (k, &i) in xi.iter().enumerate() {
            out[i as usize] += xv[k];
        }
        for (k, &i) in yi.iter().enumerate() {
            out[i as usize] += 2.0 * yv[k];
        }
        comm.reduce(0, &out, ReduceOp::Sum).map(Output::F64s)
    }

    fn solve_hybrid(&self, input: &SparseInput, ctx: &HybridCtx<'_>) -> Option<Output> {
        let comm = ctx.comm();
        let out: Vec<AtomicF64> = (0..input.n).map(|_| AtomicF64::new(0.0)).collect();
        let nx = input.sx.0.len();
        let total = nx + input.sy.0.len();
        let rg = block_range(total, comm.size(), comm.rank());
        ctx.par_for(rg, |k| {
            if k < nx {
                out[input.sx.0[k] as usize].fetch_add(input.sx.1[k]);
            } else {
                let j = k - nx;
                out[input.sy.0[j] as usize].fetch_add(2.0 * input.sy.1[j]);
            }
        });
        let dense: Vec<f64> = out.iter().map(AtomicF64::load).collect();
        comm.reduce(0, &dense, ReduceOp::Sum).map(Output::F64s)
    }

    fn solve_gpu(&self, input: &SparseInput, gpu: &Gpu) -> Output {
        let xi = GpuBuffer::from_slice(&input.sx.0);
        let xv = GpuBuffer::from_slice(&input.sx.1);
        let yi = GpuBuffer::from_slice(&input.sy.0);
        let yv = GpuBuffer::from_slice(&input.sy.1);
        let out = GpuBuffer::<f64>::zeroed(input.n);
        let nx = input.sx.0.len();
        let total = nx + input.sy.0.len();
        gpu.launch_each(Launch::over(total, 256), |t, ctx| {
            let k = t.global_id();
            if k < nx {
                let i = ctx.read(&xi, k) as usize;
                ctx.atomic_add(&out, i, ctx.read(&xv, k));
            } else if k < total {
                let j = k - nx;
                let i = ctx.read(&yi, j) as usize;
                ctx.atomic_add(&out, i, 2.0 * ctx.read(&yv, j));
            }
        });
        Output::F64s(out.to_vec())
    }
}

// ----------------------------------------------------------------------
// Variant 3: CSR row norms
// ----------------------------------------------------------------------

struct RowNorms;

impl Spec for RowNorms {
    type Input = SparseInput;

    fn id(&self) -> ProblemId {
        ProblemId::new(ProblemType::SparseLinearAlgebra, 3)
    }

    fn prompt(&self) -> PromptSpec {
        mk_prompt(
            "csrRowNorms",
            "Compute the Euclidean norm of every row of a CSR matrix A.",
            "A=[[3,4],[0,1]]",
            "[5.0, 1.0]",
            "row_ptr: &[usize], vals: &[f64], norms: &mut [f64]",
        )
    }

    fn default_size(&self) -> usize {
        1 << 16
    }

    fn generate(&self, seed: u64, size: usize) -> SparseInput {
        gen_input(3, seed, size)
    }

    fn input_bytes(&self, input: &SparseInput) -> usize {
        input_bytes(input)
    }

    fn serial(&self, input: &SparseInput) -> Output {
        let m = &input.m;
        Output::F64s(
            (0..m.rows)
                .map(|i| m.row(i).map(|nz| m.vals[nz] * m.vals[nz]).sum::<f64>().sqrt())
                .collect(),
        )
    }

    fn solve_shmem(&self, input: &SparseInput, pool: &Pool) -> Output {
        let m = &input.m;
        let mut out = vec![0.0; m.rows];
        {
            let slice = pcg_shmem::UnsafeSlice::new(&mut out);
            pool.parallel_for(0..m.rows, Schedule::Dynamic { chunk: 64 }, |i| {
                let v = m.row(i).map(|nz| m.vals[nz] * m.vals[nz]).sum::<f64>().sqrt();
                unsafe { slice.write(i, v) };
            });
        }
        Output::F64s(out)
    }

    fn solve_patterns(&self, input: &SparseInput, space: &ExecSpace) -> Output {
        let m = &input.m;
        let out = pcg_patterns::View::<f64>::new("norms", m.rows);
        let out2 = out.clone();
        space.parallel_for_teams(m.rows, |team| {
            let i = team.league_rank();
            let nz = m.row(i);
            let base = nz.start;
            let ss = team.team_reduce(nz.len(), 0.0, |acc, lane| {
                acc + m.vals[base + lane] * m.vals[base + lane]
            });
            unsafe { out2.set(i, ss.sqrt()) };
        });
        Output::F64s(out.to_vec())
    }

    fn solve_mpi(&self, input: &SparseInput, comm: &Comm<'_>) -> Option<Output> {
        let local = scatter_csr(comm, &input.m);
        let norms: Vec<f64> = (0..local.rows)
            .map(|i| local.row(i).map(|nz| local.vals[nz] * local.vals[nz]).sum::<f64>().sqrt())
            .collect();
        comm.gather(0, &norms).map(Output::F64s)
    }

    fn solve_hybrid(&self, input: &SparseInput, ctx: &HybridCtx<'_>) -> Option<Output> {
        let comm = ctx.comm();
        let m = &input.m;
        let rg = block_range(m.rows, comm.size(), comm.rank());
        let mut out = vec![0.0; rg.len()];
        let lo = rg.start;
        {
            let slice = pcg_shmem::UnsafeSlice::new(&mut out);
            ctx.par_for(0..rg.len(), |j| {
                let i = lo + j;
                let v = m.row(i).map(|nz| m.vals[nz] * m.vals[nz]).sum::<f64>().sqrt();
                unsafe { slice.write(j, v) };
            });
        }
        comm.gather(0, &out).map(Output::F64s)
    }

    fn solve_gpu(&self, input: &SparseInput, gpu: &Gpu) -> Output {
        let m = &input.m;
        let vals = GpuBuffer::from_slice(&m.vals);
        let out = GpuBuffer::<f64>::zeroed(m.rows);
        let row_ptr = m.row_ptr.clone();
        gpu.launch_each(Launch::over(m.rows, 128), |t, ctx| {
            let i = t.global_id();
            if i < out.len() {
                let mut ss = 0.0;
                for nz in row_ptr[i]..row_ptr[i + 1] {
                    let v = ctx.read(&vals, nz);
                    ss += v * v;
                }
                ctx.write(&out, i, ss.sqrt());
            }
        });
        Output::F64s(out.to_vec())
    }
}

// ----------------------------------------------------------------------
// Variant 4: SpMM against a dense block
// ----------------------------------------------------------------------

struct SpMm;

impl SpMm {
    fn serial_vec(input: &SparseInput) -> Vec<f64> {
        let m = &input.m;
        let k = input.k;
        let mut y = vec![0.0; m.rows * k];
        for i in 0..m.rows {
            for nz in m.row(i) {
                let c = m.col_idx[nz] as usize;
                let v = m.vals[nz];
                for j in 0..k {
                    y[i * k + j] += v * input.bk[c * k + j];
                }
            }
        }
        y
    }
}

impl Spec for SpMm {
    type Input = SparseInput;

    fn id(&self) -> ProblemId {
        ProblemId::new(ProblemType::SparseLinearAlgebra, 4)
    }

    fn prompt(&self) -> PromptSpec {
        mk_prompt(
            "csrSpMM",
            "Compute Y = A*B for a CSR matrix A and a dense row-major matrix B with 8 columns.",
            "A=[[2,0],[0,3]], B rows=[1..8],[10..80]",
            "Y row 0 = 2*B row 0; Y row 1 = 3*B row 1",
            "row_ptr: &[usize], col_idx: &[u32], vals: &[f64], b: &[f64], y: &mut [f64]",
        )
    }

    fn default_size(&self) -> usize {
        1 << 15
    }

    fn generate(&self, seed: u64, size: usize) -> SparseInput {
        gen_input(4, seed, size)
    }

    fn input_bytes(&self, input: &SparseInput) -> usize {
        input_bytes(input)
    }

    fn serial(&self, input: &SparseInput) -> Output {
        Output::F64s(Self::serial_vec(input))
    }

    fn solve_shmem(&self, input: &SparseInput, pool: &Pool) -> Output {
        let m = &input.m;
        let k = input.k;
        let mut y = vec![0.0; m.rows * k];
        {
            let slice = pcg_shmem::UnsafeSlice::new(&mut y);
            pool.parallel_for(0..m.rows, Schedule::Dynamic { chunk: 32 }, |i| {
                let mut row = vec![0.0; k];
                for nz in m.row(i) {
                    let c = m.col_idx[nz] as usize;
                    let v = m.vals[nz];
                    for (j, slot) in row.iter_mut().enumerate() {
                        *slot += v * input.bk[c * k + j];
                    }
                }
                for (j, v) in row.into_iter().enumerate() {
                    unsafe { slice.write(i * k + j, v) };
                }
            });
        }
        Output::F64s(y)
    }

    fn solve_patterns(&self, input: &SparseInput, space: &ExecSpace) -> Output {
        let m = &input.m;
        let k = input.k;
        let y = pcg_patterns::View::<f64>::new("y", m.rows * k);
        let y2 = y.clone();
        space.parallel_for_2d(m.rows, k, |i, j| {
            let mut acc = 0.0;
            for nz in m.row(i) {
                acc += m.vals[nz] * input.bk[m.col_idx[nz] as usize * k + j];
            }
            unsafe { y2.set(i * k + j, acc) };
        });
        Output::F64s(y.to_vec())
    }

    fn solve_mpi(&self, input: &SparseInput, comm: &Comm<'_>) -> Option<Output> {
        let local = scatter_csr(comm, &input.m);
        let mut b = if comm.rank() == 0 { input.bk.clone() } else { Vec::new() };
        comm.bcast(0, &mut b);
        let k = comm.bcast_one(0, input.k as i64) as usize;
        let mut y = vec![0.0; local.rows * k];
        for i in 0..local.rows {
            for nz in local.row(i) {
                let c = local.col_idx[nz] as usize;
                let v = local.vals[nz];
                for j in 0..k {
                    y[i * k + j] += v * b[c * k + j];
                }
            }
        }
        comm.gather(0, &y).map(Output::F64s)
    }

    fn solve_hybrid(&self, input: &SparseInput, ctx: &HybridCtx<'_>) -> Option<Output> {
        let comm = ctx.comm();
        let m = &input.m;
        let k = input.k;
        let rg = block_range(m.rows, comm.size(), comm.rank());
        let mut y = vec![0.0; rg.len() * k];
        let lo = rg.start;
        {
            let slice = pcg_shmem::UnsafeSlice::new(&mut y);
            ctx.par_for(0..rg.len(), |r_local| {
                let i = lo + r_local;
                let mut row = vec![0.0; k];
                for nz in m.row(i) {
                    let c = m.col_idx[nz] as usize;
                    let v = m.vals[nz];
                    for (j, slot) in row.iter_mut().enumerate() {
                        *slot += v * input.bk[c * k + j];
                    }
                }
                for (j, v) in row.into_iter().enumerate() {
                    unsafe { slice.write(r_local * k + j, v) };
                }
            });
        }
        comm.gather(0, &y).map(Output::F64s)
    }

    fn solve_gpu(&self, input: &SparseInput, gpu: &Gpu) -> Output {
        let m = &input.m;
        let k = input.k;
        let vals = GpuBuffer::from_slice(&m.vals);
        let cols = GpuBuffer::from_slice(&m.col_idx);
        let b = GpuBuffer::from_slice(&input.bk);
        let y = GpuBuffer::<f64>::zeroed(m.rows * k);
        let row_ptr = m.row_ptr.clone();
        let total = m.rows * k;
        gpu.launch_each(Launch::over(total, 128), |t, ctx| {
            let idx = t.global_id();
            if idx < total {
                let (i, j) = (idx / k, idx % k);
                let mut acc = 0.0;
                for nz in row_ptr[i]..row_ptr[i + 1] {
                    let c = ctx.read(&cols, nz) as usize;
                    acc += ctx.read(&vals, nz) * ctx.read(&b, c * k + j);
                }
                ctx.write(&y, idx, acc);
            }
        });
        Output::F64s(y.to_vec())
    }
}

/// The five sparse linear algebra problems.
pub fn problems() -> Vec<Box<dyn Problem>> {
    vec![
        Box::new(SpMv),
        Box::new(SpMvT),
        Box::new(SparseAxpy),
        Box::new(RowNorms),
        Box::new(SpMm),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::tests_support::check_problem_all_models;

    #[test]
    fn sparse_problems_agree_across_models() {
        for p in problems() {
            check_problem_all_models(&*p, 808, 600);
        }
    }

    #[test]
    fn spmv_transpose_agrees_with_dense_transpose() {
        let input = gen_input(1, 7, 128);
        let y = SpMvT::serial_vec(&input);
        // Check one random column against a direct computation.
        let m = &input.m;
        let col = m.col_idx[0] as usize;
        let mut want = 0.0;
        for i in 0..m.rows {
            for nz in m.row(i) {
                if m.col_idx[nz] as usize == col {
                    want += m.vals[nz] * input.x[i];
                }
            }
        }
        assert!((y[col] - want).abs() < 1e-9);
    }
}
