//! Transform problems: map a fixed elementwise function over an array
//! (Table 1 "Transform"). Five variants differing in the mapped
//! function, mirroring the paper's "slight variations of the usual
//! problem" rule.

use crate::framework::{Problem, Spec};
use crate::util;
use pcg_core::prompt::PromptSpec;
use pcg_core::{Output, ProblemId, ProblemType};
use pcg_gpusim::{Gpu, GpuBuffer, Launch};
use pcg_hybrid::HybridCtx;
use pcg_mpisim::{block_range, Comm};
use pcg_patterns::{ExecSpace, View};
use pcg_shmem::Pool;

/// A transform problem: `out[i] = f(x[i])`.
struct MapProblem {
    variant: usize,
    fn_name: &'static str,
    description: &'static str,
    example_in: &'static str,
    example_out: &'static str,
    f: fn(f64) -> f64,
}

impl Spec for MapProblem {
    type Input = Vec<f64>;

    fn id(&self) -> ProblemId {
        ProblemId::new(ProblemType::Transform, self.variant)
    }

    fn prompt(&self) -> PromptSpec {
        PromptSpec {
            fn_name: self.fn_name.into(),
            description: self.description.into(),
            examples: vec![(self.example_in.into(), self.example_out.into())],
            signature: "x: &[f64], out: &mut [f64]".into(),
        }
    }

    fn default_size(&self) -> usize {
        1 << 16
    }

    fn generate(&self, seed: u64, size: usize) -> Vec<f64> {
        let mut r = util::rng(seed, Spec::id(self).index() as u64);
        util::rand_f64s(&mut r, size, -10.0, 10.0)
    }

    fn input_bytes(&self, input: &Vec<f64>) -> usize {
        input.len() * 8
    }

    fn serial(&self, input: &Vec<f64>) -> Output {
        Output::F64s(input.iter().map(|&x| (self.f)(x)).collect())
    }

    fn solve_shmem(&self, input: &Vec<f64>, pool: &Pool) -> Output {
        let mut out = vec![0.0f64; input.len()];
        pool.parallel_chunks_mut(&mut out, |_tid, start, chunk| {
            for (k, o) in chunk.iter_mut().enumerate() {
                *o = (self.f)(input[start + k]);
            }
        });
        Output::F64s(out)
    }

    fn solve_patterns(&self, input: &Vec<f64>, space: &ExecSpace) -> Output {
        let x = View::from_slice("x", input);
        let out: View<f64> = View::new("out", input.len());
        let out2 = out.clone();
        space.parallel_for(input.len(), |i| unsafe { out2.set(i, (self.f)(x.get(i))) });
        Output::F64s(out.to_vec())
    }

    fn solve_mpi(&self, input: &Vec<f64>, comm: &Comm<'_>) -> Option<Output> {
        let local = comm.scatter_blocks(
            0,
            (comm.rank() == 0).then_some(input.as_slice()),
            input.len(),
        );
        let mapped: Vec<f64> = local.iter().map(|&x| (self.f)(x)).collect();
        comm.gather(0, &mapped).map(Output::F64s)
    }

    fn solve_hybrid(&self, input: &Vec<f64>, ctx: &HybridCtx<'_>) -> Option<Output> {
        let comm = ctx.comm();
        let range = block_range(input.len(), comm.size(), comm.rank());
        let mut local = vec![0.0f64; range.len()];
        let lo = range.start;
        let f = self.f;
        ctx.par_chunks_mut(&mut local, |_tid, start, chunk| {
            for (k, o) in chunk.iter_mut().enumerate() {
                *o = f(input[lo + start + k]);
            }
        });
        comm.gather(0, &local).map(Output::F64s)
    }

    fn solve_gpu(&self, input: &Vec<f64>, gpu: &Gpu) -> Output {
        let x = GpuBuffer::from_slice(input);
        let out = GpuBuffer::<f64>::zeroed(input.len());
        let f = self.f;
        gpu.launch_each(Launch::over(input.len(), 256), |t, ctx| {
            let i = t.global_id();
            if i < x.len() {
                ctx.write(&out, i, f(ctx.read(&x, i)));
            }
        });
        Output::F64s(out.to_vec())
    }
}

/// The five transform problems.
pub fn problems() -> Vec<Box<dyn Problem>> {
    vec![
        Box::new(MapProblem {
            variant: 0,
            fn_name: "reluMap",
            description: "Replace every element of the array x with max(x, 0) and store the result in out.",
            example_in: "[-1.5, 2.0, -0.25, 4.0]",
            example_out: "[0.0, 2.0, 0.0, 4.0]",
            f: |x| x.max(0.0),
        }),
        Box::new(MapProblem {
            variant: 1,
            fn_name: "standardizeFixed",
            description: "Standardize every element of the array x as (x - 2.5) / 1.5 and store the result in out.",
            example_in: "[2.5, 4.0, 1.0]",
            example_out: "[0.0, 1.0, -1.0]",
            f: |x| (x - 2.5) / 1.5,
        }),
        Box::new(MapProblem {
            variant: 2,
            fn_name: "scaleShift",
            description: "Compute 3*x + 1 for every element of the array x and store the result in out.",
            example_in: "[0.0, 1.0, -2.0]",
            example_out: "[1.0, 4.0, -5.0]",
            f: |x| 3.0 * x + 1.0,
        }),
        Box::new(MapProblem {
            variant: 3,
            fn_name: "clipAndHalve",
            description: "Clip every element of the array x to the range [-5, 5], divide it by 2, and store the result in out.",
            example_in: "[12.0, -8.0, 3.0]",
            example_out: "[2.5, -2.5, 1.5]",
            f: |x| x.clamp(-5.0, 5.0) / 2.0,
        }),
        Box::new(MapProblem {
            variant: 4,
            fn_name: "evalQuadratic",
            description: "Evaluate the polynomial 2*x^2 - 3*x + 1 at every element of the array x and store the result in out.",
            example_in: "[0.0, 1.0, 2.0]",
            example_out: "[1.0, 0.0, 3.0]",
            f: |x| 2.0 * x * x - 3.0 * x + 1.0,
        }),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::tests_support::check_problem_all_models;

    #[test]
    fn transform_problems_agree_across_models() {
        for p in problems() {
            check_problem_all_models(&*p, 777, 512);
        }
    }
}
