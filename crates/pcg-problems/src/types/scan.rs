//! Scan problems: prefix operations over an array (Table 1 "Scan").
//!
//! All five variants are inclusive scans of pair-valued elements
//! `(f64, f64)` under an associative operator, plus a per-index
//! post-processing step, over a possibly reversed index order:
//!
//! * reverse prefix sum (suffix sums) — the paper's own example twist,
//! * partial minimums — the paper's Listing 1,
//! * running product, segmented sum (the pair carries the segment
//!   flag), and running mean (post-divide).
//!
//! Each substrate uses its canonical scan algorithm: the Kokkos-analog
//! two-pass `parallel_scan`, a hand-rolled two-pass block scan for the
//! OpenMP analog, Hillis–Steele over ranks with a generic operator for
//! MPI, and a ping-pong shared-memory block scan (phase machine) plus
//! offset-apply kernel on the GPU.

use crate::framework::{Problem, Spec};
use crate::util;
use parking_lot::Mutex;
use pcg_core::prompt::PromptSpec;
use pcg_core::{Output, ProblemId, ProblemType};
use pcg_gpusim::{BlockCtx, BlockKernel, Gpu, GpuBuffer, Launch};
use pcg_hybrid::HybridCtx;
use pcg_mpisim::{block_range, Comm};
use pcg_patterns::ExecSpace;
use pcg_shmem::{Pool, Schedule};

type Pair = (f64, f64);

struct ScanProblem {
    variant: usize,
    fn_name: &'static str,
    description: &'static str,
    example_in: &'static str,
    example_out: &'static str,
    identity: Pair,
    op: fn(Pair, Pair) -> Pair,
    /// Element `i`'s contribution (reads the value and, for segmented
    /// scans, the flag).
    load: fn(&ScanInput, usize) -> Pair,
    /// Map the inclusive prefix at logical position `i` to the output.
    post: fn(Pair, usize) -> f64,
    /// Scan right-to-left instead of left-to-right.
    reversed: bool,
    /// Whether the generator should produce segment flags.
    segmented: bool,
    /// Value range for the generator.
    gen_range: (f64, f64),
}

/// Scan input: values plus (for the segmented variant) segment-start
/// flags encoded as 0.0/1.0.
pub struct ScanInput {
    x: Vec<f64>,
    flags: Vec<f64>,
}

impl ScanProblem {
    fn logical(&self, i: usize, n: usize) -> usize {
        if self.reversed {
            n - 1 - i
        } else {
            i
        }
    }

    /// Serial inclusive scan in logical order; returns the output array
    /// in *original* index order.
    fn scan_serial(&self, input: &ScanInput) -> Vec<f64> {
        let n = input.x.len();
        let mut out = vec![0.0; n];
        let mut acc = self.identity;
        for k in 0..n {
            let i = self.logical(k, n);
            acc = (self.op)(acc, (self.load)(input, i));
            out[i] = (self.post)(acc, k);
        }
        out
    }
}

impl Spec for ScanProblem {
    type Input = ScanInput;

    fn id(&self) -> ProblemId {
        ProblemId::new(ProblemType::Scan, self.variant)
    }

    fn prompt(&self) -> PromptSpec {
        PromptSpec {
            fn_name: self.fn_name.into(),
            description: self.description.into(),
            examples: vec![(self.example_in.into(), self.example_out.into())],
            signature: "x: &[f64], out: &mut [f64]".into(),
        }
    }

    fn default_size(&self) -> usize {
        1 << 16
    }

    fn generate(&self, seed: u64, size: usize) -> ScanInput {
        let mut r = util::rng(seed, Spec::id(self).index() as u64);
        let x = util::rand_f64s(&mut r, size, self.gen_range.0, self.gen_range.1);
        let flags = if self.segmented {
            use rand::Rng;
            (0..size).map(|i| f64::from(i == 0 || r.gen_bool(0.05))).collect()
        } else {
            vec![]
        };
        ScanInput { x, flags }
    }

    fn input_bytes(&self, input: &ScanInput) -> usize {
        (input.x.len() + input.flags.len()) * 8
    }

    fn serial(&self, input: &ScanInput) -> Output {
        Output::F64s(self.scan_serial(input))
    }

    fn solve_shmem(&self, input: &ScanInput, pool: &Pool) -> Output {
        // Hand-rolled two-pass block scan, the idiomatic manual OpenMP
        // scan: per-thread block totals, serial exclusive combine, then
        // a second pass emitting prefixed results.
        let n = input.x.len();
        let nb = pool.num_threads();
        let totals: Mutex<Vec<Pair>> = Mutex::new(vec![self.identity; nb]);
        pool.parallel_for(0..nb, Schedule::Static { chunk: 1 }, |b| {
            let rg = block_range(n, nb, b);
            let mut acc = self.identity;
            for k in rg {
                acc = (self.op)(acc, (self.load)(input, self.logical(k, n)));
            }
            totals.lock()[b] = acc;
        });
        let totals = totals.into_inner();
        let mut offsets = Vec::with_capacity(nb);
        let mut run = self.identity;
        for t in &totals {
            offsets.push(run);
            run = (self.op)(run, *t);
        }
        let mut out = vec![0.0; n];
        {
            let slice = pcg_shmem::UnsafeSlice::new(&mut out);
            pool.parallel_for(0..nb, Schedule::Static { chunk: 1 }, |b| {
                let rg = block_range(n, nb, b);
                let mut acc = offsets[b];
                for k in rg {
                    let i = self.logical(k, n);
                    acc = (self.op)(acc, (self.load)(input, i));
                    unsafe { slice.write(i, (self.post)(acc, k)) };
                }
            });
        }
        Output::F64s(out)
    }

    fn solve_patterns(&self, input: &ScanInput, space: &ExecSpace) -> Output {
        let n = input.x.len();
        let out = pcg_patterns::View::<f64>::new("out", n);
        let out2 = out.clone();
        space.parallel_scan(
            n,
            self.identity,
            |k| (self.load)(input, self.logical(k, n)),
            |a, b| (self.op)(a, b),
            |k, acc| {
                let i = self.logical(k, n);
                unsafe { out2.set(i, (self.post)(acc, k)) };
            },
        );
        Output::F64s(out.to_vec())
    }

    fn solve_mpi(&self, input: &ScanInput, comm: &Comm<'_>) -> Option<Output> {
        // Distribute logical-order blocks; local scan; generic-operator
        // exclusive scan of block totals over ranks; local emit; gather.
        let n = input.x.len();
        // Build the logical pair stream on the root and scatter it.
        let pairs_flat: Option<Vec<f64>> = (comm.rank() == 0).then(|| {
            (0..n)
                .flat_map(|k| {
                    let p = (self.load)(input, self.logical(k, n));
                    [p.0, p.1]
                })
                .collect()
        });
        let rg = block_range(n, comm.size(), comm.rank());
        let chunks: Option<Vec<Vec<f64>>> = pairs_flat.as_ref().map(|flat| {
            (0..comm.size())
                .map(|r| {
                    let rr = block_range(n, comm.size(), r);
                    flat[rr.start * 2..rr.end * 2].to_vec()
                })
                .collect()
        });
        let local_flat = comm.scatter(0, chunks);
        let local: Vec<Pair> =
            local_flat.chunks_exact(2).map(|c| (c[0], c[1])).collect();
        // Local inclusive scan + total.
        let mut acc = self.identity;
        let mut local_incl = Vec::with_capacity(local.len());
        for &p in &local {
            acc = (self.op)(acc, p);
            local_incl.push(acc);
        }
        let total = acc;
        // Exclusive scan of totals over ranks: Hillis-Steele inclusive
        // with a generic operator, then shift by one rank.
        let mut incl_rank = total;
        let mut d = 1usize;
        let mut round = 0u32;
        while d < comm.size() {
            let tag = 900 + round;
            if comm.rank() + d < comm.size() {
                comm.send(comm.rank() + d, tag, &[incl_rank.0, incl_rank.1]);
            }
            if comm.rank() >= d {
                let got = comm.recv::<f64>(Some(comm.rank() - d), tag);
                incl_rank = (self.op)((got[0], got[1]), incl_rank);
            }
            d <<= 1;
            round += 1;
        }
        let offset = if comm.rank() + 1 < comm.size() {
            comm.send(comm.rank() + 1, 990, &[incl_rank.0, incl_rank.1]);
            if comm.rank() == 0 {
                self.identity
            } else {
                let got = comm.recv::<f64>(Some(comm.rank() - 1), 990);
                (got[0], got[1])
            }
        } else if comm.rank() == 0 {
            self.identity
        } else {
            let got = comm.recv::<f64>(Some(comm.rank() - 1), 990);
            (got[0], got[1])
        };
        // Emit local outputs in logical positions, then gather and
        // un-permute on the root.
        let local_out: Vec<f64> = local_incl
            .iter()
            .enumerate()
            .map(|(j, &p)| (self.post)((self.op)(offset, p), rg.start + j))
            .collect();
        comm.gather(0, &local_out).map(|logical_out| {
            let mut out = vec![0.0; n];
            for (k, v) in logical_out.into_iter().enumerate() {
                out[self.logical(k, n)] = v;
            }
            Output::F64s(out)
        })
    }

    fn solve_hybrid(&self, input: &ScanInput, ctx: &HybridCtx<'_>) -> Option<Output> {
        // Rank-level structure mirrors the MPI path; the local scan is
        // a threaded two-pass over thread blocks.
        let comm = ctx.comm();
        let n = input.x.len();
        let rg = block_range(n, comm.size(), comm.rank());
        let nb = ctx.threads_per_rank();
        let block_totals: Mutex<Vec<Pair>> = Mutex::new(vec![self.identity; nb]);
        ctx.par_for(0..nb, |b| {
            let sub = block_range(rg.len(), nb, b);
            let mut acc = self.identity;
            for j in sub {
                acc = (self.op)(acc, (self.load)(input, self.logical(rg.start + j, n)));
            }
            block_totals.lock()[b] = acc;
        });
        let totals = block_totals.into_inner();
        let mut offsets = Vec::with_capacity(nb);
        let mut run = self.identity;
        for t in &totals {
            offsets.push(run);
            run = (self.op)(run, *t);
        }
        let rank_total = run;
        // Exclusive rank offset via the same Hillis-Steele exchange.
        let mut incl_rank = rank_total;
        let mut d = 1usize;
        let mut round = 0u32;
        while d < comm.size() {
            let tag = 900 + round;
            if comm.rank() + d < comm.size() {
                comm.send(comm.rank() + d, tag, &[incl_rank.0, incl_rank.1]);
            }
            if comm.rank() >= d {
                let got = comm.recv::<f64>(Some(comm.rank() - d), tag);
                incl_rank = (self.op)((got[0], got[1]), incl_rank);
            }
            d <<= 1;
            round += 1;
        }
        if comm.rank() + 1 < comm.size() {
            comm.send(comm.rank() + 1, 990, &[incl_rank.0, incl_rank.1]);
        }
        let rank_offset = if comm.rank() == 0 {
            self.identity
        } else {
            let got = comm.recv::<f64>(Some(comm.rank() - 1), 990);
            (got[0], got[1])
        };
        let mut local_out = vec![0.0; rg.len()];
        {
            let slice = pcg_shmem::UnsafeSlice::new(&mut local_out);
            let offsets_ref = &offsets;
            ctx.par_for(0..nb, |b| {
                let sub = block_range(rg.len(), nb, b);
                let mut acc = (self.op)(rank_offset, offsets_ref[b]);
                for j in sub {
                    let k = rg.start + j;
                    acc = (self.op)(acc, (self.load)(input, self.logical(k, n)));
                    unsafe { slice.write(j, (self.post)(acc, k)) };
                }
            });
        }
        comm.gather(0, &local_out).map(|logical_out| {
            let mut out = vec![0.0; n];
            for (k, v) in logical_out.into_iter().enumerate() {
                out[self.logical(k, n)] = v;
            }
            Output::F64s(out)
        })
    }

    fn solve_gpu(&self, input: &ScanInput, gpu: &Gpu) -> Output {
        let n = input.x.len();
        const BLOCK: u32 = 128;
        // Host prepares the logical pair stream (device-side loads then
        // stream it back through metered reads).
        let mut la = Vec::with_capacity(n);
        let mut lb = Vec::with_capacity(n);
        for k in 0..n {
            let p = (self.load)(input, self.logical(k, n));
            la.push(p.0);
            lb.push(p.1);
        }
        let a = GpuBuffer::from_slice(&la);
        let b = GpuBuffer::from_slice(&lb);
        let out_a = GpuBuffer::<f64>::zeroed(n);
        let out_b = GpuBuffer::<f64>::zeroed(n);
        let cfg = Launch::over(n, BLOCK).with_shared(4 * BLOCK as usize);
        let grid = cfg.grid() as usize;
        let tot_a = GpuBuffer::<f64>::zeroed(grid);
        let tot_b = GpuBuffer::<f64>::zeroed(grid);

        struct BlockScan {
            a: GpuBuffer<f64>,
            b: GpuBuffer<f64>,
            out_a: GpuBuffer<f64>,
            out_b: GpuBuffer<f64>,
            tot_a: GpuBuffer<f64>,
            tot_b: GpuBuffer<f64>,
            n: usize,
            identity: Pair,
            op: fn(Pair, Pair) -> Pair,
            steps: usize,
        }
        impl BlockScan {
            fn bank(shared: &pcg_gpusim::SharedMem, bank: usize, tid: usize, bd: usize) -> Pair {
                (shared.get(bank * 2 * bd + 2 * tid), shared.get(bank * 2 * bd + 2 * tid + 1))
            }
            fn set_bank(
                shared: &pcg_gpusim::SharedMem,
                bank: usize,
                tid: usize,
                bd: usize,
                v: Pair,
            ) {
                shared.set(bank * 2 * bd + 2 * tid, v.0);
                shared.set(bank * 2 * bd + 2 * tid + 1, v.1);
            }
        }
        impl BlockKernel for BlockScan {
            fn phases(&self, _cfg: &Launch) -> usize {
                1 + self.steps + 1
            }
            fn phase(&self, phase: usize, blk: &BlockCtx) {
                let bd = blk.block_dim() as usize;
                let shared = blk.shared();
                if phase == 0 {
                    // Load into bank 0 (identity beyond the array end).
                    blk.for_each_thread(|t| {
                        let i = t.global_id();
                        let v = if i < self.n {
                            (blk.read(&self.a, i), blk.read(&self.b, i))
                        } else {
                            self.identity
                        };
                        BlockScan::set_bank(shared, 0, t.thread_idx as usize, bd, v);
                    });
                } else if phase <= self.steps {
                    // Hillis-Steele step with ping-pong banks.
                    let d = 1usize << (phase - 1);
                    let src = (phase - 1) % 2;
                    let dst = phase % 2;
                    blk.for_each_thread(|t| {
                        let tid = t.thread_idx as usize;
                        let cur = BlockScan::bank(shared, src, tid, bd);
                        let v = if tid >= d {
                            (self.op)(BlockScan::bank(shared, src, tid - d, bd), cur)
                        } else {
                            cur
                        };
                        BlockScan::set_bank(shared, dst, tid, bd, v);
                    });
                } else {
                    // Write inclusive prefixes and the block total.
                    let bank = self.steps % 2;
                    blk.for_each_thread(|t| {
                        let tid = t.thread_idx as usize;
                        let i = t.global_id();
                        let v = BlockScan::bank(shared, bank, tid, bd);
                        if i < self.n {
                            blk.write(&self.out_a, i, v.0);
                            blk.write(&self.out_b, i, v.1);
                        }
                        if tid == bd - 1 {
                            blk.write(&self.tot_a, t.block_idx as usize, v.0);
                            blk.write(&self.tot_b, t.block_idx as usize, v.1);
                        }
                    });
                }
            }
        }

        let kernel = BlockScan {
            a,
            b,
            out_a: out_a.clone(),
            out_b: out_b.clone(),
            tot_a: tot_a.clone(),
            tot_b: tot_b.clone(),
            n,
            identity: self.identity,
            op: self.op,
            steps: BLOCK.trailing_zeros() as usize,
        };
        gpu.launch(cfg, &kernel);

        // Host-side exclusive combine of the (small) block totals — the
        // standard "scan-then-propagate" step.
        let ta = tot_a.to_vec();
        let tb = tot_b.to_vec();
        let mut offsets = Vec::with_capacity(grid);
        let mut run = self.identity;
        for i in 0..grid {
            offsets.push(run);
            run = (self.op)(run, (ta[i], tb[i]));
        }
        let off_a = GpuBuffer::from_slice(&offsets.iter().map(|p| p.0).collect::<Vec<_>>());
        let off_b = GpuBuffer::from_slice(&offsets.iter().map(|p| p.1).collect::<Vec<_>>());

        // Offset-apply kernel.
        let op = self.op;
        gpu.launch_each(Launch::over(n, BLOCK), |t, ctx| {
            let i = t.global_id();
            if i < n {
                let blk = (i / BLOCK as usize).min(off_a.len() - 1);
                let off = (ctx.read(&off_a, blk), ctx.read(&off_b, blk));
                let v = (ctx.read(&out_a, i), ctx.read(&out_b, i));
                let combined = op(off, v);
                ctx.write(&out_a, i, combined.0);
                ctx.write(&out_b, i, combined.1);
            }
        });

        // Post-process back to original index order.
        let fa = out_a.to_vec();
        let fb = out_b.to_vec();
        let mut out = vec![0.0; n];
        for k in 0..n {
            out[self.logical(k, n)] = (self.post)((fa[k], fb[k]), k);
        }
        Output::F64s(out)
    }
}

/// The five scan problems.
pub fn problems() -> Vec<Box<dyn Problem>> {
    vec![
        Box::new(ScanProblem {
            variant: 0,
            fn_name: "reversePrefixSum",
            description: "Replace out[i] with the sum of x[i..], i.e. the reverse (suffix) prefix sum of x.",
            example_in: "[1.0, 2.0, 3.0]",
            example_out: "[6.0, 5.0, 3.0]",
            identity: (0.0, 0.0),
            op: |a, b| (a.0 + b.0, 0.0),
            load: |inp, i| (inp.x[i], 0.0),
            post: |p, _| p.0,
            reversed: true,
            segmented: false,
            gen_range: (-1.0, 1.0),
        }),
        Box::new(ScanProblem {
            variant: 1,
            fn_name: "partialMinimums",
            description: "Replace the i-th element of the array x with the minimum value from indices 0 through i.",
            example_in: "[8.0, 6.0, -1.0, 7.0, 3.0]",
            example_out: "[8.0, 6.0, -1.0, -1.0, -1.0]",
            identity: (f64::INFINITY, 0.0),
            op: |a, b| (a.0.min(b.0), 0.0),
            load: |inp, i| (inp.x[i], 0.0),
            post: |p, _| p.0,
            reversed: false,
            segmented: false,
            gen_range: (-100.0, 100.0),
        }),
        Box::new(ScanProblem {
            variant: 2,
            fn_name: "runningProduct",
            description: "Compute the inclusive running product of the array x: out[i] = x[0] * x[1] * ... * x[i].",
            example_in: "[1.0, 2.0, 0.5]",
            example_out: "[1.0, 2.0, 1.0]",
            identity: (1.0, 0.0),
            op: |a, b| (a.0 * b.0, 0.0),
            load: |inp, i| (inp.x[i], 0.0),
            post: |p, _| p.0,
            reversed: false,
            segmented: false,
            // Values near 1 keep long products in range.
            gen_range: (0.95, 1.05),
        }),
        Box::new(ScanProblem {
            variant: 3,
            fn_name: "segmentedPrefixSum",
            description: "Compute the prefix sum of x restarting at every index whose flag is 1 (flags[0] is always 1): out[i] is the sum of x over the current segment up to i.",
            example_in: "x=[1,2,3,4], flags=[1,0,1,0]",
            example_out: "[1.0, 3.0, 3.0, 7.0]",
            identity: (0.0, 0.0),
            // Standard segmented-sum operator: a flagged right operand
            // resets the running value; flags OR together.
            op: |a, b| {
                if b.1 != 0.0 {
                    (b.0, 1.0)
                } else {
                    (a.0 + b.0, a.1)
                }
            },
            load: |inp, i| (inp.x[i], inp.flags[i]),
            post: |p, _| p.0,
            reversed: false,
            segmented: true,
            gen_range: (-1.0, 1.0),
        }),
        Box::new(ScanProblem {
            variant: 4,
            fn_name: "runningMean",
            description: "Compute the running mean of the array x: out[i] = mean(x[0..=i]).",
            example_in: "[2.0, 4.0, 9.0]",
            example_out: "[2.0, 3.0, 5.0]",
            identity: (0.0, 0.0),
            op: |a, b| (a.0 + b.0, 0.0),
            load: |inp, i| (inp.x[i], 0.0),
            post: |p, k| p.0 / (k + 1) as f64,
            reversed: false,
            segmented: false,
            gen_range: (-5.0, 5.0),
        }),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::tests_support::check_problem_all_models;

    #[test]
    fn scan_problems_agree_across_models() {
        for p in problems() {
            check_problem_all_models(&*p, 4242, 777);
        }
    }

    #[test]
    fn segmented_operator_is_associative() {
        let op = |a: Pair, b: Pair| {
            if b.1 != 0.0 {
                (b.0, 1.0)
            } else {
                (a.0 + b.0, a.1)
            }
        };
        let vals = [(1.0, 0.0), (2.0, 1.0), (3.0, 0.0), (4.0, 1.0), (5.0, 0.0)];
        for &a in &vals {
            for &b in &vals {
                for &c in &vals {
                    let left = op(op(a, b), c);
                    let right = op(a, op(b, c));
                    assert_eq!(left.0, right.0, "{a:?} {b:?} {c:?}");
                }
            }
        }
    }

    #[test]
    fn suffix_sum_known_case() {
        let p = &problems()[0];
        let base = p.run_baseline(1, 8);
        if let Output::F64s(v) = &base.output {
            // Suffix sums are non-increasing in magnitude toward the
            // last element equal to x[n-1]; check shape invariant:
            assert_eq!(v.len(), 8);
        }
    }
}
