//! Fourier transform problems (Table 1 "Fourier Transform"): forward
//! and inverse transforms over batches of rows, an averaged power
//! spectrum, a full 2-D FFT (with an all-to-all distributed transpose
//! on the MPI path), and a direct sparse DFT.
//!
//! The batch formulation parallelizes over independent transforms —
//! rows, columns, or output frequencies — with the radix-2 kernel from
//! `crate::util::fft_inplace` as the per-row workhorse.

use crate::framework::{Problem, Spec};
use crate::util::{self, fft_inplace};
use pcg_core::prompt::PromptSpec;
use pcg_core::{Output, ProblemId, ProblemType};
use pcg_gpusim::{Gpu, GpuBuffer, Launch};
use pcg_hybrid::HybridCtx;
use pcg_mpisim::{block_range, Comm, ReduceOp};
use pcg_patterns::{ExecSpace, View};
use pcg_shmem::{Pool, Schedule, UnsafeSlice};

/// Batched complex input: `rows` rows of length `n` (both powers of two
/// where a column pass needs them).
pub struct FftInput {
    rows: usize,
    n: usize,
    re: Vec<f64>,
    im: Vec<f64>,
    /// Sparse signal (positions, values) for the direct-DFT variant.
    sparse: (Vec<u32>, Vec<f64>),
}

fn prev_power_of_two(x: usize) -> usize {
    ((x + 1).next_power_of_two()) / 2
}

fn gen_input(variant: usize, seed: u64, size: usize) -> FftInput {
    let mut r = util::rng(seed, 1100 + variant as u64);
    let n = 256usize.min(prev_power_of_two(size.max(8)));
    let rows = prev_power_of_two((size / n).max(2));
    let re = util::rand_f64s(&mut r, rows * n, -1.0, 1.0);
    let im = util::rand_f64s(&mut r, rows * n, -1.0, 1.0);
    use rand::Rng;
    let k = 16usize;
    let mut pos: Vec<u32> = (0..k).map(|_| r.gen_range(0..(rows * n) as u32)).collect();
    pos.sort_unstable();
    pos.dedup();
    let vals = util::rand_f64s(&mut r, pos.len(), -1.0, 1.0);
    FftInput { rows, n, re, im, sparse: (pos, vals) }
}

fn input_bytes(i: &FftInput) -> usize {
    (i.re.len() + i.im.len()) * 8
}

/// Per-row flop charge for an n-point FFT.
fn fft_flops(n: usize) -> u64 {
    (5 * n as u64) * (n as f64).log2() as u64
}

/// What each row-batched variant emits.
#[derive(Clone, Copy, PartialEq)]
enum RowMode {
    /// |FFT(row)| per element.
    Magnitude,
    /// Re(IFFT(row)) per element.
    InverseReal,
    /// Mean over rows of |FFT(row)|^2 per frequency.
    PowerAvg,
}

struct RowFft {
    variant: usize,
    fn_name: &'static str,
    description: &'static str,
    mode: RowMode,
}

impl RowFft {
    fn transform_row(&self, input: &FftInput, row: usize) -> (Vec<f64>, Vec<f64>) {
        let n = input.n;
        let mut re = input.re[row * n..(row + 1) * n].to_vec();
        let mut im = input.im[row * n..(row + 1) * n].to_vec();
        fft_inplace(&mut re, &mut im, self.mode == RowMode::InverseReal);
        (re, im)
    }

    fn row_output(&self, input: &FftInput, row: usize) -> Vec<f64> {
        let (re, im) = self.transform_row(input, row);
        match self.mode {
            RowMode::Magnitude => {
                re.iter().zip(&im).map(|(a, b)| (a * a + b * b).sqrt()).collect()
            }
            RowMode::InverseReal => re,
            RowMode::PowerAvg => re.iter().zip(&im).map(|(a, b)| a * a + b * b).collect(),
        }
    }

    fn finish_power(&self, mut spectrum: Vec<f64>, rows: usize) -> Output {
        for v in spectrum.iter_mut() {
            *v /= rows as f64;
        }
        Output::F64s(spectrum)
    }
}

impl Spec for RowFft {
    type Input = FftInput;

    fn id(&self) -> ProblemId {
        ProblemId::new(ProblemType::FourierTransform, self.variant)
    }

    fn prompt(&self) -> PromptSpec {
        PromptSpec {
            fn_name: self.fn_name.into(),
            description: self.description.into(),
            examples: vec![(
                "rows of complex samples (re, im)".into(),
                "per-row transform results".into(),
            )],
            signature: "rows: usize, n: usize, re: &[f64], im: &[f64], out: &mut [f64]".into(),
        }
    }

    fn default_size(&self) -> usize {
        1 << 14
    }

    fn generate(&self, seed: u64, size: usize) -> FftInput {
        gen_input(self.variant, seed, size)
    }

    fn input_bytes(&self, input: &FftInput) -> usize {
        input_bytes(input)
    }

    fn serial(&self, input: &FftInput) -> Output {
        match self.mode {
            RowMode::PowerAvg => {
                let mut acc = vec![0.0; input.n];
                for row in 0..input.rows {
                    for (a, v) in acc.iter_mut().zip(self.row_output(input, row)) {
                        *a += v;
                    }
                }
                self.finish_power(acc, input.rows)
            }
            _ => {
                let mut out = Vec::with_capacity(input.rows * input.n);
                for row in 0..input.rows {
                    out.extend(self.row_output(input, row));
                }
                Output::F64s(out)
            }
        }
    }

    fn solve_shmem(&self, input: &FftInput, pool: &Pool) -> Output {
        match self.mode {
            RowMode::PowerAvg => {
                let acc = pool.parallel_for_reduce(
                    0..input.rows,
                    vec![0.0f64; input.n],
                    |mut acc, row| {
                        for (a, v) in acc.iter_mut().zip(self.row_output(input, row)) {
                            *a += v;
                        }
                        acc
                    },
                    |mut a, b| {
                        for (x, y) in a.iter_mut().zip(b) {
                            *x += y;
                        }
                        a
                    },
                );
                self.finish_power(acc, input.rows)
            }
            _ => {
                let n = input.n;
                let mut out = vec![0.0; input.rows * n];
                {
                    let slice = UnsafeSlice::new(&mut out);
                    pool.parallel_for(0..input.rows, Schedule::Dynamic { chunk: 1 }, |row| {
                        for (k, v) in self.row_output(input, row).into_iter().enumerate() {
                            unsafe { slice.write(row * n + k, v) };
                        }
                    });
                }
                Output::F64s(out)
            }
        }
    }

    fn solve_patterns(&self, input: &FftInput, space: &ExecSpace) -> Output {
        match self.mode {
            RowMode::PowerAvg => {
                let acc = space.parallel_reduce(
                    input.rows,
                    vec![0.0f64; input.n],
                    |row| self.row_output(input, row),
                    |mut a, b| {
                        for (x, y) in a.iter_mut().zip(b) {
                            *x += y;
                        }
                        a
                    },
                );
                self.finish_power(acc, input.rows)
            }
            _ => {
                let n = input.n;
                let out: View<f64> = View::new("out", input.rows * n);
                let out2 = out.clone();
                space.parallel_for_teams(input.rows, |team| {
                    let row = team.league_rank();
                    for (k, v) in self.row_output(input, row).into_iter().enumerate() {
                        unsafe { out2.set(row * n + k, v) };
                    }
                });
                Output::F64s(out.to_vec())
            }
        }
    }

    fn solve_mpi(&self, input: &FftInput, comm: &Comm<'_>) -> Option<Output> {
        let n = input.n;
        let rows = input.rows;
        // Scatter row blocks of re and im.
        let scatter_rows = |data: &[f64]| {
            let chunks: Option<Vec<Vec<f64>>> = (comm.rank() == 0).then(|| {
                (0..comm.size())
                    .map(|p| {
                        let rg = block_range(rows, comm.size(), p);
                        data[rg.start * n..rg.end * n].to_vec()
                    })
                    .collect()
            });
            comm.scatter(0, chunks)
        };
        let lre = scatter_rows(&input.re);
        let lim = scatter_rows(&input.im);
        let local_rows = lre.len() / n;
        let local_input = FftInput {
            rows: local_rows,
            n,
            re: lre,
            im: lim,
            sparse: (vec![], vec![]),
        };
        match self.mode {
            RowMode::PowerAvg => {
                let mut acc = vec![0.0; n];
                for row in 0..local_rows {
                    for (a, v) in acc.iter_mut().zip(self.row_output(&local_input, row)) {
                        *a += v;
                    }
                }
                comm.reduce(0, &acc, ReduceOp::Sum).map(|total| self.finish_power(total, rows))
            }
            _ => {
                let mut local_out = Vec::with_capacity(local_rows * n);
                for row in 0..local_rows {
                    local_out.extend(self.row_output(&local_input, row));
                }
                comm.gather(0, &local_out).map(Output::F64s)
            }
        }
    }

    fn solve_hybrid(&self, input: &FftInput, ctx: &HybridCtx<'_>) -> Option<Output> {
        let comm = ctx.comm();
        let rg = block_range(input.rows, comm.size(), comm.rank());
        match self.mode {
            RowMode::PowerAvg => {
                let acc = ctx.par_reduce(
                    rg,
                    vec![0.0f64; input.n],
                    |mut acc, row| {
                        for (a, v) in acc.iter_mut().zip(self.row_output(input, row)) {
                            *a += v;
                        }
                        acc
                    },
                    |mut a, b| {
                        for (x, y) in a.iter_mut().zip(b) {
                            *x += y;
                        }
                        a
                    },
                );
                comm.reduce(0, &acc, ReduceOp::Sum)
                    .map(|total| self.finish_power(total, input.rows))
            }
            _ => {
                let n = input.n;
                let mut local = vec![0.0; rg.len() * n];
                let lo = rg.start;
                {
                    let slice = UnsafeSlice::new(&mut local);
                    ctx.par_for(0..rg.len(), |j| {
                        for (k, v) in self.row_output(input, lo + j).into_iter().enumerate() {
                            unsafe { slice.write(j * n + k, v) };
                        }
                    });
                }
                comm.gather(0, &local).map(Output::F64s)
            }
        }
    }

    fn solve_gpu(&self, input: &FftInput, gpu: &Gpu) -> Output {
        let n = input.n;
        let rows = input.rows;
        let re = GpuBuffer::from_slice(&input.re);
        let im = GpuBuffer::from_slice(&input.im);
        let out = GpuBuffer::<f64>::zeroed(match self.mode {
            RowMode::PowerAvg => n,
            _ => rows * n,
        });
        let mode = self.mode;
        gpu.launch_each(Launch::over(rows, 32), |t, ctx| {
            let row = t.global_id();
            if row < rows {
                // Stream the row in through metered reads, transform in
                // thread-local registers/scratch, stream the result out.
                let mut lre: Vec<f64> = (0..n).map(|k| ctx.read(&re, row * n + k)).collect();
                let mut lim: Vec<f64> = (0..n).map(|k| ctx.read(&im, row * n + k)).collect();
                fft_inplace(&mut lre, &mut lim, mode == RowMode::InverseReal);
                ctx.charge_flops(fft_flops(n));
                match mode {
                    RowMode::Magnitude => {
                        for k in 0..n {
                            ctx.write(&out, row * n + k, (lre[k] * lre[k] + lim[k] * lim[k]).sqrt());
                        }
                    }
                    RowMode::InverseReal => {
                        for (k, v) in lre.iter().enumerate() {
                            ctx.write(&out, row * n + k, *v);
                        }
                    }
                    RowMode::PowerAvg => {
                        for k in 0..n {
                            ctx.atomic_add(&out, k, lre[k] * lre[k] + lim[k] * lim[k]);
                        }
                    }
                }
            }
        });
        match self.mode {
            RowMode::PowerAvg => self.finish_power(out.to_vec(), rows),
            _ => Output::F64s(out.to_vec()),
        }
    }
}

// ----------------------------------------------------------------------
// Variant 3: full 2-D FFT magnitude
// ----------------------------------------------------------------------

struct Fft2d;

impl Fft2d {
    /// Serial 2-D FFT: row pass then column pass; returns (re, im).
    fn fft2_serial(input: &FftInput) -> (Vec<f64>, Vec<f64>) {
        let (rows, n) = (input.rows, input.n);
        let mut re = input.re.clone();
        let mut im = input.im.clone();
        for r in 0..rows {
            fft_inplace(&mut re[r * n..(r + 1) * n], &mut im[r * n..(r + 1) * n], false);
        }
        for c in 0..n {
            let mut cre: Vec<f64> = (0..rows).map(|r| re[r * n + c]).collect();
            let mut cim: Vec<f64> = (0..rows).map(|r| im[r * n + c]).collect();
            fft_inplace(&mut cre, &mut cim, false);
            for r in 0..rows {
                re[r * n + c] = cre[r];
                im[r * n + c] = cim[r];
            }
        }
        (re, im)
    }

    fn magnitude(re: &[f64], im: &[f64]) -> Output {
        Output::F64s(re.iter().zip(im).map(|(a, b)| (a * a + b * b).sqrt()).collect())
    }
}

impl Spec for Fft2d {
    type Input = FftInput;

    fn id(&self) -> ProblemId {
        ProblemId::new(ProblemType::FourierTransform, 3)
    }

    fn prompt(&self) -> PromptSpec {
        PromptSpec {
            fn_name: "fft2dMagnitude".into(),
            description: "Compute the magnitude of the 2-D FFT of a rows x n complex matrix (row transforms followed by column transforms).".into(),
            examples: vec![("a rows x n complex matrix".into(), "|FFT2(matrix)|".into())],
            signature: "rows: usize, n: usize, re: &[f64], im: &[f64], out: &mut [f64]".into(),
        }
    }

    fn default_size(&self) -> usize {
        1 << 14
    }

    fn generate(&self, seed: u64, size: usize) -> FftInput {
        gen_input(3, seed, size)
    }

    fn input_bytes(&self, input: &FftInput) -> usize {
        input_bytes(input)
    }

    fn serial(&self, input: &FftInput) -> Output {
        let (re, im) = Fft2d::fft2_serial(input);
        Fft2d::magnitude(&re, &im)
    }

    fn solve_shmem(&self, input: &FftInput, pool: &Pool) -> Output {
        let (rows, n) = (input.rows, input.n);
        let mut re = input.re.clone();
        let mut im = input.im.clone();
        // Row pass: chunks of whole rows.
        {
            let sre = UnsafeSlice::new(&mut re);
            let sim = UnsafeSlice::new(&mut im);
            pool.parallel_for(0..rows, Schedule::Dynamic { chunk: 1 }, |r| {
                let mut lre: Vec<f64> = (0..n).map(|k| unsafe { sre.read(r * n + k) }).collect();
                let mut lim: Vec<f64> = (0..n).map(|k| unsafe { sim.read(r * n + k) }).collect();
                fft_inplace(&mut lre, &mut lim, false);
                for k in 0..n {
                    unsafe {
                        sre.write(r * n + k, lre[k]);
                        sim.write(r * n + k, lim[k]);
                    }
                }
            });
        }
        // Column pass.
        {
            let sre = UnsafeSlice::new(&mut re);
            let sim = UnsafeSlice::new(&mut im);
            pool.parallel_for(0..n, Schedule::Dynamic { chunk: 1 }, |c| {
                let mut cre: Vec<f64> =
                    (0..rows).map(|r| unsafe { sre.read(r * n + c) }).collect();
                let mut cim: Vec<f64> =
                    (0..rows).map(|r| unsafe { sim.read(r * n + c) }).collect();
                fft_inplace(&mut cre, &mut cim, false);
                for r in 0..rows {
                    unsafe {
                        sre.write(r * n + c, cre[r]);
                        sim.write(r * n + c, cim[r]);
                    }
                }
            });
        }
        Fft2d::magnitude(&re, &im)
    }

    fn solve_patterns(&self, input: &FftInput, space: &ExecSpace) -> Output {
        let (rows, n) = (input.rows, input.n);
        let re = View::from_slice("re", &input.re);
        let im = View::from_slice("im", &input.im);
        let (re2, im2) = (re.clone(), im.clone());
        space.parallel_for_teams(rows, |team| {
            let r = team.league_rank();
            let mut lre: Vec<f64> = (0..n).map(|k| re2.get(r * n + k)).collect();
            let mut lim: Vec<f64> = (0..n).map(|k| im2.get(r * n + k)).collect();
            fft_inplace(&mut lre, &mut lim, false);
            for k in 0..n {
                unsafe {
                    re2.set(r * n + k, lre[k]);
                    im2.set(r * n + k, lim[k]);
                }
            }
        });
        let (re3, im3) = (re.clone(), im.clone());
        space.parallel_for_teams(n, |team| {
            let c = team.league_rank();
            let mut cre: Vec<f64> = (0..rows).map(|r| re3.get(r * n + c)).collect();
            let mut cim: Vec<f64> = (0..rows).map(|r| im3.get(r * n + c)).collect();
            fft_inplace(&mut cre, &mut cim, false);
            for r in 0..rows {
                unsafe {
                    re3.set(r * n + c, cre[r]);
                    im3.set(r * n + c, cim[r]);
                }
            }
        });
        let fre = re.to_vec();
        let fim = im.to_vec();
        Fft2d::magnitude(&fre, &fim)
    }

    fn solve_mpi(&self, input: &FftInput, comm: &Comm<'_>) -> Option<Output> {
        // Distributed 2-D FFT: row blocks -> row FFTs -> all-to-all
        // transpose -> column FFTs on column blocks -> gather + host
        // reassembly.
        let (rows, n) = (input.rows, input.n);
        let p = comm.size();
        let scatter_rows = |data: &[f64]| {
            let chunks: Option<Vec<Vec<f64>>> = (comm.rank() == 0).then(|| {
                (0..p)
                    .map(|q| {
                        let rg = block_range(rows, p, q);
                        data[rg.start * n..rg.end * n].to_vec()
                    })
                    .collect()
            });
            comm.scatter(0, chunks)
        };
        let mut lre = scatter_rows(&input.re);
        let mut lim = scatter_rows(&input.im);
        let my_rows = lre.len() / n;
        for r in 0..my_rows {
            fft_inplace(&mut lre[r * n..(r + 1) * n], &mut lim[r * n..(r + 1) * n], false);
        }
        // All-to-all transpose: to rank q send, for each of q's columns,
        // my rows' (re, im) at that column.
        let send: Vec<Vec<f64>> = (0..p)
            .map(|q| {
                let cols_q = block_range(n, p, q);
                let mut buf = Vec::with_capacity(cols_q.len() * my_rows * 2);
                for c in cols_q {
                    for r in 0..my_rows {
                        buf.push(lre[r * n + c]);
                        buf.push(lim[r * n + c]);
                    }
                }
                buf
            })
            .collect();
        let recv = comm.alltoall(send);
        // Assemble my column block: columns cols_mine, each of length
        // `rows`, ordered by sender rank (senders hold consecutive row
        // blocks).
        let cols_mine = block_range(n, p, comm.rank());
        let ncols = cols_mine.len();
        let mut cre = vec![0.0; ncols * rows];
        let mut cim = vec![0.0; ncols * rows];
        for (src, buf) in recv.iter().enumerate() {
            let src_rows = block_range(rows, p, src);
            let rlen = src_rows.len();
            for (ci, _c) in cols_mine.clone().enumerate() {
                for (rj, r) in src_rows.clone().enumerate() {
                    let v = 2 * (ci * rlen + rj);
                    cre[ci * rows + r] = buf[v];
                    cim[ci * rows + r] = buf[v + 1];
                }
            }
        }
        for ci in 0..ncols {
            fft_inplace(&mut cre[ci * rows..(ci + 1) * rows], &mut cim[ci * rows..(ci + 1) * rows], false);
        }
        // Gather column blocks to root and reassemble row-major.
        let mut packed = Vec::with_capacity(ncols * rows * 2);
        for ci in 0..ncols {
            for r in 0..rows {
                packed.push(cre[ci * rows + r]);
                packed.push(cim[ci * rows + r]);
            }
        }
        comm.gather(0, &packed).map(|all| {
            let mut out = vec![0.0; rows * n];
            let mut cursor = 0usize;
            for q in 0..p {
                let cols_q = block_range(n, p, q);
                for c in cols_q {
                    for r in 0..rows {
                        let (a, b) = (all[cursor], all[cursor + 1]);
                        out[r * n + c] = (a * a + b * b).sqrt();
                        cursor += 2;
                    }
                }
            }
            Output::F64s(out)
        })
    }

    fn solve_hybrid(&self, input: &FftInput, ctx: &HybridCtx<'_>) -> Option<Output> {
        // Rank 0 path of MPI would need the transpose; here ranks split
        // the row pass, gather at root... simpler hybrid: split rows for
        // pass 1 and columns for pass 2, exchanging via allgather.
        let comm = ctx.comm();
        let (rows, n) = (input.rows, input.n);
        let my_rows = block_range(rows, comm.size(), comm.rank());
        let mut local = vec![0.0; my_rows.len() * n * 2];
        let lo = my_rows.start;
        {
            let slice = UnsafeSlice::new(&mut local);
            ctx.par_for(0..my_rows.len(), |j| {
                let r = lo + j;
                let mut lre: Vec<f64> = input.re[r * n..(r + 1) * n].to_vec();
                let mut lim: Vec<f64> = input.im[r * n..(r + 1) * n].to_vec();
                fft_inplace(&mut lre, &mut lim, false);
                for k in 0..n {
                    unsafe {
                        slice.write(j * n * 2 + 2 * k, lre[k]);
                        slice.write(j * n * 2 + 2 * k + 1, lim[k]);
                    }
                }
            });
        }
        let stage1 = comm.allgather(&local);
        // Column pass over my column block.
        let my_cols = block_range(n, comm.size(), comm.rank());
        let mut out_local = vec![0.0; my_cols.len() * rows];
        let clo = my_cols.start;
        {
            let slice = UnsafeSlice::new(&mut out_local);
            let stage1_ref = &stage1;
            ctx.par_for(0..my_cols.len(), |cj| {
                let c = clo + cj;
                let mut cre: Vec<f64> =
                    (0..rows).map(|r| stage1_ref[r * n * 2 + 2 * c]).collect();
                let mut cim: Vec<f64> =
                    (0..rows).map(|r| stage1_ref[r * n * 2 + 2 * c + 1]).collect();
                fft_inplace(&mut cre, &mut cim, false);
                for r in 0..rows {
                    unsafe {
                        slice.write(cj * rows + r, (cre[r] * cre[r] + cim[r] * cim[r]).sqrt())
                    };
                }
            });
        }
        comm.gather(0, &out_local).map(|all| {
            let mut out = vec![0.0; rows * n];
            let mut cursor = 0usize;
            for q in 0..comm.size() {
                for c in block_range(n, comm.size(), q) {
                    for r in 0..rows {
                        out[r * n + c] = all[cursor];
                        cursor += 1;
                    }
                }
            }
            Output::F64s(out)
        })
    }

    fn solve_gpu(&self, input: &FftInput, gpu: &Gpu) -> Output {
        let (rows, n) = (input.rows, input.n);
        let re = GpuBuffer::from_slice(&input.re);
        let im = GpuBuffer::from_slice(&input.im);
        // Kernel 1: row FFTs.
        gpu.launch_each(Launch::over(rows, 32), |t, ctx| {
            let r = t.global_id();
            if r < rows {
                let mut lre: Vec<f64> = (0..n).map(|k| ctx.read(&re, r * n + k)).collect();
                let mut lim: Vec<f64> = (0..n).map(|k| ctx.read(&im, r * n + k)).collect();
                fft_inplace(&mut lre, &mut lim, false);
                ctx.charge_flops(fft_flops(n));
                for k in 0..n {
                    ctx.write(&re, r * n + k, lre[k]);
                    ctx.write(&im, r * n + k, lim[k]);
                }
            }
        });
        // Kernel 2: column FFTs + magnitude.
        let out = GpuBuffer::<f64>::zeroed(rows * n);
        gpu.launch_each(Launch::over(n, 32), |t, ctx| {
            let c = t.global_id();
            if c < n {
                let mut cre: Vec<f64> = (0..rows).map(|r| ctx.read(&re, r * n + c)).collect();
                let mut cim: Vec<f64> = (0..rows).map(|r| ctx.read(&im, r * n + c)).collect();
                fft_inplace(&mut cre, &mut cim, false);
                ctx.charge_flops(fft_flops(rows));
                for r in 0..rows {
                    ctx.write(&out, r * n + c, (cre[r] * cre[r] + cim[r] * cim[r]).sqrt());
                }
            }
        });
        Output::F64s(out.to_vec())
    }
}

// ----------------------------------------------------------------------
// Variant 4: direct sparse DFT
// ----------------------------------------------------------------------

struct SparseDft;

impl SparseDft {
    fn freq(input: &FftInput, k: usize) -> f64 {
        let total = (input.rows * input.n) as f64;
        let (pos, vals) = (&input.sparse.0, &input.sparse.1);
        let mut re = 0.0;
        let mut im = 0.0;
        for (j, &p) in pos.iter().enumerate() {
            let ang = -2.0 * std::f64::consts::PI * (k as f64) * (p as f64) / total;
            re += vals[j] * ang.cos();
            im += vals[j] * ang.sin();
        }
        (re * re + im * im).sqrt()
    }

    /// Number of output frequencies (kept moderate: the direct method
    /// is O(freqs x nnz)).
    fn freqs(input: &FftInput) -> usize {
        (input.rows * input.n).min(4096)
    }
}

impl Spec for SparseDft {
    type Input = FftInput;

    fn id(&self) -> ProblemId {
        ProblemId::new(ProblemType::FourierTransform, 4)
    }

    fn prompt(&self) -> PromptSpec {
        PromptSpec {
            fn_name: "sparseSignalDft".into(),
            description: "Given a sparse time-domain signal (sample positions and values), compute the magnitude of its DFT at the first F frequencies directly.".into(),
            examples: vec![("positions=[0], values=[1.0]".into(), "all-ones spectrum".into())],
            signature: "positions: &[u32], values: &[f64], n: usize, out: &mut [f64]".into(),
        }
    }

    fn default_size(&self) -> usize {
        1 << 14
    }

    fn generate(&self, seed: u64, size: usize) -> FftInput {
        gen_input(4, seed, size)
    }

    fn input_bytes(&self, input: &FftInput) -> usize {
        input.sparse.0.len() * 12
    }

    fn serial(&self, input: &FftInput) -> Output {
        Output::F64s((0..SparseDft::freqs(input)).map(|k| SparseDft::freq(input, k)).collect())
    }

    fn solve_shmem(&self, input: &FftInput, pool: &Pool) -> Output {
        let f = SparseDft::freqs(input);
        let mut out = vec![0.0; f];
        {
            let slice = UnsafeSlice::new(&mut out);
            pool.parallel_for(0..f, Schedule::Static { chunk: 0 }, |k| unsafe {
                slice.write(k, SparseDft::freq(input, k));
            });
        }
        Output::F64s(out)
    }

    fn solve_patterns(&self, input: &FftInput, space: &ExecSpace) -> Output {
        let f = SparseDft::freqs(input);
        let out: View<f64> = View::new("out", f);
        let out2 = out.clone();
        space.parallel_for(f, |k| unsafe { out2.set(k, SparseDft::freq(input, k)) });
        Output::F64s(out.to_vec())
    }

    fn solve_mpi(&self, input: &FftInput, comm: &Comm<'_>) -> Option<Output> {
        // The sparse signal is tiny: broadcast it, split frequencies.
        let mut pos = if comm.rank() == 0 { input.sparse.0.clone() } else { Vec::new() };
        comm.bcast(0, &mut pos);
        let mut vals = if comm.rank() == 0 { input.sparse.1.clone() } else { Vec::new() };
        comm.bcast(0, &mut vals);
        let local_input = FftInput {
            rows: input.rows,
            n: input.n,
            re: vec![],
            im: vec![],
            sparse: (pos, vals),
        };
        let f = SparseDft::freqs(input);
        let rg = block_range(f, comm.size(), comm.rank());
        let local: Vec<f64> = rg.map(|k| SparseDft::freq(&local_input, k)).collect();
        comm.gather(0, &local).map(Output::F64s)
    }

    fn solve_hybrid(&self, input: &FftInput, ctx: &HybridCtx<'_>) -> Option<Output> {
        let comm = ctx.comm();
        let f = SparseDft::freqs(input);
        let rg = block_range(f, comm.size(), comm.rank());
        let mut local = vec![0.0; rg.len()];
        let lo = rg.start;
        {
            let slice = UnsafeSlice::new(&mut local);
            ctx.par_for(0..rg.len(), |j| unsafe {
                slice.write(j, SparseDft::freq(input, lo + j));
            });
        }
        comm.gather(0, &local).map(Output::F64s)
    }

    fn solve_gpu(&self, input: &FftInput, gpu: &Gpu) -> Output {
        let pos = GpuBuffer::from_slice(&input.sparse.0);
        let vals = GpuBuffer::from_slice(&input.sparse.1);
        let f = SparseDft::freqs(input);
        let out = GpuBuffer::<f64>::zeroed(f);
        let total = (input.rows * input.n) as f64;
        let nnz = input.sparse.0.len();
        gpu.launch_each(Launch::over(f, 256), |t, ctx| {
            let k = t.global_id();
            if k < f {
                let mut re = 0.0;
                let mut im = 0.0;
                for j in 0..nnz {
                    let p = ctx.read(&pos, j) as f64;
                    let v = ctx.read(&vals, j);
                    let ang = -2.0 * std::f64::consts::PI * (k as f64) * p / total;
                    re += v * ang.cos();
                    im += v * ang.sin();
                }
                ctx.charge_flops(8 * nnz as u64);
                ctx.write(&out, k, (re * re + im * im).sqrt());
            }
        });
        Output::F64s(out.to_vec())
    }
}

/// The five Fourier transform problems.
pub fn problems() -> Vec<Box<dyn Problem>> {
    vec![
        Box::new(RowFft {
            variant: 0,
            fn_name: "rowFftMagnitude",
            description: "Compute the FFT of each row of a rows x n complex matrix and store the magnitudes.",
            mode: RowMode::Magnitude,
        }),
        Box::new(RowFft {
            variant: 1,
            fn_name: "rowIfftReal",
            description: "Compute the inverse FFT of each row of a rows x n complex matrix and store the real parts.",
            mode: RowMode::InverseReal,
        }),
        Box::new(RowFft {
            variant: 2,
            fn_name: "averagePowerSpectrum",
            description: "Compute the power spectrum |FFT(row)|^2 of each row and average the spectra over all rows.",
            mode: RowMode::PowerAvg,
        }),
        Box::new(Fft2d),
        Box::new(SparseDft),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::tests_support::check_problem_all_models;

    #[test]
    fn fft_problems_agree_across_models() {
        for p in problems() {
            check_problem_all_models(&*p, 31337, 2048);
        }
    }

    #[test]
    fn fft2_serial_matches_separable_definition() {
        // FFT2 of an impulse at (0,0) is all ones.
        let rows = 4;
        let n = 8;
        let mut re = vec![0.0; rows * n];
        re[0] = 1.0;
        let input = FftInput { rows, n, re, im: vec![0.0; rows * n], sparse: (vec![], vec![]) };
        let (fre, fim) = Fft2d::fft2_serial(&input);
        for k in 0..rows * n {
            assert!((fre[k] - 1.0).abs() < 1e-9, "re[{k}]={}", fre[k]);
            assert!(fim[k].abs() < 1e-9);
        }
    }

    #[test]
    fn sparse_dft_single_impulse_is_flat() {
        let input = FftInput {
            rows: 2,
            n: 8,
            re: vec![],
            im: vec![],
            sparse: (vec![0], vec![1.0]),
        };
        for k in 0..16 {
            assert!((SparseDft::freq(&input, k) - 1.0).abs() < 1e-9);
        }
    }
}
