//! Stencil problems: one iteration of 1-D and 2-D stencils (Table 1
//! "Stencil"). Out-of-range reads are zero (zero padding), so every
//! variant has uniform boundary semantics.
//!
//! The MPI implementations use the canonical block-distribution +
//! halo-exchange pattern (`sendrecv` with both neighbors), which is the
//! decomposition the paper's MPI stencil prompts are probing for.

use crate::framework::{Problem, Spec};
use crate::util;
use pcg_core::prompt::PromptSpec;
use pcg_core::{Output, ProblemId, ProblemType};
use pcg_gpusim::{Gpu, GpuBuffer, Launch};
use pcg_hybrid::HybridCtx;
use pcg_mpisim::{block_range, Comm};
use pcg_patterns::{ExecSpace, View};
use pcg_shmem::{Pool, UnsafeSlice};

/// Accessors handed to a 1-D stencil formula: absolute-index reads with
/// zero padding, over the main array and an auxiliary array.
pub struct St1<'a> {
    x: &'a dyn Fn(isize) -> f64,
    aux: &'a dyn Fn(isize) -> f64,
}

impl St1<'_> {
    /// Read `x[i]`, 0.0 outside `0..n`.
    pub fn x(&self, i: isize) -> f64 {
        (self.x)(i)
    }

    /// Read the auxiliary array, 0.0 outside `0..n`.
    pub fn aux(&self, i: isize) -> f64 {
        (self.aux)(i)
    }
}

struct Stencil1D {
    variant: usize,
    fn_name: &'static str,
    description: &'static str,
    example_in: &'static str,
    example_out: &'static str,
    halo: usize,
    uses_aux: bool,
    apply: fn(&St1<'_>, usize) -> f64,
}

/// 1-D stencil input: main array plus optional previous-timestep array.
pub struct St1Input {
    x: Vec<f64>,
    aux: Vec<f64>,
}

impl Stencil1D {
    fn apply_range(&self, x: &[f64], aux: &[f64], lo: usize, hi: usize, out: &mut [f64]) {
        let n = x.len();
        let getx = |i: isize| {
            if i >= 0 && (i as usize) < n {
                x[i as usize]
            } else {
                0.0
            }
        };
        let getaux = |i: isize| {
            if i >= 0 && (i as usize) < n {
                aux.get(i as usize).copied().unwrap_or(0.0)
            } else {
                0.0
            }
        };
        let ctx = St1 { x: &getx, aux: &getaux };
        for (slot, i) in out.iter_mut().zip(lo..hi) {
            *slot = (self.apply)(&ctx, i);
        }
    }
}

impl Spec for Stencil1D {
    type Input = St1Input;

    fn id(&self) -> ProblemId {
        ProblemId::new(ProblemType::Stencil, self.variant)
    }

    fn prompt(&self) -> PromptSpec {
        PromptSpec {
            fn_name: self.fn_name.into(),
            description: self.description.into(),
            examples: vec![(self.example_in.into(), self.example_out.into())],
            signature: "x: &[f64], out: &mut [f64]".into(),
        }
    }

    fn default_size(&self) -> usize {
        1 << 16
    }

    fn generate(&self, seed: u64, size: usize) -> St1Input {
        let mut r = util::rng(seed, Spec::id(self).index() as u64);
        let x = util::rand_f64s(&mut r, size, -1.0, 1.0);
        let aux = if self.uses_aux { util::rand_f64s(&mut r, size, -1.0, 1.0) } else { vec![] };
        St1Input { x, aux }
    }

    fn input_bytes(&self, input: &St1Input) -> usize {
        (input.x.len() + input.aux.len()) * 8
    }

    fn serial(&self, input: &St1Input) -> Output {
        let mut out = vec![0.0; input.x.len()];
        self.apply_range(&input.x, &input.aux, 0, input.x.len(), &mut out);
        Output::F64s(out)
    }

    fn solve_shmem(&self, input: &St1Input, pool: &Pool) -> Output {
        let mut out = vec![0.0; input.x.len()];
        pool.parallel_chunks_mut(&mut out, |_tid, start, chunk| {
            let hi = start + chunk.len();
            self.apply_range(&input.x, &input.aux, start, hi, chunk);
        });
        Output::F64s(out)
    }

    fn solve_patterns(&self, input: &St1Input, space: &ExecSpace) -> Output {
        let n = input.x.len();
        let x = View::from_slice("x", &input.x);
        let aux = View::from_slice("aux", &input.aux);
        let out: View<f64> = View::new("out", n);
        let out2 = out.clone();
        let apply = self.apply;
        space.parallel_for(n, |i| {
            let getx = |j: isize| {
                if j >= 0 && (j as usize) < n {
                    x.get(j as usize)
                } else {
                    0.0
                }
            };
            let getaux = |j: isize| {
                if j >= 0 && (j as usize) < aux.len() {
                    aux.get(j as usize)
                } else {
                    0.0
                }
            };
            let ctx = St1 { x: &getx, aux: &getaux };
            unsafe { out2.set(i, apply(&ctx, i)) };
        });
        Output::F64s(out.to_vec())
    }

    fn solve_mpi(&self, input: &St1Input, comm: &Comm<'_>) -> Option<Output> {
        let n = input.x.len();
        let h = self.halo as isize;
        // Scatter the owned blocks, then exchange halos with neighbors.
        let local_x = comm.scatter_blocks(0, (comm.rank() == 0).then_some(&input.x[..]), n);
        let local_aux = if self.uses_aux {
            comm.scatter_blocks(0, (comm.rank() == 0).then_some(&input.aux[..]), n)
        } else {
            Vec::new()
        };
        let range = block_range(n, comm.size(), comm.rank());
        let padded_x = exchange_halo(comm, &local_x, self.halo, 10);
        let padded_aux = if self.uses_aux {
            exchange_halo(comm, &local_aux, self.halo, 20)
        } else {
            vec![0.0; local_x.len() + 2 * self.halo]
        };
        // Compute the owned range with absolute-index getters backed by
        // the halo-padded local arrays.
        let lo = range.start as isize;
        let len = local_x.len() as isize;
        let getx = |i: isize| {
            let l = i - lo + h;
            // The halo covers [lo-h, lo+len+h); absolute out-of-domain
            // indices fall outside and read as padded zeros.
            if i >= 0 && i < n as isize && l >= 0 && l < len + 2 * h {
                padded_x[l as usize]
            } else {
                0.0
            }
        };
        let getaux = |i: isize| {
            let l = i - lo + h;
            if i >= 0 && i < n as isize && l >= 0 && l < len + 2 * h {
                padded_aux[l as usize]
            } else {
                0.0
            }
        };
        let ctx = St1 { x: &getx, aux: &getaux };
        let local_out: Vec<f64> = range.clone().map(|i| (self.apply)(&ctx, i)).collect();
        comm.gather(0, &local_out).map(Output::F64s)
    }

    fn solve_hybrid(&self, input: &St1Input, ctx: &HybridCtx<'_>) -> Option<Output> {
        let comm = ctx.comm();
        let n = input.x.len();
        let range = block_range(n, comm.size(), comm.rank());
        let mut local_out = vec![0.0; range.len()];
        let lo = range.start;
        ctx.par_chunks_mut(&mut local_out, |_tid, start, chunk| {
            let hi = lo + start + chunk.len();
            self.apply_range(&input.x, &input.aux, lo + start, hi, chunk);
        });
        comm.gather(0, &local_out).map(Output::F64s)
    }

    fn solve_gpu(&self, input: &St1Input, gpu: &Gpu) -> Output {
        let n = input.x.len();
        let x = GpuBuffer::from_slice(&input.x);
        let aux = GpuBuffer::from_slice(&input.aux);
        let out = GpuBuffer::<f64>::zeroed(n);
        let apply = self.apply;
        gpu.launch_each(Launch::over(n, 256), |t, bctx| {
            let i = t.global_id();
            if i < n {
                let getx = |j: isize| {
                    if j >= 0 && (j as usize) < n {
                        bctx.read(&x, j as usize)
                    } else {
                        0.0
                    }
                };
                let getaux = |j: isize| {
                    if j >= 0 && (j as usize) < aux.len() {
                        bctx.read(&aux, j as usize)
                    } else {
                        0.0
                    }
                };
                let ctx = St1 { x: &getx, aux: &getaux };
                bctx.write(&out, i, apply(&ctx, i));
            }
        });
        Output::F64s(out.to_vec())
    }
}

/// Exchange `halo` boundary elements with both neighbors; returns the
/// local array padded with `halo` slots on each side (zeros at domain
/// ends or when the neighbor sent fewer than `halo` elements).
fn exchange_halo(comm: &Comm<'_>, local: &[f64], halo: usize, tag_base: u32) -> Vec<f64> {
    let mut padded = vec![0.0; local.len() + 2 * halo];
    padded[halo..halo + local.len()].copy_from_slice(local);
    if halo == 0 || comm.size() == 1 {
        return padded;
    }
    let rank = comm.rank();
    let take = halo.min(local.len());
    // Send right edge to the right neighbor, receive left halo.
    if rank + 1 < comm.size() {
        comm.send(rank + 1, tag_base, &local[local.len() - take..]);
    }
    if rank > 0 {
        let left = comm.recv::<f64>(Some(rank - 1), tag_base);
        padded[halo - left.len()..halo].copy_from_slice(&left);
    }
    // Send left edge to the left neighbor, receive right halo.
    if rank > 0 {
        comm.send(rank - 1, tag_base + 1, &local[..take]);
    }
    if rank + 1 < comm.size() {
        let right = comm.recv::<f64>(Some(rank + 1), tag_base + 1);
        padded[halo + local.len()..halo + local.len() + right.len()].copy_from_slice(&right);
    }
    padded
}

/// 2-D stencil accessors: absolute `(row, col)` reads, zero padded.
pub struct St2<'a> {
    get: &'a dyn Fn(isize, isize) -> f64,
}

impl St2<'_> {
    /// Read `x[r][c]`, 0.0 outside the grid.
    pub fn at(&self, r: isize, c: isize) -> f64 {
        (self.get)(r, c)
    }
}

struct Stencil2D {
    variant: usize,
    fn_name: &'static str,
    description: &'static str,
    example_in: &'static str,
    example_out: &'static str,
    apply: fn(&St2<'_>, usize, usize) -> f64,
}

/// 2-D stencil input: a row-major grid.
pub struct St2Input {
    rows: usize,
    cols: usize,
    x: Vec<f64>,
}

impl Stencil2D {
    fn apply_rows(&self, input: &St2Input, r_lo: usize, r_hi: usize, out: &mut [f64]) {
        let (rows, cols) = (input.rows, input.cols);
        let get = |r: isize, c: isize| {
            if r >= 0 && c >= 0 && (r as usize) < rows && (c as usize) < cols {
                input.x[r as usize * cols + c as usize]
            } else {
                0.0
            }
        };
        let ctx = St2 { get: &get };
        for r in r_lo..r_hi {
            for c in 0..cols {
                out[(r - r_lo) * cols + c] = (self.apply)(&ctx, r, c);
            }
        }
    }
}

impl Spec for Stencil2D {
    type Input = St2Input;

    fn id(&self) -> ProblemId {
        ProblemId::new(ProblemType::Stencil, self.variant)
    }

    fn prompt(&self) -> PromptSpec {
        PromptSpec {
            fn_name: self.fn_name.into(),
            description: self.description.into(),
            examples: vec![(self.example_in.into(), self.example_out.into())],
            signature: "rows: usize, cols: usize, x: &[f64], out: &mut [f64]".into(),
        }
    }

    fn default_size(&self) -> usize {
        1 << 16
    }

    fn generate(&self, seed: u64, size: usize) -> St2Input {
        let mut r = util::rng(seed, Spec::id(self).index() as u64);
        let cols = (size as f64).sqrt().round() as usize;
        let cols = cols.max(2);
        let rows = (size / cols).max(2);
        let x = util::rand_f64s(&mut r, rows * cols, -1.0, 1.0);
        St2Input { rows, cols, x }
    }

    fn input_bytes(&self, input: &St2Input) -> usize {
        input.x.len() * 8
    }

    fn serial(&self, input: &St2Input) -> Output {
        let mut out = vec![0.0; input.rows * input.cols];
        self.apply_rows(input, 0, input.rows, &mut out);
        Output::F64s(out)
    }

    fn solve_shmem(&self, input: &St2Input, pool: &Pool) -> Output {
        let mut out = vec![0.0; input.rows * input.cols];
        let cols = input.cols;
        {
            let slice = UnsafeSlice::new(&mut out);
            pool.parallel_for(0..input.rows, pcg_shmem::Schedule::Static { chunk: 0 }, |r| {
                let mut row = vec![0.0; cols];
                self.apply_rows(input, r, r + 1, &mut row);
                for (c, v) in row.into_iter().enumerate() {
                    unsafe { slice.write(r * cols + c, v) };
                }
            });
        }
        Output::F64s(out)
    }

    fn solve_patterns(&self, input: &St2Input, space: &ExecSpace) -> Output {
        let (rows, cols) = (input.rows, input.cols);
        let x = View::from_slice("x", &input.x);
        let out: View<f64> = View::new("out", rows * cols);
        let out2 = out.clone();
        let apply = self.apply;
        space.parallel_for_2d(rows, cols, |r, c| {
            let get = |rr: isize, cc: isize| {
                if rr >= 0 && cc >= 0 && (rr as usize) < rows && (cc as usize) < cols {
                    x.get(rr as usize * cols + cc as usize)
                } else {
                    0.0
                }
            };
            let ctx = St2 { get: &get };
            unsafe { out2.set(r * cols + c, apply(&ctx, r, c)) };
        });
        Output::F64s(out.to_vec())
    }

    fn solve_mpi(&self, input: &St2Input, comm: &Comm<'_>) -> Option<Output> {
        // Row-block distribution with one halo row per side.
        let (rows, cols) = (input.rows, input.cols);
        let chunks: Option<Vec<Vec<f64>>> = (comm.rank() == 0).then(|| {
            (0..comm.size())
                .map(|r| {
                    let rg = block_range(rows, comm.size(), r);
                    input.x[rg.start * cols..rg.end * cols].to_vec()
                })
                .collect()
        });
        let local = comm.scatter(0, chunks);
        let my_rows = block_range(rows, comm.size(), comm.rank());
        let padded = exchange_halo(comm, &local, cols, 30);
        // `padded` holds rows [my_rows.start-1, my_rows.end+1) with zero
        // rows at the domain boundary.
        let lo = my_rows.start;
        let get = |r: isize, c: isize| {
            if r >= 0 && c >= 0 && (r as usize) < rows && (c as usize) < cols {
                let l = r - lo as isize + 1;
                if l >= 0 && (l as usize) < padded.len() / cols {
                    padded[l as usize * cols + c as usize]
                } else {
                    0.0
                }
            } else {
                0.0
            }
        };
        let ctx = St2 { get: &get };
        let mut local_out = Vec::with_capacity(my_rows.len() * cols);
        for r in my_rows.clone() {
            for c in 0..cols {
                local_out.push((self.apply)(&ctx, r, c));
            }
        }
        comm.gather(0, &local_out).map(Output::F64s)
    }

    fn solve_hybrid(&self, input: &St2Input, ctx: &HybridCtx<'_>) -> Option<Output> {
        let comm = ctx.comm();
        let my_rows = block_range(input.rows, comm.size(), comm.rank());
        let cols = input.cols;
        let mut local_out = vec![0.0; my_rows.len() * cols];
        let lo = my_rows.start;
        {
            let slice = UnsafeSlice::new(&mut local_out);
            let apply_row = |r_local: usize| {
                let mut row = vec![0.0; cols];
                self.apply_rows(input, lo + r_local, lo + r_local + 1, &mut row);
                for (c, v) in row.into_iter().enumerate() {
                    unsafe { slice.write(r_local * cols + c, v) };
                }
            };
            ctx.par_for(0..my_rows.len(), apply_row);
        }
        comm.gather(0, &local_out).map(Output::F64s)
    }

    fn solve_gpu(&self, input: &St2Input, gpu: &Gpu) -> Output {
        let (rows, cols) = (input.rows, input.cols);
        let x = GpuBuffer::from_slice(&input.x);
        let out = GpuBuffer::<f64>::zeroed(rows * cols);
        let apply = self.apply;
        gpu.launch_each(Launch::over(rows * cols, 256), |t, bctx| {
            let i = t.global_id();
            if i < rows * cols {
                let (r, c) = (i / cols, i % cols);
                let get = |rr: isize, cc: isize| {
                    if rr >= 0 && cc >= 0 && (rr as usize) < rows && (cc as usize) < cols {
                        bctx.read(&x, rr as usize * cols + cc as usize)
                    } else {
                        0.0
                    }
                };
                let ctx = St2 { get: &get };
                bctx.write(&out, i, apply(&ctx, r, c));
            }
        });
        Output::F64s(out.to_vec())
    }
}

/// The five stencil problems.
pub fn problems() -> Vec<Box<dyn Problem>> {
    vec![
        Box::new(Stencil1D {
            variant: 0,
            fn_name: "jacobi1d3Point",
            description: "One Jacobi iteration on a 1-D array: out[i] = (x[i-1] + x[i] + x[i+1]) / 3, reading 0 outside the array.",
            example_in: "[3.0, 3.0, 3.0]",
            example_out: "[2.0, 3.0, 2.0]",
            halo: 1,
            uses_aux: false,
            apply: |s, i| (s.x(i as isize - 1) + s.x(i as isize) + s.x(i as isize + 1)) / 3.0,
        }),
        Box::new(Stencil1D {
            variant: 1,
            fn_name: "weighted1d5Point",
            description: "One weighted 5-point stencil: out[i] = 0.1*x[i-2] + 0.2*x[i-1] + 0.4*x[i] + 0.2*x[i+1] + 0.1*x[i+2], reading 0 outside the array.",
            example_in: "[0.0, 10.0, 0.0, 0.0, 0.0]",
            example_out: "[2.0, 4.0, 2.0, 1.0, 0.0]",
            halo: 2,
            uses_aux: false,
            apply: |s, i| {
                let i = i as isize;
                0.1 * s.x(i - 2) + 0.2 * s.x(i - 1) + 0.4 * s.x(i) + 0.2 * s.x(i + 1) + 0.1 * s.x(i + 2)
            },
        }),
        Box::new(Stencil2D {
            variant: 2,
            fn_name: "jacobi2d5Point",
            description: "One 2-D Jacobi iteration: out[r][c] = (x[r][c] + x[r-1][c] + x[r+1][c] + x[r][c-1] + x[r][c+1]) / 5, reading 0 outside the grid.",
            example_in: "rows=2, cols=2, x=[5,5,5,5]",
            example_out: "[3, 3, 3, 3]",
            apply: |s, r, c| {
                let (r, c) = (r as isize, c as isize);
                (s.at(r, c) + s.at(r - 1, c) + s.at(r + 1, c) + s.at(r, c - 1) + s.at(r, c + 1))
                    / 5.0
            },
        }),
        Box::new(Stencil2D {
            variant: 3,
            fn_name: "maxFilter3x3",
            description: "3x3 maximum filter: out[r][c] is the maximum of x over the 3x3 window centered at (r, c), reading 0 outside the grid.",
            example_in: "rows=2, cols=2, x=[1,2,3,4]",
            example_out: "[4, 4, 4, 4]",
            apply: |s, r, c| {
                let (r, c) = (r as isize, c as isize);
                let mut m = f64::NEG_INFINITY;
                for dr in -1..=1 {
                    for dc in -1..=1 {
                        m = m.max(s.at(r + dr, c + dc));
                    }
                }
                m
            },
        }),
        Box::new(Stencil1D {
            variant: 4,
            fn_name: "waveStep1d",
            description: "One step of the 1-D wave equation with c=0.25: out[i] = 2*u[i] - uprev[i] + 0.25*(u[i-1] - 2*u[i] + u[i+1]), where u is x and uprev is the auxiliary array; reads are 0 outside the arrays.",
            example_in: "u=[0,1,0], uprev=[0,0,0]",
            example_out: "[0.25, 1.5, 0.25]",
            halo: 1,
            uses_aux: true,
            apply: |s, i| {
                let i = i as isize;
                2.0 * s.x(i) - s.aux(i) + 0.25 * (s.x(i - 1) - 2.0 * s.x(i) + s.x(i + 1))
            },
        }),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::tests_support::check_problem_all_models;

    #[test]
    fn stencil_problems_agree_across_models() {
        for p in problems() {
            check_problem_all_models(&*p, 2024, 600);
        }
    }

    #[test]
    fn jacobi1d_on_known_input() {
        let p = Stencil1D {
            variant: 0,
            fn_name: "",
            description: "",
            example_in: "",
            example_out: "",
            halo: 1,
            uses_aux: false,
            apply: |s, i| (s.x(i as isize - 1) + s.x(i as isize) + s.x(i as isize + 1)) / 3.0,
        };
        let out = Spec::serial(&p, &St1Input { x: vec![3.0, 3.0, 3.0], aux: vec![] });
        assert!(out.approx_eq(&Output::F64s(vec![2.0, 3.0, 2.0])));
    }

    #[test]
    fn halo_exchange_roundtrip() {
        use pcg_mpisim::{CostModel, World};
        let data: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let data_ref = &data;
        let out = World::new(4)
            .with_cost_model(CostModel::deterministic())
            .run(|comm| {
                let local =
                    comm.scatter_blocks(0, (comm.rank() == 0).then_some(&data_ref[..]), 100);
                let padded = exchange_halo(comm, &local, 2, 50);
                let range = block_range(100, comm.size(), comm.rank());
                // Interior halo slots must match the global array.
                if range.start >= 2 {
                    assert_eq!(padded[0], (range.start - 2) as f64);
                    assert_eq!(padded[1], (range.start - 1) as f64);
                }
                if range.end + 2 <= 100 {
                    assert_eq!(padded[padded.len() - 2], range.end as f64);
                    assert_eq!(padded[padded.len() - 1], (range.end + 1) as f64);
                }
            })
            .unwrap();
        let _ = out;
    }
}
