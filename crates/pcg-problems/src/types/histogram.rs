//! Histogram problems: bin values by a property (Table 1 "Histogram").
//!
//! All five variants share one generic shape: `items` logical items of
//! `stride` consecutive f64s each; a binning function maps an item to a
//! bucket and a weight function supplies its contribution (1.0 for
//! counting histograms). The parallel implementations demonstrate the
//! canonical strategies: privatized per-thread histograms merged under a
//! critical section (OpenMP), `ScatterView` (Kokkos), local histogram +
//! vector reduction (MPI), and global atomics (GPU).

use crate::framework::{Problem, Spec};
use crate::util;
use pcg_core::prompt::PromptSpec;
use pcg_core::{Output, ProblemId, ProblemType};
use pcg_gpusim::{Gpu, GpuBuffer, Launch};
use pcg_hybrid::HybridCtx;
use pcg_mpisim::{block_range, Comm, ReduceOp};
use pcg_patterns::{ExecSpace, ScatterView};
use pcg_shmem::{Pool, Schedule};

struct HistProblem {
    variant: usize,
    fn_name: &'static str,
    description: &'static str,
    example_in: &'static str,
    example_out: &'static str,
    nbins: usize,
    /// Consecutive f64s per logical item (2 for the 2-D histogram).
    stride: usize,
    /// Value range fed to the generator.
    gen_range: (f64, f64),
    bin: fn(&[f64]) -> usize,
    weight: fn(&[f64]) -> f64,
    /// Counting histograms report integers; weighted ones report f64s.
    integer_output: bool,
}

impl HistProblem {
    fn items(&self, input: &[f64]) -> usize {
        input.len() / self.stride
    }

    fn item<'a>(&self, input: &'a [f64], i: usize) -> &'a [f64] {
        &input[i * self.stride..(i + 1) * self.stride]
    }

    fn finish(&self, hist: Vec<f64>) -> Output {
        if self.integer_output {
            Output::I64s(hist.into_iter().map(|x| x.round() as i64).collect())
        } else {
            Output::F64s(hist)
        }
    }

    fn hist_range(&self, input: &[f64], lo: usize, hi: usize) -> Vec<f64> {
        let mut hist = vec![0.0; self.nbins];
        for i in lo..hi {
            let item = self.item(input, i);
            hist[(self.bin)(item)] += (self.weight)(item);
        }
        hist
    }
}

impl Spec for HistProblem {
    type Input = Vec<f64>;

    fn id(&self) -> ProblemId {
        ProblemId::new(ProblemType::Histogram, self.variant)
    }

    fn prompt(&self) -> PromptSpec {
        PromptSpec {
            fn_name: self.fn_name.into(),
            description: self.description.into(),
            examples: vec![(self.example_in.into(), self.example_out.into())],
            signature: "x: &[f64], hist: &mut [f64]".into(),
        }
    }

    fn default_size(&self) -> usize {
        1 << 16
    }

    fn generate(&self, seed: u64, size: usize) -> Vec<f64> {
        let mut r = util::rng(seed, Spec::id(self).index() as u64);
        util::rand_f64s(&mut r, size.max(self.stride), self.gen_range.0, self.gen_range.1)
    }

    fn input_bytes(&self, input: &Vec<f64>) -> usize {
        input.len() * 8
    }

    fn serial(&self, input: &Vec<f64>) -> Output {
        self.finish(self.hist_range(input, 0, self.items(input)))
    }

    fn solve_shmem(&self, input: &Vec<f64>, pool: &Pool) -> Output {
        // Privatized histograms: one per chunk, merged under a mutex
        // (the `#pragma omp critical` merge idiom).
        let merged = parking_lot::Mutex::new(vec![0.0f64; self.nbins]);
        pool.parallel_for_chunks(0..self.items(input), Schedule::Static { chunk: 0 }, |chunk| {
            let local = self.hist_range(input, chunk.start, chunk.end);
            let mut guard = merged.lock();
            for (m, l) in guard.iter_mut().zip(local) {
                *m += l;
            }
        });
        self.finish(merged.into_inner())
    }

    fn solve_patterns(&self, input: &Vec<f64>, space: &ExecSpace) -> Output {
        let scatter: ScatterView<f64> = ScatterView::new(self.nbins, space.concurrency());
        let items = self.items(input);
        let teams = (items / 1024).clamp(1, 64);
        space.parallel_for_teams(teams, |team| {
            let range = block_range(items, team.league_size(), team.league_rank());
            let mut access = scatter.access();
            for i in range {
                let item = self.item(input, i);
                access.add((self.bin)(item), (self.weight)(item));
            }
        });
        let mut hist = vec![0.0; self.nbins];
        scatter.contribute(&mut hist);
        self.finish(hist)
    }

    fn solve_mpi(&self, input: &Vec<f64>, comm: &Comm<'_>) -> Option<Output> {
        // Scatter whole items (stride-aligned blocks).
        let items = self.items(input);
        let chunks: Option<Vec<Vec<f64>>> = (comm.rank() == 0).then(|| {
            (0..comm.size())
                .map(|r| {
                    let rg = block_range(items, comm.size(), r);
                    input[rg.start * self.stride..rg.end * self.stride].to_vec()
                })
                .collect()
        });
        let local = comm.scatter(0, chunks);
        let hist = self.hist_range(&local, 0, local.len() / self.stride);
        comm.reduce(0, &hist, ReduceOp::Sum).map(|h| self.finish(h))
    }

    fn solve_hybrid(&self, input: &Vec<f64>, ctx: &HybridCtx<'_>) -> Option<Output> {
        let comm = ctx.comm();
        let items = self.items(input);
        let range = block_range(items, comm.size(), comm.rank());
        let nbins = self.nbins;
        let bin = self.bin;
        let weight = self.weight;
        let stride = self.stride;
        let local = ctx.par_reduce(
            range,
            vec![0.0f64; nbins],
            move |mut hist, i| {
                let item = &input[i * stride..(i + 1) * stride];
                hist[bin(item)] += weight(item);
                hist
            },
            |mut a, b| {
                for (x, y) in a.iter_mut().zip(b) {
                    *x += y;
                }
                a
            },
        );
        comm.reduce(0, &local, ReduceOp::Sum).map(|h| self.finish(h))
    }

    fn solve_gpu(&self, input: &Vec<f64>, gpu: &Gpu) -> Output {
        let x = GpuBuffer::from_slice(input);
        let hist = GpuBuffer::<f64>::zeroed(self.nbins);
        let stride = self.stride;
        let bin = self.bin;
        let weight = self.weight;
        let items = self.items(input);
        gpu.launch_each(Launch::over(items, 256), |t, ctx| {
            let i = t.global_id();
            if i < items {
                let mut item = [0.0f64; 2];
                for (k, slot) in item.iter_mut().enumerate().take(stride) {
                    *slot = ctx.read(&x, i * stride + k);
                }
                let item = &item[..stride];
                ctx.atomic_add(&hist, bin(item), weight(item));
            }
        });
        self.finish(hist.to_vec())
    }
}

/// The five histogram problems.
pub fn problems() -> Vec<Box<dyn Problem>> {
    vec![
        Box::new(HistProblem {
            variant: 0,
            fn_name: "fixedWidthHistogram",
            description: "Bin the elements of x into 16 equal-width buckets over [0, 16); values land in bucket floor(x).",
            example_in: "[0.5, 1.5, 1.7, 15.0]",
            example_out: "[1, 2, 0, ..., 1]",
            nbins: 16,
            stride: 1,
            gen_range: (0.0, 16.0),
            bin: |it| (it[0].floor() as usize).min(15),
            weight: |_| 1.0,
            integer_output: true,
        }),
        Box::new(HistProblem {
            variant: 1,
            fn_name: "logScaleHistogram",
            description: "Bin the elements of x by floor(log2(x + 1)) into 16 buckets.",
            example_in: "[0.0, 1.0, 3.0, 200.0]",
            example_out: "[1, 1, 1, 0, 0, 0, 0, 1, 0, ...]",
            nbins: 16,
            stride: 1,
            gen_range: (0.0, 60000.0),
            bin: |it| ((it[0] + 1.0).log2().floor() as usize).min(15),
            weight: |_| 1.0,
            integer_output: true,
        }),
        Box::new(HistProblem {
            variant: 2,
            fn_name: "histogram2d",
            description: "Bin consecutive (x, y) pairs into an 8x8 grid over [0,8)x[0,8), row-major output of 64 counts.",
            example_in: "[0.5, 0.5, 7.2, 0.1]",
            example_out: "[1, 0, ..., 1 at cell (7,0), ...]",
            nbins: 64,
            stride: 2,
            gen_range: (0.0, 8.0),
            bin: |it| {
                let r = (it[0].floor() as usize).min(7);
                let c = (it[1].floor() as usize).min(7);
                r * 8 + c
            },
            weight: |_| 1.0,
            integer_output: true,
        }),
        Box::new(HistProblem {
            variant: 3,
            fn_name: "weightedHistogram",
            description: "Accumulate |x| into 16 equal-width buckets over [0, 16) chosen by floor(|x| mod 16).",
            example_in: "[1.5, -1.25]",
            example_out: "[0.0, 2.75, 0.0, ...]",
            nbins: 16,
            stride: 1,
            gen_range: (-16.0, 16.0),
            bin: |it| ((it[0].abs() % 16.0).floor() as usize).min(15),
            weight: |it| it[0].abs(),
            integer_output: false,
        }),
        Box::new(HistProblem {
            variant: 4,
            fn_name: "byteClassHistogram",
            description: "Classify byte values (0-255) into 6 classes: digit (48-57), uppercase (65-90), lowercase (97-122), space (32), punctuation (33-47), other; count each class.",
            example_in: "[48.0, 65.0, 97.0, 32.0, 33.0, 0.0]",
            example_out: "[1, 1, 1, 1, 1, 1]",
            nbins: 6,
            stride: 1,
            gen_range: (0.0, 256.0),
            bin: |it| {
                let b = it[0] as u32;
                match b {
                    48..=57 => 0,
                    65..=90 => 1,
                    97..=122 => 2,
                    32 => 3,
                    33..=47 => 4,
                    _ => 5,
                }
            },
            weight: |_| 1.0,
            integer_output: true,
        }),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::tests_support::check_problem_all_models;

    #[test]
    fn histogram_problems_agree_across_models() {
        for p in problems() {
            check_problem_all_models(&*p, 321, 1000);
        }
    }

    #[test]
    fn counts_sum_to_items() {
        for p in problems() {
            let base = p.run_baseline(11, 640);
            if let Output::I64s(hist) = base.output {
                let stride = if p.prompt().fn_name == "histogram2d" { 2 } else { 1 };
                assert_eq!(hist.iter().sum::<i64>(), 640 / stride, "{}", p.id());
            }
        }
    }
}
