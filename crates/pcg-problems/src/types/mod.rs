//! The twelve problem-type modules (paper Table 1), five problems each.

pub mod dense;
pub mod fft;
pub mod geometry;
pub mod graph;
pub mod histogram;
pub mod reduce;
pub mod scan;
pub mod search;
pub mod sort;
pub mod sparse;
pub mod stencil;
pub mod transform;
