//! Graph problems (Table 1 "Graph"): component counting, degree
//! statistics, triangle counting, BFS depth, and partition-crossing
//! edges on undirected CSR graphs.
//!
//! Component counting uses min-label propagation (the parallel-friendly
//! algorithm) against a sequential BFS oracle; BFS depth uses
//! level-synchronous frontier expansion.

use crate::framework::{Problem, Spec};
use crate::util::{self, Graph};
use pcg_core::prompt::PromptSpec;
use pcg_core::{Output, ProblemId, ProblemType};
use pcg_gpusim::{Gpu, GpuBuffer, Launch};
use pcg_hybrid::HybridCtx;
use pcg_mpisim::{block_range, Comm, ReduceOp};
use pcg_patterns::{ExecSpace, View};
use pcg_shmem::{Pool, Schedule, UnsafeSlice};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};

fn gen_graph(variant: usize, seed: u64, size: usize) -> Graph {
    let mut r = util::rng(seed, 700 + variant as u64);
    Graph::random(&mut r, size.max(16), 6)
}

fn mk_prompt(fn_name: &str, description: &str, ex_in: &str, ex_out: &str) -> PromptSpec {
    PromptSpec {
        fn_name: fn_name.into(),
        description: description.into(),
        examples: vec![(ex_in.into(), ex_out.into())],
        signature: "offsets: &[usize], neighbors: &[u32] -> i64".into(),
    }
}

// ----------------------------------------------------------------------
// Variant 0: connected component count (min-label propagation)
// ----------------------------------------------------------------------

struct ComponentCount;

impl ComponentCount {
    /// One label-propagation sweep on the host; returns whether any
    /// label changed. `labels` is updated in place (Jacobi-style from a
    /// snapshot copy, so sweeps are deterministic). Test-only oracle
    /// used to validate the parallel propagation implementations.
    #[cfg(test)]
    fn sweep(g: &Graph, labels: &mut [u32]) -> bool {
        let prev = labels.to_vec();
        let mut changed = false;
        for v in 0..g.n {
            let mut m = prev[v];
            for &w in g.neighbors_of(v) {
                m = m.min(prev[w as usize]);
            }
            if m != labels[v] {
                labels[v] = m;
                changed = true;
            }
        }
        changed
    }

    fn count_roots(labels: &[u32]) -> i64 {
        labels.iter().enumerate().filter(|&(v, &l)| l == v as u32).count() as i64
    }
}

impl Spec for ComponentCount {
    type Input = Graph;

    fn id(&self) -> ProblemId {
        ProblemId::new(ProblemType::Graph, 0)
    }

    fn prompt(&self) -> PromptSpec {
        mk_prompt(
            "componentCount",
            "Count the connected components of an undirected graph given in CSR adjacency form.",
            "two triangles and an isolated vertex",
            "3",
        )
    }

    fn default_size(&self) -> usize {
        1 << 14
    }

    fn generate(&self, seed: u64, size: usize) -> Graph {
        gen_graph(0, seed, size)
    }

    fn input_bytes(&self, input: &Graph) -> usize {
        input.bytes()
    }

    fn serial(&self, input: &Graph) -> Output {
        Output::I64(input.component_count() as i64)
    }

    fn solve_shmem(&self, input: &Graph, pool: &Pool) -> Output {
        let labels: Vec<AtomicU32> = (0..input.n).map(|v| AtomicU32::new(v as u32)).collect();
        loop {
            let changed = AtomicBool::new(false);
            pool.parallel_for(0..input.n, Schedule::Static { chunk: 0 }, |v| {
                let mut m = labels[v].load(Ordering::Relaxed);
                for &w in input.neighbors_of(v) {
                    m = m.min(labels[w as usize].load(Ordering::Relaxed));
                }
                if m < labels[v].load(Ordering::Relaxed) {
                    labels[v].store(m, Ordering::Relaxed);
                    changed.store(true, Ordering::Relaxed);
                }
            });
            if !changed.load(Ordering::Relaxed) {
                break;
            }
        }
        let final_labels: Vec<u32> = labels.iter().map(|l| l.load(Ordering::Relaxed)).collect();
        Output::I64(ComponentCount::count_roots(&final_labels))
    }

    fn solve_patterns(&self, input: &Graph, space: &ExecSpace) -> Output {
        let labels: View<u32> =
            View::from_slice("labels", &(0..input.n as u32).collect::<Vec<_>>());
        loop {
            let next: View<u32> = View::from_slice("next", &labels.to_vec());
            let changed = AtomicBool::new(false);
            let l2 = labels.clone();
            let n2 = next.clone();
            space.parallel_for(input.n, |v| {
                let mut m = l2.get(v);
                for &w in input.neighbors_of(v) {
                    m = m.min(l2.get(w as usize));
                }
                if m < l2.get(v) {
                    unsafe { n2.set(v, m) };
                    changed.store(true, Ordering::Relaxed);
                }
            });
            labels.copy_from(&next.to_vec());
            if !changed.load(Ordering::Relaxed) {
                break;
            }
        }
        let final_labels = labels.to_vec();
        Output::I64(ComponentCount::count_roots(&final_labels))
    }

    fn solve_mpi(&self, input: &Graph, comm: &Comm<'_>) -> Option<Output> {
        // Vertex-block ownership; labels allgathered each sweep (the
        // standard BSP label propagation).
        let rg = block_range(input.n, comm.size(), comm.rank());
        let mut labels: Vec<u32> = (0..input.n as u32).collect();
        loop {
            let mut local: Vec<u32> = Vec::with_capacity(rg.len());
            let mut changed = 0i64;
            for v in rg.clone() {
                let mut m = labels[v];
                for &w in input.neighbors_of(v) {
                    m = m.min(labels[w as usize]);
                }
                if m < labels[v] {
                    changed = 1;
                }
                local.push(m);
            }
            labels = comm.allgather(&local);
            if comm.allreduce_one(changed, ReduceOp::Max) == 0 {
                break;
            }
        }
        if comm.rank() == 0 {
            Some(Output::I64(ComponentCount::count_roots(&labels)))
        } else {
            None
        }
    }

    fn solve_hybrid(&self, input: &Graph, ctx: &HybridCtx<'_>) -> Option<Output> {
        let comm = ctx.comm();
        let rg = block_range(input.n, comm.size(), comm.rank());
        let mut labels: Vec<u32> = (0..input.n as u32).collect();
        loop {
            let mut local = vec![0u32; rg.len()];
            let changed = AtomicBool::new(false);
            let lo = rg.start;
            {
                let slice = UnsafeSlice::new(&mut local);
                let labels_ref = &labels;
                let changed_ref = &changed;
                ctx.par_for(0..rg.len(), |j| {
                    let v = lo + j;
                    let mut m = labels_ref[v];
                    for &w in input.neighbors_of(v) {
                        m = m.min(labels_ref[w as usize]);
                    }
                    if m < labels_ref[v] {
                        changed_ref.store(true, Ordering::Relaxed);
                    }
                    unsafe { slice.write(j, m) };
                });
            }
            labels = comm.allgather(&local);
            let flag = i64::from(changed.load(Ordering::Relaxed));
            if comm.allreduce_one(flag, ReduceOp::Max) == 0 {
                break;
            }
        }
        if comm.rank() == 0 {
            Some(Output::I64(ComponentCount::count_roots(&labels)))
        } else {
            None
        }
    }

    fn solve_gpu(&self, input: &Graph, gpu: &Gpu) -> Output {
        let neighbors = GpuBuffer::from_slice(&input.neighbors);
        let labels = GpuBuffer::from_slice(&(0..input.n as u32).collect::<Vec<_>>());
        let changed = GpuBuffer::<u32>::zeroed(1);
        let offsets = input.offsets.clone();
        let n = input.n;
        loop {
            changed.store(0, 0);
            let snapshot = GpuBuffer::from_slice(&labels.to_vec());
            gpu.launch_each(Launch::over(n, 128), |t, ctx| {
                let v = t.global_id();
                if v < n {
                    let mut m = ctx.read(&snapshot, v);
                    for e in offsets[v]..offsets[v + 1] {
                        let w = ctx.read(&neighbors, e) as usize;
                        m = m.min(ctx.read(&snapshot, w));
                    }
                    if m < ctx.read(&snapshot, v) {
                        ctx.write(&labels, v, m);
                        ctx.atomic_max(&changed, 0, 1);
                    }
                }
            });
            if changed.load(0) == 0 {
                break;
            }
        }
        let final_labels = labels.to_vec();
        Output::I64(ComponentCount::count_roots(&final_labels))
    }
}

// ----------------------------------------------------------------------
// Variants 1, 2, 4: per-vertex reductions
// ----------------------------------------------------------------------

/// Degree histogram, triangle count, and crossing edges all reduce a
/// per-vertex contribution; histogram returns a vector.
struct VertexReduce {
    variant: usize,
    fn_name: &'static str,
    description: &'static str,
    example_in: &'static str,
    example_out: &'static str,
    /// Per-vertex integer contribution (scalar variants).
    contrib: fn(&Graph, usize) -> i64,
    /// Histogram bin per vertex, or `None` for scalar output.
    hist_bins: Option<usize>,
}

impl VertexReduce {
    fn hist_range(&self, g: &Graph, lo: usize, hi: usize, bins: usize) -> Vec<i64> {
        let mut hist = vec![0i64; bins];
        for v in lo..hi {
            hist[g.degree(v).min(bins - 1)] += 1;
        }
        hist
    }
}

impl Spec for VertexReduce {
    type Input = Graph;

    fn id(&self) -> ProblemId {
        ProblemId::new(ProblemType::Graph, self.variant)
    }

    fn prompt(&self) -> PromptSpec {
        mk_prompt(self.fn_name, self.description, self.example_in, self.example_out)
    }

    fn default_size(&self) -> usize {
        1 << 14
    }

    fn generate(&self, seed: u64, size: usize) -> Graph {
        gen_graph(self.variant, seed, size)
    }

    fn input_bytes(&self, input: &Graph) -> usize {
        input.bytes()
    }

    fn serial(&self, input: &Graph) -> Output {
        match self.hist_bins {
            Some(bins) => Output::I64s(self.hist_range(input, 0, input.n, bins)),
            None => Output::I64((0..input.n).map(|v| (self.contrib)(input, v)).sum()),
        }
    }

    fn solve_shmem(&self, input: &Graph, pool: &Pool) -> Output {
        match self.hist_bins {
            Some(bins) => {
                let merged = parking_lot::Mutex::new(vec![0i64; bins]);
                pool.parallel_for_chunks(0..input.n, Schedule::Static { chunk: 0 }, |chunk| {
                    let local = self.hist_range(input, chunk.start, chunk.end, bins);
                    let mut guard = merged.lock();
                    for (m, l) in guard.iter_mut().zip(local) {
                        *m += l;
                    }
                });
                Output::I64s(merged.into_inner())
            }
            None => {
                let total = pool.parallel_for_reduce(
                    0..input.n,
                    0i64,
                    |acc, v| acc + (self.contrib)(input, v),
                    |a, b| a + b,
                );
                Output::I64(total)
            }
        }
    }

    fn solve_patterns(&self, input: &Graph, space: &ExecSpace) -> Output {
        match self.hist_bins {
            Some(bins) => {
                let scatter: pcg_patterns::ScatterView<i64> =
                    pcg_patterns::ScatterView::new(bins, space.concurrency());
                let teams = 4 * space.concurrency();
                space.parallel_for_teams(teams, |team| {
                    let rg = block_range(input.n, team.league_size(), team.league_rank());
                    let mut acc = scatter.access();
                    for v in rg {
                        acc.add(input.degree(v).min(bins - 1), 1);
                    }
                });
                let mut hist = vec![0i64; bins];
                scatter.contribute(&mut hist);
                Output::I64s(hist)
            }
            None => {
                let total = space.parallel_reduce(
                    input.n,
                    0i64,
                    |v| (self.contrib)(input, v),
                    |a, b| a + b,
                );
                Output::I64(total)
            }
        }
    }

    fn solve_mpi(&self, input: &Graph, comm: &Comm<'_>) -> Option<Output> {
        let rg = block_range(input.n, comm.size(), comm.rank());
        match self.hist_bins {
            Some(bins) => {
                let local = self.hist_range(input, rg.start, rg.end, bins);
                comm.reduce(0, &local, ReduceOp::Sum).map(Output::I64s)
            }
            None => {
                let local: i64 = rg.map(|v| (self.contrib)(input, v)).sum();
                comm.reduce_one(0, local, ReduceOp::Sum).map(Output::I64)
            }
        }
    }

    fn solve_hybrid(&self, input: &Graph, ctx: &HybridCtx<'_>) -> Option<Output> {
        let comm = ctx.comm();
        let rg = block_range(input.n, comm.size(), comm.rank());
        match self.hist_bins {
            Some(bins) => {
                let local = ctx.par_reduce(
                    rg,
                    vec![0i64; bins],
                    move |mut h, v| {
                        h[input.degree(v).min(bins - 1)] += 1;
                        h
                    },
                    |mut a, b| {
                        for (x, y) in a.iter_mut().zip(b) {
                            *x += y;
                        }
                        a
                    },
                );
                comm.reduce(0, &local, ReduceOp::Sum).map(Output::I64s)
            }
            None => {
                let contrib = self.contrib;
                let local =
                    ctx.par_reduce(rg, 0i64, move |acc, v| acc + contrib(input, v), |a, b| a + b);
                comm.reduce_one(0, local, ReduceOp::Sum).map(Output::I64)
            }
        }
    }

    fn solve_gpu(&self, input: &Graph, gpu: &Gpu) -> Output {
        let neighbors = GpuBuffer::from_slice(&input.neighbors);
        let offsets = input.offsets.clone();
        let n = input.n;
        match self.hist_bins {
            Some(bins) => {
                let hist = GpuBuffer::<i64>::zeroed(bins);
                gpu.launch_each(Launch::over(n, 128), |t, ctx| {
                    let v = t.global_id();
                    if v < n {
                        // Meter a representative neighbor-list touch.
                        if offsets[v + 1] > offsets[v] {
                            let _ = ctx.read(&neighbors, offsets[v]);
                        }
                        let deg = (offsets[v + 1] - offsets[v]).min(bins - 1);
                        ctx.atomic_add(&hist, deg, 1);
                    }
                });
                Output::I64s(hist.to_vec())
            }
            None => {
                let acc = GpuBuffer::<i64>::zeroed(1);
                let contrib = self.contrib;
                let g = input.clone();
                gpu.launch_each(Launch::over(n, 128), |t, ctx| {
                    let v = t.global_id();
                    if v < n {
                        // Meter the neighbor reads, compute on the host
                        // mirror (the formula needs adjacency lookups).
                        for e in offsets[v]..offsets[v + 1] {
                            let _ = ctx.read(&neighbors, e);
                        }
                        let c = contrib(&g, v);
                        if c != 0 {
                            ctx.atomic_add(&acc, 0, c);
                        }
                    }
                });
                Output::I64(acc.load(0))
            }
        }
    }
}

/// Triangle contribution of vertex `v`: ordered triples `v < u < w`.
fn triangles_at(g: &Graph, v: usize) -> i64 {
    let mut count = 0i64;
    let nv = g.neighbors_of(v);
    for (a, &u) in nv.iter().enumerate() {
        if (u as usize) <= v {
            continue;
        }
        for &w in &nv[a + 1..] {
            if (w as usize) > u as usize && g.neighbors_of(u as usize).binary_search(&w).is_ok() {
                count += 1;
            }
        }
    }
    count
}

// ----------------------------------------------------------------------
// Variant 3: BFS depth of a target vertex
// ----------------------------------------------------------------------

struct BfsDepth;

impl BfsDepth {
    fn target(n: usize) -> usize {
        (n / 2 + 17).min(n - 1)
    }

    fn serial_depth(g: &Graph, src: usize, dst: usize) -> i64 {
        if src == dst {
            return 0;
        }
        let mut depth = vec![-1i64; g.n];
        depth[src] = 0;
        let mut frontier = vec![src as u32];
        let mut level = 0i64;
        while !frontier.is_empty() {
            level += 1;
            let mut next = Vec::new();
            for &v in &frontier {
                for &w in g.neighbors_of(v as usize) {
                    if depth[w as usize] < 0 {
                        depth[w as usize] = level;
                        if w as usize == dst {
                            return level;
                        }
                        next.push(w);
                    }
                }
            }
            frontier = next;
        }
        -1
    }
}

impl Spec for BfsDepth {
    type Input = Graph;

    fn id(&self) -> ProblemId {
        ProblemId::new(ProblemType::Graph, 3)
    }

    fn prompt(&self) -> PromptSpec {
        mk_prompt(
            "bfsDepthOfTarget",
            "Return the breadth-first-search distance from vertex 0 to the target vertex (n/2 + 17), or -1 if unreachable.",
            "a path graph 0-1-2, target 2",
            "2",
        )
    }

    fn default_size(&self) -> usize {
        1 << 14
    }

    fn generate(&self, seed: u64, size: usize) -> Graph {
        gen_graph(3, seed, size)
    }

    fn input_bytes(&self, input: &Graph) -> usize {
        input.bytes()
    }

    fn serial(&self, input: &Graph) -> Output {
        Output::I64(BfsDepth::serial_depth(input, 0, BfsDepth::target(input.n)))
    }

    fn solve_shmem(&self, input: &Graph, pool: &Pool) -> Output {
        // Level-synchronous BFS with atomic visited flags; the frontier
        // expansion is the parallel loop.
        let target = BfsDepth::target(input.n);
        if target == 0 {
            return Output::I64(0);
        }
        let visited: Vec<AtomicBool> = (0..input.n).map(|_| AtomicBool::new(false)).collect();
        visited[0].store(true, Ordering::Relaxed);
        let mut frontier = vec![0u32];
        let mut level = 0i64;
        while !frontier.is_empty() {
            level += 1;
            let next = parking_lot::Mutex::new(Vec::new());
            let hit = AtomicBool::new(false);
            pool.parallel_for_chunks(
                0..frontier.len(),
                Schedule::Dynamic { chunk: 16 },
                |chunk| {
                    let mut local = Vec::new();
                    for &v in &frontier[chunk] {
                        for &w in input.neighbors_of(v as usize) {
                            if !visited[w as usize].swap(true, Ordering::Relaxed) {
                                if w as usize == target {
                                    hit.store(true, Ordering::Relaxed);
                                }
                                local.push(w);
                            }
                        }
                    }
                    next.lock().extend(local);
                },
            );
            if hit.load(Ordering::Relaxed) {
                return Output::I64(level);
            }
            frontier = next.into_inner();
        }
        Output::I64(-1)
    }

    fn solve_patterns(&self, input: &Graph, space: &ExecSpace) -> Output {
        let target = BfsDepth::target(input.n);
        if target == 0 {
            return Output::I64(0);
        }
        let visited: Vec<AtomicBool> = (0..input.n).map(|_| AtomicBool::new(false)).collect();
        visited[0].store(true, Ordering::Relaxed);
        let mut frontier = vec![0u32];
        let mut level = 0i64;
        while !frontier.is_empty() {
            level += 1;
            let next = parking_lot::Mutex::new(Vec::new());
            let hit = AtomicBool::new(false);
            let frontier_ref = &frontier;
            let teams = frontier.len().div_ceil(16).max(1);
            space.parallel_for_teams(teams, |team| {
                let rg = block_range(frontier_ref.len(), team.league_size(), team.league_rank());
                let mut local = Vec::new();
                for &v in &frontier_ref[rg] {
                    for &w in input.neighbors_of(v as usize) {
                        if !visited[w as usize].swap(true, Ordering::Relaxed) {
                            if w as usize == target {
                                hit.store(true, Ordering::Relaxed);
                            }
                            local.push(w);
                        }
                    }
                }
                next.lock().extend(local);
            });
            if hit.load(Ordering::Relaxed) {
                return Output::I64(level);
            }
            frontier = next.into_inner();
        }
        Output::I64(-1)
    }

    fn solve_mpi(&self, input: &Graph, comm: &Comm<'_>) -> Option<Output> {
        // Replicated-graph BSP BFS: each rank expands a slice of the
        // frontier, next frontiers are allgathered and deduplicated
        // against a replicated visited set.
        let target = BfsDepth::target(input.n);
        let mut visited = vec![false; input.n];
        visited[0] = true;
        let mut frontier = vec![0u32];
        let mut level = 0i64;
        while !frontier.is_empty() {
            level += 1;
            let rg = block_range(frontier.len(), comm.size(), comm.rank());
            let mut local = Vec::new();
            for &v in &frontier[rg] {
                for &w in input.neighbors_of(v as usize) {
                    if !visited[w as usize] {
                        local.push(w);
                    }
                }
            }
            let mut merged = comm.allgather(&local);
            merged.sort_unstable();
            merged.dedup();
            let mut hit = false;
            let mut next = Vec::with_capacity(merged.len());
            for w in merged {
                if !visited[w as usize] {
                    visited[w as usize] = true;
                    if w as usize == target {
                        hit = true;
                    }
                    next.push(w);
                }
            }
            if hit {
                return (comm.rank() == 0).then_some(Output::I64(level));
            }
            frontier = next;
        }
        (comm.rank() == 0).then_some(Output::I64(-1))
    }

    fn solve_hybrid(&self, input: &Graph, ctx: &HybridCtx<'_>) -> Option<Output> {
        // Rank-level BSP identical to MPI; the frontier slice expansion
        // is additionally threaded.
        let comm = ctx.comm();
        let target = BfsDepth::target(input.n);
        let mut visited = vec![false; input.n];
        visited[0] = true;
        let mut frontier = vec![0u32];
        let mut level = 0i64;
        while !frontier.is_empty() {
            level += 1;
            let rg = block_range(frontier.len(), comm.size(), comm.rank());
            let frontier_slice = &frontier[rg];
            let visited_ref = &visited;
            let local = ctx.par_reduce(
                0..frontier_slice.len(),
                Vec::new(),
                move |mut acc: Vec<u32>, j| {
                    let v = frontier_slice[j];
                    for &w in input.neighbors_of(v as usize) {
                        if !visited_ref[w as usize] {
                            acc.push(w);
                        }
                    }
                    acc
                },
                |mut a, b| {
                    a.extend(b);
                    a
                },
            );
            let mut merged = comm.allgather(&local);
            merged.sort_unstable();
            merged.dedup();
            let mut hit = false;
            let mut next = Vec::with_capacity(merged.len());
            for w in merged {
                if !visited[w as usize] {
                    visited[w as usize] = true;
                    if w as usize == target {
                        hit = true;
                    }
                    next.push(w);
                }
            }
            if hit {
                return (comm.rank() == 0).then_some(Output::I64(level));
            }
            frontier = next;
        }
        (comm.rank() == 0).then_some(Output::I64(-1))
    }

    fn solve_gpu(&self, input: &Graph, gpu: &Gpu) -> Output {
        // Depth-array BFS: one kernel per level marks depth[level+1]
        // from depth[level] (the standard GPU BFS without frontier
        // compaction).
        let target = BfsDepth::target(input.n);
        let n = input.n;
        let neighbors = GpuBuffer::from_slice(&input.neighbors);
        let depth = GpuBuffer::from_slice(
            &(0..n).map(|v| if v == 0 { 0i64 } else { -1 }).collect::<Vec<_>>(),
        );
        let offsets = input.offsets.clone();
        let progressed = GpuBuffer::<u32>::zeroed(1);
        let mut level = 0i64;
        loop {
            if depth.load(target) >= 0 {
                return Output::I64(depth.load(target));
            }
            progressed.store(0, 0);
            let cur = level;
            gpu.launch_each(Launch::over(n, 128), |t, ctx| {
                let v = t.global_id();
                if v < n && ctx.read(&depth, v) == cur {
                    for e in offsets[v]..offsets[v + 1] {
                        let w = ctx.read(&neighbors, e) as usize;
                        if ctx.read(&depth, w) < 0 {
                            ctx.write(&depth, w, cur + 1);
                            ctx.atomic_max(&progressed, 0, 1);
                        }
                    }
                }
            });
            if progressed.load(0) == 0 {
                return Output::I64(-1);
            }
            level += 1;
        }
    }
}

/// The five graph problems.
pub fn problems() -> Vec<Box<dyn Problem>> {
    vec![
        Box::new(ComponentCount),
        Box::new(VertexReduce {
            variant: 1,
            fn_name: "degreeHistogram",
            description: "Compute a histogram of vertex degrees with 16 bins (degrees >= 15 land in the last bin).",
            example_in: "a triangle",
            example_out: "[0, 0, 3, 0, ...]",
            contrib: |_, _| 0,
            hist_bins: Some(16),
        }),
        Box::new(VertexReduce {
            variant: 2,
            fn_name: "triangleCount",
            description: "Count the number of triangles (unordered vertex triples with all three edges present) in the undirected graph.",
            example_in: "a triangle plus a dangling edge",
            example_out: "1",
            contrib: triangles_at,
            hist_bins: None,
        }),
        Box::new(BfsDepth),
        Box::new(VertexReduce {
            variant: 4,
            fn_name: "crossingEdges",
            description: "Count edges with one endpoint in the first half of the vertices (v < n/2) and the other in the second half.",
            example_in: "edges {0-2, 1-3, 0-1} with n=4",
            example_out: "2",
            contrib: |g, v| {
                if v < g.n / 2 {
                    g.neighbors_of(v).iter().filter(|&&w| (w as usize) >= g.n / 2).count() as i64
                } else {
                    0
                }
            },
            hist_bins: None,
        }),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::tests_support::check_problem_all_models;

    #[test]
    fn graph_problems_agree_across_models() {
        for p in problems() {
            check_problem_all_models(&*p, 1313, 512);
        }
    }

    #[test]
    fn triangle_count_on_known_graph() {
        // Triangle 0-1-2 plus pendant edge 2-3.
        let g = Graph {
            n: 4,
            offsets: vec![0, 2, 4, 7, 8],
            neighbors: vec![1, 2, 0, 2, 0, 1, 3, 2],
        };
        let total: i64 = (0..g.n).map(|v| triangles_at(&g, v)).sum();
        assert_eq!(total, 1);
    }

    #[test]
    fn bfs_depth_on_path() {
        let g = Graph { n: 3, offsets: vec![0, 1, 3, 4], neighbors: vec![1, 0, 2, 1] };
        assert_eq!(BfsDepth::serial_depth(&g, 0, 2), 2);
        assert_eq!(BfsDepth::serial_depth(&g, 0, 0), 0);
    }

    #[test]
    fn label_propagation_matches_bfs_count() {
        let mut r = util::rng(5, 0);
        let g = Graph::random(&mut r, 500, 5);
        let mut labels: Vec<u32> = (0..g.n as u32).collect();
        while ComponentCount::sweep(&g, &mut labels) {}
        assert_eq!(
            ComponentCount::count_roots(&labels),
            g.component_count() as i64
        );
    }
}
