//! Reduce problems: reductions over an array (Table 1 "Reduce").
//!
//! Four variants share a pair-accumulator shape `(f64, f64)` whose
//! components reduce with standard operators (so the MPI path can use
//! real collectives); the fifth is a two-pass reduction (max, then a
//! count against the max), exercising reduce-then-reuse structure.

use crate::framework::{Problem, Spec};
use crate::util;
use pcg_core::prompt::PromptSpec;
use pcg_core::{Output, ProblemId, ProblemType};
use pcg_gpusim::{BlockCtx, BlockKernel, Gpu, GpuBuffer, Launch};
use pcg_hybrid::HybridCtx;
use pcg_mpisim::{block_range, Comm, ReduceOp};
use pcg_patterns::{ExecSpace, View};
use pcg_shmem::Pool;

type Pair = (f64, f64);

struct PairReduceProblem {
    variant: usize,
    fn_name: &'static str,
    description: &'static str,
    example_in: &'static str,
    example_out: &'static str,
    init: Pair,
    fold: fn(Pair, f64) -> Pair,
    combine: fn(Pair, Pair) -> Pair,
    /// Per-component MPI reduction operators matching `combine`.
    ops: (ReduceOp, ReduceOp),
    finish: fn(Pair, usize) -> f64,
}

impl PairReduceProblem {
    fn fold_slice(&self, xs: &[f64]) -> Pair {
        xs.iter().fold(self.init, |acc, &x| (self.fold)(acc, x))
    }
}

impl Spec for PairReduceProblem {
    type Input = Vec<f64>;

    fn id(&self) -> ProblemId {
        ProblemId::new(ProblemType::Reduce, self.variant)
    }

    fn prompt(&self) -> PromptSpec {
        PromptSpec {
            fn_name: self.fn_name.into(),
            description: self.description.into(),
            examples: vec![(self.example_in.into(), self.example_out.into())],
            signature: "x: &[f64] -> f64".into(),
        }
    }

    fn default_size(&self) -> usize {
        1 << 16
    }

    fn generate(&self, seed: u64, size: usize) -> Vec<f64> {
        let mut r = util::rng(seed, Spec::id(self).index() as u64);
        util::rand_f64s(&mut r, size, -8.0, 8.0)
    }

    fn input_bytes(&self, input: &Vec<f64>) -> usize {
        input.len() * 8
    }

    fn serial(&self, input: &Vec<f64>) -> Output {
        Output::F64((self.finish)(self.fold_slice(input), input.len()))
    }

    fn solve_shmem(&self, input: &Vec<f64>, pool: &Pool) -> Output {
        let pair = pool.parallel_for_reduce(
            0..input.len(),
            self.init,
            |acc, i| (self.fold)(acc, input[i]),
            |a, b| (self.combine)(a, b),
        );
        Output::F64((self.finish)(pair, input.len()))
    }

    fn solve_patterns(&self, input: &Vec<f64>, space: &ExecSpace) -> Output {
        let x = View::from_slice("x", input);
        let pair = space.parallel_reduce(
            input.len(),
            self.init,
            |i| (self.fold)(self.init, x.get(i)),
            |a, b| (self.combine)(a, b),
        );
        Output::F64((self.finish)(pair, input.len()))
    }

    fn solve_mpi(&self, input: &Vec<f64>, comm: &Comm<'_>) -> Option<Output> {
        let local = comm.scatter_blocks(
            0,
            (comm.rank() == 0).then_some(input.as_slice()),
            input.len(),
        );
        let pair = self.fold_slice(&local);
        let a = comm.reduce_one(0, pair.0, self.ops.0);
        let b = comm.reduce_one(0, pair.1, self.ops.1);
        match (a, b) {
            (Some(a), Some(b)) => Some(Output::F64((self.finish)((a, b), input.len()))),
            _ => None,
        }
    }

    fn solve_hybrid(&self, input: &Vec<f64>, ctx: &HybridCtx<'_>) -> Option<Output> {
        let comm = ctx.comm();
        let range = block_range(input.len(), comm.size(), comm.rank());
        let fold = self.fold;
        let combine = self.combine;
        let pair = ctx.par_reduce(
            range,
            self.init,
            move |acc, i| fold(acc, input[i]),
            combine,
        );
        let a = comm.reduce_one(0, pair.0, self.ops.0);
        let b = comm.reduce_one(0, pair.1, self.ops.1);
        match (a, b) {
            (Some(a), Some(b)) => Some(Output::F64((self.finish)((a, b), input.len()))),
            _ => None,
        }
    }

    fn solve_gpu(&self, input: &Vec<f64>, gpu: &Gpu) -> Output {
        let pair = gpu_pair_reduce(gpu, input, self.init, self.fold, self.combine, self.ops);
        Output::F64((self.finish)(pair, input.len()))
    }
}

/// The canonical efficient GPU reduction: a grid-stride per-thread fold
/// into shared memory, a `__syncthreads`-separated tree reduction per
/// block (phase machine), and one atomic per block and component.
pub(crate) fn gpu_pair_reduce(
    gpu: &Gpu,
    input: &[f64],
    init: Pair,
    fold: fn(Pair, f64) -> Pair,
    combine: fn(Pair, Pair) -> Pair,
    ops: (ReduceOp, ReduceOp),
) -> Pair {
    const BLOCK: u32 = 256;
    struct ReduceKernel {
        x: GpuBuffer<f64>,
        acc: GpuBuffer<f64>,
        init: Pair,
        fold: fn(Pair, f64) -> Pair,
        combine: fn(Pair, Pair) -> Pair,
        ops: (ReduceOp, ReduceOp),
    }
    impl ReduceKernel {
        fn get(shared: &pcg_gpusim::SharedMem, tid: usize) -> Pair {
            (shared.get(2 * tid), shared.get(2 * tid + 1))
        }
        fn set(shared: &pcg_gpusim::SharedMem, tid: usize, v: Pair) {
            shared.set(2 * tid, v.0);
            shared.set(2 * tid + 1, v.1);
        }
    }
    impl BlockKernel for ReduceKernel {
        fn phases(&self, _cfg: &Launch) -> usize {
            1 + BLOCK.trailing_zeros() as usize + 1
        }
        fn phase(&self, phase: usize, blk: &BlockCtx) {
            let bd = blk.block_dim() as usize;
            let shared = blk.shared();
            if phase == 0 {
                // Grid-stride fold into this thread's shared slot.
                blk.for_each_thread(|t| {
                    let mut pair = self.init;
                    let mut i = t.global_id();
                    while i < self.x.len() {
                        pair = (self.fold)(pair, blk.read(&self.x, i));
                        i += t.grid_threads();
                    }
                    ReduceKernel::set(shared, t.thread_idx as usize, pair);
                });
            } else if (1usize << phase) <= bd {
                // Tree step: threads below `step` combine with their
                // partner slot (written in earlier phases only).
                let step = bd >> phase;
                blk.for_each_thread(|t| {
                    let tid = t.thread_idx as usize;
                    if tid < step {
                        let merged = (self.combine)(
                            ReduceKernel::get(shared, tid),
                            ReduceKernel::get(shared, tid + step),
                        );
                        ReduceKernel::set(shared, tid, merged);
                    }
                });
            } else {
                // One atomic per block and component.
                blk.for_each_thread(|t| {
                    if t.thread_idx == 0 {
                        let total = ReduceKernel::get(shared, 0);
                        atomic_fold(blk, &self.acc, 0, self.ops.0, total.0);
                        atomic_fold(blk, &self.acc, 1, self.ops.1, total.1);
                    }
                });
            }
        }
    }
    let kernel = ReduceKernel {
        x: GpuBuffer::from_slice(input),
        acc: GpuBuffer::from_slice(&[atomic_seed(ops.0, init.0), atomic_seed(ops.1, init.1)]),
        init,
        fold,
        combine,
        ops,
    };
    // Cap the grid so the grid-stride loop keeps blocks busy.
    let cfg = Launch::over(input.len().min(1 << 15), BLOCK).with_shared(2 * BLOCK as usize);
    gpu.launch(cfg, &kernel);
    (
        atomic_unseed(ops.0, kernel.acc.load(0)),
        atomic_unseed(ops.1, kernel.acc.load(1)),
    )
}

/// Encode an accumulator seed so min can ride on `atomicMax`.
fn atomic_seed(op: ReduceOp, v: f64) -> f64 {
    match op {
        ReduceOp::Min => -v,
        _ => v,
    }
}

fn atomic_unseed(op: ReduceOp, v: f64) -> f64 {
    match op {
        ReduceOp::Min => -v,
        _ => v,
    }
}

fn atomic_fold(
    ctx: &pcg_gpusim::BlockCtx,
    acc: &GpuBuffer<f64>,
    slot: usize,
    op: ReduceOp,
    v: f64,
) {
    match op {
        ReduceOp::Sum => {
            ctx.atomic_add(acc, slot, v);
        }
        ReduceOp::Max => {
            ctx.atomic_max(acc, slot, v);
        }
        ReduceOp::Min => {
            ctx.atomic_max(acc, slot, -v);
        }
        ReduceOp::Prod => unreachable!("no product reductions in this suite"),
    }
}

/// Variant 4: count elements strictly above half the maximum — a
/// two-pass reduction.
struct CountAboveHalfMax;

impl Spec for CountAboveHalfMax {
    type Input = Vec<f64>;

    fn id(&self) -> ProblemId {
        ProblemId::new(ProblemType::Reduce, 4)
    }

    fn prompt(&self) -> PromptSpec {
        PromptSpec {
            fn_name: "countAboveHalfMax".into(),
            description:
                "Count how many elements of the array x are strictly greater than half of the maximum element of x."
                    .into(),
            examples: vec![("[1.0, 6.0, 4.0, 2.0, 5.0]".into(), "3".into())],
            signature: "x: &[f64] -> i64".into(),
        }
    }

    fn default_size(&self) -> usize {
        1 << 16
    }

    fn generate(&self, seed: u64, size: usize) -> Vec<f64> {
        let mut r = util::rng(seed, Spec::id(self).index() as u64);
        util::rand_f64s(&mut r, size, 0.0, 100.0)
    }

    fn input_bytes(&self, input: &Vec<f64>) -> usize {
        input.len() * 8
    }

    fn serial(&self, input: &Vec<f64>) -> Output {
        let max = input.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let half = max / 2.0;
        Output::I64(input.iter().filter(|&&x| x > half).count() as i64)
    }

    fn solve_shmem(&self, input: &Vec<f64>, pool: &Pool) -> Output {
        let max = pool.parallel_for_reduce(
            0..input.len(),
            f64::NEG_INFINITY,
            |m, i| m.max(input[i]),
            f64::max,
        );
        let half = max / 2.0;
        let count = pool.parallel_for_reduce(
            0..input.len(),
            0i64,
            |c, i| c + i64::from(input[i] > half),
            |a, b| a + b,
        );
        Output::I64(count)
    }

    fn solve_patterns(&self, input: &Vec<f64>, space: &ExecSpace) -> Output {
        let x = View::from_slice("x", input);
        let max = space.parallel_reduce(input.len(), f64::NEG_INFINITY, |i| x.get(i), f64::max);
        let half = max / 2.0;
        let count = space.parallel_reduce(
            input.len(),
            0i64,
            |i| i64::from(x.get(i) > half),
            |a, b| a + b,
        );
        Output::I64(count)
    }

    fn solve_mpi(&self, input: &Vec<f64>, comm: &Comm<'_>) -> Option<Output> {
        let local = comm.scatter_blocks(
            0,
            (comm.rank() == 0).then_some(input.as_slice()),
            input.len(),
        );
        let lmax = local.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let max = comm.allreduce_one(lmax, ReduceOp::Max);
        let half = max / 2.0;
        let lcount = local.iter().filter(|&&x| x > half).count() as i64;
        comm.reduce_one(0, lcount, ReduceOp::Sum).map(Output::I64)
    }

    fn solve_hybrid(&self, input: &Vec<f64>, ctx: &HybridCtx<'_>) -> Option<Output> {
        let comm = ctx.comm();
        let range = block_range(input.len(), comm.size(), comm.rank());
        let lmax = ctx.par_reduce(
            range.clone(),
            f64::NEG_INFINITY,
            |m, i| m.max(input[i]),
            f64::max,
        );
        let max = comm.allreduce_one(lmax, ReduceOp::Max);
        let half = max / 2.0;
        let lcount =
            ctx.par_reduce(range, 0i64, |c, i| c + i64::from(input[i] > half), |a, b| a + b);
        comm.reduce_one(0, lcount, ReduceOp::Sum).map(Output::I64)
    }

    fn solve_gpu(&self, input: &Vec<f64>, gpu: &Gpu) -> Output {
        // Two block-reduction kernels: max, then count above half-max.
        // The threshold travels through the pair's second slot so the
        // fold stays a plain fn pointer.
        let (max, _) = gpu_pair_reduce(
            gpu,
            input,
            (f64::NEG_INFINITY, 0.0),
            |acc, x| (acc.0.max(x), 0.0),
            |a, b| (a.0.max(b.0), 0.0),
            (ReduceOp::Max, ReduceOp::Sum),
        );
        let half = max / 2.0;
        // Fold counts x > acc.1 where the threshold rides in slot 1.
        let shifted: Vec<f64> = input.iter().map(|&x| x - half).collect();
        let (count, _) = gpu_pair_reduce(
            gpu,
            &shifted,
            (0.0, 0.0),
            |acc, x| (acc.0 + f64::from(x > 0.0), 0.0),
            |a, b| (a.0 + b.0, 0.0),
            (ReduceOp::Sum, ReduceOp::Sum),
        );
        Output::I64(count.round() as i64)
    }
}

/// The five reduce problems.
pub fn problems() -> Vec<Box<dyn Problem>> {
    vec![
        Box::new(PairReduceProblem {
            variant: 0,
            fn_name: "sumOfAbsolutes",
            description: "Compute the sum of the absolute values of the elements of the array x.",
            example_in: "[1.0, -2.0, 3.0, -4.0]",
            example_out: "10.0",
            init: (0.0, 0.0),
            fold: |acc, x| (acc.0 + x.abs(), 0.0),
            combine: |a, b| (a.0 + b.0, 0.0),
            ops: (ReduceOp::Sum, ReduceOp::Sum),
            finish: |acc, _| acc.0,
        }),
        Box::new(PairReduceProblem {
            variant: 1,
            fn_name: "rangeOfValues",
            description: "Compute the difference between the maximum and minimum elements of the array x.",
            example_in: "[4.0, -1.0, 7.0, 2.0]",
            example_out: "8.0",
            init: (f64::NEG_INFINITY, f64::INFINITY),
            fold: |acc, x| (acc.0.max(x), acc.1.min(x)),
            combine: |a, b| (a.0.max(b.0), a.1.min(b.1)),
            ops: (ReduceOp::Max, ReduceOp::Min),
            finish: |acc, _| acc.0 - acc.1,
        }),
        Box::new(PairReduceProblem {
            variant: 2,
            fn_name: "logProductNonzero",
            description: "Compute the sum of ln(|x|) over the nonzero elements of the array x (the log-domain product of magnitudes).",
            example_in: "[1.0, -2.0, 0.0, 4.0]",
            example_out: "2.0794",
            init: (0.0, 0.0),
            fold: |acc, x| {
                if x != 0.0 {
                    (acc.0 + x.abs().ln(), 0.0)
                } else {
                    acc
                }
            },
            combine: |a, b| (a.0 + b.0, 0.0),
            ops: (ReduceOp::Sum, ReduceOp::Sum),
            finish: |acc, _| acc.0,
        }),
        Box::new(PairReduceProblem {
            variant: 3,
            fn_name: "meanOfSquares",
            description: "Compute the mean of the squares of the elements of the array x.",
            example_in: "[1.0, 2.0, 3.0]",
            example_out: "4.6667",
            init: (0.0, 0.0),
            fold: |acc, x| (acc.0 + x * x, 0.0),
            combine: |a, b| (a.0 + b.0, 0.0),
            ops: (ReduceOp::Sum, ReduceOp::Sum),
            finish: |acc, n| acc.0 / n.max(1) as f64,
        }),
        Box::new(CountAboveHalfMax),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::tests_support::check_problem_all_models;

    #[test]
    fn reduce_problems_agree_across_models() {
        for p in problems() {
            check_problem_all_models(&*p, 101, 700);
        }
    }

    #[test]
    fn count_above_half_max_known_case() {
        let p = CountAboveHalfMax;
        let out = Spec::serial(&p, &vec![1.0, 6.0, 4.0, 2.0, 5.0]);
        assert!(out.approx_eq(&Output::I64(3)));
    }
}
