//! Dense matrix algebra problems covering the three BLAS levels
//! (Table 1 "Dense Matrix Algebra"): a fused level-1 vector op, a scaled
//! level-2 matrix-vector product, a level-3 matrix-matrix product, a
//! Gram matrix, and a scaled transpose.
//!
//! Every variant is expressed as an element formula over abstract
//! readers, so the same formula runs against host slices (CPU
//! substrates) and metered device buffers (GPU), keeping the byte/flop
//! accounting honest.

use crate::framework::{Problem, Spec};
use crate::util;
use pcg_core::prompt::PromptSpec;
use pcg_core::{Output, ProblemId, ProblemType};
use pcg_gpusim::{Gpu, GpuBuffer, Launch};
use pcg_hybrid::HybridCtx;
use pcg_mpisim::{block_range, Comm};
use pcg_patterns::{ExecSpace, View};
use pcg_shmem::Pool;

/// Abstract element reader.
type Reader<'a> = &'a dyn Fn(usize) -> f64;

/// Shape metadata handed to element formulas.
#[derive(Debug, Clone, Copy)]
pub struct Dims {
    /// Rows of operand `a` (as visible to the formula).
    pub a_rows: usize,
    /// Columns of operand `a`.
    pub a_cols: usize,
    /// Length of the output rows.
    pub row_len: usize,
}

/// How the MPI/hybrid paths distribute the operands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Dist {
    /// Scatter `a`'s rows and `b` with the same row distribution
    /// (elementwise ops on two vectors).
    ScatterBoth,
    /// Scatter `a`'s rows; broadcast `b` (matrix-vector, matrix-matrix).
    ScatterA,
    /// Broadcast everything (output rows need all of `a`).
    BcastAll,
}

struct DenseProblem {
    variant: usize,
    fn_name: &'static str,
    description: &'static str,
    example_in: &'static str,
    example_out: &'static str,
    shape: fn(usize) -> (usize, usize, usize, usize, usize), // a_rows, a_cols, b_len, out_rows, row_len
    elem: fn(Reader<'_>, Reader<'_>, Dims, usize, usize) -> f64,
    dist: Dist,
    flops_per_elem: fn(Dims) -> u64,
}

/// Generated operands.
pub struct DenseInput {
    a_rows: usize,
    a_cols: usize,
    a: Vec<f64>,
    b: Vec<f64>,
    out_rows: usize,
    row_len: usize,
}

impl DenseProblem {
    fn dims(&self, input: &DenseInput) -> Dims {
        Dims { a_rows: input.a_rows, a_cols: input.a_cols, row_len: input.row_len }
    }

    fn compute_rows(&self, input: &DenseInput, r_lo: usize, r_hi: usize) -> Vec<f64> {
        let dims = self.dims(input);
        let ra = |i: usize| input.a[i];
        let rb = |i: usize| input.b[i];
        let mut out = Vec::with_capacity((r_hi - r_lo) * input.row_len);
        for r in r_lo..r_hi {
            for c in 0..input.row_len {
                out.push((self.elem)(&ra, &rb, dims, r, c));
            }
        }
        out
    }
}

impl Spec for DenseProblem {
    type Input = DenseInput;

    fn id(&self) -> ProblemId {
        ProblemId::new(ProblemType::DenseLinearAlgebra, self.variant)
    }

    fn prompt(&self) -> PromptSpec {
        PromptSpec {
            fn_name: self.fn_name.into(),
            description: self.description.into(),
            examples: vec![(self.example_in.into(), self.example_out.into())],
            signature: "a: &[f64], b: &[f64], out: &mut [f64]".into(),
        }
    }

    fn default_size(&self) -> usize {
        1 << 15
    }

    fn generate(&self, seed: u64, size: usize) -> DenseInput {
        let mut r = util::rng(seed, Spec::id(self).index() as u64);
        let (a_rows, a_cols, b_len, out_rows, row_len) = (self.shape)(size.max(16));
        DenseInput {
            a_rows,
            a_cols,
            a: util::rand_f64s(&mut r, a_rows * a_cols, -1.0, 1.0),
            b: util::rand_f64s(&mut r, b_len, -1.0, 1.0),
            out_rows,
            row_len,
        }
    }

    fn input_bytes(&self, input: &DenseInput) -> usize {
        (input.a.len() + input.b.len()) * 8
    }

    fn serial(&self, input: &DenseInput) -> Output {
        Output::F64s(self.compute_rows(input, 0, input.out_rows))
    }

    fn solve_shmem(&self, input: &DenseInput, pool: &Pool) -> Output {
        let mut out = vec![0.0; input.out_rows * input.row_len];
        let row_len = input.row_len;
        {
            let slice = pcg_shmem::UnsafeSlice::new(&mut out);
            pool.parallel_for_chunks(
                0..input.out_rows,
                pcg_shmem::Schedule::Static { chunk: 0 },
                |rows| {
                    let vals = self.compute_rows(input, rows.start, rows.end);
                    for (k, v) in vals.into_iter().enumerate() {
                        unsafe { slice.write(rows.start * row_len + k, v) };
                    }
                },
            );
        }
        Output::F64s(out)
    }

    fn solve_patterns(&self, input: &DenseInput, space: &ExecSpace) -> Output {
        let dims = self.dims(input);
        let a = View::from_slice("a", &input.a);
        let b = View::from_slice("b", &input.b);
        let out: View<f64> = View::new("out", input.out_rows * input.row_len);
        let out2 = out.clone();
        let elem = self.elem;
        let row_len = input.row_len;
        space.parallel_for_2d(input.out_rows, row_len, |r, c| {
            let ra = |i: usize| a.get(i);
            let rb = |i: usize| b.get(i);
            unsafe { out2.set(r * row_len + c, elem(&ra, &rb, dims, r, c)) };
        });
        Output::F64s(out.to_vec())
    }

    fn solve_mpi(&self, input: &DenseInput, comm: &Comm<'_>) -> Option<Output> {
        let rows_rg = block_range(input.out_rows, comm.size(), comm.rank());
        let local_vals = match self.dist {
            Dist::BcastAll => {
                let mut a = if comm.rank() == 0 { input.a.clone() } else { Vec::new() };
                comm.bcast(0, &mut a);
                let mut b = if comm.rank() == 0 { input.b.clone() } else { Vec::new() };
                comm.bcast(0, &mut b);
                let local = DenseInput {
                    a_rows: input.a_rows,
                    a_cols: input.a_cols,
                    a,
                    b,
                    out_rows: input.out_rows,
                    row_len: input.row_len,
                };
                self.compute_rows(&local, rows_rg.start, rows_rg.end)
            }
            Dist::ScatterA | Dist::ScatterBoth => {
                // Scatter row blocks of `a`; formulas then see a local
                // matrix whose row r is global row rows_rg.start + r.
                let chunks: Option<Vec<Vec<f64>>> = (comm.rank() == 0).then(|| {
                    (0..comm.size())
                        .map(|p| {
                            let rg = block_range(input.out_rows, comm.size(), p);
                            input.a[rg.start * input.a_cols..rg.end * input.a_cols].to_vec()
                        })
                        .collect()
                });
                let local_a = comm.scatter(0, chunks);
                let local_b = if self.dist == Dist::ScatterBoth {
                    comm.scatter_blocks(0, (comm.rank() == 0).then_some(&input.b[..]), input.b.len())
                } else {
                    let mut b = if comm.rank() == 0 { input.b.clone() } else { Vec::new() };
                    comm.bcast(0, &mut b);
                    b
                };
                let local = DenseInput {
                    a_rows: rows_rg.len(),
                    a_cols: input.a_cols,
                    a: local_a,
                    b: local_b,
                    out_rows: rows_rg.len(),
                    row_len: input.row_len,
                };
                self.compute_rows(&local, 0, rows_rg.len())
            }
        };
        comm.gather(0, &local_vals).map(Output::F64s)
    }

    fn solve_hybrid(&self, input: &DenseInput, ctx: &HybridCtx<'_>) -> Option<Output> {
        let comm = ctx.comm();
        let rows_rg = block_range(input.out_rows, comm.size(), comm.rank());
        let row_len = input.row_len;
        let mut local = vec![0.0; rows_rg.len() * row_len];
        let lo = rows_rg.start;
        {
            let slice = pcg_shmem::UnsafeSlice::new(&mut local);
            ctx.par_for(0..rows_rg.len(), |r_local| {
                let vals = self.compute_rows(input, lo + r_local, lo + r_local + 1);
                for (c, v) in vals.into_iter().enumerate() {
                    unsafe { slice.write(r_local * row_len + c, v) };
                }
            });
        }
        comm.gather(0, &local).map(Output::F64s)
    }

    fn solve_gpu(&self, input: &DenseInput, gpu: &Gpu) -> Output {
        let dims = self.dims(input);
        let a = GpuBuffer::from_slice(&input.a);
        let b = GpuBuffer::from_slice(&if input.b.is_empty() { vec![0.0] } else { input.b.clone() });
        let out = GpuBuffer::<f64>::zeroed(input.out_rows * input.row_len);
        let elem = self.elem;
        let flops = (self.flops_per_elem)(dims);
        let total = input.out_rows * input.row_len;
        let row_len = input.row_len;
        gpu.launch_each(Launch::over(total, 256), |t, bctx| {
            let i = t.global_id();
            if i < total {
                let (r, c) = (i / row_len, i % row_len);
                let ra = |k: usize| bctx.read(&a, k);
                let rb = |k: usize| bctx.read(&b, k);
                bctx.write(&out, i, elem(&ra, &rb, dims, r, c));
                bctx.charge_flops(flops);
            }
        });
        Output::F64s(out.to_vec())
    }
}

fn isqrt(n: usize) -> usize {
    (n as f64).sqrt() as usize
}

/// The five dense linear algebra problems.
pub fn problems() -> Vec<Box<dyn Problem>> {
    vec![
        Box::new(DenseProblem {
            variant: 0,
            fn_name: "fusedAxpby",
            description: "Compute out[i] = 2*a[i] + 3*b[i] for two vectors a and b (a fused level-1 BLAS operation).",
            example_in: "a=[1,2], b=[10,20]",
            example_out: "[32.0, 64.0]",
            shape: |n| (n, 1, n, n, 1),
            elem: |a, b, _d, r, _c| 2.0 * a(r) + 3.0 * b(r),
            dist: Dist::ScatterBoth,
            flops_per_elem: |_| 3,
        }),
        Box::new(DenseProblem {
            variant: 1,
            fn_name: "gemvScaled",
            description: "Compute y = 2*A*x for an n x n row-major matrix A and vector x (level-2 BLAS).",
            example_in: "A=[[1,0],[0,1]], x=[3,4]",
            example_out: "[6.0, 8.0]",
            shape: |s| {
                let n = isqrt(s).max(4);
                (n, n, n, n, 1)
            },
            elem: |a, b, d, r, _c| {
                let mut acc = 0.0;
                for k in 0..d.a_cols {
                    acc += a(r * d.a_cols + k) * b(k);
                }
                2.0 * acc
            },
            dist: Dist::ScatterA,
            flops_per_elem: |d| 2 * d.a_cols as u64 + 1,
        }),
        Box::new(DenseProblem {
            variant: 2,
            fn_name: "gemmPlain",
            description: "Compute C = A*B for n x n row-major matrices A and B (level-3 BLAS).",
            example_in: "A=[[1,2],[3,4]], B=[[5,6],[7,8]]",
            example_out: "[[19,22],[43,50]]",
            shape: |s| {
                let n = isqrt(s).clamp(4, 160);
                (n, n, n * n, n, n)
            },
            elem: |a, b, d, r, c| {
                let mut acc = 0.0;
                for k in 0..d.a_cols {
                    acc += a(r * d.a_cols + k) * b(k * d.row_len + c);
                }
                acc
            },
            dist: Dist::ScatterA,
            flops_per_elem: |d| 2 * d.a_cols as u64,
        }),
        Box::new(DenseProblem {
            variant: 3,
            fn_name: "gramMatrix",
            description: "Compute C = A^T * A for an n x n row-major matrix A (the Gram matrix).",
            example_in: "A=[[1,2],[3,4]]",
            example_out: "[[10,14],[14,20]]",
            shape: |s| {
                let n = isqrt(s).clamp(4, 160);
                (n, n, 0, n, n)
            },
            elem: |a, _b, d, r, c| {
                let mut acc = 0.0;
                for i in 0..d.a_rows {
                    acc += a(i * d.a_cols + r) * a(i * d.a_cols + c);
                }
                acc
            },
            dist: Dist::BcastAll,
            flops_per_elem: |d| 2 * d.a_rows as u64,
        }),
        Box::new(DenseProblem {
            variant: 4,
            fn_name: "transposeScale",
            description: "Compute B = 2*A^T for an n x n row-major matrix A.",
            example_in: "A=[[1,2],[3,4]]",
            example_out: "[[2,6],[4,8]]",
            shape: |s| {
                let n = isqrt(s).max(4);
                (n, n, 0, n, n)
            },
            elem: |a, _b, d, r, c| 2.0 * a(c * d.a_cols + r),
            dist: Dist::BcastAll,
            flops_per_elem: |_| 1,
        }),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::tests_support::check_problem_all_models;

    #[test]
    fn dense_problems_agree_across_models() {
        for p in problems() {
            check_problem_all_models(&*p, 99, 400);
        }
    }

    #[test]
    fn gemm_identity_on_tiny_case() {
        // 2x2 known product via the element formula.
        let p = problems();
        let gemm = &p[2];
        let base = gemm.run_baseline(3, 16);
        if let Output::F64s(c) = &base.output {
            assert_eq!(c.len(), 16); // 4x4 matrix for size 16
        }
    }
}
