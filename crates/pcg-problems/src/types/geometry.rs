//! Geometry problems (Table 1 "Geometry"): convex hull size, closest
//! pair, point-in-polygon counting, bounding box, and distance to a
//! segment set over 2-D point clouds.
//!
//! The convex hull parallelizes by chunk hulls + a hull-of-hulls merge
//! (the hull of a union equals the hull of the union of chunk hulls);
//! the closest pair is the exhaustive O(n^2/2) search parallelized over
//! the first index (the baseline uses the same algorithm, so relative
//! performance is meaningful).

use crate::framework::{Problem, Spec};
use crate::util::{self, convex_hull_size, Point};
use pcg_core::prompt::PromptSpec;
use pcg_core::{Output, ProblemId, ProblemType};
use pcg_gpusim::{Gpu, GpuBuffer, Launch};
use pcg_hybrid::HybridCtx;
use pcg_mpisim::{block_range, Comm, ReduceOp};
use pcg_patterns::ExecSpace;
use pcg_shmem::{Pool, Schedule};

/// Fixed star-shaped test polygon (deterministic, non-convex).
fn test_polygon() -> Vec<Point> {
    (0..16)
        .map(|k| {
            let ang = 2.0 * std::f64::consts::PI * k as f64 / 16.0;
            let r = if k % 2 == 0 { 0.45 } else { 0.2 };
            Point { x: 0.5 + r * ang.cos(), y: 0.5 + r * ang.sin() }
        })
        .collect()
}

/// Fixed segment set for the distance problem.
fn test_segments() -> Vec<(Point, Point)> {
    (0..24)
        .map(|k| {
            let t = k as f64 / 24.0;
            (
                Point { x: t, y: (7.0 * t).sin() * 0.5 + 0.5 },
                Point { x: t + 0.04, y: (7.0 * t + 0.6).cos() * 0.5 + 0.5 },
            )
        })
        .collect()
}

/// Ray-casting point-in-polygon test.
fn point_in_polygon(p: Point, poly: &[Point]) -> bool {
    let mut inside = false;
    let n = poly.len();
    let mut j = n - 1;
    for i in 0..n {
        let (pi, pj) = (poly[i], poly[j]);
        if ((pi.y > p.y) != (pj.y > p.y))
            && (p.x < (pj.x - pi.x) * (p.y - pi.y) / (pj.y - pi.y) + pi.x)
        {
            inside = !inside;
        }
        j = i;
    }
    inside
}

/// Distance from point `p` to segment `(a, b)`.
fn dist_to_segment(p: Point, a: Point, b: Point) -> f64 {
    let (dx, dy) = (b.x - a.x, b.y - a.y);
    let len2 = dx * dx + dy * dy;
    let t = if len2 == 0.0 {
        0.0
    } else {
        (((p.x - a.x) * dx + (p.y - a.y) * dy) / len2).clamp(0.0, 1.0)
    };
    let (cx, cy) = (a.x + t * dx, a.y + t * dy);
    ((p.x - cx).powi(2) + (p.y - cy).powi(2)).sqrt()
}

/// The per-point-score problems (variants 1..=4) share a
/// score-and-reduce shape; scores depend only on the point (and fixed
/// scene data), combined with an associative operator on a 4-vector
/// accumulator (so bounding boxes fit too).
type Acc = [f64; 4];

struct PointReduce {
    variant: usize,
    fn_name: &'static str,
    description: &'static str,
    example_in: &'static str,
    example_out: &'static str,
    identity: Acc,
    score: fn(Point) -> Acc,
    combine: fn(Acc, Acc) -> Acc,
    /// Component-wise MPI ops matching `combine`.
    ops: [ReduceOp; 4],
    finish: fn(Acc) -> Output,
}

impl PointReduce {
    fn fold_slice(&self, pts: &[Point]) -> Acc {
        pts.iter().fold(self.identity, |acc, &p| (self.combine)(acc, (self.score)(p)))
    }
}

impl Spec for PointReduce {
    type Input = Vec<Point>;

    fn id(&self) -> ProblemId {
        ProblemId::new(ProblemType::Geometry, self.variant)
    }

    fn prompt(&self) -> PromptSpec {
        PromptSpec {
            fn_name: self.fn_name.into(),
            description: self.description.into(),
            examples: vec![(self.example_in.into(), self.example_out.into())],
            signature: "xs: &[f64], ys: &[f64] -> f64".into(),
        }
    }

    fn default_size(&self) -> usize {
        1 << 14
    }

    fn generate(&self, seed: u64, size: usize) -> Vec<Point> {
        let mut r = util::rng(seed, Spec::id(self).index() as u64);
        util::rand_points(&mut r, size.max(4))
    }

    fn input_bytes(&self, input: &Vec<Point>) -> usize {
        input.len() * 16
    }

    fn serial(&self, input: &Vec<Point>) -> Output {
        (self.finish)(self.fold_slice(input))
    }

    fn solve_shmem(&self, input: &Vec<Point>, pool: &Pool) -> Output {
        let acc = pool.parallel_for_reduce(
            0..input.len(),
            self.identity,
            |acc, i| (self.combine)(acc, (self.score)(input[i])),
            |a, b| (self.combine)(a, b),
        );
        (self.finish)(acc)
    }

    fn solve_patterns(&self, input: &Vec<Point>, space: &ExecSpace) -> Output {
        let acc = space.parallel_reduce(
            input.len(),
            self.identity,
            |i| (self.score)(input[i]),
            |a, b| (self.combine)(a, b),
        );
        (self.finish)(acc)
    }

    fn solve_mpi(&self, input: &Vec<Point>, comm: &Comm<'_>) -> Option<Output> {
        // Scatter interleaved coordinates.
        let flat: Vec<f64> = input.iter().flat_map(|p| [p.x, p.y]).collect();
        let chunks: Option<Vec<Vec<f64>>> = (comm.rank() == 0).then(|| {
            (0..comm.size())
                .map(|r| {
                    let rg = block_range(input.len(), comm.size(), r);
                    flat[rg.start * 2..rg.end * 2].to_vec()
                })
                .collect()
        });
        let local_flat = comm.scatter(0, chunks);
        let local: Vec<Point> =
            local_flat.chunks_exact(2).map(|c| Point { x: c[0], y: c[1] }).collect();
        let acc = self.fold_slice(&local);
        let mut out = self.identity;
        let mut have_all = true;
        for (k, slot) in out.iter_mut().enumerate() {
            match comm.reduce_one(0, acc[k], self.ops[k]) {
                Some(v) => *slot = v,
                None => have_all = false,
            }
        }
        (have_all && comm.rank() == 0).then(|| (self.finish)(out))
    }

    fn solve_hybrid(&self, input: &Vec<Point>, ctx: &HybridCtx<'_>) -> Option<Output> {
        let comm = ctx.comm();
        let rg = block_range(input.len(), comm.size(), comm.rank());
        let score = self.score;
        let combine = self.combine;
        let acc = ctx.par_reduce(
            rg,
            self.identity,
            move |acc, i| combine(acc, score(input[i])),
            combine,
        );
        let mut out = self.identity;
        let mut have_all = true;
        for (k, slot) in out.iter_mut().enumerate() {
            match comm.reduce_one(0, acc[k], self.ops[k]) {
                Some(v) => *slot = v,
                None => have_all = false,
            }
        }
        (have_all && comm.rank() == 0).then(|| (self.finish)(out))
    }

    fn solve_gpu(&self, input: &Vec<Point>, gpu: &Gpu) -> Output {
        let xs = GpuBuffer::from_slice(&input.iter().map(|p| p.x).collect::<Vec<_>>());
        let ys = GpuBuffer::from_slice(&input.iter().map(|p| p.y).collect::<Vec<_>>());
        let score = self.score;
        let ops = self.ops;
        let acc_buf = GpuBuffer::from_slice(&{
            let mut seeds = [0.0; 4];
            for k in 0..4 {
                seeds[k] = gpu_seed(ops[k], self.identity[k]);
            }
            seeds
        });
        let identity = self.identity;
        let combine = self.combine;
        let n = input.len();
        gpu.launch_each(Launch::over(n.min(1 << 13), 256), |t, ctx| {
            let mut acc = identity;
            let mut i = t.global_id();
            while i < n {
                let p = Point { x: ctx.read(&xs, i), y: ctx.read(&ys, i) };
                acc = combine(acc, score(p));
                i += t.grid_threads();
            }
            for (k, &op) in ops.iter().enumerate() {
                gpu_fold(ctx, &acc_buf, k, op, acc[k]);
            }
        });
        let mut out = [0.0; 4];
        for k in 0..4 {
            out[k] = gpu_unseed(ops[k], acc_buf.load(k));
        }
        (self.finish)(out)
    }
}

fn gpu_seed(op: ReduceOp, v: f64) -> f64 {
    match op {
        ReduceOp::Min => -v,
        _ => v,
    }
}

fn gpu_unseed(op: ReduceOp, v: f64) -> f64 {
    gpu_seed(op, v)
}

fn gpu_fold(ctx: &pcg_gpusim::BlockCtx, buf: &GpuBuffer<f64>, k: usize, op: ReduceOp, v: f64) {
    match op {
        ReduceOp::Sum => {
            ctx.atomic_add(buf, k, v);
        }
        ReduceOp::Max => {
            ctx.atomic_max(buf, k, v);
        }
        ReduceOp::Min => {
            ctx.atomic_max(buf, k, -v);
        }
        ReduceOp::Prod => unreachable!("no products here"),
    }
}

// ----------------------------------------------------------------------
// Variant 0: convex hull size (chunk hulls + merge)
// ----------------------------------------------------------------------

struct HullSize;

impl HullSize {
    /// Hull points (not just the count) of a chunk, for the merge step.
    fn chunk_hull(points: &[Point]) -> Vec<Point> {
        if points.len() < 3 {
            return points.to_vec();
        }
        let mut pts = points.to_vec();
        pts.sort_by(|a, b| a.x.partial_cmp(&b.x).unwrap().then(a.y.partial_cmp(&b.y).unwrap()));
        pts.dedup_by(|a, b| a.x == b.x && a.y == b.y);
        let cross =
            |o: Point, a: Point, b: Point| (a.x - o.x) * (b.y - o.y) - (a.y - o.y) * (b.x - o.x);
        let build = |iter: &mut dyn Iterator<Item = Point>| {
            let mut chain: Vec<Point> = Vec::new();
            for p in iter {
                while chain.len() >= 2
                    && cross(chain[chain.len() - 2], chain[chain.len() - 1], p) <= 0.0
                {
                    chain.pop();
                }
                chain.push(p);
            }
            chain
        };
        // Return both chains; duplicated endpoints are harmless because
        // the merge step re-runs a hull over the union.
        let mut hull = build(&mut pts.iter().copied());
        hull.extend(build(&mut pts.iter().rev().copied()));
        hull
    }
}

impl Spec for HullSize {
    type Input = Vec<Point>;

    fn id(&self) -> ProblemId {
        ProblemId::new(ProblemType::Geometry, 0)
    }

    fn prompt(&self) -> PromptSpec {
        PromptSpec {
            fn_name: "convexHullSize".into(),
            description: "Return the number of vertices of the convex hull of the point set.".into(),
            examples: vec![("unit square corners plus interior points".into(), "4".into())],
            signature: "xs: &[f64], ys: &[f64] -> i64".into(),
        }
    }

    fn default_size(&self) -> usize {
        1 << 14
    }

    fn generate(&self, seed: u64, size: usize) -> Vec<Point> {
        let mut r = util::rng(seed, Spec::id(self).index() as u64);
        util::rand_points(&mut r, size.max(8))
    }

    fn input_bytes(&self, input: &Vec<Point>) -> usize {
        input.len() * 16
    }

    fn serial(&self, input: &Vec<Point>) -> Output {
        Output::I64(convex_hull_size(input) as i64)
    }

    fn solve_shmem(&self, input: &Vec<Point>, pool: &Pool) -> Output {
        let partial = parking_lot::Mutex::new(Vec::new());
        pool.parallel_for_chunks(0..input.len(), Schedule::Static { chunk: 0 }, |chunk| {
            let hull = HullSize::chunk_hull(&input[chunk]);
            partial.lock().extend(hull);
        });
        Output::I64(convex_hull_size(&partial.into_inner()) as i64)
    }

    fn solve_patterns(&self, input: &Vec<Point>, space: &ExecSpace) -> Output {
        let partial = parking_lot::Mutex::new(Vec::new());
        let teams = space.concurrency();
        space.parallel_for_teams(teams, |team| {
            let rg = block_range(input.len(), team.league_size(), team.league_rank());
            let hull = HullSize::chunk_hull(&input[rg]);
            partial.lock().extend(hull);
        });
        Output::I64(convex_hull_size(&partial.into_inner()) as i64)
    }

    fn solve_mpi(&self, input: &Vec<Point>, comm: &Comm<'_>) -> Option<Output> {
        let rg = block_range(input.len(), comm.size(), comm.rank());
        let hull = HullSize::chunk_hull(&input[rg]);
        let flat: Vec<f64> = hull.iter().flat_map(|p| [p.x, p.y]).collect();
        comm.gather(0, &flat).map(|merged_flat| {
            let merged: Vec<Point> =
                merged_flat.chunks_exact(2).map(|c| Point { x: c[0], y: c[1] }).collect();
            Output::I64(convex_hull_size(&merged) as i64)
        })
    }

    fn solve_hybrid(&self, input: &Vec<Point>, ctx: &HybridCtx<'_>) -> Option<Output> {
        let comm = ctx.comm();
        let rg = block_range(input.len(), comm.size(), comm.rank());
        let nb = ctx.threads_per_rank();
        let rg_slice = &input[rg];
        let hull = ctx.par_reduce(
            0..nb,
            Vec::new(),
            move |mut acc: Vec<Point>, b| {
                let sub = block_range(rg_slice.len(), nb, b);
                acc.extend(HullSize::chunk_hull(&rg_slice[sub]));
                acc
            },
            |mut a, b| {
                a.extend(b);
                a
            },
        );
        let flat: Vec<f64> = hull.iter().flat_map(|p| [p.x, p.y]).collect();
        comm.gather(0, &flat).map(|merged_flat| {
            let merged: Vec<Point> =
                merged_flat.chunks_exact(2).map(|c| Point { x: c[0], y: c[1] }).collect();
            Output::I64(convex_hull_size(&merged) as i64)
        })
    }

    fn solve_gpu(&self, input: &Vec<Point>, gpu: &Gpu) -> Output {
        // GPU hulls are typically computed by a filtering kernel (points
        // on the hull must be extreme in some direction among a sampled
        // set) followed by a host hull of the survivors. Here each block
        // computes its chunk hull host-side after metering its reads,
        // mirroring the chunk-hull strategy.
        let xs = GpuBuffer::from_slice(&input.iter().map(|p| p.x).collect::<Vec<_>>());
        let ys = GpuBuffer::from_slice(&input.iter().map(|p| p.y).collect::<Vec<_>>());
        let n = input.len();
        const CHUNK: usize = 1024;
        let nchunks = n.div_ceil(CHUNK);
        let partial = parking_lot::Mutex::new(Vec::new());
        let input_ref = input;
        gpu.launch_each(Launch::new(nchunks as u32, 32), |t, ctx| {
            if t.thread_idx == 0 {
                let lo = (t.block_idx as usize) * CHUNK;
                let hi = (lo + CHUNK).min(n);
                for i in lo..hi {
                    let _ = ctx.read(&xs, i);
                    let _ = ctx.read(&ys, i);
                }
                let hull = HullSize::chunk_hull(&input_ref[lo..hi]);
                partial.lock().extend(hull);
            }
        });
        Output::I64(convex_hull_size(&partial.into_inner()) as i64)
    }
}

// ----------------------------------------------------------------------
// Variant 1: closest pair distance (exhaustive, parallel over i)
// ----------------------------------------------------------------------

struct ClosestPair;

impl ClosestPair {
    fn row_min(pts: &[Point], i: usize) -> f64 {
        let mut best = f64::INFINITY;
        let pi = pts[i];
        for pj in &pts[i + 1..] {
            let d2 = (pi.x - pj.x).powi(2) + (pi.y - pj.y).powi(2);
            best = best.min(d2);
        }
        best
    }
}

impl Spec for ClosestPair {
    type Input = Vec<Point>;

    fn id(&self) -> ProblemId {
        ProblemId::new(ProblemType::Geometry, 1)
    }

    fn prompt(&self) -> PromptSpec {
        PromptSpec {
            fn_name: "closestPairDistance".into(),
            description: "Return the smallest Euclidean distance between any two distinct points of the set.".into(),
            examples: vec![("[(0,0), (3,4), (1,0)]".into(), "1.0".into())],
            signature: "xs: &[f64], ys: &[f64] -> f64".into(),
        }
    }

    fn default_size(&self) -> usize {
        1 << 11
    }

    fn generate(&self, seed: u64, size: usize) -> Vec<Point> {
        let mut r = util::rng(seed, Spec::id(self).index() as u64);
        util::rand_points(&mut r, size.clamp(4, 1 << 12))
    }

    fn input_bytes(&self, input: &Vec<Point>) -> usize {
        input.len() * 16
    }

    fn serial(&self, input: &Vec<Point>) -> Output {
        let mut best = f64::INFINITY;
        for i in 0..input.len() {
            best = best.min(ClosestPair::row_min(input, i));
        }
        Output::F64(best.sqrt())
    }

    fn solve_shmem(&self, input: &Vec<Point>, pool: &Pool) -> Output {
        let best = pool.parallel_for_reduce(
            0..input.len(),
            f64::INFINITY,
            |acc, i| acc.min(ClosestPair::row_min(input, i)),
            f64::min,
        );
        Output::F64(best.sqrt())
    }

    fn solve_patterns(&self, input: &Vec<Point>, space: &ExecSpace) -> Output {
        let best = space.parallel_reduce(
            input.len(),
            f64::INFINITY,
            |i| ClosestPair::row_min(input, i),
            f64::min,
        );
        Output::F64(best.sqrt())
    }

    fn solve_mpi(&self, input: &Vec<Point>, comm: &Comm<'_>) -> Option<Output> {
        // Broadcast points; cyclic index distribution balances the
        // triangular loop.
        let flat: Vec<f64> = input.iter().flat_map(|p| [p.x, p.y]).collect();
        let mut all = if comm.rank() == 0 { flat } else { Vec::new() };
        comm.bcast(0, &mut all);
        let pts: Vec<Point> = all.chunks_exact(2).map(|c| Point { x: c[0], y: c[1] }).collect();
        let mut best = f64::INFINITY;
        let mut i = comm.rank();
        while i < pts.len() {
            best = best.min(ClosestPair::row_min(&pts, i));
            i += comm.size();
        }
        comm.reduce_one(0, best, ReduceOp::Min).map(|b| Output::F64(b.sqrt()))
    }

    fn solve_hybrid(&self, input: &Vec<Point>, ctx: &HybridCtx<'_>) -> Option<Output> {
        let comm = ctx.comm();
        let size = comm.size();
        let rank = comm.rank();
        let n = input.len();
        let best = ctx.par_reduce(
            0..n.div_ceil(size),
            f64::INFINITY,
            move |acc, k| {
                let i = rank + k * size;
                if i < n {
                    acc.min(ClosestPair::row_min(input, i))
                } else {
                    acc
                }
            },
            f64::min,
        );
        comm.reduce_one(0, best, ReduceOp::Min).map(|b| Output::F64(b.sqrt()))
    }

    fn solve_gpu(&self, input: &Vec<Point>, gpu: &Gpu) -> Output {
        let xs = GpuBuffer::from_slice(&input.iter().map(|p| p.x).collect::<Vec<_>>());
        let ys = GpuBuffer::from_slice(&input.iter().map(|p| p.y).collect::<Vec<_>>());
        let best = GpuBuffer::from_slice(&[f64::NEG_INFINITY]);
        let n = input.len();
        gpu.launch_each(Launch::over(n, 128), |t, ctx| {
            let i = t.global_id();
            if i < n {
                let (xi, yi) = (ctx.read(&xs, i), ctx.read(&ys, i));
                let mut local = f64::INFINITY;
                for j in i + 1..n {
                    let d2 = (xi - ctx.read(&xs, j)).powi(2) + (yi - ctx.read(&ys, j)).powi(2);
                    local = local.min(d2);
                }
                // atomicMin via negated atomicMax.
                ctx.atomic_max(&best, 0, -local);
            }
        });
        Output::F64((-best.load(0)).sqrt())
    }
}

/// The five geometry problems.
pub fn problems() -> Vec<Box<dyn Problem>> {
    vec![
        Box::new(HullSize),
        Box::new(ClosestPair),
        Box::new(PointReduce {
            variant: 2,
            fn_name: "countInsidePolygon",
            description: "Count how many points lie inside the fixed 16-vertex star polygon centered at (0.5, 0.5) (ray casting).",
            example_in: "points near the center",
            example_out: "count of interior points",
            identity: [0.0; 4],
            score: |p| [f64::from(point_in_polygon(p, &test_polygon())), 0.0, 0.0, 0.0],
            combine: |a, b| [a[0] + b[0], 0.0, 0.0, 0.0],
            ops: [ReduceOp::Sum; 4],
            finish: |a| Output::I64(a[0] as i64),
        }),
        Box::new(PointReduce {
            variant: 3,
            fn_name: "boundingBox",
            description: "Compute the axis-aligned bounding box of the point set, returned as [min_x, min_y, max_x, max_y].",
            example_in: "[(0.1, 0.9), (0.5, 0.2)]",
            example_out: "[0.1, 0.2, 0.5, 0.9]",
            identity: [f64::INFINITY, f64::INFINITY, f64::NEG_INFINITY, f64::NEG_INFINITY],
            score: |p| [p.x, p.y, p.x, p.y],
            combine: |a, b| [a[0].min(b[0]), a[1].min(b[1]), a[2].max(b[2]), a[3].max(b[3])],
            ops: [ReduceOp::Min, ReduceOp::Min, ReduceOp::Max, ReduceOp::Max],
            finish: |a| Output::F64s(a.to_vec()),
        }),
        Box::new(PointReduce {
            variant: 4,
            fn_name: "minDistanceToSegments",
            description: "Return the minimum distance from any point of the set to the fixed set of 24 line segments.",
            example_in: "points scattered around the segment chain",
            example_out: "smallest point-to-segment distance",
            identity: [f64::INFINITY, 0.0, 0.0, 0.0],
            score: |p| {
                let mut best = f64::INFINITY;
                for (a, b) in test_segments() {
                    best = best.min(dist_to_segment(p, a, b));
                }
                [best, 0.0, 0.0, 0.0]
            },
            combine: |a, b| [a[0].min(b[0]), 0.0, 0.0, 0.0],
            ops: [ReduceOp::Min, ReduceOp::Sum, ReduceOp::Sum, ReduceOp::Sum],
            finish: |a| Output::F64(a[0]),
        }),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::tests_support::check_problem_all_models;

    #[test]
    fn geometry_problems_agree_across_models() {
        for p in problems() {
            check_problem_all_models(&*p, 2468, 300);
        }
    }

    #[test]
    fn point_in_polygon_center_inside() {
        let poly = test_polygon();
        assert!(point_in_polygon(Point { x: 0.5, y: 0.5 }, &poly));
        assert!(!point_in_polygon(Point { x: 0.99, y: 0.99 }, &poly));
    }

    #[test]
    fn dist_to_segment_known_cases() {
        let a = Point { x: 0.0, y: 0.0 };
        let b = Point { x: 1.0, y: 0.0 };
        assert!((dist_to_segment(Point { x: 0.5, y: 1.0 }, a, b) - 1.0).abs() < 1e-12);
        assert!((dist_to_segment(Point { x: 2.0, y: 0.0 }, a, b) - 1.0).abs() < 1e-12);
        assert!((dist_to_segment(Point { x: 0.3, y: 0.0 }, a, b)).abs() < 1e-12);
    }

    #[test]
    fn chunk_hull_merge_matches_direct_hull() {
        let mut r = util::rng(9, 1);
        let pts = util::rand_points(&mut r, 500);
        let direct = convex_hull_size(&pts) as i64;
        let mut merged = Vec::new();
        for chunk in pts.chunks(100) {
            merged.extend(HullSize::chunk_hull(chunk));
        }
        assert_eq!(convex_hull_size(&merged) as i64, direct);
    }
}
