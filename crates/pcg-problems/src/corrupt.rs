//! Deterministic output corruption for wrong-answer candidates.
//!
//! Each mode mimics a real decomposition bug's *symptom* and is
//! guaranteed to produce an output that fails the tolerant comparison
//! against the original (so a "wrong" sample can never be accidentally
//! scored correct).

use pcg_core::rng::splitmix64;
use pcg_core::{Corruption, Output};

/// Perturbation large enough to defeat the default relative tolerance.
fn bump_f64(x: f64) -> f64 {
    if x.is_finite() {
        x + 1.0f64.max(x.abs() * 1e-2)
    } else {
        0.0
    }
}

fn bump_i64(x: i64) -> i64 {
    x.wrapping_add(1 + (x.abs() / 8))
}

/// Corrupt `output` per `mode`, deterministically in `seed`.
pub fn corrupt(output: Output, mode: Corruption, seed: u64) -> Output {
    let pick = |len: usize| (splitmix64(seed) as usize) % len.max(1);
    match (mode, output) {
        // -------- vector outputs ------------------------------------
        (Corruption::PerturbElement, Output::F64s(mut v)) => {
            if v.is_empty() {
                return Output::F64s(vec![1.0]);
            }
            let i = pick(v.len());
            v[i] = bump_f64(v[i]);
            Output::F64s(v)
        }
        (Corruption::PerturbElement, Output::I64s(mut v)) => {
            if v.is_empty() {
                return Output::I64s(vec![1]);
            }
            let i = pick(v.len());
            v[i] = bump_i64(v[i]);
            Output::I64s(v)
        }
        (Corruption::OffByOneShift, Output::F64s(mut v)) => {
            if v.is_empty() {
                return Output::F64s(vec![1.0]);
            }
            v.rotate_right(1);
            // A rotation of constant data is a fixed point; perturb one
            // element so the corruption is unconditional.
            let i = pick(v.len());
            v[i] = bump_f64(v[i]);
            Output::F64s(v)
        }
        (Corruption::OffByOneShift, Output::I64s(mut v)) => {
            if v.is_empty() {
                return Output::I64s(vec![1]);
            }
            v.rotate_right(1);
            let i = pick(v.len());
            v[i] = bump_i64(v[i]);
            Output::I64s(v)
        }
        (Corruption::Truncate, Output::F64s(mut v)) => {
            if v.is_empty() {
                return Output::F64s(vec![1.0]);
            }
            v.pop();
            Output::F64s(v)
        }
        (Corruption::Truncate, Output::I64s(mut v)) => {
            if v.is_empty() {
                return Output::I64s(vec![1]);
            }
            v.pop();
            Output::I64s(v)
        }
        (Corruption::WrongScale, Output::F64s(v)) => {
            if v.is_empty() {
                return Output::F64s(vec![1.0]);
            }
            Output::F64s(v.into_iter().map(|x| bump_f64(x) * 2.0).collect())
        }
        (Corruption::WrongScale, Output::I64s(v)) => {
            if v.is_empty() {
                return Output::I64s(vec![1]);
            }
            Output::I64s(v.into_iter().map(|x| bump_i64(x).wrapping_mul(2)).collect())
        }
        // -------- scalar outputs ------------------------------------
        (Corruption::WrongScale, Output::F64(x)) => Output::F64(bump_f64(x) * 2.0),
        (Corruption::WrongScale, Output::I64(x)) => Output::I64(bump_i64(x).wrapping_mul(2)),
        (_, Output::F64(x)) => Output::F64(bump_f64(x)),
        (_, Output::I64(x)) => Output::I64(bump_i64(x)),
        (_, Output::Bool(b)) => Output::Bool(!b),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcg_core::Corruption::*;

    fn assert_differs(o: Output) {
        for mode in pcg_core::Corruption::ALL {
            for seed in [0u64, 1, 99] {
                let c = corrupt(o.clone(), mode, seed);
                assert!(
                    !c.approx_eq(&o),
                    "corruption {mode:?} seed {seed} left {o:?} unchanged: {c:?}"
                );
            }
        }
    }

    #[test]
    fn all_modes_change_vectors() {
        assert_differs(Output::F64s(vec![1.0, 2.0, 3.0]));
        assert_differs(Output::I64s(vec![5, 5, 5]));
        // Constant vectors (shift fixed point without the perturb).
        assert_differs(Output::F64s(vec![7.0; 8]));
        // Large magnitudes (tolerance would forgive +1.0 alone at 1e9).
        assert_differs(Output::F64s(vec![1e9, -1e9]));
    }

    #[test]
    fn all_modes_change_scalars() {
        assert_differs(Output::F64(0.0));
        assert_differs(Output::F64(1e12));
        assert_differs(Output::I64(0));
        assert_differs(Output::Bool(true));
    }

    #[test]
    fn empty_vectors_become_nonempty() {
        assert_differs(Output::F64s(vec![]));
        assert_differs(Output::I64s(vec![]));
    }

    #[test]
    fn deterministic_in_seed() {
        let o = Output::F64s((0..16).map(|i| i as f64).collect());
        let a = corrupt(o.clone(), PerturbElement, 7);
        let b = corrupt(o.clone(), PerturbElement, 7);
        assert_eq!(a, b);
        let c = corrupt(o, PerturbElement, 8);
        // Different seeds usually hit different elements (not required,
        // but the chosen index must be in range either way).
        let _ = c;
    }

    #[test]
    fn truncate_changes_length() {
        let o = Output::I64s(vec![1, 2, 3]);
        match corrupt(o, Truncate, 0) {
            Output::I64s(v) => assert_eq!(v.len(), 2),
            other => panic!("unexpected {other:?}"),
        }
    }
}
