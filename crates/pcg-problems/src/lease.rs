//! Substrate leasing: a process-wide cache of warm execution substrates.
//!
//! Cold candidate execution builds a fresh substrate per run — a timed
//! shmem pool spawns `threads - 1` OS threads, an MPI world spawns one
//! thread per rank (512 for the paper's headline configuration), a GPU
//! device builds its own host pool. Those spawns dominate the hot loop's
//! fixed costs. This module keeps finished substrates warm in a
//! process-wide cache keyed by [`LeaseKey`] (execution model +
//! threads/ranks; each key variant pins one cost model, so the cost
//! model is part of the key by construction) and hands them out as
//! [`Lease`]s.
//!
//! ## Checkout / return protocol
//!
//! * **Checkout** ([`checkout`]) pops a warm substrate for the key (or
//!   builds one on miss, timed into the setup counter). The leasing
//!   candidate's thread-local usage sink and [`pcg_core::CancelToken`]
//!   are re-installed on the substrate's workers (`retarget`) and
//!   per-run clocks are zeroed, so a reused substrate is
//!   indistinguishable from a fresh one to the candidate.
//! * **Return** happens on [`Lease`] drop. Per-run state is reset and
//!   the substrate parked for the next lease.
//! * **Poisoning**: if the lease drops during an unwind — candidate
//!   panic or cooperative cancellation — the substrate is *discarded*,
//!   never returned to the cache: its workers may hold arbitrary
//!   candidate state mid-region. An abandoned (hung) candidate never
//!   drops its lease at all, so its substrate is likewise never reused.
//!   This mirrors the harness's candidate-quarantine semantics.
//!
//! Parked substrates are bounded by a total parked-thread budget;
//! beyond it the least-recently-used substrates are evicted (their
//! threads joined). Substrates above a per-substrate thread cap are
//! never parked at all — at that size execution is simulation-bound
//! and reuse buys nothing (see [`MAX_PARKED_THREADS_PER_SUBSTRATE`]).
//! The cache itself lives for the process lifetime.

use parking_lot::Mutex;
use pcg_core::ExecutionModel;
use pcg_gpusim::Gpu;
use pcg_hybrid::HybridTeam;
use pcg_mpisim::RankTeam;
use pcg_patterns::ExecSpace;
use pcg_shmem::{Pool, ThreadCostModel};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Identity of a warm substrate: execution model plus resource shape.
/// Each variant pins one cost model (`ThreadCostModel::default()` for
/// thread pools, `CostModel::cluster()` supplied per-run for MPI), so
/// two candidates share a substrate only if they would have built
/// identical ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LeaseKey {
    /// Timed shmem pool (OpenMP path), default `ThreadCostModel`.
    Shmem {
        /// Team size.
        threads: usize,
    },
    /// Timed Kokkos execution space, default `ThreadCostModel`.
    Patterns {
        /// Space concurrency.
        threads: usize,
    },
    /// Persistent MPI rank team. Cost model and token semaphore are
    /// per-run (`World::run_on` rebuilds them), so ranks alone identify
    /// the substrate.
    MpiTeam {
        /// World size.
        ranks: usize,
    },
    /// Hybrid rank team plus per-rank timed pools.
    HybridTeam {
        /// Rank count.
        ranks: usize,
        /// Threads per rank pool.
        threads: usize,
    },
    /// GPU device emulator (`Cuda` or `Hip`; the profile follows the
    /// model).
    Gpu {
        /// Which GPU frontend.
        model: ExecutionModel,
    },
}

impl LeaseKey {
    /// OS threads a parked substrate of this shape keeps alive, for the
    /// parked-thread budget.
    fn parked_threads(self) -> usize {
        match self {
            LeaseKey::Shmem { threads } | LeaseKey::Patterns { threads } => {
                threads.saturating_sub(1)
            }
            // Rank teams that the multiplexer would adopt park only the
            // fiber worker pool (~2x cores), not one thread per rank —
            // which is what makes MPI-256/512 and hybrid 4x64 teams fit
            // the budget at all.
            LeaseKey::MpiTeam { ranks } => pcg_mpisim::sched::os_threads_for(ranks),
            LeaseKey::HybridTeam { ranks, threads } => {
                pcg_mpisim::sched::os_threads_for(ranks) + ranks * threads.saturating_sub(1)
            }
            LeaseKey::Gpu { .. } => {
                std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4) - 1
            }
        }
    }
}

/// Total OS threads the cache may keep parked before evicting
/// least-recently-used substrates. Parked threads sleep on condvars, so
/// the cost is address space, not CPU; the budget exists so resource
/// sweeps over many rank counts cannot accumulate threads without
/// bound.
pub const PARKED_THREAD_BUDGET: usize = 2048;

/// Substrates that keep more OS threads than this alive are never
/// parked: a returned lease drops them instead of caching them. Parking
/// an oversized team inflates the process thread count enough to slow
/// every *other* substrate spawn (stack mmaps contend on the process
/// memory map). With rank multiplexing, the paper-scale MPI teams
/// (256/512 ranks) account only their fiber worker pool and therefore
/// fit under this cap — only genuinely thread-per-unit shapes (large
/// shmem pools, wide hybrid pools) remain excluded.
pub const MAX_PARKED_THREADS_PER_SUBSTRATE: usize = 256;

/// Whether a substrate of this shape is worth leasing at all. Oversized
/// shapes are never parked, and building one through the persistent-team
/// machinery costs *more* than the cold inline spawn (an extra publish /
/// shutdown round-trip per run), so callers should fall back to the cold
/// path for them instead of checking out a lease.
pub fn parkable(key: LeaseKey) -> bool {
    key.parked_threads() <= MAX_PARKED_THREADS_PER_SUBSTRATE
}

enum Substrate {
    Pool(Pool),
    Space(ExecSpace),
    Mpi(RankTeam),
    Hybrid(HybridTeam),
    Gpu(Gpu),
}

struct Cached {
    id: u64,
    last_used: u64,
    sub: Substrate,
}

#[derive(Default)]
struct CacheState {
    entries: HashMap<LeaseKey, Vec<Cached>>,
    parked_threads: usize,
    tick: u64,
}

static CACHE: OnceLock<Mutex<CacheState>> = OnceLock::new();

fn cache() -> &'static Mutex<CacheState> {
    CACHE.get_or_init(|| Mutex::new(CacheState::default()))
}

static NEXT_ID: AtomicU64 = AtomicU64::new(1);
static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);
static POISONED: AtomicU64 = AtomicU64::new(0);
static EVICTED: AtomicU64 = AtomicU64::new(0);
static SETUP_NS: AtomicU64 = AtomicU64::new(0);

/// Point-in-time lease counters (process-global; the harness snapshots
/// around an evaluation and reports the delta).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LeaseStats {
    /// Checkouts served by a warm substrate.
    pub hits: u64,
    /// Checkouts that built a fresh substrate.
    pub misses: u64,
    /// Substrates discarded because their lease ended in an unwind.
    pub poisoned: u64,
    /// Substrates evicted by the parked-thread budget.
    pub evicted: u64,
    /// Seconds spent building substrates on misses.
    pub setup_s: f64,
}

/// Current counter values.
pub fn stats() -> LeaseStats {
    LeaseStats {
        hits: HITS.load(Ordering::Relaxed),
        misses: MISSES.load(Ordering::Relaxed),
        poisoned: POISONED.load(Ordering::Relaxed),
        evicted: EVICTED.load(Ordering::Relaxed),
        setup_s: SETUP_NS.load(Ordering::Relaxed) as f64 / 1e9,
    }
}

/// An exclusive hold on one warm substrate. Returns the substrate to
/// the cache on drop — unless the drop happens during an unwind, in
/// which case the substrate is poisoned and discarded.
pub struct Lease {
    key: LeaseKey,
    entry: Option<Cached>,
}

/// Check out a substrate for `key`: pop a warm one (re-aimed at the
/// calling candidate's usage sink and cancel token, clocks zeroed) or
/// build a fresh one. Call on the candidate's worker thread so the
/// substrate adopts — or, on a miss, is constructed under — the right
/// thread-locals.
pub fn checkout(key: LeaseKey) -> Lease {
    let popped = {
        let mut st = cache().lock();
        let popped = st.entries.get_mut(&key).and_then(Vec::pop);
        if popped.is_some() {
            st.parked_threads = st.parked_threads.saturating_sub(key.parked_threads());
        }
        popped
    };
    let entry = match popped {
        Some(c) => {
            HITS.fetch_add(1, Ordering::Relaxed);
            refresh(&c.sub);
            c
        }
        None => {
            MISSES.fetch_add(1, Ordering::Relaxed);
            let t0 = Instant::now();
            let sub = build(key);
            SETUP_NS.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
            Cached { id: NEXT_ID.fetch_add(1, Ordering::Relaxed), last_used: 0, sub }
        }
    };
    Lease { key, entry: Some(entry) }
}

/// Drop every parked substrate (joining its threads). Mainly for tests
/// and benchmarks that want a cold cache mid-process.
pub fn flush() {
    let drained: Vec<Cached> = {
        let mut st = cache().lock();
        st.parked_threads = 0;
        st.entries.drain().flat_map(|(_, v)| v).collect()
    };
    drop(drained);
}

fn build(key: LeaseKey) -> Substrate {
    match key {
        LeaseKey::Shmem { threads } => {
            Substrate::Pool(Pool::new_timed(threads, ThreadCostModel::default()))
        }
        LeaseKey::Patterns { threads } => Substrate::Space(ExecSpace::new_timed(threads)),
        LeaseKey::MpiTeam { ranks } => Substrate::Mpi(RankTeam::new(ranks)),
        LeaseKey::HybridTeam { ranks, threads } => {
            Substrate::Hybrid(HybridTeam::new(ranks, threads))
        }
        LeaseKey::Gpu { model } => Substrate::Gpu(match model {
            ExecutionModel::Cuda => pcg_gpusim::cuda::device(),
            ExecutionModel::Hip => pcg_gpusim::hip::device(),
            other => panic!("lease key Gpu requires a GPU model, got {other:?}"),
        }),
    }
}

/// Re-aim a warm substrate at the calling candidate and zero its
/// per-run clocks. Rank teams need nothing here: their per-run state
/// (mailboxes, semaphore, sink/token propagation) is rebuilt by every
/// `run_on` call.
fn refresh(sub: &Substrate) {
    match sub {
        Substrate::Pool(p) => {
            p.retarget();
            p.reset_virtual_clock();
        }
        Substrate::Space(s) => {
            s.retarget();
            s.reset_virtual_clock();
        }
        Substrate::Gpu(g) => {
            g.retarget();
            g.reset_clock();
        }
        Substrate::Mpi(_) | Substrate::Hybrid(_) => {}
    }
}

impl Lease {
    /// Stable identity of the leased substrate instance (for tests
    /// asserting reuse / poisoning behavior).
    pub fn instance_id(&self) -> u64 {
        self.entry.as_ref().expect("lease holds a substrate").id
    }

    fn sub(&self) -> &Substrate {
        &self.entry.as_ref().expect("lease holds a substrate").sub
    }

    /// The leased shmem pool. Panics if the key was not `Shmem`.
    pub fn pool(&self) -> &Pool {
        match self.sub() {
            Substrate::Pool(p) => p,
            _ => panic!("lease {:?} does not hold a shmem pool", self.key),
        }
    }

    /// The leased Kokkos space. Panics if the key was not `Patterns`.
    pub fn space(&self) -> &ExecSpace {
        match self.sub() {
            Substrate::Space(s) => s,
            _ => panic!("lease {:?} does not hold an exec space", self.key),
        }
    }

    /// The leased MPI rank team. Panics if the key was not `MpiTeam`.
    pub fn mpi_team(&self) -> &RankTeam {
        match self.sub() {
            Substrate::Mpi(t) => t,
            _ => panic!("lease {:?} does not hold a rank team", self.key),
        }
    }

    /// The leased hybrid team. Panics if the key was not `HybridTeam`.
    pub fn hybrid_team(&self) -> &HybridTeam {
        match self.sub() {
            Substrate::Hybrid(t) => t,
            _ => panic!("lease {:?} does not hold a hybrid team", self.key),
        }
    }

    /// The leased GPU device. Panics if the key was not `Gpu`.
    pub fn gpu(&self) -> &Gpu {
        match self.sub() {
            Substrate::Gpu(g) => g,
            _ => panic!("lease {:?} does not hold a gpu", self.key),
        }
    }
}

impl Drop for Lease {
    fn drop(&mut self) {
        let Some(mut entry) = self.entry.take() else { return };
        if std::thread::panicking() {
            // The candidate unwound (crash or cooperative cancellation)
            // while holding the substrate: poison it. Dropping joins the
            // substrate's threads; mid-region workers finish their
            // current job first, so the join cannot hang on a
            // cooperative candidate.
            POISONED.fetch_add(1, Ordering::Relaxed);
            return;
        }
        // Oversized substrates are execution-bound, not spawn-bound:
        // drop instead of parking (see MAX_PARKED_THREADS_PER_SUBSTRATE).
        if self.key.parked_threads() > MAX_PARKED_THREADS_PER_SUBSTRATE {
            drop(entry);
            return;
        }
        // Clean return: clear per-run clocks so the next lease starts
        // from zero even if the checkout-side refresh is skipped.
        refresh(&entry.sub);
        let evicted: Vec<Cached> = {
            let mut st = cache().lock();
            st.tick += 1;
            entry.last_used = st.tick;
            st.parked_threads += self.key.parked_threads();
            st.entries.entry(self.key).or_default().push(entry);
            let mut evicted = Vec::new();
            while st.parked_threads > PARKED_THREAD_BUDGET {
                // Evict the least-recently-used parked substrate.
                let Some((&victim_key, _)) = st
                    .entries
                    .iter()
                    .filter(|(_, v)| !v.is_empty())
                    .min_by_key(|(_, v)| v.iter().map(|c| c.last_used).min().unwrap_or(u64::MAX))
                else {
                    break;
                };
                let list = st.entries.get_mut(&victim_key).expect("victim key present");
                // Oldest entry within the key's list.
                let oldest = list
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, c)| c.last_used)
                    .map(|(i, _)| i)
                    .expect("victim list non-empty");
                let victim = list.swap_remove(oldest);
                st.parked_threads =
                    st.parked_threads.saturating_sub(victim_key.parked_threads());
                EVICTED.fetch_add(1, Ordering::Relaxed);
                evicted.push(victim);
            }
            evicted
        };
        // Join evicted substrates' threads outside the cache lock.
        drop(evicted);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The cache and counters are process-global and `flush` is
    // cross-key destructive, so these tests serialize on one lock and
    // use thread counts no other suite leases.
    static TEST_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn serial() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn clean_return_is_reused_and_stats_move() {
        let _s = serial();
        let key = LeaseKey::Shmem { threads: 3 };
        let before = stats();
        let first = checkout(key);
        let id = first.instance_id();
        assert_eq!(first.pool().num_threads(), 3);
        drop(first);
        let second = checkout(key);
        assert_eq!(second.instance_id(), id, "clean return must be reused");
        let after = stats();
        assert!(after.hits > before.hits);
        assert!(after.misses > before.misses);
        assert!(after.setup_s >= before.setup_s);
    }

    #[test]
    fn poisoned_substrate_is_never_rehanded() {
        let _s = serial();
        let key = LeaseKey::Patterns { threads: 5 };
        let lease = checkout(key);
        let poisoned_id = lease.instance_id();
        let before = stats();
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
            let _held = lease;
            panic!("candidate crash while holding the lease");
        }));
        assert!(err.is_err());
        assert_eq!(stats().poisoned, before.poisoned + 1);
        let next = checkout(key);
        assert_ne!(next.instance_id(), poisoned_id, "poisoned substrate must be discarded");
    }

    #[test]
    fn cancelled_candidate_poisons_substrate() {
        let _s = serial();
        use pcg_core::cancel::{self, CancelToken};
        let key = LeaseKey::Shmem { threads: 9 };
        let before = stats().poisoned;
        let leased_id = AtomicU64::new(0);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let token = CancelToken::new();
            let _guard = cancel::install_token(Some(token.clone()));
            let lease = checkout(key);
            leased_id.store(lease.instance_id(), Ordering::SeqCst);
            token.cancel();
            // Cooperative cancellation unwinds exactly like the
            // substrates' blocking points do; the lease drops mid-unwind.
            cancel::check_current();
        }));
        assert!(err.is_err());
        assert_eq!(stats().poisoned, before + 1);
        let next = checkout(key);
        assert_ne!(
            next.instance_id(),
            leased_id.load(Ordering::SeqCst),
            "a substrate whose lease ended in cancellation must be discarded"
        );
    }

    #[test]
    fn oversized_substrates_are_never_parked() {
        let _s = serial();
        // MPI teams are no longer a reliable oversized shape: the rank
        // multiplexer accounts them at the fiber-worker count. Shmem
        // pools are genuinely thread-per-unit.
        let key = LeaseKey::Shmem { threads: MAX_PARKED_THREADS_PER_SUBSTRATE + 2 };
        let first = checkout(key);
        let id = first.instance_id();
        drop(first);
        let second = checkout(key);
        assert_ne!(
            second.instance_id(),
            id,
            "substrates over the parked-size cap must not be cached"
        );
    }

    #[test]
    fn multiplexed_rank_teams_fit_the_parked_budget() {
        // Whenever the scheduler would multiplex a paper-scale world,
        // its lease accounting must make the team parkable. (On a host
        // with >= 256 cores, Auto runs 512 ranks thread-per-rank and
        // the team is rightly not parkable — hence the guard.)
        for ranks in [256usize, 512] {
            if pcg_mpisim::sched::should_multiplex(ranks) {
                assert!(
                    parkable(LeaseKey::MpiTeam { ranks }),
                    "multiplexed {ranks}-rank team must be parkable"
                );
            }
        }
    }

    #[test]
    fn wrong_accessor_panics() {
        let _s = serial();
        let lease = checkout(LeaseKey::MpiTeam { ranks: 2 });
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| lease.pool()));
        assert!(err.is_err());
        assert_eq!(lease.mpi_team().size(), 2);
    }

    #[test]
    fn flush_empties_the_cache() {
        let _s = serial();
        let key = LeaseKey::Shmem { threads: 7 };
        let id = {
            let l = checkout(key);
            l.instance_id()
        };
        flush();
        let l = checkout(key);
        assert_ne!(l.instance_id(), id, "flush must discard parked substrates");
    }
}
