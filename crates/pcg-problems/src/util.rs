//! Shared workload structures and helpers for the problem suite.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic RNG for a (seed, stream) pair.
pub fn rng(seed: u64, stream: u64) -> StdRng {
    StdRng::seed_from_u64(pcg_core::rng::splitmix64(seed ^ stream.wrapping_mul(0x9E37_79B9)))
}

/// `n` uniform f64 values in `[lo, hi)`.
pub fn rand_f64s(r: &mut StdRng, n: usize, lo: f64, hi: f64) -> Vec<f64> {
    (0..n).map(|_| r.gen_range(lo..hi)).collect()
}

/// `n` uniform i64 values in `[lo, hi)`.
pub fn rand_i64s(r: &mut StdRng, n: usize, lo: i64, hi: i64) -> Vec<i64> {
    (0..n).map(|_| r.gen_range(lo..hi)).collect()
}

/// A compressed-sparse-row matrix with f64 values.
#[derive(Debug, Clone, PartialEq)]
pub struct Csr {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
    /// Row start offsets, length `rows + 1`.
    pub row_ptr: Vec<usize>,
    /// Column indices, one per nonzero.
    pub col_idx: Vec<u32>,
    /// Nonzero values.
    pub vals: Vec<f64>,
}

impl Csr {
    /// Random sparse matrix with ~`nnz_per_row` nonzeros per row
    /// (sorted, unique column indices per row).
    pub fn random(r: &mut StdRng, rows: usize, cols: usize, nnz_per_row: usize) -> Csr {
        let mut row_ptr = Vec::with_capacity(rows + 1);
        let mut col_idx = Vec::new();
        let mut vals = Vec::new();
        row_ptr.push(0);
        for _ in 0..rows {
            let k = r.gen_range(1..=(2 * nnz_per_row).min(cols.max(1)));
            let mut cols_here: Vec<u32> = (0..k).map(|_| r.gen_range(0..cols as u32)).collect();
            cols_here.sort_unstable();
            cols_here.dedup();
            for c in cols_here {
                col_idx.push(c);
                vals.push(r.gen_range(-1.0..1.0));
            }
            row_ptr.push(col_idx.len());
        }
        Csr { rows, cols, row_ptr, col_idx, vals }
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// The nonzero range of row `i`.
    pub fn row(&self, i: usize) -> std::ops::Range<usize> {
        self.row_ptr[i]..self.row_ptr[i + 1]
    }

    /// Serial sparse matrix-vector product.
    pub fn spmv(&self, x: &[f64]) -> Vec<f64> {
        (0..self.rows)
            .map(|i| self.row(i).map(|k| self.vals[k] * x[self.col_idx[k] as usize]).sum())
            .collect()
    }

    /// Approximate byte footprint.
    pub fn bytes(&self) -> usize {
        self.row_ptr.len() * 8 + self.col_idx.len() * 4 + self.vals.len() * 8
    }
}

/// An undirected graph in CSR adjacency form.
#[derive(Debug, Clone, PartialEq)]
pub struct Graph {
    /// Number of vertices.
    pub n: usize,
    /// Neighbor list offsets, length `n + 1`.
    pub offsets: Vec<usize>,
    /// Flattened neighbor lists.
    pub neighbors: Vec<u32>,
}

impl Graph {
    /// Random undirected graph with ~`avg_degree` edges per vertex,
    /// organized as a union of small communities plus random long
    /// edges (so component structure is interesting but bounded).
    pub fn random(r: &mut StdRng, n: usize, avg_degree: usize) -> Graph {
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
        let m = n * avg_degree / 2;
        // Community-local edges keep several components likely.
        let communities = (n / 64).max(1);
        let csize = n.div_ceil(communities);
        for _ in 0..m {
            let c = r.gen_range(0..communities);
            let lo = c * csize;
            let hi = ((c + 1) * csize).min(n);
            if hi - lo < 2 {
                continue;
            }
            let a = r.gen_range(lo..hi);
            let b = r.gen_range(lo..hi);
            if a != b {
                adj[a].push(b as u32);
                adj[b].push(a as u32);
            }
        }
        // A sprinkle of long-range edges bridges some communities, so
        // BFS distances and component structure stay interesting.
        for _ in 0..(m / 8).max(1) {
            let a = r.gen_range(0..n);
            let b = r.gen_range(0..n);
            if a != b {
                adj[a].push(b as u32);
                adj[b].push(a as u32);
            }
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut neighbors = Vec::new();
        offsets.push(0);
        for list in &mut adj {
            list.sort_unstable();
            list.dedup();
            neighbors.extend_from_slice(list);
            offsets.push(neighbors.len());
        }
        Graph { n, offsets, neighbors }
    }

    /// Neighbors of vertex `v`.
    pub fn neighbors_of(&self, v: usize) -> &[u32] {
        &self.neighbors[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Degree of vertex `v`.
    pub fn degree(&self, v: usize) -> usize {
        self.offsets[v + 1] - self.offsets[v]
    }

    /// Approximate byte footprint.
    pub fn bytes(&self) -> usize {
        self.offsets.len() * 8 + self.neighbors.len() * 4
    }

    /// Serial connected-component count (iterative BFS).
    pub fn component_count(&self) -> usize {
        let mut seen = vec![false; self.n];
        let mut queue = std::collections::VecDeque::new();
        let mut components = 0;
        for start in 0..self.n {
            if seen[start] {
                continue;
            }
            components += 1;
            seen[start] = true;
            queue.push_back(start as u32);
            while let Some(v) = queue.pop_front() {
                for &w in self.neighbors_of(v as usize) {
                    if !seen[w as usize] {
                        seen[w as usize] = true;
                        queue.push_back(w);
                    }
                }
            }
        }
        components
    }
}

/// A 2-D point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point {
    /// X coordinate.
    pub x: f64,
    /// Y coordinate.
    pub y: f64,
}

/// `n` uniform points in the unit square.
pub fn rand_points(r: &mut StdRng, n: usize) -> Vec<Point> {
    (0..n).map(|_| Point { x: r.gen_range(0.0..1.0), y: r.gen_range(0.0..1.0) }).collect()
}

/// In-place iterative radix-2 Cooley-Tukey FFT (`inverse` for IFFT,
/// including the 1/n normalization). `re.len()` must be a power of two.
pub fn fft_inplace(re: &mut [f64], im: &mut [f64], inverse: bool) {
    let n = re.len();
    assert!(n.is_power_of_two(), "fft length must be a power of two");
    assert_eq!(re.len(), im.len());
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i as u32).reverse_bits() >> (32 - bits);
        let j = j as usize;
        if j > i {
            re.swap(i, j);
            im.swap(i, j);
        }
    }
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let (wr, wi) = (ang.cos(), ang.sin());
        let mut i = 0;
        while i < n {
            let (mut cr, mut ci) = (1.0f64, 0.0f64);
            for j in 0..len / 2 {
                let (ur, ui) = (re[i + j], im[i + j]);
                let (vr, vi) = (
                    re[i + j + len / 2] * cr - im[i + j + len / 2] * ci,
                    re[i + j + len / 2] * ci + im[i + j + len / 2] * cr,
                );
                re[i + j] = ur + vr;
                im[i + j] = ui + vi;
                re[i + j + len / 2] = ur - vr;
                im[i + j + len / 2] = ui - vi;
                let (ncr, nci) = (cr * wr - ci * wi, cr * wi + ci * wr);
                cr = ncr;
                ci = nci;
            }
            i += len;
        }
        len <<= 1;
    }
    if inverse {
        let inv = 1.0 / n as f64;
        for x in re.iter_mut() {
            *x *= inv;
        }
        for x in im.iter_mut() {
            *x *= inv;
        }
    }
}

/// Monotone-chain convex hull; returns hull vertex count.
pub fn convex_hull_size(points: &[Point]) -> usize {
    if points.len() < 3 {
        return points.len();
    }
    let mut pts: Vec<Point> = points.to_vec();
    pts.sort_by(|a, b| a.x.partial_cmp(&b.x).unwrap().then(a.y.partial_cmp(&b.y).unwrap()));
    pts.dedup_by(|a, b| a.x == b.x && a.y == b.y);
    if pts.len() < 3 {
        return pts.len();
    }
    let cross = |o: Point, a: Point, b: Point| (a.x - o.x) * (b.y - o.y) - (a.y - o.y) * (b.x - o.x);
    // Standard monotone chain: build lower and upper hulls separately.
    let mut lower: Vec<Point> = Vec::new();
    for &p in &pts {
        while lower.len() >= 2 && cross(lower[lower.len() - 2], lower[lower.len() - 1], p) <= 0.0 {
            lower.pop();
        }
        lower.push(p);
    }
    let mut upper: Vec<Point> = Vec::new();
    for &p in pts.iter().rev() {
        while upper.len() >= 2 && cross(upper[upper.len() - 2], upper[upper.len() - 1], p) <= 0.0 {
            upper.pop();
        }
        upper.push(p);
    }
    // Each chain's endpoints repeat the other's.
    lower.len() + upper.len() - 2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csr_spmv_identity_like() {
        let mut r = rng(1, 0);
        let m = Csr::random(&mut r, 50, 50, 4);
        assert_eq!(m.row_ptr.len(), 51);
        assert_eq!(m.nnz(), m.col_idx.len());
        let x = vec![1.0; 50];
        let y = m.spmv(&x);
        // Row sums match manual accumulation.
        for (i, yi) in y.iter().enumerate() {
            let want: f64 = m.row(i).map(|k| m.vals[k]).sum();
            assert!((yi - want).abs() < 1e-12);
        }
    }

    #[test]
    fn graph_is_symmetric_and_deduped() {
        let mut r = rng(2, 0);
        let g = Graph::random(&mut r, 300, 6);
        for v in 0..g.n {
            let ns = g.neighbors_of(v);
            for w in ns.windows(2) {
                assert!(w[0] < w[1], "sorted+deduped");
            }
            for &w in ns {
                assert!(g.neighbors_of(w as usize).contains(&(v as u32)), "symmetric");
            }
        }
    }

    #[test]
    fn component_count_on_known_graph() {
        // Two triangles, one isolated vertex.
        let g = Graph {
            n: 7,
            offsets: vec![0, 2, 4, 6, 8, 10, 12, 12],
            neighbors: vec![1, 2, 0, 2, 0, 1, 4, 5, 3, 5, 3, 4],
        };
        assert_eq!(g.component_count(), 3);
    }

    #[test]
    fn fft_roundtrip() {
        let mut r = rng(3, 0);
        let n = 256;
        let re0 = rand_f64s(&mut r, n, -1.0, 1.0);
        let im0 = rand_f64s(&mut r, n, -1.0, 1.0);
        let (mut re, mut im) = (re0.clone(), im0.clone());
        fft_inplace(&mut re, &mut im, false);
        fft_inplace(&mut re, &mut im, true);
        for i in 0..n {
            assert!((re[i] - re0[i]).abs() < 1e-9);
            assert!((im[i] - im0[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn fft_of_constant_is_impulse() {
        let n = 64;
        let mut re = vec![1.0; n];
        let mut im = vec![0.0; n];
        fft_inplace(&mut re, &mut im, false);
        assert!((re[0] - n as f64).abs() < 1e-9);
        assert!(re[1..].iter().all(|&x| x.abs() < 1e-9));
    }

    #[test]
    fn hull_of_square_plus_interior() {
        let mut pts = vec![
            Point { x: 0.0, y: 0.0 },
            Point { x: 1.0, y: 0.0 },
            Point { x: 1.0, y: 1.0 },
            Point { x: 0.0, y: 1.0 },
        ];
        for k in 0..10 {
            pts.push(Point { x: 0.3 + 0.01 * k as f64, y: 0.5 });
        }
        assert_eq!(convex_hull_size(&pts), 4);
    }

    #[test]
    fn hull_degenerate_cases() {
        assert_eq!(convex_hull_size(&[]), 0);
        assert_eq!(convex_hull_size(&[Point { x: 0.0, y: 0.0 }]), 1);
        let two = [Point { x: 0.0, y: 0.0 }, Point { x: 1.0, y: 1.0 }];
        assert_eq!(convex_hull_size(&two), 2);
    }
}
