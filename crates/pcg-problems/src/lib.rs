//! # pcg-problems
//!
//! The PCGBench problem suite: 12 problem types x 5 problems (paper
//! Table 1), each with a seeded input generator, a handwritten optimal
//! sequential baseline (the paper's `T*`), an output validator (via
//! `pcg_core::Output` tolerant comparison), and reference parallel
//! implementations for all seven execution models — 420 tasks in total.
//!
//! The [`framework`] module defines the [`framework::Spec`] trait each
//! problem implements and the object-safe [`framework::Problem`] runner
//! the harness consumes: given a task, a [`pcg_core::CandidateKind`]
//! (what a synthetic model "generated"), and a resource count, it builds
//! the corresponding executable artifact, runs it on the right substrate,
//! and returns output plus (virtual or measured) runtime.
//!
//! ```
//! use pcg_core::{CandidateKind, ExecutionModel, Quality};
//! use pcg_problems::registry;
//!
//! let problems = registry::all_problems();
//! assert_eq!(problems.len(), 60);
//! let p = &problems[0];
//! let base = p.run_baseline(42, 1 << 10);
//! let run = p
//!     .run_candidate(
//!         ExecutionModel::OpenMp,
//!         CandidateKind::Correct(Quality::Efficient),
//!         4,
//!         42,
//!         1 << 10,
//!     )
//!     .unwrap();
//! assert!(run.output.approx_eq(&base.output));
//! ```

pub mod corrupt;
pub mod fallback;
pub mod framework;
pub mod input_cache;
pub mod lease;
pub mod registry;
pub mod util;

mod types;

pub use framework::{Problem, Resources, Spec, TimedRun};
