//! Generic "correct but inefficient" candidate wrappers.
//!
//! These reproduce the classic failure modes of LLM-generated parallel
//! code that *runs and validates* but wastes the parallel resources —
//! the behavior the paper's `speedup_n@k` / `efficiency_n@k` metrics are
//! designed to expose:
//!
//! * shared memory: a parallel region in which one thread does all the
//!   work (`lopsided_*`),
//! * MPI: "root computes": rank 0 runs the whole problem serially and
//!   broadcasts the result (`root_computes_*`),
//! * GPU: a one-thread kernel launch (`single_thread_gpu`).
//!
//! All wrappers genuinely exercise the substrate API (so they pass the
//! harness's usage check) and genuinely account realistic virtual time
//! for their degenerate schedules.

use parking_lot::Mutex;
use pcg_core::Output;
use pcg_gpusim::{Gpu, Launch};
use pcg_hybrid::HybridCtx;
use pcg_mpisim::Comm;
use pcg_patterns::ExecSpace;
use pcg_shmem::{Pool, Schedule};

/// One-iteration work-sharing loop: the whole problem lands in a single
/// chunk on one thread, so the modeled region time is the full serial
/// work no matter how many threads the pool has.
pub fn lopsided_shmem(pool: &Pool, serial: impl Fn() -> Output + Sync) -> Output {
    let slot: Mutex<Option<Output>> = Mutex::new(None);
    pool.parallel_for(0..1, Schedule::Static { chunk: 0 }, |_| {
        *slot.lock() = Some(serial());
    });
    slot.into_inner().expect("loop body ran")
}

/// League-of-one team dispatch: the Kokkos flavor of the same mistake.
pub fn lopsided_patterns(space: &ExecSpace, serial: impl Fn() -> Output + Sync) -> Output {
    let slot: Mutex<Option<Output>> = Mutex::new(None);
    space.parallel_for_teams(1, |_team| {
        *slot.lock() = Some(serial());
    });
    slot.into_inner().expect("team body ran")
}

/// "Root computes": rank 0 does everything and broadcasts a result-sized
/// payload; other ranks idle at the broadcast. Compute lands on rank 0's
/// clock (measured), so simulated time shows no rank scaling at all.
pub fn root_computes_mpi(
    comm: &Comm<'_>,
    result_bytes: usize,
    serial: impl Fn() -> Output,
) -> Option<Output> {
    let output = (comm.rank() == 0).then(&serial);
    // Broadcast a payload standing in for the serialized result, so the
    // collective cost is realistic for the data volume.
    let mut payload = if comm.rank() == 0 {
        vec![0.0f64; result_bytes.div_ceil(8)]
    } else {
        Vec::new()
    };
    comm.bcast(0, &mut payload);
    output
}

/// Hybrid flavor of root-computes: rank 0 runs the problem inside a
/// one-iteration threaded loop (so the thread level is also wasted).
pub fn root_computes_hybrid(
    ctx: &HybridCtx<'_>,
    result_bytes: usize,
    serial: impl Fn() -> Output + Sync,
) -> Option<Output> {
    let comm = ctx.comm();
    let slot: Mutex<Option<Output>> = Mutex::new(None);
    if comm.rank() == 0 {
        ctx.par_for(0..1, |_| {
            *slot.lock() = Some(serial());
        });
    }
    let mut payload = if comm.rank() == 0 {
        vec![0.0f64; result_bytes.div_ceil(8)]
    } else {
        Vec::new()
    };
    comm.bcast(0, &mut payload);
    slot.into_inner()
}

/// One-thread kernel launch: records GPU usage via a real (degenerate)
/// launch, computes the answer host-side, and charges the device time a
/// single-thread kernel streaming the working set would take.
pub fn single_thread_gpu(gpu: &Gpu, working_set_bytes: usize, serial: impl Fn() -> Output) -> Output {
    gpu.launch_each(Launch::new(1, 1), |_, _| {});
    let bytes = (2 * working_set_bytes) as u64;
    gpu.charge_time(gpu.profile().kernel_time(1, bytes, 0, 0));
    serial()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcg_core::usage::UsageScope;
    use pcg_core::ExecutionModel;
    use pcg_mpisim::{CostModel, World};
    use pcg_shmem::ThreadCostModel;

    fn answer() -> Output {
        Output::F64(42.0)
    }

    #[test]
    fn lopsided_shmem_returns_answer_and_uses_api() {
        let scope = UsageScope::begin();
        let pool = Pool::new_timed(8, ThreadCostModel::default());
        let out = lopsided_shmem(&pool, answer);
        assert!(out.approx_eq(&answer()));
        assert!(pool.virtual_elapsed() > 0.0);
        assert!(scope.finish().used_required_api(ExecutionModel::OpenMp));
    }

    #[test]
    fn lopsided_shmem_time_does_not_shrink_with_threads() {
        let slow = || {
            let mut acc = 0u64;
            for i in 0..200_000u64 {
                acc = acc.wrapping_add(std::hint::black_box(i));
            }
            Output::I64(acc as i64)
        };
        let t = |threads: usize| {
            let pool = Pool::new_timed(threads, ThreadCostModel::default());
            lopsided_shmem(&pool, slow);
            pool.virtual_elapsed()
        };
        let t1 = (0..3).map(|_| t(1)).fold(f64::MAX, f64::min);
        let t16 = (0..3).map(|_| t(16)).fold(f64::MAX, f64::min);
        assert!(t16 > t1 * 0.3, "t1={t1} t16={t16}");
    }

    #[test]
    fn lopsided_patterns_returns_answer() {
        let scope = UsageScope::begin();
        let space = ExecSpace::new_timed(4);
        let out = lopsided_patterns(&space, answer);
        assert!(out.approx_eq(&answer()));
        assert!(scope.finish().used_required_api(ExecutionModel::Kokkos));
    }

    #[test]
    fn root_computes_mpi_only_root_returns() {
        let world = World::new(4).with_cost_model(CostModel::deterministic());
        let outcome = world.run(|comm| root_computes_mpi(comm, 1024, answer)).unwrap();
        assert!(outcome.per_rank[0].as_ref().unwrap().approx_eq(&answer()));
        assert!(outcome.per_rank[1..].iter().all(Option::is_none));
        assert!(outcome.elapsed > 0.0, "broadcast must cost virtual time");
    }

    #[test]
    fn single_thread_gpu_charges_heavily() {
        let gpu = pcg_gpusim::cuda::device();
        let scope = UsageScope::begin();
        let out = single_thread_gpu(&gpu, 1 << 20, answer);
        assert!(out.approx_eq(&answer()));
        assert!(scope.finish().used_required_api(ExecutionModel::Cuda));
        // A 1-thread kernel over 2 MiB should be far slower than a
        // saturating launch over the same bytes.
        let fast = gpu.profile().kernel_time(1 << 20, 2 << 20, 0, 0);
        assert!(gpu.elapsed() > fast * 100.0);
    }
}
