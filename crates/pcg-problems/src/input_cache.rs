//! Input memoization: `generate(seed, size)` results cached per
//! `(problem, seed, size)`.
//!
//! Every rep of every candidate at the same execution coordinate feeds
//! on the same deterministic input instance, yet the cold path rebuilds
//! it from scratch each run. Generators are seeded and pure, so the
//! instance can be built once and shared read-only behind an [`Arc`]
//! across reps, candidates, and concurrent scheduler cells. An LRU byte
//! cap bounds retained memory so paper-scale inputs do not accumulate;
//! inputs larger than the cap are returned uncached.
//!
//! The cache is type-erased (`Arc<dyn Any>`): each problem's `Input`
//! type is recovered by downcast, which is infallible because the key
//! includes the [`ProblemId`] and each problem has exactly one input
//! type. Bypassed entirely when the warm path is disabled.

use parking_lot::Mutex;
use pcg_core::{warm, ProblemId};
use std::any::Any;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

type Key = (ProblemId, u64, usize);

struct Entry {
    value: Arc<dyn Any + Send + Sync>,
    bytes: usize,
    last_used: u64,
}

#[derive(Default)]
struct State {
    map: HashMap<Key, Entry>,
    total_bytes: usize,
    tick: u64,
}

static STATE: OnceLock<Mutex<State>> = OnceLock::new();

fn state() -> &'static Mutex<State> {
    STATE.get_or_init(|| Mutex::new(State::default()))
}

/// Default retained-bytes cap: large enough for a full quick-config
/// grid's working set, small next to paper-scale inputs at every sweep
/// size.
pub const DEFAULT_BYTE_CAP: usize = 256 << 20;

static BYTE_CAP: AtomicUsize = AtomicUsize::new(DEFAULT_BYTE_CAP);

/// Current LRU byte cap.
pub fn byte_cap() -> usize {
    BYTE_CAP.load(Ordering::Relaxed)
}

/// Override the LRU byte cap (takes effect on subsequent inserts).
pub fn set_byte_cap(bytes: usize) {
    BYTE_CAP.store(bytes, Ordering::Relaxed);
}

static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);
static EVICTED: AtomicU64 = AtomicU64::new(0);

/// Point-in-time input-cache counters (process-global; the harness
/// snapshots around an evaluation and reports the delta).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InputCacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that ran the generator.
    pub misses: u64,
    /// Entries evicted by the byte cap.
    pub evicted: u64,
}

/// Current counter values.
pub fn stats() -> InputCacheStats {
    InputCacheStats {
        hits: HITS.load(Ordering::Relaxed),
        misses: MISSES.load(Ordering::Relaxed),
        evicted: EVICTED.load(Ordering::Relaxed),
    }
}

/// Fetch the input instance for `(problem, seed, size)`, running
/// `generate` on a miss (outside the cache lock). `bytes_of` sizes the
/// instance for the LRU cap.
pub fn get_or_generate<T, G, B>(
    problem: ProblemId,
    seed: u64,
    size: usize,
    bytes_of: B,
    generate: G,
) -> Arc<T>
where
    T: Send + Sync + 'static,
    G: FnOnce() -> T,
    B: FnOnce(&T) -> usize,
{
    if !warm::enabled() {
        return Arc::new(generate());
    }
    let key = (problem, seed, size);
    {
        let mut st = state().lock();
        st.tick += 1;
        let tick = st.tick;
        if let Some(e) = st.map.get_mut(&key) {
            e.last_used = tick;
            let value = Arc::clone(&e.value);
            drop(st);
            HITS.fetch_add(1, Ordering::Relaxed);
            return value.downcast::<T>().expect("input type fixed per problem id");
        }
    }
    MISSES.fetch_add(1, Ordering::Relaxed);
    let value = Arc::new(generate());
    let bytes = bytes_of(&value);
    let cap = byte_cap();
    if bytes <= cap {
        let erased: Arc<dyn Any + Send + Sync> = Arc::clone(&value) as _;
        let mut st = state().lock();
        st.tick += 1;
        let tick = st.tick;
        // A concurrent generator for the same key may have inserted
        // first; keep the existing entry (both values are identical by
        // determinism of `generate`).
        if let std::collections::hash_map::Entry::Vacant(slot) = st.map.entry(key) {
            slot.insert(Entry { value: erased, bytes, last_used: tick });
            st.total_bytes += bytes;
            while st.total_bytes > cap {
                let Some((&victim, _)) = st.map.iter().min_by_key(|(_, e)| e.last_used) else {
                    break;
                };
                // Never evict what we just inserted — the newest entry
                // is by definition not the LRU unless it is alone.
                if victim == key && st.map.len() == 1 {
                    break;
                }
                let e = st.map.remove(&victim).expect("victim present");
                st.total_bytes = st.total_bytes.saturating_sub(e.bytes);
                EVICTED.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
    value
}

/// Drop every cached input. Mainly for tests and benchmarks that want a
/// cold cache mid-process.
pub fn flush() {
    let dropped: Vec<Entry> = {
        let mut st = state().lock();
        st.total_bytes = 0;
        st.map.drain().map(|(_, e)| e).collect()
    };
    drop(dropped);
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcg_core::ProblemType;
    use std::sync::atomic::AtomicU32;

    fn pid(variant: usize) -> ProblemId {
        ProblemId::new(ProblemType::Sort, variant)
    }

    #[test]
    fn second_lookup_shares_the_same_instance() {
        let calls = AtomicU32::new(0);
        let gen = || {
            calls.fetch_add(1, Ordering::SeqCst);
            vec![1u8, 2, 3]
        };
        // Unlikely coordinates so concurrent suites cannot collide.
        let a = get_or_generate(pid(0), 0xdead_0001, 31, |v| v.len(), gen);
        let b = get_or_generate(pid(0), 0xdead_0001, 31, |v: &Vec<u8>| v.len(), || {
            calls.fetch_add(1, Ordering::SeqCst);
            vec![9u8]
        });
        assert_eq!(calls.load(Ordering::SeqCst), 1, "generator must run once");
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(*b, vec![1, 2, 3]);
    }

    #[test]
    fn oversized_inputs_are_not_cached() {
        let cap = byte_cap();
        let v = get_or_generate(pid(1), 0xdead_0002, 33, |_| cap + 1, || vec![0u8; 8]);
        let w = get_or_generate(pid(1), 0xdead_0002, 33, |_| cap + 1, || vec![1u8; 8]);
        assert!(!Arc::ptr_eq(&v, &w), "oversized entries must bypass the cache");
    }

    #[test]
    fn byte_cap_evicts_least_recently_used() {
        // Use a private key range and temporarily shrink the cap.
        let old = byte_cap();
        set_byte_cap(100);
        let before = stats().evicted;
        let _a = get_or_generate(pid(2), 0xdead_0003, 41, |_| 60, || vec![0u8; 60]);
        let _b = get_or_generate(pid(2), 0xdead_0004, 41, |_| 60, || vec![0u8; 60]);
        set_byte_cap(old);
        assert!(stats().evicted > before, "exceeding the cap must evict");
    }
}
