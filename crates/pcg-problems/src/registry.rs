//! The problem registry: all 60 problems in canonical Table 1 order.

use crate::framework::Problem;
use crate::types;
use pcg_core::ProblemId;
use std::sync::OnceLock;

static REGISTRY: OnceLock<Vec<Box<dyn Problem>>> = OnceLock::new();

/// All problems, ordered by [`ProblemId::index`].
pub fn all_problems() -> &'static [Box<dyn Problem>] {
    REGISTRY.get_or_init(|| {
        let mut v: Vec<Box<dyn Problem>> = Vec::with_capacity(60);
        v.extend(types::sort::problems());
        v.extend(types::scan::problems());
        v.extend(types::dense::problems());
        v.extend(types::sparse::problems());
        v.extend(types::search::problems());
        v.extend(types::reduce::problems());
        v.extend(types::histogram::problems());
        v.extend(types::stencil::problems());
        v.extend(types::graph::problems());
        v.extend(types::geometry::problems());
        v.extend(types::fft::problems());
        v.extend(types::transform::problems());
        for (i, p) in v.iter().enumerate() {
            assert_eq!(p.id().index(), i, "registry out of order at {}", p.id());
        }
        v
    })
}

/// Look up one problem by id.
pub fn problem(id: ProblemId) -> &'static dyn Problem {
    &*all_problems()[id.index()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcg_core::task::all_problems as all_ids;

    #[test]
    fn registry_complete_and_ordered() {
        let problems = all_problems();
        assert_eq!(problems.len(), 60);
        for (id, p) in all_ids().zip(problems.iter()) {
            assert_eq!(p.id(), id);
            assert_eq!(problem(id).id(), id);
        }
    }

    #[test]
    fn prompts_are_renderable_and_distinct() {
        let mut fn_names: Vec<String> =
            all_problems().iter().map(|p| p.prompt().fn_name).collect();
        fn_names.sort();
        fn_names.dedup();
        assert_eq!(fn_names.len(), 60, "every problem needs a unique function name");
        for p in all_problems() {
            let spec = p.prompt();
            assert!(!spec.description.is_empty());
            assert!(!spec.examples.is_empty(), "{}: prompts need examples", p.id());
        }
    }
}
