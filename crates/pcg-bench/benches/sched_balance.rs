//! Adaptive-scheduling A/B: unweighted `id % 3` sharding vs
//! cost-weighted LPT partitioning + dispatch, on a deliberately skewed
//! grid.
//!
//! The straggler physics this measures: `--merge-shards` can only
//! finish when the **slowest** worker finishes, so the merge gate is
//! the max shard wall, not the mean. Unweighted sharding assigns cells
//! by cell-id residue, blind to cost — on a grid where the expensive
//! cells happen to share a residue class, one worker inherits all of
//! them and the other two idle. A priors table that knows the costs
//! fixes both halves: greedy LPT bin-packing spreads the heavy cells
//! across workers (`WorkPlan::shard_with`), and LPT dispatch inside
//! each worker keeps its own threads from tail-stalling on a late
//! heavy cell.
//!
//! Mechanics: the bench re-execs itself (`PCG_SCHED_BENCH_ROLE=k/3:mode`)
//! so each worker is a real OS process, exactly like production shard
//! workers. Every role derives the identical plan and priors table
//! from shared constants — the hash-stamped-priors analog of the
//! cell-addressed no-coordination property. Cell "execution" is a
//! sleep of the cell's cost so partition quality is the only variable.
//! The adversarial cost table makes whichever unweighted shard is
//! largest carry all the heavy cells — the worst case `id % count` can
//! hand you, and exactly the case measured priors exist to kill.
//! Byte-identity of the *records* across scheduling modes is enforced
//! by `pcg-harness/tests/sched_balance.rs`; this bench asserts the
//! partition stays disjoint and exhaustive, and measures the gate.
//!
//! Writes `target/pcgbench/BENCH_schedule.json` and asserts the >=1.5x
//! merge-gate bar from the adaptive-scheduling work.

use pcg_core::plan::{CellId, ShardSpec, WorkPlan};
use pcg_core::CostPriors;
use pcg_harness::journal::config_hash;
use pcg_harness::scheduler;
use pcg_harness::EvalConfig;
use std::time::{Duration, Instant};

const HEAVY_MS: u64 = 120;
const LIGHT_MS: u64 = 6;
/// Threads per worker process: enough that dispatch order matters,
/// small enough that the 1-2 core CI host class is not oversubscribed.
const JOBS: usize = 2;
const ROLE_VAR: &str = "PCG_SCHED_BENCH_ROLE";

/// A 4-model × 12-task slice of the real quick-grid plan: big enough
/// to shard three ways with headroom, small enough to finish in
/// seconds at the costs above.
fn bench_plan() -> WorkPlan {
    let models: Vec<String> = pcg_models::zoo()
        .into_iter()
        .take(4)
        .map(|m| m.card().name.to_string())
        .collect();
    let tasks: Vec<_> = pcg_core::task::all_tasks().take(12).collect();
    WorkPlan::new(config_hash(&EvalConfig::quick()), models, tasks)
}

/// The residue class the adversarial costs load up: the largest
/// unweighted shard, so `id % 3` concentrates every heavy cell on one
/// worker. Deterministic — a pure function of the shared plan.
fn heavy_residue(plan: &WorkPlan) -> u64 {
    (0..3u32)
        .max_by_key(|&k| plan.shard(ShardSpec::new(k, 3)).len())
        .expect("three shards") as u64
}

fn cost_ms(id: CellId, heavy: u64) -> u64 {
    if id.0 % 3 == heavy {
        HEAVY_MS
    } else {
        LIGHT_MS
    }
}

/// The priors table every role derives independently: measured costs
/// in seconds for every cell of the plan.
fn priors(plan: &WorkPlan) -> CostPriors {
    let heavy = heavy_residue(plan);
    CostPriors::from_entries(
        "sched-balance-bench",
        plan.cells().map(|c| {
            (
                plan.models()[c.model].clone(),
                c.task.index() as u32,
                cost_ms(c.id, heavy) as f64 / 1000.0,
            )
        }),
    )
}

/// Worker body: take the cells this spec owns under the given
/// scheduling mode and "run" each (sleep its cost) on JOBS threads,
/// with LPT dispatch when weighted.
fn run_role(spec: ShardSpec, weighted: bool) {
    let plan = bench_plan();
    let heavy = heavy_residue(&plan);
    let p = priors(&plan);
    let owned = if weighted {
        plan.shard_with(spec, Some(&p))
    } else {
        plan.shard(spec)
    };
    let order = weighted.then(|| {
        let w: Vec<f64> =
            owned.iter().map(|c| p.cost(&plan.models()[c.model], c.task)).collect();
        let mut idx: Vec<usize> = (0..owned.len()).collect();
        idx.sort_by(|&a, &b| w[b].total_cmp(&w[a]).then(owned[a].id.cmp(&owned[b].id)));
        idx
    });
    let costs: Vec<u64> = owned.iter().map(|c| cost_ms(c.id, heavy)).collect();
    scheduler::run_grid_prioritized(
        costs,
        JOBS,
        order,
        |_, &ms| std::thread::sleep(Duration::from_millis(ms)),
        |_, _| {},
    );
}

/// Spawn the three shard workers concurrently; wall seconds until the
/// slowest exits — the merge gate.
fn merge_gate_seconds(mode: &str) -> f64 {
    let exe = std::env::current_exe().expect("own path");
    let t0 = Instant::now();
    let children: Vec<_> = (0..3)
        .map(|k| {
            std::process::Command::new(&exe)
                .env(ROLE_VAR, format!("{k}/3:{mode}"))
                .stdout(std::process::Stdio::null())
                .spawn()
                .expect("spawn shard worker")
        })
        .collect();
    for mut child in children {
        let status = child.wait().expect("wait for shard worker");
        assert!(status.success(), "shard worker failed: {status:?}");
    }
    t0.elapsed().as_secs_f64()
}

fn main() {
    if let Ok(role) = std::env::var(ROLE_VAR) {
        let (spec, mode) = role.split_once(':').expect("role is k/N:mode");
        run_role(
            ShardSpec::parse(spec).expect("valid role spec"),
            mode == "weighted",
        );
        return;
    }

    let plan = bench_plan();
    let heavy = heavy_residue(&plan);
    let p = priors(&plan);

    // Sanity: both partitions must be disjoint and exhaustive, and the
    // skew must be real — the heavy residue class all lands on one
    // unweighted shard.
    for weighted in [false, true] {
        let mut seen = std::collections::HashSet::new();
        for k in 0..3 {
            let spec = ShardSpec::new(k, 3);
            let owned = if weighted {
                plan.shard_with(spec, Some(&p))
            } else {
                plan.shard(spec)
            };
            for c in owned {
                assert!(seen.insert(c.id), "cell owned twice (weighted={weighted})");
            }
        }
        assert_eq!(seen.len(), plan.len(), "cells lost (weighted={weighted})");
    }
    let load_ms = |cells: &[pcg_core::plan::PlanCell]| -> u64 {
        cells.iter().map(|c| cost_ms(c.id, heavy)).sum()
    };
    let unweighted_loads: Vec<u64> =
        (0..3).map(|k| load_ms(&plan.shard(ShardSpec::new(k, 3)))).collect();
    let weighted_loads: Vec<u64> = (0..3)
        .map(|k| load_ms(&plan.shard_with(ShardSpec::new(k, 3), Some(&p))))
        .collect();
    let n_heavy = plan.cells().filter(|c| c.id.0 % 3 == heavy).count();
    assert!(n_heavy >= 8, "degenerate skew: only {n_heavy} heavy cells");

    // Best of 2 to shed scheduling noise.
    let unweighted = merge_gate_seconds("unweighted").min(merge_gate_seconds("unweighted"));
    let weighted = merge_gate_seconds("weighted").min(merge_gate_seconds("weighted"));
    let improvement = unweighted / weighted;

    let json = format!(
        concat!(
            "{{\"workload\":\"skewed {}-cell grid ({} heavy at {}ms, rest {}ms), ",
            "3 shard worker processes x {} threads, merge gate = slowest worker, best of 2\",",
            "\"cells\":{},\"heavy_cells\":{},",
            "\"unweighted_shard_loads_ms\":[{},{},{}],\"weighted_shard_loads_ms\":[{},{},{}],",
            "\"unweighted_gate_s\":{:.6},\"weighted_gate_s\":{:.6},\"improvement\":{:.3}}}"
        ),
        plan.len(),
        n_heavy,
        HEAVY_MS,
        LIGHT_MS,
        JOBS,
        plan.len(),
        n_heavy,
        unweighted_loads[0],
        unweighted_loads[1],
        unweighted_loads[2],
        weighted_loads[0],
        weighted_loads[1],
        weighted_loads[2],
        unweighted,
        weighted,
        improvement,
    );
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/pcgbench");
    std::fs::create_dir_all(&dir).expect("create target/pcgbench");
    std::fs::write(dir.join("BENCH_schedule.json"), &json).expect("write BENCH_schedule.json");
    println!(
        "sched_balance: {} cells ({n_heavy} heavy): unweighted gate {unweighted:.3}s \
         (loads {unweighted_loads:?} ms), weighted+LPT gate {weighted:.3}s \
         (loads {weighted_loads:?} ms), improvement {improvement:.1}x",
        plan.len(),
    );
    assert!(
        improvement >= 1.5,
        "cost-weighted LPT sharding must lower the merge gate: expected >=1.5x, \
         got {improvement:.2}x ({json})"
    );
}
