//! Work-stealing A/B: static `id % 3` shard ownership vs live
//! whole-cell stealing via journal claim handoff, with one worker
//! deliberately stalled.
//!
//! The straggler physics this measures: `--merge-shards` can only
//! finish when the **slowest** worker finishes, so the merge gate is
//! the max shard wall. Cost-weighted partitioning (the `sched_balance`
//! bench) fixes *predicted* skew, but a worker that is slow for
//! unpredicted reasons — here, an injected stall before it touches any
//! cell — still carries its whole partition to the finish line alone.
//! With stealing on, its siblings drain their own partitions, then
//! claim and evaluate the straggler's cells through the real journal
//! claim protocol; the straggler wakes, pre-scans, finds its slice
//! taken, and exits almost immediately.
//!
//! Mechanics: the bench re-execs itself (`PCG_STEAL_BENCH_ROLE=k/3:mode`)
//! so each worker is a real OS process coordinating through real
//! journals in a shared scratch directory (`PCG_STEAL_BENCH_CACHE`) —
//! [`Journal::append_claims`], `peek_progress`, and
//! [`steal_from_siblings`] are the production code paths, driven with
//! sleeps for cell bodies so handoff quality is the only variable.
//! Worker 0 owns every 200ms cell and stalls 3.2s before starting;
//! workers 1 and 2 own 100ms cells. Static gate ~= stall + the
//! victim's whole partition; steal gate ~= the thieves splitting that
//! partition while the victim sleeps. Byte-identity of *records*
//! across steal on/off is enforced by
//! `pcg-harness/tests/steal_handoff.rs`; this bench asserts the union
//! of journaled cells stays exhaustive and measures the gate.
//!
//! Writes `target/pcgbench/BENCH_steal.json` and asserts the >=1.5x
//! merge-gate bar from the work-stealing work.

use pcg_core::plan::{CellId, PlanCell, ShardSpec, WorkPlan};
use pcg_harness::journal::{self, config_hash, Journal};
use pcg_harness::record::TaskRecord;
use pcg_harness::shard::{scan_siblings, steal_from_siblings};
use pcg_harness::EvalConfig;
use pcg_metrics::TaskSamples;
use std::collections::HashSet;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Cost of every cell the stalled victim owns.
const VICTIM_MS: u64 = 200;
/// Cost of everyone else's cells.
const OTHER_MS: u64 = 100;
/// Injected stall on worker 0, applied identically in both modes.
const STALL_MS: u64 = 3200;
/// Cells a thief claims per steal round.
const BATCH: usize = 4;
const ROLE_VAR: &str = "PCG_STEAL_BENCH_ROLE";
const CACHE_VAR: &str = "PCG_STEAL_BENCH_CACHE";

/// A 4-model × 12-task slice of the real quick-grid plan, partitioned
/// unweighted (`id % 3`) — the victim's residue class carries the
/// expensive cells so its partition is the one worth stealing.
fn bench_plan() -> WorkPlan {
    let models: Vec<String> = pcg_models::zoo()
        .into_iter()
        .take(4)
        .map(|m| m.card().name.to_string())
        .collect();
    let tasks: Vec<_> = pcg_core::task::all_tasks().take(12).collect();
    WorkPlan::new(config_hash(&EvalConfig::quick()), models, tasks)
}

fn cost_ms(id: CellId) -> u64 {
    if id.0.is_multiple_of(3) {
        VICTIM_MS
    } else {
        OTHER_MS
    }
}

/// A synthetic-but-valid record for `cell`: the journal's load-time
/// cell self-check recomputes the address from (config, model, task),
/// so the record must carry the cell's real task under its real model
/// name — the sample payload itself is immaterial here.
fn record_for(cell: &PlanCell) -> TaskRecord {
    TaskRecord {
        task: cell.task,
        low: TaskSamples { built: vec![true], correct: vec![true], ratio: vec![1.0] },
        high: None,
        sweep: Default::default(),
    }
}

/// "Evaluate" a batch: sleep each cell's cost, then journal the result
/// — the same evaluate-then-append shape as a production worker.
fn run_cells(plan: &WorkPlan, wal: &Journal, cells: &[PlanCell]) {
    for c in cells {
        std::thread::sleep(Duration::from_millis(cost_ms(c.id)));
        wal.append(c.id, &plan.models()[c.model], &record_for(c)).expect("journal append");
    }
}

/// Worker body: create this shard's journal, stall if victim, then
/// drain the partition — with the pre-scan + steal loop when `steal`.
fn run_role(cache: &Path, spec: ShardSpec, steal: bool) {
    let cfg = EvalConfig::quick();
    let plan = bench_plan();
    let jpath = journal::shard_journal_path(cache, spec);
    let wal = Journal::create_with_priors(&jpath, &cfg, spec, 0).expect("create shard journal");
    if spec.index == 0 {
        // The unpredicted straggler: header on disk (so siblings can
        // gate their peeks), then dead to the world.
        std::thread::sleep(Duration::from_millis(STALL_MS));
    }
    let mut owned = plan.shard(spec);
    if steal {
        let sib = scan_siblings(cache, &cfg, &[], spec, 0);
        owned.retain(|c| !sib.done.contains(&c.id.0) && !sib.claimed.contains(&c.id.0));
    }
    run_cells(&plan, &wal, &owned);
    if steal {
        let done: HashSet<u64> = owned.iter().map(|c| c.id.0).collect();
        steal_from_siblings(cache, &cfg, &[], &plan, spec, None, 0, &wal, BATCH, done, |batch| {
            run_cells(&plan, &wal, &batch);
        });
    }
}

/// Spawn the three shard workers concurrently; wall seconds until the
/// slowest exits — the merge gate.
fn merge_gate_seconds(cache: &Path, mode: &str) -> f64 {
    let cfg = EvalConfig::quick();
    let plan = bench_plan();
    for k in 0..3 {
        journal::remove(&journal::shard_journal_path(cache, ShardSpec::new(k, 3)));
    }
    let exe = std::env::current_exe().expect("own path");
    let t0 = Instant::now();
    let children: Vec<_> = (0..3)
        .map(|k| {
            std::process::Command::new(&exe)
                .env(ROLE_VAR, format!("{k}/3:{mode}"))
                .env(CACHE_VAR, cache)
                .stdout(std::process::Stdio::null())
                .spawn()
                .expect("spawn shard worker")
        })
        .collect();
    for mut child in children {
        let status = child.wait().expect("wait for shard worker");
        assert!(status.success(), "shard worker failed: {status:?}");
    }
    let gate = t0.elapsed().as_secs_f64();
    // Whatever the topology did, the journals together must still hold
    // the whole grid — stealing relocates cells, it never loses them.
    let mut union: HashSet<u64> = HashSet::new();
    for k in 0..3 {
        let spec = ShardSpec::new(k, 3);
        let loaded =
            journal::load_counting_with_priors(&journal::shard_journal_path(cache, spec), &cfg, spec, 0);
        assert!(loaded.rejects.is_empty(), "shard {spec}: corrupt frames in a clean bench run");
        union.extend(loaded.replay.keys().map(|id| id.0));
    }
    assert_eq!(union.len(), plan.len(), "mode {mode}: journals must cover the whole grid");
    gate
}

fn main() {
    if let Ok(role) = std::env::var(ROLE_VAR) {
        let cache = PathBuf::from(std::env::var(CACHE_VAR).expect("cache dir for role"));
        let (spec, mode) = role.split_once(':').expect("role is k/N:mode");
        run_role(&cache, ShardSpec::parse(spec).expect("valid role spec"), mode == "steal");
        return;
    }

    let plan = bench_plan();
    let victim_cells = plan.shard(ShardSpec::new(0, 3)).len();
    let victim_ms: u64 = plan.shard(ShardSpec::new(0, 3)).iter().map(|c| cost_ms(c.id)).sum();
    assert!(victim_cells >= 8, "degenerate plan: only {victim_cells} victim cells");

    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/pcgbench");
    std::fs::create_dir_all(&dir).expect("create target/pcgbench");
    let cache = dir.join(format!("steal-balance-{}.json", std::process::id()));

    // Best of 2 to shed scheduling noise.
    let static_gate = merge_gate_seconds(&cache, "static").min(merge_gate_seconds(&cache, "static"));
    let steal_gate = merge_gate_seconds(&cache, "steal").min(merge_gate_seconds(&cache, "steal"));
    for k in 0..3 {
        journal::remove(&journal::shard_journal_path(&cache, ShardSpec::new(k, 3)));
    }
    let improvement = static_gate / steal_gate;

    let json = format!(
        concat!(
            "{{\"workload\":\"{}-cell grid, 3 shard worker processes, worker 0 owns {} cells ",
            "at {}ms (rest {}ms) and stalls {}ms before starting, merge gate = slowest worker, ",
            "best of 2\",",
            "\"cells\":{},\"victim_cells\":{},\"victim_partition_ms\":{},\"stall_ms\":{},",
            "\"static_gate_s\":{:.6},\"steal_gate_s\":{:.6},\"improvement\":{:.3}}}"
        ),
        plan.len(),
        victim_cells,
        VICTIM_MS,
        OTHER_MS,
        STALL_MS,
        plan.len(),
        victim_cells,
        victim_ms,
        STALL_MS,
        static_gate,
        steal_gate,
        improvement,
    );
    std::fs::write(dir.join("BENCH_steal.json"), &json).expect("write BENCH_steal.json");
    println!(
        "steal_balance: {} cells, victim owns {victim_cells} ({victim_ms}ms) behind a \
         {STALL_MS}ms stall: static gate {static_gate:.3}s, steal gate {steal_gate:.3}s, \
         improvement {improvement:.1}x",
        plan.len(),
    );
    assert!(
        improvement >= 1.5,
        "live stealing must lower the straggler merge gate: expected >=1.5x, \
         got {improvement:.2}x ({json})"
    );
}
