//! Journal replay A/B: v2 JSONL vs v3 binary frames.
//!
//! The v3 rewrite's entire reason to exist is the resume/merge hot
//! path: `--resume`, `--merge-shards`, and compaction all start by
//! replaying every completed cell from disk, and in v2 that meant one
//! `serde_json` parse per line. This bench builds the same full-grid
//! replay in both formats — every zoo model × the paper's task grid,
//! with paper-shaped samples (20 low, 200 high, Figure-5 sweeps) —
//! and times [`pcg_harness::journal::load_counting`] on each.
//!
//! Writes `target/pcgbench/BENCH_journal.json` and asserts the >=3x
//! floor from the journal-v3 work. `-- --quick` shrinks the grid for
//! smoke runs (the floor still applies: the speedup is per-byte, not
//! per-file).

use pcg_core::plan::{CellId, ShardSpec};
use pcg_core::task::all_tasks;
use pcg_core::TaskId;
use pcg_harness::journal::{self, config_hash, Replay, ReplayCell};
use pcg_harness::record::TaskRecord;
use pcg_harness::EvalConfig;
use pcg_metrics::TaskSamples;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Deterministic paper-shaped record for grid row `i`: 20 low samples,
/// a 200-sample high set on even rows, and a 3-point sweep on every
/// third row — roughly the mix a real full run commits.
fn synth_record(task: TaskId, i: usize) -> TaskRecord {
    let flag = |k: usize| !(i * 31 + k * 7).is_multiple_of(3);
    let ratio = |k: usize| ((i * 13 + k * 5) % 97) as f64 * 0.371 + 0.25;
    let samples = |n: usize| TaskSamples {
        built: (0..n).map(flag).collect(),
        correct: (0..n).map(|k| flag(k) && flag(k + 1)).collect(),
        ratio: (0..n).map(ratio).collect(),
    };
    TaskRecord {
        task,
        low: samples(20),
        high: i.is_multiple_of(2).then(|| samples(200)),
        sweep: if i.is_multiple_of(3) {
            BTreeMap::from([
                (2u32, (0..20).map(ratio).collect()),
                (4u32, (0..20).map(|k| ratio(k) / 2.0).collect()),
                (8u32, (0..20).map(|k| ratio(k) / 4.0).collect()),
            ])
        } else {
            BTreeMap::new()
        },
    }
}

fn bench_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("pcgbench-journal-replay");
    std::fs::create_dir_all(&dir).expect("create bench temp dir");
    dir.join(format!("{name}-{}.journal", std::process::id()))
}

/// Best-of-`reps` wall seconds to fully replay the journal at `path`,
/// verifying each pass recovers every cell cleanly.
fn replay_seconds(path: &Path, cfg: &EvalConfig, expected: usize, reps: usize) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        let loaded = journal::load_counting(path, cfg, ShardSpec::WHOLE);
        let dt = t0.elapsed().as_secs_f64();
        assert_eq!(loaded.replay.len(), expected, "replay must recover every cell");
        assert!(loaded.rejects.is_empty(), "a clean journal must replay without rejects");
        best = best.min(dt);
    }
    best
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (task_cap, reps) = if quick { (60, 3) } else { (420, 5) };

    let cfg = EvalConfig::quick();
    let chash = config_hash(&cfg);
    let models: Vec<String> =
        pcg_models::zoo().into_iter().map(|m| m.card().name.to_string()).collect();
    let tasks: Vec<TaskId> = all_tasks().take(task_cap).collect();

    let mut entries: Vec<(CellId, String, TaskRecord)> = Vec::new();
    for model in &models {
        for &task in &tasks {
            let i = entries.len();
            entries.push((CellId::new(chash, model, task), model.clone(), synth_record(task, i)));
        }
    }
    let replay: Replay = entries
        .iter()
        .map(|(id, model, rec)| {
            (*id, ReplayCell { model: model.clone(), record: rec.clone() })
        })
        .collect();

    // Materialise the identical replay in both formats.
    let v2_path = bench_path("v2");
    let v3_path = bench_path("v3");
    journal::write_v2_journal(&v2_path, &cfg, ShardSpec::WHOLE, &entries)
        .expect("write v2 baseline");
    journal::compact(&v3_path, &cfg, ShardSpec::WHOLE, &replay).expect("write v3 journal");
    let v2_bytes = std::fs::metadata(&v2_path).expect("v2 size").len();
    let v3_bytes = std::fs::metadata(&v3_path).expect("v3 size").len();

    let v2_s = replay_seconds(&v2_path, &cfg, entries.len(), reps);
    let v3_s = replay_seconds(&v3_path, &cfg, entries.len(), reps);
    let speedup = v2_s / v3_s;

    let _ = std::fs::remove_file(&v2_path);
    let _ = std::fs::remove_file(&v3_path);

    let json = format!(
        concat!(
            "{{\"workload\":\"full-grid journal replay: {} cells ({} models x {} tasks, ",
            "paper-shaped samples), v2 JSONL parse vs v3 binary frames, best of {}\",",
            "\"cells\":{},\"v2_bytes\":{},\"v3_bytes\":{},",
            "\"v2_replay_s\":{:.6},\"v3_replay_s\":{:.6},\"speedup\":{:.3}}}"
        ),
        entries.len(),
        models.len(),
        tasks.len(),
        reps,
        entries.len(),
        v2_bytes,
        v3_bytes,
        v2_s,
        v3_s,
        speedup,
    );
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/pcgbench");
    std::fs::create_dir_all(&dir).expect("create target/pcgbench");
    std::fs::write(dir.join("BENCH_journal.json"), &json).expect("write BENCH_journal.json");
    println!(
        "journal_replay: {} cells: v2 {:.1} MB in {v2_s:.4}s, v3 {:.1} MB in {v3_s:.4}s, \
         speedup {speedup:.1}x",
        entries.len(),
        v2_bytes as f64 / 1e6,
        v3_bytes as f64 / 1e6,
    );
    assert!(
        speedup >= 3.0,
        "v3 replay must beat JSONL by >=3x, got {speedup:.2}x ({json})"
    );
}
