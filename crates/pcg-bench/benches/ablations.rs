//! Ablations for the design choices DESIGN.md calls out:
//!
//! 1. loop schedules under imbalance (static vs dynamic vs guided),
//! 2. allreduce algorithm (recursive doubling at power-of-two ranks vs
//!    the reduce+broadcast fallback at non-power-of-two),
//! 3. GPU block size for the same kernel,
//! 4. histogram merge strategy (critical-section merge vs scatter
//!    replicas vs atomics).

use criterion::{criterion_group, criterion_main, Criterion};
use pcg_gpusim::{cuda, GpuBuffer, Launch};
use pcg_mpisim::{CostModel, ReduceOp, World};
use pcg_patterns::{ExecSpace, ScatterView};
use pcg_shmem::{AtomicF64, Pool, Schedule};
use std::hint::black_box;

/// Artificially imbalanced work: iteration cost grows with the index.
fn skewed_work(i: usize) -> f64 {
    let reps = (i / 512) + 1;
    let mut acc = 0.0f64;
    for k in 0..reps {
        acc += ((i + k) as f64).sqrt();
    }
    acc
}

fn bench_schedules(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_schedule");
    g.sample_size(10);
    let pool = Pool::new(4);
    let n = 1 << 13;
    for (label, sched) in [
        ("static", Schedule::Static { chunk: 0 }),
        ("static_chunk16", Schedule::Static { chunk: 16 }),
        ("dynamic_chunk16", Schedule::Dynamic { chunk: 16 }),
        ("guided", Schedule::Guided { min_chunk: 8 }),
    ] {
        g.bench_function(label, |b| {
            b.iter(|| {
                let acc = AtomicF64::new(0.0);
                pool.parallel_for_chunks(0..n, sched, |chunk| {
                    let mut local = 0.0;
                    for i in chunk {
                        local += skewed_work(i);
                    }
                    acc.fetch_add(local);
                });
                black_box(acc.load())
            })
        });
    }
    g.finish();
}

fn bench_allreduce_algorithms(c: &mut Criterion) {
    // Virtual cost, not wall time: compare the simulated elapsed time
    // of the two allreduce algorithms at comparable rank counts.
    let mut g = c.benchmark_group("ablation_allreduce");
    g.sample_size(10);
    for ranks in [16usize, 17] {
        // 16 -> recursive doubling; 17 -> reduce + broadcast fallback.
        g.bench_function(format!("{ranks}_ranks"), |b| {
            let world = World::new(ranks).with_cost_model(CostModel::deterministic());
            b.iter(|| {
                let out = world
                    .run(|comm| comm.allreduce(&vec![1.0f64; 256], ReduceOp::Sum)[0])
                    .unwrap();
                black_box(out.elapsed)
            })
        });
    }
    g.finish();
}

fn bench_gpu_block_sizes(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_gpu_block");
    g.sample_size(10);
    let gpu = cuda::device();
    let n = 1 << 15;
    let x = GpuBuffer::from_slice(&(0..n).map(|i| i as f64).collect::<Vec<_>>());
    let y = GpuBuffer::<f64>::zeroed(n);
    for block in [32u32, 128, 512] {
        g.bench_function(format!("block_{block}"), |b| {
            b.iter(|| {
                black_box(gpu.launch_each(Launch::over(n, block), |t, ctx| {
                    let i = t.global_id();
                    if i < n {
                        ctx.write(&y, i, ctx.read(&x, i) + 1.0);
                    }
                }))
            })
        });
    }
    g.finish();
}

fn bench_histogram_strategies(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_histogram");
    g.sample_size(10);
    let n = 1 << 14;
    let data: Vec<usize> = (0..n).map(|i| (i * 2654435761) % 64).collect();

    g.bench_function("critical_merge", |b| {
        let pool = Pool::new(4);
        b.iter(|| {
            let merged = parking_lot_mutex_hist(&pool, &data);
            black_box(merged)
        })
    });

    g.bench_function("scatter_view", |b| {
        let space = ExecSpace::new(4);
        b.iter(|| {
            let scatter: ScatterView<f64> = ScatterView::new(64, 4);
            let data_ref = &data;
            space.parallel_for_teams(16, |team| {
                let chunk = data_ref.len() / 16;
                let lo = team.league_rank() * chunk;
                let hi = if team.league_rank() == 15 { data_ref.len() } else { lo + chunk };
                let mut acc = scatter.access();
                for &bin in &data_ref[lo..hi] {
                    acc.add(bin, 1.0);
                }
            });
            let mut out = vec![0.0; 64];
            scatter.contribute(&mut out);
            black_box(out)
        })
    });

    g.bench_function("shared_atomics", |b| {
        let pool = Pool::new(4);
        b.iter(|| {
            let bins: Vec<AtomicF64> = (0..64).map(|_| AtomicF64::new(0.0)).collect();
            pool.parallel_for(0..data.len(), Schedule::Static { chunk: 0 }, |i| {
                bins[data[i]].fetch_add(1.0);
            });
            black_box(bins.iter().map(AtomicF64::load).collect::<Vec<_>>())
        })
    });
    g.finish();
}

fn parking_lot_mutex_hist(pool: &Pool, data: &[usize]) -> Vec<f64> {
    let merged = parking_lot::Mutex::new(vec![0.0f64; 64]);
    pool.parallel_for_chunks(0..data.len(), Schedule::Static { chunk: 0 }, |chunk| {
        let mut local = vec![0.0f64; 64];
        for i in chunk {
            local[data[i]] += 1.0;
        }
        let mut guard = merged.lock();
        for (m, l) in guard.iter_mut().zip(local) {
            *m += l;
        }
    });
    merged.into_inner()
}

fn bench_virtual_vs_wall(c: &mut Criterion) {
    // DESIGN.md ablation 1: virtual-time MPI vs measured-only. The
    // virtual clock is what the harness reports; the wall clock is what
    // a naive "just measure the simulator" approach would report. This
    // bench surfaces both so the gap is visible in bench output.
    let mut g = c.benchmark_group("ablation_virtual_time");
    g.sample_size(10);
    for ranks in [8usize, 64] {
        g.bench_function(format!("virtual_clock_{ranks}r"), |b| {
            let world = World::new(ranks).with_cost_model(CostModel::cluster());
            b.iter(|| {
                let out = world
                    .run(|comm| {
                        let local: f64 = (0..1000).map(|i| (i + comm.rank()) as f64).sum();
                        comm.allreduce_one(local, ReduceOp::Sum)
                    })
                    .unwrap();
                // Virtual seconds are deterministic-ish and tiny; wall
                // seconds include thread spawn and token serialization.
                black_box((out.elapsed, out.wall_elapsed))
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_schedules,
    bench_allreduce_algorithms,
    bench_gpu_block_sizes,
    bench_histogram_strategies,
    bench_virtual_vs_wall
);
criterion_main!(benches);
