//! Substrate microbenchmarks: the raw cost of the parallel constructs
//! candidates are built from.

use criterion::{criterion_group, criterion_main, Criterion};
use pcg_gpusim::{cuda, GpuBuffer, Launch};
use pcg_mpisim::{CostModel, ReduceOp, World};
use pcg_patterns::{ExecSpace, View};
use pcg_shmem::{Barrier, Pool};
use std::hint::black_box;

fn bench_shmem(c: &mut Criterion) {
    let mut g = c.benchmark_group("shmem");
    g.sample_size(20);
    let pool = Pool::new(4);
    g.bench_function("region_fork_join", |b| {
        b.iter(|| pool.parallel(|_| black_box(())))
    });
    let xs: Vec<f64> = (0..1 << 14).map(|i| i as f64).collect();
    g.bench_function("parallel_for_reduce_16k", |b| {
        b.iter(|| {
            black_box(pool.parallel_for_reduce(0..xs.len(), 0.0, |a, i| a + xs[i], |a, b| a + b))
        })
    });
    g.bench_function("barrier_100_phases", |b| {
        let barrier = Barrier::new(4);
        b.iter(|| {
            pool.parallel(|_| {
                for _ in 0..100 {
                    barrier.wait();
                }
            })
        })
    });
    g.finish();
}

fn bench_patterns(c: &mut Criterion) {
    let mut g = c.benchmark_group("patterns");
    g.sample_size(20);
    let space = ExecSpace::new(4);
    let x: View<f64> = View::from_slice("x", &(0..1 << 14).map(|i| i as f64).collect::<Vec<_>>());
    g.bench_function("parallel_reduce_16k", |b| {
        b.iter(|| black_box(space.parallel_reduce(x.len(), 0.0, |i| x.get(i), |a, b| a + b)))
    });
    g.bench_function("parallel_scan_16k", |b| {
        let out: View<f64> = View::new("out", x.len());
        b.iter(|| {
            let o = out.clone();
            black_box(space.parallel_scan(
                x.len(),
                0.0,
                |i| x.get(i),
                |a, b| a + b,
                move |i, v| unsafe { o.set(i, v) },
            ))
        })
    });
    g.finish();
}

fn bench_mpisim(c: &mut Criterion) {
    let mut g = c.benchmark_group("mpisim");
    g.sample_size(10);
    for ranks in [8usize, 32] {
        g.bench_function(format!("world_allreduce_{ranks}r"), |b| {
            let world = World::new(ranks).with_cost_model(CostModel::deterministic());
            b.iter(|| {
                black_box(
                    world
                        .run(|comm| comm.allreduce_one(comm.rank() as f64, ReduceOp::Sum))
                        .unwrap()
                        .elapsed,
                )
            })
        });
    }
    g.bench_function("world_spawn_teardown_64r", |b| {
        let world = World::new(64).with_cost_model(CostModel::deterministic());
        b.iter(|| black_box(world.run(|comm| comm.rank()).unwrap().per_rank.len()))
    });
    g.finish();
}

fn bench_gpusim(c: &mut Criterion) {
    let mut g = c.benchmark_group("gpusim");
    g.sample_size(10);
    let gpu = cuda::device();
    let n = 1 << 16;
    let x = GpuBuffer::from_slice(&(0..n).map(|i| i as f64).collect::<Vec<_>>());
    let y = GpuBuffer::<f64>::zeroed(n);
    g.bench_function("map_kernel_64k_threads", |b| {
        b.iter(|| {
            black_box(gpu.launch_each(Launch::over(n, 256), |t, ctx| {
                let i = t.global_id();
                if i < n {
                    ctx.write(&y, i, 2.0 * ctx.read(&x, i));
                }
            }))
        })
    });
    let hist = GpuBuffer::<u32>::zeroed(64);
    g.bench_function("atomic_histogram_64k", |b| {
        b.iter(|| {
            black_box(gpu.launch_each(Launch::over(n, 256), |t, ctx| {
                let i = t.global_id();
                if i < n {
                    ctx.atomic_add(&hist, i % 64, 1);
                }
            }))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_shmem, bench_patterns, bench_mpisim, bench_gpusim);
criterion_main!(benches);
