//! Shard-scaling A/B: one evaluation process vs three `--shard k/3`
//! worker processes over the same cell-addressed plan.
//!
//! What this measures — and what it deliberately does not. On the CI
//! host class (one or two cores) the quick grid's *compute* cannot
//! speed up by adding processes: three workers time-slice the same
//! core. What sharding buys on any host is the **latency component**:
//! candidates that hang until the watchdog abandons them at the time
//! limit. A single `--jobs 1` process eats those waits back to back;
//! worker processes each eat only their shard's, concurrently — the
//! same wait-overlap physics the PR-1 scheduler bench measures inside
//! one process, here demonstrated across real OS processes driven by
//! the shared [`WorkPlan`].
//!
//! Mechanics: the bench re-execs itself (`PCG_SHARD_BENCH_ROLE=k/N`)
//! so every side runs in a genuinely separate process with its own
//! runner, exactly like production workers. Each role derives the
//! identical plan from the shared config — cell addressing needs no
//! coordination channel — takes the cells its [`ShardSpec`] owns, and
//! runs each as a hanging candidate abandoned at the 150 ms limit.
//! Writes `target/pcgbench/BENCH_shard.json` and asserts the >=2x bar
//! from the sharded-evaluation work.

use pcg_core::plan::ShardSpec;
use pcg_core::PcgError;
use pcg_harness::journal::config_hash;
use pcg_harness::{EvalConfig, SharedRunner};
use pcg_core::plan::WorkPlan;
use std::time::{Duration, Instant};

const HANG_CELLS: usize = 24;
const HANG_TIMEOUT: Duration = Duration::from_millis(150);
const ROLE_VAR: &str = "PCG_SHARD_BENCH_ROLE";

fn hang_cfg() -> EvalConfig {
    let mut cfg = EvalConfig::quick();
    cfg.timeout = HANG_TIMEOUT;
    // A sleeping hang never unwinds cooperatively; don't pad every
    // abandonment with the default 2 s cancellation grace.
    cfg.grace = Duration::from_millis(50);
    cfg
}

/// The first `HANG_CELLS` cells of the quick grid's plan — the slice
/// of real (model × task) cells this bench pretends hang at runtime.
fn bench_plan() -> WorkPlan {
    let cfg = hang_cfg();
    let models: Vec<String> =
        pcg_models::zoo().into_iter().map(|m| m.card().name.to_string()).collect();
    let tasks: Vec<_> = pcg_core::task::all_tasks().collect();
    WorkPlan::new(config_hash(&cfg), models, tasks)
}

/// Worker body: run every owned cell of the plan as a hanging
/// candidate; each is abandoned by the supervisor at the time limit.
fn run_role(spec: ShardSpec) {
    let runner = SharedRunner::new(hang_cfg());
    let owned = bench_plan()
        .cells()
        .take(HANG_CELLS)
        .filter(|c| spec.contains(c.id))
        .count();
    for _ in 0..owned {
        let out = runner.run_isolated(|| {
            // Far past the limit; the watcher abandons us at 150 ms.
            std::thread::sleep(Duration::from_secs(600));
            Ok::<_, PcgError>(())
        });
        assert_eq!(out.error.as_deref(), Some("timeout"));
    }
}

/// Spawn one child process per spec, concurrently; wall seconds until
/// the slowest exits.
fn processes_seconds(specs: &[ShardSpec]) -> f64 {
    let exe = std::env::current_exe().expect("own path");
    let t0 = Instant::now();
    let children: Vec<_> = specs
        .iter()
        .map(|spec| {
            std::process::Command::new(&exe)
                .env(ROLE_VAR, spec.to_string())
                .stdout(std::process::Stdio::null())
                .spawn()
                .expect("spawn shard worker")
        })
        .collect();
    for mut child in children {
        let status = child.wait().expect("wait for shard worker");
        assert!(status.success(), "shard worker failed: {status:?}");
    }
    t0.elapsed().as_secs_f64()
}

fn main() {
    if let Ok(role) = std::env::var(ROLE_VAR) {
        run_role(ShardSpec::parse(&role).expect("valid role spec"));
        return;
    }

    // Sanity: the three shards must partition the bench slice.
    let plan = bench_plan();
    let owned: Vec<usize> = (0..3)
        .map(|k| {
            plan.cells()
                .take(HANG_CELLS)
                .filter(|c| ShardSpec::new(k, 3).contains(c.id))
                .count()
        })
        .collect();
    assert_eq!(owned.iter().sum::<usize>(), HANG_CELLS);
    assert!(owned.iter().all(|&n| n > 0), "degenerate shard split: {owned:?}");

    let three_specs = [ShardSpec::new(0, 3), ShardSpec::new(1, 3), ShardSpec::new(2, 3)];
    // Best of 2 to shed scheduling noise; the single process runs the
    // whole slice (0/1 == the unsharded plan).
    let single = processes_seconds(&[ShardSpec::WHOLE]).min(processes_seconds(&[ShardSpec::WHOLE]));
    let sharded = processes_seconds(&three_specs).min(processes_seconds(&three_specs));
    let speedup = single / sharded;

    let json = format!(
        concat!(
            "{{\"workload\":\"timeout-abandonment latency component of the quick grid: ",
            "{} hanging cells ({}ms limit) from the cell-addressed plan, ",
            "1 process vs 3 shard worker processes (jobs 1 each, best of 2)\",",
            "\"cells\":{},\"shard_cells\":[{},{},{}],",
            "\"single_process_s\":{:.6},\"three_workers_s\":{:.6},\"speedup\":{:.3}}}"
        ),
        HANG_CELLS,
        HANG_TIMEOUT.as_millis(),
        HANG_CELLS,
        owned[0],
        owned[1],
        owned[2],
        single,
        sharded,
        speedup,
    );
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/pcgbench");
    std::fs::create_dir_all(&dir).expect("create target/pcgbench");
    std::fs::write(dir.join("BENCH_shard.json"), &json).expect("write BENCH_shard.json");
    println!(
        "shard_scale: {HANG_CELLS} hanging cells ({:?} limit): 1 process {single:.3}s, \
         3 workers {sharded:.3}s ({:?} cells each), speedup {speedup:.1}x",
        HANG_TIMEOUT, owned,
    );
    assert!(
        speedup >= 2.0,
        "sharded workers must overlap abandonment waits: expected >=2x at 3 processes, \
         got {speedup:.2}x ({json})"
    );
}
