//! Scheduler A/B: the same evaluation grid at `--jobs 1` vs `--jobs 8`.
//!
//! Two workloads, because the speedup story has two parts:
//!
//! * **compute** — a smoke-scale evaluation grid (1 model × 12 tasks).
//!   Parallel gains here require physical cores; on a single-core host
//!   the two sides tie (the scheduler adds no overhead worth seeing).
//! * **timeout overlap** — a grid of hanging candidates, each abandoned
//!   at the time limit. This is the latency component of the paper's
//!   harness: a 3-minute kill serializes badly, and overlapping the
//!   waits is a pure scheduler win that needs *no* extra cores (the
//!   blocked watchers sleep, they don't compute). Eight 150 ms hangs
//!   cost ~1.2 s serially and ~150 ms at 8 workers.
//!
//! Besides the criterion groups, the bench prints an explicit measured
//! `speedup at 8 workers` line for the timeout grid and asserts the
//! ≥4× acceptance bar from the scheduler work.

use criterion::{criterion_group, criterion_main, Criterion};
use pcg_core::{warm, PcgError, TaskId};
use pcg_harness::{eval, scheduler, EvalConfig, EvalStats, SharedRunner};
use pcg_models::SyntheticModel;
use pcg_problems::{input_cache, lease};
use std::hint::black_box;
use std::time::{Duration, Instant};

const HANG_CELLS: usize = 8;
const HANG_TIMEOUT: Duration = Duration::from_millis(150);

fn hang_cfg() -> EvalConfig {
    let mut cfg = EvalConfig::smoke();
    cfg.timeout = HANG_TIMEOUT;
    cfg
}

/// Wall-clock for a grid of `HANG_CELLS` hanging candidates at `jobs`
/// workers. Every cell is abandoned at the time limit; the question is
/// whether the waits overlap.
fn hang_grid_seconds(jobs: usize) -> f64 {
    let runner = SharedRunner::new(hang_cfg());
    let t0 = Instant::now();
    let cells = scheduler::run_grid(vec![(); HANG_CELLS], jobs, |_, _| {
        runner.run_isolated(|| {
            // Far past the limit; the watcher abandons us at 150 ms.
            std::thread::sleep(Duration::from_secs(600));
            Ok::<_, PcgError>(())
        })
    });
    let wall = t0.elapsed().as_secs_f64();
    for c in &cells {
        let out = c.value.as_ref().expect("cell must not panic");
        assert_eq!(out.error.as_deref(), Some("timeout"));
    }
    wall
}

fn bench_timeout_overlap(c: &mut Criterion) {
    let mut g = c.benchmark_group("grid_sweep_timeouts");
    g.sample_size(2);
    for jobs in [1usize, 8] {
        g.bench_function(format!("jobs{jobs}"), |b| {
            b.iter(|| black_box(hang_grid_seconds(jobs)));
        });
    }
    g.finish();

    // The headline number, measured directly (best of 2 to shed noise).
    let serial = hang_grid_seconds(1).min(hang_grid_seconds(1));
    let parallel = hang_grid_seconds(8).min(hang_grid_seconds(8));
    let speedup = serial / parallel;
    println!(
        "grid_sweep: {HANG_CELLS} hanging candidates ({:?} limit): \
         jobs1 {serial:.3}s, jobs8 {parallel:.3}s, speedup at 8 workers: {speedup:.1}x",
        HANG_TIMEOUT,
    );
    assert!(
        speedup >= 4.0,
        "timeout-abandonment grid must overlap: expected >=4x at 8 workers, got {speedup:.2}x"
    );
}

fn bench_compute_grid(c: &mut Criterion) {
    let cfg = EvalConfig::smoke();
    let model = vec![SyntheticModel::by_name("CodeLlama-13B").expect("zoo model")];
    let tasks = eval::smoke_tasks();
    let tasks = &tasks[..12];

    let mut g = c.benchmark_group("grid_sweep_compute");
    g.sample_size(5);
    for jobs in [1usize, 8] {
        g.bench_function(format!("jobs{jobs}"), |b| {
            b.iter(|| black_box(eval::evaluate_jobs(&cfg, &model, Some(tasks), jobs)));
        });
    }
    g.finish();
}

/// One full smoke-grid evaluation on a fresh runner; returns wall
/// seconds plus the run's stats.
fn eval_grid_once(cfg: &EvalConfig, tasks: &[TaskId], jobs: usize) -> (f64, EvalStats) {
    let model = vec![SyntheticModel::by_name("CodeLlama-13B").expect("zoo model")];
    let runner = SharedRunner::new(cfg.clone());
    let t0 = Instant::now();
    let (_, stats) = eval::evaluate_with(cfg, &model, Some(tasks), jobs, &runner);
    (t0.elapsed().as_secs_f64(), stats)
}

/// Cold-vs-warm A/B over the same smoke grid: the warm-path acceptance
/// measurement. Cold rebuilds every substrate and input per execution;
/// warm leases substrates, memoizes inputs, and reuses supervisor
/// workers. Writes `target/pcgbench/BENCH_warmpath.json` and asserts
/// the >=2x bar from the warm-path work.
fn bench_warm_vs_cold(_c: &mut Criterion) {
    // Thread-pool-backed columns (OpenMP / Kokkos / hybrid) at minimum
    // workload size: per-execution compute is pushed toward zero so the
    // measurement isolates the fixed costs the warm path amortizes
    // (thread spawns, input generation, supervisor spawn) — the regime
    // the full evaluation's hot loop lives in. The MPI-at-512 column is
    // excluded: its wall time is the collective *simulation* itself
    // (O(ranks log ranks) real message handoffs per run), which no
    // amount of substrate reuse can touch, so on a small host it only
    // dilutes the signal being measured.
    let mut cfg = EvalConfig::smoke();
    cfg.size_divisor = usize::MAX;
    use pcg_core::ExecutionModel;
    let tasks: Vec<TaskId> = eval::smoke_tasks()
        .into_iter()
        .filter(|t| {
            matches!(
                t.model,
                ExecutionModel::OpenMp | ExecutionModel::Kokkos | ExecutionModel::MpiOpenMp
            )
        })
        .collect();
    let tasks = &tasks[..];

    // Cold side: warm path disabled end to end (best of 2).
    warm::set_enabled(false);
    let cold = eval_grid_once(&cfg, tasks, 1).0.min(eval_grid_once(&cfg, tasks, 1).0);

    // Warm side: start from empty caches, prime once (paying every
    // lease miss), then measure steady state (best of 2).
    warm::set_enabled(true);
    lease::flush();
    input_cache::flush();
    let (_prime_s, prime_stats) = eval_grid_once(&cfg, tasks, 1);
    let (warm_a, warm_stats) = eval_grid_once(&cfg, tasks, 1);
    let (warm_b, _) = eval_grid_once(&cfg, tasks, 1);
    let warm_s = warm_a.min(warm_b);

    let speedup = cold / warm_s;
    let json = format!(
        concat!(
            "{{\"workload\":\"smoke grid, threaded columns (36 tasks), jobs 1\",",
            "\"cold_s\":{:.6},\"warm_s\":{:.6},\"speedup\":{:.3},",
            "\"prime_lease_misses\":{},\"steady_lease_hits\":{},",
            "\"steady_lease_misses\":{},\"input_cache_hits\":{}}}"
        ),
        cold,
        warm_s,
        speedup,
        prime_stats.lease_misses,
        warm_stats.lease_hits,
        warm_stats.lease_misses,
        warm_stats.input_cache_hits,
    );
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/pcgbench");
    std::fs::create_dir_all(&dir).expect("create target/pcgbench");
    std::fs::write(dir.join("BENCH_warmpath.json"), &json).expect("write BENCH_warmpath.json");
    println!(
        "grid_sweep: warm path: cold {cold:.3}s, warm {warm_s:.3}s, speedup {speedup:.1}x \
         ({} lease hits / {} misses steady-state)",
        warm_stats.lease_hits, warm_stats.lease_misses,
    );
    assert!(
        speedup >= 2.0,
        "warm path must be >=2x over cold on the smoke grid, got {speedup:.2}x ({json})"
    );
}

/// Wall seconds for one MPI world of `ranks` under the current
/// execution mode: block dot product + allreduce + ring shift, the
/// paper's bread-and-butter communication shape, on the cluster model.
fn mpi_world_seconds(ranks: usize) -> f64 {
    use pcg_mpisim::{CostModel, ReduceOp, World};
    let t0 = Instant::now();
    let out = World::new(ranks)
        .with_cost_model(CostModel::cluster())
        .run(move |comm| {
            let rank = comm.rank();
            let local: Vec<f64> = (0..64).map(|i| (rank * 64 + i) as f64).collect();
            let dot: f64 = local.iter().map(|x| x * x).sum();
            let total = comm.allreduce_one(dot, ReduceOp::Sum);
            let right = (rank + 1) % comm.size();
            let left = (rank + comm.size() - 1) % comm.size();
            let shifted = comm.sendrecv(right, 1, &local, left, 1);
            total + shifted[0]
        })
        .unwrap();
    black_box(out.per_rank);
    t0.elapsed().as_secs_f64()
}

/// Oversubscription A/B: thread-per-rank vs the rank multiplexer at
/// paper-scale world sizes. Thread-per-rank pays one OS thread spawn
/// (2 MiB stack mmap) per rank per run; the multiplexer runs the same
/// world on ~2x-cores fiber workers. Records are byte-identical either
/// way (see `tests/mux_paths.rs`), so wall clock is the whole story.
/// Writes `target/pcgbench/BENCH_mpiscale.json` and asserts the >=3x
/// bar on the MPI-512 column from the multiplexer work.
fn bench_mpi_scale(_c: &mut Criterion) {
    use pcg_mpisim::sched::{self, ExecMode};
    let mut rows = Vec::new();
    let mut speedup_512 = 0.0f64;
    for ranks in [64usize, 128, 256, 512] {
        sched::set_exec_mode(ExecMode::ForceThreads);
        let threads_s = mpi_world_seconds(ranks).min(mpi_world_seconds(ranks));
        sched::set_exec_mode(ExecMode::ForceMux);
        let mux_s = mpi_world_seconds(ranks).min(mpi_world_seconds(ranks));
        let speedup = threads_s / mux_s;
        if ranks == 512 {
            speedup_512 = speedup;
        }
        println!(
            "grid_sweep: mpi scale {ranks} ranks: thread-per-rank {threads_s:.4}s, \
             multiplexed {mux_s:.4}s ({} workers), speedup {speedup:.1}x",
            sched::workers(),
        );
        rows.push(format!(
            "{{\"ranks\":{ranks},\"thread_per_rank_s\":{threads_s:.6},\
             \"multiplexed_s\":{mux_s:.6},\"speedup\":{speedup:.3}}}"
        ));
    }
    sched::set_exec_mode(ExecMode::Auto);

    let json = format!(
        "{{\"workload\":\"block dot + allreduce + ring shift, cluster cost model, best of 2\",\
         \"mux_workers\":{},\"columns\":[{}]}}",
        sched::workers(),
        rows.join(","),
    );
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/pcgbench");
    std::fs::create_dir_all(&dir).expect("create target/pcgbench");
    std::fs::write(dir.join("BENCH_mpiscale.json"), &json).expect("write BENCH_mpiscale.json");
    assert!(
        speedup_512 >= 3.0,
        "rank multiplexing must be >=3x over thread-per-rank at 512 ranks, got \
         {speedup_512:.2}x ({json})"
    );
}

criterion_group!(
    grid_sweep,
    bench_timeout_overlap,
    bench_compute_grid,
    bench_warm_vs_cold,
    bench_mpi_scale
);
criterion_main!(grid_sweep);
