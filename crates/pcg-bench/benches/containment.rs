//! Containment A/B: the same injected-Deadlock grid with the
//! wait-for-graph detector off (every defective candidate burns the
//! wall-clock timeout, the pre-containment behavior) vs on (every
//! defective world fails fast on quiescence).
//!
//! The grid is built so the defect dominates: a synthetic model whose
//! every sample is a `Deadlock` candidate, over one MPI task per
//! problem type. With detection off each unique (task, n) key costs
//! `timeout` + a cancellation tick; with detection on it costs one
//! virtual-time quiescence check. The acceptance bar from the
//! containment work is fail-fast < 0.5x the timeout-only baseline
//! (measured well below 0.1x in practice); the measured pair is
//! written to `target/pcgbench/BENCH_containment.json`, whose
//! committed snapshot lives at the repo root.

use criterion::{criterion_group, criterion_main, Criterion};
use pcg_core::task::all_tasks;
use pcg_core::{ExecutionModel, TaskId};
use pcg_harness::{eval, EvalConfig, EvalStats, SharedRunner};
use pcg_models::SyntheticModel;
use pcg_mpisim::sched;
use std::time::{Duration, Instant};

/// Candidates fail fast or burn this limit; short so the baseline
/// stays benchable, long enough that a fail-fast verdict (~ms) is
/// unambiguously cheaper.
const DEADLOCK_TIMEOUT: Duration = Duration::from_millis(250);

fn deadlock_cfg() -> EvalConfig {
    let mut cfg = EvalConfig::smoke();
    cfg.timeout = DEADLOCK_TIMEOUT;
    cfg.skip_high_temp = true;
    cfg
}

/// A model whose every sample deadlocks: zero success mass, all
/// failure mass on the `deadlock` mix slot.
fn all_deadlock_model() -> SyntheticModel {
    let base = SyntheticModel::by_name("CodeLlama-7B").expect("zoo model");
    let mut calib = base.calibration().clone();
    calib.exec_rate = [0.0; 7];
    calib.failure_mix = [0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 1.0, 0.0];
    SyntheticModel::custom(base.card().clone(), calib, true)
}

/// One MPI task per problem type (6 cells, 6 unique outcome keys).
fn deadlock_tasks() -> Vec<TaskId> {
    all_tasks()
        .filter(|t| t.model == ExecutionModel::Mpi && t.problem.variant == 0)
        .take(6)
        .collect()
}

/// Wall seconds + stats for one cold evaluation of the deadlock grid.
fn deadlock_grid_once(cfg: &EvalConfig, tasks: &[TaskId]) -> (f64, EvalStats) {
    let model = vec![all_deadlock_model()];
    let runner = SharedRunner::new(cfg.clone());
    let t0 = Instant::now();
    let (_, stats) = eval::evaluate_with(cfg, &model, Some(tasks), 1, &runner);
    (t0.elapsed().as_secs_f64(), stats)
}

fn bench_deadlock_containment(_c: &mut Criterion) {
    let cfg = deadlock_cfg();
    let tasks = deadlock_tasks();
    let cells = tasks.len();

    // Fail-fast side first (the process default), best of 2.
    sched::set_deadlock_detection(true);
    let (fast_a, fast_stats) = deadlock_grid_once(&cfg, &tasks);
    let (fast_b, _) = deadlock_grid_once(&cfg, &tasks);
    let failfast_s = fast_a.min(fast_b);
    assert!(
        fast_stats.deadlocks_detected > 0,
        "detection-on grid must fail fast through the detector: {fast_stats:?}"
    );
    assert_eq!(
        fast_stats.timeouts, 0,
        "a detected deadlock must never burn the timeout: {fast_stats:?}"
    );

    // Baseline: detector off, every deadlock world burns the timeout
    // and unwinds on cooperative cancellation (best of 2).
    sched::set_deadlock_detection(false);
    let (base_a, base_stats) = deadlock_grid_once(&cfg, &tasks);
    let (base_b, _) = deadlock_grid_once(&cfg, &tasks);
    sched::set_deadlock_detection(true);
    let baseline_s = base_a.min(base_b);
    assert!(
        base_stats.timeouts > 0,
        "detection-off deadlocks must surface as timeout verdicts: {base_stats:?}"
    );

    let ratio = failfast_s / baseline_s;
    let json = format!(
        concat!(
            "{{\"workload\":\"all-deadlock grid, {} MPI cells, {}ms timeout, jobs 1, best of 2\",",
            "\"baseline_s\":{:.6},\"failfast_s\":{:.6},\"ratio\":{:.4},",
            "\"deadlocks_detected\":{},\"baseline_timeouts\":{}}}"
        ),
        cells,
        DEADLOCK_TIMEOUT.as_millis(),
        baseline_s,
        failfast_s,
        ratio,
        fast_stats.deadlocks_detected,
        base_stats.timeouts,
    );
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/pcgbench");
    std::fs::create_dir_all(&dir).expect("create target/pcgbench");
    std::fs::write(dir.join("BENCH_containment.json"), &json)
        .expect("write BENCH_containment.json");
    println!(
        "containment: {cells} injected-Deadlock cells: timeout-only {baseline_s:.3}s, \
         fail-fast {failfast_s:.3}s, ratio {ratio:.3}"
    );
    assert!(
        ratio < 0.5,
        "fail-fast must beat the timeout-only baseline by >=2x, got ratio {ratio:.3} ({json})"
    );
}

criterion_group!(containment, bench_deadlock_containment);
criterion_main!(containment);
