//! One bench group per paper artifact: regenerating each table/figure
//! from an evaluation record (the metric-estimation and rendering
//! pipeline), plus the end-to-end evaluation of a single task.
//!
//! The *data* behind each figure comes from `pcg-harness`'s pipeline
//! (see `cargo run -p pcg-harness --bin figureN`); these benches keep
//! the regeneration path itself measured so metric-layer regressions
//! are caught.

use criterion::{criterion_group, criterion_main, Criterion};
use pcg_bench::bench_record;
use pcg_core::{CandidateKind, ExecutionModel, ProblemId, ProblemType, Quality};
use pcg_harness::{report, runner::Runner, EvalConfig};
use std::hint::black_box;

fn bench_tables(c: &mut Criterion) {
    let mut g = c.benchmark_group("tables");
    g.bench_function("table1_render", |b| b.iter(|| black_box(report::table1())));
    g.bench_function("table2_render", |b| b.iter(|| black_box(report::table2())));
    g.finish();
}

fn bench_figures(c: &mut Criterion) {
    let rec = bench_record();
    let mut g = c.benchmark_group("figures");
    g.bench_function("figure1_pass1_by_exec", |b| b.iter(|| black_box(report::figure1(rec))));
    g.bench_function("figure2_serial_vs_parallel", |b| {
        b.iter(|| black_box(report::figure2(rec)))
    });
    g.bench_function("figure3_pass1_by_ptype", |b| b.iter(|| black_box(report::figure3(rec))));
    g.bench_function("figure4_pass_at_k", |b| b.iter(|| black_box(report::figure4(rec))));
    g.bench_function("figure5_efficiency_sweeps", |b| {
        b.iter(|| black_box(report::figure5(rec)))
    });
    g.bench_function("figure6_speedup", |b| b.iter(|| black_box(report::figure6(rec))));
    g.bench_function("figure7_efficiency", |b| b.iter(|| black_box(report::figure7(rec))));
    g.bench_function("experiments_summary", |b| {
        b.iter(|| black_box(report::experiments_summary(rec)))
    });
    g.finish();
}

fn bench_pipeline_unit(c: &mut Criterion) {
    // The end-to-end cost of evaluating one candidate on each substrate
    // family (the inner loop behind every figure): a fresh runner per
    // iteration measures the full uncached build-run-validate path.
    let mut g = c.benchmark_group("pipeline");
    g.sample_size(10);
    for (label, model, n) in [
        ("candidate_serial", ExecutionModel::Serial, 1u32),
        ("candidate_openmp", ExecutionModel::OpenMp, 8),
        ("candidate_mpi", ExecutionModel::Mpi, 8),
        ("candidate_cuda", ExecutionModel::Cuda, 0),
    ] {
        g.bench_function(label, |b| {
            let task = ProblemId::new(ProblemType::Transform, 0).task(model);
            b.iter_batched(
                || Runner::new(EvalConfig::smoke()),
                |mut runner| {
                    black_box(runner.outcome(
                        task,
                        CandidateKind::Correct(Quality::Efficient),
                        n,
                    ))
                },
                criterion::BatchSize::PerIteration,
            )
        });
    }
    g.finish();
}

criterion_group!(benches, bench_tables, bench_figures, bench_pipeline_unit);
criterion_main!(benches);
