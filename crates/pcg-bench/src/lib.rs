//! # pcg-bench
//!
//! Criterion benchmarks regenerating the paper's tables and figures
//! (`benches/figures.rs`), measuring the substrates themselves
//! (`benches/substrates.rs`), and quantifying the design choices
//! DESIGN.md calls out (`benches/ablations.rs`).
//!
//! Shared setup lives here: a small cached evaluation record every
//! figure bench can reuse without re-running the pipeline per
//! iteration.

use pcg_core::TaskId;
use pcg_harness::{eval, EvalConfig, EvalRecord};
use pcg_models::SyntheticModel;
use std::sync::OnceLock;

/// A reduced-but-representative evaluation record: three models, one
/// problem per problem type, all execution models, computed once per
/// bench process.
pub fn bench_record() -> &'static EvalRecord {
    static RECORD: OnceLock<EvalRecord> = OnceLock::new();
    RECORD.get_or_init(|| {
        let cfg = EvalConfig::smoke();
        let models: Vec<SyntheticModel> = ["CodeLlama-13B", "Phind-CodeLlama-V2", "GPT-4"]
            .iter()
            .map(|n| SyntheticModel::by_name(n).expect("zoo model"))
            .collect();
        let tasks: Vec<TaskId> = eval::smoke_tasks();
        eval::evaluate(&cfg, &models, Some(&tasks))
    })
}
