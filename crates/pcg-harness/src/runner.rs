//! Candidate execution: build, run (with a time limit), validate
//! against the baseline, check parallel-API usage, and time.
//!
//! Outcomes are cached by `(task, kind, n)`: a synthetic model's
//! candidate artifact is fully determined by its kind, so distinct
//! samples (and distinct models) sharing a kind share one execution —
//! the analog of the paper's per-sample compile-and-run, minus redundant
//! recompilation of byte-identical generations.
//!
//! [`SharedRunner`] is the concurrent form used by the parallel
//! scheduler: many evaluation cells call into one runner at once, and
//! each distinct execution happens exactly once (`OnceLock` per cache
//! key — concurrent requesters for the same key block on the first
//! initializer instead of duplicating work). All caching is keyed by
//! task coordinates, never by worker identity, so results are
//! byte-identical whatever the worker count. [`Runner`] remains as the
//! serial facade over the same machinery.

use crate::config::EvalConfig;
use crate::scheduler::panic_message;
use pcg_core::cancel::{self, CancelToken};
use pcg_core::usage::UsageScope;
use pcg_core::{warm, CandidateKind, Output, PcgError, ProblemId, Stage, TaskId};
use pcg_problems::input_cache::{self, InputCacheStats};
use pcg_problems::lease::{self, LeaseStats};
use pcg_problems::registry;
use parking_lot::{Condvar, Mutex};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, OnceLock};
use std::time::Instant;

/// A measured, validated candidate execution.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// Whether the candidate built.
    pub built: bool,
    /// Fully correct: built, ran in time, validated, used its API.
    pub correct: bool,
    /// Candidate runtime in seconds (virtual or measured; meaningful
    /// only when correct).
    pub seconds: f64,
    /// Failure code (`PcgError::code`-style) when not correct.
    pub error: Option<String>,
}

/// The sequential baseline for a problem at the configured size.
#[derive(Debug, Clone)]
pub struct Baseline {
    /// Oracle output, shared by every candidate validation of the
    /// problem (some oracle outputs are megabytes; cloning one per
    /// execution was measurable).
    pub output: Arc<Output>,
    /// Best-of-reps baseline runtime in seconds.
    pub seconds: f64,
}

/// Monotone execution counters kept by [`SharedRunner`]. Stage times are
/// summed across workers, so under `--jobs N` they can exceed wall
/// clock — they answer "where did the compute go", not "how long did I
/// wait".
#[derive(Debug, Default)]
struct Counters {
    executions: AtomicU64,
    cache_hits: AtomicU64,
    panics: AtomicU64,
    timeouts: AtomicU64,
    cancelled: AtomicU64,
    abandoned: AtomicU64,
    retries: AtomicU64,
    flaky: AtomicU64,
    baseline_ns: AtomicU64,
    run_ns: AtomicU64,
    validate_ns: AtomicU64,
}

/// One hostile candidate: it hard-failed (worker panic or wall-clock
/// timeout) on every attempt it was given. Recorded in the stats
/// sidecar so repeat offenders can be audited after a run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuarantineEntry {
    /// The task the candidate was generated for.
    pub task: TaskId,
    /// Stable candidate-kind code (`CandidateKind::code`).
    pub kind: String,
    /// The resource count of the execution.
    pub n: u32,
    /// The final failure code (`"panic"` or `"timeout"`).
    pub error: String,
}

/// Tracks worker threads that were abandoned (leaked) after ignoring
/// cooperative cancellation past the grace period. Spawning blocks
/// while the live-leak count is at the cap, so a flood of hostile
/// candidates cannot exhaust the process's thread budget.
#[derive(Default)]
struct LeakTracker {
    live: Mutex<usize>,
    cv: Condvar,
    /// Latched when the leak budget was ever exhausted (a spawner had
    /// to block). Surfaced as `leak_budget_exhausted` in the stats
    /// sidecar and loudly in report output — exhaustion silently
    /// degrading throughput is how leak storms used to go unnoticed.
    exhausted: AtomicBool,
}

impl LeakTracker {
    fn add(&self) {
        *self.live.lock() += 1;
    }

    /// An abandoned worker finally unwound; free its slot.
    fn remove(&self) {
        let mut n = self.live.lock();
        *n = n.saturating_sub(1);
        drop(n);
        self.cv.notify_all();
    }

    fn wait_below(&self, cap: usize) {
        let cap = cap.max(1);
        let mut n = self.live.lock();
        while *n >= cap {
            if !self.exhausted.swap(true, Ordering::AcqRel) {
                eprintln!(
                    "pcg-harness: abandoned-worker budget exhausted \
                     ({cap} leaked threads live); blocking new isolated \
                     workers until leaks unwind — raise max_abandoned or \
                     investigate hostile candidates"
                );
            }
            self.cv.wait(&mut n);
        }
    }

    /// Whether the budget was ever exhausted.
    fn was_exhausted(&self) -> bool {
        self.exhausted.load(Ordering::Acquire)
    }

    fn live(&self) -> usize {
        *self.live.lock()
    }
}

/// Supervisor/worker handshake for one isolated execution, deciding —
/// race-free — which side accounts for the worker thread's lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Handshake {
    /// The worker is still inside the candidate body.
    Running,
    /// The worker completed (normally or by unwinding) in time.
    Done,
    /// The supervisor gave up on the worker; the worker must release
    /// its leak slot itself if it ever unwinds.
    Abandoned,
}

/// What the supervisor observed about one isolated execution.
enum WorkerFate<M> {
    /// The worker reported back within the time limit.
    Finished(M),
    /// The worker blew the time limit. It was cancelled and either
    /// unwound within the grace period (counted `cancelled`) or was
    /// abandoned (counted `abandoned`); the caller need not care which
    /// — the outcome is `timeout` either way, so records stay
    /// byte-identical whatever the race resolution.
    TimedOut,
}

fn add_ns(counter: &AtomicU64, since: Instant) {
    let ns = u64::try_from(since.elapsed().as_nanos()).unwrap_or(u64::MAX);
    counter.fetch_add(ns, Ordering::Relaxed);
}

/// One supervised execution, run on a pooled worker thread. Returns
/// whether the worker may be reused: `false` retires the thread (it was
/// abandoned mid-candidate, or its job unwound unexpectedly).
type SupJob = Box<dyn FnOnce() -> bool + Send>;

/// Persistent pool of supervisor worker threads, replacing
/// thread-spawn-per-execution on the warm path. Workers park on a
/// condvar between candidates; a submission wakes an idle worker or
/// spawns one when none is parked. The pool never caps concurrency —
/// isolation semantics (timeout, cancel, grace, abandonment) are
/// unchanged, only the spawn is amortized. An abandoned worker retires
/// itself after its candidate finally unwinds (consuming a leak slot
/// exactly as before), so a poisoned thread never serves another
/// candidate.
#[derive(Default)]
struct SupervisorPool {
    state: Mutex<SupPoolState>,
    cv: Condvar,
}

#[derive(Default)]
struct SupPoolState {
    queue: VecDeque<SupJob>,
    idle: usize,
    shutdown: bool,
}

impl SupervisorPool {
    /// Hand `job` to an idle worker, or spawn a fresh one when none is
    /// parked. Executions are long-running, so waking an *about to be
    /// busy* worker is the failure mode to avoid: when the race is
    /// ambiguous we over-spawn (the extra worker parks afterwards)
    /// rather than queue behind a busy thread.
    fn submit(self: &Arc<Self>, job: SupJob) {
        let spawn_new = {
            let mut st = self.state.lock();
            st.queue.push_back(job);
            st.idle < st.queue.len()
        };
        if spawn_new {
            let pool = Arc::clone(self);
            std::thread::Builder::new()
                .name("pcg-supervised".into())
                .spawn(move || pool.worker_loop())
                .expect("spawn supervised worker");
        } else {
            self.cv.notify_one();
        }
    }

    fn worker_loop(self: Arc<Self>) {
        loop {
            let job = {
                let mut st = self.state.lock();
                loop {
                    if let Some(job) = st.queue.pop_front() {
                        break job;
                    }
                    if st.shutdown {
                        return;
                    }
                    st.idle += 1;
                    self.cv.wait(&mut st);
                    st.idle -= 1;
                }
            };
            // Jobs capture their own panics; treat an unwind here as a
            // poisoned worker and retire it.
            let reusable = catch_unwind(AssertUnwindSafe(job)).unwrap_or(false);
            if !reusable {
                return;
            }
        }
    }

    /// Ask parked workers to exit. In-flight jobs finish normally; their
    /// workers observe the flag when they next look for work.
    fn shutdown(&self) {
        self.state.lock().shutdown = true;
        self.cv.notify_all();
    }
}

/// Warm-path counter snapshot taken at runner construction, so the
/// runner can report per-evaluation deltas of the process-global lease
/// and input-cache statistics.
struct WarmBase {
    lease: LeaseStats,
    input: InputCacheStats,
    sched: pcg_mpisim::SchedStats,
}

/// A compute-once cache slot: concurrent requesters for the same key
/// block on the first initializer instead of duplicating the work.
type OnceCell<T> = Arc<OnceLock<T>>;

/// Thread-safe caching candidate runner, shared by all scheduler
/// workers of one evaluation.
pub struct SharedRunner {
    cfg: EvalConfig,
    baselines: Mutex<HashMap<ProblemId, OnceCell<Baseline>>>,
    outcomes: Mutex<HashMap<(TaskId, CandidateKind, u32), OnceCell<Outcome>>>,
    counters: Counters,
    quarantined: Mutex<Vec<QuarantineEntry>>,
    leaks: Arc<LeakTracker>,
    supervisors: Arc<SupervisorPool>,
    warm_base: WarmBase,
}

impl SharedRunner {
    /// A fresh runner for one evaluation.
    pub fn new(cfg: EvalConfig) -> SharedRunner {
        SharedRunner {
            cfg,
            baselines: Mutex::new(HashMap::new()),
            outcomes: Mutex::new(HashMap::new()),
            counters: Counters::default(),
            quarantined: Mutex::new(Vec::new()),
            leaks: Arc::new(LeakTracker::default()),
            supervisors: Arc::new(SupervisorPool::default()),
            warm_base: WarmBase {
                lease: lease::stats(),
                input: input_cache::stats(),
                sched: pcg_mpisim::sched::stats(),
            },
        }
    }

    /// The evaluation configuration.
    pub fn config(&self) -> &EvalConfig {
        &self.cfg
    }

    fn baseline_cell(&self, problem: ProblemId) -> OnceCell<Baseline> {
        self.baselines
            .lock()
            .entry(problem)
            .or_insert_with(|| Arc::new(OnceLock::new()))
            .clone()
    }

    /// Read the baseline for `problem` (measured on first use) without
    /// cloning its output.
    pub fn with_baseline<R>(&self, problem: ProblemId, f: impl FnOnce(&Baseline) -> R) -> R {
        let cell = self.baseline_cell(problem);
        let baseline = cell.get_or_init(|| {
            let t0 = Instant::now();
            let measured = self.measure_baseline(problem);
            add_ns(&self.counters.baseline_ns, t0);
            measured
        });
        f(baseline)
    }

    /// Best-of-reps baseline seconds for `problem`.
    pub fn baseline_seconds(&self, problem: ProblemId) -> f64 {
        self.with_baseline(problem, |b| b.seconds)
    }

    fn measure_baseline(&self, problem: ProblemId) -> Baseline {
        let p = registry::problem(problem);
        let size = self.cfg.size_for(p.default_size());
        let mut best = f64::INFINITY;
        let mut output = None;
        for _ in 0..self.cfg.reps.max(1) {
            let run = p.run_baseline(self.cfg.seed, size);
            best = best.min(run.seconds);
            output = Some(run.output);
        }
        Baseline { output: Arc::new(output.expect("at least one rep")), seconds: best }
    }

    /// Execute (or fetch the cached execution of) one candidate.
    ///
    /// Candidates that hard-fail (worker panic or wall-clock timeout —
    /// not candidates that merely *report* a failure) are retried once
    /// when `cfg.retry_flaky` is set; a candidate that hard-fails on its
    /// final attempt is quarantined. Retry happens inside the cache
    /// initializer, so concurrent requesters still observe exactly one
    /// (possibly retried) execution sequence per key.
    pub fn outcome(&self, task: TaskId, kind: CandidateKind, n: u32) -> Outcome {
        let cell = {
            let mut map = self.outcomes.lock();
            map.entry((task, kind, n)).or_insert_with(|| Arc::new(OnceLock::new())).clone()
        };
        let mut fresh = false;
        let out = cell.get_or_init(|| {
            fresh = true;
            let baseline_output = self.with_baseline(task.problem, |b| b.output.clone());
            let (first, hard) = self.execute(task, kind, n, &baseline_output);
            if !hard {
                return first;
            }
            if !self.cfg.retry_flaky {
                self.quarantine_candidate(task, kind, n, &first);
                return first;
            }
            self.counters.retries.fetch_add(1, Ordering::Relaxed);
            let (second, still_hard) = self.execute(task, kind, n, &baseline_output);
            if still_hard {
                self.quarantine_candidate(task, kind, n, &second);
            } else {
                self.counters.flaky.fetch_add(1, Ordering::Relaxed);
            }
            second
        });
        if !fresh {
            self.counters.cache_hits.fetch_add(1, Ordering::Relaxed);
        }
        out.clone()
    }

    fn quarantine_candidate(&self, task: TaskId, kind: CandidateKind, n: u32, out: &Outcome) {
        self.quarantined.lock().push(QuarantineEntry {
            task,
            kind: kind.code().to_string(),
            n,
            error: out.error.clone().unwrap_or_else(|| "unknown".into()),
        });
    }

    /// The quarantine list: candidates that hard-failed every attempt,
    /// sorted deterministically (outcome caching makes insertion order
    /// scheduling-dependent).
    pub fn quarantined(&self) -> Vec<QuarantineEntry> {
        let mut q = self.quarantined.lock().clone();
        q.sort_by(|a, b| {
            a.task.cmp(&b.task).then_with(|| a.kind.cmp(&b.kind)).then_with(|| a.n.cmp(&b.n))
        });
        q
    }

    /// The `T*/T` performance ratio of one candidate (0 when incorrect).
    pub fn ratio(&self, task: TaskId, kind: CandidateKind, n: u32) -> f64 {
        let base = self.baseline_seconds(task.problem);
        let out = self.outcome(task, kind, n);
        if out.correct && out.seconds > 0.0 {
            base / out.seconds
        } else {
            0.0
        }
    }

    /// Run `work` on a dedicated worker thread with a cancel token
    /// installed, and supervise it against the configured time limit.
    ///
    /// On timeout the token is cancelled and the worker gets
    /// `cfg.grace` to unwind cooperatively (every substrate checks the
    /// token at its blocking points); a worker that ignores the token —
    /// e.g. a raw `sleep` — is abandoned, which consumes one leak slot
    /// until the thread eventually unwinds. Spawning blocks while
    /// `cfg.max_abandoned` leak slots are consumed, so hostile
    /// candidates degrade throughput instead of exhausting threads.
    fn supervise<M: Send + 'static>(
        &self,
        work: impl FnOnce() -> M + Send + 'static,
    ) -> WorkerFate<M> {
        self.leaks.wait_below(self.cfg.max_abandoned);
        let token = CancelToken::new();
        let worker_token = token.clone();
        let handshake = Arc::new(Mutex::new(Handshake::Running));
        let worker_hs = Arc::clone(&handshake);
        let tracker = Arc::clone(&self.leaks);
        let (tx, rx) = mpsc::channel();
        let job: SupJob = Box::new(move || {
            // Install the candidate's token as a guard: it is restored
            // on return, so a reused worker never carries a stale token
            // into the next candidate.
            let _cancel = cancel::install_token(Some(worker_token));
            let out = work();
            // Finalize the handshake before reporting back: if the
            // supervisor observes `Running`, the candidate body is
            // guaranteed not to have completed.
            let reusable = {
                let mut hs = worker_hs.lock();
                if *hs == Handshake::Abandoned {
                    tracker.remove();
                    // This thread blew past its grace period once;
                    // retire it rather than trust it with another
                    // candidate.
                    false
                } else {
                    *hs = Handshake::Done;
                    true
                }
            };
            let _ = tx.send(out);
            reusable
        });
        if warm::enabled() {
            self.supervisors.submit(job);
        } else {
            std::thread::spawn(move || {
                let _ = job();
            });
        }
        match rx.recv_timeout(self.cfg.timeout) {
            Ok(m) => WorkerFate::Finished(m),
            Err(_) => {
                self.counters.timeouts.fetch_add(1, Ordering::Relaxed);
                token.cancel();
                match rx.recv_timeout(self.cfg.grace) {
                    Ok(_) => {
                        // Unwound cooperatively; the late result is
                        // discarded — the outcome is already "timeout".
                        self.counters.cancelled.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(_) => {
                        let mut hs = handshake.lock();
                        if *hs == Handshake::Running {
                            *hs = Handshake::Abandoned;
                            self.leaks.add();
                            self.counters.abandoned.fetch_add(1, Ordering::Relaxed);
                        } else {
                            // Finished in the race window between the
                            // grace timeout and taking the lock.
                            self.counters.cancelled.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                WorkerFate::TimedOut
            }
        }
    }

    /// Execute one candidate. The boolean is `true` when the execution
    /// hard-failed at the harness level (worker panic or wall-clock
    /// timeout) — the signal for retry/quarantine — as opposed to a
    /// candidate that merely *reported* a failure (e.g. the virtual
    /// `CandidateKind::Timeout`, which returns instantly).
    fn execute(
        &self,
        task: TaskId,
        kind: CandidateKind,
        n: u32,
        baseline_output: &Output,
    ) -> (Outcome, bool) {
        let problem = registry::problem(task.problem);
        let size = self.cfg.size_for(problem.default_size());
        let seed = self.cfg.seed;
        let reps = if matches!(kind, CandidateKind::Correct(_)) { self.cfg.reps.max(1) } else { 1 };
        self.counters.executions.fetch_add(1, Ordering::Relaxed);

        // Run on a worker thread so a runaway candidate can be cancelled
        // (and, failing that, abandoned) at the time limit — the paper's
        // 3-minute kill. Panics inside the candidate are captured on
        // that thread — distinguishable from a hang.
        let t_run = Instant::now();
        let fate = self.supervise(move || {
            let scope = UsageScope::begin();
            let body = catch_unwind(AssertUnwindSafe(|| {
                let mut best = f64::INFINITY;
                let mut last = None;
                for _ in 0..reps {
                    let run = problem.run_candidate(task.model, kind, n, seed, size);
                    match &run {
                        Ok(r) => best = best.min(r.seconds),
                        Err(_) => {
                            last = Some(run);
                            break;
                        }
                    }
                    last = Some(run);
                }
                (last.expect("at least one rep ran"), best)
            }))
            .map_err(|p| panic_message(&*p));
            let usage = scope.finish();
            (body, usage)
        });
        add_ns(&self.counters.run_ns, t_run);
        let (body, usage) = match fate {
            WorkerFate::Finished(v) => v,
            WorkerFate::TimedOut => {
                return (
                    Outcome {
                        built: true,
                        correct: false,
                        seconds: f64::INFINITY,
                        error: Some("timeout".into()),
                    },
                    true,
                );
            }
        };

        let (result, best) = match body {
            Ok(v) => v,
            Err(_panic_msg) => {
                self.counters.panics.fetch_add(1, Ordering::Relaxed);
                return (
                    Outcome {
                        built: true,
                        correct: false,
                        seconds: f64::INFINITY,
                        error: Some("panic".into()),
                    },
                    true,
                );
            }
        };

        let outcome = match result {
            Err(PcgError::BuildFailure(_)) => Outcome {
                built: false,
                correct: false,
                seconds: f64::INFINITY,
                error: Some("build".into()),
            },
            Err(e) => Outcome {
                built: true,
                correct: false,
                seconds: f64::INFINITY,
                error: Some(e.code().to_string()),
            },
            Ok(run) => {
                let t_val = Instant::now();
                let wrong = !run.output.approx_eq(baseline_output);
                let sequential = !wrong && !usage.used_required_api(task.model);
                add_ns(&self.counters.validate_ns, t_val);
                if wrong {
                    Outcome {
                        built: true,
                        correct: false,
                        seconds: best,
                        error: Some("wrong".into()),
                    }
                } else if sequential {
                    Outcome {
                        built: true,
                        correct: false,
                        seconds: best,
                        error: Some("sequential".into()),
                    }
                } else {
                    Outcome { built: true, correct: true, seconds: best, error: None }
                }
            }
        };
        (outcome, false)
    }

    /// Run an arbitrary closure through the same isolation machinery a
    /// candidate gets: dedicated worker thread with a cancel token
    /// installed, panic capture, and timeout cancellation (grace
    /// period, then abandonment) at `config().timeout`. Used by the
    /// substrate conformance tests to prove that a hostile candidate
    /// (hang or panic on any substrate) cannot wedge an evaluation
    /// worker.
    pub fn run_isolated<R, F>(&self, f: F) -> Outcome
    where
        R: Send + 'static,
        F: FnOnce() -> Result<R, PcgError> + Send + 'static,
    {
        self.counters.executions.fetch_add(1, Ordering::Relaxed);
        let t_run = Instant::now();
        let fate = self.supervise(move || {
            let t0 = Instant::now();
            let body = catch_unwind(AssertUnwindSafe(f)).map_err(|p| panic_message(&*p));
            (body, t0.elapsed().as_secs_f64())
        });
        add_ns(&self.counters.run_ns, t_run);
        match fate {
            WorkerFate::TimedOut => Outcome {
                built: true,
                correct: false,
                seconds: f64::INFINITY,
                error: Some("timeout".into()),
            },
            WorkerFate::Finished((Err(_panic), _)) => {
                self.counters.panics.fetch_add(1, Ordering::Relaxed);
                Outcome {
                    built: true,
                    correct: false,
                    seconds: f64::INFINITY,
                    error: Some("panic".into()),
                }
            }
            WorkerFate::Finished((Ok(Err(e)), _)) => Outcome {
                built: !matches!(e, PcgError::BuildFailure(_)),
                correct: false,
                seconds: f64::INFINITY,
                error: Some(e.code().to_string()),
            },
            WorkerFate::Finished((Ok(Ok(_)), secs)) => {
                Outcome { built: true, correct: true, seconds: secs, error: None }
            }
        }
    }

    /// Total candidate executions performed (cache misses).
    pub fn executions(&self) -> u64 {
        self.counters.executions.load(Ordering::Relaxed)
    }

    /// Outcome requests served from cache.
    pub fn cache_hits(&self) -> u64 {
        self.counters.cache_hits.load(Ordering::Relaxed)
    }

    /// Candidates whose body panicked (captured, not propagated).
    pub fn panics(&self) -> u64 {
        self.counters.panics.load(Ordering::Relaxed)
    }

    /// Candidates that blew the time limit (whether they then unwound
    /// cooperatively or had to be abandoned).
    pub fn timeouts(&self) -> u64 {
        self.counters.timeouts.load(Ordering::Relaxed)
    }

    /// Timed-out workers that unwound cooperatively within the grace
    /// period after their cancel token fired.
    pub fn cancelled(&self) -> u64 {
        self.counters.cancelled.load(Ordering::Relaxed)
    }

    /// Timed-out workers that ignored cancellation past the grace
    /// period and were abandoned (leaked until they unwind).
    pub fn abandoned(&self) -> u64 {
        self.counters.abandoned.load(Ordering::Relaxed)
    }

    /// Hard-failed candidates re-executed under `cfg.retry_flaky`.
    pub fn retries(&self) -> u64 {
        self.counters.retries.load(Ordering::Relaxed)
    }

    /// Retried candidates whose second attempt did not hard-fail.
    pub fn flaky(&self) -> u64 {
        self.counters.flaky.load(Ordering::Relaxed)
    }

    /// Abandoned worker threads that have not yet unwound.
    pub fn leaked_workers(&self) -> usize {
        self.leaks.live()
    }

    /// Cumulative seconds attributed to `stage`, summed across workers.
    /// `Stage::Queue` is tracked by the scheduler, not the runner, so it
    /// reads zero here.
    pub fn stage_seconds(&self, stage: Stage) -> f64 {
        let ns = match stage {
            Stage::Queue => 0,
            Stage::Baseline => self.counters.baseline_ns.load(Ordering::Relaxed),
            Stage::Run => self.counters.run_ns.load(Ordering::Relaxed),
            Stage::Validate => self.counters.validate_ns.load(Ordering::Relaxed),
        };
        ns as f64 / 1e9
    }

    /// Substrate-lease checkouts served warm since this runner was
    /// created (delta of the process-global counter).
    pub fn lease_hits(&self) -> u64 {
        lease::stats().hits.saturating_sub(self.warm_base.lease.hits)
    }

    /// Substrate-lease checkouts that built a fresh substrate.
    pub fn lease_misses(&self) -> u64 {
        lease::stats().misses.saturating_sub(self.warm_base.lease.misses)
    }

    /// Leased substrates discarded because their candidate unwound
    /// (panic or cooperative cancellation) while holding them.
    pub fn pools_poisoned(&self) -> u64 {
        lease::stats().poisoned.saturating_sub(self.warm_base.lease.poisoned)
    }

    /// Input-instance lookups served by the memoization cache.
    pub fn input_cache_hits(&self) -> u64 {
        input_cache::stats().hits.saturating_sub(self.warm_base.input.hits)
    }

    /// Seconds spent constructing substrates on lease misses (the warm
    /// path's analog of per-run pool setup time).
    pub fn pool_setup_s(&self) -> f64 {
        (lease::stats().setup_s - self.warm_base.lease.setup_s).max(0.0)
    }

    /// Simulated MPI ranks run as multiplexed fibers rather than OS
    /// threads during this evaluation.
    pub fn ranks_multiplexed(&self) -> u64 {
        pcg_mpisim::sched::stats()
            .ranks_multiplexed
            .saturating_sub(self.warm_base.sched.ranks_multiplexed)
    }

    /// Payload bytes moved by reference (`Arc` forward) instead of
    /// copied during this evaluation's simulated message transport.
    pub fn bytes_zero_copied(&self) -> u64 {
        pcg_mpisim::sched::stats()
            .bytes_zero_copied
            .saturating_sub(self.warm_base.sched.bytes_zero_copied)
    }

    /// Worlds failed fast by the wait-for-graph deadlock detector
    /// during this evaluation.
    pub fn deadlocks_detected(&self) -> u64 {
        pcg_mpisim::sched::stats()
            .deadlocks_detected
            .saturating_sub(self.warm_base.sched.deadlocks_detected)
    }

    /// Fiber stack overflows converted into verdicts by the guard page
    /// during this evaluation.
    pub fn stack_overflows_caught(&self) -> u64 {
        pcg_mpisim::sched::stats()
            .stack_overflows_caught
            .saturating_sub(self.warm_base.sched.stack_overflows_caught)
    }

    /// SIGSEGV faults classified as guard-page hits during this
    /// evaluation.
    pub fn guard_faults(&self) -> u64 {
        pcg_mpisim::sched::stats()
            .guard_faults
            .saturating_sub(self.warm_base.sched.guard_faults)
    }

    /// Whether the abandoned-worker budget was exhausted at least once
    /// (spawners had to block until leaks unwound).
    pub fn leak_budget_exhausted(&self) -> bool {
        self.leaks.was_exhausted()
    }
}

impl Drop for SharedRunner {
    fn drop(&mut self) {
        // Release parked supervisor workers; in-flight executions (and
        // abandoned ones) keep their own `Arc` to the pool and exit
        // after their current job.
        self.supervisors.shutdown();
    }
}

/// Caching candidate runner (serial facade over [`SharedRunner`]).
pub struct Runner {
    shared: SharedRunner,
}

impl Runner {
    /// A fresh runner for one evaluation.
    pub fn new(cfg: EvalConfig) -> Runner {
        Runner { shared: SharedRunner::new(cfg) }
    }

    /// The evaluation configuration.
    pub fn config(&self) -> &EvalConfig {
        self.shared.config()
    }

    /// The underlying shared runner.
    pub fn shared(&self) -> &SharedRunner {
        &self.shared
    }

    /// The baseline for `problem`, measured on first use.
    pub fn baseline(&mut self, problem: ProblemId) -> Baseline {
        self.shared.with_baseline(problem, Baseline::clone)
    }

    /// Execute (or fetch the cached execution of) one candidate.
    pub fn outcome(&mut self, task: TaskId, kind: CandidateKind, n: u32) -> Outcome {
        self.shared.outcome(task, kind, n)
    }

    /// The `T*/T` performance ratio of one candidate (0 when incorrect).
    pub fn ratio(&mut self, task: TaskId, kind: CandidateKind, n: u32) -> f64 {
        self.shared.ratio(task, kind, n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcg_core::{ExecutionModel, ProblemType, Quality};
    use std::time::Duration;

    fn mk_task(model: ExecutionModel) -> TaskId {
        pcg_core::ProblemId::new(ProblemType::Transform, 0).task(model)
    }

    fn runner() -> Runner {
        Runner::new(EvalConfig::smoke())
    }

    #[test]
    fn correct_candidate_validates() {
        let mut r = runner();
        let out = r.outcome(
            mk_task(ExecutionModel::OpenMp),
            CandidateKind::Correct(Quality::Efficient),
            4,
        );
        assert!(out.built && out.correct, "{out:?}");
        assert!(r.ratio(mk_task(ExecutionModel::OpenMp), CandidateKind::Correct(Quality::Efficient), 4) > 0.0);
    }

    #[test]
    fn failure_kinds_map_to_codes() {
        let mut r = runner();
        let t = mk_task(ExecutionModel::OpenMp);
        let build = r.outcome(t, CandidateKind::BuildFailure, 4);
        assert!(!build.built && !build.correct);
        assert_eq!(build.error.as_deref(), Some("build"));

        let crash = r.outcome(t, CandidateKind::RuntimeCrash, 4);
        assert!(crash.built && !crash.correct);
        assert_eq!(crash.error.as_deref(), Some("runtime"));

        let timeout = r.outcome(t, CandidateKind::Timeout, 4);
        assert!(!timeout.correct);
        assert_eq!(timeout.error.as_deref(), Some("timeout"));

        let wrong = r.outcome(
            t,
            CandidateKind::WrongOutput(pcg_core::Corruption::PerturbElement),
            4,
        );
        assert!(wrong.built && !wrong.correct);
        assert_eq!(wrong.error.as_deref(), Some("wrong"));
        assert_eq!(r.ratio(t, CandidateKind::WrongOutput(pcg_core::Corruption::PerturbElement), 4), 0.0);
    }

    #[test]
    fn sequential_fallback_flagged_only_for_parallel_tasks() {
        let mut r = runner();
        let par = r.outcome(mk_task(ExecutionModel::Kokkos), CandidateKind::SequentialFallback, 4);
        assert!(!par.correct);
        assert_eq!(par.error.as_deref(), Some("sequential"));

        let ser = r.outcome(mk_task(ExecutionModel::Serial), CandidateKind::SequentialFallback, 1);
        assert!(ser.correct, "serial prompts cannot fail the usage check");
    }

    #[test]
    fn outcomes_are_cached() {
        let mut r = runner();
        let t = mk_task(ExecutionModel::Cuda);
        let a = r.outcome(t, CandidateKind::Correct(Quality::Efficient), 0);
        let hits_before = r.shared().cache_hits();
        let b = r.outcome(t, CandidateKind::Correct(Quality::Efficient), 0);
        assert_eq!(a.seconds, b.seconds, "second call must be the cached run");
        assert_eq!(r.shared().cache_hits(), hits_before + 1);
    }

    #[test]
    fn inefficient_candidate_is_slower() {
        let mut r = runner();
        let t = mk_task(ExecutionModel::OpenMp);
        let eff = r.ratio(t, CandidateKind::Correct(Quality::Efficient), 8);
        let ineff = r.ratio(t, CandidateKind::Correct(Quality::Inefficient), 8);
        assert!(eff > 0.0 && ineff > 0.0);
        // The lopsided candidate cannot beat the balanced one by much;
        // allow noise but expect a clear ordering at 8 threads.
        assert!(ineff < eff * 1.5, "eff={eff} ineff={ineff}");
    }

    #[test]
    fn isolated_panic_is_captured_not_propagated() {
        let r = SharedRunner::new(EvalConfig::smoke());
        let out = r.run_isolated::<(), _>(|| panic!("candidate exploded"));
        assert!(!out.correct);
        assert_eq!(out.error.as_deref(), Some("panic"));
        assert_eq!(r.panics(), 1);
        // The runner is still serviceable after a panic.
        let ok = r.run_isolated(|| Ok::<_, PcgError>(42));
        assert!(ok.correct, "{ok:?}");
    }

    #[test]
    fn isolated_hang_is_abandoned_at_the_limit() {
        let mut cfg = EvalConfig::smoke();
        cfg.timeout = Duration::from_millis(50);
        cfg.grace = Duration::from_millis(50);
        let r = SharedRunner::new(cfg);
        // A raw sleep never observes the cancel token, so after the
        // grace period the worker must be abandoned, not cancelled.
        let out = r.run_isolated(|| {
            std::thread::sleep(Duration::from_secs(30));
            Ok::<_, PcgError>(())
        });
        assert!(!out.correct);
        assert_eq!(out.error.as_deref(), Some("timeout"));
        assert_eq!(r.timeouts(), 1);
        assert_eq!(r.abandoned(), 1);
        assert_eq!(r.cancelled(), 0);
        assert_eq!(r.leaked_workers(), 1, "the sleeper holds a leak slot");
    }

    #[test]
    fn cancelled_worker_unwinds_within_grace_without_abandonment() {
        let mut cfg = EvalConfig::smoke();
        cfg.timeout = Duration::from_millis(50);
        cfg.grace = Duration::from_secs(10);
        let r = SharedRunner::new(cfg);
        // A cooperative hang: spins on the cancel token the way every
        // substrate's blocking points do.
        let out = r.run_isolated::<(), _>(|| loop {
            pcg_core::cancel::check_current();
            std::thread::sleep(Duration::from_millis(1));
        });
        assert!(!out.correct);
        assert_eq!(out.error.as_deref(), Some("timeout"));
        assert_eq!(r.timeouts(), 1);
        assert_eq!(r.cancelled(), 1);
        assert_eq!(r.abandoned(), 0, "cooperative unwind must not leak");
        assert_eq!(r.leaked_workers(), 0);
    }

    #[test]
    fn abandonment_cap_blocks_until_a_leaked_worker_unwinds() {
        let mut cfg = EvalConfig::smoke();
        cfg.timeout = Duration::from_millis(20);
        cfg.grace = Duration::from_millis(20);
        cfg.max_abandoned = 1;
        let r = SharedRunner::new(cfg);
        // First hostile candidate: sleeps past timeout+grace, gets
        // abandoned, and occupies the single leak slot for ~150ms.
        let out = r.run_isolated(|| {
            std::thread::sleep(Duration::from_millis(150));
            Ok::<_, PcgError>(())
        });
        assert_eq!(out.error.as_deref(), Some("timeout"));
        assert_eq!(r.abandoned(), 1);
        assert!(
            !r.leak_budget_exhausted(),
            "abandonment alone must not trip the flag — only blocking does"
        );
        // Second execution must wait for the slot, then run normally.
        let t0 = std::time::Instant::now();
        let ok = r.run_isolated(|| Ok::<_, PcgError>(1));
        assert!(ok.correct, "{ok:?}");
        assert!(
            t0.elapsed() >= Duration::from_millis(30),
            "spawn should have blocked on the leak cap"
        );
        assert_eq!(r.leaked_workers(), 0, "the sleeper released its slot on unwind");
        assert!(
            r.leak_budget_exhausted(),
            "blocking on the exhausted budget must latch the sidecar flag"
        );
    }

    #[test]
    fn shared_runner_is_deterministic_across_worker_counts() {
        // Same key from many threads: exactly one execution, same value.
        let r = SharedRunner::new(EvalConfig::smoke());
        let t = mk_task(ExecutionModel::OpenMp);
        let kind = CandidateKind::Correct(Quality::Efficient);
        let outs: Vec<Outcome> = std::thread::scope(|s| {
            let handles: Vec<_> =
                (0..8).map(|_| s.spawn(|| r.outcome(t, kind, 4))).collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(r.executions(), 1, "one execution, {} cache hits", r.cache_hits());
        for o in &outs {
            assert!(o.correct);
            assert_eq!(o.seconds, outs[0].seconds);
        }
        assert!(r.stage_seconds(Stage::Run) > 0.0);
        assert_eq!(r.stage_seconds(Stage::Queue), 0.0);
    }
}
