//! Candidate execution: build, run (with a time limit), validate
//! against the baseline, check parallel-API usage, and time.
//!
//! Outcomes are cached by `(task, kind, n)`: a synthetic model's
//! candidate artifact is fully determined by its kind, so distinct
//! samples (and distinct models) sharing a kind share one execution —
//! the analog of the paper's per-sample compile-and-run, minus redundant
//! recompilation of byte-identical generations.
//!
//! [`SharedRunner`] is the concurrent form used by the parallel
//! scheduler: many evaluation cells call into one runner at once, and
//! each distinct execution happens exactly once (`OnceLock` per cache
//! key — concurrent requesters for the same key block on the first
//! initializer instead of duplicating work). All caching is keyed by
//! task coordinates, never by worker identity, so results are
//! byte-identical whatever the worker count. [`Runner`] remains as the
//! serial facade over the same machinery.

use crate::config::EvalConfig;
use crate::scheduler::panic_message;
use pcg_core::usage::UsageScope;
use pcg_core::{CandidateKind, Output, PcgError, ProblemId, Stage, TaskId};
use pcg_problems::registry;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, OnceLock};
use std::time::Instant;

/// A measured, validated candidate execution.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// Whether the candidate built.
    pub built: bool,
    /// Fully correct: built, ran in time, validated, used its API.
    pub correct: bool,
    /// Candidate runtime in seconds (virtual or measured; meaningful
    /// only when correct).
    pub seconds: f64,
    /// Failure code (`PcgError::code`-style) when not correct.
    pub error: Option<String>,
}

/// The sequential baseline for a problem at the configured size.
#[derive(Debug, Clone)]
pub struct Baseline {
    /// Oracle output.
    pub output: Output,
    /// Best-of-reps baseline runtime in seconds.
    pub seconds: f64,
}

/// Monotone execution counters kept by [`SharedRunner`]. Stage times are
/// summed across workers, so under `--jobs N` they can exceed wall
/// clock — they answer "where did the compute go", not "how long did I
/// wait".
#[derive(Debug, Default)]
struct Counters {
    executions: AtomicU64,
    cache_hits: AtomicU64,
    panics: AtomicU64,
    timeouts: AtomicU64,
    baseline_ns: AtomicU64,
    run_ns: AtomicU64,
    validate_ns: AtomicU64,
}

fn add_ns(counter: &AtomicU64, since: Instant) {
    let ns = u64::try_from(since.elapsed().as_nanos()).unwrap_or(u64::MAX);
    counter.fetch_add(ns, Ordering::Relaxed);
}

/// A compute-once cache slot: concurrent requesters for the same key
/// block on the first initializer instead of duplicating the work.
type OnceCell<T> = Arc<OnceLock<T>>;

/// Thread-safe caching candidate runner, shared by all scheduler
/// workers of one evaluation.
pub struct SharedRunner {
    cfg: EvalConfig,
    baselines: Mutex<HashMap<ProblemId, OnceCell<Baseline>>>,
    outcomes: Mutex<HashMap<(TaskId, CandidateKind, u32), OnceCell<Outcome>>>,
    counters: Counters,
}

impl SharedRunner {
    /// A fresh runner for one evaluation.
    pub fn new(cfg: EvalConfig) -> SharedRunner {
        SharedRunner {
            cfg,
            baselines: Mutex::new(HashMap::new()),
            outcomes: Mutex::new(HashMap::new()),
            counters: Counters::default(),
        }
    }

    /// The evaluation configuration.
    pub fn config(&self) -> &EvalConfig {
        &self.cfg
    }

    fn baseline_cell(&self, problem: ProblemId) -> OnceCell<Baseline> {
        self.baselines
            .lock()
            .entry(problem)
            .or_insert_with(|| Arc::new(OnceLock::new()))
            .clone()
    }

    /// Read the baseline for `problem` (measured on first use) without
    /// cloning its output.
    pub fn with_baseline<R>(&self, problem: ProblemId, f: impl FnOnce(&Baseline) -> R) -> R {
        let cell = self.baseline_cell(problem);
        let baseline = cell.get_or_init(|| {
            let t0 = Instant::now();
            let measured = self.measure_baseline(problem);
            add_ns(&self.counters.baseline_ns, t0);
            measured
        });
        f(baseline)
    }

    /// Best-of-reps baseline seconds for `problem`.
    pub fn baseline_seconds(&self, problem: ProblemId) -> f64 {
        self.with_baseline(problem, |b| b.seconds)
    }

    fn measure_baseline(&self, problem: ProblemId) -> Baseline {
        let p = registry::problem(problem);
        let size = self.cfg.size_for(p.default_size());
        let mut best = f64::INFINITY;
        let mut output = None;
        for _ in 0..self.cfg.reps.max(1) {
            let run = p.run_baseline(self.cfg.seed, size);
            best = best.min(run.seconds);
            output = Some(run.output);
        }
        Baseline { output: output.expect("at least one rep"), seconds: best }
    }

    /// Execute (or fetch the cached execution of) one candidate.
    pub fn outcome(&self, task: TaskId, kind: CandidateKind, n: u32) -> Outcome {
        let cell = {
            let mut map = self.outcomes.lock();
            map.entry((task, kind, n)).or_insert_with(|| Arc::new(OnceLock::new())).clone()
        };
        let mut fresh = false;
        let out = cell.get_or_init(|| {
            fresh = true;
            let baseline_output = self.with_baseline(task.problem, |b| b.output.clone());
            self.execute(task, kind, n, &baseline_output)
        });
        if !fresh {
            self.counters.cache_hits.fetch_add(1, Ordering::Relaxed);
        }
        out.clone()
    }

    /// The `T*/T` performance ratio of one candidate (0 when incorrect).
    pub fn ratio(&self, task: TaskId, kind: CandidateKind, n: u32) -> f64 {
        let base = self.baseline_seconds(task.problem);
        let out = self.outcome(task, kind, n);
        if out.correct && out.seconds > 0.0 {
            base / out.seconds
        } else {
            0.0
        }
    }

    fn execute(
        &self,
        task: TaskId,
        kind: CandidateKind,
        n: u32,
        baseline_output: &Output,
    ) -> Outcome {
        let problem = registry::problem(task.problem);
        let size = self.cfg.size_for(problem.default_size());
        let seed = self.cfg.seed;
        let reps = if matches!(kind, CandidateKind::Correct(_)) { self.cfg.reps.max(1) } else { 1 };
        self.counters.executions.fetch_add(1, Ordering::Relaxed);

        // Run on a worker thread so a runaway candidate can be abandoned
        // at the time limit (the paper's 3-minute kill). Panics inside
        // the candidate are captured on that thread — distinguishable
        // from a hang — and the worker always reports back.
        let t_run = Instant::now();
        let (tx, rx) = mpsc::channel();
        std::thread::spawn(move || {
            let scope = UsageScope::begin();
            let body = catch_unwind(AssertUnwindSafe(|| {
                let mut best = f64::INFINITY;
                let mut last = None;
                for _ in 0..reps {
                    let run = problem.run_candidate(task.model, kind, n, seed, size);
                    match &run {
                        Ok(r) => best = best.min(r.seconds),
                        Err(_) => {
                            last = Some(run);
                            break;
                        }
                    }
                    last = Some(run);
                }
                (last.expect("at least one rep ran"), best)
            }))
            .map_err(|p| panic_message(&*p));
            let usage = scope.finish();
            let _ = tx.send((body, usage));
        });

        let recv = rx.recv_timeout(self.cfg.timeout);
        add_ns(&self.counters.run_ns, t_run);
        let (body, usage) = match recv {
            Ok(v) => v,
            Err(_) => {
                // The candidate hung past the limit; abandon the worker
                // (it is detached and will be reaped at process exit).
                self.counters.timeouts.fetch_add(1, Ordering::Relaxed);
                return Outcome {
                    built: true,
                    correct: false,
                    seconds: f64::INFINITY,
                    error: Some("timeout".into()),
                };
            }
        };

        let (result, best) = match body {
            Ok(v) => v,
            Err(_panic_msg) => {
                self.counters.panics.fetch_add(1, Ordering::Relaxed);
                return Outcome {
                    built: true,
                    correct: false,
                    seconds: f64::INFINITY,
                    error: Some("panic".into()),
                };
            }
        };

        match result {
            Err(PcgError::BuildFailure(_)) => Outcome {
                built: false,
                correct: false,
                seconds: f64::INFINITY,
                error: Some("build".into()),
            },
            Err(e) => Outcome {
                built: true,
                correct: false,
                seconds: f64::INFINITY,
                error: Some(e.code().to_string()),
            },
            Ok(run) => {
                let t_val = Instant::now();
                let wrong = !run.output.approx_eq(baseline_output);
                let sequential = !wrong && !usage.used_required_api(task.model);
                add_ns(&self.counters.validate_ns, t_val);
                if wrong {
                    return Outcome {
                        built: true,
                        correct: false,
                        seconds: best,
                        error: Some("wrong".into()),
                    };
                }
                if sequential {
                    return Outcome {
                        built: true,
                        correct: false,
                        seconds: best,
                        error: Some("sequential".into()),
                    };
                }
                Outcome { built: true, correct: true, seconds: best, error: None }
            }
        }
    }

    /// Run an arbitrary closure through the same isolation machinery a
    /// candidate gets: dedicated worker thread, panic capture, timeout
    /// abandonment at `config().timeout`. Used by the substrate
    /// conformance tests to prove that a hostile candidate (hang or
    /// panic on any substrate) cannot wedge an evaluation worker.
    pub fn run_isolated<R, F>(&self, f: F) -> Outcome
    where
        R: Send + 'static,
        F: FnOnce() -> Result<R, PcgError> + Send + 'static,
    {
        self.counters.executions.fetch_add(1, Ordering::Relaxed);
        let t_run = Instant::now();
        let (tx, rx) = mpsc::channel();
        std::thread::spawn(move || {
            let t0 = Instant::now();
            let body = catch_unwind(AssertUnwindSafe(f)).map_err(|p| panic_message(&*p));
            let _ = tx.send((body, t0.elapsed().as_secs_f64()));
        });
        let recv = rx.recv_timeout(self.cfg.timeout);
        add_ns(&self.counters.run_ns, t_run);
        match recv {
            Err(_) => {
                self.counters.timeouts.fetch_add(1, Ordering::Relaxed);
                Outcome {
                    built: true,
                    correct: false,
                    seconds: f64::INFINITY,
                    error: Some("timeout".into()),
                }
            }
            Ok((Err(_panic), _)) => {
                self.counters.panics.fetch_add(1, Ordering::Relaxed);
                Outcome {
                    built: true,
                    correct: false,
                    seconds: f64::INFINITY,
                    error: Some("panic".into()),
                }
            }
            Ok((Ok(Err(e)), _)) => Outcome {
                built: !matches!(e, PcgError::BuildFailure(_)),
                correct: false,
                seconds: f64::INFINITY,
                error: Some(e.code().to_string()),
            },
            Ok((Ok(Ok(_)), secs)) => {
                Outcome { built: true, correct: true, seconds: secs, error: None }
            }
        }
    }

    /// Total candidate executions performed (cache misses).
    pub fn executions(&self) -> u64 {
        self.counters.executions.load(Ordering::Relaxed)
    }

    /// Outcome requests served from cache.
    pub fn cache_hits(&self) -> u64 {
        self.counters.cache_hits.load(Ordering::Relaxed)
    }

    /// Candidates whose body panicked (captured, not propagated).
    pub fn panics(&self) -> u64 {
        self.counters.panics.load(Ordering::Relaxed)
    }

    /// Candidates abandoned at the time limit.
    pub fn timeouts(&self) -> u64 {
        self.counters.timeouts.load(Ordering::Relaxed)
    }

    /// Cumulative seconds attributed to `stage`, summed across workers.
    /// `Stage::Queue` is tracked by the scheduler, not the runner, so it
    /// reads zero here.
    pub fn stage_seconds(&self, stage: Stage) -> f64 {
        let ns = match stage {
            Stage::Queue => 0,
            Stage::Baseline => self.counters.baseline_ns.load(Ordering::Relaxed),
            Stage::Run => self.counters.run_ns.load(Ordering::Relaxed),
            Stage::Validate => self.counters.validate_ns.load(Ordering::Relaxed),
        };
        ns as f64 / 1e9
    }
}

/// Caching candidate runner (serial facade over [`SharedRunner`]).
pub struct Runner {
    shared: SharedRunner,
}

impl Runner {
    /// A fresh runner for one evaluation.
    pub fn new(cfg: EvalConfig) -> Runner {
        Runner { shared: SharedRunner::new(cfg) }
    }

    /// The evaluation configuration.
    pub fn config(&self) -> &EvalConfig {
        self.shared.config()
    }

    /// The underlying shared runner.
    pub fn shared(&self) -> &SharedRunner {
        &self.shared
    }

    /// The baseline for `problem`, measured on first use.
    pub fn baseline(&mut self, problem: ProblemId) -> Baseline {
        self.shared.with_baseline(problem, Baseline::clone)
    }

    /// Execute (or fetch the cached execution of) one candidate.
    pub fn outcome(&mut self, task: TaskId, kind: CandidateKind, n: u32) -> Outcome {
        self.shared.outcome(task, kind, n)
    }

    /// The `T*/T` performance ratio of one candidate (0 when incorrect).
    pub fn ratio(&mut self, task: TaskId, kind: CandidateKind, n: u32) -> f64 {
        self.shared.ratio(task, kind, n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcg_core::{ExecutionModel, ProblemType, Quality};
    use std::time::Duration;

    fn mk_task(model: ExecutionModel) -> TaskId {
        pcg_core::ProblemId::new(ProblemType::Transform, 0).task(model)
    }

    fn runner() -> Runner {
        Runner::new(EvalConfig::smoke())
    }

    #[test]
    fn correct_candidate_validates() {
        let mut r = runner();
        let out = r.outcome(
            mk_task(ExecutionModel::OpenMp),
            CandidateKind::Correct(Quality::Efficient),
            4,
        );
        assert!(out.built && out.correct, "{out:?}");
        assert!(r.ratio(mk_task(ExecutionModel::OpenMp), CandidateKind::Correct(Quality::Efficient), 4) > 0.0);
    }

    #[test]
    fn failure_kinds_map_to_codes() {
        let mut r = runner();
        let t = mk_task(ExecutionModel::OpenMp);
        let build = r.outcome(t, CandidateKind::BuildFailure, 4);
        assert!(!build.built && !build.correct);
        assert_eq!(build.error.as_deref(), Some("build"));

        let crash = r.outcome(t, CandidateKind::RuntimeCrash, 4);
        assert!(crash.built && !crash.correct);
        assert_eq!(crash.error.as_deref(), Some("runtime"));

        let timeout = r.outcome(t, CandidateKind::Timeout, 4);
        assert!(!timeout.correct);
        assert_eq!(timeout.error.as_deref(), Some("timeout"));

        let wrong = r.outcome(
            t,
            CandidateKind::WrongOutput(pcg_core::Corruption::PerturbElement),
            4,
        );
        assert!(wrong.built && !wrong.correct);
        assert_eq!(wrong.error.as_deref(), Some("wrong"));
        assert_eq!(r.ratio(t, CandidateKind::WrongOutput(pcg_core::Corruption::PerturbElement), 4), 0.0);
    }

    #[test]
    fn sequential_fallback_flagged_only_for_parallel_tasks() {
        let mut r = runner();
        let par = r.outcome(mk_task(ExecutionModel::Kokkos), CandidateKind::SequentialFallback, 4);
        assert!(!par.correct);
        assert_eq!(par.error.as_deref(), Some("sequential"));

        let ser = r.outcome(mk_task(ExecutionModel::Serial), CandidateKind::SequentialFallback, 1);
        assert!(ser.correct, "serial prompts cannot fail the usage check");
    }

    #[test]
    fn outcomes_are_cached() {
        let mut r = runner();
        let t = mk_task(ExecutionModel::Cuda);
        let a = r.outcome(t, CandidateKind::Correct(Quality::Efficient), 0);
        let hits_before = r.shared().cache_hits();
        let b = r.outcome(t, CandidateKind::Correct(Quality::Efficient), 0);
        assert_eq!(a.seconds, b.seconds, "second call must be the cached run");
        assert_eq!(r.shared().cache_hits(), hits_before + 1);
    }

    #[test]
    fn inefficient_candidate_is_slower() {
        let mut r = runner();
        let t = mk_task(ExecutionModel::OpenMp);
        let eff = r.ratio(t, CandidateKind::Correct(Quality::Efficient), 8);
        let ineff = r.ratio(t, CandidateKind::Correct(Quality::Inefficient), 8);
        assert!(eff > 0.0 && ineff > 0.0);
        // The lopsided candidate cannot beat the balanced one by much;
        // allow noise but expect a clear ordering at 8 threads.
        assert!(ineff < eff * 1.5, "eff={eff} ineff={ineff}");
    }

    #[test]
    fn isolated_panic_is_captured_not_propagated() {
        let r = SharedRunner::new(EvalConfig::smoke());
        let out = r.run_isolated::<(), _>(|| panic!("candidate exploded"));
        assert!(!out.correct);
        assert_eq!(out.error.as_deref(), Some("panic"));
        assert_eq!(r.panics(), 1);
        // The runner is still serviceable after a panic.
        let ok = r.run_isolated(|| Ok::<_, PcgError>(42));
        assert!(ok.correct, "{ok:?}");
    }

    #[test]
    fn isolated_hang_is_abandoned_at_the_limit() {
        let mut cfg = EvalConfig::smoke();
        cfg.timeout = Duration::from_millis(50);
        let r = SharedRunner::new(cfg);
        let out = r.run_isolated(|| {
            std::thread::sleep(Duration::from_secs(30));
            Ok::<_, PcgError>(())
        });
        assert!(!out.correct);
        assert_eq!(out.error.as_deref(), Some("timeout"));
        assert_eq!(r.timeouts(), 1);
    }

    #[test]
    fn shared_runner_is_deterministic_across_worker_counts() {
        // Same key from many threads: exactly one execution, same value.
        let r = SharedRunner::new(EvalConfig::smoke());
        let t = mk_task(ExecutionModel::OpenMp);
        let kind = CandidateKind::Correct(Quality::Efficient);
        let outs: Vec<Outcome> = std::thread::scope(|s| {
            let handles: Vec<_> =
                (0..8).map(|_| s.spawn(|| r.outcome(t, kind, 4))).collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(r.executions(), 1, "one execution, {} cache hits", r.cache_hits());
        for o in &outs {
            assert!(o.correct);
            assert_eq!(o.seconds, outs[0].seconds);
        }
        assert!(r.stage_seconds(Stage::Run) > 0.0);
        assert_eq!(r.stage_seconds(Stage::Queue), 0.0);
    }
}
