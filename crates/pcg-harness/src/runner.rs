//! Candidate execution: build, run (with a time limit), validate
//! against the baseline, check parallel-API usage, and time.
//!
//! Outcomes are cached by `(task, kind, n)`: a synthetic model's
//! candidate artifact is fully determined by its kind, so distinct
//! samples (and distinct models) sharing a kind share one execution —
//! the analog of the paper's per-sample compile-and-run, minus redundant
//! recompilation of byte-identical generations.

use crate::config::EvalConfig;
use pcg_core::usage::UsageScope;
use pcg_core::{CandidateKind, Output, PcgError, ProblemId, TaskId};
use pcg_problems::registry;
use std::collections::HashMap;
use std::sync::mpsc;
use std::time::Instant;

/// A measured, validated candidate execution.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// Whether the candidate built.
    pub built: bool,
    /// Fully correct: built, ran in time, validated, used its API.
    pub correct: bool,
    /// Candidate runtime in seconds (virtual or measured; meaningful
    /// only when correct).
    pub seconds: f64,
    /// Failure code (`PcgError::code`-style) when not correct.
    pub error: Option<String>,
}

/// The sequential baseline for a problem at the configured size.
#[derive(Debug, Clone)]
pub struct Baseline {
    /// Oracle output.
    pub output: Output,
    /// Best-of-reps baseline runtime in seconds.
    pub seconds: f64,
}

/// Caching candidate runner.
pub struct Runner {
    cfg: EvalConfig,
    baselines: HashMap<ProblemId, Baseline>,
    outcomes: HashMap<(TaskId, CandidateKind, u32), Outcome>,
}

impl Runner {
    /// A fresh runner for one evaluation.
    pub fn new(cfg: EvalConfig) -> Runner {
        Runner { cfg, baselines: HashMap::new(), outcomes: HashMap::new() }
    }

    /// The evaluation configuration.
    pub fn config(&self) -> &EvalConfig {
        &self.cfg
    }

    /// The baseline for `problem`, measured on first use.
    pub fn baseline(&mut self, problem: ProblemId) -> &Baseline {
        let cfg = &self.cfg;
        self.baselines.entry(problem).or_insert_with(|| {
            let p = registry::problem(problem);
            let size = cfg.size_for(p.default_size());
            let mut best = f64::INFINITY;
            let mut output = None;
            for _ in 0..cfg.reps.max(1) {
                let run = p.run_baseline(cfg.seed, size);
                best = best.min(run.seconds);
                output = Some(run.output);
            }
            Baseline { output: output.expect("at least one rep"), seconds: best }
        })
    }

    /// Execute (or fetch the cached execution of) one candidate.
    pub fn outcome(&mut self, task: TaskId, kind: CandidateKind, n: u32) -> Outcome {
        if let Some(hit) = self.outcomes.get(&(task, kind, n)) {
            return hit.clone();
        }
        let baseline_output = self.baseline(task.problem).output.clone();
        let out = self.execute(task, kind, n, &baseline_output);
        self.outcomes.insert((task, kind, n), out.clone());
        out
    }

    /// The `T*/T` performance ratio of one candidate (0 when incorrect).
    pub fn ratio(&mut self, task: TaskId, kind: CandidateKind, n: u32) -> f64 {
        let base = self.baseline(task.problem).seconds;
        let out = self.outcome(task, kind, n);
        if out.correct && out.seconds > 0.0 {
            base / out.seconds
        } else {
            0.0
        }
    }

    fn execute(
        &self,
        task: TaskId,
        kind: CandidateKind,
        n: u32,
        baseline_output: &Output,
    ) -> Outcome {
        let problem = registry::problem(task.problem);
        let size = self.cfg.size_for(problem.default_size());
        let seed = self.cfg.seed;
        let reps = if matches!(kind, CandidateKind::Correct(_)) { self.cfg.reps.max(1) } else { 1 };

        // Run on a worker thread so a runaway candidate can be abandoned
        // at the time limit (the paper's 3-minute kill).
        let (tx, rx) = mpsc::channel();
        std::thread::spawn(move || {
            let scope = UsageScope::begin();
            let t0 = Instant::now();
            let mut best = f64::INFINITY;
            let mut last = None;
            for _ in 0..reps {
                let run = problem.run_candidate(task.model, kind, n, seed, size);
                match &run {
                    Ok(r) => best = best.min(r.seconds),
                    Err(_) => {
                        last = Some(run);
                        break;
                    }
                }
                last = Some(run);
            }
            let usage = scope.finish();
            let _wall = t0.elapsed();
            let _ = tx.send((last.expect("at least one rep ran"), best, usage));
        });

        let (result, best, usage) = match rx.recv_timeout(self.cfg.timeout) {
            Ok(v) => v,
            Err(_) => {
                // Either the candidate hung past the limit or the worker
                // died; both count as a failed run.
                return Outcome {
                    built: true,
                    correct: false,
                    seconds: f64::INFINITY,
                    error: Some("timeout".into()),
                };
            }
        };

        match result {
            Err(PcgError::BuildFailure(_)) => Outcome {
                built: false,
                correct: false,
                seconds: f64::INFINITY,
                error: Some("build".into()),
            },
            Err(e) => Outcome {
                built: true,
                correct: false,
                seconds: f64::INFINITY,
                error: Some(e.code().to_string()),
            },
            Ok(run) => {
                if !run.output.approx_eq(baseline_output) {
                    return Outcome {
                        built: true,
                        correct: false,
                        seconds: best,
                        error: Some("wrong".into()),
                    };
                }
                if !usage.used_required_api(task.model) {
                    return Outcome {
                        built: true,
                        correct: false,
                        seconds: best,
                        error: Some("sequential".into()),
                    };
                }
                Outcome { built: true, correct: true, seconds: best, error: None }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcg_core::{ExecutionModel, ProblemType, Quality};

    fn mk_task(model: ExecutionModel) -> TaskId {
        pcg_core::ProblemId::new(ProblemType::Transform, 0).task(model)
    }

    fn runner() -> Runner {
        Runner::new(EvalConfig::smoke())
    }

    #[test]
    fn correct_candidate_validates() {
        let mut r = runner();
        let out = r.outcome(
            mk_task(ExecutionModel::OpenMp),
            CandidateKind::Correct(Quality::Efficient),
            4,
        );
        assert!(out.built && out.correct, "{out:?}");
        assert!(r.ratio(mk_task(ExecutionModel::OpenMp), CandidateKind::Correct(Quality::Efficient), 4) > 0.0);
    }

    #[test]
    fn failure_kinds_map_to_codes() {
        let mut r = runner();
        let t = mk_task(ExecutionModel::OpenMp);
        let build = r.outcome(t, CandidateKind::BuildFailure, 4);
        assert!(!build.built && !build.correct);
        assert_eq!(build.error.as_deref(), Some("build"));

        let crash = r.outcome(t, CandidateKind::RuntimeCrash, 4);
        assert!(crash.built && !crash.correct);
        assert_eq!(crash.error.as_deref(), Some("runtime"));

        let timeout = r.outcome(t, CandidateKind::Timeout, 4);
        assert!(!timeout.correct);
        assert_eq!(timeout.error.as_deref(), Some("timeout"));

        let wrong = r.outcome(
            t,
            CandidateKind::WrongOutput(pcg_core::Corruption::PerturbElement),
            4,
        );
        assert!(wrong.built && !wrong.correct);
        assert_eq!(wrong.error.as_deref(), Some("wrong"));
        assert_eq!(r.ratio(t, CandidateKind::WrongOutput(pcg_core::Corruption::PerturbElement), 4), 0.0);
    }

    #[test]
    fn sequential_fallback_flagged_only_for_parallel_tasks() {
        let mut r = runner();
        let par = r.outcome(mk_task(ExecutionModel::Kokkos), CandidateKind::SequentialFallback, 4);
        assert!(!par.correct);
        assert_eq!(par.error.as_deref(), Some("sequential"));

        let ser = r.outcome(mk_task(ExecutionModel::Serial), CandidateKind::SequentialFallback, 1);
        assert!(ser.correct, "serial prompts cannot fail the usage check");
    }

    #[test]
    fn outcomes_are_cached() {
        let mut r = runner();
        let t = mk_task(ExecutionModel::Cuda);
        let a = r.outcome(t, CandidateKind::Correct(Quality::Efficient), 0);
        let b = r.outcome(t, CandidateKind::Correct(Quality::Efficient), 0);
        assert_eq!(a.seconds, b.seconds, "second call must be the cached run");
    }

    #[test]
    fn inefficient_candidate_is_slower() {
        let mut r = runner();
        let t = mk_task(ExecutionModel::OpenMp);
        let eff = r.ratio(t, CandidateKind::Correct(Quality::Efficient), 8);
        let ineff = r.ratio(t, CandidateKind::Correct(Quality::Inefficient), 8);
        assert!(eff > 0.0 && ineff > 0.0);
        // The lopsided candidate cannot beat the balanced one by much;
        // allow noise but expect a clear ordering at 8 threads.
        assert!(ineff < eff * 1.5, "eff={eff} ineff={ineff}");
    }
}
