//! Paper-reported reference values (for EXPERIMENTS.md comparisons).
//!
//! These numbers are transcribed from the paper's text; figure-only
//! values are approximate read-offs and marked as such. They are used
//! to check that the reproduction lands in the right regime, not to
//! assert exact equality (our substrate is a simulator, not the
//! authors' testbed).
//!
//! Claims name models, not sources: [`claims_for`] projects the claim
//! set onto whatever [`pcg_models::CandidateSource`] a run actually
//! evaluated, so a replay pool or custom source that carries only a
//! subset of the paper's models is compared against that subset only.

use pcg_core::prompt::split_label;
use pcg_models::CandidateSource;

/// One quantitative claim from the paper.
#[derive(Debug, Clone)]
pub struct PaperClaim {
    /// Which figure/table the value comes from.
    pub artifact: &'static str,
    /// Human-readable description.
    pub claim: &'static str,
    /// Model the claim concerns.
    pub model: &'static str,
    /// The reported value.
    pub value: f64,
    /// Whether the value is stated in the text (vs. read off a figure).
    pub stated_in_text: bool,
}

/// All encoded claims.
pub fn claims() -> Vec<PaperClaim> {
    vec![
        PaperClaim {
            artifact: "Figure 2",
            claim: "serial pass@1",
            model: "GPT-3.5",
            value: 0.76,
            stated_in_text: true,
        },
        PaperClaim {
            artifact: "Figure 2",
            claim: "parallel pass@1",
            model: "GPT-3.5",
            value: 0.40,
            stated_in_text: true,
        },
        PaperClaim {
            artifact: "Figure 2",
            claim: "serial pass@1",
            model: "GPT-4",
            value: 0.76,
            stated_in_text: true,
        },
        PaperClaim {
            artifact: "Figure 2",
            claim: "parallel pass@1",
            model: "GPT-4",
            value: 0.38,
            stated_in_text: true,
        },
        PaperClaim {
            artifact: "Figure 2",
            claim: "parallel pass@1",
            model: "Phind-CodeLlama-V2",
            value: 0.32,
            stated_in_text: true,
        },
        PaperClaim {
            artifact: "Figure 1",
            claim: "OpenMP pass@1",
            model: "GPT-4",
            value: 0.60,
            stated_in_text: true,
        },
        PaperClaim {
            artifact: "Figure 4",
            claim: "parallel pass@20",
            model: "Phind-CodeLlama-V2",
            value: 0.46,
            stated_in_text: true,
        },
        PaperClaim {
            artifact: "Figure 6",
            claim: "parallel speedup_n@1",
            model: "GPT-4",
            value: 20.28,
            stated_in_text: true,
        },
        PaperClaim {
            artifact: "Figure 7",
            claim: "parallel efficiency_n@1",
            model: "GPT-4",
            value: 0.13,
            stated_in_text: true,
        },
        PaperClaim {
            artifact: "Figure 7",
            claim: "parallel efficiency_n@1",
            model: "CodeLlama-34B",
            value: 0.06,
            stated_in_text: true,
        },
    ]
}

/// The claims scoreable against `source`: those naming a model the
/// source provides. Row labels are matched on the bare card name, so a
/// variant grid (`GPT-4@naive`, `GPT-4@rag`, …) still anchors every
/// `GPT-4` claim.
pub fn claims_for(source: &(impl CandidateSource + ?Sized)) -> Vec<PaperClaim> {
    let names = source.model_names();
    claims()
        .into_iter()
        .filter(|c| names.iter().any(|n| split_label(n).0 == c.model))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcg_core::PromptVariant;
    use pcg_models::SyntheticSource;

    #[test]
    fn claims_reference_source_models() {
        // Every claim must resolve against the default source — the
        // claim set and the zoo may only drift together.
        let zoo = pcg_models::zoo();
        let scoreable = claims_for(zoo.as_slice());
        assert_eq!(scoreable.len(), claims().len(), "claim names a model no source provides");
        for c in claims() {
            assert!(c.value > 0.0);
        }
    }

    #[test]
    fn claims_survive_variant_grids_and_shrink_with_the_source() {
        let grid = SyntheticSource::zoo(&[PromptVariant::Naive, PromptVariant::RagAugmented]);
        assert_eq!(
            claims_for(&grid).len(),
            claims().len(),
            "variant-suffixed rows must still anchor their model's claims"
        );
        let one = SyntheticSource::new(
            pcg_models::zoo()
                .into_iter()
                .filter(|m| m.card().name == "GPT-4")
                .collect(),
            &[PromptVariant::DEFAULT],
        );
        let subset = claims_for(&one);
        assert!(!subset.is_empty() && subset.len() < claims().len());
        assert!(subset.iter().all(|c| c.model == "GPT-4"));
    }
}
