//! Paper-reported reference values (for EXPERIMENTS.md comparisons).
//!
//! These numbers are transcribed from the paper's text; figure-only
//! values are approximate read-offs and marked as such. They are used
//! to check that the reproduction lands in the right regime, not to
//! assert exact equality (our substrate is a simulator, not the
//! authors' testbed).

/// One quantitative claim from the paper.
#[derive(Debug, Clone)]
pub struct PaperClaim {
    /// Which figure/table the value comes from.
    pub artifact: &'static str,
    /// Human-readable description.
    pub claim: &'static str,
    /// Model the claim concerns.
    pub model: &'static str,
    /// The reported value.
    pub value: f64,
    /// Whether the value is stated in the text (vs. read off a figure).
    pub stated_in_text: bool,
}

/// All encoded claims.
pub fn claims() -> Vec<PaperClaim> {
    vec![
        PaperClaim {
            artifact: "Figure 2",
            claim: "serial pass@1",
            model: "GPT-3.5",
            value: 0.76,
            stated_in_text: true,
        },
        PaperClaim {
            artifact: "Figure 2",
            claim: "parallel pass@1",
            model: "GPT-3.5",
            value: 0.40,
            stated_in_text: true,
        },
        PaperClaim {
            artifact: "Figure 2",
            claim: "serial pass@1",
            model: "GPT-4",
            value: 0.76,
            stated_in_text: true,
        },
        PaperClaim {
            artifact: "Figure 2",
            claim: "parallel pass@1",
            model: "GPT-4",
            value: 0.38,
            stated_in_text: true,
        },
        PaperClaim {
            artifact: "Figure 2",
            claim: "parallel pass@1",
            model: "Phind-CodeLlama-V2",
            value: 0.32,
            stated_in_text: true,
        },
        PaperClaim {
            artifact: "Figure 1",
            claim: "OpenMP pass@1",
            model: "GPT-4",
            value: 0.60,
            stated_in_text: true,
        },
        PaperClaim {
            artifact: "Figure 4",
            claim: "parallel pass@20",
            model: "Phind-CodeLlama-V2",
            value: 0.46,
            stated_in_text: true,
        },
        PaperClaim {
            artifact: "Figure 6",
            claim: "parallel speedup_n@1",
            model: "GPT-4",
            value: 20.28,
            stated_in_text: true,
        },
        PaperClaim {
            artifact: "Figure 7",
            claim: "parallel efficiency_n@1",
            model: "GPT-4",
            value: 0.13,
            stated_in_text: true,
        },
        PaperClaim {
            artifact: "Figure 7",
            claim: "parallel efficiency_n@1",
            model: "CodeLlama-34B",
            value: 0.06,
            stated_in_text: true,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn claims_reference_zoo_models() {
        let zoo: Vec<&str> =
            pcg_models::zoo().iter().map(|m| m.card().name).collect();
        for c in claims() {
            assert!(zoo.contains(&c.model), "unknown model {}", c.model);
            assert!(c.value > 0.0);
        }
    }
}
