//! Write-ahead journal for crash-safe (and sharded) evaluation.
//!
//! The pipeline appends one JSONL line per completed grid cell, fsync'd
//! before the scheduler hands out more work from that point, so a
//! killed run loses at most the cells that were in flight. On startup
//! with `--resume`, a journal whose header matches the active config
//! (and shard) is replayed: completed cells are skipped and only the
//! remainder is scheduled.
//!
//! Replay is **cell-addressed**: every entry carries its
//! [`pcg_core::CellId`] — the FNV-1a hash of `(config hash, model,
//! task)` — and the replay map is keyed by that id. The id is
//! recomputed from the entry's own fields on load, so each line is
//! self-checking: a line whose stored id disagrees with its recomputed
//! id is corrupt and truncates the replay there. Because the same ids
//! partition the grid across shards (`id % shard_count`), a shard
//! worker's journal is simply the slice of the global journal it owns,
//! and `merge` can stitch shard journals back into a whole-grid record
//! with no coordination beyond the shared config.
//!
//! Format: line 1 is `{"version":2,"config_hash":<fnv64>,
//! "shard_index":k,"shard_count":n}`; every other line is
//! `{"cell":<fnv64>,"model":"GPT-4","record":{...TaskRecord...}}`.
//! A torn final line (the crash happened mid-append) or any other
//! malformed entry truncates the replay at the first bad line — the
//! cells after it are simply re-evaluated.
//!
//! **Compaction:** a journal that survived one or more crashes can
//! carry stale bytes — the torn line itself, lines shadowed by a
//! re-append after an earlier truncated replay, or a tail beyond the
//! first corruption that can never be trusted again. [`compact`]
//! rewrites the journal atomically (temp file + rename) with exactly
//! the replayable generation folded in, so long grids stop replaying
//! (or even parsing) stale lines on every subsequent resume.
//!
//! Byte-identity contract: replaying a cell reproduces the exact bytes
//! an uninterrupted run would have recorded, because (a) the vendored
//! serde prints `f64`s in shortest-roundtrip form, so a JSON round trip
//! is lossless, and (b) all other record fields are integers, bools,
//! and strings. The cells evaluated *after* resume reuse the same
//! deterministic sample streams (keyed by grid coordinates, never by
//! worker identity or time), extending the jobs-agnostic determinism
//! guarantee across a crash — and, with cell addressing, across
//! process boundaries.

use crate::config::EvalConfig;
use crate::record::TaskRecord;
use parking_lot::Mutex;
use pcg_core::plan::{fnv1a, CellId, ShardSpec};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};

/// Journal format version; bump on any layout change.
/// (v1 keyed entries by `(model, task)` with no cell address; v2 is
/// cell-addressed and shard-aware.)
const VERSION: u32 = 2;

#[derive(Debug, PartialEq, Serialize, Deserialize)]
struct Header {
    version: u32,
    config_hash: u64,
    #[serde(default)]
    shard_index: u32,
    #[serde(default)]
    shard_count: u32,
}

impl Header {
    fn new(cfg: &EvalConfig, shard: ShardSpec) -> Header {
        Header {
            version: VERSION,
            config_hash: config_hash(cfg),
            shard_index: shard.index,
            shard_count: shard.count,
        }
    }
}

#[derive(Serialize, Deserialize)]
struct Entry {
    cell: u64,
    model: String,
    record: TaskRecord,
}

/// FNV-1a over the config's canonical JSON: journals are only replayed
/// into the exact configuration that wrote them, and every
/// [`CellId`] in the run is derived from this hash.
pub fn config_hash(cfg: &EvalConfig) -> u64 {
    fnv1a(&serde_json::to_vec(cfg).unwrap_or_default())
}

/// Journal path for a record cache path (`records-quick.json` →
/// `records-quick.json.journal`).
pub fn journal_path(cache_path: &Path) -> PathBuf {
    let mut os = cache_path.as_os_str().to_os_string();
    os.push(".journal");
    PathBuf::from(os)
}

/// Journal path for one shard of a sharded run
/// (`records-quick.json.journal.shard-0-of-3`). The whole-grid spec
/// maps to the plain [`journal_path`], so single-process runs and
/// `0/1`-sharded runs are the same artifact.
pub fn shard_journal_path(cache_path: &Path, shard: ShardSpec) -> PathBuf {
    if shard.is_whole() {
        return journal_path(cache_path);
    }
    let mut os = cache_path.as_os_str().to_os_string();
    os.push(format!(".journal.shard-{}-of-{}", shard.index, shard.count));
    PathBuf::from(os)
}

/// One replayed cell: the model that owns the record (needed to
/// rewrite the entry on compaction and to label merge output).
#[derive(Debug, Clone)]
pub struct ReplayCell {
    /// Model display name the cell belongs to.
    pub model: String,
    /// The journaled record, byte-identical to a fresh evaluation.
    pub record: TaskRecord,
}

/// Completed cells recovered from a journal, keyed by cell address.
pub type Replay = HashMap<CellId, ReplayCell>;

/// What [`load_counting`] recovered, plus how much of the file it had
/// to discard or fold.
pub struct Loaded {
    /// The replayable cells.
    pub replay: Replay,
    /// Lines that carried no replayable information: torn/corrupt
    /// lines, anything after the first corruption, and duplicate
    /// appends shadowed by a later line. When positive, the journal is
    /// worth compacting.
    pub stale_lines: usize,
}

/// Append handle for one run's journal.
pub struct Journal {
    file: Mutex<File>,
}

impl Journal {
    /// Start a fresh journal for `cfg`'s shard `shard`, truncating any
    /// previous file.
    pub fn create(path: &Path, cfg: &EvalConfig, shard: ShardSpec) -> std::io::Result<Journal> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        let mut file = File::create(path)?;
        let line = serde_json::to_string(&Header::new(cfg, shard)).map_err(std::io::Error::other)?;
        writeln!(file, "{line}")?;
        file.sync_data()?;
        Ok(Journal { file: Mutex::new(file) })
    }

    /// Continue appending to an existing journal (resume). The caller
    /// must have validated the header via [`load`].
    pub fn open_append(path: &Path) -> std::io::Result<Journal> {
        let file = OpenOptions::new().append(true).open(path)?;
        Ok(Journal { file: Mutex::new(file) })
    }

    /// Durably append one completed cell: the line is written, flushed,
    /// and fsync'd before this returns, so a crash at any later point
    /// cannot lose it.
    pub fn append(&self, cell: CellId, model: &str, record: &TaskRecord) -> std::io::Result<()> {
        let entry = Entry { cell: cell.0, model: model.to_string(), record: record.clone() };
        let line = serde_json::to_string(&entry).map_err(std::io::Error::other)?;
        let mut file = self.file.lock();
        writeln!(file, "{line}")?;
        file.flush()?;
        file.sync_data()
    }
}

/// Load the replayable cells of the journal at `path` for `cfg`'s
/// shard `shard`.
///
/// Returns an empty map when the file is missing, unreadable, or
/// carries a header for a different config/version/shard. A malformed
/// or torn line — including a line whose stored cell id disagrees with
/// the id recomputed from its `(model, task)` under `cfg` — truncates
/// the replay there: everything before it is kept, everything after it
/// is discarded (it may describe cells appended after the corruption,
/// but trusting a journal past its first bad byte is how resumed runs
/// diverge — re-evaluating is always safe).
pub fn load(path: &Path, cfg: &EvalConfig, shard: ShardSpec) -> Replay {
    load_counting(path, cfg, shard).replay
}

/// [`load`], additionally reporting how many stale lines the file
/// carries (the compaction trigger).
pub fn load_counting(path: &Path, cfg: &EvalConfig, shard: ShardSpec) -> Loaded {
    let mut loaded = Loaded { replay: Replay::new(), stale_lines: 0 };
    let file = match File::open(path) {
        Ok(f) => f,
        Err(_) => return loaded,
    };
    let chash = config_hash(cfg);
    let mut lines = BufReader::new(file).lines();
    let header: Header = match lines.next() {
        Some(Ok(line)) => match serde_json::from_str(&line) {
            Ok(h) => h,
            Err(_) => return loaded,
        },
        _ => return loaded,
    };
    if header != Header::new(cfg, shard) {
        return loaded;
    }
    while let Some(line) = lines.next() {
        let entry: Entry = match line.as_deref().map(serde_json::from_str) {
            Ok(Ok(e)) => e,
            _ => {
                // Torn or corrupt line: truncate replay here. The bad
                // line and everything after it are stale.
                loaded.stale_lines += 1 + lines.count();
                return loaded;
            }
        };
        let id = CellId::new(chash, &entry.model, entry.record.task);
        if id.0 != entry.cell {
            // Self-check failed: the line decoded as JSON but does not
            // describe the cell it claims to. Same corruption policy.
            loaded.stale_lines += 1 + lines.count();
            return loaded;
        }
        if loaded
            .replay
            .insert(id, ReplayCell { model: entry.model, record: entry.record })
            .is_some()
        {
            // A duplicate append (an earlier resume re-evaluated this
            // cell after a truncated replay). Last write wins; the
            // shadowed line is stale.
            loaded.stale_lines += 1;
        }
    }
    loaded
}

/// Rewrite the journal at `path` atomically with exactly `replay`
/// folded in — one line per completed cell, in deterministic (cell id)
/// order, no torn bytes, no shadowed duplicates. Returns the number of
/// entries written. Readers (and crashes) observe either the old
/// journal or the compacted one, never a hybrid.
pub fn compact(
    path: &Path,
    cfg: &EvalConfig,
    shard: ShardSpec,
    replay: &Replay,
) -> std::io::Result<usize> {
    let mut os = path.as_os_str().to_os_string();
    os.push(format!(".compact.{}", std::process::id()));
    let tmp = PathBuf::from(os);
    let result = (|| {
        let mut file = File::create(&tmp)?;
        let line =
            serde_json::to_string(&Header::new(cfg, shard)).map_err(std::io::Error::other)?;
        writeln!(file, "{line}")?;
        let mut cells: Vec<(&CellId, &ReplayCell)> = replay.iter().collect();
        cells.sort_by_key(|(id, _)| **id);
        for (id, cell) in &cells {
            let entry = Entry {
                cell: id.0,
                model: cell.model.clone(),
                record: cell.record.clone(),
            };
            let line = serde_json::to_string(&entry).map_err(std::io::Error::other)?;
            writeln!(file, "{line}")?;
        }
        file.sync_data()?;
        drop(file);
        std::fs::rename(&tmp, path)?;
        Ok(replay.len())
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

/// Delete a journal (after its run committed the final record).
pub fn remove(path: &Path) {
    let _ = std::fs::remove_file(path);
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcg_core::{ExecutionModel, ProblemId, ProblemType};
    use pcg_metrics::TaskSamples;
    use std::collections::BTreeMap;

    fn rec(variant: usize) -> TaskRecord {
        TaskRecord {
            task: ProblemId::new(ProblemType::Reduce, variant).task(ExecutionModel::OpenMp),
            low: TaskSamples {
                built: vec![true, false],
                correct: vec![true, false],
                ratio: vec![3.5, 0.0],
            },
            high: None,
            sweep: BTreeMap::from([(4u32, vec![2.25, 0.0])]),
        }
    }

    fn cell_of(cfg: &EvalConfig, model: &str, r: &TaskRecord) -> CellId {
        CellId::new(config_hash(cfg), model, r.task)
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("pcgbench-journal-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}.journal", std::process::id()))
    }

    #[test]
    fn roundtrip_and_cell_keyed_replay() {
        let cfg = EvalConfig::smoke();
        let path = tmp("roundtrip");
        let j = Journal::create(&path, &cfg, ShardSpec::WHOLE).unwrap();
        j.append(cell_of(&cfg, "GPT-4", &rec(0)), "GPT-4", &rec(0)).unwrap();
        j.append(cell_of(&cfg, "GPT-4", &rec(1)), "GPT-4", &rec(1)).unwrap();
        j.append(cell_of(&cfg, "CodeLlama-7B", &rec(0)), "CodeLlama-7B", &rec(0)).unwrap();
        drop(j);

        let replay = load(&path, &cfg, ShardSpec::WHOLE);
        assert_eq!(replay.len(), 3);
        let got = &replay[&cell_of(&cfg, "GPT-4", &rec(1))];
        assert_eq!(got.model, "GPT-4");
        assert_eq!(got.record.low.built, vec![true, false]);
        assert_eq!(got.record.low.ratio, vec![3.5, 0.0]);
        remove(&path);
        assert!(load(&path, &cfg, ShardSpec::WHOLE).is_empty());
    }

    #[test]
    fn replayed_record_serializes_byte_identically() {
        let cfg = EvalConfig::smoke();
        let path = tmp("bytes");
        let original = rec(2);
        let j = Journal::create(&path, &cfg, ShardSpec::WHOLE).unwrap();
        j.append(cell_of(&cfg, "GPT-4", &original), "GPT-4", &original).unwrap();
        drop(j);
        let replay = load(&path, &cfg, ShardSpec::WHOLE);
        let back = &replay[&cell_of(&cfg, "GPT-4", &original)];
        assert_eq!(
            serde_json::to_string(&original).unwrap(),
            serde_json::to_string(&back.record).unwrap(),
        );
        remove(&path);
    }

    #[test]
    fn config_or_shard_mismatch_replays_nothing() {
        let cfg = EvalConfig::smoke();
        let path = tmp("mismatch");
        let j = Journal::create(&path, &cfg, ShardSpec::WHOLE).unwrap();
        j.append(cell_of(&cfg, "GPT-4", &rec(0)), "GPT-4", &rec(0)).unwrap();
        drop(j);
        let mut other = EvalConfig::smoke();
        other.seed += 1;
        assert_ne!(config_hash(&cfg), config_hash(&other));
        assert!(load(&path, &other, ShardSpec::WHOLE).is_empty());
        // A whole-grid journal must not replay into a shard worker.
        assert!(load(&path, &cfg, ShardSpec::new(0, 3)).is_empty());
        assert_eq!(load(&path, &cfg, ShardSpec::WHOLE).len(), 1);
        remove(&path);
    }

    #[test]
    fn torn_line_truncates_replay_and_counts_stale() {
        let cfg = EvalConfig::smoke();
        let path = tmp("torn");
        let j = Journal::create(&path, &cfg, ShardSpec::WHOLE).unwrap();
        j.append(cell_of(&cfg, "GPT-4", &rec(0)), "GPT-4", &rec(0)).unwrap();
        j.append(cell_of(&cfg, "GPT-4", &rec(1)), "GPT-4", &rec(1)).unwrap();
        drop(j);
        // Simulate a crash mid-append: a torn third line, then a valid
        // fourth line that must NOT be trusted.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(b"{\"cell\":1,\"model\":\"GPT-4\",\"rec");
        bytes.push(b'\n');
        let whole = serde_json::to_string(&super::Entry {
            cell: cell_of(&cfg, "CodeLlama-7B", &rec(3)).0,
            model: "CodeLlama-7B".into(),
            record: rec(3),
        })
        .unwrap();
        bytes.extend_from_slice(whole.as_bytes());
        bytes.push(b'\n');
        std::fs::write(&path, bytes).unwrap();

        let loaded = load_counting(&path, &cfg, ShardSpec::WHOLE);
        assert_eq!(loaded.replay.len(), 2, "replay stops at the torn line");
        assert!(!loaded.replay.contains_key(&cell_of(&cfg, "CodeLlama-7B", &rec(3))));
        assert_eq!(loaded.stale_lines, 2, "the torn line and the untrusted tail are stale");
        remove(&path);
    }

    #[test]
    fn forged_cell_id_is_treated_as_corruption() {
        let cfg = EvalConfig::smoke();
        let path = tmp("forged");
        let j = Journal::create(&path, &cfg, ShardSpec::WHOLE).unwrap();
        j.append(cell_of(&cfg, "GPT-4", &rec(0)), "GPT-4", &rec(0)).unwrap();
        // An entry whose stored id belongs to a different cell.
        j.append(cell_of(&cfg, "GPT-4", &rec(2)), "GPT-4", &rec(1)).unwrap();
        j.append(cell_of(&cfg, "GPT-4", &rec(3)), "GPT-4", &rec(3)).unwrap();
        drop(j);
        let loaded = load_counting(&path, &cfg, ShardSpec::WHOLE);
        assert_eq!(loaded.replay.len(), 1, "replay truncates at the forged line");
        assert_eq!(loaded.stale_lines, 2);
        remove(&path);
    }

    #[test]
    fn duplicate_appends_fold_to_last_write_and_compact() {
        let cfg = EvalConfig::smoke();
        let path = tmp("dup");
        let j = Journal::create(&path, &cfg, ShardSpec::WHOLE).unwrap();
        let mut first = rec(0);
        first.low.ratio = vec![1.0, 0.0];
        j.append(cell_of(&cfg, "GPT-4", &first), "GPT-4", &first).unwrap();
        j.append(cell_of(&cfg, "GPT-4", &rec(1)), "GPT-4", &rec(1)).unwrap();
        // The same cell re-appended (post-truncation re-evaluation).
        j.append(cell_of(&cfg, "GPT-4", &rec(0)), "GPT-4", &rec(0)).unwrap();
        drop(j);

        let loaded = load_counting(&path, &cfg, ShardSpec::WHOLE);
        assert_eq!(loaded.replay.len(), 2);
        assert_eq!(loaded.stale_lines, 1, "the shadowed first append is stale");
        assert_eq!(
            loaded.replay[&cell_of(&cfg, "GPT-4", &rec(0))].record.low.ratio,
            rec(0).low.ratio,
            "last write wins"
        );

        // Compaction rewrites to exactly the replayable generation...
        compact(&path, &cfg, ShardSpec::WHOLE, &loaded.replay).unwrap();
        let again = load_counting(&path, &cfg, ShardSpec::WHOLE);
        assert_eq!(again.stale_lines, 0, "a compacted journal has no stale lines");
        assert_eq!(again.replay.len(), 2);
        // ...and the compacted journal still replays byte-identically.
        assert_eq!(
            serde_json::to_string(&again.replay[&cell_of(&cfg, "GPT-4", &rec(1))].record).unwrap(),
            serde_json::to_string(&rec(1)).unwrap(),
        );
        // Appending after compaction still works (resume continues).
        let j = Journal::open_append(&path).unwrap();
        j.append(cell_of(&cfg, "GPT-4", &rec(4)), "GPT-4", &rec(4)).unwrap();
        drop(j);
        assert_eq!(load(&path, &cfg, ShardSpec::WHOLE).len(), 3);
        remove(&path);
    }

    #[test]
    fn append_after_resume_extends_the_same_journal() {
        let cfg = EvalConfig::smoke();
        let path = tmp("extend");
        let j = Journal::create(&path, &cfg, ShardSpec::WHOLE).unwrap();
        j.append(cell_of(&cfg, "GPT-4", &rec(0)), "GPT-4", &rec(0)).unwrap();
        drop(j);
        let j = Journal::open_append(&path).unwrap();
        j.append(cell_of(&cfg, "GPT-4", &rec(1)), "GPT-4", &rec(1)).unwrap();
        drop(j);
        assert_eq!(load(&path, &cfg, ShardSpec::WHOLE).len(), 2);
        remove(&path);
    }

    #[test]
    fn journal_paths_derive_from_cache_path() {
        let p = journal_path(Path::new("target/pcgbench/records-quick.json"));
        assert_eq!(p, Path::new("target/pcgbench/records-quick.json.journal"));
        let s = shard_journal_path(
            Path::new("target/pcgbench/records-quick.json"),
            ShardSpec::new(1, 3),
        );
        assert_eq!(
            s,
            Path::new("target/pcgbench/records-quick.json.journal.shard-1-of-3")
        );
        assert_eq!(
            shard_journal_path(Path::new("x.json"), ShardSpec::WHOLE),
            journal_path(Path::new("x.json")),
        );
    }

    #[test]
    fn shard_journals_replay_into_their_own_spec_only() {
        let cfg = EvalConfig::smoke();
        let path = tmp("shard");
        let spec = ShardSpec::new(1, 3);
        let j = Journal::create(&path, &cfg, spec).unwrap();
        j.append(cell_of(&cfg, "GPT-4", &rec(0)), "GPT-4", &rec(0)).unwrap();
        drop(j);
        assert_eq!(load(&path, &cfg, spec).len(), 1);
        assert!(load(&path, &cfg, ShardSpec::new(0, 3)).is_empty());
        assert!(load(&path, &cfg, ShardSpec::WHOLE).is_empty());
        remove(&path);
    }
}
