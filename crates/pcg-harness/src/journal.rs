//! Write-ahead journal for crash-safe (and sharded) evaluation.
//!
//! The pipeline appends one entry per completed grid cell, fsync'd
//! before the scheduler hands out more work from that point, so a
//! killed run loses at most the cells that were in flight. On startup
//! with `--resume`, a journal whose header matches the active config
//! (and shard) is replayed: completed cells are skipped and only the
//! remainder is scheduled.
//!
//! Replay is **cell-addressed**: every entry carries its
//! [`pcg_core::CellId`] — the FNV-1a hash of `(config hash, model,
//! task)` — and the replay map is keyed by that id. The id is
//! recomputed from the entry's own fields on load, so each entry is
//! self-checking: an entry whose stored id disagrees with its
//! recomputed id is corrupt and truncates the replay there. Because
//! the same ids partition the grid across shards (`id % shard_count`),
//! a shard worker's journal is simply the slice of the global journal
//! it owns, and `merge` can stitch shard journals back into a
//! whole-grid record with no coordination beyond the shared config.
//!
//! ## Format (v3, binary frames)
//!
//! The hot path is binary: the file opens with the 8-byte magic
//! `PCGJRNL3`, then a sequence of CRC-checked frames
//! ([`pcg_core::frame`]: `u32 len | u64 cell | u32 crc | payload`,
//! little-endian, CRC-32 over cell bytes ++ payload). Frame 0 is the
//! header (cell tag 0; payload `u32 version=3 | u64 config_hash |
//! u32 shard_index | u32 shard_count | u64 priors_hash` — the last
//! field is the [`pcg_core::CostPriors`] hash the run scheduled and
//! sharded under, 0 for no priors; headers written before the field
//! existed are read as hash 0); every further frame is one
//! cell, its payload encoded by [`crate::codec`]. Replay reads the
//! whole file in one buffered pass and never touches a JSON parser —
//! JSON remains the *export* format (the records cache,
//! `record::projection`), unchanged to the byte.
//!
//! A torn final frame (the crash happened mid-append), a CRC mismatch,
//! a payload that does not decode, or a failed cell self-check
//! truncates the replay at that frame — the cells after it are simply
//! re-evaluated, and every rejection is reported with its byte offset,
//! frame index, and cell id (see [`Reject`]) and counted into the
//! `journal_frames_rejected` stat.
//!
//! ## Migration from v2 (JSONL)
//!
//! v2 journals — line 1 `{"version":2,"config_hash":...,"shard_index":
//! k,"shard_count":n}`, then one `{"cell":...,"model":...,
//! "record":{...}}` line per cell — remain fully readable: a file
//! without the v3 magic falls back to the line-oriented loader with
//! the same truncate-at-first-corruption policy. Resume *always*
//! compacts a v2 journal (replay v2 → commit v3), so one resume
//! migrates the artifact and every subsequent load takes the binary
//! path. [`compact`] only ever writes v3.
//!
//! **Compaction:** a journal that survived one or more crashes can
//! carry stale bytes — the torn frame itself, frames shadowed by a
//! re-append after an earlier truncated replay, or a tail beyond the
//! first corruption that can never be trusted again. [`compact`]
//! rewrites the journal atomically (temp file + rename) with exactly
//! the replayable generation folded in, so long grids stop replaying
//! stale frames on every subsequent resume.
//!
//! Byte-identity contract: replaying a cell reproduces the exact bytes
//! an uninterrupted run would have recorded. In v3 that is immediate —
//! floats travel as raw IEEE-754 bits — and in the v2 fallback it
//! holds because the vendored serde prints `f64`s in
//! shortest-roundtrip form. The cells evaluated *after* resume reuse
//! the same deterministic sample streams (keyed by grid coordinates,
//! never by worker identity or time), extending the jobs-agnostic
//! determinism guarantee across a crash — and, with cell addressing,
//! across process boundaries.

use crate::codec;
use crate::config::EvalConfig;
use crate::record::TaskRecord;
use parking_lot::Mutex;
use pcg_core::frame::{self, FrameError, ByteReader, ByteWriter, FRAME_OVERHEAD, JOURNAL_MAGIC};
use pcg_core::plan::{fnv1a, CellId, ShardSpec};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

/// Journal format version; bump on any layout change.
/// (v1 keyed entries by `(model, task)` with no cell address; v2 was
/// cell-addressed, shard-aware JSONL; v3 is binary frames.)
const VERSION: u32 = 3;

/// The header frame's cell tag. Real cell ids are FNV-1a hashes of
/// non-empty input; the header is additionally pinned to frame 0, so
/// the tag is a label, not a collision risk.
const HEADER_CELL: u64 = 0;

/// The v2 JSONL header line, kept for migration reads (and for writing
/// v2 fixtures in tests and benches).
#[derive(Debug, PartialEq, Serialize, Deserialize)]
struct HeaderV2 {
    version: u32,
    config_hash: u64,
    #[serde(default)]
    shard_index: u32,
    #[serde(default)]
    shard_count: u32,
}

/// The v2 JSONL entry line, kept for migration reads.
#[derive(Serialize, Deserialize)]
struct EntryV2 {
    cell: u64,
    model: String,
    record: TaskRecord,
}

/// FNV-1a over the config's canonical JSON: journals are only replayed
/// into the exact configuration that wrote them, and every
/// [`CellId`] in the run is derived from this hash.
pub fn config_hash(cfg: &EvalConfig) -> u64 {
    fnv1a(&serde_json::to_vec(cfg).unwrap_or_default())
}

/// [`config_hash`] with a candidate-source salt folded in
/// (`pcg_models::CandidateSource::config_salt`). The empty salt — the
/// default synthetic path — returns exactly [`config_hash`], so every
/// pre-source artifact keeps its identity; a non-empty salt (e.g. a
/// replay pool's content hash) re-keys every cell id and journal
/// header, which is precisely what stops resume and merge from
/// splicing cells produced from different candidate pools.
pub fn config_hash_with(cfg: &EvalConfig, salt: &[u8]) -> u64 {
    let base = config_hash(cfg);
    if salt.is_empty() {
        return base;
    }
    let mut bytes = base.to_le_bytes().to_vec();
    bytes.extend_from_slice(salt);
    fnv1a(&bytes)
}

fn header_payload(chash: u64, shard: ShardSpec, priors_hash: u64) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u32(VERSION);
    w.put_u64(chash);
    w.put_u32(shard.index);
    w.put_u32(shard.count);
    w.put_u64(priors_hash);
    w.into_bytes()
}

/// Whether a v3 header payload matches `(config hash, shard geometry,
/// priors hash)` exactly. Pre-priors headers (written before the hash
/// field existed) carry an implicit hash 0. Shared by full replay and
/// the work-stealing progress peek so the two can never drift apart on
/// gating policy.
fn header_matches(payload: &[u8], chash: u64, shard: ShardSpec, priors_hash: u64) -> bool {
    let mut r = ByteReader::new(payload);
    let ok = r.u32().is_ok_and(|v| v == VERSION)
        && r.u64().is_ok_and(|h| h == chash)
        && r.u32().is_ok_and(|i| i == shard.index)
        && r.u32().is_ok_and(|c| c == shard.count);
    if !ok {
        return false;
    }
    let stored =
        if r.is_exhausted() { Some(0) } else { r.u64().ok().filter(|_| r.is_exhausted()) };
    stored == Some(priors_hash)
}

/// Journal path for a record cache path (`records-quick.json` →
/// `records-quick.json.journal`).
pub fn journal_path(cache_path: &Path) -> PathBuf {
    let mut os = cache_path.as_os_str().to_os_string();
    os.push(".journal");
    PathBuf::from(os)
}

/// Journal path for one shard of a sharded run
/// (`records-quick.json.journal.shard-0-of-3`). The whole-grid spec
/// maps to the plain [`journal_path`], so single-process runs and
/// `0/1`-sharded runs are the same artifact.
pub fn shard_journal_path(cache_path: &Path, shard: ShardSpec) -> PathBuf {
    if shard.is_whole() {
        return journal_path(cache_path);
    }
    let mut os = cache_path.as_os_str().to_os_string();
    os.push(format!(".journal.shard-{}-of-{}", shard.index, shard.count));
    PathBuf::from(os)
}

/// One replayed cell: the model that owns the record (needed to
/// rewrite the entry on compaction and to label merge output).
#[derive(Debug, Clone)]
pub struct ReplayCell {
    /// Model display name the cell belongs to.
    pub model: String,
    /// The journaled record, byte-identical to a fresh evaluation.
    pub record: TaskRecord,
}

/// Completed cells recovered from a journal, keyed by cell address.
pub type Replay = HashMap<CellId, ReplayCell>;

/// Which on-disk layout a journal load found.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JournalFormat {
    /// Binary frames behind the `PCGJRNL3` magic — the hot path.
    V3,
    /// Legacy JSONL, readable for migration; resume compacts it to v3.
    V2Jsonl,
}

/// One rejected journal frame (or, in the v2 fallback, line): where it
/// sits in the file and why replay refused it. Everything from the
/// rejected frame to the end of the file is untrusted.
#[derive(Debug, Clone)]
pub struct Reject {
    /// Byte offset of the rejected frame's first byte.
    pub offset: u64,
    /// Frame index within the file (the header is frame 0; in the v2
    /// fallback, the 0-based line index with the header as line 0).
    pub frame: usize,
    /// The cell tag as stored in the rejected frame, when its fixed
    /// header was still readable. Untrusted — it may be the corrupted
    /// field.
    pub cell: Option<u64>,
    /// What failed: torn tail, CRC mismatch, undecodable payload, or a
    /// failed cell self-check.
    pub reason: String,
}

impl std::fmt::Display for Reject {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "frame {} at byte offset {}", self.frame, self.offset)?;
        if let Some(cell) = self.cell {
            write!(f, " (cell {cell:016x})")?;
        }
        write!(f, ": {}", self.reason)
    }
}

/// What [`load_counting`] recovered, plus how much of the file it had
/// to discard or fold and in which format it found the file.
pub struct Loaded {
    /// The replayable cells.
    pub replay: Replay,
    /// Frames that carried no replayable information: the rejected
    /// frame, the untrusted frames structurally visible after it, and
    /// duplicate appends shadowed by a later frame. When positive, the
    /// journal is worth compacting. (Known as stale *lines* in v2.)
    pub stale_frames: usize,
    /// Frames replay refused, with byte offset / frame index / cell id
    /// diagnostics. At most one per load under the
    /// truncate-at-first-corruption policy; its length feeds the
    /// `journal_frames_rejected` stat.
    pub rejects: Vec<Reject>,
    /// The layout the file was found in, or `None` when the file was
    /// missing, unreadable, or carried a header for a different
    /// config/version/shard. `Some(V2Jsonl)` obliges resume to compact
    /// (migrate) even with zero stale frames.
    pub format: Option<JournalFormat>,
}

impl Loaded {
    fn empty() -> Loaded {
        Loaded { replay: Replay::new(), stale_frames: 0, rejects: Vec::new(), format: None }
    }

    /// Whether resume should rewrite this journal before appending:
    /// stale bytes to fold away, or a legacy format to migrate. A v3
    /// journal with replayable frames *must not* be truncated, and a
    /// v2 journal *must not* be appended to in place.
    pub fn needs_compaction(&self) -> bool {
        self.stale_frames > 0 || self.format == Some(JournalFormat::V2Jsonl)
    }
}

/// Append handle for one run's journal.
pub struct Journal {
    file: Mutex<File>,
}

impl Journal {
    /// Start a fresh v3 journal for `cfg`'s shard `shard`, truncating
    /// any previous file. Stamps priors hash 0 ("no cost priors") —
    /// runs scheduling from a priors table use [`Journal::create_with_priors`].
    pub fn create(path: &Path, cfg: &EvalConfig, shard: ShardSpec) -> std::io::Result<Journal> {
        Journal::create_with_priors(path, cfg, shard, 0)
    }

    /// [`Journal::create`] with the run's [`pcg_core::CostPriors`] hash
    /// stamped into the header. Sharded runs must agree on the priors
    /// (they determine which cells each shard owns), so the hash is
    /// part of the journal's identity: replay and merge reject a
    /// journal whose stamp disagrees with the active priors.
    pub fn create_with_priors(
        path: &Path,
        cfg: &EvalConfig,
        shard: ShardSpec,
        priors_hash: u64,
    ) -> std::io::Result<Journal> {
        Journal::create_sourced(path, cfg, &[], shard, priors_hash)
    }

    /// [`Journal::create_with_priors`] with a candidate-source salt:
    /// the header's config hash becomes [`config_hash_with`], so a
    /// journal written against one candidate pool can never replay
    /// into a run scoring a different one. The empty salt is the
    /// synthetic default and writes byte-identical headers.
    pub fn create_sourced(
        path: &Path,
        cfg: &EvalConfig,
        salt: &[u8],
        shard: ShardSpec,
        priors_hash: u64,
    ) -> std::io::Result<Journal> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        let mut file = File::create(path)?;
        let mut bytes = JOURNAL_MAGIC.to_vec();
        frame::encode_frame_into(
            &mut bytes,
            HEADER_CELL,
            &header_payload(config_hash_with(cfg, salt), shard, priors_hash),
        );
        file.write_all(&bytes)?;
        file.sync_data()?;
        Ok(Journal { file: Mutex::new(file) })
    }

    /// Continue appending to an existing v3 journal (resume). The
    /// caller must have validated the header via [`load_counting`] and
    /// compacted first if the file [`Loaded::needs_compaction`] —
    /// appending binary frames to a v2 JSONL file would corrupt it.
    pub fn open_append(path: &Path) -> std::io::Result<Journal> {
        let file = OpenOptions::new().append(true).open(path)?;
        Ok(Journal { file: Mutex::new(file) })
    }

    /// Durably append one completed cell: the frame is written,
    /// flushed, and fsync'd before this returns, so a crash at any
    /// later point cannot lose it.
    pub fn append(&self, cell: CellId, model: &str, record: &TaskRecord) -> std::io::Result<()> {
        let bytes = frame::encode_frame(cell.0, &codec::encode_entry(model, record));
        let mut file = self.file.lock();
        file.write_all(&bytes)?;
        file.flush()?;
        file.sync_data()
    }

    /// Durably append one work-stealing claim frame per cell, batched
    /// into a single write + fsync. A thief MUST call this and see it
    /// return `Ok` **before** evaluating the stolen cells
    /// (claim-before-evaluate): once the claims are on disk, siblings
    /// stop racing for these cells, and if the thief then crashes the
    /// claims are compacted away on its next resume (or ignored by
    /// merge), so the cells fall through to gap-fill — duplicated
    /// effort at worst, never lost work.
    pub fn append_claims(&self, cells: &[CellId], thief_index: u32) -> std::io::Result<()> {
        if cells.is_empty() {
            return Ok(());
        }
        let payload = codec::encode_claim(thief_index);
        let mut bytes = Vec::with_capacity(cells.len() * (FRAME_OVERHEAD + payload.len()));
        for cell in cells {
            frame::encode_frame_into(&mut bytes, cell.0, &payload);
        }
        let mut file = self.file.lock();
        file.write_all(&bytes)?;
        file.flush()?;
        file.sync_data()
    }
}

/// Load the replayable cells of the journal at `path` for `cfg`'s
/// shard `shard`.
///
/// Returns an empty map when the file is missing, unreadable, or
/// carries a header for a different config/version/shard. A torn or
/// corrupt frame — including a CRC-valid frame whose stored cell id
/// disagrees with the id recomputed from its `(model, task)` under
/// `cfg` — truncates the replay there: everything before it is kept,
/// everything after it is discarded (it may describe cells appended
/// after the corruption, but trusting a journal past its first bad
/// byte is how resumed runs diverge — re-evaluating is always safe).
pub fn load(path: &Path, cfg: &EvalConfig, shard: ShardSpec) -> Replay {
    load_counting(path, cfg, shard).replay
}

/// [`load`], additionally reporting stale-frame counts (the compaction
/// trigger), rejection diagnostics, and the on-disk format found.
/// Expects a journal written without cost priors (hash 0).
pub fn load_counting(path: &Path, cfg: &EvalConfig, shard: ShardSpec) -> Loaded {
    load_counting_with_priors(path, cfg, shard, 0)
}

/// [`load_counting`] for a run scheduling from a priors table: the
/// journal's stamped priors hash must equal `priors_hash`, or nothing
/// is replayed. Priors change which cells a shard owns, so replaying a
/// journal written under different priors would resurrect cells this
/// worker no longer owns (and silently drop cells it now does).
pub fn load_counting_with_priors(
    path: &Path,
    cfg: &EvalConfig,
    shard: ShardSpec,
    priors_hash: u64,
) -> Loaded {
    load_counting_sourced(path, cfg, &[], shard, priors_hash)
}

/// [`load_counting_with_priors`] for a run scoring a salted candidate
/// source: the journal's header must carry [`config_hash_with`] of
/// `(cfg, salt)` or nothing is replayed. The empty salt is the
/// synthetic default and gates identically to the unsalted loaders.
pub fn load_counting_sourced(
    path: &Path,
    cfg: &EvalConfig,
    salt: &[u8],
    shard: ShardSpec,
    priors_hash: u64,
) -> Loaded {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(_) => return Loaded::empty(),
    };
    if bytes.starts_with(&JOURNAL_MAGIC) {
        load_v3(&bytes, config_hash_with(cfg, salt), shard, priors_hash)
    } else {
        // v2 predates priors and candidate sources entirely: only a
        // no-priors, default-source run may replay it.
        if priors_hash != 0 || !salt.is_empty() {
            return Loaded::empty();
        }
        load_v2(&bytes, cfg, shard)
    }
}

/// The priors hash stamped in the journal header at `path`, without
/// validating anything else: `Some(h)` for a readable v3 header,
/// `Some(0)` for a v2 header (which predates priors), `None` when the
/// file is missing or its header is unreadable. `--merge-shards` uses
/// this to reject workers that partitioned the grid under different
/// priors before attempting replay.
pub fn peek_priors_hash(path: &Path) -> Option<u64> {
    let bytes = std::fs::read(path).ok()?;
    if bytes.starts_with(&JOURNAL_MAGIC) {
        let header = match frame::decode_frame(&bytes, JOURNAL_MAGIC.len()) {
            Some(Ok(f)) if f.cell == HEADER_CELL => f,
            _ => return None,
        };
        let mut r = ByteReader::new(header.payload);
        if !r.u32().is_ok_and(|v| v == VERSION) {
            return None;
        }
        let _chash = r.u64().ok()?;
        let _index = r.u32().ok()?;
        let _count = r.u32().ok()?;
        if r.is_exhausted() {
            // Pre-priors v3 header: written before the hash field
            // existed, so by definition no priors were in play.
            return Some(0);
        }
        let hash = r.u64().ok()?;
        r.is_exhausted().then_some(hash)
    } else {
        let text = std::str::from_utf8(&bytes).ok()?;
        let header_line = text.split('\n').next()?;
        let h: HeaderV2 = serde_json::from_str(header_line).ok()?;
        (h.version == 2).then_some(0)
    }
}

/// A sibling journal's structurally visible progress: which cells it
/// has journaled results for and which it has merely claimed. This is
/// what a work-stealing worker reads to find stealable cells.
#[derive(Debug, Default, Clone)]
pub struct Progress {
    /// Cell ids with a result frame on disk. A cell can appear in both
    /// sets (claimed, then completed) — `done` wins for any purpose.
    pub done: std::collections::HashSet<u64>,
    /// Cell ids with a claim frame on disk.
    pub claimed: std::collections::HashSet<u64>,
}

/// Peek one sibling shard journal's progress **without full replay**:
/// the header is gated exactly like [`load_counting_with_priors`]
/// (version, config hash, shard geometry, priors hash), then frames
/// are walked CRC-checked but entry payloads are never decoded — cell
/// ids come from the (CRC-covered) frame tags. The walk stops at the
/// first torn or corrupt frame, trusting only the clean prefix.
///
/// `None` means the journal is missing, not v3, or gated out — the
/// caller should treat the sibling as having made no visible progress
/// (every cell stealable; a stolen result is valid for the thief's own
/// plan regardless of what the victim's file said). The peek is
/// advisory only: a stale read means duplicated work at worst, since
/// results are deterministic per cell and merge folds duplicates.
pub fn peek_progress(
    path: &Path,
    cfg: &EvalConfig,
    shard: ShardSpec,
    priors_hash: u64,
) -> Option<Progress> {
    peek_progress_sourced(path, cfg, &[], shard, priors_hash)
}

/// [`peek_progress`] with a candidate-source salt, gated on
/// [`config_hash_with`] like [`load_counting_sourced`] — a thief must
/// never steal cells journaled against a different candidate pool.
pub fn peek_progress_sourced(
    path: &Path,
    cfg: &EvalConfig,
    salt: &[u8],
    shard: ShardSpec,
    priors_hash: u64,
) -> Option<Progress> {
    let bytes = std::fs::read(path).ok()?;
    if !bytes.starts_with(&JOURNAL_MAGIC) {
        return None;
    }
    let header = match frame::decode_frame(&bytes, JOURNAL_MAGIC.len()) {
        Some(Ok(f)) if f.cell == HEADER_CELL => f,
        _ => return None,
    };
    if !header_matches(header.payload, config_hash_with(cfg, salt), shard, priors_hash) {
        return None;
    }
    let mut progress = Progress::default();
    let mut offset = header.end;
    while let Some(Ok(f)) = frame::decode_frame(&bytes, offset) {
        if codec::decode_claim(f.payload).is_some() {
            progress.claimed.insert(f.cell);
        } else {
            progress.done.insert(f.cell);
        }
        offset = f.end;
    }
    Some(progress)
}

fn load_v3(bytes: &[u8], chash: u64, shard: ShardSpec, priors_hash: u64) -> Loaded {
    let mut loaded = Loaded::empty();

    // Frame 0: the header. Any defect here — torn, bad CRC, wrong
    // version/config/shard — means nothing in the file is replayable.
    let header = match frame::decode_frame(bytes, JOURNAL_MAGIC.len()) {
        Some(Ok(f)) if f.cell == HEADER_CELL => f,
        _ => return loaded,
    };
    if !header_matches(header.payload, chash, shard, priors_hash) {
        return loaded;
    }
    loaded.format = Some(JournalFormat::V3);

    let mut offset = header.end;
    let mut frame_idx = 1usize;
    loop {
        let f = match frame::decode_frame(bytes, offset) {
            None => break,
            Some(Ok(f)) => f,
            Some(Err(e)) => {
                // Torn or corrupt frame: truncate replay here. The bad
                // frame and every (structurally countable) frame after
                // it are stale and untrusted.
                let cell = match e {
                    FrameError::BadCrc { cell, .. } => Some(cell),
                    FrameError::TornTail { .. } => None,
                };
                let after = tail_extent(bytes, offset, &e);
                loaded.stale_frames += 1 + count_tail_frames(bytes, after);
                loaded.rejects.push(Reject {
                    offset: offset as u64,
                    frame: frame_idx,
                    cell,
                    reason: e.to_string(),
                });
                return loaded;
            }
        };
        if codec::decode_claim(f.payload).is_some() {
            // A work-stealing claim: it marks intent, carries no
            // result, and must never replay. It counts as stale so a
            // resume compacts it away — a claim without a matching
            // result frame means the thief died mid-steal, and
            // dropping the claim is exactly what makes the cell
            // stealable (or merge-gap-fillable) again.
            loaded.stale_frames += 1;
            offset = f.end;
            frame_idx += 1;
            continue;
        }
        let reject = |reason: String| Reject {
            offset: offset as u64,
            frame: frame_idx,
            cell: Some(f.cell),
            reason,
        };
        let (model, record) = match codec::decode_entry(f.payload) {
            Ok(e) => e,
            Err(e) => {
                // CRC-valid but undecodable: can only happen across an
                // incompatible codec change. Same corruption policy.
                loaded.stale_frames += 1 + count_tail_frames(bytes, f.end);
                loaded.rejects.push(reject(format!("payload does not decode: {e}")));
                return loaded;
            }
        };
        let id = CellId::new(chash, &model, record.task);
        if id.0 != f.cell {
            // Self-check failed: the frame decoded but does not
            // describe the cell it claims to.
            loaded.stale_frames += 1 + count_tail_frames(bytes, f.end);
            loaded.rejects.push(reject(format!(
                "cell self-check failed: recomputed {:016x} from the entry's own fields",
                id.0
            )));
            return loaded;
        }
        if loaded.replay.insert(id, ReplayCell { model, record }).is_some() {
            // A duplicate append (an earlier resume re-evaluated this
            // cell after a truncated replay). Last write wins; the
            // shadowed frame is stale.
            loaded.stale_frames += 1;
        }
        offset = f.end;
        frame_idx += 1;
    }
    loaded
}

/// Where the untrusted tail begins, one past the rejected frame: a
/// torn frame extends to end-of-file by definition; a CRC-bad frame
/// still has a structurally known extent.
fn tail_extent(bytes: &[u8], offset: usize, e: &FrameError) -> usize {
    match e {
        FrameError::TornTail { .. } => bytes.len(),
        FrameError::BadCrc { .. } => {
            let len = u32::from_le_bytes(bytes[offset..offset + 4].try_into().unwrap()) as usize;
            (offset + FRAME_OVERHEAD).saturating_add(len).min(bytes.len())
        }
    }
}

/// Best-effort structural count of the frames in the untrusted tail
/// (for stale-frame accounting only — none of them is replayed).
/// Trailing bytes that do not form a whole frame count as one.
fn count_tail_frames(bytes: &[u8], mut offset: usize) -> usize {
    let mut n = 0;
    while offset < bytes.len() {
        if bytes.len() - offset < FRAME_OVERHEAD {
            return n + 1;
        }
        let len = u32::from_le_bytes(bytes[offset..offset + 4].try_into().unwrap()) as usize;
        let Some(end) = (offset + FRAME_OVERHEAD).checked_add(len).filter(|&e| e <= bytes.len())
        else {
            return n + 1;
        };
        n += 1;
        offset = end;
    }
    n
}

/// The v2 JSONL fallback loader: same policy as v2 shipped with, plus
/// offset/line diagnostics, reported as [`JournalFormat::V2Jsonl`] so
/// resume migrates the file.
fn load_v2(bytes: &[u8], cfg: &EvalConfig, shard: ShardSpec) -> Loaded {
    let mut loaded = Loaded::empty();
    let text = match std::str::from_utf8(bytes) {
        Ok(t) => t,
        Err(_) => return loaded,
    };
    let chash = config_hash(cfg);
    // Track each line's byte offset; a trailing newline yields a final
    // empty piece that is not a line.
    let mut lines = Vec::new();
    let mut start = 0usize;
    for piece in text.split('\n') {
        lines.push((start, piece));
        start += piece.len() + 1;
    }
    if let Some(&(_, last)) = lines.last() {
        if last.is_empty() {
            lines.pop();
        }
    }
    let Some(&(_, header_line)) = lines.first() else {
        return loaded;
    };
    let expected = HeaderV2 {
        version: 2,
        config_hash: chash,
        shard_index: shard.index,
        shard_count: shard.count,
    };
    match serde_json::from_str::<HeaderV2>(header_line) {
        Ok(h) if h == expected => {}
        _ => return loaded,
    }
    loaded.format = Some(JournalFormat::V2Jsonl);
    for (i, &(offset, line)) in lines.iter().enumerate().skip(1) {
        let reject = |cell: Option<u64>, reason: String| Reject {
            offset: offset as u64,
            frame: i,
            cell,
            reason,
        };
        let entry: EntryV2 = match serde_json::from_str(line) {
            Ok(e) => e,
            Err(_) => {
                // Torn or corrupt line: truncate replay here. The bad
                // line and everything after it are stale.
                loaded.stale_frames += lines.len() - i;
                loaded.rejects.push(reject(None, "line is not a valid v2 entry".to_string()));
                return loaded;
            }
        };
        let id = CellId::new(chash, &entry.model, entry.record.task);
        if id.0 != entry.cell {
            loaded.stale_frames += lines.len() - i;
            loaded.rejects.push(reject(
                Some(entry.cell),
                format!(
                    "cell self-check failed: recomputed {:016x} from the entry's own fields",
                    id.0
                ),
            ));
            return loaded;
        }
        if loaded
            .replay
            .insert(id, ReplayCell { model: entry.model, record: entry.record })
            .is_some()
        {
            loaded.stale_frames += 1;
        }
    }
    loaded
}

/// Rewrite the journal at `path` atomically with exactly `replay`
/// folded in — one v3 frame per completed cell, in deterministic (cell
/// id) order, no torn bytes, no shadowed duplicates. Returns the
/// number of entries written. Readers (and crashes) observe either the
/// old journal or the compacted one, never a hybrid. Compacting a v2
/// journal is the migration step: the rewrite is always v3.
pub fn compact(
    path: &Path,
    cfg: &EvalConfig,
    shard: ShardSpec,
    replay: &Replay,
) -> std::io::Result<usize> {
    compact_with_priors(path, cfg, shard, 0, replay)
}

/// [`compact`] preserving the run's priors hash in the rewritten
/// header, so a compacted journal replays under the same priors check
/// as the original.
pub fn compact_with_priors(
    path: &Path,
    cfg: &EvalConfig,
    shard: ShardSpec,
    priors_hash: u64,
    replay: &Replay,
) -> std::io::Result<usize> {
    compact_sourced(path, cfg, &[], shard, priors_hash, replay)
}

/// [`compact_with_priors`] preserving a candidate-source salt in the
/// rewritten header (via [`config_hash_with`]), so a compacted salted
/// journal replays under the same source check as the original.
pub fn compact_sourced(
    path: &Path,
    cfg: &EvalConfig,
    salt: &[u8],
    shard: ShardSpec,
    priors_hash: u64,
    replay: &Replay,
) -> std::io::Result<usize> {
    let mut os = path.as_os_str().to_os_string();
    os.push(crate::pipeline::unique_suffix("compact"));
    let tmp = PathBuf::from(os);
    let result = (|| {
        let mut bytes = JOURNAL_MAGIC.to_vec();
        frame::encode_frame_into(
            &mut bytes,
            HEADER_CELL,
            &header_payload(config_hash_with(cfg, salt), shard, priors_hash),
        );
        let mut cells: Vec<(&CellId, &ReplayCell)> = replay.iter().collect();
        cells.sort_by_key(|(id, _)| **id);
        for (id, cell) in &cells {
            frame::encode_frame_into(&mut bytes, id.0, &codec::encode_entry(&cell.model, &cell.record));
        }
        let mut file = File::create(&tmp)?;
        file.write_all(&bytes)?;
        file.sync_data()?;
        drop(file);
        std::fs::rename(&tmp, path)?;
        Ok(replay.len())
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

/// Byte offsets of each entry frame (frame 1 onward) in a v3 journal,
/// in file order, ending with the offset one past the last frame.
/// Structural only (no CRC verification) — this exists so crash tests
/// and tooling can cut a journal at exact frame boundaries.
pub fn entry_offsets(path: &Path) -> Vec<u64> {
    let Ok(bytes) = std::fs::read(path) else { return Vec::new() };
    if !bytes.starts_with(&JOURNAL_MAGIC) {
        return Vec::new();
    }
    let mut offsets = Vec::new();
    let mut offset = JOURNAL_MAGIC.len();
    let mut saw_header = false;
    while bytes.len() - offset >= FRAME_OVERHEAD {
        let len = u32::from_le_bytes(bytes[offset..offset + 4].try_into().unwrap()) as usize;
        let Some(end) = (offset + FRAME_OVERHEAD).checked_add(len).filter(|&e| e <= bytes.len())
        else {
            break;
        };
        if saw_header {
            offsets.push(offset as u64);
        }
        saw_header = true;
        offset = end;
    }
    offsets.push(offset as u64);
    offsets
}

/// Write a v2 JSONL journal — the legacy layout — for migration tests
/// and the replay benchmark's baseline. Production writers only emit
/// v3; this is the fixture generator that keeps the migration path
/// honest.
pub fn write_v2_journal(
    path: &Path,
    cfg: &EvalConfig,
    shard: ShardSpec,
    entries: &[(CellId, String, TaskRecord)],
) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let header = HeaderV2 {
        version: 2,
        config_hash: config_hash(cfg),
        shard_index: shard.index,
        shard_count: shard.count,
    };
    let mut out = serde_json::to_string(&header).map_err(std::io::Error::other)?;
    out.push('\n');
    for (cell, model, record) in entries {
        let entry =
            EntryV2 { cell: cell.0, model: model.clone(), record: record.clone() };
        out.push_str(&serde_json::to_string(&entry).map_err(std::io::Error::other)?);
        out.push('\n');
    }
    let mut file = File::create(path)?;
    file.write_all(out.as_bytes())?;
    file.sync_data()
}

/// Delete a journal (after its run committed the final record).
pub fn remove(path: &Path) {
    let _ = std::fs::remove_file(path);
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcg_core::{ExecutionModel, ProblemId, ProblemType};
    use pcg_metrics::TaskSamples;
    use std::collections::BTreeMap;

    fn rec(variant: usize) -> TaskRecord {
        TaskRecord {
            task: ProblemId::new(ProblemType::Reduce, variant).task(ExecutionModel::OpenMp),
            low: TaskSamples {
                built: vec![true, false],
                correct: vec![true, false],
                ratio: vec![3.5, 0.0],
            },
            high: None,
            sweep: BTreeMap::from([(4u32, vec![2.25, 0.0])]),
        }
    }

    fn cell_of(cfg: &EvalConfig, model: &str, r: &TaskRecord) -> CellId {
        CellId::new(config_hash(cfg), model, r.task)
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("pcgbench-journal-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}.journal", std::process::id()))
    }

    #[test]
    fn roundtrip_and_cell_keyed_replay() {
        let cfg = EvalConfig::smoke();
        let path = tmp("roundtrip");
        let j = Journal::create(&path, &cfg, ShardSpec::WHOLE).unwrap();
        j.append(cell_of(&cfg, "GPT-4", &rec(0)), "GPT-4", &rec(0)).unwrap();
        j.append(cell_of(&cfg, "GPT-4", &rec(1)), "GPT-4", &rec(1)).unwrap();
        j.append(cell_of(&cfg, "CodeLlama-7B", &rec(0)), "CodeLlama-7B", &rec(0)).unwrap();
        drop(j);

        assert!(
            std::fs::read(&path).unwrap().starts_with(&JOURNAL_MAGIC),
            "production journals are v3"
        );
        let loaded = load_counting(&path, &cfg, ShardSpec::WHOLE);
        assert_eq!(loaded.format, Some(JournalFormat::V3));
        assert!(!loaded.needs_compaction());
        let replay = loaded.replay;
        assert_eq!(replay.len(), 3);
        let got = &replay[&cell_of(&cfg, "GPT-4", &rec(1))];
        assert_eq!(got.model, "GPT-4");
        assert_eq!(got.record.low.built, vec![true, false]);
        assert_eq!(got.record.low.ratio, vec![3.5, 0.0]);
        remove(&path);
        assert!(load(&path, &cfg, ShardSpec::WHOLE).is_empty());
    }

    #[test]
    fn source_salt_gates_replay_and_empty_salt_is_identity() {
        let cfg = EvalConfig::smoke();
        assert_eq!(config_hash_with(&cfg, &[]), config_hash(&cfg));
        let salt = b"pool-A".to_vec();
        assert_ne!(config_hash_with(&cfg, &salt), config_hash(&cfg));

        // A journal written under one pool's salt: its cells are keyed
        // by the salted hash.
        let path = tmp("sourced");
        let chash = config_hash_with(&cfg, &salt);
        let r = rec(0);
        let cell = CellId::new(chash, "GPT-4", r.task);
        let j = Journal::create_sourced(&path, &cfg, &salt, ShardSpec::WHOLE, 0).unwrap();
        j.append(cell, "GPT-4", &r).unwrap();
        drop(j);

        // Same salt replays; no salt or a different pool replays
        // nothing — and the unsalted loader path gates out too.
        let same = load_counting_sourced(&path, &cfg, &salt, ShardSpec::WHOLE, 0);
        assert_eq!(same.replay.len(), 1);
        assert!(same.replay.contains_key(&cell));
        let other = load_counting_sourced(&path, &cfg, b"pool-B", ShardSpec::WHOLE, 0);
        assert!(other.replay.is_empty());
        assert!(load(&path, &cfg, ShardSpec::WHOLE).is_empty());
        assert!(peek_progress(&path, &cfg, ShardSpec::WHOLE, 0).is_none());
        let peek =
            peek_progress_sourced(&path, &cfg, &salt, ShardSpec::WHOLE, 0).unwrap();
        assert!(peek.done.contains(&cell.0));

        // Compaction preserves the salt.
        compact_sourced(&path, &cfg, &salt, ShardSpec::WHOLE, 0, &same.replay).unwrap();
        let again = load_counting_sourced(&path, &cfg, &salt, ShardSpec::WHOLE, 0);
        assert_eq!(again.replay.len(), 1);
        remove(&path);
    }

    #[test]
    fn replayed_record_serializes_byte_identically() {
        let cfg = EvalConfig::smoke();
        let path = tmp("bytes");
        let original = rec(2);
        let j = Journal::create(&path, &cfg, ShardSpec::WHOLE).unwrap();
        j.append(cell_of(&cfg, "GPT-4", &original), "GPT-4", &original).unwrap();
        drop(j);
        let replay = load(&path, &cfg, ShardSpec::WHOLE);
        let back = &replay[&cell_of(&cfg, "GPT-4", &original)];
        assert_eq!(
            serde_json::to_string(&original).unwrap(),
            serde_json::to_string(&back.record).unwrap(),
        );
        remove(&path);
    }

    #[test]
    fn claims_are_skipped_on_replay_and_folded_by_compaction() {
        let cfg = EvalConfig::smoke();
        let path = tmp("claims");
        let spec = ShardSpec::new(1, 3);
        let j = Journal::create(&path, &cfg, spec).unwrap();
        let done = cell_of(&cfg, "GPT-4", &rec(0));
        j.append(done, "GPT-4", &rec(0)).unwrap();
        // Claim two cells, then complete only one — the other is a
        // thief that died between claim and result.
        let c1 = cell_of(&cfg, "GPT-4", &rec(1));
        let c2 = cell_of(&cfg, "CodeLlama-7B", &rec(0));
        j.append_claims(&[c1, c2], 1).unwrap();
        j.append(c1, "GPT-4", &rec(1)).unwrap();
        drop(j);

        let loaded = load_counting(&path, &cfg, spec);
        assert_eq!(loaded.format, Some(JournalFormat::V3));
        assert_eq!(loaded.replay.len(), 2, "claims never replay");
        assert!(loaded.replay.contains_key(&done));
        assert!(loaded.replay.contains_key(&c1));
        assert!(!loaded.replay.contains_key(&c2));
        assert_eq!(loaded.stale_frames, 2, "each claim counts stale so resume compacts");
        assert!(loaded.rejects.is_empty(), "claims are a frame kind, not corruption");
        assert!(loaded.needs_compaction());

        // Compaction folds the claims away: the unfinished claim's
        // cell is simply absent — stealable / gap-fillable again.
        compact(&path, &cfg, spec, &loaded.replay).unwrap();
        let again = load_counting(&path, &cfg, spec);
        assert_eq!(again.replay.len(), 2);
        assert_eq!(again.stale_frames, 0);
        assert!(!again.needs_compaction());
        remove(&path);
    }

    #[test]
    fn peek_progress_reports_done_and_claimed_without_replay() {
        let cfg = EvalConfig::smoke();
        let path = tmp("peek");
        let spec = ShardSpec::new(0, 3);
        let j = Journal::create(&path, &cfg, spec).unwrap();
        let done = cell_of(&cfg, "GPT-4", &rec(0));
        let claimed = cell_of(&cfg, "GPT-4", &rec(1));
        j.append(done, "GPT-4", &rec(0)).unwrap();
        j.append_claims(&[claimed], 2).unwrap();
        drop(j);

        let p = peek_progress(&path, &cfg, spec, 0).unwrap();
        assert!(p.done.contains(&done.0));
        assert!(p.claimed.contains(&claimed.0));
        assert_eq!((p.done.len(), p.claimed.len()), (1, 1));

        // Gated exactly like replay: wrong geometry, wrong config,
        // wrong priors hash, or a missing file sees no progress.
        assert!(peek_progress(&path, &cfg, ShardSpec::new(1, 3), 0).is_none());
        assert!(peek_progress(&path, &cfg, spec, 7).is_none());
        let mut other = EvalConfig::smoke();
        other.seed += 1;
        assert!(peek_progress(&path, &other, spec, 0).is_none());
        assert!(peek_progress(&tmp("peek-missing"), &cfg, spec, 0).is_none());

        // A torn tail truncates the peek to the clean prefix.
        let mut bytes = std::fs::read(&path).unwrap();
        let torn = frame::encode_frame(999, &codec::encode_entry("GPT-4", &rec(2)));
        bytes.extend_from_slice(&torn[..torn.len() - 3]);
        std::fs::write(&path, &bytes).unwrap();
        let p = peek_progress(&path, &cfg, spec, 0).unwrap();
        assert_eq!((p.done.len(), p.claimed.len()), (1, 1));
        remove(&path);
    }

    #[test]
    fn config_or_shard_mismatch_replays_nothing() {
        let cfg = EvalConfig::smoke();
        let path = tmp("mismatch");
        let j = Journal::create(&path, &cfg, ShardSpec::WHOLE).unwrap();
        j.append(cell_of(&cfg, "GPT-4", &rec(0)), "GPT-4", &rec(0)).unwrap();
        drop(j);
        let mut other = EvalConfig::smoke();
        other.seed += 1;
        assert_ne!(config_hash(&cfg), config_hash(&other));
        assert!(load(&path, &other, ShardSpec::WHOLE).is_empty());
        // A whole-grid journal must not replay into a shard worker.
        assert!(load(&path, &cfg, ShardSpec::new(0, 3)).is_empty());
        assert_eq!(load(&path, &cfg, ShardSpec::WHOLE).len(), 1);
        remove(&path);
    }

    #[test]
    fn torn_frame_truncates_replay_and_counts_stale() {
        let cfg = EvalConfig::smoke();
        let path = tmp("torn");
        let j = Journal::create(&path, &cfg, ShardSpec::WHOLE).unwrap();
        j.append(cell_of(&cfg, "GPT-4", &rec(0)), "GPT-4", &rec(0)).unwrap();
        j.append(cell_of(&cfg, "GPT-4", &rec(1)), "GPT-4", &rec(1)).unwrap();
        drop(j);
        // Simulate a crash mid-append: a torn third frame, then a valid
        // fourth frame that must NOT be trusted.
        let mut bytes = std::fs::read(&path).unwrap();
        let torn_offset = bytes.len() as u64;
        let torn = frame::encode_frame(12345, &codec::encode_entry("GPT-4", &rec(2)));
        bytes.extend_from_slice(&torn[..torn.len() / 2]);
        std::fs::write(&path, &bytes).unwrap();

        let loaded = load_counting(&path, &cfg, ShardSpec::WHOLE);
        assert_eq!(loaded.replay.len(), 2, "replay stops at the torn frame");
        assert_eq!(loaded.stale_frames, 1, "the torn frame is stale");
        assert!(loaded.needs_compaction());
        assert_eq!(loaded.rejects.len(), 1);
        let r = &loaded.rejects[0];
        assert_eq!((r.offset, r.frame), (torn_offset, 3));
        assert!(r.to_string().contains("torn tail"), "{r}");

        // Now a whole valid frame after the torn one: still untrusted.
        let whole =
            frame::encode_frame(cell_of(&cfg, "CodeLlama-7B", &rec(3)).0, &codec::encode_entry("CodeLlama-7B", &rec(3)));
        bytes.extend_from_slice(&whole);
        std::fs::write(&path, &bytes).unwrap();
        let loaded = load_counting(&path, &cfg, ShardSpec::WHOLE);
        assert_eq!(loaded.replay.len(), 2);
        assert!(!loaded.replay.contains_key(&cell_of(&cfg, "CodeLlama-7B", &rec(3))));
        remove(&path);
    }

    #[test]
    fn bit_flip_is_rejected_with_location() {
        let cfg = EvalConfig::smoke();
        let path = tmp("flip");
        let j = Journal::create(&path, &cfg, ShardSpec::WHOLE).unwrap();
        j.append(cell_of(&cfg, "GPT-4", &rec(0)), "GPT-4", &rec(0)).unwrap();
        j.append(cell_of(&cfg, "GPT-4", &rec(1)), "GPT-4", &rec(1)).unwrap();
        drop(j);
        let clean = std::fs::read(&path).unwrap();
        let offsets = entry_offsets(&path);
        // Flip one payload byte inside the FIRST entry frame.
        let mut bytes = clean.clone();
        let target = offsets[0] as usize + FRAME_OVERHEAD + 2;
        bytes[target] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();
        let loaded = load_counting(&path, &cfg, ShardSpec::WHOLE);
        assert!(loaded.replay.is_empty(), "nothing after the flip is trusted");
        assert_eq!(loaded.stale_frames, 2, "the corrupt frame and the structural tail");
        assert_eq!(loaded.rejects.len(), 1);
        let r = &loaded.rejects[0];
        assert_eq!((r.offset, r.frame), (offsets[0], 1));
        assert!(r.to_string().contains("CRC mismatch"), "{r}");
        remove(&path);
    }

    #[test]
    fn forged_cell_id_is_treated_as_corruption() {
        let cfg = EvalConfig::smoke();
        let path = tmp("forged");
        let j = Journal::create(&path, &cfg, ShardSpec::WHOLE).unwrap();
        j.append(cell_of(&cfg, "GPT-4", &rec(0)), "GPT-4", &rec(0)).unwrap();
        // An entry whose stored id belongs to a different cell. The
        // frame CRC is valid (it was written that way), so only the
        // cell self-check can catch it.
        j.append(cell_of(&cfg, "GPT-4", &rec(2)), "GPT-4", &rec(1)).unwrap();
        j.append(cell_of(&cfg, "GPT-4", &rec(3)), "GPT-4", &rec(3)).unwrap();
        drop(j);
        let loaded = load_counting(&path, &cfg, ShardSpec::WHOLE);
        assert_eq!(loaded.replay.len(), 1, "replay truncates at the forged frame");
        assert_eq!(loaded.stale_frames, 2);
        assert_eq!(loaded.rejects.len(), 1);
        assert_eq!(loaded.rejects[0].cell, Some(cell_of(&cfg, "GPT-4", &rec(2)).0));
        assert!(loaded.rejects[0].to_string().contains("self-check"), "{}", loaded.rejects[0]);
        remove(&path);
    }

    #[test]
    fn duplicate_appends_fold_to_last_write_and_compact() {
        let cfg = EvalConfig::smoke();
        let path = tmp("dup");
        let j = Journal::create(&path, &cfg, ShardSpec::WHOLE).unwrap();
        let mut first = rec(0);
        first.low.ratio = vec![1.0, 0.0];
        j.append(cell_of(&cfg, "GPT-4", &first), "GPT-4", &first).unwrap();
        j.append(cell_of(&cfg, "GPT-4", &rec(1)), "GPT-4", &rec(1)).unwrap();
        // The same cell re-appended (post-truncation re-evaluation).
        j.append(cell_of(&cfg, "GPT-4", &rec(0)), "GPT-4", &rec(0)).unwrap();
        drop(j);

        let loaded = load_counting(&path, &cfg, ShardSpec::WHOLE);
        assert_eq!(loaded.replay.len(), 2);
        assert_eq!(loaded.stale_frames, 1, "the shadowed first append is stale");
        assert!(loaded.rejects.is_empty(), "duplicates are tolerated, not rejected");
        assert_eq!(
            loaded.replay[&cell_of(&cfg, "GPT-4", &rec(0))].record.low.ratio,
            rec(0).low.ratio,
            "last write wins"
        );

        // Compaction rewrites to exactly the replayable generation...
        compact(&path, &cfg, ShardSpec::WHOLE, &loaded.replay).unwrap();
        let again = load_counting(&path, &cfg, ShardSpec::WHOLE);
        assert_eq!(again.stale_frames, 0, "a compacted journal has no stale frames");
        assert_eq!(again.replay.len(), 2);
        // ...and the compacted journal still replays byte-identically.
        assert_eq!(
            serde_json::to_string(&again.replay[&cell_of(&cfg, "GPT-4", &rec(1))].record).unwrap(),
            serde_json::to_string(&rec(1)).unwrap(),
        );
        // Appending after compaction still works (resume continues).
        let j = Journal::open_append(&path).unwrap();
        j.append(cell_of(&cfg, "GPT-4", &rec(4)), "GPT-4", &rec(4)).unwrap();
        drop(j);
        assert_eq!(load(&path, &cfg, ShardSpec::WHOLE).len(), 3);
        remove(&path);
    }

    #[test]
    fn append_after_resume_extends_the_same_journal() {
        let cfg = EvalConfig::smoke();
        let path = tmp("extend");
        let j = Journal::create(&path, &cfg, ShardSpec::WHOLE).unwrap();
        j.append(cell_of(&cfg, "GPT-4", &rec(0)), "GPT-4", &rec(0)).unwrap();
        drop(j);
        let j = Journal::open_append(&path).unwrap();
        j.append(cell_of(&cfg, "GPT-4", &rec(1)), "GPT-4", &rec(1)).unwrap();
        drop(j);
        assert_eq!(load(&path, &cfg, ShardSpec::WHOLE).len(), 2);
        remove(&path);
    }

    #[test]
    fn v2_jsonl_journals_remain_readable_and_demand_migration() {
        let cfg = EvalConfig::smoke();
        let path = tmp("v2");
        let entries: Vec<(CellId, String, TaskRecord)> = (0..3)
            .map(|v| (cell_of(&cfg, "GPT-4", &rec(v)), "GPT-4".to_string(), rec(v)))
            .collect();
        write_v2_journal(&path, &cfg, ShardSpec::WHOLE, &entries).unwrap();

        let loaded = load_counting(&path, &cfg, ShardSpec::WHOLE);
        assert_eq!(loaded.format, Some(JournalFormat::V2Jsonl));
        assert_eq!(loaded.replay.len(), 3);
        assert_eq!(loaded.stale_frames, 0);
        assert!(loaded.needs_compaction(), "a clean v2 journal still migrates on resume");
        // The v2 replay is byte-identical to the original records.
        assert_eq!(
            serde_json::to_string(&loaded.replay[&entries[1].0].record).unwrap(),
            serde_json::to_string(&rec(1)).unwrap(),
        );

        // Migration: compact rewrites as v3; replay is unchanged.
        compact(&path, &cfg, ShardSpec::WHOLE, &loaded.replay).unwrap();
        assert!(std::fs::read(&path).unwrap().starts_with(&JOURNAL_MAGIC));
        let migrated = load_counting(&path, &cfg, ShardSpec::WHOLE);
        assert_eq!(migrated.format, Some(JournalFormat::V3));
        assert!(!migrated.needs_compaction());
        assert_eq!(migrated.replay.len(), 3);
        assert_eq!(
            serde_json::to_string(&migrated.replay[&entries[2].0].record).unwrap(),
            serde_json::to_string(&rec(2)).unwrap(),
        );
        remove(&path);
    }

    #[test]
    fn v2_torn_line_reports_offset_and_line() {
        let cfg = EvalConfig::smoke();
        let path = tmp("v2-torn");
        let entries: Vec<(CellId, String, TaskRecord)> =
            vec![(cell_of(&cfg, "GPT-4", &rec(0)), "GPT-4".to_string(), rec(0))];
        write_v2_journal(&path, &cfg, ShardSpec::WHOLE, &entries).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let torn_offset = bytes.len() as u64;
        bytes.extend_from_slice(b"{\"cell\":1,\"model\":\"GPT-4\",\"rec");
        std::fs::write(&path, &bytes).unwrap();

        let loaded = load_counting(&path, &cfg, ShardSpec::WHOLE);
        assert_eq!(loaded.replay.len(), 1);
        assert_eq!(loaded.stale_frames, 1);
        assert_eq!(loaded.rejects.len(), 1);
        assert_eq!((loaded.rejects[0].offset, loaded.rejects[0].frame), (torn_offset, 2));
        remove(&path);
    }

    #[test]
    fn entry_offsets_walk_frame_boundaries() {
        let cfg = EvalConfig::smoke();
        let path = tmp("offsets");
        let j = Journal::create(&path, &cfg, ShardSpec::WHOLE).unwrap();
        j.append(cell_of(&cfg, "GPT-4", &rec(0)), "GPT-4", &rec(0)).unwrap();
        j.append(cell_of(&cfg, "GPT-4", &rec(1)), "GPT-4", &rec(1)).unwrap();
        drop(j);
        let offsets = entry_offsets(&path);
        assert_eq!(offsets.len(), 3, "two entries plus the end sentinel");
        assert_eq!(*offsets.last().unwrap(), std::fs::metadata(&path).unwrap().len());
        // Truncating at an entry offset yields a clean shorter journal.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..offsets[1] as usize]).unwrap();
        let loaded = load_counting(&path, &cfg, ShardSpec::WHOLE);
        assert_eq!(loaded.replay.len(), 1);
        assert_eq!(loaded.stale_frames, 0);
        remove(&path);
    }

    #[test]
    fn journal_paths_derive_from_cache_path() {
        let p = journal_path(Path::new("target/pcgbench/records-quick.json"));
        assert_eq!(p, Path::new("target/pcgbench/records-quick.json.journal"));
        let s = shard_journal_path(
            Path::new("target/pcgbench/records-quick.json"),
            ShardSpec::new(1, 3),
        );
        assert_eq!(
            s,
            Path::new("target/pcgbench/records-quick.json.journal.shard-1-of-3")
        );
        assert_eq!(
            shard_journal_path(Path::new("x.json"), ShardSpec::WHOLE),
            journal_path(Path::new("x.json")),
        );
    }

    #[test]
    fn priors_hash_mismatch_replays_nothing() {
        let cfg = EvalConfig::smoke();
        let path = tmp("priors");
        let j = Journal::create_with_priors(&path, &cfg, ShardSpec::WHOLE, 0xabcd).unwrap();
        j.append(cell_of(&cfg, "GPT-4", &rec(0)), "GPT-4", &rec(0)).unwrap();
        drop(j);

        assert_eq!(peek_priors_hash(&path), Some(0xabcd));
        assert_eq!(
            load_counting_with_priors(&path, &cfg, ShardSpec::WHOLE, 0xabcd).replay.len(),
            1
        );
        // A different priors table — or none at all — partitioned the
        // grid differently; its journal must not replay.
        assert!(load_counting_with_priors(&path, &cfg, ShardSpec::WHOLE, 0x1234).replay.is_empty());
        assert!(load(&path, &cfg, ShardSpec::WHOLE).is_empty());

        // Compaction preserves the stamp.
        let loaded = load_counting_with_priors(&path, &cfg, ShardSpec::WHOLE, 0xabcd);
        compact_with_priors(&path, &cfg, ShardSpec::WHOLE, 0xabcd, &loaded.replay).unwrap();
        assert_eq!(peek_priors_hash(&path), Some(0xabcd));
        assert_eq!(
            load_counting_with_priors(&path, &cfg, ShardSpec::WHOLE, 0xabcd).replay.len(),
            1
        );
        remove(&path);
        assert_eq!(peek_priors_hash(&path), None, "missing file has no hash to peek");
    }

    #[test]
    fn pre_priors_headers_read_as_hash_zero() {
        let cfg = EvalConfig::smoke();
        let path = tmp("pre-priors");
        // Hand-write a v3 journal whose header ends at shard_count —
        // the exact layout shipped before the priors field existed.
        let mut w = ByteWriter::new();
        w.put_u32(VERSION);
        w.put_u64(config_hash(&cfg));
        w.put_u32(ShardSpec::WHOLE.index);
        w.put_u32(ShardSpec::WHOLE.count);
        let mut bytes = JOURNAL_MAGIC.to_vec();
        frame::encode_frame_into(&mut bytes, HEADER_CELL, &w.into_bytes());
        let id = cell_of(&cfg, "GPT-4", &rec(0));
        frame::encode_frame_into(&mut bytes, id.0, &codec::encode_entry("GPT-4", &rec(0)));
        std::fs::write(&path, &bytes).unwrap();

        assert_eq!(peek_priors_hash(&path), Some(0));
        assert_eq!(load(&path, &cfg, ShardSpec::WHOLE).len(), 1, "old journals still replay");
        assert!(
            load_counting_with_priors(&path, &cfg, ShardSpec::WHOLE, 7).replay.is_empty(),
            "but never into a run with priors"
        );

        // v2 journals likewise peek as hash 0 and refuse priors runs.
        let entries = vec![(id, "GPT-4".to_string(), rec(0))];
        write_v2_journal(&path, &cfg, ShardSpec::WHOLE, &entries).unwrap();
        assert_eq!(peek_priors_hash(&path), Some(0));
        assert_eq!(load(&path, &cfg, ShardSpec::WHOLE).len(), 1);
        assert!(load_counting_with_priors(&path, &cfg, ShardSpec::WHOLE, 7).replay.is_empty());
        remove(&path);
    }

    #[test]
    fn shard_journals_replay_into_their_own_spec_only() {
        let cfg = EvalConfig::smoke();
        let path = tmp("shard");
        let spec = ShardSpec::new(1, 3);
        let j = Journal::create(&path, &cfg, spec).unwrap();
        j.append(cell_of(&cfg, "GPT-4", &rec(0)), "GPT-4", &rec(0)).unwrap();
        drop(j);
        assert_eq!(load(&path, &cfg, spec).len(), 1);
        assert!(load(&path, &cfg, ShardSpec::new(0, 3)).is_empty());
        assert!(load(&path, &cfg, ShardSpec::WHOLE).is_empty());
        remove(&path);
    }
}
