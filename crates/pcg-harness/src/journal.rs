//! Write-ahead journal for crash-safe evaluation.
//!
//! The pipeline appends one JSONL line per completed grid cell, fsync'd
//! before the scheduler hands out more work from that point, so a
//! killed run loses at most the cells that were in flight. On startup
//! with `--resume`, a journal whose header matches the active config is
//! replayed: completed cells are skipped and only the remainder is
//! scheduled. Replay is *keyed* — `(model, task)`, with the config
//! pinned by the header hash — not positional, so a journal written at
//! `--jobs 8` (completion order) resumes correctly at any worker count.
//!
//! Format: line 1 is `{"version":1,"config_hash":<fnv64>}`; every
//! other line is `{"model":"GPT-4","record":{...TaskRecord...}}`.
//! A torn final line (the crash happened mid-append) or any other
//! malformed entry truncates the replay at the first bad line — the
//! cells after it are simply re-evaluated.
//!
//! Byte-identity contract: replaying a cell reproduces the exact bytes
//! an uninterrupted run would have recorded, because (a) the vendored
//! serde prints `f64`s in shortest-roundtrip form, so a JSON round trip
//! is lossless, and (b) all other record fields are integers, bools,
//! and strings. The cells evaluated *after* resume reuse the same
//! deterministic sample streams (keyed by grid coordinates, never by
//! worker identity or time), extending the jobs-agnostic determinism
//! guarantee across a crash.

use crate::config::EvalConfig;
use crate::record::TaskRecord;
use parking_lot::Mutex;
use pcg_core::TaskId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};

/// Journal format version; bump on any layout change.
const VERSION: u32 = 1;

#[derive(Debug, PartialEq, Serialize, Deserialize)]
struct Header {
    version: u32,
    config_hash: u64,
}

#[derive(Serialize, Deserialize)]
struct Entry {
    model: String,
    record: TaskRecord,
}

/// FNV-1a over the config's canonical JSON: journals are only replayed
/// into the exact configuration that wrote them.
pub fn config_hash(cfg: &EvalConfig) -> u64 {
    let bytes = serde_json::to_vec(cfg).unwrap_or_default();
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Journal path for a record cache path (`records-quick.json` →
/// `records-quick.json.journal`).
pub fn journal_path(cache_path: &Path) -> PathBuf {
    let mut os = cache_path.as_os_str().to_os_string();
    os.push(".journal");
    PathBuf::from(os)
}

/// Completed cells recovered from a journal, keyed by `(model, task)`.
pub type Replay = HashMap<(String, TaskId), TaskRecord>;

/// Append handle for one run's journal.
pub struct Journal {
    file: Mutex<File>,
}

impl Journal {
    /// Start a fresh journal for `cfg`, truncating any previous file.
    pub fn create(path: &Path, cfg: &EvalConfig) -> std::io::Result<Journal> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        let mut file = File::create(path)?;
        let header = Header { version: VERSION, config_hash: config_hash(cfg) };
        let line = serde_json::to_string(&header).map_err(std::io::Error::other)?;
        writeln!(file, "{line}")?;
        file.sync_data()?;
        Ok(Journal { file: Mutex::new(file) })
    }

    /// Continue appending to an existing journal (resume). The caller
    /// must have validated the header via [`load`].
    pub fn open_append(path: &Path) -> std::io::Result<Journal> {
        let file = OpenOptions::new().append(true).open(path)?;
        Ok(Journal { file: Mutex::new(file) })
    }

    /// Durably append one completed cell: the line is written, flushed,
    /// and fsync'd before this returns, so a crash at any later point
    /// cannot lose it.
    pub fn append(&self, model: &str, record: &TaskRecord) -> std::io::Result<()> {
        let entry = Entry { model: model.to_string(), record: record.clone() };
        let line = serde_json::to_string(&entry).map_err(std::io::Error::other)?;
        let mut file = self.file.lock();
        writeln!(file, "{line}")?;
        file.flush()?;
        file.sync_data()
    }
}

/// Load the replayable cells of the journal at `path` for `cfg`.
///
/// Returns an empty map when the file is missing, unreadable, or
/// carries a header for a different config/version. A malformed or torn
/// line truncates the replay there: everything before it is kept,
/// everything after it is discarded (it may describe cells appended
/// after the corruption, but trusting a journal past its first bad
/// byte is how resumed runs diverge — re-evaluating is always safe).
pub fn load(path: &Path, cfg: &EvalConfig) -> Replay {
    let mut replay = Replay::new();
    let file = match File::open(path) {
        Ok(f) => f,
        Err(_) => return replay,
    };
    let mut lines = BufReader::new(file).lines();
    let header: Header = match lines.next() {
        Some(Ok(line)) => match serde_json::from_str(&line) {
            Ok(h) => h,
            Err(_) => return replay,
        },
        _ => return replay,
    };
    if header != (Header { version: VERSION, config_hash: config_hash(cfg) }) {
        return replay;
    }
    for line in lines {
        let entry: Entry = match line.as_deref().map(serde_json::from_str) {
            Ok(Ok(e)) => e,
            _ => break, // torn or corrupt line: truncate replay here
        };
        replay.insert((entry.model, entry.record.task), entry.record);
    }
    replay
}

/// Delete a journal (after its run committed the final record).
pub fn remove(path: &Path) {
    let _ = std::fs::remove_file(path);
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcg_core::{ExecutionModel, ProblemId, ProblemType};
    use pcg_metrics::TaskSamples;
    use std::collections::BTreeMap;

    fn rec(variant: usize) -> TaskRecord {
        TaskRecord {
            task: ProblemId::new(ProblemType::Reduce, variant).task(ExecutionModel::OpenMp),
            low: TaskSamples {
                built: vec![true, false],
                correct: vec![true, false],
                ratio: vec![3.5, 0.0],
            },
            high: None,
            sweep: BTreeMap::from([(4u32, vec![2.25, 0.0])]),
        }
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("pcgbench-journal-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}.journal", std::process::id()))
    }

    #[test]
    fn roundtrip_and_keyed_replay() {
        let cfg = EvalConfig::smoke();
        let path = tmp("roundtrip");
        let j = Journal::create(&path, &cfg).unwrap();
        j.append("GPT-4", &rec(0)).unwrap();
        j.append("GPT-4", &rec(1)).unwrap();
        j.append("CodeLlama-7B", &rec(0)).unwrap();
        drop(j);

        let replay = load(&path, &cfg);
        assert_eq!(replay.len(), 3);
        let got = &replay[&("GPT-4".to_string(), rec(1).task)];
        assert_eq!(got.low.built, vec![true, false]);
        assert_eq!(got.low.ratio, vec![3.5, 0.0]);
        remove(&path);
        assert!(load(&path, &cfg).is_empty());
    }

    #[test]
    fn replayed_record_serializes_byte_identically() {
        let cfg = EvalConfig::smoke();
        let path = tmp("bytes");
        let original = rec(2);
        let j = Journal::create(&path, &cfg).unwrap();
        j.append("GPT-4", &original).unwrap();
        drop(j);
        let replay = load(&path, &cfg);
        let back = &replay[&("GPT-4".to_string(), original.task)];
        assert_eq!(
            serde_json::to_string(&original).unwrap(),
            serde_json::to_string(back).unwrap(),
        );
        remove(&path);
    }

    #[test]
    fn config_mismatch_replays_nothing() {
        let cfg = EvalConfig::smoke();
        let path = tmp("mismatch");
        let j = Journal::create(&path, &cfg).unwrap();
        j.append("GPT-4", &rec(0)).unwrap();
        drop(j);
        let mut other = EvalConfig::smoke();
        other.seed += 1;
        assert_ne!(config_hash(&cfg), config_hash(&other));
        assert!(load(&path, &other).is_empty());
        assert_eq!(load(&path, &cfg).len(), 1);
        remove(&path);
    }

    #[test]
    fn torn_line_truncates_replay() {
        let cfg = EvalConfig::smoke();
        let path = tmp("torn");
        let j = Journal::create(&path, &cfg).unwrap();
        j.append("GPT-4", &rec(0)).unwrap();
        j.append("GPT-4", &rec(1)).unwrap();
        drop(j);
        // Simulate a crash mid-append: a torn third line, then a valid
        // fourth line that must NOT be trusted.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(b"{\"model\":\"GPT-4\",\"rec");
        bytes.push(b'\n');
        let whole = serde_json::to_string(&super::Entry {
            model: "CodeLlama-7B".into(),
            record: rec(3),
        })
        .unwrap();
        bytes.extend_from_slice(whole.as_bytes());
        bytes.push(b'\n');
        std::fs::write(&path, bytes).unwrap();

        let replay = load(&path, &cfg);
        assert_eq!(replay.len(), 2, "replay stops at the torn line");
        assert!(!replay.contains_key(&("CodeLlama-7B".to_string(), rec(3).task)));
        remove(&path);
    }

    #[test]
    fn append_after_resume_extends_the_same_journal() {
        let cfg = EvalConfig::smoke();
        let path = tmp("extend");
        let j = Journal::create(&path, &cfg).unwrap();
        j.append("GPT-4", &rec(0)).unwrap();
        drop(j);
        let j = Journal::open_append(&path).unwrap();
        j.append("GPT-4", &rec(1)).unwrap();
        drop(j);
        assert_eq!(load(&path, &cfg).len(), 2);
        remove(&path);
    }

    #[test]
    fn journal_path_derives_from_cache_path() {
        let p = journal_path(Path::new("target/pcgbench/records-quick.json"));
        assert_eq!(p, Path::new("target/pcgbench/records-quick.json.journal"));
    }
}
