//! Binary payload codec for journal v3 entries.
//!
//! One journal frame's payload is one completed grid cell: the owning
//! model's display name plus the full [`TaskRecord`]. The layout is
//! fixed-order little-endian (see DESIGN.md's journal v3 spec):
//!
//! ```text
//! str   model          — u32 length + UTF-8 bytes
//! u32   task           — TaskId dense index (0..420)
//! lowset                — TaskSamples (see below)
//! u8    high_present   — 0 or 1
//! [set]  high           — TaskSamples, iff high_present == 1
//! u32   sweep_len
//! sweep_len × { u32 resource_count; u32 n; n × f64 ratio }
//! ```
//!
//! where a `TaskSamples` set is
//!
//! ```text
//! u32 n_built;   n_built   × u8 bool
//! u32 n_correct; n_correct × u8 bool
//! u32 n_ratio;   n_ratio   × f64
//! ```
//!
//! Floats are raw IEEE-754 bits, so the binary round trip is exact:
//! a record journaled in v3 and exported back to JSON prints the
//! identical shortest-roundtrip decimal the JSONL path would have
//! written — the byte-identity contract survives the format change.
//!
//! Decoding trusts nothing: every length is bounds-checked against the
//! remaining payload, bools must be 0/1, the task index must be dense
//! (< 420), sweep keys must arrive in strictly increasing order (the
//! encoder writes the `BTreeMap` in order, so out-of-order keys can
//! only mean corruption), and trailing bytes are an error. A CRC-valid
//! frame whose payload fails any of these checks is rejected loudly —
//! the same policy as a CRC failure — never silently misread.

use crate::record::TaskRecord;
use pcg_core::frame::{ByteReader, ByteWriter};
use pcg_core::TaskId;
use pcg_metrics::TaskSamples;
use std::collections::BTreeMap;

fn put_samples(w: &mut ByteWriter, s: &TaskSamples) {
    w.put_len(s.built.len());
    for &b in &s.built {
        w.put_bool(b);
    }
    w.put_len(s.correct.len());
    for &b in &s.correct {
        w.put_bool(b);
    }
    w.put_len(s.ratio.len());
    for &r in &s.ratio {
        w.put_f64(r);
    }
}

fn get_samples(r: &mut ByteReader<'_>) -> Result<TaskSamples, String> {
    let err = |e: pcg_core::frame::CodecError| e.to_string();
    let n = r.len(1).map_err(err)?;
    let mut built = Vec::with_capacity(n);
    for _ in 0..n {
        built.push(r.bool().map_err(err)?);
    }
    let n = r.len(1).map_err(err)?;
    let mut correct = Vec::with_capacity(n);
    for _ in 0..n {
        correct.push(r.bool().map_err(err)?);
    }
    let n = r.len(8).map_err(err)?;
    let mut ratio = Vec::with_capacity(n);
    for _ in 0..n {
        ratio.push(r.f64().map_err(err)?);
    }
    Ok(TaskSamples { built, correct, ratio })
}

/// Encode one `(model, record)` cell into a v3 frame payload.
pub fn encode_entry(model: &str, record: &TaskRecord) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_str(model);
    w.put_u32(u32::try_from(record.task.index()).expect("task index fits in u32"));
    put_samples(&mut w, &record.low);
    match &record.high {
        Some(high) => {
            w.put_bool(true);
            put_samples(&mut w, high);
        }
        None => w.put_bool(false),
    }
    w.put_len(record.sweep.len());
    for (&k, ratios) in &record.sweep {
        w.put_u32(k);
        w.put_len(ratios.len());
        for &r in ratios {
            w.put_f64(r);
        }
    }
    w.into_bytes()
}

/// Encode a work-stealing claim payload for `thief`: the claimed cell
/// rides in the frame's cell tag; the payload carries only the frame
/// kind discriminator and the thief's shard index (diagnostics — the
/// journal header already names its owner).
pub fn encode_claim(thief_index: u32) -> Vec<u8> {
    pcg_core::frame::encode_claim_payload(thief_index)
}

/// Decode a claim payload back to the thief's shard index; `None` for
/// anything that is not a well-formed claim.
pub fn decode_claim(payload: &[u8]) -> Option<u32> {
    pcg_core::frame::decode_claim_payload(payload)
}

/// Decode a v3 frame payload back into `(model, record)`. Any
/// malformation — truncation, junk bools, an out-of-range task index,
/// out-of-order sweep keys, trailing bytes — is an error describing
/// what failed and where.
pub fn decode_entry(payload: &[u8]) -> Result<(String, TaskRecord), String> {
    let err = |e: pcg_core::frame::CodecError| e.to_string();
    if pcg_core::frame::is_claim_payload(payload) {
        // Belt and braces: the claim magic would also fail the model
        // name length check below (the bytes read as a ~1.1-billion
        // length), but a claim is a *valid* frame kind, not
        // corruption, and the error should say so.
        return Err("claim frame payload, not an entry".to_string());
    }
    let mut r = ByteReader::new(payload);
    let model = r.str().map_err(err)?.to_string();
    let task_index = r.u32().map_err(err)? as usize;
    let task = TaskId::from_index(task_index)
        .ok_or_else(|| format!("task index {task_index} out of range (0..{})", pcg_core::NUM_TASKS))?;
    let low = get_samples(&mut r)?;
    let high = if r.bool().map_err(err)? { Some(get_samples(&mut r)?) } else { None };
    let sweep_len = r.len(8).map_err(err)?;
    let mut sweep = BTreeMap::new();
    let mut last_key: Option<u32> = None;
    for _ in 0..sweep_len {
        let k = r.u32().map_err(err)?;
        if last_key.is_some_and(|prev| prev >= k) {
            return Err(format!("sweep keys out of order: {k} after {}", last_key.unwrap()));
        }
        last_key = Some(k);
        let n = r.len(8).map_err(err)?;
        let mut ratios = Vec::with_capacity(n);
        for _ in 0..n {
            ratios.push(r.f64().map_err(err)?);
        }
        sweep.insert(k, ratios);
    }
    if !r.is_exhausted() {
        return Err("trailing bytes after a complete entry".to_string());
    }
    Ok((model, TaskRecord { task, low, high, sweep }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcg_core::{ExecutionModel, ProblemId, ProblemType};

    fn rec() -> TaskRecord {
        TaskRecord {
            task: ProblemId::new(ProblemType::Sort, 2).task(ExecutionModel::Cuda),
            low: TaskSamples {
                built: vec![true, true, false],
                correct: vec![true, false, false],
                ratio: vec![2.5, 0.0, 0.0],
            },
            high: Some(TaskSamples {
                built: vec![true],
                correct: vec![false],
                ratio: vec![],
            }),
            sweep: BTreeMap::from([(2u32, vec![1.5, 0.0]), (8u32, vec![0.1])]),
        }
    }

    #[test]
    fn claim_payloads_never_decode_as_entries() {
        let claim = encode_claim(1);
        assert_eq!(decode_claim(&claim), Some(1));
        let err = decode_entry(&claim).unwrap_err();
        assert!(err.contains("claim"), "claim rejection must name the frame kind, got: {err}");
        // And entries never decode as claims.
        assert_eq!(decode_claim(&encode_entry("GPT-4", &rec())), None);
    }

    #[test]
    fn entry_roundtrips_exactly() {
        let original = rec();
        let payload = encode_entry("GPT-4", &original);
        let (model, back) = decode_entry(&payload).unwrap();
        assert_eq!(model, "GPT-4");
        assert_eq!(
            serde_json::to_string(&back).unwrap(),
            serde_json::to_string(&original).unwrap(),
            "the binary round trip must be JSON-byte-exact"
        );
    }

    #[test]
    fn special_floats_survive_the_roundtrip_bit_for_bit() {
        let mut r = rec();
        r.low.ratio = vec![f64::NAN, -0.0, f64::INFINITY, 0.1 + 0.2];
        r.high = None;
        let (_, back) = decode_entry(&encode_entry("m", &r)).unwrap();
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&back.low.ratio), bits(&r.low.ratio));
    }

    #[test]
    fn truncation_and_junk_are_rejected_at_every_cut() {
        let payload = encode_entry("CodeLlama-34B", &rec());
        for cut in 0..payload.len() {
            assert!(
                decode_entry(&payload[..cut]).is_err(),
                "a {cut}-byte prefix must not decode"
            );
        }
        // Trailing garbage after a complete entry.
        let mut extended = payload.clone();
        extended.push(0);
        assert!(decode_entry(&extended).is_err());
        // An out-of-range task index.
        let mut bad = payload.clone();
        let model_len = 4 + "CodeLlama-34B".len();
        bad[model_len..model_len + 4].copy_from_slice(&9999u32.to_le_bytes());
        assert!(decode_entry(&bad).is_err());
    }
}
