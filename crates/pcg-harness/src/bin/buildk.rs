//! Extension: build@k per execution model (computed by the paper's
//! harness in §7.3 but not shown as a figure).

use pcg_harness::{pipeline, report, EvalConfig};

fn main() {
    let cfg = EvalConfig::from_env();
    let opts = pipeline::RunOptions::from_cli();
    let record = pipeline::load_or_run_opts(None, &cfg, &opts);
    print!("{}", report::build_at_k_table(&record, 1));
}
