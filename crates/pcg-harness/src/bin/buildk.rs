//! Extension: build@k per execution model (computed by the paper's
//! harness in §7.3 but not shown as a figure).

use pcg_harness::{pipeline, report, scheduler, EvalConfig};

fn main() {
    let cfg = EvalConfig::from_env();
    let jobs = scheduler::jobs_from_cli();
    let record = pipeline::load_or_run_jobs(None, &cfg, jobs);
    print!("{}", report::build_at_k_table(&record, 1));
}
