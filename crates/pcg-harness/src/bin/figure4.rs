//! Regenerate Figure 4. Set PCG_FULL=1 for paper-scale settings.

use pcg_harness::{pipeline, report, scheduler, EvalConfig};

fn main() {
    let cfg = EvalConfig::from_env();
    let jobs = scheduler::jobs_from_cli();
    let record = pipeline::load_or_run_jobs(None, &cfg, jobs);
    print!("{}", report::figure4(&record));
}
