//! Extension: the paper notes (§6.2) that `speedup_n@k` and
//! `efficiency_n@k` "could be modified to be parameterized by problem
//! size instead of number of processors in order to study the
//! computational complexity of the generated code". This binary does
//! exactly that: it holds resources at the headline counts and sweeps
//! the workload size, printing `speedup_size@1` of the efficient
//! reference implementations per execution model.

use pcg_core::{CandidateKind, ExecutionModel, ProblemId, ProblemType, Quality};
use pcg_harness::{runner::Runner, EvalConfig};

fn main() {
    let problems = [
        ProblemId::new(ProblemType::Transform, 0),
        ProblemId::new(ProblemType::Stencil, 2),
        ProblemId::new(ProblemType::Reduce, 0),
    ];
    let execs = [
        ExecutionModel::OpenMp,
        ExecutionModel::Mpi,
        ExecutionModel::Cuda,
    ];
    println!("speedup_size@1 of the efficient reference implementations");
    println!("(resources fixed at headline n; workload size swept)\n");
    for exec in execs {
        println!("--- {} (n = {}) ---", exec.label(), exec.headline_n());
        print!("{:<28}", "problem \\ size divisor");
        for div in [32usize, 16, 8, 4, 2, 1] {
            print!("{:>8}", format!("1/{div}"));
        }
        println!();
        for pid in problems {
            print!("{:<28}", pid.to_string());
            for div in [32usize, 16, 8, 4, 2, 1] {
                let mut cfg = EvalConfig::quick();
                cfg.size_divisor = div;
                cfg.reps = 3;
                let mut runner = Runner::new(cfg);
                let task = pid.task(exec);
                let r = runner.ratio(
                    task,
                    CandidateKind::Correct(Quality::Efficient),
                    exec.headline_n(),
                );
                print!("{:>8.2}", r);
            }
            println!();
        }
        println!();
    }
    println!("Expected shape: speedup grows with problem size (overheads and");
    println!("communication amortize), the strong-scaling story of Figure 5");
    println!("read along the orthogonal axis.");
}
