//! Print the cross-process-deterministic projection of an `EvalRecord`
//! JSON file (and, with `--stats`, of an `EvalStats` sidecar, or with
//! `--cols`, of a columnar `.cols` sidecar).
//!
//! This binary is the projection CI diffs across processes — after a
//! kill-and-resume cycle, and between a merged sharded run and a
//! single-process run. It delegates to
//! [`pcg_harness::record::projection`], the same function the
//! warm-path, mux, and shard projection-equality tests call, so there
//! is exactly one definition of "deterministic fields" in the repo
//! (`ci/project_records.py` execs this binary instead of carrying a
//! hand-written copy). `--cols` reads the binary columnar stats store
//! the pipeline commits next to the cache and prints the identical
//! projection without touching a JSON parser — which also lets CI
//! cross-check the sidecar against its cache byte-for-byte.

use pcg_harness::colstats::ColumnarStats;
use pcg_harness::record::{projection, stats_projection, EvalStats};
use pcg_harness::EvalRecord;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (mode, path) = match args.as_slice() {
        [p] => ("record", p.clone()),
        [flag, p] if flag == "--stats" => ("stats", p.clone()),
        [flag, p] if flag == "--cols" => ("cols", p.clone()),
        _ => {
            eprintln!("usage: project_records [--stats|--cols] <records.json | records.json.cols>");
            std::process::exit(2);
        }
    };
    let bytes = match std::fs::read(&path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("project_records: cannot read {path}: {e}");
            std::process::exit(2);
        }
    };
    let projected = match mode {
        "stats" => match serde_json::from_slice::<EvalStats>(&bytes) {
            Ok(stats) => stats_projection(&stats),
            Err(e) => {
                eprintln!("project_records: {path} is not an EvalStats sidecar: {e}");
                std::process::exit(2);
            }
        },
        "cols" => match ColumnarStats::from_bytes(&bytes) {
            Ok(cols) => cols.projection(),
            Err(e) => {
                eprintln!("project_records: {path} is not a columnar stats sidecar: {e}");
                std::process::exit(2);
            }
        },
        _ => match serde_json::from_slice::<EvalRecord>(&bytes) {
            Ok(rec) => projection(&rec),
            Err(e) => {
                eprintln!("project_records: {path} is not an EvalRecord: {e}");
                std::process::exit(2);
            }
        },
    };
    print!("{projected}");
}
