//! Dump the rendered prompts of all 420 PCGBench tasks (or one
//! execution model's 60 with e.g. `-- kokkos`).

use pcg_core::ExecutionModel;
use pcg_harness::report;

fn main() {
    let filter = std::env::args().nth(1).and_then(|s| ExecutionModel::parse(&s));
    print!("{}", report::prompts(filter));
}
