//! Regenerate Figure 7. Set PCG_FULL=1 for paper-scale settings.

use pcg_harness::{pipeline, report, EvalConfig};

fn main() {
    let cfg = EvalConfig::from_env();
    let opts = pipeline::RunOptions::from_cli();
    let record = pipeline::load_or_run_opts(None, &cfg, &opts);
    print!("{}", report::figure7(&record));
}
