//! Dump the configured candidate source's sample pools to a directory
//! that [`pcg_models::ReplaySource`] can re-score offline.
//!
//! Every (row, task, temperature) pool the evaluation would request —
//! the low-temperature set always, the high-temperature set as long as
//! `skip_high_temp` is off — is sampled once and written in the
//! `pcg-candidate-pool-v1` text format. Re-running any binary with
//! `--replay-pool <dir>` (or `PCG_REPLAY_POOL=<dir>`) then scores those
//! exact candidates instead of drawing fresh ones, which is how CI
//! proves the dump → re-score loop reproduces the reference verdicts.
//!
//! Usage: `dump_pool <dir> [--smoke]` with the usual `PCG_*` config
//! environment. `--smoke` restricts the task list to the smoke subset
//! (one problem per type); the default is the full grid.

use pcg_harness::config::EvalConfig;
use pcg_harness::{eval, pipeline};
use pcg_models::SampleSpec;

fn main() {
    let cfg = EvalConfig::from_env();
    let mut dir = None;
    let mut smoke = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            // Already consumed by EvalConfig::from_env.
            "--prompt-variants" => {
                args.next();
            }
            s if s.starts_with("--prompt-variants=") => {}
            s if !s.starts_with("--") && dir.is_none() => {
                dir = Some(std::path::PathBuf::from(s));
            }
            s => {
                eprintln!("dump_pool: unexpected argument {s}");
                eprintln!("usage: dump_pool <dir> [--smoke] [--prompt-variants LIST]");
                std::process::exit(2);
            }
        }
    }
    let dir = dir.unwrap_or_else(|| {
        eprintln!("usage: dump_pool <dir> [--smoke] [--prompt-variants LIST]");
        std::process::exit(2);
    });

    let opts = pipeline::RunOptions::new(1);
    let source = pipeline::resolve_source(&cfg, &opts);
    let tasks = if smoke {
        eval::smoke_tasks()
    } else {
        pcg_core::task::all_tasks().collect()
    };
    // Pools carry candidates only; chaos is injected (or not) by the
    // run that scores them, so the dump always samples chaos-free.
    let specs = [
        SampleSpec::new(cfg.temp_low, cfg.samples_low, cfg.seed),
        SampleSpec::new(cfg.temp_high, cfg.samples_high, cfg.seed),
    ];
    if let Err(e) = pcg_models::dump_pool(&dir, &source, &tasks, &specs) {
        eprintln!("dump_pool: could not write {}: {e}", dir.display());
        std::process::exit(1);
    }
    let pool = match pcg_models::ReplaySource::open(&dir) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("dump_pool: wrote a pool that does not read back: {e}");
            std::process::exit(1);
        }
    };
    eprintln!(
        "[pcgbench] dumped {} pool rows × {} tasks to {} (content hash {:016x})",
        pcg_models::CandidateSource::model_names(&pool).len(),
        tasks.len(),
        dir.display(),
        pool.content_hash(),
    );
}
