//! Regenerate Table 1 (problem-type catalog).

fn main() {
    print!("{}", pcg_harness::report::table1());
}
