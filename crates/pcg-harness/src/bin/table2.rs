//! Regenerate Table 2 (model zoo).

fn main() {
    print!("{}", pcg_harness::report::table2());
}
