//! Run the full PCGBench evaluation and print every table and figure
//! plus the paper-vs-measured summary. Set PCG_FULL=1 for paper-scale
//! settings; the evaluation record is cached under target/pcgbench/.

use pcg_harness::{pipeline, report, EvalConfig};

fn main() {
    let cfg = EvalConfig::from_env();
    let opts = pipeline::RunOptions::from_cli();
    let record = pipeline::load_or_run_opts(None, &cfg, &opts);
    print!("{}", report::table1());
    print!("{}", report::table2());
    print!("{}", report::figure1(&record));
    print!("{}", report::figure2(&record));
    print!("{}", report::figure3(&record));
    print!("{}", report::figure4(&record));
    print!("{}", report::figure5(&record));
    print!("{}", report::figure6(&record));
    print!("{}", report::figure7(&record));
    print!("{}", report::experiments_summary(&record));
}
