//! Run the full PCGBench evaluation and print every table and figure
//! plus the paper-vs-measured summary. Set PCG_FULL=1 for paper-scale
//! settings; the evaluation record is cached under target/pcgbench/.
//!
//! Multi-process evaluation: `reproduce --shard k/N` (or `PCG_SHARD`)
//! runs one deterministic slice of the grid into a shard journal and
//! exits; after all N workers finish, `reproduce --merge-shards N` (or
//! `PCG_MERGE_SHARDS`) stitches the shard journals into the records
//! cache and prints the figures from it. `--jobs`, `--resume`, and the
//! warm path all compose with both modes.

use pcg_harness::{pipeline, report, EvalConfig};

fn main() {
    let cfg = EvalConfig::from_env();
    let opts = pipeline::RunOptions::from_cli();
    let record = pipeline::load_or_run_opts(None, &cfg, &opts);
    print!("{}", report::table1());
    print!("{}", report::table2());
    print!("{}", report::figure1(&record));
    print!("{}", report::figure2(&record));
    print!("{}", report::figure3(&record));
    print!("{}", report::figure4(&record));
    print!("{}", report::figure5(&record));
    print!("{}", report::figure6(&record));
    print!("{}", report::figure7(&record));
    if cfg.prompt_variants.len() > 1 {
        print!("{}", report::variant_summary(&record));
    }
    print!("{}", report::experiments_summary(&record));
}
