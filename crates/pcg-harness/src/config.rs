//! Evaluation configuration.

use pcg_core::PromptVariant;
use serde::{DeError, Deserialize, Serialize, Value};
use std::time::Duration;

/// Knobs for one full evaluation run.
///
/// Serialization is hand-written (not derived): the canonical JSON of
/// this struct *is* the config hash input, so the single-variant
/// default must keep producing the exact pre-variant bytes. The
/// `prompt_variants` field is emitted only when it differs from
/// `[PromptVariant::DEFAULT]`, and a missing field deserializes to
/// that default — old caches, journals, and hashes are untouched
/// unless a run actually asks for a variant grid.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalConfig {
    /// Global seed for workload generation and model sampling.
    pub seed: u64,
    /// Samples per task at the low temperature (paper: 20 @ 0.2).
    pub samples_low: usize,
    /// Samples per task at the high temperature (paper: 200 @ 0.8).
    pub samples_high: usize,
    /// Low sampling temperature.
    pub temp_low: f64,
    /// High sampling temperature.
    pub temp_high: f64,
    /// Workload size divisor applied to each problem's default size
    /// (1 = paper-scale shapes, larger = faster smoke runs).
    pub size_divisor: usize,
    /// Wall-clock limit per candidate run (the paper's 3-minute cap,
    /// scaled to our workload sizes).
    pub timeout: Duration,
    /// Timing repetitions per measured run (paper: 10).
    pub reps: usize,
    /// Skip the 200-sample high-temperature set entirely.
    pub skip_high_temp: bool,
    /// Skip the resource sweeps (Figure 5) and keep only headline-n
    /// performance.
    pub skip_sweeps: bool,
    /// Retry a candidate once after a hard failure (panic or timeout)
    /// and keep the second outcome. Off by default: the paper scores a
    /// single run, so retries are opt-in for flakiness studies.
    pub retry_flaky: bool,
    /// How long to wait, after cancelling a timed-out candidate, for
    /// its worker thread to unwind cooperatively before abandoning it.
    pub grace: Duration,
    /// Maximum number of abandoned (leaked) worker threads tolerated
    /// before the runner refuses to spawn new isolated workers and
    /// blocks until the leak count drops.
    pub max_abandoned: usize,
    /// Chaos-injection weight for the `Deadlock` defect kind, added to
    /// every model's failure mix (relative to the mix's other weights).
    /// Zero (the default) is an exact no-op on the sampled streams.
    /// Participates in the config hash like every other field.
    pub deadlock_rate: f64,
    /// Chaos-injection weight for the `StackHog` defect kind; see
    /// [`EvalConfig::deadlock_rate`].
    pub stack_hog_rate: f64,
    /// Prompt tiers to cross the model axis with. The grid gets one
    /// row per (model, variant); the default single-entry list
    /// `[PromptVariant::DEFAULT]` yields bare-named rows and the
    /// pre-variant config hash (the field is skipped when default, see
    /// the struct docs).
    pub prompt_variants: Vec<PromptVariant>,
}

/// The default prompt-variant axis: the paper's engineered prompt,
/// alone — the configuration every pre-variant artifact was keyed
/// under.
pub fn default_variants() -> Vec<PromptVariant> {
    vec![PromptVariant::DEFAULT]
}

/// Parse a comma-separated prompt-variant list (`naive,expert,rag`).
/// Rejects empty and duplicate entries: a typo'd axis silently
/// shrinking the grid would change the config hash out from under
/// sharded siblings.
pub fn parse_variants(s: &str) -> Result<Vec<PromptVariant>, String> {
    let mut out = Vec::new();
    for part in s.split(',') {
        let part = part.trim();
        let v = PromptVariant::parse(part)
            .ok_or_else(|| format!("unknown prompt variant `{part}`"))?;
        if out.contains(&v) {
            return Err(format!("duplicate prompt variant `{part}`"));
        }
        out.push(v);
    }
    if out.is_empty() {
        return Err("empty prompt-variant list".to_string());
    }
    Ok(out)
}

impl Serialize for EvalConfig {
    fn to_value(&self) -> Value {
        // Field order mirrors the old derive output exactly; the
        // trailing `prompt_variants` appears only off the default so
        // default-config bytes (and hashes) never move.
        let mut fields = vec![
            ("seed".to_string(), self.seed.to_value()),
            ("samples_low".to_string(), self.samples_low.to_value()),
            ("samples_high".to_string(), self.samples_high.to_value()),
            ("temp_low".to_string(), self.temp_low.to_value()),
            ("temp_high".to_string(), self.temp_high.to_value()),
            ("size_divisor".to_string(), self.size_divisor.to_value()),
            ("timeout".to_string(), self.timeout.to_value()),
            ("reps".to_string(), self.reps.to_value()),
            ("skip_high_temp".to_string(), self.skip_high_temp.to_value()),
            ("skip_sweeps".to_string(), self.skip_sweeps.to_value()),
            ("retry_flaky".to_string(), self.retry_flaky.to_value()),
            ("grace".to_string(), self.grace.to_value()),
            ("max_abandoned".to_string(), self.max_abandoned.to_value()),
            ("deadlock_rate".to_string(), self.deadlock_rate.to_value()),
            ("stack_hog_rate".to_string(), self.stack_hog_rate.to_value()),
        ];
        if self.prompt_variants != default_variants() {
            fields.push(("prompt_variants".to_string(), self.prompt_variants.to_value()));
        }
        Value::Obj(fields)
    }
}

impl Deserialize for EvalConfig {
    fn from_value(v: &Value) -> Result<EvalConfig, DeError> {
        Ok(EvalConfig {
            seed: u64::from_value(v.field("seed")?)?,
            samples_low: usize::from_value(v.field("samples_low")?)?,
            samples_high: usize::from_value(v.field("samples_high")?)?,
            temp_low: f64::from_value(v.field("temp_low")?)?,
            temp_high: f64::from_value(v.field("temp_high")?)?,
            size_divisor: usize::from_value(v.field("size_divisor")?)?,
            timeout: Duration::from_value(v.field("timeout")?)?,
            reps: usize::from_value(v.field("reps")?)?,
            skip_high_temp: bool::from_value(v.field("skip_high_temp")?)?,
            skip_sweeps: bool::from_value(v.field("skip_sweeps")?)?,
            retry_flaky: bool::from_value(v.field("retry_flaky")?)?,
            grace: Duration::from_value(v.field("grace")?)?,
            max_abandoned: usize::from_value(v.field("max_abandoned")?)?,
            deadlock_rate: match v.field("deadlock_rate") {
                Ok(f) => f64::from_value(f)?,
                Err(_) => 0.0,
            },
            stack_hog_rate: match v.field("stack_hog_rate") {
                Ok(f) => f64::from_value(f)?,
                Err(_) => 0.0,
            },
            prompt_variants: match v.field("prompt_variants") {
                Ok(f) => Vec::<PromptVariant>::from_value(f)?,
                Err(_) => default_variants(),
            },
        })
    }
}

impl EvalConfig {
    /// Paper-faithful settings (slow: full sizes, 200-sample runs).
    pub fn full() -> EvalConfig {
        EvalConfig {
            seed: 20240501,
            samples_low: 20,
            samples_high: 200,
            temp_low: 0.2,
            temp_high: 0.8,
            size_divisor: 1,
            timeout: Duration::from_secs(20),
            reps: 3,
            skip_high_temp: false,
            skip_sweeps: false,
            retry_flaky: false,
            grace: Duration::from_secs(2),
            max_abandoned: 64,
            deadlock_rate: 0.0,
            stack_hog_rate: 0.0,
            prompt_variants: default_variants(),
        }
    }

    /// Reduced settings for regenerating every figure in minutes.
    pub fn quick() -> EvalConfig {
        EvalConfig {
            samples_high: 60,
            size_divisor: 8,
            reps: 1,
            ..EvalConfig::full()
        }
    }

    /// Tiny settings for integration tests (a subset of tasks is chosen
    /// by the caller).
    pub fn smoke() -> EvalConfig {
        EvalConfig {
            samples_low: 6,
            samples_high: 10,
            size_divisor: 64,
            reps: 1,
            skip_high_temp: false,
            skip_sweeps: true,
            ..EvalConfig::full()
        }
    }

    /// Pick quick/full from the `PCG_FULL` environment variable.
    ///
    /// `PCG_SEED` overrides the seed. `PCG_TIMEOUT` (whole seconds)
    /// overrides the per-candidate time limit — multi-process CI runs
    /// set it so that wall-clock verdicts stay load-independent when N
    /// worker processes contend for the same cores (the timeout is part
    /// of the config, so workers, merge, and the reference run must all
    /// share one value).
    pub fn from_env() -> EvalConfig {
        let mut cfg = if std::env::var_os("PCG_FULL").is_some() {
            EvalConfig::full()
        } else {
            EvalConfig::quick()
        };
        if let Ok(seed) = std::env::var("PCG_SEED") {
            if let Ok(seed) = seed.parse() {
                cfg.seed = seed;
            }
        }
        if let Ok(secs) = std::env::var("PCG_TIMEOUT") {
            if let Ok(secs) = secs.parse() {
                cfg.timeout = Duration::from_secs(secs);
            }
        }
        if let Ok(rate) = std::env::var("PCG_DEADLOCK_RATE") {
            if let Ok(rate) = rate.parse() {
                cfg.deadlock_rate = rate;
            }
        }
        if let Ok(rate) = std::env::var("PCG_STACK_HOG_RATE") {
            if let Ok(rate) = rate.parse() {
                cfg.stack_hog_rate = rate;
            }
        }
        // `--prompt-variants naive,expert,rag` on any binary's command
        // line beats the `PCG_PROMPT_VARIANTS` env fallback. Unlike the
        // numeric overrides, a malformed variant list is fatal:
        // silently ignoring it would run (and hash) a different grid
        // than the one asked for.
        let variants = prompt_variants_flag()
            .or_else(|| std::env::var("PCG_PROMPT_VARIANTS").ok().filter(|s| !s.is_empty()));
        if let Some(list) = variants {
            match parse_variants(&list) {
                Ok(vs) => cfg.prompt_variants = vs,
                Err(e) => {
                    eprintln!("--prompt-variants: {e}");
                    std::process::exit(2);
                }
            }
        }
        cfg
    }

    /// The workload size used for a problem's default size.
    pub fn size_for(&self, default_size: usize) -> usize {
        (default_size / self.size_divisor.max(1)).max(64)
    }
}

/// The cost-priors source requested via the `PCG_PRIORS` environment
/// variable (the env fallback for `--priors`): a records cache or
/// `.cols` sidecar path, or the literal `default` for the committed
/// analytic profile.
///
/// Deliberately **not** a field of [`EvalConfig`]: priors steer *when
/// and where* cells run, never what they compute, so they must stay
/// out of the config hash — otherwise switching priors would re-key
/// every [`pcg_core::plan::CellId`] and invalidate caches and journals
/// whose bytes are in fact still exactly right.
pub fn priors_source() -> Option<String> {
    std::env::var("PCG_PRIORS").ok().filter(|s| !s.is_empty())
}

/// The value of `--prompt-variants` on this process's command line, in
/// either `--prompt-variants naive,rag` or `--prompt-variants=naive,rag`
/// form.
fn prompt_variants_flag() -> Option<String> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--prompt-variants" {
            return args.next();
        }
        if let Some(v) = a.strip_prefix("--prompt-variants=") {
            return Some(v.to_string());
        }
    }
    None
}

/// The `PCG_STEAL` switch (env fallback for `--steal`/`--no-steal`):
/// whether shard workers steal whole cells from lagging siblings.
/// Like [`priors_source`], deliberately outside the config hash —
/// stealing relocates evaluations between processes, it never changes
/// the bytes they produce.
pub fn steal_source() -> Option<String> {
    std::env::var("PCG_STEAL").ok().filter(|s| !s.is_empty())
}

/// The `PCG_REPLAY_POOL` directory (env fallback for `--replay-pool`):
/// score a dumped candidate pool from this directory instead of
/// sampling the synthetic zoo. Not an [`EvalConfig`] field, but —
/// unlike priors or stealing — it *does* enter the config hash: the
/// pool's content hash arrives as the source's config salt, so a
/// resumed or sharded run can never splice cells from different pools.
pub fn replay_pool_source() -> Option<String> {
    std::env::var("PCG_REPLAY_POOL").ok().filter(|s| !s.is_empty())
}

/// The `PCG_KEEP_SHARDS` switch (env fallback for `--keep-shards`):
/// whether `--merge-shards` preserves the consumed shard journals and
/// stats sidecars for post-mortem inspection instead of deleting them.
pub fn keep_shards_source() -> Option<String> {
    std::env::var("PCG_KEEP_SHARDS").ok().filter(|s| !s.is_empty())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_is_smaller_than_full() {
        let q = EvalConfig::quick();
        let f = EvalConfig::full();
        assert!(q.size_divisor > f.size_divisor);
        assert!(q.samples_high <= f.samples_high);
        assert_eq!(q.samples_low, 20, "pass@1 sampling stays paper-faithful");
    }

    #[test]
    fn size_for_scales_and_floors() {
        let cfg = EvalConfig { size_divisor: 8, ..EvalConfig::full() };
        assert_eq!(cfg.size_for(1 << 16), 1 << 13);
        assert_eq!(cfg.size_for(100), 64);
    }

    #[test]
    fn default_variant_config_omits_the_field() {
        let json = serde_json::to_string(&EvalConfig::smoke()).unwrap();
        assert!(
            !json.contains("prompt_variants"),
            "default config bytes must stay pre-variant: {json}"
        );
        let back: EvalConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, EvalConfig::smoke());
        assert_eq!(back.prompt_variants, default_variants());
    }

    #[test]
    fn variant_config_round_trips() {
        let cfg = EvalConfig {
            prompt_variants: vec![
                PromptVariant::Naive,
                PromptVariant::Expert,
                PromptVariant::RagAugmented,
            ],
            ..EvalConfig::smoke()
        };
        let json = serde_json::to_string(&cfg).unwrap();
        assert!(json.contains("\"prompt_variants\":[\"Naive\",\"Expert\",\"RagAugmented\"]"));
        let back: EvalConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, cfg);
    }

    #[test]
    fn parse_variants_accepts_lists_and_rejects_garbage() {
        assert_eq!(
            parse_variants("naive,expert,rag").unwrap(),
            vec![PromptVariant::Naive, PromptVariant::Expert, PromptVariant::RagAugmented]
        );
        assert!(parse_variants("").is_err());
        assert!(parse_variants("expert,expert").is_err());
        assert!(parse_variants("grandmaster").is_err());
    }
}
