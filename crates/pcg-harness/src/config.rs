//! Evaluation configuration.

use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Knobs for one full evaluation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvalConfig {
    /// Global seed for workload generation and model sampling.
    pub seed: u64,
    /// Samples per task at the low temperature (paper: 20 @ 0.2).
    pub samples_low: usize,
    /// Samples per task at the high temperature (paper: 200 @ 0.8).
    pub samples_high: usize,
    /// Low sampling temperature.
    pub temp_low: f64,
    /// High sampling temperature.
    pub temp_high: f64,
    /// Workload size divisor applied to each problem's default size
    /// (1 = paper-scale shapes, larger = faster smoke runs).
    pub size_divisor: usize,
    /// Wall-clock limit per candidate run (the paper's 3-minute cap,
    /// scaled to our workload sizes).
    pub timeout: Duration,
    /// Timing repetitions per measured run (paper: 10).
    pub reps: usize,
    /// Skip the 200-sample high-temperature set entirely.
    pub skip_high_temp: bool,
    /// Skip the resource sweeps (Figure 5) and keep only headline-n
    /// performance.
    pub skip_sweeps: bool,
    /// Retry a candidate once after a hard failure (panic or timeout)
    /// and keep the second outcome. Off by default: the paper scores a
    /// single run, so retries are opt-in for flakiness studies.
    pub retry_flaky: bool,
    /// How long to wait, after cancelling a timed-out candidate, for
    /// its worker thread to unwind cooperatively before abandoning it.
    pub grace: Duration,
    /// Maximum number of abandoned (leaked) worker threads tolerated
    /// before the runner refuses to spawn new isolated workers and
    /// blocks until the leak count drops.
    pub max_abandoned: usize,
    /// Chaos-injection weight for the `Deadlock` defect kind, added to
    /// every model's failure mix (relative to the mix's other weights).
    /// Zero (the default) is an exact no-op on the sampled streams.
    /// Participates in the config hash like every other field.
    #[serde(default)]
    pub deadlock_rate: f64,
    /// Chaos-injection weight for the `StackHog` defect kind; see
    /// [`EvalConfig::deadlock_rate`].
    #[serde(default)]
    pub stack_hog_rate: f64,
}

impl EvalConfig {
    /// Paper-faithful settings (slow: full sizes, 200-sample runs).
    pub fn full() -> EvalConfig {
        EvalConfig {
            seed: 20240501,
            samples_low: 20,
            samples_high: 200,
            temp_low: 0.2,
            temp_high: 0.8,
            size_divisor: 1,
            timeout: Duration::from_secs(20),
            reps: 3,
            skip_high_temp: false,
            skip_sweeps: false,
            retry_flaky: false,
            grace: Duration::from_secs(2),
            max_abandoned: 64,
            deadlock_rate: 0.0,
            stack_hog_rate: 0.0,
        }
    }

    /// Reduced settings for regenerating every figure in minutes.
    pub fn quick() -> EvalConfig {
        EvalConfig {
            samples_high: 60,
            size_divisor: 8,
            reps: 1,
            ..EvalConfig::full()
        }
    }

    /// Tiny settings for integration tests (a subset of tasks is chosen
    /// by the caller).
    pub fn smoke() -> EvalConfig {
        EvalConfig {
            samples_low: 6,
            samples_high: 10,
            size_divisor: 64,
            reps: 1,
            skip_high_temp: false,
            skip_sweeps: true,
            ..EvalConfig::full()
        }
    }

    /// Pick quick/full from the `PCG_FULL` environment variable.
    ///
    /// `PCG_SEED` overrides the seed. `PCG_TIMEOUT` (whole seconds)
    /// overrides the per-candidate time limit — multi-process CI runs
    /// set it so that wall-clock verdicts stay load-independent when N
    /// worker processes contend for the same cores (the timeout is part
    /// of the config, so workers, merge, and the reference run must all
    /// share one value).
    pub fn from_env() -> EvalConfig {
        let mut cfg = if std::env::var_os("PCG_FULL").is_some() {
            EvalConfig::full()
        } else {
            EvalConfig::quick()
        };
        if let Ok(seed) = std::env::var("PCG_SEED") {
            if let Ok(seed) = seed.parse() {
                cfg.seed = seed;
            }
        }
        if let Ok(secs) = std::env::var("PCG_TIMEOUT") {
            if let Ok(secs) = secs.parse() {
                cfg.timeout = Duration::from_secs(secs);
            }
        }
        if let Ok(rate) = std::env::var("PCG_DEADLOCK_RATE") {
            if let Ok(rate) = rate.parse() {
                cfg.deadlock_rate = rate;
            }
        }
        if let Ok(rate) = std::env::var("PCG_STACK_HOG_RATE") {
            if let Ok(rate) = rate.parse() {
                cfg.stack_hog_rate = rate;
            }
        }
        cfg
    }

    /// The workload size used for a problem's default size.
    pub fn size_for(&self, default_size: usize) -> usize {
        (default_size / self.size_divisor.max(1)).max(64)
    }
}

/// The cost-priors source requested via the `PCG_PRIORS` environment
/// variable (the env fallback for `--priors`): a records cache or
/// `.cols` sidecar path, or the literal `default` for the committed
/// analytic profile.
///
/// Deliberately **not** a field of [`EvalConfig`]: priors steer *when
/// and where* cells run, never what they compute, so they must stay
/// out of the config hash — otherwise switching priors would re-key
/// every [`pcg_core::plan::CellId`] and invalidate caches and journals
/// whose bytes are in fact still exactly right.
pub fn priors_source() -> Option<String> {
    std::env::var("PCG_PRIORS").ok().filter(|s| !s.is_empty())
}

/// The `PCG_STEAL` switch (env fallback for `--steal`/`--no-steal`):
/// whether shard workers steal whole cells from lagging siblings.
/// Like [`priors_source`], deliberately outside the config hash —
/// stealing relocates evaluations between processes, it never changes
/// the bytes they produce.
pub fn steal_source() -> Option<String> {
    std::env::var("PCG_STEAL").ok().filter(|s| !s.is_empty())
}

/// The `PCG_KEEP_SHARDS` switch (env fallback for `--keep-shards`):
/// whether `--merge-shards` preserves the consumed shard journals and
/// stats sidecars for post-mortem inspection instead of deleting them.
pub fn keep_shards_source() -> Option<String> {
    std::env::var("PCG_KEEP_SHARDS").ok().filter(|s| !s.is_empty())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_is_smaller_than_full() {
        let q = EvalConfig::quick();
        let f = EvalConfig::full();
        assert!(q.size_divisor > f.size_divisor);
        assert!(q.samples_high <= f.samples_high);
        assert_eq!(q.samples_low, 20, "pass@1 sampling stays paper-faithful");
    }

    #[test]
    fn size_for_scales_and_floors() {
        let cfg = EvalConfig { size_divisor: 8, ..EvalConfig::full() };
        assert_eq!(cfg.size_for(1 << 16), 1 << 13);
        assert_eq!(cfg.size_for(100), 64);
    }
}
