//! Disk-cached end-to-end evaluation used by the figure binaries.

use crate::config::EvalConfig;
use crate::eval::evaluate;
use crate::record::EvalRecord;
use std::path::{Path, PathBuf};

/// Default cache path for a config (quick and full runs cache
/// separately).
pub fn default_cache_path(cfg: &EvalConfig) -> PathBuf {
    let tag = if cfg.size_divisor == 1 { "full" } else { "quick" };
    PathBuf::from("target").join("pcgbench").join(format!("records-{tag}.json"))
}

/// Load a cached evaluation record if it matches `cfg`, else run the
/// full evaluation (all 7 models, all 420 tasks) and cache it.
pub fn load_or_run(path: Option<&Path>, cfg: &EvalConfig) -> EvalRecord {
    let path = path.map(Path::to_path_buf).unwrap_or_else(|| default_cache_path(cfg));
    if let Ok(bytes) = std::fs::read(&path) {
        if let Ok(rec) = serde_json::from_slice::<EvalRecord>(&bytes) {
            if rec.config == *cfg {
                eprintln!("[pcgbench] loaded cached records from {}", path.display());
                return rec;
            }
            eprintln!("[pcgbench] cache config mismatch; re-running evaluation");
        }
    }
    eprintln!(
        "[pcgbench] running evaluation (7 models x 420 tasks, size/{}, {} low samples)...",
        cfg.size_divisor, cfg.samples_low
    );
    let t0 = std::time::Instant::now();
    let record = evaluate(cfg, &pcg_models::zoo(), None);
    eprintln!("[pcgbench] evaluation finished in {:.1}s", t0.elapsed().as_secs_f64());
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    match serde_json::to_vec(&record) {
        Ok(bytes) => {
            if let Err(e) = std::fs::write(&path, bytes) {
                eprintln!("[pcgbench] warning: could not cache records: {e}");
            } else {
                eprintln!("[pcgbench] cached records at {}", path.display());
            }
        }
        Err(e) => eprintln!("[pcgbench] warning: could not serialize records: {e}"),
    }
    record
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_paths_distinguish_modes() {
        let q = default_cache_path(&EvalConfig::quick());
        let f = default_cache_path(&EvalConfig::full());
        assert_ne!(q, f);
    }
}
