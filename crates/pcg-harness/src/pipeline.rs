//! Disk-cached end-to-end evaluation used by the figure binaries.

use crate::config::EvalConfig;
use crate::eval::evaluate_with;
use crate::record::{EvalRecord, EvalStats};
use crate::runner::SharedRunner;
use crate::scheduler;
use std::path::{Path, PathBuf};

/// Default cache path for a config (quick and full runs cache
/// separately).
pub fn default_cache_path(cfg: &EvalConfig) -> PathBuf {
    let tag = if cfg.size_divisor == 1 { "full" } else { "quick" };
    PathBuf::from("target").join("pcgbench").join(format!("records-{tag}.json"))
}

/// Sidecar path for the scheduler stats of a cached run. Stats live
/// outside the record because they are timing-dependent, while the
/// record must be byte-identical across worker counts.
pub fn stats_path(cfg: &EvalConfig) -> PathBuf {
    let tag = if cfg.size_divisor == 1 { "full" } else { "quick" };
    PathBuf::from("target").join("pcgbench").join(format!("records-{tag}.stats.json"))
}

/// [`load_or_run_jobs`] at the default worker count (`PCG_JOBS` env var
/// if set, else the machine's available parallelism).
pub fn load_or_run(path: Option<&Path>, cfg: &EvalConfig) -> EvalRecord {
    load_or_run_jobs(path, cfg, scheduler::default_jobs())
}

/// Load a cached evaluation record if it matches `cfg`, else run the
/// full evaluation (all 7 models, all 420 tasks) on `jobs` workers and
/// cache it. The cache is jobs-agnostic: records are byte-identical at
/// any worker count, so a cache written at `--jobs 8` serves `--jobs 1`.
pub fn load_or_run_jobs(path: Option<&Path>, cfg: &EvalConfig, jobs: usize) -> EvalRecord {
    let path = path.map(Path::to_path_buf).unwrap_or_else(|| default_cache_path(cfg));
    if let Ok(bytes) = std::fs::read(&path) {
        if let Ok(rec) = serde_json::from_slice::<EvalRecord>(&bytes) {
            if rec.config == *cfg {
                eprintln!("[pcgbench] loaded cached records from {}", path.display());
                return rec;
            }
            eprintln!("[pcgbench] cache config mismatch; re-running evaluation");
        }
    }
    eprintln!(
        "[pcgbench] running evaluation (7 models x 420 tasks, size/{}, {} low samples, {} worker{})...",
        cfg.size_divisor,
        cfg.samples_low,
        jobs,
        if jobs == 1 { "" } else { "s" },
    );
    let runner = SharedRunner::new(cfg.clone());
    let (record, stats) = evaluate_with(cfg, &pcg_models::zoo(), None, jobs, &runner);
    eprintln!("[pcgbench] evaluation finished in {:.1}s", stats.wall_s);
    eprint!("{}", crate::report::stats_summary(&stats));
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    match serde_json::to_vec(&record) {
        Ok(bytes) => {
            if let Err(e) = std::fs::write(&path, bytes) {
                eprintln!("[pcgbench] warning: could not cache records: {e}");
            } else {
                eprintln!("[pcgbench] cached records at {}", path.display());
            }
        }
        Err(e) => eprintln!("[pcgbench] warning: could not serialize records: {e}"),
    }
    write_stats(cfg, &stats);
    record
}

fn write_stats(cfg: &EvalConfig, stats: &EvalStats) {
    let path = stats_path(cfg);
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    if let Ok(bytes) = serde_json::to_vec(stats) {
        let _ = std::fs::write(&path, bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_paths_distinguish_modes() {
        let q = default_cache_path(&EvalConfig::quick());
        let f = default_cache_path(&EvalConfig::full());
        assert_ne!(q, f);
        assert_ne!(stats_path(&EvalConfig::quick()), q);
    }
}
