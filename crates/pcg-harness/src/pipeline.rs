//! Disk-cached end-to-end evaluation used by the figure binaries.
//!
//! Crash safety: while a grid runs, every completed cell is appended to
//! a cell-addressed write-ahead journal next to the cache file
//! (fsync'd per line, keyed by the cell's globally stable
//! [`pcg_core::plan::CellId`]). The final cache and stats sidecar are
//! committed atomically (temp file + rename), so readers never observe
//! a torn record; the journal is deleted only after the cache commit
//! succeeds. A run killed at any point can be restarted with `--resume`
//! and will re-evaluate only the cells the journal does not already
//! hold — and, if the journal accumulated stale lines (torn tails,
//! shadowed duplicate appends), resume first compacts it in place.
//!
//! Multi-process mode: `--shard k/N` runs one deterministic slice of
//! the grid into its own journal and exits; `--merge-shards N` stitches
//! the N shard journals into a records cache byte-identical to a
//! single-process run (see [`crate::shard`]).

use crate::config::EvalConfig;
use crate::eval::evaluate_resumable_priors;
use crate::journal::{self, Journal};
use crate::record::{EvalRecord, EvalStats};
use crate::runner::SharedRunner;
use crate::scheduler;
use pcg_core::plan::{CellId, ShardSpec};
use pcg_core::{CandidateKind, CostPriors, TaskId};
use pcg_models::{CandidateSource, ReplaySource, SampleSpec, SyntheticSource};
use std::collections::HashMap;
use std::fs::File;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Default cache path for a config (quick and full runs cache
/// separately).
pub fn default_cache_path(cfg: &EvalConfig) -> PathBuf {
    let tag = if cfg.size_divisor == 1 { "full" } else { "quick" };
    PathBuf::from("target").join("pcgbench").join(format!("records-{tag}.json"))
}

/// Sidecar path for the scheduler stats of a cached run. Stats live
/// outside the record because they are timing-dependent, while the
/// record must be byte-identical across worker counts.
pub fn stats_path(cfg: &EvalConfig) -> PathBuf {
    let tag = if cfg.size_divisor == 1 { "full" } else { "quick" };
    PathBuf::from("target").join("pcgbench").join(format!("records-{tag}.stats.json"))
}

/// How a pipeline run is driven, as parsed from a figure binary's
/// command line.
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Worker count for the evaluation grid.
    pub jobs: usize,
    /// Replay a matching write-ahead journal left by an interrupted
    /// run, evaluating only the missing cells (`--resume`).
    pub resume: bool,
    /// Keep a write-ahead journal while running (`--no-journal`
    /// disables it, trading crash safety for fewer fsyncs).
    pub journal: bool,
    /// Run only the cells of one shard (`--shard k/N`) into a shard
    /// journal, then exit — worker mode for multi-process evaluation.
    pub shard: Option<ShardSpec>,
    /// Merge N shard journals into the records cache instead of
    /// evaluating (`--merge-shards N`).
    pub merge_shards: Option<u32>,
    /// Cost-priors source for adaptive scheduling (`--priors <path>` /
    /// `PCG_PRIORS`): a records cache or `.cols` sidecar whose measured
    /// cell walls become the scheduling cost table, or the literal
    /// `default` for the committed analytic profile. `None` schedules
    /// round-robin and shards by `id % count`, exactly as before.
    pub priors: Option<String>,
    /// Let shard workers steal whole cells from lagging siblings after
    /// draining their own partition (`--steal` / `--no-steal`, env
    /// `PCG_STEAL`). On by default; only effective in worker mode — a
    /// single-process run has no siblings to steal from. Like priors,
    /// deliberately outside the config hash: stealing moves cells
    /// between processes, never changes what they compute.
    pub steal: bool,
    /// Keep the per-shard journals and stats sidecars after a
    /// successful merge instead of deleting them (`--keep-shards` /
    /// `PCG_KEEP_SHARDS`), for post-mortem inspection of who evaluated
    /// — and who stole — what.
    pub keep_shards: bool,
    /// Score a dumped candidate pool from this directory instead of
    /// sampling the synthetic zoo (`--replay-pool <dir>` /
    /// `PCG_REPLAY_POOL`). The pool's content hash enters the config
    /// hash as the source's salt, so replay runs cache, journal,
    /// shard, and merge under their own cell ids.
    pub replay_pool: Option<String>,
}

impl RunOptions {
    /// Options for `jobs` workers with journaling on and resume off.
    pub fn new(jobs: usize) -> RunOptions {
        RunOptions {
            jobs,
            resume: false,
            journal: true,
            shard: None,
            merge_shards: None,
            priors: None,
            steal: true,
            keep_shards: false,
            replay_pool: None,
        }
    }

    /// Parse `--jobs N`, `--resume`, `--no-journal`, `--shard k/N`
    /// (env fallback `PCG_SHARD`), `--merge-shards N` (env fallback
    /// `PCG_MERGE_SHARDS`), `--priors SRC` (env fallback `PCG_PRIORS`),
    /// `--steal`/`--no-steal` (env fallback `PCG_STEAL`, default on),
    /// and `--keep-shards` (env fallback `PCG_KEEP_SHARDS`) from the
    /// process arguments (exits with code 2 on a malformed value, like
    /// [`scheduler::jobs_from_cli`]).
    pub fn from_cli() -> RunOptions {
        let has = |flag: &str| std::env::args().any(|a| a == flag);
        RunOptions {
            jobs: scheduler::jobs_from_cli(),
            resume: has("--resume"),
            journal: !has("--no-journal"),
            shard: shard_from_cli(),
            merge_shards: merge_from_cli(),
            priors: flag_value("--priors").or_else(crate::config::priors_source),
            steal: steal_from_cli(),
            keep_shards: keep_shards_from_cli(),
            replay_pool: flag_value("--replay-pool")
                .or_else(crate::config::replay_pool_source),
        }
    }

    /// The options with a priors source swapped in (builder-style, for
    /// tests and benches).
    pub fn with_priors(mut self, src: impl Into<String>) -> RunOptions {
        self.priors = Some(src.into());
        self
    }

    /// The options with a replay-pool directory swapped in
    /// (builder-style, for tests and benches).
    pub fn with_replay_pool(mut self, dir: impl Into<String>) -> RunOptions {
        self.replay_pool = Some(dir.into());
        self
    }
}

/// The candidate source a pipeline run scores: the synthetic zoo
/// crossed with the config's prompt variants (the default), or a
/// dumped candidate pool replayed from a directory. Resolved once per
/// run by [`resolve_source`] and threaded through planning, journal
/// identity, and evaluation.
pub enum ResolvedSource {
    /// The calibrated zoo under `cfg.prompt_variants`.
    Synthetic(SyntheticSource),
    /// A dumped pool re-scored offline-deterministically.
    Replay(ReplaySource),
}

impl CandidateSource for ResolvedSource {
    fn model_names(&self) -> Vec<String> {
        match self {
            ResolvedSource::Synthetic(s) => s.model_names(),
            ResolvedSource::Replay(r) => r.model_names(),
        }
    }

    fn weights_available(&self, model: usize) -> bool {
        match self {
            ResolvedSource::Synthetic(s) => s.weights_available(model),
            ResolvedSource::Replay(r) => r.weights_available(model),
        }
    }

    fn sample(&self, model: usize, task: TaskId, spec: &SampleSpec) -> Vec<CandidateKind> {
        match self {
            ResolvedSource::Synthetic(s) => s.sample(model, task, spec),
            ResolvedSource::Replay(r) => r.sample(model, task, spec),
        }
    }

    fn config_salt(&self) -> Vec<u8> {
        match self {
            ResolvedSource::Synthetic(s) => s.config_salt(),
            ResolvedSource::Replay(r) => r.config_salt(),
        }
    }
}

/// Resolve the run's candidate source from config and options. Exits
/// with code 2 on an unusable combination — a replay pool that does
/// not load, or one combined with knobs that change what a pool would
/// have contained (prompt variants, chaos injection): degrading
/// silently to the zoo would score the wrong thing under the wrong
/// hash, and cooperating shard workers must all fail the same way.
pub fn resolve_source(cfg: &EvalConfig, opts: &RunOptions) -> ResolvedSource {
    let Some(dir) = opts.replay_pool.as_deref() else {
        return ResolvedSource::Synthetic(SyntheticSource::zoo(&cfg.prompt_variants));
    };
    if cfg.prompt_variants != crate::config::default_variants() {
        eprintln!(
            "[pcgbench] error: --replay-pool and --prompt-variants are mutually exclusive: \
             a pool's rows are fixed by its manifest"
        );
        std::process::exit(2);
    }
    if cfg.deadlock_rate != 0.0 || cfg.stack_hog_rate != 0.0 {
        eprintln!(
            "[pcgbench] error: chaos injection cannot be combined with --replay-pool: \
             a dumped pool's contents are fixed"
        );
        std::process::exit(2);
    }
    match ReplaySource::open(Path::new(dir)) {
        Ok(r) => {
            eprintln!(
                "[pcgbench] replay pool: {} rows from {} (content hash {:016x})",
                r.model_names().len(),
                dir,
                r.content_hash(),
            );
            ResolvedSource::Replay(r)
        }
        Err(e) => {
            eprintln!("[pcgbench] error: could not open replay pool {dir}: {e}");
            std::process::exit(2);
        }
    }
}

/// The cache path a run commits to: the caller's explicit path, the
/// config-tagged default, or — for a replay-pool run — a pool-hash
/// qualified variant of the default, so a replayed scoring can never
/// satisfy (or clobber) the synthetic cache for the same config.
pub(crate) fn cache_path_for(
    path: Option<&Path>,
    cfg: &EvalConfig,
    source: &ResolvedSource,
) -> PathBuf {
    if let Some(p) = path {
        return p.to_path_buf();
    }
    match source {
        ResolvedSource::Synthetic(_) => default_cache_path(cfg),
        ResolvedSource::Replay(r) => {
            let tag = if cfg.size_divisor == 1 { "full" } else { "quick" };
            PathBuf::from("target")
                .join("pcgbench")
                .join(format!("records-{tag}-pool{:016x}.json", r.content_hash()))
        }
    }
}

/// Resolve the options' priors source into a loaded [`CostPriors`]
/// table. `None` means "no priors" (legacy scheduling); any failure to
/// load a named source degrades loudly to the committed default
/// profile rather than silently to legacy scheduling, so cooperating
/// shard workers that all pass the same broken path still agree on the
/// partition.
pub fn load_priors(opts: &RunOptions) -> Option<CostPriors> {
    let src = opts.priors.as_deref()?;
    if src == "default" {
        return Some(CostPriors::default_profile());
    }
    let path = Path::new(src);
    // Accept either the `.cols` sidecar itself or the records cache it
    // sits next to.
    let sidecar = if path.extension().is_some_and(|e| e == "cols") {
        path.to_path_buf()
    } else {
        crate::colstats::cols_path(path)
    };
    match crate::colstats::ColumnarStats::read(&sidecar) {
        Ok(cols) => match cols.cost_priors(src) {
            Some(p) => {
                eprintln!(
                    "[pcgbench] priors: {} measured cell walls from {} (hash {:016x})",
                    p.len(),
                    sidecar.display(),
                    p.hash(),
                );
                Some(p)
            }
            None => {
                eprintln!(
                    "[pcgbench] warning: {} carries no measured walls; using the default cost profile",
                    sidecar.display(),
                );
                Some(CostPriors::default_profile())
            }
        },
        Err(e) => {
            eprintln!(
                "[pcgbench] warning: could not read priors from {}: {e}; using the default cost profile",
                sidecar.display(),
            );
            Some(CostPriors::default_profile())
        }
    }
}

/// `--shard k/N` / `--shard=k/N` from the arguments, else the
/// `PCG_SHARD` environment variable. Exits with code 2 on a malformed
/// spec.
fn shard_from_cli() -> Option<ShardSpec> {
    let raw = flag_value("--shard").or_else(|| std::env::var("PCG_SHARD").ok())?;
    match ShardSpec::parse(&raw) {
        Ok(spec) => Some(spec),
        Err(e) => {
            eprintln!("[pcgbench] invalid shard spec {raw:?}: {e}");
            std::process::exit(2);
        }
    }
}

/// `--merge-shards N` / `--merge-shards=N` from the arguments, else
/// the `PCG_MERGE_SHARDS` environment variable. Exits with code 2 on a
/// malformed count.
fn merge_from_cli() -> Option<u32> {
    let raw = flag_value("--merge-shards").or_else(|| std::env::var("PCG_MERGE_SHARDS").ok())?;
    match raw.parse::<u32>() {
        Ok(n) if n >= 1 => Some(n),
        _ => {
            eprintln!("[pcgbench] invalid shard count {raw:?}: expected a positive integer");
            std::process::exit(2);
        }
    }
}

/// Parse a boolean switch value (`1/true/on/yes` vs `0/false/off/no`,
/// case-insensitive). Exits with code 2 on anything else — a typo'd
/// `PCG_STEAL=ture` silently defaulting would be worse than stopping.
fn switch(raw: &str, what: &str) -> bool {
    match raw.trim().to_ascii_lowercase().as_str() {
        "1" | "true" | "on" | "yes" => true,
        "0" | "false" | "off" | "no" => false,
        _ => {
            eprintln!("[pcgbench] invalid {what} value {raw:?}: expected 1/true/on or 0/false/off");
            std::process::exit(2);
        }
    }
}

/// `--steal` / `--no-steal` from the arguments (explicit flags win),
/// else the `PCG_STEAL` environment variable, else on.
fn steal_from_cli() -> bool {
    let has = |flag: &str| std::env::args().any(|a| a == flag);
    if has("--no-steal") {
        return false;
    }
    if has("--steal") {
        return true;
    }
    crate::config::steal_source().is_none_or(|raw| switch(&raw, "PCG_STEAL"))
}

/// `--keep-shards` from the arguments, else the `PCG_KEEP_SHARDS`
/// environment variable, else off.
fn keep_shards_from_cli() -> bool {
    if std::env::args().any(|a| a == "--keep-shards") {
        return true;
    }
    crate::config::keep_shards_source().is_some_and(|raw| switch(&raw, "PCG_KEEP_SHARDS"))
}

/// The value of `--flag value` or `--flag=value` in the process args.
fn flag_value(flag: &str) -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == flag {
            return args.next();
        }
        if let Some(v) = a.strip_prefix(flag) {
            if let Some(v) = v.strip_prefix('=') {
                return Some(v.to_string());
            }
        }
    }
    None
}

/// [`load_or_run_jobs`] at the default worker count (`PCG_JOBS` env var
/// if set, else the machine's available parallelism).
pub fn load_or_run(path: Option<&Path>, cfg: &EvalConfig) -> EvalRecord {
    load_or_run_jobs(path, cfg, scheduler::default_jobs())
}

/// [`load_or_run_opts`] with journaling on and resume off.
pub fn load_or_run_jobs(path: Option<&Path>, cfg: &EvalConfig, jobs: usize) -> EvalRecord {
    load_or_run_opts(path, cfg, &RunOptions::new(jobs))
}

/// Load a cached evaluation record if it matches `cfg`, else run the
/// full evaluation (all 7 models, all 420 tasks) and cache it. The
/// cache is jobs-agnostic: records are byte-identical at any worker
/// count, so a cache written at `--jobs 8` serves `--jobs 1` — and,
/// with `--resume`, a run resumed from a journal serves both. In shard
/// worker mode the process runs its slice and exits; in merge mode the
/// shard journals are stitched into the cache instead of evaluating.
pub fn load_or_run_opts(path: Option<&Path>, cfg: &EvalConfig, opts: &RunOptions) -> EvalRecord {
    if let Some(spec) = opts.shard {
        if !spec.is_whole() {
            // Worker mode: the process exists to produce one shard
            // journal, not a figure. Exit before touching the cache so
            // concurrent workers cannot race on it.
            crate::shard::run_shard(path, cfg, opts, spec, None);
            std::process::exit(0);
        }
    }
    let source = resolve_source(cfg, opts);
    let salt = source.config_salt();
    let path = cache_path_for(path, cfg, &source);
    if let Ok(bytes) = std::fs::read(&path) {
        if let Ok(rec) = serde_json::from_slice::<EvalRecord>(&bytes) {
            if rec.config == *cfg {
                eprintln!("[pcgbench] loaded cached records from {}", path.display());
                return rec;
            }
            eprintln!("[pcgbench] cache config mismatch; re-running evaluation");
            // The sidecar describes the mismatched run; drop it now so
            // a crash mid-re-run cannot leave it lying about this one.
            let _ = std::fs::remove_file(stats_path(cfg));
        }
    }
    if let Some(count) = opts.merge_shards {
        return crate::shard::merge_shards(Some(&path), cfg, opts, count, None);
    }
    eprintln!(
        "[pcgbench] running evaluation (7 models x 420 tasks, size/{}, {} low samples, {} worker{})...",
        cfg.size_divisor,
        cfg.samples_low,
        opts.jobs,
        if opts.jobs == 1 { "" } else { "s" },
    );

    let priors = load_priors(opts);
    let priors_hash = priors.as_ref().map_or(0, |p| p.hash());
    let jpath = journal::journal_path(&path);
    let resumed = if opts.resume {
        resume_journal(&jpath, cfg, &salt, ShardSpec::WHOLE, priors_hash)
    } else {
        ResumedJournal::none()
    };
    let replay = resumed.replay;
    if !replay.is_empty() {
        eprintln!(
            "[pcgbench] resuming: {} cell{} replayed from {}",
            replay.len(),
            if replay.len() == 1 { "" } else { "s" },
            jpath.display(),
        );
    }
    let wal = if opts.journal {
        let opened = if replay.is_empty() || resumed.recreate {
            Journal::create_sourced(&jpath, cfg, &salt, ShardSpec::WHOLE, priors_hash)
        } else {
            Journal::open_append(&jpath)
        };
        match opened {
            Ok(j) => Some(j),
            Err(e) => {
                eprintln!("[pcgbench] warning: could not open journal: {e}");
                None
            }
        }
    } else {
        None
    };

    let runner = SharedRunner::new(cfg.clone());
    let (record, mut stats) = evaluate_resumable_priors(
        cfg,
        &source,
        None,
        opts.jobs,
        priors.as_ref(),
        &runner,
        &replay,
        |cell, model, rec| {
            if let Some(j) = &wal {
                if let Err(e) = j.append(cell, model, rec) {
                    eprintln!("[pcgbench] warning: journal append failed: {e}");
                }
            }
        },
    );
    stats.journal_compactions = resumed.compacted;
    stats.journal_frames_rejected = resumed.rejected;
    eprintln!("[pcgbench] evaluation finished in {:.1}s", stats.wall_s);
    eprint!("{}", crate::report::stats_summary(&stats));

    let committed = match serde_json::to_vec(&record) {
        Ok(bytes) => match atomic_write(&path, &bytes) {
            Ok(()) => {
                eprintln!("[pcgbench] cached records at {}", path.display());
                true
            }
            Err(e) => {
                eprintln!("[pcgbench] warning: could not cache records: {e}");
                false
            }
        },
        Err(e) => {
            eprintln!("[pcgbench] warning: could not serialize records: {e}");
            false
        }
    };
    write_stats(cfg, &stats);
    if committed {
        write_cols_sidecar(&path, &record, &stats, &salt);
        // The cache now holds everything the journal was protecting.
        journal::remove(&jpath);
    }
    record
}

/// Commit the columnar projection sidecar next to a freshly written
/// records cache, with the run's measured per-cell walls folded into
/// the wall column (the next run's `--priors` source). Best-effort:
/// the sidecar is a pure accelerator for projection diffs, and every
/// consumer falls back to the JSON cache.
pub(crate) fn write_cols_sidecar(
    cache: &Path,
    record: &EvalRecord,
    stats: &EvalStats,
    salt: &[u8],
) {
    let mut cols = crate::colstats::ColumnarStats::from_record(record);
    if !stats.cell_walls.is_empty() {
        let chash = journal::config_hash_with(&record.config, salt);
        let walls: HashMap<CellId, f64> =
            stats.cell_walls.iter().map(|w| (CellId(w.cell), w.secs)).collect();
        cols.set_walls(chash, &walls);
    }
    if let Err(e) = atomic_write(&crate::colstats::cols_path(cache), &cols.to_bytes()) {
        eprintln!("[pcgbench] warning: could not write columnar sidecar: {e}");
    }
}

/// What [`resume_journal`] recovered and how the journal must be
/// reopened for further appends.
pub(crate) struct ResumedJournal {
    /// Replayable cells (empty without `--resume`).
    pub replay: journal::Replay,
    /// Stale frames folded away by compaction (the
    /// `journal_compactions` stat).
    pub compacted: u64,
    /// Corrupt frames refused during replay (the
    /// `journal_frames_rejected` stat).
    pub rejected: u64,
    /// When true the on-disk file could not be brought to clean v3
    /// (compaction/migration failed) and MUST be recreated rather than
    /// appended to — appending frames to a stale or v2 file would
    /// corrupt it. The replay above is still valid in memory.
    pub recreate: bool,
}

impl ResumedJournal {
    pub(crate) fn none() -> ResumedJournal {
        ResumedJournal { replay: journal::Replay::new(), compacted: 0, rejected: 0, recreate: false }
    }
}

/// Load a journal for resume: report every rejected frame with its
/// byte offset / frame index / cell id, then compact when the file
/// carries stale frames **or** is a legacy v2 JSONL journal (the
/// migration commit — replay v2, rewrite v3).
pub(crate) fn resume_journal(
    path: &Path,
    cfg: &EvalConfig,
    salt: &[u8],
    shard: ShardSpec,
    priors_hash: u64,
) -> ResumedJournal {
    let loaded = journal::load_counting_sourced(path, cfg, salt, shard, priors_hash);
    for r in &loaded.rejects {
        eprintln!("[pcgbench] warning: journal {}: rejected {r}", path.display());
    }
    let rejected = loaded.rejects.len() as u64;
    if !loaded.needs_compaction() {
        return ResumedJournal { replay: loaded.replay, compacted: 0, rejected, recreate: false };
    }
    match journal::compact_sourced(path, cfg, salt, shard, priors_hash, &loaded.replay) {
        Ok(_) => {
            if loaded.format == Some(journal::JournalFormat::V2Jsonl) {
                eprintln!(
                    "[pcgbench] migrated v2 JSONL journal to v3 binary frames: {}",
                    path.display(),
                );
            }
            if loaded.stale_frames > 0 {
                eprintln!(
                    "[pcgbench] compacted journal: {} stale frame{} folded away",
                    loaded.stale_frames,
                    if loaded.stale_frames == 1 { "" } else { "s" },
                );
            }
            ResumedJournal {
                replay: loaded.replay,
                compacted: loaded.stale_frames as u64,
                rejected,
                recreate: false,
            }
        }
        Err(e) => {
            eprintln!("[pcgbench] warning: journal compaction failed: {e}");
            ResumedJournal { replay: loaded.replay, compacted: 0, rejected, recreate: true }
        }
    }
}

fn write_stats(cfg: &EvalConfig, stats: &EvalStats) {
    if let Ok(bytes) = serde_json::to_vec(stats) {
        let _ = atomic_write(&stats_path(cfg), &bytes);
    }
}

/// A process-unique temp-file suffix: `.{tag}.{pid}.{seq}`. The PID
/// separates concurrent processes (two `--merge-shards` runs pointed
/// at the same output directory must not clobber each other's
/// atomic-rename commit); the process-global sequence number separates
/// concurrent threads *within* one process, which share a PID.
pub(crate) fn unique_suffix(tag: &str) -> String {
    use std::sync::atomic::{AtomicU64, Ordering};
    static SEQ: AtomicU64 = AtomicU64::new(0);
    format!(".{tag}.{}.{}", std::process::id(), SEQ.fetch_add(1, Ordering::Relaxed))
}

/// Write `bytes` to `path` atomically: readers (and crashes) see either
/// the previous file or the complete new one, never a torn write.
/// Concurrent writers (other processes or threads) cannot collide on
/// the temp file thanks to [`unique_suffix`]; last rename wins.
pub(crate) fn atomic_write(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let mut os = path.as_os_str().to_os_string();
    os.push(unique_suffix("tmp"));
    let tmp = PathBuf::from(os);
    let result = (|| {
        let mut f = File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_data()?;
        drop(f);
        std::fs::rename(&tmp, path)
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_paths_distinguish_modes() {
        let q = default_cache_path(&EvalConfig::quick());
        let f = default_cache_path(&EvalConfig::full());
        assert_ne!(q, f);
        assert_ne!(stats_path(&EvalConfig::quick()), q);
    }

    #[test]
    fn atomic_write_replaces_contents_without_leftovers() {
        let dir = std::env::temp_dir().join("pcgbench-pipeline-tests");
        let path = dir.join(format!("atomic-{}.json", std::process::id()));
        atomic_write(&path, b"first").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"first");
        atomic_write(&path, b"second, longer payload").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second, longer payload");
        // No temp droppings left behind.
        let strays: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(Result::ok)
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(strays.is_empty(), "temp files must not survive: {strays:?}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn unique_suffixes_never_collide_within_a_process() {
        let a = unique_suffix("tmp");
        let b = unique_suffix("tmp");
        assert_ne!(a, b, "concurrent writers in one process must get distinct temp names");
        assert!(a.starts_with(".tmp."));
        assert!(a.contains(&std::process::id().to_string()));
    }

    #[test]
    fn run_options_default_to_journal_on_resume_off_unsharded() {
        let o = RunOptions::new(3);
        assert_eq!(o.jobs, 3);
        assert!(o.journal);
        assert!(!o.resume);
        assert!(o.shard.is_none());
        assert!(o.merge_shards.is_none());
        assert!(o.steal, "stealing defaults on (harmless outside worker mode)");
        assert!(!o.keep_shards, "merge cleans up its inputs by default");
    }

    #[test]
    fn switch_accepts_the_usual_spellings() {
        for raw in ["1", "true", "ON", "Yes"] {
            assert!(switch(raw, "test"));
        }
        for raw in ["0", "false", "OFF", "no"] {
            assert!(!switch(raw, "test"));
        }
    }
}
