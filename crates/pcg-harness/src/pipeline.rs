//! Disk-cached end-to-end evaluation used by the figure binaries.
//!
//! Crash safety: while a grid runs, every completed cell is appended to
//! a write-ahead journal next to the cache file (fsync'd per line).
//! The final cache and stats sidecar are committed atomically
//! (temp file + rename), so readers never observe a torn record; the
//! journal is deleted only after the cache commit succeeds. A run
//! killed at any point can be restarted with `--resume` and will
//! re-evaluate only the cells the journal does not already hold.

use crate::config::EvalConfig;
use crate::eval::evaluate_resumable;
use crate::journal::{self, Journal};
use crate::record::{EvalRecord, EvalStats};
use crate::runner::SharedRunner;
use crate::scheduler;
use std::fs::File;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Default cache path for a config (quick and full runs cache
/// separately).
pub fn default_cache_path(cfg: &EvalConfig) -> PathBuf {
    let tag = if cfg.size_divisor == 1 { "full" } else { "quick" };
    PathBuf::from("target").join("pcgbench").join(format!("records-{tag}.json"))
}

/// Sidecar path for the scheduler stats of a cached run. Stats live
/// outside the record because they are timing-dependent, while the
/// record must be byte-identical across worker counts.
pub fn stats_path(cfg: &EvalConfig) -> PathBuf {
    let tag = if cfg.size_divisor == 1 { "full" } else { "quick" };
    PathBuf::from("target").join("pcgbench").join(format!("records-{tag}.stats.json"))
}

/// How a pipeline run is driven, as parsed from a figure binary's
/// command line.
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Worker count for the evaluation grid.
    pub jobs: usize,
    /// Replay a matching write-ahead journal left by an interrupted
    /// run, evaluating only the missing cells (`--resume`).
    pub resume: bool,
    /// Keep a write-ahead journal while running (`--no-journal`
    /// disables it, trading crash safety for fewer fsyncs).
    pub journal: bool,
}

impl RunOptions {
    /// Options for `jobs` workers with journaling on and resume off.
    pub fn new(jobs: usize) -> RunOptions {
        RunOptions { jobs, resume: false, journal: true }
    }

    /// Parse `--jobs N`, `--resume`, and `--no-journal` from the
    /// process arguments (exits with code 2 on a malformed `--jobs`,
    /// like [`scheduler::jobs_from_cli`]).
    pub fn from_cli() -> RunOptions {
        let has = |flag: &str| std::env::args().any(|a| a == flag);
        RunOptions {
            jobs: scheduler::jobs_from_cli(),
            resume: has("--resume"),
            journal: !has("--no-journal"),
        }
    }
}

/// [`load_or_run_jobs`] at the default worker count (`PCG_JOBS` env var
/// if set, else the machine's available parallelism).
pub fn load_or_run(path: Option<&Path>, cfg: &EvalConfig) -> EvalRecord {
    load_or_run_jobs(path, cfg, scheduler::default_jobs())
}

/// [`load_or_run_opts`] with journaling on and resume off.
pub fn load_or_run_jobs(path: Option<&Path>, cfg: &EvalConfig, jobs: usize) -> EvalRecord {
    load_or_run_opts(path, cfg, &RunOptions::new(jobs))
}

/// Load a cached evaluation record if it matches `cfg`, else run the
/// full evaluation (all 7 models, all 420 tasks) and cache it. The
/// cache is jobs-agnostic: records are byte-identical at any worker
/// count, so a cache written at `--jobs 8` serves `--jobs 1` — and,
/// with `--resume`, a run resumed from a journal serves both.
pub fn load_or_run_opts(path: Option<&Path>, cfg: &EvalConfig, opts: &RunOptions) -> EvalRecord {
    let path = path.map(Path::to_path_buf).unwrap_or_else(|| default_cache_path(cfg));
    if let Ok(bytes) = std::fs::read(&path) {
        if let Ok(rec) = serde_json::from_slice::<EvalRecord>(&bytes) {
            if rec.config == *cfg {
                eprintln!("[pcgbench] loaded cached records from {}", path.display());
                return rec;
            }
            eprintln!("[pcgbench] cache config mismatch; re-running evaluation");
            // The sidecar describes the mismatched run; drop it now so
            // a crash mid-re-run cannot leave it lying about this one.
            let _ = std::fs::remove_file(stats_path(cfg));
        }
    }
    eprintln!(
        "[pcgbench] running evaluation (7 models x 420 tasks, size/{}, {} low samples, {} worker{})...",
        cfg.size_divisor,
        cfg.samples_low,
        opts.jobs,
        if opts.jobs == 1 { "" } else { "s" },
    );

    let jpath = journal::journal_path(&path);
    let replay = if opts.resume {
        journal::load(&jpath, cfg)
    } else {
        journal::Replay::new()
    };
    if !replay.is_empty() {
        eprintln!(
            "[pcgbench] resuming: {} cell{} replayed from {}",
            replay.len(),
            if replay.len() == 1 { "" } else { "s" },
            jpath.display(),
        );
    }
    let wal = if opts.journal {
        let opened = if replay.is_empty() {
            Journal::create(&jpath, cfg)
        } else {
            Journal::open_append(&jpath)
        };
        match opened {
            Ok(j) => Some(j),
            Err(e) => {
                eprintln!("[pcgbench] warning: could not open journal: {e}");
                None
            }
        }
    } else {
        None
    };

    let runner = SharedRunner::new(cfg.clone());
    let (record, stats) =
        evaluate_resumable(cfg, &pcg_models::zoo(), None, opts.jobs, &runner, &replay, |model, rec| {
            if let Some(j) = &wal {
                if let Err(e) = j.append(model, rec) {
                    eprintln!("[pcgbench] warning: journal append failed: {e}");
                }
            }
        });
    eprintln!("[pcgbench] evaluation finished in {:.1}s", stats.wall_s);
    eprint!("{}", crate::report::stats_summary(&stats));

    let committed = match serde_json::to_vec(&record) {
        Ok(bytes) => match atomic_write(&path, &bytes) {
            Ok(()) => {
                eprintln!("[pcgbench] cached records at {}", path.display());
                true
            }
            Err(e) => {
                eprintln!("[pcgbench] warning: could not cache records: {e}");
                false
            }
        },
        Err(e) => {
            eprintln!("[pcgbench] warning: could not serialize records: {e}");
            false
        }
    };
    write_stats(cfg, &stats);
    if committed {
        // The cache now holds everything the journal was protecting.
        journal::remove(&jpath);
    }
    record
}

fn write_stats(cfg: &EvalConfig, stats: &EvalStats) {
    if let Ok(bytes) = serde_json::to_vec(stats) {
        let _ = atomic_write(&stats_path(cfg), &bytes);
    }
}

/// Write `bytes` to `path` atomically: readers (and crashes) see either
/// the previous file or the complete new one, never a torn write.
fn atomic_write(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let mut os = path.as_os_str().to_os_string();
    os.push(format!(".tmp.{}", std::process::id()));
    let tmp = PathBuf::from(os);
    let result = (|| {
        let mut f = File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_data()?;
        drop(f);
        std::fs::rename(&tmp, path)
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_paths_distinguish_modes() {
        let q = default_cache_path(&EvalConfig::quick());
        let f = default_cache_path(&EvalConfig::full());
        assert_ne!(q, f);
        assert_ne!(stats_path(&EvalConfig::quick()), q);
    }

    #[test]
    fn atomic_write_replaces_contents_without_leftovers() {
        let dir = std::env::temp_dir().join("pcgbench-pipeline-tests");
        let path = dir.join(format!("atomic-{}.json", std::process::id()));
        atomic_write(&path, b"first").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"first");
        atomic_write(&path, b"second, longer payload").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second, longer payload");
        // No temp droppings left behind.
        let strays: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(Result::ok)
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(strays.is_empty(), "temp files must not survive: {strays:?}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn run_options_default_to_journal_on_resume_off() {
        let o = RunOptions::new(3);
        assert_eq!(o.jobs, 3);
        assert!(o.journal);
        assert!(!o.resume);
    }
}
