//! Serializable evaluation records consumed by the figure regenerators.

use crate::config::EvalConfig;
use crate::runner::QuarantineEntry;
use pcg_core::TaskId;
use pcg_metrics::TaskSamples;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Everything recorded for one (model, task) pair.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TaskRecord {
    /// Which task.
    pub task: TaskId,
    /// The 20-sample low-temperature set: build/correct flags plus the
    /// headline-n performance ratio per sample.
    pub low: TaskSamples,
    /// The 200-sample high-temperature set (correctness only), when
    /// collected.
    pub high: Option<TaskSamples>,
    /// Per-resource-count ratios aligned with the low samples
    /// (Figure 5 sweeps; only OpenMP/Kokkos/MPI tasks carry these).
    pub sweep: BTreeMap<u32, Vec<f64>>,
}

/// All tasks for one model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModelRecord {
    /// Model display name (Table 2).
    pub model: String,
    /// Per-task records in canonical task order.
    pub tasks: Vec<TaskRecord>,
}

impl ModelRecord {
    /// Records matching a predicate on the task id.
    pub fn tasks_where(&self, pred: impl Fn(TaskId) -> bool) -> Vec<&TaskRecord> {
        self.tasks.iter().filter(|t| pred(t.task)).collect()
    }
}

/// A complete evaluation: the config that produced it plus per-model
/// records.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EvalRecord {
    /// The configuration used.
    pub config: EvalConfig,
    /// One record per evaluated model, zoo order.
    pub models: Vec<ModelRecord>,
}

impl EvalRecord {
    /// Look up a model's record by name.
    pub fn model(&self, name: &str) -> Option<&ModelRecord> {
        self.models.iter().find(|m| m.model == name)
    }
}

/// Scheduler observability for one evaluation run.
///
/// Deliberately **not** part of [`EvalRecord`]: stats carry wall-clock
/// measurements that vary run to run and with the worker count, while
/// the record is required to be byte-identical for a given config
/// regardless of `--jobs`. The pipeline writes stats to a sidecar file
/// instead.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvalStats {
    /// Worker count the grid ran with.
    pub jobs: usize,
    /// Grid cells evaluated (models × tasks).
    pub cells: usize,
    /// Candidate executions actually performed (cache misses).
    pub executions: u64,
    /// Outcome requests served from the shared cache.
    pub cache_hits: u64,
    /// Candidate bodies that panicked (captured per candidate).
    pub panics: u64,
    /// Candidates that blew the wall-clock time limit.
    pub timeouts: u64,
    /// Timed-out workers that unwound cooperatively within the grace
    /// period after cancellation.
    pub cancelled: u64,
    /// Timed-out workers that ignored cancellation and were abandoned
    /// (leaked threads). Zero on a fully cooperative run.
    pub abandoned: u64,
    /// Hard-failed candidates re-executed under `retry_flaky`.
    pub retries: u64,
    /// Retried candidates whose second attempt no longer hard-failed.
    pub flaky: u64,
    /// Grid cells replayed from a write-ahead journal instead of
    /// evaluated (zero for a non-resumed run).
    pub resumed_cells: usize,
    /// Candidates that hard-failed every attempt they were given
    /// (deterministically sorted).
    pub quarantined: Vec<QuarantineEntry>,
    /// Total seconds cells spent enqueued before pickup (summed).
    pub queue_wait_s: f64,
    /// Longest single cell queue wait in seconds.
    pub max_queue_wait_s: f64,
    /// Seconds measuring sequential baselines (summed across workers).
    pub baseline_s: f64,
    /// Seconds building/running candidates (summed across workers).
    pub run_s: f64,
    /// Seconds validating outputs and API usage (summed across workers).
    pub validate_s: f64,
    /// End-to-end wall-clock seconds for the grid.
    pub wall_s: f64,
    /// Substrate-lease checkouts served by a warm substrate (zero when
    /// the warm path is disabled via `PCG_COLD`).
    pub lease_hits: u64,
    /// Substrate-lease checkouts that built a fresh substrate.
    pub lease_misses: u64,
    /// Leased substrates discarded because their candidate unwound
    /// (panic or cooperative cancellation) while holding them.
    pub pools_poisoned: u64,
    /// Input-instance lookups served by the memoization cache.
    pub input_cache_hits: u64,
    /// Seconds constructing substrates on lease misses (summed across
    /// workers) — the surviving share of per-run pool setup.
    pub pool_setup_s: f64,
    /// Simulated MPI ranks run as multiplexed fibers instead of OS
    /// threads (zero when every world ran thread-per-rank).
    #[serde(default)]
    pub ranks_multiplexed: u64,
    /// Simulated message payload bytes moved by reference (shared
    /// buffer forwarding) instead of copied.
    #[serde(default)]
    pub bytes_zero_copied: u64,
    /// Stale journal frames (torn bytes, untrusted tails, shadowed
    /// duplicate appends) folded away by compaction on resume. Zero on
    /// a clean run.
    #[serde(default)]
    pub journal_compactions: u64,
    /// Journal frames replay refused as corrupt (torn tail, CRC
    /// mismatch, undecodable payload, failed cell self-check) across
    /// every journal this run loaded. Each rejection is also reported
    /// on stderr with its byte offset, frame index, and cell id. Zero
    /// on a clean run.
    #[serde(default)]
    pub journal_frames_rejected: u64,
    /// Worlds failed fast by the wait-for-graph deadlock detector
    /// instead of burning the wall-clock timeout. Like `executions`,
    /// the count is per-process (outcome dedup means a shard topology
    /// changes how many containment worlds actually run), so it lives
    /// in the sidecar but outside [`stats_projection`].
    #[serde(default)]
    pub deadlocks_detected: u64,
    /// Fiber stack overflows converted into verdicts by the guard page.
    #[serde(default)]
    pub stack_overflows_caught: u64,
    /// SIGSEGV faults classified as guard-page hits. Equal to
    /// `stack_overflows_caught` on a healthy run; a divergence means a
    /// classified fault never became a verdict.
    #[serde(default)]
    pub guard_faults: u64,
    /// Set when the supervisor's `max_abandoned` leak budget was
    /// exhausted at least once during the run: new isolated workers had
    /// to block until the leak count dropped, so wall-clock stats are
    /// degraded. Surfaced loudly by `report` — a run with this flag set
    /// needs a larger budget or better-behaved candidates.
    #[serde(default)]
    pub leak_budget_exhausted: bool,
    /// Whole cells this worker stole from lagging siblings (claimed
    /// via a journal claim frame, evaluated locally, and journaled
    /// here). Like `executions`, inherently per-topology — a
    /// single-process run never steals — so it lives outside
    /// [`stats_projection`].
    #[serde(default)]
    pub cells_stolen: u64,
    /// Steal candidates abandoned because a sibling's claim frame was
    /// observed first (claim arbitration; each contested cell counts
    /// once per observer).
    #[serde(default)]
    pub steal_conflicts: u64,
    /// Sibling-journal progress scans performed while looking for
    /// stealable cells (including the pre-evaluation scan a stalled
    /// victim uses to skip cells already taken from it).
    #[serde(default)]
    pub steal_scans: u64,
    /// Measured wall seconds per freshly evaluated cell, sorted by cell
    /// id. Replayed cells contribute no entry (their wall was paid in a
    /// previous run). Feeds the `.cols` sidecar's wall column, which
    /// the next run's `--priors` turns into a scheduling cost table.
    #[serde(default)]
    pub cell_walls: Vec<CellWall>,
    /// Per-process wall-clock seconds, filled in by `--merge-shards`:
    /// one entry per shard worker in shard order, plus one for the
    /// merge's own gap-fill when any cells were missing. Empty for
    /// single-process runs. The max/mean ratio is the merge-gate
    /// imbalance `report` surfaces.
    #[serde(default)]
    pub shard_walls: Vec<f64>,
}

/// One cell's measured wall seconds, keyed by its [`pcg_core::CellId`]
/// raw value (the id is already config-scoped, so the pair is
/// unambiguous across models and tasks).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CellWall {
    /// The cell's global address (`CellId.0`).
    pub cell: u64,
    /// Wall seconds the cell's evaluation took in this run.
    pub secs: f64,
}

/// The cross-process-deterministic projection of an [`EvalRecord`].
///
/// Separate cold runs legitimately differ in the measured timing floats
/// (performance ratios, sweep values): the virtual-time clocks contain
/// a genuinely measured compute component. Everything else — model
/// order, task identity and order, build flags, correctness flags,
/// which sweep resource counts were collected — must be identical
/// between a clean run and a killed-then-resumed run, between warm and
/// cold execution, between thread-per-rank and multiplexed MPI, and
/// between a sharded and a single-process run.
///
/// This is the **single definition** of that projection: the
/// warm-path, mux, and shard projection-equality tests all call it,
/// and CI diffs it across processes via the `project_records` binary —
/// so the copies that used to live in each test and in
/// `ci/project_records.py` can no longer drift.
pub fn projection(rec: &EvalRecord) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    for m in &rec.models {
        let _ = writeln!(s, "model={}", m.model);
        for t in &m.tasks {
            let _ = writeln!(
                s,
                "task={:?} built={:?} correct={:?} high_correct={:?} sweep_ns={:?}",
                t.task,
                t.low.built,
                t.low.correct,
                t.high.as_ref().map(|h| &h.correct),
                t.sweep.keys().collect::<Vec<_>>(),
            );
        }
    }
    s
}

/// The deterministic projection of an [`EvalStats`] sidecar: the
/// fields that must agree between a sharded run (after merge) and a
/// single-process run. Timing floats and cache-locality counters
/// (executions, cache hits) legitimately differ across process
/// topologies — each worker process dedups executions only within its
/// own shard — but the grid shape and the quarantine verdicts may not.
pub fn stats_projection(stats: &EvalStats) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(s, "cells={}", stats.cells);
    for q in &stats.quarantined {
        let _ = writeln!(s, "quarantined={:?} kind={} n={} error={}", q.task, q.kind, q.n, q.error);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcg_core::{ExecutionModel, ProblemId, ProblemType};

    #[test]
    fn record_roundtrips_through_json() {
        let task = ProblemId::new(ProblemType::Scan, 1).task(ExecutionModel::Mpi);
        let rec = EvalRecord {
            config: EvalConfig::smoke(),
            models: vec![ModelRecord {
                model: "GPT-4".into(),
                tasks: vec![TaskRecord {
                    task,
                    low: TaskSamples {
                        built: vec![true, false],
                        correct: vec![true, false],
                        ratio: vec![3.0, 0.0],
                    },
                    high: None,
                    sweep: BTreeMap::from([(4u32, vec![2.0, 0.0])]),
                }],
            }],
        };
        let json = serde_json::to_string(&rec).unwrap();
        let back: EvalRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back.models[0].model, "GPT-4");
        assert_eq!(back.models[0].tasks[0].task, task);
        assert_eq!(back.model("GPT-4").unwrap().tasks.len(), 1);
        assert!(back.model("nope").is_none());
    }
}
