//! Multi-process sharded evaluation: shard workers and the merge step.
//!
//! The (model × task) grid is partitioned by cell address
//! (`CellId % shard_count`, see `pcg_core::plan`), so any number of
//! worker processes can each run `--shard k/N` with **no coordination
//! beyond the shared configuration**: every worker derives the
//! identical [`WorkPlan`] and owns a disjoint, exhaustive slice of it.
//!
//! A worker's output is its cell-addressed write-ahead journal (plus an
//! [`EvalStats`] sidecar) — the same journal format a single-process
//! run keeps for crash safety, just scoped to the shard. That means
//! every durability property composes for free: a killed worker
//! resumes with `--resume`, stale journal generations are compacted,
//! and torn lines truncate replay instead of corrupting it.
//!
//! [`merge_shards`] stitches N shard journals back into the records
//! cache and stats sidecar. The merged records file is **byte-identical
//! to a single-process run** of the same config: journaled records
//! round-trip losslessly, fresh evaluations are keyed by grid
//! coordinates only, and assembly order is the plan order both code
//! paths share. Cells missing from the shard journals (a worker died
//! mid-shard and was never resumed, or a journal lost its tail to a
//! torn line) are evaluated locally by the merge process itself, so a
//! merge always produces the complete, correct record. Stats sidecars
//! are *combined* (counters summed, wall clock maxed); their
//! deterministic projection (`record::stats_projection`) matches a
//! single-process run, while cache-locality counters legitimately
//! differ — each process dedups executions only within its own shard.
//!
//! ## Live work stealing
//!
//! Static partitioning (even cost-weighted) cannot anticipate a worker
//! that is slow for *unpredicted* reasons — a noisy neighbor, one
//! flaky retry storm — and the merge gate is the max shard wall, so
//! one straggler stalls the whole fleet. With `--steal` (the default
//! for shard workers), a worker that drains its own partition turns
//! thief: it peeks sibling journals for cells with neither a result
//! nor a claim on disk, durably appends **claim frames** for a batch
//! to its *own* journal ([`Journal::append_claims`],
//! claim-before-evaluate), evaluates the stolen cells, and journals
//! the results locally. Victims pre-scan siblings before evaluating so
//! a worker waking from a stall skips everything already taken from
//! it. Arbitration is optimistic: claims race only within the small
//! scan-to-claim window, and a lost race merely duplicates a cell —
//! results are deterministic per cell and [`merge_shards`] folds
//! duplicates last-write-wins, so merged records are byte-identical
//! whether zero, one, or several workers raced a cell. A thief that
//! dies between claim and result loses nothing: its orphaned claim is
//! compacted away on resume and the cell falls through to merge
//! gap-fill.

use crate::config::EvalConfig;
use crate::eval;
use crate::journal::{self, Journal};
use crate::pipeline::{self, RunOptions};
use crate::record::{EvalRecord, EvalStats, TaskRecord};
use crate::runner::SharedRunner;
use pcg_core::plan::{CellId, PlanCell, ShardSpec, WorkPlan};
use pcg_core::CostPriors;
use pcg_core::TaskId;
use pcg_models::CandidateSource;
use std::collections::{HashMap, HashSet};
use std::path::{Path, PathBuf};

/// Stats-sidecar path for one shard of a sharded run. Like the shard
/// journal, it derives from the records cache path
/// (`records-quick.json.stats.shard-0-of-3`), so every artifact of a
/// sharded run lives next to the cache it will be merged into.
pub fn shard_stats_path(cache_path: &Path, shard: ShardSpec) -> PathBuf {
    let mut os = cache_path.as_os_str().to_os_string();
    os.push(format!(".stats.shard-{}-of-{}", shard.index, shard.count));
    PathBuf::from(os)
}

/// What one worker's steal phase did, for the stats sidecar.
#[derive(Debug, Default, Clone, Copy)]
pub struct StealOutcome {
    /// Whole cells claimed, evaluated, and journaled locally.
    pub stolen: u64,
    /// Candidates abandoned to a sibling's observed claim (counted
    /// once per contested cell).
    pub conflicts: u64,
    /// Sibling progress scans performed.
    pub scans: u64,
}

/// Union every sibling journal's visible progress (results + claims),
/// header-gated per sibling exactly like replay. A sibling whose
/// journal is missing or gated out contributes nothing — its cells
/// look stealable, which is safe: stolen results are valid for this
/// worker's plan regardless of what the victim's file said.
pub fn scan_siblings(
    cache: &Path,
    cfg: &EvalConfig,
    salt: &[u8],
    shard: ShardSpec,
    priors_hash: u64,
) -> journal::Progress {
    let mut all = journal::Progress::default();
    for k in 0..shard.count {
        if k == shard.index {
            continue;
        }
        let spec = ShardSpec::new(k, shard.count);
        let jpath = journal::shard_journal_path(cache, spec);
        if let Some(p) = journal::peek_progress_sourced(&jpath, cfg, salt, spec, priors_hash) {
            all.done.extend(p.done);
            all.claimed.extend(p.claimed);
        }
    }
    all
}

/// The steal loop: scan siblings, claim a batch of unowned-undone
/// cells, hand it to `run_batch`, repeat until nothing stealable
/// remains. `done` seeds the cells this worker already has results
/// for (its own journal's replay); the engine extends it with sibling
/// results and its own claims as it goes.
///
/// Victim selection is most-lagging-first (the sibling with the most
/// cells missing results); within one victim, cells are taken in
/// [`WorkPlan::steal_order`] — the reverse of the victim's own
/// dispatch, so the victim keeps its in-flight work. Racing thieves
/// start their pick at a per-thief offset into the candidate ring so
/// near-simultaneous scans choose disjoint batches; a lost race is
/// detected at the next scan (the cell shows up claimed) and counted
/// as a conflict, or — inside the scan-to-claim window — produces a
/// harmless duplicate evaluation that merge folds last-write-wins.
///
/// The engine is deliberately evaluation-agnostic (`run_batch` does
/// the work) so the production worker and the steal bench drive the
/// exact same claim/arbitration code.
#[allow(clippy::too_many_arguments)]
pub fn steal_from_siblings(
    cache: &Path,
    cfg: &EvalConfig,
    salt: &[u8],
    plan: &WorkPlan,
    shard: ShardSpec,
    priors: Option<&CostPriors>,
    priors_hash: u64,
    wal: &Journal,
    batch: usize,
    mut done: HashSet<u64>,
    mut run_batch: impl FnMut(Vec<PlanCell>),
) -> StealOutcome {
    let mut out = StealOutcome::default();
    if shard.count <= 1 {
        return out;
    }
    let batch = batch.max(1);
    // Every victim's cells in steal order, derived once — the same
    // coordination-free determinism the partition itself relies on.
    let victims: Vec<Vec<PlanCell>> = (0..shard.count)
        .filter(|&k| k != shard.index)
        .map(|k| plan.steal_order(ShardSpec::new(k, shard.count), priors))
        .collect();
    let mut contested: HashSet<u64> = HashSet::new();
    loop {
        out.scans += 1;
        let progress = scan_siblings(cache, cfg, salt, shard, priors_hash);
        done.extend(progress.done.iter().copied());

        let remaining =
            |cells: &Vec<PlanCell>| cells.iter().filter(|c| !done.contains(&c.id.0)).count();
        let mut by_lag: Vec<&Vec<PlanCell>> = victims.iter().collect();
        by_lag.sort_by_key(|cells| std::cmp::Reverse(remaining(cells)));
        let candidates: Vec<PlanCell> = by_lag
            .into_iter()
            .flatten()
            .filter(|c| !done.contains(&c.id.0))
            .copied()
            .collect();
        if candidates.is_empty() {
            break;
        }
        let mut grab: Vec<PlanCell> = Vec::new();
        let start = (shard.index as usize).wrapping_mul(batch) % candidates.len();
        for i in 0..candidates.len() {
            let c = candidates[(start + i) % candidates.len()];
            if progress.claimed.contains(&c.id.0) {
                if contested.insert(c.id.0) {
                    out.conflicts += 1;
                }
                continue;
            }
            grab.push(c);
            if grab.len() >= batch {
                break;
            }
        }
        if grab.is_empty() {
            // Everything left is claimed by a live sibling (it will
            // deliver the result) or by a dead one (merge gap-fill
            // covers it). Either way this thief is finished.
            break;
        }
        // Claim-before-evaluate: the claims must be durable before any
        // stolen work starts, so a crash from here on can only
        // duplicate work, never hide it.
        let ids: Vec<CellId> = grab.iter().map(|c| c.id).collect();
        if let Err(e) = wal.append_claims(&ids, shard.index) {
            eprintln!("[pcgbench] warning: could not journal steal claims; stopping steal: {e}");
            break;
        }
        out.stolen += ids.len() as u64;
        done.extend(ids.iter().map(|id| id.0));
        run_batch(grab);
    }
    out
}

/// Fold the stats of one stolen-batch evaluation into the worker's
/// running total. [`SharedRunner`] counters are **cumulative across
/// calls** on one runner, so the latest snapshot replaces the total
/// wholesale; the genuinely per-call fields (cells, queue waits,
/// measured walls, resumed count) accumulate.
fn absorb_steal_stats(total: &mut EvalStats, fill: EvalStats, stolen_cells: usize) {
    let cells = total.cells + stolen_cells;
    let queue_wait_s = total.queue_wait_s + fill.queue_wait_s;
    let max_queue_wait_s = total.max_queue_wait_s.max(fill.max_queue_wait_s);
    let resumed_cells = total.resumed_cells;
    let mut cell_walls = std::mem::take(&mut total.cell_walls);
    cell_walls.extend(fill.cell_walls.iter().copied());
    *total = fill;
    total.cells = cells;
    total.queue_wait_s = queue_wait_s;
    total.max_queue_wait_s = max_queue_wait_s;
    total.resumed_cells = resumed_cells;
    total.cell_walls = cell_walls;
}

/// Run one shard of the full evaluation grid as a worker process.
///
/// The shard's journal (created fresh, or resumed and compacted when
/// `opts.resume` is set) is the output artifact: it is *not* deleted on
/// completion — `merge` consumes it. A stats sidecar is committed
/// atomically next to it. Journaling cannot be disabled in worker mode
/// (a worker without a journal would produce nothing).
pub fn run_shard(
    path: Option<&Path>,
    cfg: &EvalConfig,
    opts: &RunOptions,
    shard: ShardSpec,
    tasks: Option<&[TaskId]>,
) -> EvalStats {
    let t0 = std::time::Instant::now();
    let source = pipeline::resolve_source(cfg, opts);
    let salt = source.config_salt();
    let cache = pipeline::cache_path_for(path, cfg, &source);
    let plan = eval::plan_for(cfg, &source, tasks);
    let jpath = journal::shard_journal_path(&cache, shard);
    let priors = pipeline::load_priors(opts);
    let priors_hash = priors.as_ref().map_or(0, |p| p.hash());

    let resumed = if opts.resume {
        pipeline::resume_journal(&jpath, cfg, &salt, shard, priors_hash)
    } else {
        pipeline::ResumedJournal::none()
    };
    let replay = resumed.replay;

    let wal = if replay.is_empty() || resumed.recreate {
        Journal::create_sourced(&jpath, cfg, &salt, shard, priors_hash)
    } else {
        Journal::open_append(&jpath)
    };
    let wal = match wal {
        Ok(j) => j,
        Err(e) => {
            // Unlike the single-process pipeline (where the journal is
            // optional crash insurance), a shard worker exists to
            // produce its journal; running on without one would only
            // burn CPU to produce nothing.
            eprintln!("[pcgbench] error: could not open shard journal: {e}");
            std::process::exit(1);
        }
    };

    // Test/bench fault injection: stall this worker before it touches
    // any cell, so siblings get a head start and (with stealing on)
    // visibly drain this shard's partition out from under it.
    if let Ok(raw) = std::env::var("PCG_STEAL_STALL_MS") {
        if let Ok(ms) = raw.trim().parse::<u64>() {
            if ms > 0 {
                eprintln!("[pcgbench] shard {shard}: injected stall of {ms}ms");
                std::thread::sleep(std::time::Duration::from_millis(ms));
            }
        }
    }

    let steal_on = opts.steal && shard.count > 1;
    let mut owned = plan.shard_with(shard, priors.as_ref());
    let mut scans_before = 0u64;
    if steal_on {
        // Victim pre-scan: anything a thief already finished or claimed
        // while this worker was slow to start is dropped here, so a
        // straggler waking up does not redo work the fleet took from
        // it. Cells already in our own replay stay — they cost nothing.
        let sib = scan_siblings(&cache, cfg, &salt, shard, priors_hash);
        scans_before = 1;
        let before = owned.len();
        owned.retain(|c| {
            replay.contains_key(&c.id)
                || (!sib.done.contains(&c.id.0) && !sib.claimed.contains(&c.id.0))
        });
        let skipped = before - owned.len();
        if skipped > 0 {
            eprintln!(
                "[pcgbench] shard {shard}: {skipped} cell{} already taken by siblings",
                if skipped == 1 { "" } else { "s" },
            );
        }
    }
    eprintln!(
        "[pcgbench] shard {shard}: {} of {} cells ({} replayed from {})",
        owned.len(),
        plan.len(),
        replay.len(),
        jpath.display(),
    );

    let runner = SharedRunner::new(cfg.clone());
    let run = eval::evaluate_cells_priors(
        cfg,
        &source,
        owned,
        opts.jobs,
        priors.as_ref(),
        &runner,
        &replay,
        |cell, model, rec| {
            if let Err(e) = wal.append(cell, model, rec) {
                eprintln!("[pcgbench] warning: journal append failed: {e}");
            }
        },
    );
    let mut stats = run.stats;

    let mut steal = StealOutcome::default();
    if steal_on {
        let done: HashSet<u64> = run.cells.iter().map(|(c, _)| c.id.0).collect();
        steal = steal_from_siblings(
            &cache,
            cfg,
            &salt,
            &plan,
            shard,
            priors.as_ref(),
            priors_hash,
            &wal,
            opts.jobs.max(1),
            done,
            |batch| {
                let stolen = batch.len();
                let fill = eval::evaluate_cells_priors(
                    cfg,
                    &source,
                    batch,
                    opts.jobs,
                    priors.as_ref(),
                    &runner,
                    &journal::Replay::new(),
                    |cell, model, rec| {
                        if let Err(e) = wal.append(cell, model, rec) {
                            eprintln!("[pcgbench] warning: journal append failed: {e}");
                        }
                    },
                );
                absorb_steal_stats(&mut stats, fill.stats, stolen);
            },
        );
    }
    stats.cells_stolen = steal.stolen;
    stats.steal_conflicts = steal.conflicts;
    stats.steal_scans = steal.scans + scans_before;
    stats.cell_walls.sort_by_key(|w| w.cell);
    stats.wall_s = t0.elapsed().as_secs_f64();
    stats.journal_compactions = resumed.compacted;
    stats.journal_frames_rejected = resumed.rejected;
    eprintln!("[pcgbench] shard {shard} finished in {:.1}s", stats.wall_s);
    eprint!("{}", crate::report::stats_summary(&stats));
    if let Ok(bytes) = serde_json::to_vec(&stats) {
        if let Err(e) = pipeline::atomic_write(&shard_stats_path(&cache, shard), &bytes) {
            eprintln!("[pcgbench] warning: could not write shard stats: {e}");
        }
    }
    stats
}

/// Merge `count` shard journals into the records cache and stats
/// sidecar, returning the merged record.
///
/// Missing cells (never journaled, or lost to a torn journal line) are
/// evaluated locally at `opts.jobs` workers, so the merge is tolerant
/// of partial and torn shard journals and its output is always the
/// complete grid — byte-identical to a single-process run. On a
/// successful cache commit the consumed shard journals and sidecars
/// are deleted.
pub fn merge_shards(
    path: Option<&Path>,
    cfg: &EvalConfig,
    opts: &RunOptions,
    count: u32,
    tasks: Option<&[TaskId]>,
) -> EvalRecord {
    let source = pipeline::resolve_source(cfg, opts);
    let salt = source.config_salt();
    let cache = pipeline::cache_path_for(path, cfg, &source);
    let plan = eval::plan_for(cfg, &source, tasks);
    let priors = pipeline::load_priors(opts);
    let priors_hash = priors.as_ref().map_or(0, |p| p.hash());

    let mut map: HashMap<CellId, TaskRecord> = HashMap::with_capacity(plan.len());
    let mut parts: Vec<EvalStats> = Vec::new();
    let mut rejected = 0u64;
    for k in 0..count {
        let spec = ShardSpec::new(k, count);
        let jpath = journal::shard_journal_path(&cache, spec);
        // A worker that partitioned the grid under different priors
        // journaled cells this merge assigns elsewhere — and is missing
        // cells it was supposed to own. Reject the whole journal
        // loudly; the gap fill below re-evaluates its slice.
        if let Some(stamped) = journal::peek_priors_hash(&jpath) {
            if stamped != priors_hash {
                eprintln!(
                    "[pcgbench] warning: journal {}: priors hash {stamped:016x} does not match \
                     this merge's {priors_hash:016x}; ignoring the journal (its cells will be \
                     re-evaluated) — run every worker and the merge with the same --priors",
                    jpath.display(),
                );
                rejected += 1;
                continue;
            }
        }
        let loaded = journal::load_counting_sourced(&jpath, cfg, &salt, spec, priors_hash);
        for r in &loaded.rejects {
            eprintln!("[pcgbench] warning: journal {}: rejected {r}", jpath.display());
        }
        rejected += loaded.rejects.len() as u64;
        eprintln!(
            "[pcgbench] merge: shard {spec}: {} cells from {}{}",
            loaded.replay.len(),
            jpath.display(),
            if loaded.stale_frames > 0 {
                format!(" ({} stale frames ignored)", loaded.stale_frames)
            } else {
                String::new()
            },
        );
        for (id, cell) in loaded.replay {
            map.insert(id, cell.record);
        }
        if let Ok(bytes) = std::fs::read(shard_stats_path(&cache, spec)) {
            if let Ok(stats) = serde_json::from_slice::<EvalStats>(&bytes) {
                parts.push(stats);
            }
        }
    }

    // Gap fill: whatever the shard journals did not deliver is
    // evaluated here, with the same deterministic streams any worker
    // would have used.
    let missing: Vec<_> = plan.cells().filter(|c| !map.contains_key(&c.id)).collect();
    if !missing.is_empty() {
        eprintln!(
            "[pcgbench] merge: {} cell{} missing from shard journals; evaluating locally",
            missing.len(),
            if missing.len() == 1 { "" } else { "s" },
        );
        let runner = SharedRunner::new(cfg.clone());
        let fill = eval::evaluate_cells_priors(
            cfg,
            &source,
            missing,
            opts.jobs,
            priors.as_ref(),
            &runner,
            &journal::Replay::new(),
            |_, _, _| {},
        );
        for (cell, rec) in fill.cells {
            map.insert(cell.id, rec);
        }
        parts.push(fill.stats);
    }

    let record = eval::assemble(cfg, &plan, |c| {
        map.get(&c.id).cloned().expect("every cell journaled or gap-filled")
    });
    let mut stats = combine_stats(&parts, plan.len());
    // Frames this merge itself refused, on top of whatever the workers
    // rejected during their own resumes.
    stats.journal_frames_rejected += rejected;
    eprint!("{}", crate::report::stats_summary(&stats));

    let committed = match serde_json::to_vec(&record) {
        Ok(bytes) => match pipeline::atomic_write(&cache, &bytes) {
            Ok(()) => {
                eprintln!("[pcgbench] merge: cached records at {}", cache.display());
                true
            }
            Err(e) => {
                eprintln!("[pcgbench] warning: could not cache merged records: {e}");
                false
            }
        },
        Err(e) => {
            eprintln!("[pcgbench] warning: could not serialize merged records: {e}");
            false
        }
    };
    if let Ok(bytes) = serde_json::to_vec(&stats) {
        let _ = pipeline::atomic_write(&pipeline::stats_path(cfg), &bytes);
    }
    if committed {
        pipeline::write_cols_sidecar(&cache, &record, &stats, &salt);
        if opts.keep_shards {
            // Post-mortem mode: the per-worker journals (claim frames
            // included) and sidecars are the only record of who
            // evaluated what; keep them for inspection.
            eprintln!("[pcgbench] merge: keeping shard journals and sidecars (--keep-shards)");
        } else {
            // The cache now holds everything the shard journals were
            // protecting.
            for k in 0..count {
                let spec = ShardSpec::new(k, count);
                journal::remove(&journal::shard_journal_path(&cache, spec));
                let _ = std::fs::remove_file(shard_stats_path(&cache, spec));
            }
        }
    }
    record
}

/// Combine per-process [`EvalStats`] into one merged sidecar: counters
/// and summed stage seconds add, wall clock is the max (processes ran
/// concurrently), and the quarantine lists union deterministically
/// (two shards can independently quarantine the same shared candidate;
/// the single-process run records it once). Measured cell walls union
/// by cell id (shards are disjoint, so at most one part measured any
/// cell), and each part's own wall clock is kept as one `shard_walls`
/// entry — the imbalance `report` surfaces as the merge gate.
pub fn combine_stats(parts: &[EvalStats], cells: usize) -> EvalStats {
    let mut cell_walls: Vec<crate::record::CellWall> =
        parts.iter().flat_map(|p| p.cell_walls.iter().copied()).collect();
    cell_walls.sort_by_key(|w| w.cell);
    cell_walls.dedup_by_key(|w| w.cell);
    let shard_walls: Vec<f64> = parts.iter().map(|p| p.wall_s).collect();
    let mut quarantined: Vec<crate::runner::QuarantineEntry> =
        parts.iter().flat_map(|p| p.quarantined.iter().cloned()).collect();
    quarantined.sort_by(|a, b| {
        a.task.cmp(&b.task).then_with(|| a.kind.cmp(&b.kind)).then_with(|| a.n.cmp(&b.n))
    });
    quarantined.dedup_by(|a, b| a.task == b.task && a.kind == b.kind && a.n == b.n);
    let sum = |f: fn(&EvalStats) -> u64| parts.iter().map(f).sum::<u64>();
    let sum_f = |f: fn(&EvalStats) -> f64| parts.iter().map(f).sum::<f64>();
    let max_f = |f: fn(&EvalStats) -> f64| parts.iter().map(f).fold(0.0f64, f64::max);
    EvalStats {
        jobs: parts.iter().map(|p| p.jobs).sum::<usize>().max(1),
        cells,
        executions: sum(|p| p.executions),
        cache_hits: sum(|p| p.cache_hits),
        panics: sum(|p| p.panics),
        timeouts: sum(|p| p.timeouts),
        cancelled: sum(|p| p.cancelled),
        abandoned: sum(|p| p.abandoned),
        retries: sum(|p| p.retries),
        flaky: sum(|p| p.flaky),
        resumed_cells: parts.iter().map(|p| p.resumed_cells).sum(),
        quarantined,
        queue_wait_s: sum_f(|p| p.queue_wait_s),
        max_queue_wait_s: max_f(|p| p.max_queue_wait_s),
        baseline_s: sum_f(|p| p.baseline_s),
        run_s: sum_f(|p| p.run_s),
        validate_s: sum_f(|p| p.validate_s),
        wall_s: max_f(|p| p.wall_s),
        lease_hits: sum(|p| p.lease_hits),
        lease_misses: sum(|p| p.lease_misses),
        pools_poisoned: sum(|p| p.pools_poisoned),
        input_cache_hits: sum(|p| p.input_cache_hits),
        pool_setup_s: sum_f(|p| p.pool_setup_s),
        ranks_multiplexed: sum(|p| p.ranks_multiplexed),
        bytes_zero_copied: sum(|p| p.bytes_zero_copied),
        journal_compactions: sum(|p| p.journal_compactions),
        journal_frames_rejected: sum(|p| p.journal_frames_rejected),
        deadlocks_detected: sum(|p| p.deadlocks_detected),
        stack_overflows_caught: sum(|p| p.stack_overflows_caught),
        guard_faults: sum(|p| p.guard_faults),
        leak_budget_exhausted: parts.iter().any(|p| p.leak_budget_exhausted),
        cells_stolen: sum(|p| p.cells_stolen),
        steal_conflicts: sum(|p| p.steal_conflicts),
        steal_scans: sum(|p| p.steal_scans),
        cell_walls,
        shard_walls,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_stats_paths_are_distinct_per_shard() {
        let cache = pipeline::default_cache_path(&EvalConfig::quick());
        let a = shard_stats_path(&cache, ShardSpec::new(0, 3));
        let b = shard_stats_path(&cache, ShardSpec::new(1, 3));
        assert_ne!(a, b);
        assert!(a.to_string_lossy().ends_with(".stats.shard-0-of-3"));
        assert_ne!(a, journal::shard_journal_path(&cache, ShardSpec::new(0, 3)));
    }

    #[test]
    fn combine_stats_sums_counters_and_unions_quarantine() {
        use crate::runner::QuarantineEntry;
        use pcg_core::{ExecutionModel, ProblemId, ProblemType};
        let t = ProblemId::new(ProblemType::Sort, 0).task(ExecutionModel::OpenMp);
        let q = |n: u32| QuarantineEntry {
            task: t,
            kind: "timeout".into(),
            n,
            error: "timeout".into(),
        };
        let mut a = base_stats();
        a.executions = 10;
        a.wall_s = 2.0;
        a.quarantined = vec![q(4), q(8)];
        let mut b = base_stats();
        b.executions = 5;
        b.wall_s = 3.0;
        b.quarantined = vec![q(4)]; // duplicate of a's entry
        let merged = combine_stats(&[a, b], 42);
        assert_eq!(merged.cells, 42);
        assert_eq!(merged.executions, 15);
        assert_eq!(merged.wall_s, 3.0, "concurrent processes: wall is the max");
        assert_eq!(merged.quarantined.len(), 2, "shared candidates quarantine once");
    }

    fn base_stats() -> EvalStats {
        EvalStats {
            jobs: 1,
            cells: 0,
            executions: 0,
            cache_hits: 0,
            panics: 0,
            timeouts: 0,
            cancelled: 0,
            abandoned: 0,
            retries: 0,
            flaky: 0,
            resumed_cells: 0,
            quarantined: Vec::new(),
            queue_wait_s: 0.0,
            max_queue_wait_s: 0.0,
            baseline_s: 0.0,
            run_s: 0.0,
            validate_s: 0.0,
            wall_s: 0.0,
            lease_hits: 0,
            lease_misses: 0,
            pools_poisoned: 0,
            input_cache_hits: 0,
            pool_setup_s: 0.0,
            ranks_multiplexed: 0,
            bytes_zero_copied: 0,
            journal_compactions: 0,
            journal_frames_rejected: 0,
            deadlocks_detected: 0,
            stack_overflows_caught: 0,
            guard_faults: 0,
            leak_budget_exhausted: false,
            cells_stolen: 0,
            steal_conflicts: 0,
            steal_scans: 0,
            cell_walls: Vec::new(),
            shard_walls: Vec::new(),
        }
    }

    #[test]
    fn combine_stats_sums_steal_counters() {
        let mut a = base_stats();
        a.cells_stolen = 5;
        a.steal_conflicts = 1;
        a.steal_scans = 3;
        let mut b = base_stats();
        b.cells_stolen = 2;
        b.steal_scans = 4;
        let merged = combine_stats(&[a, b], 7);
        assert_eq!(merged.cells_stolen, 7);
        assert_eq!(merged.steal_conflicts, 1);
        assert_eq!(merged.steal_scans, 7);
    }

    #[test]
    fn combine_stats_unions_cell_walls_and_collects_shard_walls() {
        use crate::record::CellWall;
        let mut a = base_stats();
        a.wall_s = 4.0;
        a.cell_walls = vec![CellWall { cell: 7, secs: 0.5 }, CellWall { cell: 3, secs: 0.25 }];
        let mut b = base_stats();
        b.wall_s = 1.0;
        b.cell_walls = vec![CellWall { cell: 5, secs: 0.75 }];
        let merged = combine_stats(&[a, b], 3);
        assert_eq!(
            merged.cell_walls.iter().map(|w| w.cell).collect::<Vec<_>>(),
            vec![3, 5, 7],
            "walls union sorted by cell id"
        );
        assert_eq!(merged.shard_walls, vec![4.0, 1.0], "one wall entry per part, part order");
        assert_eq!(merged.wall_s, 4.0);
    }

    #[test]
    fn combine_stats_sums_containment_counters_and_ors_leak_flag() {
        let mut a = base_stats();
        a.deadlocks_detected = 3;
        a.stack_overflows_caught = 2;
        a.guard_faults = 2;
        let mut b = base_stats();
        b.deadlocks_detected = 1;
        b.leak_budget_exhausted = true;
        let merged = combine_stats(&[a, b], 1);
        assert_eq!(merged.deadlocks_detected, 4);
        assert_eq!(merged.stack_overflows_caught, 2);
        assert_eq!(merged.guard_faults, 2);
        assert!(merged.leak_budget_exhausted, "any exhausted part taints the merge");
    }
}
