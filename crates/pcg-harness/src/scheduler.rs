//! Work-stealing parallel evaluation scheduler.
//!
//! Fans a static grid of evaluation cells (task × model here, but any
//! `Send` item works) across a bounded worker pool. Design constraints,
//! in order:
//!
//! 1. **Determinism independent of scheduling.** Results come back in
//!    slot order (the input order), and nothing a cell computes may
//!    depend on which worker ran it or when. The harness guarantees the
//!    latter by keying every RNG stream on grid coordinates
//!    (`pcg_core::rng::rng_for`), never on worker identity; this module
//!    guarantees the former by writing each result into its input slot.
//! 2. **Isolation.** A panicking cell is captured (`catch_unwind`) and
//!    reported per-slot; the worker survives and keeps draining the
//!    queue. (Candidate-level panic/timeout isolation is one layer
//!    down, in `runner`.)
//! 3. **Balance.** Workers own interleaved slices of the grid and steal
//!    from the back of a victim's deque when their own runs dry — cheap
//!    LIFO-steal/FIFO-own scheduling in the spirit of
//!    `pcg_shmem::Schedule::Dynamic`, but without that pool's fork-join
//!    region semantics (grid cells are coarse and independent).
//!
//! The worker count comes from `--jobs N` / `PCG_JOBS` (see
//! [`jobs_from_cli`]); `--jobs 1` degrades to an in-place serial loop
//! with identical results, which is the A/B lever the benchmarks use.

use parking_lot::Mutex;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

/// One completed grid cell.
#[derive(Debug)]
pub struct Cell<R> {
    /// The cell's computation, or the captured panic message.
    pub value: Result<R, String>,
    /// Time between grid start and a worker picking the cell up.
    pub queue_wait: Duration,
    /// Time the cell's computation ran.
    pub exec: Duration,
}

/// Render a panic payload the way the test harness would. Cooperative
/// cancellation rides the panic machinery (`pcg_core::cancel`), so its
/// marker payload gets a stable message too.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if pcg_core::cancel::is_cancel_payload(payload) {
        "cancelled".to_string()
    } else if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic (non-string payload)".to_string()
    }
}

/// The worker count to use when none is given explicitly: `PCG_JOBS`
/// if set and positive, else the machine's available parallelism.
pub fn default_jobs() -> usize {
    if let Ok(s) = std::env::var("PCG_JOBS") {
        if let Ok(n) = s.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Parse `--jobs N` / `--jobs=N` from the process arguments, falling
/// back to [`default_jobs`]. A `--jobs` that is present but not a
/// positive integer aborts with exit code 2 — silently defaulting
/// would turn a typo into the wrong A/B arm. Used by every figure
/// binary.
pub fn jobs_from_cli() -> usize {
    let args: Vec<String> = std::env::args().collect();
    match jobs_from_args(&args) {
        Ok(jobs) => jobs.unwrap_or_else(default_jobs),
        Err(bad) => {
            eprintln!("error: --jobs expects a positive integer, got {bad:?}");
            std::process::exit(2);
        }
    }
}

/// `Ok(Some(n))` for a valid flag, `Ok(None)` when absent,
/// `Err(value)` when present but not a positive integer.
fn jobs_from_args(args: &[String]) -> Result<Option<usize>, String> {
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let value = if a == "--jobs" {
            it.next().map(String::as_str).unwrap_or("")
        } else if let Some(v) = a.strip_prefix("--jobs=") {
            v
        } else {
            continue;
        };
        return match value.parse::<usize>() {
            Ok(n) if n >= 1 => Ok(Some(n)),
            _ => Err(value.to_string()),
        };
    }
    Ok(None)
}

/// Run `f` over every item of `items` on `jobs` workers, returning the
/// results in input order regardless of completion order.
///
/// `f` receives `(slot_index, &item)`. Cell panics are captured into
/// `Cell::value`; worker threads never die mid-grid.
pub fn run_grid<T, R, F>(items: Vec<T>, jobs: usize, f: F) -> Vec<Cell<R>>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    run_grid_observed(items, jobs, f, |_, _| {})
}

/// [`run_grid`] with a completion observer: `observe(slot, &cell)` runs
/// on the *calling* thread as each cell completes, in completion order
/// (not slot order). This is the hook the write-ahead journal appends
/// from — the observer is the single serialization point of the grid,
/// so journal lines need no locking discipline beyond the file itself.
pub fn run_grid_observed<T, R, F, O>(
    items: Vec<T>,
    jobs: usize,
    f: F,
    observe: O,
) -> Vec<Cell<R>>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
    O: FnMut(usize, &Cell<R>),
{
    run_grid_prioritized(items, jobs, None, f, observe)
}

/// [`run_grid_observed`] with an explicit dispatch order: when `order`
/// is given, workers *pick up* cells in that sequence (longest
/// processing time first, when the caller sorts by cost priors) while
/// results still come back in slot order and each cell's computation is
/// untouched. Dispatch order is pure scheduling — it changes wall-clock
/// tail latency, never bytes.
///
/// With an explicit order the workers share one front-pop queue (the
/// classic LPT list-scheduling discipline: next free worker takes the
/// longest remaining cell). Without one (`None`), the grid is dealt
/// round-robin into per-worker deques with back-steal, which is the
/// better default when costs are unknown. `order` must be a permutation
/// of `0..items.len()`; out-of-range or duplicate entries panic.
pub fn run_grid_prioritized<T, R, F, O>(
    items: Vec<T>,
    jobs: usize,
    order: Option<Vec<usize>>,
    f: F,
    mut observe: O,
) -> Vec<Cell<R>>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
    O: FnMut(usize, &Cell<R>),
{
    let n = items.len();
    let jobs = jobs.max(1).min(n.max(1));
    let t0 = Instant::now();

    if let Some(order) = &order {
        let mut seen = vec![false; n];
        for &slot in order {
            assert!(slot < n, "dispatch order entry {slot} out of range for {n} items");
            assert!(!seen[slot], "dispatch order repeats slot {slot}");
            seen[slot] = true;
        }
        assert!(seen.iter().all(|&s| s), "dispatch order must cover every slot");
    }

    let run_cell = |slot: usize| -> Cell<R> {
        let queue_wait = t0.elapsed();
        let started = Instant::now();
        let value = catch_unwind(AssertUnwindSafe(|| f(slot, &items[slot])))
            .map_err(|p| panic_message(&*p));
        Cell { value, queue_wait, exec: started.elapsed() }
    };

    if jobs == 1 {
        // Serial A/B path: same code path per cell, no worker threads.
        // An explicit order still reorders execution (the journal sees
        // completion order), but results scatter back to their slots.
        let mut slots: Vec<Option<Cell<R>>> = (0..n).map(|_| None).collect();
        let sequence = order.unwrap_or_else(|| (0..n).collect());
        for slot in sequence {
            let cell = run_cell(slot);
            observe(slot, &cell);
            slots[slot] = Some(cell);
        }
        return slots
            .into_iter()
            .enumerate()
            .map(|(i, c)| c.unwrap_or_else(|| panic!("grid slot {i} never completed")))
            .collect();
    }

    // Dispatch queues. With an explicit priority order, one shared
    // front-pop queue implements LPT list scheduling exactly; otherwise
    // deal the grid round-robin so every worker starts with a spread of
    // cells (adjacent cells often share a problem and therefore cost).
    let deques: Vec<Mutex<VecDeque<usize>>> = match order {
        Some(order) => vec![Mutex::new(order.into_iter().collect())],
        None => (0..jobs).map(|w| Mutex::new((w..n).step_by(jobs).collect())).collect(),
    };
    let queues = deques.len();

    let mut slots: Vec<Option<Cell<R>>> = (0..n).map(|_| None).collect();
    {
        // Hand each worker an interleaved view of the result slots:
        // worker `w` may only ever write slots it popped, and every slot
        // is popped exactly once, so the raw pointer writes are disjoint.
        // Rather than reason about that with unsafe code, collect over a
        // channel and scatter afterwards.
        let (tx, rx) = std::sync::mpsc::channel::<(usize, Cell<R>)>();
        std::thread::scope(|scope| {
            for w in 0..jobs {
                let tx = tx.clone();
                let deques = &deques;
                let run_cell = &run_cell;
                scope.spawn(move || loop {
                    // Own queue first (front), then steal (back).
                    let own = w % queues;
                    let slot = deques[own].lock().pop_front().or_else(|| {
                        (1..queues)
                            .find_map(|d| deques[(own + d) % queues].lock().pop_back())
                    });
                    match slot {
                        Some(slot) => {
                            let _ = tx.send((slot, run_cell(slot)));
                        }
                        None => break,
                    }
                });
            }
            drop(tx);
            for (slot, cell) in rx {
                observe(slot, &cell);
                slots[slot] = Some(cell);
            }
        });
    }
    slots
        .into_iter()
        .enumerate()
        .map(|(i, c)| c.unwrap_or_else(|| panic!("grid slot {i} never completed")))
        .collect()
}

/// [`run_grid`], unwrapping cell panics by re-raising the first one
/// after the whole grid has drained (so no in-flight work is lost).
pub fn run_grid_strict<T, R, F>(items: Vec<T>, jobs: usize, f: F) -> Vec<Cell<R>>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let cells = run_grid(items, jobs, f);
    if let Some((slot, msg)) = cells
        .iter()
        .enumerate()
        .find_map(|(i, c)| c.value.as_ref().err().map(|m| (i, m.clone())))
    {
        panic!("evaluation cell {slot} panicked: {msg}");
    }
    cells
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_come_back_in_slot_order() {
        let items: Vec<usize> = (0..97).collect();
        let cells = run_grid(items, 8, |i, &x| {
            assert_eq!(i, x);
            // Vary the work so completion order scrambles.
            let mut acc = 0u64;
            for k in 0..((x % 7) * 1000) {
                acc = acc.wrapping_add(k as u64);
            }
            (x * 2, acc)
        });
        assert_eq!(cells.len(), 97);
        for (i, c) in cells.iter().enumerate() {
            assert_eq!(c.value.as_ref().unwrap().0, i * 2);
        }
    }

    #[test]
    fn jobs_one_matches_jobs_many() {
        let f = |i: usize, x: &u64| x.wrapping_mul(31).wrapping_add(i as u64);
        let items: Vec<u64> = (0..64).map(|i| i * 3).collect();
        let serial: Vec<u64> =
            run_grid(items.clone(), 1, f).into_iter().map(|c| c.value.unwrap()).collect();
        let parallel: Vec<u64> =
            run_grid(items, 8, f).into_iter().map(|c| c.value.unwrap()).collect();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn every_item_runs_exactly_once() {
        let hits = AtomicUsize::new(0);
        let cells = run_grid((0..1000).collect::<Vec<_>>(), 6, |_, _| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 1000);
        assert_eq!(cells.len(), 1000);
    }

    #[test]
    fn cell_panic_is_captured_and_grid_completes() {
        let cells = run_grid((0..20).collect::<Vec<_>>(), 4, |_, &x| {
            if x == 7 {
                panic!("boom on {x}");
            }
            x
        });
        for (i, c) in cells.iter().enumerate() {
            if i == 7 {
                assert_eq!(c.value.as_ref().unwrap_err(), "boom on 7");
            } else {
                assert_eq!(*c.value.as_ref().unwrap(), i);
            }
        }
    }

    #[test]
    #[should_panic(expected = "cell 7 panicked")]
    fn strict_variant_reraises_after_drain() {
        run_grid_strict((0..20).collect::<Vec<_>>(), 4, |_, &x| {
            assert!(x != 7, "boom");
        });
    }

    #[test]
    fn empty_grid_and_oversized_jobs() {
        let cells = run_grid(Vec::<u32>::new(), 8, |_, &x| x);
        assert!(cells.is_empty());
        let cells = run_grid(vec![5u32, 6], 64, |_, &x| x + 1);
        assert_eq!(
            cells.into_iter().map(|c| c.value.unwrap()).collect::<Vec<_>>(),
            vec![6, 7]
        );
    }

    #[test]
    fn stealing_drains_a_lopsided_grid() {
        // All the work lands in worker 0's deque slots; the others must
        // steal it. (0, jobs, 2*jobs, ... are worker 0's cells under
        // round-robin dealing with jobs=4.)
        let items: Vec<usize> = (0..64).collect();
        let slow = AtomicUsize::new(0);
        let cells = run_grid(items, 4, |_, &x| {
            if x % 4 == 0 {
                slow.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(Duration::from_millis(1));
            }
            x
        });
        assert_eq!(slow.load(Ordering::Relaxed), 16);
        assert_eq!(cells.len(), 64);
    }

    #[test]
    fn queue_wait_and_exec_are_recorded() {
        let cells = run_grid(vec![1u32; 8], 2, |_, _| {
            std::thread::sleep(Duration::from_millis(2));
        });
        for c in &cells {
            assert!(c.exec >= Duration::from_millis(2));
        }
        // Later cells on a 2-worker pool must have waited in queue.
        assert!(cells.iter().any(|c| c.queue_wait > Duration::from_millis(1)));
    }

    #[test]
    fn prioritized_dispatch_respects_order_and_slot_results() {
        // At jobs=1 the execution sequence IS the order; observe()
        // records it, while results still land slot-ordered.
        let order: Vec<usize> = (0..17).rev().collect();
        let mut executed = Vec::new();
        let cells = run_grid_prioritized(
            (0..17).collect::<Vec<usize>>(),
            1,
            Some(order.clone()),
            |i, &x| {
                assert_eq!(i, x);
                x * 10
            },
            |slot, _| executed.push(slot),
        );
        assert_eq!(executed, order, "jobs=1 must execute exactly in dispatch order");
        for (i, c) in cells.iter().enumerate() {
            assert_eq!(*c.value.as_ref().unwrap(), i * 10);
        }

        // At jobs>1 results are still slot-ordered and byte-identical
        // to the unordered run; only pickup order differs.
        let f = |i: usize, x: &u64| x.wrapping_mul(31).wrapping_add(i as u64);
        let items: Vec<u64> = (0..64).map(|i| i * 3).collect();
        let plain: Vec<u64> =
            run_grid(items.clone(), 8, f).into_iter().map(|c| c.value.unwrap()).collect();
        let ordered: Vec<u64> =
            run_grid_prioritized(items, 8, Some((0..64).rev().collect()), f, |_, _| {})
                .into_iter()
                .map(|c| c.value.unwrap())
                .collect();
        assert_eq!(plain, ordered);
    }

    #[test]
    fn prioritized_dispatch_runs_long_cells_first() {
        // The head of the dispatch order must be among the first cells
        // picked up. With 2 workers each holding one cell, no third
        // pop can happen until one of the first two completes, and a
        // barrier makes both first pickups rendezvous inside `f` — so
        // the first two `f` entries are exactly the first two queue
        // pops, deterministically.
        let long_slot = 9usize;
        let order: Vec<usize> = std::iter::once(long_slot)
            .chain((0..16).filter(|&i| i != long_slot))
            .collect();
        let barrier = std::sync::Barrier::new(2);
        let entries = AtomicUsize::new(0);
        let first_two = Mutex::new(Vec::new());
        run_grid_prioritized(
            (0..16).collect::<Vec<usize>>(),
            2,
            Some(order),
            |slot, _| {
                if entries.fetch_add(1, Ordering::SeqCst) < 2 {
                    first_two.lock().push(slot);
                    barrier.wait();
                }
            },
            |_, _| {},
        );
        assert!(
            first_two.lock().contains(&long_slot),
            "the head of the dispatch order must be picked up first"
        );
    }

    #[test]
    #[should_panic(expected = "dispatch order")]
    fn prioritized_dispatch_rejects_non_permutations() {
        run_grid_prioritized(
            vec![1u32, 2, 3],
            2,
            Some(vec![0, 0, 1]),
            |_, &x| x,
            |_, _| {},
        );
    }

    #[test]
    fn jobs_flags_parse() {
        let args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert_eq!(jobs_from_args(&args(&["bin", "--jobs", "8"])), Ok(Some(8)));
        assert_eq!(jobs_from_args(&args(&["bin", "--jobs=3"])), Ok(Some(3)));
        assert_eq!(jobs_from_args(&args(&["bin"])), Ok(None));
        // Present-but-invalid must be an error, not a silent default.
        assert_eq!(jobs_from_args(&args(&["bin", "--jobs", "0"])), Err("0".into()));
        assert_eq!(jobs_from_args(&args(&["bin", "--jobs", "many"])), Err("many".into()));
        assert_eq!(jobs_from_args(&args(&["bin", "--jobs"])), Err("".into()));
        assert!(default_jobs() >= 1);
    }
}
