//! Text renderers for every paper table and figure.

use crate::record::{EvalRecord, ModelRecord};
use pcg_core::{ExecutionModel, ProblemType, TaskId};
use pcg_metrics::{efficiency_n_at_k, pass_at_k, speedup_n_at_k};
use std::fmt::Write as _;

/// Mean pass@k over a model's tasks matching `pred`, using the low- or
/// high-temperature sample set.
pub fn mean_pass_at_k(
    model: &ModelRecord,
    pred: impl Fn(TaskId) -> bool,
    k: usize,
    high: bool,
) -> f64 {
    let mut total = 0.0;
    let mut count = 0usize;
    for t in &model.tasks {
        if !pred(t.task) {
            continue;
        }
        let samples = if high {
            match &t.high {
                Some(h) => h,
                None => continue,
            }
        } else {
            &t.low
        };
        if samples.is_empty() {
            continue;
        }
        total += pass_at_k(samples.len(), samples.num_correct(), k.min(samples.len()));
        count += 1;
    }
    if count == 0 {
        0.0
    } else {
        total / count as f64
    }
}

/// Whether a task participates in performance metrics (the paper's
/// Search exclusion footnote).
pub fn perf_eligible(task: TaskId) -> bool {
    task.problem.ptype != ProblemType::Search
}

/// Headline resource count used for efficiency denominators; for
/// CUDA/HIP the paper uses the kernel thread count, which for our
/// launches is the (padded) workload size.
pub fn headline_resources(rec: &EvalRecord, task: TaskId) -> u32 {
    match task.model {
        ExecutionModel::Cuda | ExecutionModel::Hip => {
            let size = rec
                .config
                .size_for(pcg_problems::registry::problem(task.problem).default_size());
            u32::try_from(size.div_ceil(256) * 256).unwrap_or(u32::MAX)
        }
        m => m.headline_n(),
    }
}

/// Mean speedup_n@1 over a model's perf-eligible tasks matching `pred`.
pub fn mean_speedup(model: &ModelRecord, pred: impl Fn(TaskId) -> bool) -> f64 {
    let ratios: Vec<Vec<f64>> = model
        .tasks
        .iter()
        .filter(|t| pred(t.task) && perf_eligible(t.task) && !t.low.ratio.is_empty())
        .map(|t| t.low.ratio.clone())
        .collect();
    speedup_n_at_k(&ratios, 1)
}

/// Mean efficiency_n@1 with per-task denominators.
pub fn mean_efficiency(rec: &EvalRecord, model: &ModelRecord, pred: impl Fn(TaskId) -> bool) -> f64 {
    let mut total = 0.0;
    let mut count = 0usize;
    for t in &model.tasks {
        if !pred(t.task) || !perf_eligible(t.task) || t.low.ratio.is_empty() {
            continue;
        }
        let n = headline_resources(rec, t.task).max(1);
        total += speedup_n_at_k(std::slice::from_ref(&t.low.ratio), 1) / f64::from(n);
        count += 1;
    }
    if count == 0 {
        0.0
    } else {
        total / count as f64
    }
}

fn header(title: &str) -> String {
    format!("\n=== {title} ===\n")
}

/// Human-readable scheduler stats block (per-stage timing and cache
/// behavior), printed by the pipeline after an uncached run.
pub fn stats_summary(stats: &crate::record::EvalStats) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "[pcgbench] scheduler: {} cells on {} worker{} in {:.2}s wall",
        stats.cells,
        stats.jobs,
        if stats.jobs == 1 { "" } else { "s" },
        stats.wall_s,
    );
    let _ = writeln!(
        s,
        "[pcgbench]   executions: {} ({} cache hits, {} panics, {} timeouts)",
        stats.executions, stats.cache_hits, stats.panics, stats.timeouts,
    );
    let _ = writeln!(
        s,
        "[pcgbench]   stage seconds (summed over workers): baseline {:.2}, run {:.2}, validate {:.2}",
        stats.baseline_s, stats.run_s, stats.validate_s,
    );
    let _ = writeln!(
        s,
        "[pcgbench]   queue wait: {:.2}s total, {:.2}s max per cell",
        stats.queue_wait_s, stats.max_queue_wait_s,
    );
    let checkouts = stats.lease_hits + stats.lease_misses;
    if checkouts > 0 {
        let _ = writeln!(
            s,
            "[pcgbench]   warm path: {}/{} lease hits ({:.0}%), {} poisoned, {} input-cache hits, {:.2}s pool setup",
            stats.lease_hits,
            checkouts,
            100.0 * stats.lease_hits as f64 / checkouts as f64,
            stats.pools_poisoned,
            stats.input_cache_hits,
            stats.pool_setup_s,
        );
    }
    if stats.ranks_multiplexed + stats.bytes_zero_copied > 0 {
        let _ = writeln!(
            s,
            "[pcgbench]   mpi transport: {} ranks multiplexed onto fibers, {:.1} MiB moved zero-copy",
            stats.ranks_multiplexed,
            stats.bytes_zero_copied as f64 / (1024.0 * 1024.0),
        );
    }
    if stats.cancelled + stats.abandoned + stats.retries + stats.flaky > 0 {
        let _ = writeln!(
            s,
            "[pcgbench]   hostile candidates: {} cancelled, {} abandoned, {} retried ({} flaky)",
            stats.cancelled, stats.abandoned, stats.retries, stats.flaky,
        );
    }
    if stats.deadlocks_detected + stats.stack_overflows_caught + stats.guard_faults > 0 {
        let _ = writeln!(
            s,
            "[pcgbench]   containment: {} deadlocks failed fast, {} stack overflows caught ({} guard faults)",
            stats.deadlocks_detected, stats.stack_overflows_caught, stats.guard_faults,
        );
    }
    if stats.leak_budget_exhausted {
        let _ = writeln!(
            s,
            "[pcgbench]   WARNING: abandoned-worker budget exhausted during this run — \
             isolated workers blocked on leaked threads; raise max_abandoned or \
             investigate hostile candidates",
        );
    }
    if stats.shard_walls.len() >= 2 {
        let max = stats.shard_walls.iter().copied().fold(0.0f64, f64::max);
        let mean = stats.shard_walls.iter().sum::<f64>() / stats.shard_walls.len() as f64;
        let _ = writeln!(
            s,
            "[pcgbench]   shard balance: {} processes, {:.2}s max / {:.2}s mean wall (imbalance {:.2}x) — \
             the merge gate waits on the max",
            stats.shard_walls.len(),
            max,
            mean,
            if mean > 0.0 { max / mean } else { 1.0 },
        );
    }
    if stats.cells_stolen + stats.steal_conflicts + stats.steal_scans > 0 {
        let _ = writeln!(
            s,
            "[pcgbench]   work stealing: {} cell{} stolen from lagging siblings \
             ({} claim conflicts, {} sibling scans)",
            stats.cells_stolen,
            if stats.cells_stolen == 1 { "" } else { "s" },
            stats.steal_conflicts,
            stats.steal_scans,
        );
    }
    if stats.resumed_cells > 0 {
        let _ = writeln!(
            s,
            "[pcgbench]   resumed: {} cell{} replayed from the journal",
            stats.resumed_cells,
            if stats.resumed_cells == 1 { "" } else { "s" },
        );
    }
    if stats.journal_compactions > 0 {
        let _ = writeln!(
            s,
            "[pcgbench]   journal: {} stale frame{} compacted on resume",
            stats.journal_compactions,
            if stats.journal_compactions == 1 { "" } else { "s" },
        );
    }
    if stats.journal_frames_rejected > 0 {
        let _ = writeln!(
            s,
            "[pcgbench]   journal: {} corrupt frame{} rejected during replay (see stderr for offsets)",
            stats.journal_frames_rejected,
            if stats.journal_frames_rejected == 1 { "" } else { "s" },
        );
    }
    for q in &stats.quarantined {
        let _ = writeln!(
            s,
            "[pcgbench]   quarantined: {:?} kind={} n={} ({})",
            q.task, q.kind, q.n, q.error,
        );
    }
    s
}



/// Table 1: the problem-type catalog, enriched with our five problem
/// function names per type.
pub fn table1() -> String {
    let mut s = header("Table 1: PCGBench problem types");
    for ptype in ProblemType::ALL {
        let _ = writeln!(s, "{:<10} {}", ptype.label(), ptype.description());
        let names: Vec<String> = (0..pcg_core::PROBLEMS_PER_TYPE)
            .map(|v| {
                let id = pcg_core::ProblemId::new(ptype, v);
                pcg_problems::registry::problem(id).prompt().fn_name
            })
            .collect();
        let _ = writeln!(s, "{:<10}   problems: {}", "", names.join(", "));
    }
    s
}

/// Table 2: the model zoo.
pub fn table2() -> String {
    let mut s = header("Table 2: models");
    let _ = writeln!(
        s,
        "{:<20} {:>8} {:>8} {:>20} {:>10} {:>8}",
        "name", "params", "weights", "license", "HumanEval", "MBPP"
    );
    for m in pcg_models::zoo() {
        let c = m.card();
        let _ = writeln!(
            s,
            "{:<20} {:>8} {:>8} {:>20} {:>10.2} {:>8}",
            c.name,
            c.params_b.map(|p| format!("{p}B")).unwrap_or_else(|| "-".into()),
            if c.weights_available { "yes" } else { "no" },
            c.license.unwrap_or("-"),
            c.humaneval_pass1,
            c.mbpp_pass1.map(|p| format!("{p:.1}")).unwrap_or_else(|| "-".into()),
        );
    }
    s
}

/// Figure 1: pass@1 per execution model per LLM.
pub fn figure1(rec: &EvalRecord) -> String {
    let mut s = header("Figure 1: pass@1 per execution model");
    let _ = write!(s, "{:<20}", "model");
    for m in ExecutionModel::ALL {
        let _ = write!(s, "{:>9}", m.label());
    }
    let _ = writeln!(s);
    for model in &rec.models {
        let _ = write!(s, "{:<20}", model.model);
        for exec in ExecutionModel::ALL {
            let v = mean_pass_at_k(model, |t| t.model == exec, 1, false);
            let _ = write!(s, "{:>9.3}", v);
        }
        let _ = writeln!(s);
    }
    s
}

/// Figure 2: pass@1 serial vs parallel per LLM.
pub fn figure2(rec: &EvalRecord) -> String {
    let mut s = header("Figure 2: pass@1 serial vs parallel");
    let _ = writeln!(s, "{:<20}{:>9}{:>9}", "model", "serial", "parallel");
    for model in &rec.models {
        let serial = mean_pass_at_k(model, |t| !t.model.is_parallel(), 1, false);
        let parallel = mean_pass_at_k(model, |t| t.model.is_parallel(), 1, false);
        let _ = writeln!(s, "{:<20}{:>9.3}{:>9.3}", model.model, serial, parallel);
    }
    s
}

/// Figure 3: pass@1 per problem type per LLM.
pub fn figure3(rec: &EvalRecord) -> String {
    let mut s = header("Figure 3: pass@1 per problem type");
    let _ = write!(s, "{:<20}", "model");
    for t in ProblemType::ALL {
        let _ = write!(s, "{:>10}", t.label());
    }
    let _ = writeln!(s);
    for model in &rec.models {
        let _ = write!(s, "{:<20}", model.model);
        for ptype in ProblemType::ALL {
            let v = mean_pass_at_k(model, |t| t.problem.ptype == ptype, 1, false);
            let _ = write!(s, "{:>10.3}", v);
        }
        let _ = writeln!(s);
    }
    s
}

/// Figure 4: pass@k over the parallel prompts for k in {1, 5, 10, 20}
/// (high-temperature set; open models only, as in the paper).
pub fn figure4(rec: &EvalRecord) -> String {
    let mut s = header("Figure 4: pass@k on parallel prompts (temp 0.8 set)");
    let ks = [1usize, 5, 10, 20];
    let _ = write!(s, "{:<20}", "model");
    for k in ks {
        let _ = write!(s, "{:>9}", format!("pass@{k}"));
    }
    let _ = writeln!(s);
    for model in &rec.models {
        if model.tasks.iter().all(|t| t.high.is_none()) {
            continue;
        }
        let _ = write!(s, "{:<20}", model.model);
        for k in ks {
            let v = mean_pass_at_k(model, |t| t.model.is_parallel(), k, true);
            let _ = write!(s, "{:>9.3}", v);
        }
        let _ = writeln!(s);
    }
    s
}

/// Figure 5: efficiency_n@1 across resource counts for MPI, OpenMP and
/// Kokkos.
pub fn figure5(rec: &EvalRecord) -> String {
    let mut s = header("Figure 5: efficiency_n@1 vs resource count");
    for exec in [ExecutionModel::Mpi, ExecutionModel::OpenMp, ExecutionModel::Kokkos] {
        let _ = writeln!(s, "--- {} ---", exec.label());
        let sweep_ns = exec.resource_sweep();
        let _ = write!(s, "{:<20}", "model");
        for n in &sweep_ns {
            let _ = write!(s, "{:>8}", format!("n={n}"));
        }
        let _ = writeln!(s);
        for model in &rec.models {
            let _ = write!(s, "{:<20}", model.model);
            for &n in &sweep_ns {
                let ratios: Vec<Vec<f64>> = model
                    .tasks
                    .iter()
                    .filter(|t| {
                        t.task.model == exec
                            && perf_eligible(t.task)
                            && t.sweep.contains_key(&n)
                    })
                    .map(|t| t.sweep[&n].clone())
                    .collect();
                if ratios.is_empty() {
                    let _ = write!(s, "{:>8}", "-");
                } else {
                    let v = efficiency_n_at_k(&ratios, 1, n);
                    let _ = write!(s, "{:>8.3}", v);
                }
            }
            let _ = writeln!(s);
        }
    }
    s
}

/// Figure 6: speedup_n@1 per execution model per LLM (Search excluded).
pub fn figure6(rec: &EvalRecord) -> String {
    let mut s = header("Figure 6: speedup_n@1 per execution model (Search excluded)");
    let _ = write!(s, "{:<20}", "model");
    for m in ExecutionModel::PARALLEL {
        let _ = write!(s, "{:>9}", m.label());
    }
    let _ = writeln!(s, "{:>9}", "all");
    for model in &rec.models {
        let _ = write!(s, "{:<20}", model.model);
        for exec in ExecutionModel::PARALLEL {
            let v = mean_speedup(model, |t| t.model == exec);
            let _ = write!(s, "{:>9.2}", v);
        }
        let all = mean_speedup(model, |t| t.model.is_parallel());
        let _ = writeln!(s, "{:>9.2}", all);
    }
    s
}

/// Figure 7: efficiency_n@1 for serial and parallel prompts per LLM.
pub fn figure7(rec: &EvalRecord) -> String {
    let mut s = header("Figure 7: efficiency_n@1 (Search excluded)");
    let _ = writeln!(s, "{:<20}{:>9}{:>9}", "model", "serial", "parallel");
    for model in &rec.models {
        let serial = mean_efficiency(rec, model, |t| !t.model.is_parallel());
        let parallel = mean_efficiency(rec, model, |t| t.model.is_parallel());
        let _ = writeln!(s, "{:<20}{:>9.3}{:>9.3}", model.model, serial, parallel);
    }
    s
}

/// Extension artifact: `build@k` per execution model (the paper
/// computes build@k in §7.3 but shows no figure for it).
pub fn build_at_k_table(rec: &EvalRecord, k: usize) -> String {
    let mut s = header(&format!("Extension: build@{k} per execution model"));
    let _ = write!(s, "{:<20}", "model");
    for m in ExecutionModel::ALL {
        let _ = write!(s, "{:>9}", m.label());
    }
    let _ = writeln!(s);
    for model in &rec.models {
        let _ = write!(s, "{:<20}", model.model);
        for exec in ExecutionModel::ALL {
            let mut total = 0.0;
            let mut count = 0usize;
            for t in &model.tasks {
                if t.task.model != exec || t.low.is_empty() {
                    continue;
                }
                total += pass_at_k(t.low.len(), t.low.num_built(), k.min(t.low.len()));
                count += 1;
            }
            if count == 0 {
                let _ = write!(s, "{:>9}", "-");
            } else {
                let _ = write!(s, "{:>9.3}", total / count as f64);
            }
        }
        let _ = writeln!(s);
    }
    s
}

/// Extension artifact: render the prompts of the 420 tasks (the paper's
/// Listing 1 shows one example; this dumps them all).
pub fn prompts(filter: Option<ExecutionModel>) -> String {
    let mut s = String::new();
    for task in pcg_core::task::all_tasks() {
        if let Some(m) = filter {
            if task.model != m {
                continue;
            }
        }
        let spec = pcg_problems::registry::problem(task.problem).prompt();
        let _ = writeln!(s, "// ---- {task} ----");
        let _ = writeln!(s, "{}", pcg_core::prompt::render(&spec, task.model));
    }
    s
}

/// Per-prompt-variant metric rollup: mean pass@1 (serial and
/// parallel) and mean speedup_n@1 across the model rows of each
/// variant present in the record. Single-variant records collapse to
/// one line; `reproduce` prints this block only when the grid actually
/// has a variant axis.
pub fn variant_summary(rec: &EvalRecord) -> String {
    use pcg_core::prompt::split_label;
    use pcg_metrics::MetricSummary;
    // Pool every (row, task) sample set into its variant's bin — the
    // serial and parallel axes separately, since the paper reports
    // them apart — and let the metrics crate do the binning.
    let labeled = |parallel: bool| -> Vec<(pcg_core::PromptVariant, &pcg_metrics::TaskSamples)> {
        rec.models
            .iter()
            .flat_map(|m| {
                let variant = split_label(&m.model).1;
                m.tasks
                    .iter()
                    .filter(move |t| {
                        t.task.model.is_parallel() == parallel
                            && (!parallel || perf_eligible(t.task))
                    })
                    .map(move |t| (variant, &t.low))
            })
            .collect()
    };
    let serial = MetricSummary::compute_grouped(&labeled(false), 1, 1);
    let parallel = MetricSummary::compute_grouped(&labeled(true), 1, 1);
    let mut s = header("Prompt-variant rollup (pooled over model rows)");
    let _ = writeln!(
        s,
        "{:<10}{:>7}{:>9}{:>11}{:>11}",
        "variant", "tasks", "serial", "parallel", "speedup"
    );
    for (variant, par) in &parallel {
        let ser = serial
            .iter()
            .find(|(v, _)| v == variant)
            .map_or(0.0, |(_, m)| m.pass_at_k);
        let _ = writeln!(
            s,
            "{:<10}{:>7}{:>9.3}{:>11.3}{:>11.2}",
            variant.label(),
            par.tasks,
            ser,
            par.pass_at_k,
            par.speedup,
        );
    }
    s
}

/// Paper-vs-measured summary for EXPERIMENTS.md.
pub fn experiments_summary(rec: &EvalRecord) -> String {
    let mut s = header("Paper-reported vs measured");
    let _ = writeln!(
        s,
        "{:<10} {:<24} {:<20} {:>8} {:>9}",
        "artifact", "claim", "model", "paper", "measured"
    );
    // Claims about models this record never evaluated (a subset or
    // replay source) are dropped rather than printed as dashes.
    for c in crate::expected::claims()
        .into_iter()
        .filter(|c| rec.model(c.model).is_some())
    {
        let measured = match (c.artifact, c.claim) {
            ("Figure 2", "serial pass@1") => rec
                .model(c.model)
                .map(|m| mean_pass_at_k(m, |t| !t.model.is_parallel(), 1, false)),
            ("Figure 2", "parallel pass@1") => rec
                .model(c.model)
                .map(|m| mean_pass_at_k(m, |t| t.model.is_parallel(), 1, false)),
            ("Figure 1", "OpenMP pass@1") => rec
                .model(c.model)
                .map(|m| mean_pass_at_k(m, |t| t.model == ExecutionModel::OpenMp, 1, false)),
            ("Figure 4", "parallel pass@20") => rec
                .model(c.model)
                .map(|m| mean_pass_at_k(m, |t| t.model.is_parallel(), 20, true)),
            ("Figure 6", "parallel speedup_n@1") => {
                rec.model(c.model).map(|m| mean_speedup(m, |t| t.model.is_parallel()))
            }
            ("Figure 7", "parallel efficiency_n@1") => {
                rec.model(c.model).map(|m| mean_efficiency(rec, m, |t| t.model.is_parallel()))
            }
            _ => None,
        };
        let _ = writeln!(
            s,
            "{:<10} {:<24} {:<20} {:>8.2} {:>9}",
            c.artifact,
            c.claim,
            c.model,
            c.value,
            measured.map(|v| format!("{v:.2}")).unwrap_or_else(|| "-".into()),
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EvalConfig;
    use crate::record::TaskRecord;
    use pcg_core::ProblemId;
    use pcg_metrics::TaskSamples;

    fn tiny_record() -> EvalRecord {
        let t_serial = ProblemId::new(ProblemType::Transform, 0).task(ExecutionModel::Serial);
        let t_omp = ProblemId::new(ProblemType::Transform, 0).task(ExecutionModel::OpenMp);
        EvalRecord {
            config: EvalConfig::smoke(),
            models: vec![ModelRecord {
                model: "GPT-4".into(),
                tasks: vec![
                    TaskRecord {
                        task: t_serial,
                        low: TaskSamples {
                            built: vec![true, true],
                            correct: vec![true, true],
                            ratio: vec![1.0, 1.0],
                        },
                        high: None,
                        sweep: Default::default(),
                    },
                    TaskRecord {
                        task: t_omp,
                        low: TaskSamples {
                            built: vec![true, false],
                            correct: vec![true, false],
                            ratio: vec![8.0, 0.0],
                        },
                        high: None,
                        sweep: Default::default(),
                    },
                ],
            }],
        }
    }

    #[test]
    fn pass1_splits_serial_and_parallel() {
        let rec = tiny_record();
        let m = &rec.models[0];
        assert!((mean_pass_at_k(m, |t| !t.model.is_parallel(), 1, false) - 1.0).abs() < 1e-12);
        assert!((mean_pass_at_k(m, |t| t.model.is_parallel(), 1, false) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn speedup_excludes_search() {
        let rec = tiny_record();
        let m = &rec.models[0];
        let v = mean_speedup(m, |t| t.model.is_parallel());
        assert!((v - 4.0).abs() < 1e-12, "mean of [8, 0] at k=1 is 4");
    }

    #[test]
    fn figures_render_nonempty() {
        let rec = tiny_record();
        for text in [
            table1(),
            table2(),
            figure1(&rec),
            figure2(&rec),
            figure3(&rec),
            figure4(&rec),
            figure5(&rec),
            figure6(&rec),
            figure7(&rec),
            experiments_summary(&rec),
        ] {
            assert!(text.len() > 40, "{text}");
        }
    }

    #[test]
    fn build_at_k_table_renders() {
        let rec = tiny_record();
        let t = build_at_k_table(&rec, 1);
        assert!(t.contains("GPT-4"));
        assert!(t.contains("build@1"));
    }

    #[test]
    fn prompts_render_for_all_tasks() {
        let all = prompts(None);
        // 420 prompt headers.
        assert_eq!(all.matches("// ---- ").count(), 420);
        assert!(all.contains("partialMinimums"));
        let kokkos_only = prompts(Some(ExecutionModel::Kokkos));
        assert_eq!(kokkos_only.matches("// ---- ").count(), 60);
        assert!(kokkos_only.contains("parallel patterns"));
    }

    #[test]
    fn gpu_headline_resources_track_size() {
        let rec = tiny_record();
        let t = ProblemId::new(ProblemType::Transform, 0).task(ExecutionModel::Cuda);
        let n = headline_resources(&rec, t);
        assert!(n >= 256);
        assert_eq!(n % 256, 0);
    }
}
