//! # pcg-harness
//!
//! The PCGBench evaluation pipeline (paper §7): generate candidates from
//! the synthetic model zoo, "build" them, run them on the right
//! substrate, validate against the handwritten sequential baselines,
//! time them across resource counts, and aggregate the paper's metrics.
//!
//! The pipeline mirrors the paper's harness decisions:
//!
//! * a candidate is incorrect if it fails to build, crashes, exceeds the
//!   time limit, produces a wrong answer, **or never touches its
//!   required parallel programming model** (checked here via substrate
//!   instrumentation counters rather than string matching),
//! * `pass@1`-family metrics use 20 samples at temperature 0.2;
//!   `pass@k` for `k > 1` uses 200 samples at temperature 0.8, with the
//!   closed-source models excluded from the high-temperature runs (the
//!   paper skipped them for cost),
//! * performance ratios compare against the sequential baseline
//!   (`T*/T`), with Search problems excluded from performance metrics
//!   (the paper's super-linear-speedup footnote).
//!
//! Figure/table regenerators live in `src/bin/` — one binary per paper
//! artifact — all driven by [`pipeline::load_or_run`] which caches the
//! full evaluation record as JSON.
//!
//! Evaluation fans the (model × task) grid over a work-stealing worker
//! pool ([`scheduler`]); `--jobs N` / `PCG_JOBS` picks the worker
//! count, and records are byte-identical at any setting because every
//! sample stream is keyed by grid coordinates, never worker identity.
//!
//! The grid itself is **cell-addressed** (`pcg_core::plan`): every
//! (config, model, task) cell has a globally stable [`pcg_core::CellId`],
//! and a deterministic `WorkPlan` enumerates and partitions the grid.
//! That makes evaluation multi-process for free — `--shard k/N` runs
//! one coordination-free slice into its own write-ahead journal
//! ([`shard`]), and a merge step stitches shard journals into records
//! byte-identical to a single-process run.

pub mod codec;
pub mod colstats;
pub mod config;
pub mod eval;
pub mod expected;
pub mod journal;
pub mod pipeline;
pub mod record;
pub mod report;
pub mod runner;
pub mod scheduler;
pub mod shard;

pub use config::EvalConfig;
pub use record::{EvalRecord, EvalStats, ModelRecord, TaskRecord};
pub use runner::{Baseline, Outcome, Runner, SharedRunner};
