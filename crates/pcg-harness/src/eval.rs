//! The evaluation orchestrator: models x tasks -> [`EvalRecord`].
//!
//! The (model × task) grid is fanned over the work-stealing scheduler
//! (`scheduler::run_grid`); every cell draws its sample stream from the
//! model keyed by `(seed, task, model)` — never by worker identity — so
//! the resulting record is byte-identical at any `--jobs` count. One
//! [`SharedRunner`] backs the whole grid: executions are deduplicated
//! across concurrent cells, and per-stage times are collected into an
//! [`EvalStats`].

use crate::config::EvalConfig;
use crate::record::{EvalRecord, EvalStats, ModelRecord, TaskRecord};
use crate::runner::SharedRunner;
use crate::scheduler;
use pcg_core::task::all_tasks;
use pcg_core::{CandidateKind, ExecutionModel, Stage, TaskId};
use pcg_metrics::TaskSamples;
use pcg_models::SyntheticModel;
use std::collections::BTreeMap;
use std::time::Instant;

/// Evaluate `models` over `tasks` (pass `None` for the full 420),
/// serially. Identical results to [`evaluate_jobs`] at any worker
/// count.
pub fn evaluate(
    cfg: &EvalConfig,
    models: &[SyntheticModel],
    tasks: Option<&[TaskId]>,
) -> EvalRecord {
    evaluate_jobs(cfg, models, tasks, 1)
}

/// Evaluate `models` over `tasks` on `jobs` parallel workers.
pub fn evaluate_jobs(
    cfg: &EvalConfig,
    models: &[SyntheticModel],
    tasks: Option<&[TaskId]>,
    jobs: usize,
) -> EvalRecord {
    let runner = SharedRunner::new(cfg.clone());
    evaluate_with(cfg, models, tasks, jobs, &runner).0
}

/// Evaluate against a caller-provided [`SharedRunner`] (so tests can
/// share one execution cache across runs), returning the record plus
/// scheduler statistics.
///
/// Panics if an evaluation cell itself panics (candidate panics are
/// captured one layer down and become `error: Some("panic")`; a cell
/// panic means the harness is broken) — but only after the whole grid
/// has drained, so no in-flight work is lost.
pub fn evaluate_with(
    cfg: &EvalConfig,
    models: &[SyntheticModel],
    tasks: Option<&[TaskId]>,
    jobs: usize,
    runner: &SharedRunner,
) -> (EvalRecord, EvalStats) {
    evaluate_resumable(cfg, models, tasks, jobs, runner, &crate::journal::Replay::new(), |_, _| {})
}

/// [`evaluate_with`] plus crash-safety hooks: cells present in `replay`
/// (keyed by `(model name, task)`, typically recovered from a
/// write-ahead journal) are spliced into the record without being
/// re-evaluated, and `on_cell` is invoked on the calling thread — in
/// completion order, one cell at a time — for every cell that *was*
/// evaluated, so the pipeline can journal it durably.
///
/// Because sample streams are keyed by grid coordinates (never by
/// worker identity, time, or which cells ran before), the merged
/// record is byte-identical to an uninterrupted run against the same
/// runner: replayed cells contribute their journaled bytes verbatim
/// (JSON round trips are lossless) and fresh cells recompute exactly
/// what the interrupted run would have produced.
pub fn evaluate_resumable(
    cfg: &EvalConfig,
    models: &[SyntheticModel],
    tasks: Option<&[TaskId]>,
    jobs: usize,
    runner: &SharedRunner,
    replay: &crate::journal::Replay,
    mut on_cell: impl FnMut(&str, &TaskRecord),
) -> (EvalRecord, EvalStats) {
    let task_list: Vec<TaskId> = match tasks {
        Some(t) => t.to_vec(),
        None => all_tasks().collect(),
    };

    // Model-major grid: slot = model_idx * tasks + task_idx, so results
    // regroup into records by simple slicing. Replayed cells fill their
    // slot up front; only the remainder is scheduled.
    let nt = task_list.len();
    let n_cells = models.len() * nt;
    let mut slots: Vec<Option<TaskRecord>> = Vec::with_capacity(n_cells);
    let mut pending: Vec<(usize, TaskId)> = Vec::new();
    let mut pending_slots: Vec<usize> = Vec::new();
    for (mi, model) in models.iter().enumerate() {
        let name = model.card().name;
        for (ti, &task) in task_list.iter().enumerate() {
            match replay.get(&(name.to_string(), task)) {
                Some(rec) => slots.push(Some(rec.clone())),
                None => {
                    pending.push((mi, task));
                    pending_slots.push(mi * nt + ti);
                    slots.push(None);
                }
            }
        }
    }
    let resumed_cells = n_cells - pending.len();

    let t0 = Instant::now();
    let results = scheduler::run_grid_observed(
        pending,
        jobs,
        |_, &(mi, task)| evaluate_task(cfg, runner, &models[mi], task),
        |local, cell| {
            if let Ok(rec) = &cell.value {
                let mi = pending_slots[local] / nt;
                on_cell(models[mi].card().name, rec);
            }
        },
    );
    let wall_s = t0.elapsed().as_secs_f64();

    let mut queue_wait_s = 0.0;
    let mut max_queue_wait_s = 0.0f64;
    for (local, cell) in results.into_iter().enumerate() {
        queue_wait_s += cell.queue_wait.as_secs_f64();
        max_queue_wait_s = max_queue_wait_s.max(cell.queue_wait.as_secs_f64());
        let slot = pending_slots[local];
        match cell.value {
            Ok(rec) => slots[slot] = Some(rec),
            Err(msg) => {
                let (mi, ti) = (slot / nt, slot % nt);
                panic!(
                    "evaluation cell for model {} task {:?} panicked: {msg}",
                    models[mi].card().name,
                    task_list[ti],
                );
            }
        }
    }
    let task_records: Vec<TaskRecord> =
        slots.into_iter().map(|s| s.expect("every slot filled")).collect();

    let mut model_records = Vec::with_capacity(models.len());
    let mut rest = task_records;
    for model in models {
        let tail = rest.split_off(task_list.len());
        model_records.push(ModelRecord {
            model: model.card().name.to_string(),
            tasks: rest,
        });
        rest = tail;
    }

    let stats = EvalStats {
        jobs: jobs.max(1),
        cells: n_cells,
        executions: runner.executions(),
        cache_hits: runner.cache_hits(),
        panics: runner.panics(),
        timeouts: runner.timeouts(),
        cancelled: runner.cancelled(),
        abandoned: runner.abandoned(),
        retries: runner.retries(),
        flaky: runner.flaky(),
        resumed_cells,
        quarantined: runner.quarantined(),
        queue_wait_s,
        max_queue_wait_s,
        baseline_s: runner.stage_seconds(Stage::Baseline),
        run_s: runner.stage_seconds(Stage::Run),
        validate_s: runner.stage_seconds(Stage::Validate),
        wall_s,
        lease_hits: runner.lease_hits(),
        lease_misses: runner.lease_misses(),
        pools_poisoned: runner.pools_poisoned(),
        input_cache_hits: runner.input_cache_hits(),
        pool_setup_s: runner.pool_setup_s(),
        ranks_multiplexed: runner.ranks_multiplexed(),
        bytes_zero_copied: runner.bytes_zero_copied(),
    };
    (EvalRecord { config: cfg.clone(), models: model_records }, stats)
}

fn evaluate_task(
    cfg: &EvalConfig,
    runner: &SharedRunner,
    model: &SyntheticModel,
    task: TaskId,
) -> TaskRecord {
    let headline = task.model.headline_n();

    // Low-temperature set: correctness + headline performance.
    let kinds_low = model.sample_n(task, cfg.temp_low, cfg.samples_low, cfg.seed);
    let mut low = TaskSamples::default();
    for &kind in &kinds_low {
        let out = runner.outcome(task, kind, headline);
        low.built.push(out.built);
        low.correct.push(out.correct);
        low.ratio.push(runner.ratio(task, kind, headline));
    }

    // High-temperature set: correctness only; the paper excludes the
    // closed-source models from the 200-sample runs for cost.
    let high = if cfg.skip_high_temp || !model.card().weights_available {
        None
    } else {
        let kinds = model.sample_n(task, cfg.temp_high, cfg.samples_high, cfg.seed);
        let mut high = TaskSamples::default();
        for &kind in &kinds {
            // Correctness is resource-independent; reuse the smallest
            // meaningful resource count to keep the 200-sample set fast.
            let out = runner.outcome(task, kind, headline.clamp(1, 4));
            high.built.push(out.built);
            high.correct.push(out.correct);
            high.ratio.push(0.0);
        }
        Some(high)
    };

    // Resource sweeps (Figure 5): OpenMP, Kokkos, and MPI only.
    let mut sweep = BTreeMap::new();
    let sweep_models =
        [ExecutionModel::OpenMp, ExecutionModel::Kokkos, ExecutionModel::Mpi];
    if !cfg.skip_sweeps && sweep_models.contains(&task.model) {
        for n in task.model.resource_sweep() {
            let ratios: Vec<f64> =
                kinds_low.iter().map(|&k| runner.ratio(task, k, n)).collect();
            sweep.insert(n, ratios);
        }
    }

    TaskRecord { task, low, high, sweep }
}

/// The subset of tasks for a quick smoke evaluation: one problem per
/// problem type, all execution models (84 tasks).
pub fn smoke_tasks() -> Vec<TaskId> {
    all_tasks().filter(|t| t.problem.variant == 0).collect()
}

/// Pick a kind that exists in the sample stream (test helper).
pub fn kinds_summary(kinds: &[CandidateKind]) -> BTreeMap<&'static str, usize> {
    let mut m = BTreeMap::new();
    for k in kinds {
        *m.entry(k.code()).or_insert(0) += 1;
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcg_core::{ProblemId, ProblemType};

    #[test]
    fn smoke_eval_produces_sane_records() {
        let cfg = EvalConfig::smoke();
        let model = SyntheticModel::by_name("CodeLlama-13B").unwrap();
        // Two tasks: one serial, one OpenMP, same easy problem.
        let p = ProblemId::new(ProblemType::Transform, 0);
        let tasks = vec![p.task(ExecutionModel::Serial), p.task(ExecutionModel::OpenMp)];
        let record = evaluate(&cfg, &[model], Some(&tasks));
        assert_eq!(record.models.len(), 1);
        let m = &record.models[0];
        assert_eq!(m.tasks.len(), 2);
        for t in &m.tasks {
            assert_eq!(t.low.len(), cfg.samples_low);
            let high = t.high.as_ref().expect("open models collect the high-temp set");
            assert_eq!(high.len(), cfg.samples_high);
        }
    }

    #[test]
    fn closed_models_skip_high_temp() {
        let cfg = EvalConfig::smoke();
        let gpt = SyntheticModel::by_name("GPT-4").unwrap();
        let open = SyntheticModel::by_name("CodeLlama-7B").unwrap();
        let p = ProblemId::new(ProblemType::Transform, 0);
        let tasks = vec![p.task(ExecutionModel::Serial)];
        let record = evaluate(&cfg, &[gpt, open], Some(&tasks));
        assert!(record.model("GPT-4").unwrap().tasks[0].high.is_none());
        assert!(record.model("CodeLlama-7B").unwrap().tasks[0].high.is_some());
    }

    #[test]
    fn smoke_tasks_cover_all_types_and_models() {
        let tasks = smoke_tasks();
        assert_eq!(tasks.len(), 12 * 7);
    }

    #[test]
    fn parallel_eval_reports_stats() {
        let cfg = EvalConfig::smoke();
        let model = SyntheticModel::by_name("CodeLlama-13B").unwrap();
        let p = ProblemId::new(ProblemType::Transform, 0);
        let tasks: Vec<TaskId> = [
            ExecutionModel::Serial,
            ExecutionModel::OpenMp,
            ExecutionModel::Cuda,
            ExecutionModel::Kokkos,
        ]
        .iter()
        .map(|&m| p.task(m))
        .collect();
        let runner = SharedRunner::new(cfg.clone());
        let (record, stats) =
            evaluate_with(&cfg, &[model], Some(&tasks), 4, &runner);
        assert_eq!(record.models[0].tasks.len(), 4);
        assert_eq!(stats.jobs, 4);
        assert_eq!(stats.cells, 4);
        assert!(stats.executions > 0);
        assert!(stats.cache_hits > 0, "shared kinds must dedup executions");
        assert_eq!(stats.panics, 0);
        assert_eq!(stats.timeouts, 0);
        assert!(stats.wall_s > 0.0);
        assert!(stats.run_s > 0.0);
    }
}
