//! The evaluation orchestrator: models x tasks -> [`EvalRecord`].

use crate::config::EvalConfig;
use crate::record::{EvalRecord, ModelRecord, TaskRecord};
use crate::runner::Runner;
use pcg_core::task::all_tasks;
use pcg_core::{CandidateKind, ExecutionModel, TaskId};
use pcg_metrics::TaskSamples;
use pcg_models::SyntheticModel;
use std::collections::BTreeMap;

/// Evaluate `models` over `tasks` (pass `None` for the full 420).
pub fn evaluate(
    cfg: &EvalConfig,
    models: &[SyntheticModel],
    tasks: Option<&[TaskId]>,
) -> EvalRecord {
    let task_list: Vec<TaskId> = match tasks {
        Some(t) => t.to_vec(),
        None => all_tasks().collect(),
    };
    let mut runner = Runner::new(cfg.clone());
    let mut model_records = Vec::with_capacity(models.len());
    for model in models {
        let mut task_records = Vec::with_capacity(task_list.len());
        for &task in &task_list {
            task_records.push(evaluate_task(cfg, &mut runner, model, task));
        }
        model_records.push(ModelRecord {
            model: model.card().name.to_string(),
            tasks: task_records,
        });
    }
    EvalRecord { config: cfg.clone(), models: model_records }
}

fn evaluate_task(
    cfg: &EvalConfig,
    runner: &mut Runner,
    model: &SyntheticModel,
    task: TaskId,
) -> TaskRecord {
    let headline = task.model.headline_n();

    // Low-temperature set: correctness + headline performance.
    let kinds_low = model.sample_n(task, cfg.temp_low, cfg.samples_low, cfg.seed);
    let mut low = TaskSamples::default();
    for &kind in &kinds_low {
        let out = runner.outcome(task, kind, headline);
        low.built.push(out.built);
        low.correct.push(out.correct);
        low.ratio.push(runner.ratio(task, kind, headline));
    }

    // High-temperature set: correctness only; the paper excludes the
    // closed-source models from the 200-sample runs for cost.
    let high = if cfg.skip_high_temp || !model.card().weights_available {
        None
    } else {
        let kinds = model.sample_n(task, cfg.temp_high, cfg.samples_high, cfg.seed);
        let mut high = TaskSamples::default();
        for &kind in &kinds {
            // Correctness is resource-independent; reuse the smallest
            // meaningful resource count to keep the 200-sample set fast.
            let out = runner.outcome(task, kind, headline.clamp(1, 4));
            high.built.push(out.built);
            high.correct.push(out.correct);
            high.ratio.push(0.0);
        }
        Some(high)
    };

    // Resource sweeps (Figure 5): OpenMP, Kokkos, and MPI only.
    let mut sweep = BTreeMap::new();
    let sweep_models =
        [ExecutionModel::OpenMp, ExecutionModel::Kokkos, ExecutionModel::Mpi];
    if !cfg.skip_sweeps && sweep_models.contains(&task.model) {
        for n in task.model.resource_sweep() {
            let ratios: Vec<f64> =
                kinds_low.iter().map(|&k| runner.ratio(task, k, n)).collect();
            sweep.insert(n, ratios);
        }
    }

    TaskRecord { task, low, high, sweep }
}

/// The subset of tasks for a quick smoke evaluation: one problem per
/// problem type, all execution models (84 tasks).
pub fn smoke_tasks() -> Vec<TaskId> {
    all_tasks().filter(|t| t.problem.variant == 0).collect()
}

/// Pick a kind that exists in the sample stream (test helper).
pub fn kinds_summary(kinds: &[CandidateKind]) -> BTreeMap<&'static str, usize> {
    let mut m = BTreeMap::new();
    for k in kinds {
        *m.entry(k.code()).or_insert(0) += 1;
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcg_core::{ProblemId, ProblemType};

    #[test]
    fn smoke_eval_produces_sane_records() {
        let cfg = EvalConfig::smoke();
        let model = SyntheticModel::by_name("CodeLlama-13B").unwrap();
        // Two tasks: one serial, one OpenMP, same easy problem.
        let p = ProblemId::new(ProblemType::Transform, 0);
        let tasks = vec![p.task(ExecutionModel::Serial), p.task(ExecutionModel::OpenMp)];
        let record = evaluate(&cfg, &[model], Some(&tasks));
        assert_eq!(record.models.len(), 1);
        let m = &record.models[0];
        assert_eq!(m.tasks.len(), 2);
        for t in &m.tasks {
            assert_eq!(t.low.len(), cfg.samples_low);
            let high = t.high.as_ref().expect("open models collect the high-temp set");
            assert_eq!(high.len(), cfg.samples_high);
        }
    }

    #[test]
    fn closed_models_skip_high_temp() {
        let cfg = EvalConfig::smoke();
        let gpt = SyntheticModel::by_name("GPT-4").unwrap();
        let open = SyntheticModel::by_name("CodeLlama-7B").unwrap();
        let p = ProblemId::new(ProblemType::Transform, 0);
        let tasks = vec![p.task(ExecutionModel::Serial)];
        let record = evaluate(&cfg, &[gpt, open], Some(&tasks));
        assert!(record.model("GPT-4").unwrap().tasks[0].high.is_none());
        assert!(record.model("CodeLlama-7B").unwrap().tasks[0].high.is_some());
    }

    #[test]
    fn smoke_tasks_cover_all_types_and_models() {
        let tasks = smoke_tasks();
        assert_eq!(tasks.len(), 12 * 7);
    }
}
