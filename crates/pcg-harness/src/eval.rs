//! The evaluation coordinator: a [`WorkPlan`] subset -> task records.
//!
//! Evaluation is organized around the cell-addressed work model
//! (`pcg_core::plan`): the (model × task) grid is enumerated into a
//! [`WorkPlan`] whose cells carry globally stable [`CellId`]s, and the
//! coordinator ([`evaluate_cells`]) executes **any subset** of that
//! plan — the whole grid for a single-process run, one deterministic
//! shard (`id % shard_count`) for a multi-process worker, or an
//! arbitrary gap-fill list for `merge`. Cells are fanned over the
//! work-stealing scheduler (`scheduler::run_grid`); every cell draws
//! its sample stream from the model keyed by `(seed, task, model)` —
//! never by worker identity — so the resulting records are
//! byte-identical at any `--jobs` count *and* across any shard
//! topology. One [`SharedRunner`] backs each invocation: executions
//! are deduplicated across concurrent cells, and per-stage times are
//! collected into an [`EvalStats`].
//!
//! Candidate provenance is abstract: every entry point takes any
//! [`CandidateSource`] — a `&[SyntheticModel]` slice (the legacy zoo,
//! byte-for-byte), a `SyntheticSource` crossing the zoo with prompt
//! variants, or a `ReplaySource` re-scoring a dumped pool. The
//! source's [`CandidateSource::config_salt`] is folded into the plan's
//! config hash, so cells from different pools can never be confused.

use crate::config::EvalConfig;
use crate::journal::Replay;
use crate::record::{CellWall, EvalRecord, EvalStats, ModelRecord, TaskRecord};
use crate::runner::SharedRunner;
use crate::scheduler;
use pcg_core::plan::{CellId, PlanCell, ShardSpec, WorkPlan};
use pcg_core::task::all_tasks;
use pcg_core::{CandidateKind, CostPriors, ExecutionModel, Stage, TaskId};
use pcg_metrics::TaskSamples;
use pcg_models::{CandidateSource, SampleSpec};
use std::collections::BTreeMap;
use std::time::Instant;

/// The deterministic [`WorkPlan`] for `source`'s rows × `tasks` under
/// `cfg` (pass `None` for the full 420-task grid). Every process that
/// holds the same config and source derives the identical plan — cell
/// ids included — which is what makes sharded execution
/// coordination-free. The source's salt is folded into the plan's
/// config hash ([`crate::journal::config_hash_with`]); the default
/// synthetic path salts nothing and keys exactly as before.
pub fn plan_for<S: CandidateSource + ?Sized>(
    cfg: &EvalConfig,
    source: &S,
    tasks: Option<&[TaskId]>,
) -> WorkPlan {
    let task_list: Vec<TaskId> = match tasks {
        Some(t) => t.to_vec(),
        None => all_tasks().collect(),
    };
    WorkPlan::new(
        crate::journal::config_hash_with(cfg, &source.config_salt()),
        source.model_names(),
        task_list,
    )
}

/// The outcome of evaluating one plan subset: each owned cell paired
/// with its record (plan order), plus the run's statistics.
pub struct SubsetRun {
    /// `(cell, record)` for every cell this invocation owned —
    /// replayed or freshly evaluated — in plan order.
    pub cells: Vec<(PlanCell, TaskRecord)>,
    /// Scheduler/runner statistics for the invocation.
    pub stats: EvalStats,
}

/// Evaluate `source`'s rows over `tasks` (pass `None` for the full
/// 420), serially. Identical results to [`evaluate_jobs`] at any
/// worker count.
pub fn evaluate<S: CandidateSource + Sync + ?Sized>(
    cfg: &EvalConfig,
    source: &S,
    tasks: Option<&[TaskId]>,
) -> EvalRecord {
    evaluate_jobs(cfg, source, tasks, 1)
}

/// Evaluate `source`'s rows over `tasks` on `jobs` parallel workers.
pub fn evaluate_jobs<S: CandidateSource + Sync + ?Sized>(
    cfg: &EvalConfig,
    source: &S,
    tasks: Option<&[TaskId]>,
    jobs: usize,
) -> EvalRecord {
    let runner = SharedRunner::new(cfg.clone());
    evaluate_with(cfg, source, tasks, jobs, &runner).0
}

/// Evaluate against a caller-provided [`SharedRunner`] (so tests can
/// share one execution cache across runs), returning the record plus
/// scheduler statistics.
///
/// Panics if an evaluation cell itself panics (candidate panics are
/// captured one layer down and become `error: Some("panic")`; a cell
/// panic means the harness is broken) — but only after the whole grid
/// has drained, so no in-flight work is lost.
pub fn evaluate_with<S: CandidateSource + Sync + ?Sized>(
    cfg: &EvalConfig,
    source: &S,
    tasks: Option<&[TaskId]>,
    jobs: usize,
    runner: &SharedRunner,
) -> (EvalRecord, EvalStats) {
    evaluate_resumable(cfg, source, tasks, jobs, runner, &Replay::new(), |_, _, _| {})
}

/// [`evaluate_with`] plus crash-safety hooks: cells present in `replay`
/// (keyed by [`CellId`], typically recovered from a write-ahead
/// journal) are spliced into the record without being re-evaluated,
/// and `on_cell` is invoked on the calling thread — in completion
/// order, one cell at a time — for every cell that *was* evaluated, so
/// the pipeline can journal it durably.
///
/// Because sample streams are keyed by grid coordinates (never by
/// worker identity, time, or which cells ran before), the merged
/// record is byte-identical to an uninterrupted run against the same
/// runner: replayed cells contribute their journaled bytes verbatim
/// (JSON round trips are lossless) and fresh cells recompute exactly
/// what the interrupted run would have produced.
pub fn evaluate_resumable<S: CandidateSource + Sync + ?Sized>(
    cfg: &EvalConfig,
    source: &S,
    tasks: Option<&[TaskId]>,
    jobs: usize,
    runner: &SharedRunner,
    replay: &Replay,
    on_cell: impl FnMut(CellId, &str, &TaskRecord),
) -> (EvalRecord, EvalStats) {
    evaluate_resumable_priors(cfg, source, tasks, jobs, None, runner, replay, on_cell)
}

/// [`evaluate_resumable`] with a scheduling cost table: pending cells
/// are dispatched longest-expected-first (LPT). Priors only reorder
/// execution — the returned record is byte-identical with or without
/// them, at any worker count.
#[allow(clippy::too_many_arguments)]
pub fn evaluate_resumable_priors<S: CandidateSource + Sync + ?Sized>(
    cfg: &EvalConfig,
    source: &S,
    tasks: Option<&[TaskId]>,
    jobs: usize,
    priors: Option<&CostPriors>,
    runner: &SharedRunner,
    replay: &Replay,
    on_cell: impl FnMut(CellId, &str, &TaskRecord),
) -> (EvalRecord, EvalStats) {
    let plan = plan_for(cfg, source, tasks);
    let run = evaluate_plan_priors(
        cfg,
        source,
        &plan,
        ShardSpec::WHOLE,
        jobs,
        priors,
        runner,
        replay,
        on_cell,
    );
    let mut records = run.cells.into_iter().map(|(_, rec)| rec);
    let record = assemble(cfg, &plan, |_| records.next().expect("whole grid covered"));
    (record, run.stats)
}

/// Evaluate the cells of `plan` that belong to `shard`. The whole-grid
/// spec ([`ShardSpec::WHOLE`]) makes this the single-process
/// coordinator; any other spec makes it a shard worker executing its
/// deterministic `id % shard_count` slice.
#[allow(clippy::too_many_arguments)]
pub fn evaluate_plan<S: CandidateSource + Sync + ?Sized>(
    cfg: &EvalConfig,
    source: &S,
    plan: &WorkPlan,
    shard: ShardSpec,
    jobs: usize,
    runner: &SharedRunner,
    replay: &Replay,
    on_cell: impl FnMut(CellId, &str, &TaskRecord),
) -> SubsetRun {
    evaluate_plan_priors(cfg, source, plan, shard, jobs, None, runner, replay, on_cell)
}

/// [`evaluate_plan`] with a scheduling cost table. The table changes
/// **which** cells this shard owns (cost-weighted LPT bin-packing via
/// [`WorkPlan::shard_with`] instead of `id % count`) and **when** they
/// run (longest-expected-first dispatch) — never what any cell
/// computes. Every cooperating worker must pass a table with the same
/// hash stamp (or none at all); the journal header records the stamp so
/// the merge can enforce it.
#[allow(clippy::too_many_arguments)]
pub fn evaluate_plan_priors<S: CandidateSource + Sync + ?Sized>(
    cfg: &EvalConfig,
    source: &S,
    plan: &WorkPlan,
    shard: ShardSpec,
    jobs: usize,
    priors: Option<&CostPriors>,
    runner: &SharedRunner,
    replay: &Replay,
    on_cell: impl FnMut(CellId, &str, &TaskRecord),
) -> SubsetRun {
    evaluate_cells_priors(
        cfg,
        source,
        plan.shard_with(shard, priors),
        jobs,
        priors,
        runner,
        replay,
        on_cell,
    )
}

/// The core coordinator: evaluate an explicit subset of plan cells.
///
/// `source` must be the candidate source the plan was built from
/// (cells index into its rows). Cells found in `replay` are spliced in
/// without re-evaluation; the rest are fanned over the scheduler.
/// Results come back in `owned` order regardless of completion order.
pub fn evaluate_cells<S: CandidateSource + Sync + ?Sized>(
    cfg: &EvalConfig,
    source: &S,
    owned: Vec<PlanCell>,
    jobs: usize,
    runner: &SharedRunner,
    replay: &Replay,
    on_cell: impl FnMut(CellId, &str, &TaskRecord),
) -> SubsetRun {
    evaluate_cells_priors(cfg, source, owned, jobs, None, runner, replay, on_cell)
}

/// [`evaluate_cells`] with longest-processing-time dispatch: when a
/// priors table is given, pending cells are handed to workers in
/// descending expected-cost order (ties broken by cell id), which is
/// the classic LPT list-scheduling discipline. Results still come back
/// in `owned` order and every cell computes exactly what it would have
/// computed under any other dispatch order.
#[allow(clippy::too_many_arguments)]
pub fn evaluate_cells_priors<S: CandidateSource + Sync + ?Sized>(
    cfg: &EvalConfig,
    source: &S,
    owned: Vec<PlanCell>,
    jobs: usize,
    priors: Option<&CostPriors>,
    runner: &SharedRunner,
    replay: &Replay,
    mut on_cell: impl FnMut(CellId, &str, &TaskRecord),
) -> SubsetRun {
    // Row labels are resolved once: they key LPT weights, journal
    // appends, and panic diagnostics. Chaos injection travels inside
    // the [`SampleSpec`] — the source folds the config's
    // containment-defect rates into its failure mixes, an exact no-op
    // at the (0, 0) default.
    let names = source.model_names();

    let n_cells = owned.len();
    let mut slots: Vec<Option<TaskRecord>> = Vec::with_capacity(n_cells);
    let mut pending: Vec<PlanCell> = Vec::new();
    let mut pending_slots: Vec<usize> = Vec::new();
    for (i, cell) in owned.iter().enumerate() {
        match replay.get(&cell.id) {
            Some(r) => slots.push(Some(r.record.clone())),
            None => {
                pending.push(*cell);
                pending_slots.push(i);
                slots.push(None);
            }
        }
    }
    let resumed_cells = n_cells - pending.len();
    let pending_cells = pending.clone();

    // LPT dispatch order: hand workers the expected-longest cells
    // first so no straggler starts near the end of the grid. Ties
    // break by cell id, making the order identical in every process
    // that holds an identically-stamped priors table.
    let order = priors.map(|p| {
        let weights: Vec<f64> = pending
            .iter()
            .map(|c| p.cost(&names[c.model], c.task))
            .collect();
        let mut idx: Vec<usize> = (0..pending.len()).collect();
        idx.sort_by(|&a, &b| {
            weights[b]
                .total_cmp(&weights[a])
                .then(pending[a].id.cmp(&pending[b].id))
        });
        idx
    });

    let t0 = Instant::now();
    let results = scheduler::run_grid_prioritized(
        pending,
        jobs,
        order,
        |_, cell| evaluate_task(cfg, runner, source, cell.model, cell.task),
        |local, cell| {
            if let Ok(rec) = &cell.value {
                let c = pending_cells[local];
                on_cell(c.id, &names[c.model], rec);
            }
        },
    );
    let wall_s = t0.elapsed().as_secs_f64();

    let mut queue_wait_s = 0.0;
    let mut max_queue_wait_s = 0.0f64;
    let mut cell_walls = Vec::with_capacity(results.len());
    for (local, cell) in results.into_iter().enumerate() {
        queue_wait_s += cell.queue_wait.as_secs_f64();
        max_queue_wait_s = max_queue_wait_s.max(cell.queue_wait.as_secs_f64());
        cell_walls.push(CellWall {
            cell: pending_cells[local].id.0,
            secs: cell.exec.as_secs_f64(),
        });
        match cell.value {
            Ok(rec) => slots[pending_slots[local]] = Some(rec),
            Err(msg) => {
                let c = pending_cells[local];
                panic!(
                    "evaluation cell {} for model {} task {:?} panicked: {msg}",
                    c.id, names[c.model], c.task,
                );
            }
        }
    }
    let cells: Vec<(PlanCell, TaskRecord)> = owned
        .into_iter()
        .zip(slots)
        .map(|(c, s)| (c, s.expect("every slot filled")))
        .collect();
    cell_walls.sort_by_key(|w| w.cell);

    let stats = EvalStats {
        jobs: jobs.max(1),
        cells: n_cells,
        executions: runner.executions(),
        cache_hits: runner.cache_hits(),
        panics: runner.panics(),
        timeouts: runner.timeouts(),
        cancelled: runner.cancelled(),
        abandoned: runner.abandoned(),
        retries: runner.retries(),
        flaky: runner.flaky(),
        resumed_cells,
        quarantined: runner.quarantined(),
        queue_wait_s,
        max_queue_wait_s,
        baseline_s: runner.stage_seconds(Stage::Baseline),
        run_s: runner.stage_seconds(Stage::Run),
        validate_s: runner.stage_seconds(Stage::Validate),
        wall_s,
        lease_hits: runner.lease_hits(),
        lease_misses: runner.lease_misses(),
        pools_poisoned: runner.pools_poisoned(),
        input_cache_hits: runner.input_cache_hits(),
        pool_setup_s: runner.pool_setup_s(),
        ranks_multiplexed: runner.ranks_multiplexed(),
        bytes_zero_copied: runner.bytes_zero_copied(),
        journal_compactions: 0,
        journal_frames_rejected: 0,
        deadlocks_detected: runner.deadlocks_detected(),
        stack_overflows_caught: runner.stack_overflows_caught(),
        guard_faults: runner.guard_faults(),
        leak_budget_exhausted: runner.leak_budget_exhausted(),
        cells_stolen: 0,
        steal_conflicts: 0,
        steal_scans: 0,
        cell_walls,
        shard_walls: Vec::new(),
    };
    SubsetRun { cells, stats }
}

/// Assemble a whole-grid [`EvalRecord`] from per-cell records, pulling
/// each cell's record from `take` in plan (model-major) order. The
/// caller guarantees coverage: single-process runs pass their ordered
/// results, `merge` passes a map filled from shard journals plus
/// gap-fill evaluation.
pub fn assemble(
    cfg: &EvalConfig,
    plan: &WorkPlan,
    mut take: impl FnMut(&PlanCell) -> TaskRecord,
) -> EvalRecord {
    let mut model_records: Vec<ModelRecord> = plan
        .models()
        .iter()
        .map(|name| ModelRecord {
            model: name.clone(),
            tasks: Vec::with_capacity(plan.tasks().len()),
        })
        .collect();
    for cell in plan.cells() {
        model_records[cell.model].tasks.push(take(&cell));
    }
    EvalRecord { config: cfg.clone(), models: model_records }
}

fn evaluate_task<S: CandidateSource + ?Sized>(
    cfg: &EvalConfig,
    runner: &SharedRunner,
    source: &S,
    model: usize,
    task: TaskId,
) -> TaskRecord {
    let headline = task.model.headline_n();
    let spec = |temperature: f64, n: usize| SampleSpec {
        temperature,
        n,
        seed: cfg.seed,
        deadlock_rate: cfg.deadlock_rate,
        stack_hog_rate: cfg.stack_hog_rate,
    };

    // Low-temperature set: correctness + headline performance.
    let kinds_low = source.sample(model, task, &spec(cfg.temp_low, cfg.samples_low));
    let mut low = TaskSamples::default();
    for &kind in &kinds_low {
        let out = runner.outcome(task, kind, headline);
        low.built.push(out.built);
        low.correct.push(out.correct);
        low.ratio.push(runner.ratio(task, kind, headline));
    }

    // High-temperature set: correctness only; the paper excludes the
    // closed-source models from the 200-sample runs for cost.
    let high = if cfg.skip_high_temp || !source.weights_available(model) {
        None
    } else {
        let kinds = source.sample(model, task, &spec(cfg.temp_high, cfg.samples_high));
        let mut high = TaskSamples::default();
        for &kind in &kinds {
            // Correctness is resource-independent; reuse the smallest
            // meaningful resource count to keep the 200-sample set fast.
            let out = runner.outcome(task, kind, headline.clamp(1, 4));
            high.built.push(out.built);
            high.correct.push(out.correct);
            high.ratio.push(0.0);
        }
        Some(high)
    };

    // Resource sweeps (Figure 5): OpenMP, Kokkos, and MPI only.
    let mut sweep = BTreeMap::new();
    let sweep_models =
        [ExecutionModel::OpenMp, ExecutionModel::Kokkos, ExecutionModel::Mpi];
    if !cfg.skip_sweeps && sweep_models.contains(&task.model) {
        for n in task.model.resource_sweep() {
            let ratios: Vec<f64> =
                kinds_low.iter().map(|&k| runner.ratio(task, k, n)).collect();
            sweep.insert(n, ratios);
        }
    }

    TaskRecord { task, low, high, sweep }
}

/// The subset of tasks for a quick smoke evaluation: one problem per
/// problem type, all execution models (84 tasks).
pub fn smoke_tasks() -> Vec<TaskId> {
    all_tasks().filter(|t| t.problem.variant == 0).collect()
}

/// Pick a kind that exists in the sample stream (test helper).
pub fn kinds_summary(kinds: &[CandidateKind]) -> BTreeMap<&'static str, usize> {
    let mut m = BTreeMap::new();
    for k in kinds {
        *m.entry(k.code()).or_insert(0) += 1;
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcg_core::{ProblemId, ProblemType};
    use pcg_models::SyntheticModel;

    #[test]
    fn smoke_eval_produces_sane_records() {
        let cfg = EvalConfig::smoke();
        let model = SyntheticModel::by_name("CodeLlama-13B").unwrap();
        // Two tasks: one serial, one OpenMP, same easy problem.
        let p = ProblemId::new(ProblemType::Transform, 0);
        let tasks = vec![p.task(ExecutionModel::Serial), p.task(ExecutionModel::OpenMp)];
        let record = evaluate(&cfg, &[model], Some(&tasks));
        assert_eq!(record.models.len(), 1);
        let m = &record.models[0];
        assert_eq!(m.tasks.len(), 2);
        for t in &m.tasks {
            assert_eq!(t.low.len(), cfg.samples_low);
            let high = t.high.as_ref().expect("open models collect the high-temp set");
            assert_eq!(high.len(), cfg.samples_high);
        }
    }

    #[test]
    fn closed_models_skip_high_temp() {
        let cfg = EvalConfig::smoke();
        let gpt = SyntheticModel::by_name("GPT-4").unwrap();
        let open = SyntheticModel::by_name("CodeLlama-7B").unwrap();
        let p = ProblemId::new(ProblemType::Transform, 0);
        let tasks = vec![p.task(ExecutionModel::Serial)];
        let record = evaluate(&cfg, &[gpt, open], Some(&tasks));
        assert!(record.model("GPT-4").unwrap().tasks[0].high.is_none());
        assert!(record.model("CodeLlama-7B").unwrap().tasks[0].high.is_some());
    }

    #[test]
    fn smoke_tasks_cover_all_types_and_models() {
        let tasks = smoke_tasks();
        assert_eq!(tasks.len(), 12 * 7);
    }

    #[test]
    fn parallel_eval_reports_stats() {
        let cfg = EvalConfig::smoke();
        let model = SyntheticModel::by_name("CodeLlama-13B").unwrap();
        let p = ProblemId::new(ProblemType::Transform, 0);
        let tasks: Vec<TaskId> = [
            ExecutionModel::Serial,
            ExecutionModel::OpenMp,
            ExecutionModel::Cuda,
            ExecutionModel::Kokkos,
        ]
        .iter()
        .map(|&m| p.task(m))
        .collect();
        let runner = SharedRunner::new(cfg.clone());
        let (record, stats) =
            evaluate_with(&cfg, &[model], Some(&tasks), 4, &runner);
        assert_eq!(record.models[0].tasks.len(), 4);
        assert_eq!(stats.jobs, 4);
        assert_eq!(stats.cells, 4);
        assert!(stats.executions > 0);
        assert!(stats.cache_hits > 0, "shared kinds must dedup executions");
        assert_eq!(stats.panics, 0);
        assert_eq!(stats.timeouts, 0);
        assert!(stats.wall_s > 0.0);
        assert!(stats.run_s > 0.0);
    }

    #[test]
    fn sharded_subsets_reassemble_to_the_unsharded_record() {
        // The in-process shape of the multi-process contract: three
        // disjoint plan shards, each evaluated by its own coordinator
        // call, reassemble into a record byte-identical to the
        // whole-grid evaluation. Byte-identity is the
        // *shared-measurement* guarantee (the discipline
        // `crash_resume` documents): records embed candidate timings,
        // so every phase draws from one [`SharedRunner`]'s execution
        // cache. Partitioning and reassembly themselves must be
        // lossless and ordering-exact.
        let cfg = EvalConfig::smoke();
        let models = [
            SyntheticModel::by_name("CodeLlama-13B").unwrap(),
            SyntheticModel::by_name("GPT-4").unwrap(),
        ];
        let p = ProblemId::new(ProblemType::Transform, 0);
        let tasks: Vec<TaskId> = [
            ExecutionModel::Serial,
            ExecutionModel::OpenMp,
            ExecutionModel::Cuda,
        ]
        .iter()
        .map(|&m| p.task(m))
        .collect();

        let plan = plan_for(&cfg, &models, Some(&tasks));
        let runner = SharedRunner::new(cfg.clone());
        let (whole, _) = evaluate_with(&cfg, &models, Some(&tasks), 2, &runner);

        let mut map = std::collections::HashMap::new();
        for k in 0..3 {
            let spec = ShardSpec::new(k, 3);
            let run = evaluate_plan(
                &cfg, &models, &plan, spec, 1, &runner, &Replay::new(), |_, _, _| {},
            );
            assert_eq!(run.stats.cells, plan.shard(spec).len());
            for (cell, rec) in run.cells {
                map.insert(cell.id, rec);
            }
        }
        assert_eq!(map.len(), plan.len(), "shards must cover the grid");
        let merged = assemble(&cfg, &plan, |c| map[&c.id].clone());
        assert_eq!(
            serde_json::to_string(&whole).unwrap(),
            serde_json::to_string(&merged).unwrap(),
            "sharded evaluation must reassemble byte-identically"
        );
    }
}
