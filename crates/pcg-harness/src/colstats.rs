//! Columnar stats sidecar: the projection-relevant columns of an
//! evaluation record in one flat binary file.
//!
//! The CI byte-identity checks and the `project_records` diff only
//! need the *deterministic projection* of a records cache — model
//! names, task identities, build/correct flags, which sweep resource
//! counts were collected — never the measured floats. Re-parsing the
//! multi-megabyte JSON cache to extract those few columns is the last
//! JSON-on-the-hot-path cost the v3 journal did not remove, so the
//! pipeline and the shard merge commit a `<cache>.cols` sidecar
//! alongside the cache: the projection columns, struct-of-arrays,
//! behind a CRC-32.
//!
//! [`ColumnarStats::projection`] reproduces
//! [`crate::record::projection`] **byte-for-byte** (it is asserted
//! against it in tests and diffed in CI via `project_records --cols`),
//! so the sidecar is a pure accelerator: the JSON cache remains the
//! export format and the single source of truth, and anything the
//! sidecar serves can always be recomputed from it.
//!
//! ## On-disk layout
//!
//! Magic `PCGCOLS1`, then a little-endian body ([`pcg_core::frame`]'s
//! byte codec), then a trailing CRC-32 (IEEE) over the body:
//!
//! ```text
//! u32 n_models; n_models × { str name; u32 rows }
//! u32 n_rows
//! n_rows × u32          task        — TaskId dense index
//! (n_rows+1) × u32      built_off   — prefix offsets into `built`
//! u32 len; len × u8     built       — 0/1 flags
//! (n_rows+1) × u32      correct_off
//! u32 len; len × u8     correct
//! n_rows × u8           high_present
//! (n_rows+1) × u32      high_off    — offsets into `high_correct`
//! u32 len; len × u8     high_correct
//! (n_rows+1) × u32      sweep_off   — offsets into `sweep_keys`
//! u32 len; len × u32    sweep_keys
//! n_rows × f64          wall        — measured wall seconds per row
//! u32 crc               — CRC-32 over every body byte above
//! ```
//!
//! The `wall` column (new in `PCGCOLS2`) is the one measured-float
//! exception to the projection-only rule: it feeds the next run's
//! [`pcg_core::priors::CostPriors`] scheduling table and is **never**
//! part of the projection. A wall of `0.0` means "not measured" (the
//! cell was replayed from a journal rather than executed); priors
//! built from the column fall back to the default profile for such
//! rows.
//!
//! Decoding verifies the CRC and every structural invariant (offset
//! monotonicity, bounds, row counts, task-index range); a sidecar that
//! fails any check is rejected, and callers fall back to the JSON
//! cache.

use crate::record::EvalRecord;
use pcg_core::frame::{crc32, ByteReader, ByteWriter};
use pcg_core::{CellId, CostPriors, TaskId};
use std::collections::HashMap;
use std::path::{Path, PathBuf};

/// File magic for a columnar stats sidecar. Bumped to `2` when the
/// per-row wall-seconds column was appended; `PCGCOLS1` sidecars fail
/// decode and callers rebuild from the JSON cache, which is always
/// safe because the sidecar is a pure accelerator.
pub const COLS_MAGIC: [u8; 8] = *b"PCGCOLS2";

/// Sidecar path for a records cache path (`records-quick.json` →
/// `records-quick.json.cols`).
pub fn cols_path(cache_path: &Path) -> PathBuf {
    let mut os = cache_path.as_os_str().to_os_string();
    os.push(".cols");
    PathBuf::from(os)
}

/// The projection columns of one evaluation record, struct-of-arrays.
/// Rows are (model, task) cells in record order — model-major, tasks
/// in canonical plan order — exactly the order
/// [`crate::record::projection`] walks.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnarStats {
    models: Vec<String>,
    rows_per_model: Vec<u32>,
    task: Vec<u32>,
    built_off: Vec<u32>,
    built: Vec<u8>,
    correct_off: Vec<u32>,
    correct: Vec<u8>,
    high_present: Vec<u8>,
    high_off: Vec<u32>,
    high_correct: Vec<u8>,
    sweep_off: Vec<u32>,
    sweep_keys: Vec<u32>,
    wall: Vec<f64>,
}

fn push_flags(flags: &[bool], off: &mut Vec<u32>, out: &mut Vec<u8>) {
    out.extend(flags.iter().map(|&b| u8::from(b)));
    off.push(u32::try_from(out.len()).expect("flag column fits in u32"));
}

impl ColumnarStats {
    /// Extract the projection columns from an assembled record.
    pub fn from_record(rec: &EvalRecord) -> ColumnarStats {
        let n_rows: usize = rec.models.iter().map(|m| m.tasks.len()).sum();
        let mut c = ColumnarStats {
            models: Vec::with_capacity(rec.models.len()),
            rows_per_model: Vec::with_capacity(rec.models.len()),
            task: Vec::with_capacity(n_rows),
            built_off: vec![0],
            built: Vec::new(),
            correct_off: vec![0],
            correct: Vec::new(),
            high_present: Vec::with_capacity(n_rows),
            high_off: vec![0],
            high_correct: Vec::new(),
            sweep_off: vec![0],
            sweep_keys: Vec::new(),
            wall: vec![0.0; n_rows],
        };
        for m in &rec.models {
            c.models.push(m.model.clone());
            c.rows_per_model.push(u32::try_from(m.tasks.len()).expect("rows fit in u32"));
            for t in &m.tasks {
                c.task.push(u32::try_from(t.task.index()).expect("task index fits in u32"));
                push_flags(&t.low.built, &mut c.built_off, &mut c.built);
                push_flags(&t.low.correct, &mut c.correct_off, &mut c.correct);
                match &t.high {
                    Some(h) => {
                        c.high_present.push(1);
                        push_flags(&h.correct, &mut c.high_off, &mut c.high_correct);
                    }
                    None => {
                        c.high_present.push(0);
                        c.high_off.push(*c.high_off.last().unwrap());
                    }
                }
                c.sweep_keys.extend(t.sweep.keys().copied());
                c.sweep_off
                    .push(u32::try_from(c.sweep_keys.len()).expect("sweep column fits in u32"));
            }
        }
        c
    }

    /// Number of (model, task) rows.
    pub fn rows(&self) -> usize {
        self.task.len()
    }

    /// Fill the wall-seconds column from measured per-cell walls keyed
    /// by [`CellId`]. Each row's id is recomputed from `config_hash`,
    /// its model name, and its task — the same derivation every other
    /// consumer of the plan uses — so the column survives any row
    /// order. Rows with no measurement keep `0.0` ("not measured").
    pub fn set_walls(&mut self, config_hash: u64, walls: &HashMap<CellId, f64>) {
        let mut row = 0usize;
        for (mi, model) in self.models.iter().enumerate() {
            for _ in 0..self.rows_per_model[mi] {
                let task = TaskId::from_index(self.task[row] as usize)
                    .expect("task index validated on construction");
                let id = CellId::new(config_hash, model, task);
                if let Some(&w) = walls.get(&id) {
                    if w.is_finite() && w >= 0.0 {
                        self.wall[row] = w;
                    }
                }
                row += 1;
            }
        }
    }

    /// Iterate `(model name, task, wall seconds)` rows. A wall of
    /// `0.0` means the cell was never measured in this run.
    pub fn walls(&self) -> impl Iterator<Item = (&str, TaskId, f64)> + '_ {
        let mut rows = Vec::with_capacity(self.task.len());
        let mut row = 0usize;
        for (mi, model) in self.models.iter().enumerate() {
            for _ in 0..self.rows_per_model[mi] {
                let task = TaskId::from_index(self.task[row] as usize)
                    .expect("task index validated on construction");
                rows.push((model.as_str(), task, self.wall[row]));
                row += 1;
            }
        }
        rows.into_iter()
    }

    /// Build a scheduling priors table from this sidecar's measured
    /// walls. Unmeasured rows (wall `0.0`) are omitted, so lookups for
    /// them fall back to the committed default profile. Returns `None`
    /// when no row carries a positive wall — a priors table that knows
    /// nothing is worse than the honest default profile.
    pub fn cost_priors(&self, label: &str) -> Option<CostPriors> {
        let entries: Vec<(String, u32, f64)> = self
            .walls()
            .filter(|&(_, _, w)| w > 0.0)
            .map(|(m, t, w)| (m.to_string(), t.index() as u32, w))
            .collect();
        if entries.is_empty() {
            return None;
        }
        Some(CostPriors::from_entries(label, entries))
    }

    /// Reproduce [`crate::record::projection`] byte-for-byte from the
    /// columns, without touching the JSON cache.
    pub fn projection(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let mut row = 0usize;
        let flags = |off: &[u32], data: &[u8], r: usize| -> Vec<bool> {
            data[off[r] as usize..off[r + 1] as usize].iter().map(|&b| b != 0).collect()
        };
        for (mi, model) in self.models.iter().enumerate() {
            let _ = writeln!(s, "model={model}");
            for _ in 0..self.rows_per_model[mi] {
                let task = TaskId::from_index(self.task[row] as usize)
                    .expect("task index validated on construction");
                let high: Option<Vec<bool>> = (self.high_present[row] != 0)
                    .then(|| flags(&self.high_off, &self.high_correct, row));
                let sweep_ns =
                    &self.sweep_keys[self.sweep_off[row] as usize..self.sweep_off[row + 1] as usize];
                let _ = writeln!(
                    s,
                    "task={:?} built={:?} correct={:?} high_correct={:?} sweep_ns={:?}",
                    task,
                    flags(&self.built_off, &self.built, row),
                    flags(&self.correct_off, &self.correct, row),
                    high.as_ref(),
                    sweep_ns,
                );
                row += 1;
            }
        }
        s
    }

    /// Serialize to the on-disk layout (magic + body + CRC).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_len(self.models.len());
        for (name, &rows) in self.models.iter().zip(&self.rows_per_model) {
            w.put_str(name);
            w.put_u32(rows);
        }
        w.put_len(self.task.len());
        for &t in &self.task {
            w.put_u32(t);
        }
        let put_offsets = |w: &mut ByteWriter, off: &[u32]| {
            for &o in off {
                w.put_u32(o);
            }
        };
        let put_bytes = |w: &mut ByteWriter, data: &[u8]| {
            w.put_len(data.len());
            for &b in data {
                w.put_u8(b);
            }
        };
        put_offsets(&mut w, &self.built_off);
        put_bytes(&mut w, &self.built);
        put_offsets(&mut w, &self.correct_off);
        put_bytes(&mut w, &self.correct);
        for &p in &self.high_present {
            w.put_u8(p);
        }
        put_offsets(&mut w, &self.high_off);
        put_bytes(&mut w, &self.high_correct);
        put_offsets(&mut w, &self.sweep_off);
        w.put_len(self.sweep_keys.len());
        for &k in &self.sweep_keys {
            w.put_u32(k);
        }
        for &secs in &self.wall {
            w.put_f64(secs);
        }
        let body = w.into_bytes();
        let mut out = COLS_MAGIC.to_vec();
        out.extend_from_slice(&body);
        out.extend_from_slice(&crc32(&body).to_le_bytes());
        out
    }

    /// Deserialize and validate a sidecar. Any defect — wrong magic,
    /// CRC mismatch, non-monotone offsets, out-of-range task index,
    /// inconsistent row counts, trailing bytes — is an error; a sidecar
    /// is never half-trusted.
    pub fn from_bytes(bytes: &[u8]) -> Result<ColumnarStats, String> {
        let body = bytes
            .strip_prefix(&COLS_MAGIC)
            .ok_or_else(|| "not a columnar stats sidecar (bad magic)".to_string())?;
        if body.len() < 4 {
            return Err("truncated sidecar: missing CRC trailer".to_string());
        }
        let (body, crc_bytes) = body.split_at(body.len() - 4);
        let stored = u32::from_le_bytes(crc_bytes.try_into().unwrap());
        let computed = crc32(body);
        if stored != computed {
            return Err(format!("CRC mismatch: stored {stored:08x}, computed {computed:08x}"));
        }
        let err = |e: pcg_core::frame::CodecError| e.to_string();
        let mut r = ByteReader::new(body);
        let n_models = r.len(5).map_err(err)?;
        let mut models = Vec::with_capacity(n_models);
        let mut rows_per_model = Vec::with_capacity(n_models);
        for _ in 0..n_models {
            models.push(r.str().map_err(err)?.to_string());
            rows_per_model.push(r.u32().map_err(err)?);
        }
        let n_rows = r.len(4).map_err(err)?;
        if rows_per_model.iter().map(|&n| n as usize).sum::<usize>() != n_rows {
            return Err("per-model row counts do not sum to the row count".to_string());
        }
        let mut task = Vec::with_capacity(n_rows);
        for _ in 0..n_rows {
            let t = r.u32().map_err(err)?;
            if t as usize >= pcg_core::NUM_TASKS {
                return Err(format!("task index {t} out of range"));
            }
            task.push(t);
        }
        let offsets = |r: &mut ByteReader<'_>| -> Result<Vec<u32>, String> {
            let mut off = Vec::with_capacity(n_rows + 1);
            for _ in 0..=n_rows {
                off.push(r.u32().map_err(err)?);
            }
            if off.first() != Some(&0) || off.windows(2).any(|w| w[0] > w[1]) {
                return Err("offset column is not monotone from 0".to_string());
            }
            Ok(off)
        };
        let flag_bytes = |r: &mut ByteReader<'_>, expect: usize| -> Result<Vec<u8>, String> {
            let n = r.len(1).map_err(err)?;
            if n != expect {
                return Err(format!("flag column length {n} disagrees with offsets ({expect})"));
            }
            let mut data = Vec::with_capacity(n);
            for _ in 0..n {
                let b = r.u8().map_err(err)?;
                if b > 1 {
                    return Err(format!("flag byte {b} is not 0/1"));
                }
                data.push(b);
            }
            Ok(data)
        };
        let built_off = offsets(&mut r)?;
        let built = flag_bytes(&mut r, *built_off.last().unwrap() as usize)?;
        let correct_off = offsets(&mut r)?;
        let correct = flag_bytes(&mut r, *correct_off.last().unwrap() as usize)?;
        let mut high_present = Vec::with_capacity(n_rows);
        for _ in 0..n_rows {
            let b = r.u8().map_err(err)?;
            if b > 1 {
                return Err(format!("presence byte {b} is not 0/1"));
            }
            high_present.push(b);
        }
        let high_off = offsets(&mut r)?;
        let high_correct = flag_bytes(&mut r, *high_off.last().unwrap() as usize)?;
        let sweep_off = offsets(&mut r)?;
        let n_keys = r.len(4).map_err(err)?;
        if n_keys != *sweep_off.last().unwrap() as usize {
            return Err("sweep column length disagrees with offsets".to_string());
        }
        let mut sweep_keys = Vec::with_capacity(n_keys);
        for _ in 0..n_keys {
            sweep_keys.push(r.u32().map_err(err)?);
        }
        let mut wall = Vec::with_capacity(n_rows);
        for _ in 0..n_rows {
            let secs = r.f64().map_err(err)?;
            if !secs.is_finite() || secs < 0.0 {
                return Err(format!("wall seconds {secs} is not a finite non-negative value"));
            }
            wall.push(secs);
        }
        if !r.is_exhausted() {
            return Err("trailing bytes after a complete sidecar".to_string());
        }
        Ok(ColumnarStats {
            models,
            rows_per_model,
            task,
            built_off,
            built,
            correct_off,
            correct,
            high_present,
            high_off,
            high_correct,
            sweep_off,
            sweep_keys,
            wall,
        })
    }

    /// Read and validate the sidecar at `path`.
    pub fn read(path: &Path) -> Result<ColumnarStats, String> {
        let bytes = std::fs::read(path).map_err(|e| e.to_string())?;
        ColumnarStats::from_bytes(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EvalConfig;
    use crate::record::{projection, EvalRecord, ModelRecord, TaskRecord};
    use pcg_core::{ExecutionModel, ProblemId, ProblemType};
    use pcg_metrics::TaskSamples;
    use std::collections::BTreeMap;

    fn sample_record() -> EvalRecord {
        let t1 = ProblemId::new(ProblemType::Reduce, 0).task(ExecutionModel::OpenMp);
        let t2 = ProblemId::new(ProblemType::Sort, 3).task(ExecutionModel::Serial);
        EvalRecord {
            config: EvalConfig::smoke(),
            models: vec![
                ModelRecord {
                    model: "GPT-4".into(),
                    tasks: vec![
                        TaskRecord {
                            task: t1,
                            low: TaskSamples {
                                built: vec![true, false],
                                correct: vec![true, false],
                                ratio: vec![2.0, 0.0],
                            },
                            high: Some(TaskSamples {
                                built: vec![true],
                                correct: vec![false],
                                ratio: vec![],
                            }),
                            sweep: BTreeMap::from([(2u32, vec![1.0]), (4u32, vec![1.5])]),
                        },
                        TaskRecord {
                            task: t2,
                            low: TaskSamples { built: vec![], correct: vec![], ratio: vec![] },
                            high: None,
                            sweep: BTreeMap::new(),
                        },
                    ],
                },
                ModelRecord { model: "CodeLlama-7B".into(), tasks: vec![] },
            ],
        }
    }

    #[test]
    fn projection_matches_the_json_definition_byte_for_byte() {
        let rec = sample_record();
        let cols = ColumnarStats::from_record(&rec);
        assert_eq!(cols.projection(), projection(&rec));
        assert_eq!(cols.rows(), 2);
    }

    #[test]
    fn roundtrips_through_bytes() {
        let cols = ColumnarStats::from_record(&sample_record());
        let bytes = cols.to_bytes();
        assert!(bytes.starts_with(&COLS_MAGIC));
        let back = ColumnarStats::from_bytes(&bytes).unwrap();
        assert_eq!(back, cols);
        assert_eq!(back.projection(), cols.projection());
    }

    #[test]
    fn every_single_bit_flip_is_rejected() {
        let cols = ColumnarStats::from_record(&sample_record());
        let bytes = cols.to_bytes();
        for byte in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[byte] ^= 1;
            match ColumnarStats::from_bytes(&corrupt) {
                Err(_) => {}
                Ok(back) => panic!(
                    "flip at byte {byte} of {} decoded as a valid sidecar: {back:?}",
                    bytes.len()
                ),
            }
        }
        // Truncations too.
        for cut in 0..bytes.len() {
            assert!(ColumnarStats::from_bytes(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn walls_roundtrip_and_feed_priors() {
        let rec = sample_record();
        let mut cols = ColumnarStats::from_record(&rec);
        // Unset walls read back as "not measured" and yield no priors.
        assert!(cols.walls().all(|(_, _, w)| w == 0.0));
        assert!(cols.cost_priors("empty").is_none());

        // Key the measured walls by CellId, exactly as eval produces.
        let chash = 0x1234_5678u64;
        let t1 = rec.models[0].tasks[0].task;
        let t2 = rec.models[0].tasks[1].task;
        let walls = HashMap::from([
            (CellId::new(chash, "GPT-4", t1), 1.5f64),
            (CellId::new(chash, "GPT-4", t2), 0.25f64),
            // A cell from some other config must not match any row.
            (CellId::new(chash ^ 1, "GPT-4", t1), 99.0f64),
        ]);
        cols.set_walls(chash, &walls);
        let got: Vec<(String, f64)> =
            cols.walls().map(|(m, _, w)| (m.to_string(), w)).collect();
        assert_eq!(got, vec![("GPT-4".into(), 1.5), ("GPT-4".into(), 0.25)]);

        // Walls survive the byte roundtrip; the projection is untouched.
        let back = ColumnarStats::from_bytes(&cols.to_bytes()).unwrap();
        assert_eq!(back, cols);
        assert_eq!(back.projection(), projection(&rec));

        // And they become a priors table with per-row measured costs.
        let priors = back.cost_priors("test-sidecar").unwrap();
        assert_eq!(priors.len(), 2);
        assert_eq!(priors.cost("GPT-4", t1), 1.5);
        assert_eq!(priors.cost("GPT-4", t2), 0.25);
        // Unmeasured cells fall back to the default profile.
        let t3 = ProblemId::new(ProblemType::Scan, 0).task(ExecutionModel::Mpi);
        assert_eq!(priors.cost("GPT-4", t3), CostPriors::default_cost(t3));
    }

    #[test]
    fn non_finite_walls_are_rejected_on_decode() {
        let mut cols = ColumnarStats::from_record(&sample_record());
        cols.wall[0] = f64::NAN;
        assert!(ColumnarStats::from_bytes(&cols.to_bytes()).is_err());
        cols.wall[0] = -1.0;
        assert!(ColumnarStats::from_bytes(&cols.to_bytes()).is_err());
        cols.wall[0] = 3.5;
        assert!(ColumnarStats::from_bytes(&cols.to_bytes()).is_ok());
    }

    #[test]
    fn cols_path_derives_from_cache_path() {
        assert_eq!(
            cols_path(Path::new("target/pcgbench/records-quick.json")),
            Path::new("target/pcgbench/records-quick.json.cols"),
        );
    }
}
