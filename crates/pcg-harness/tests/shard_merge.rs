//! Sharded-evaluation hard constraints.
//!
//! Multi-process sharding is a pure topology change: merging the shard
//! journals of `--shard 0/3 + 1/3 + 2/3` must produce records
//! **byte-identical** to an unsharded run of the same config, at any
//! worker count, with the warm path enabled. Byte-identity is the
//! shared-measurement guarantee (the same discipline `crash_resume`
//! enforces): records embed measured candidate timings, so the exact
//! comparison holds when every phase draws from one [`SharedRunner`]'s
//! execution cache. Across genuinely independent runners — the torn
//! journal and killed-worker phases below, where the merge and the
//! resumed worker re-measure — the comparison is the deterministic
//! projection (`pcg_harness::record::projection`), exactly as CI
//! compares separate worker processes.
//!
//! One `#[test]` only: the warm flag, the lease cache, and the input
//! cache are process-global, so the phases must not interleave.

use pcg_core::plan::ShardSpec;
use pcg_core::warm;
use pcg_harness::eval::{self, evaluate_with, smoke_tasks};
use pcg_harness::journal::{self, Journal, Replay};
use pcg_harness::pipeline::{self, RunOptions};
use pcg_harness::record::{projection, stats_projection, EvalStats};
use pcg_harness::shard::{merge_shards, run_shard, shard_stats_path};
use pcg_harness::{EvalConfig, SharedRunner};
use pcg_problems::{input_cache, lease};
use std::path::{Path, PathBuf};

fn tmp_cache() -> PathBuf {
    let dir = std::env::temp_dir().join("pcgbench-shard-merge-tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("records-{}.json", std::process::id()))
}

/// Write real shard journals + stats sidecars for all three shards,
/// the way three workers would, but drawing from `runner`'s shared
/// caches so the written records are byte-comparable to the reference.
fn write_shard_journals(
    cache: &Path,
    cfg: &EvalConfig,
    models: &[pcg_models::SyntheticModel],
    tasks: &[pcg_core::TaskId],
    runner: &SharedRunner,
) {
    let plan = eval::plan_for(cfg, models, Some(tasks));
    for k in 0..3 {
        let spec = ShardSpec::new(k, 3);
        let jpath = journal::shard_journal_path(cache, spec);
        let wal = Journal::create(&jpath, cfg, spec).unwrap();
        let run = eval::evaluate_plan(cfg, models, &plan, spec, 2, runner, &Replay::new(), |cell, model, rec| {
            wal.append(cell, model, rec).unwrap();
        });
        assert!(run.stats.cells > 0, "shard {spec} must own some cells");
        assert!(
            std::fs::read(&jpath).unwrap().starts_with(&pcg_core::frame::JOURNAL_MAGIC),
            "shard workers write v3 binary journals"
        );
        let bytes = serde_json::to_vec(&run.stats).unwrap();
        std::fs::write(shard_stats_path(cache, spec), bytes).unwrap();
    }
}

/// Chop a v3 journal down to its header plus the first `keep` entry
/// frames, then leave a torn frame — the on-disk state a SIGKILL
/// mid-append leaves behind. Cuts at exact frame boundaries via
/// `journal::entry_offsets`, then keeps the first 10 bytes of the next
/// frame (less than the 16-byte frame header, so replay classifies it
/// as a torn tail).
fn simulate_crash(path: &Path, keep: usize) {
    let offsets = journal::entry_offsets(path);
    assert!(keep + 1 < offsets.len(), "must cut strictly inside the journal");
    let bytes = std::fs::read(path).unwrap();
    let cut = offsets[keep] as usize;
    std::fs::write(path, &bytes[..cut + 10]).unwrap();
}

#[test]
fn merged_shards_match_the_unsharded_run() {
    let cfg = EvalConfig::smoke();
    // One problem across all seven execution models (× the full zoo —
    // the shard worker and merge paths evaluate every zoo model), so
    // every substrate participates in every topology.
    let tasks: Vec<_> = smoke_tasks().into_iter().take(7).collect();
    let models = pcg_models::zoo();
    let cache = tmp_cache();
    warm::set_enabled(true);
    lease::flush();
    input_cache::flush();

    // ------- Phase 1: unsharded reference, --jobs 1 and --jobs 8.
    let runner = SharedRunner::new(cfg.clone());
    let (ref1, ref_stats) = evaluate_with(&cfg, &models, Some(&tasks), 1, &runner);
    let (ref8, ref8_stats) = evaluate_with(&cfg, &models, Some(&tasks), 8, &runner);
    let ref_json = serde_json::to_string(&ref1).unwrap();
    assert_eq!(
        ref_json,
        serde_json::to_string(&ref8).unwrap(),
        "unsharded records must be jobs-agnostic"
    );
    assert!(ref8_stats.lease_hits > 0, "warm path must be engaged for this test");

    // ------- Phase 2: three shard workers write real journals, then
    // merge. The merged records must be byte-identical to the
    // reference, the cache commit byte-identical too, and the merged
    // stats sidecar must project identically.
    write_shard_journals(&cache, &cfg, &models, &tasks, &runner);
    let merged = merge_shards(Some(&cache), &cfg, &RunOptions::new(2), 3, Some(&tasks));
    assert_eq!(
        serde_json::to_string(&merged).unwrap(),
        ref_json,
        "merged shard journals must reproduce the unsharded record exactly"
    );
    assert_eq!(
        std::fs::read(&cache).unwrap(),
        ref_json.as_bytes(),
        "the committed cache must hold the identical bytes"
    );
    let cols = pcg_harness::colstats::ColumnarStats::read(&pcg_harness::colstats::cols_path(&cache))
        .expect("merge must commit a columnar sidecar next to the cache");
    assert_eq!(
        cols.projection(),
        projection(&merged),
        "the columnar sidecar must reproduce the projection byte-for-byte"
    );
    let merged_stats: EvalStats =
        serde_json::from_slice(&std::fs::read(pipeline::stats_path(&cfg)).unwrap()).unwrap();
    assert_eq!(
        stats_projection(&merged_stats),
        stats_projection(&ref_stats),
        "merged stats must project identically to the unsharded sidecar"
    );
    for k in 0..3 {
        let spec = ShardSpec::new(k, 3);
        assert!(
            !journal::shard_journal_path(&cache, spec).exists(),
            "a successful merge must consume shard {spec}'s journal"
        );
        assert!(!shard_stats_path(&cache, spec).exists());
    }

    // ------- Phase 3: torn-journal tolerance. A shard journal that
    // lost its tail to a SIGKILL mid-append merges anyway: the merge
    // re-evaluates the lost cells itself. Its measurements are its own
    // (fresh runner), so the comparison is the deterministic
    // projection, as across real processes.
    write_shard_journals(&cache, &cfg, &models, &tasks, &runner);
    simulate_crash(&journal::shard_journal_path(&cache, ShardSpec::new(1, 3)), 2);
    let merged_torn = merge_shards(Some(&cache), &cfg, &RunOptions::new(2), 3, Some(&tasks));
    assert_eq!(
        projection(&merged_torn),
        projection(&ref1),
        "a torn shard journal must not change the merged projection"
    );

    // ------- Phase 4: `--shard` composes with `--resume`. Kill a
    // worker mid-shard (partial journal + torn line), resume it through
    // the real worker entry point — which must compact the stale tail
    // and replay the completed prefix — run the other two workers
    // fresh, and merge. Every worker measures independently here, so
    // again: projection equality.
    let spec0 = ShardSpec::new(0, 3);
    write_shard_journals(&cache, &cfg, &models, &tasks, &runner);
    let keep = 2;
    simulate_crash(&journal::shard_journal_path(&cache, spec0), keep);
    let resume_opts =
        RunOptions { resume: true, shard: Some(spec0), ..RunOptions::new(2) };
    let stats0 = run_shard(Some(&cache), &cfg, &resume_opts, spec0, Some(&tasks));
    assert_eq!(stats0.resumed_cells, keep, "the completed prefix must replay, not re-run");
    assert!(stats0.journal_compactions > 0, "the torn tail must be compacted away");
    assert_eq!(
        stats0.journal_frames_rejected, 1,
        "the torn frame must be counted as rejected, not silently skipped"
    );
    for k in 1..3 {
        let spec = ShardSpec::new(k, 3);
        // Shards 1 and 2 were fully journaled by write_shard_journals;
        // re-running them through the worker entry point must replay
        // everything and evaluate nothing.
        let opts = RunOptions { resume: true, ..RunOptions::new(2) };
        let stats = run_shard(Some(&cache), &cfg, &opts, spec, Some(&tasks));
        assert_eq!(stats.resumed_cells, stats.cells, "an intact shard journal replays fully");
    }
    let merged_resumed = merge_shards(Some(&cache), &cfg, &RunOptions::new(2), 3, Some(&tasks));
    assert_eq!(
        projection(&merged_resumed),
        projection(&ref1),
        "kill + resume + merge must reproduce the unsharded projection"
    );
    let resumed_stats: EvalStats =
        serde_json::from_slice(&std::fs::read(pipeline::stats_path(&cfg)).unwrap()).unwrap();
    assert!(
        resumed_stats.journal_compactions > 0,
        "the merged sidecar must surface the worker's compaction"
    );
    assert_eq!(stats_projection(&resumed_stats), stats_projection(&ref_stats));

    let _ = std::fs::remove_file(&cache);
}
