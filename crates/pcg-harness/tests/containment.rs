//! Containment conformance: a chaos-injected grid — `Deadlock` and
//! `StackHog` candidates drawn at calibrated rates — must fail fast
//! through the wait-for-graph detector and the guard page instead of
//! burning wall-clock timeouts or leaking workers, and the resulting
//! records must keep every determinism guarantee the clean grid has:
//! projection byte-equality across `--jobs` counts and across shard
//! geometries.
//!
//! Fiber containment needs the x86_64 context switch and mmap guard
//! pages; on other targets the framework substitutes static verdicts
//! and the counters stay zero, so the battery is gated to the
//! supported platform (the same gate `sched::supported()` applies at
//! runtime).

#![cfg(all(target_arch = "x86_64", unix))]

use pcg_core::plan::ShardSpec;
use pcg_core::{ExecutionModel, ProblemId, ProblemType, TaskId};
use pcg_harness::config::EvalConfig;
use pcg_harness::eval::{assemble, evaluate_plan, evaluate_with, plan_for};
use pcg_harness::journal::{config_hash, Replay};
use pcg_harness::record::projection;
use pcg_harness::runner::SharedRunner;
use pcg_models::SyntheticModel;

/// A chaos config: heavy deadlock/stack-hog injection, no high-temp
/// set (the low set is plenty to surface defects), smoke-sized inputs.
fn chaos_cfg() -> EvalConfig {
    let mut cfg = EvalConfig::smoke();
    cfg.skip_high_temp = true;
    cfg.deadlock_rate = 5.0;
    cfg.stack_hog_rate = 5.0;
    cfg
}

/// A model whose failure mix has **zero** mass on the natural timeout
/// and flaky slots, so every timeout verdict the battery observes
/// would have to come from an injected containment defect escaping —
/// exactly what the assertions below rule out.
fn chaos_model() -> SyntheticModel {
    let base = SyntheticModel::by_name("CodeLlama-7B").unwrap();
    let mut calib = base.calibration().clone();
    calib.failure_mix = [0.25, 0.25, 0.10, 0.10, 0.0, 0.0, 0.0, 0.0];
    SyntheticModel::custom(base.card().clone(), calib, true)
}

/// One problem across the substrates with distinct containment worlds:
/// serial/OpenMP (pure-MPI fallback world), MPI, and hybrid.
fn chaos_tasks() -> Vec<TaskId> {
    let p = ProblemId::new(ProblemType::Transform, 0);
    [
        ExecutionModel::Serial,
        ExecutionModel::OpenMp,
        ExecutionModel::Mpi,
        ExecutionModel::MpiOpenMp,
    ]
    .iter()
    .map(|&m| p.task(m))
    .collect()
}

#[test]
fn chaos_rates_participate_in_the_config_hash() {
    let chaos = chaos_cfg();
    let mut clean = chaos.clone();
    clean.deadlock_rate = 0.0;
    clean.stack_hog_rate = 0.0;
    assert_ne!(
        config_hash(&chaos),
        config_hash(&clean),
        "a chaos run must never share a journal/plan identity with a clean run"
    );
}

/// The whole battery runs as one test: the containment counters are
/// per-runner deltas over process-global scheduler totals, so exact
/// cross-runner arithmetic (`guard_faults == stack_overflows_caught`)
/// is only meaningful while no concurrent test is faulting fibers.
#[test]
fn chaos_battery_fails_fast_and_stays_deterministic() {
    let cfg = chaos_cfg();
    let models = [chaos_model()];
    let tasks = chaos_tasks();

    // Jobs = 1: the reference run. Every injected defect must be
    // contained — no wall-clock timeouts, no abandoned workers.
    let runner1 = SharedRunner::new(cfg.clone());
    let (rec1, stats1) = evaluate_with(&cfg, &models, Some(&tasks), 1, &runner1);
    assert!(
        stats1.deadlocks_detected > 0,
        "injection rate 5.0 must surface deadlock candidates; stats: {stats1:?}"
    );
    assert!(
        stats1.stack_overflows_caught > 0,
        "injection rate 5.0 must surface stack-hog candidates; stats: {stats1:?}"
    );
    assert_eq!(
        stats1.guard_faults, stats1.stack_overflows_caught,
        "every classified guard fault must become a verdict"
    );
    assert_eq!(stats1.timeouts, 0, "contained defects must never burn the timeout");
    assert_eq!(stats1.abandoned, 0, "contained defects must never leak a worker");
    assert!(!stats1.leak_budget_exhausted);

    // Jobs = 8, cold runner: the deterministic projection — model
    // order, task identity, build/correct flags, sweep keys — must be
    // byte-identical to the jobs=1 run even though the measured floats
    // (and the per-process execution counts) legitimately differ.
    let runner8 = SharedRunner::new(cfg.clone());
    let (rec8, stats8) = evaluate_with(&cfg, &models, Some(&tasks), 8, &runner8);
    assert_eq!(
        projection(&rec1),
        projection(&rec8),
        "chaos records must project identically at --jobs 1 and --jobs 8"
    );
    assert_eq!(stats8.timeouts, 0);
    assert_eq!(stats8.abandoned, 0);
    assert!(stats8.deadlocks_detected > 0);

    // Three disjoint shards over one shared runner reassemble to the
    // unsharded record byte-for-byte — the full JSON, floats included,
    // because the shared execution cache serves every phase the same
    // measurement (the same contract the clean-grid shard test holds).
    let plan = plan_for(&cfg, &models, Some(&tasks));
    let shared = SharedRunner::new(cfg.clone());
    let (whole, _) = evaluate_with(&cfg, &models, Some(&tasks), 2, &shared);
    let mut map = std::collections::HashMap::new();
    for k in 0..3 {
        let spec = ShardSpec::new(k, 3);
        let run = evaluate_plan(
            &cfg, &models, &plan, spec, 1, &shared, &Replay::new(), |_, _, _| {},
        );
        assert_eq!(run.stats.timeouts, 0, "shard {k} must fail fast too");
        for (cell, rec) in run.cells {
            map.insert(cell.id, rec);
        }
    }
    assert_eq!(map.len(), plan.len(), "shards must cover the grid");
    let merged = assemble(&cfg, &plan, |c| map[&c.id].clone());
    assert_eq!(
        serde_json::to_string(&whole).unwrap(),
        serde_json::to_string(&merged).unwrap(),
        "chaos shards must reassemble byte-identically"
    );
}
