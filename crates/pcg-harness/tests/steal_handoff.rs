//! Work-stealing hard constraints.
//!
//! Stealing may only change **which process** evaluates a cell — never
//! the bytes the cell produces. So a merge over journals where one
//! worker stole a sibling's entire partition must be byte-identical to
//! the unsharded reference, a thief killed between its claim frame and
//! the result append must cost nothing (the orphaned claim neither
//! corrupts its journal nor blocks merge gap-fill), and a victim that
//! wakes up after the fleet drained its partition must evaluate zero
//! cells.
//!
//! One `#[test]`: phases share a [`SharedRunner`] execution cache so
//! the byte comparisons are exact (the same discipline `shard_merge`
//! uses). Where the merge re-measures with its own runner (gap fill),
//! the comparison is the deterministic projection, exactly as across
//! real processes.

use pcg_core::plan::ShardSpec;
use pcg_harness::eval::{self, evaluate_with, smoke_tasks};
use pcg_harness::journal::{self, Journal, Replay};
use pcg_harness::pipeline::{self, RunOptions};
use pcg_harness::record::{projection, EvalStats};
use pcg_harness::shard::{
    merge_shards, run_shard, scan_siblings, shard_stats_path, steal_from_siblings,
};
use pcg_harness::{EvalConfig, SharedRunner};
use std::path::{Path, PathBuf};

fn tmp_cache() -> PathBuf {
    let dir = std::env::temp_dir().join("pcgbench-steal-handoff-tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("records-{}.json", std::process::id()))
}

/// Journal one shard completely, the way a worker that finished its
/// own partition would, drawing from `runner`'s shared caches so the
/// written records are byte-comparable to the reference. Returns the
/// run's stats (the caller decides when to write the sidecar).
fn write_one_shard(
    cache: &Path,
    cfg: &EvalConfig,
    models: &[pcg_models::SyntheticModel],
    tasks: &[pcg_core::TaskId],
    runner: &SharedRunner,
    spec: ShardSpec,
) -> EvalStats {
    let plan = eval::plan_for(cfg, models, Some(tasks));
    let jpath = journal::shard_journal_path(cache, spec);
    let wal = Journal::create_with_priors(&jpath, cfg, spec, 0).unwrap();
    let run = eval::evaluate_plan_priors(cfg, models, &plan, spec, 2, None, runner, &Replay::new(), |cell, model, rec| {
        wal.append(cell, model, rec).unwrap();
    });
    assert!(run.stats.cells > 0, "shard {spec} must own some cells");
    run.stats
}

fn write_sidecar(cache: &Path, spec: ShardSpec, stats: &EvalStats) {
    std::fs::write(shard_stats_path(cache, spec), serde_json::to_vec(stats).unwrap()).unwrap();
}

#[test]
fn stolen_cells_merge_byte_identically() {
    // The stall hook must not fire inside this process's run_shard
    // phases (a leaked env var would only slow the test, but be tidy).
    std::env::remove_var("PCG_STEAL_STALL_MS");
    let cfg = EvalConfig::smoke();
    let tasks: Vec<_> = smoke_tasks().into_iter().take(7).collect();
    let models = pcg_models::zoo();
    let cache = tmp_cache();
    let plan = eval::plan_for(&cfg, &models, Some(&tasks));
    let spec0 = ShardSpec::new(0, 3);
    let spec1 = ShardSpec::new(1, 3);
    let spec2 = ShardSpec::new(2, 3);
    let victim_cells = plan.shard_with(spec0, None);

    // ------- Phase 1: unsharded reference, --jobs 1 and --jobs 8.
    let runner = SharedRunner::new(cfg.clone());
    let (ref1, _) = evaluate_with(&cfg, &models, Some(&tasks), 1, &runner);
    let (ref8, _) = evaluate_with(&cfg, &models, Some(&tasks), 8, &runner);
    let ref_json = serde_json::to_string(&ref1).unwrap();
    assert_eq!(ref_json, serde_json::to_string(&ref8).unwrap());

    // ------- Phase 2: shard 0's worker never shows up (header-only
    // journal); shards 1 and 2 finish their own partitions; shard 1
    // turns thief and drains shard 0's entire slice through the real
    // claim/steal engine. The merge must reassemble the exact
    // unsharded bytes, and --keep-shards must preserve the evidence.
    let mut stats1 = write_one_shard(&cache, &cfg, &models, &tasks, &runner, spec1);
    let stats2 = write_one_shard(&cache, &cfg, &models, &tasks, &runner, spec2);
    drop(Journal::create_with_priors(&journal::shard_journal_path(&cache, spec0), &cfg, spec0, 0).unwrap());

    let before = scan_siblings(&cache, &cfg, &[], spec1, 0);
    assert_eq!(before.done.len(), plan.shard_with(spec2, None).len(), "shard 2's results are visible to the thief");
    assert!(before.claimed.is_empty());

    let wal1 = Journal::open_append(&journal::shard_journal_path(&cache, spec1)).unwrap();
    let done: std::collections::HashSet<u64> =
        plan.shard_with(spec1, None).iter().map(|c| c.id.0).collect();
    let outcome =
        steal_from_siblings(&cache, &cfg, &[], &plan, spec1, None, 0, &wal1, 4, done, |batch| {
        eval::evaluate_cells_priors(&cfg, &models, batch, 2, None, &runner, &Replay::new(), |cell, model, rec| {
            wal1.append(cell, model, rec).unwrap();
        });
    });
    assert_eq!(
        outcome.stolen as usize,
        victim_cells.len(),
        "the thief must drain the absent victim's whole partition"
    );
    assert_eq!(outcome.conflicts, 0, "no live sibling claimed anything");
    assert!(outcome.scans >= 2, "the loop re-scans until nothing is stealable");
    stats1.cells_stolen = outcome.stolen;
    stats1.steal_conflicts = outcome.conflicts;
    stats1.steal_scans = outcome.scans;
    write_sidecar(&cache, spec1, &stats1);
    write_sidecar(&cache, spec2, &stats2);

    let keep_opts = RunOptions { keep_shards: true, ..RunOptions::new(2) };
    let merged = merge_shards(Some(&cache), &cfg, &keep_opts, 3, Some(&tasks));
    assert_eq!(
        serde_json::to_string(&merged).unwrap(),
        ref_json,
        "a merge over stolen cells must reproduce the unsharded record exactly"
    );
    let merged_stats: EvalStats =
        serde_json::from_slice(&std::fs::read(pipeline::stats_path(&cfg)).unwrap()).unwrap();
    assert_eq!(merged_stats.cells_stolen, outcome.stolen, "the merged sidecar sums steal counters");
    for spec in [spec0, spec1, spec2] {
        assert!(
            journal::shard_journal_path(&cache, spec).exists(),
            "--keep-shards must preserve shard {spec}'s journal"
        );
    }

    let merged_again = merge_shards(Some(&cache), &cfg, &RunOptions::new(2), 3, Some(&tasks));
    assert_eq!(serde_json::to_string(&merged_again).unwrap(), ref_json);
    for spec in [spec0, spec1, spec2] {
        assert!(
            !journal::shard_journal_path(&cache, spec).exists(),
            "a default merge must consume shard {spec}'s journal"
        );
        assert!(!shard_stats_path(&cache, spec).exists());
    }

    // ------- Phase 3: the claim-to-result crash window. A thief
    // (shard 2) durably claims one of shard 0's cells, then dies
    // before appending the result. The orphaned claim must not corrupt
    // the thief's journal, must be visible to peeks, and must not keep
    // the merge from gap-filling the cell — at any worker count. The
    // gap fill re-measures with the merge's own runner, so the
    // comparison is the projection.
    let stats1 = write_one_shard(&cache, &cfg, &models, &tasks, &runner, spec1);
    let stats2 = write_one_shard(&cache, &cfg, &models, &tasks, &runner, spec2);
    write_sidecar(&cache, spec1, &stats1);
    write_sidecar(&cache, spec2, &stats2);
    drop(Journal::create_with_priors(&journal::shard_journal_path(&cache, spec0), &cfg, spec0, 0).unwrap());
    let jpath2 = journal::shard_journal_path(&cache, spec2);
    let claimed = victim_cells[0].id;
    {
        let wal2 = Journal::open_append(&jpath2).unwrap();
        wal2.append_claims(&[claimed], 2).unwrap();
        // The thief dies here: claim on disk, no result.
    }
    let loaded = journal::load_counting_with_priors(&jpath2, &cfg, spec2, 0);
    assert_eq!(
        loaded.replay.len(),
        stats2.cells,
        "an orphaned claim must not cost the thief any completed cells"
    );
    assert!(loaded.rejects.is_empty(), "a claim is a valid frame kind, not corruption");
    assert!(loaded.stale_frames >= 1, "the claim counts stale so resume compacts it away");
    let prog = journal::peek_progress(&jpath2, &cfg, spec2, 0).unwrap();
    assert!(prog.claimed.contains(&claimed.0), "the claim is visible to sibling peeks");
    assert!(!prog.done.contains(&claimed.0));
    for jobs in [1usize, 8] {
        let opts = RunOptions { keep_shards: true, ..RunOptions::new(jobs) };
        let merged = merge_shards(Some(&cache), &cfg, &opts, 3, Some(&tasks));
        assert_eq!(
            projection(&merged),
            projection(&ref1),
            "gap fill at --jobs {jobs} must complete the orphan-claimed cell"
        );
    }

    // ------- Phase 4: a victim that wakes up late. Shard 1 steals
    // shard 0's whole slice (claims + results in its own journal),
    // then shard 0's worker finally runs through the real entry point:
    // its pre-scan must find everything taken and evaluate nothing,
    // and the merge must still be byte-identical (every cell came from
    // the shared runner).
    let wal1 = Journal::open_append(&journal::shard_journal_path(&cache, spec1)).unwrap();
    let ids: Vec<_> = victim_cells.iter().map(|c| c.id).collect();
    wal1.append_claims(&ids, 1).unwrap();
    eval::evaluate_cells_priors(&cfg, &models, victim_cells.clone(), 2, None, &runner, &Replay::new(), |cell, model, rec| {
        wal1.append(cell, model, rec).unwrap();
    });
    drop(wal1);
    let victim_stats = run_shard(Some(&cache), &cfg, &RunOptions::new(1), spec0, Some(&tasks));
    assert_eq!(victim_stats.cells, 0, "a fully-stolen victim has nothing left to evaluate");
    assert_eq!(victim_stats.cells_stolen, 0);
    assert!(victim_stats.steal_scans >= 1, "the victim's pre-scan is counted");
    let merged = merge_shards(Some(&cache), &cfg, &RunOptions::new(2), 3, Some(&tasks));
    assert_eq!(
        serde_json::to_string(&merged).unwrap(),
        ref_json,
        "late-victim handoff must still reassemble the exact unsharded bytes"
    );

    let _ = std::fs::remove_file(&cache);
    let _ = std::fs::remove_file(pcg_harness::colstats::cols_path(&cache));
}
